//! Validate the analytical model against the step-exact reference
//! simulator (the role of the paper's Figure 9 RTL comparison).
//!
//! Run with: `cargo run --release --example validate_model`

use maestro::dnn::zoo;
use maestro::hw::Accelerator;
use maestro::ir::Style;
use maestro::sim::{validate_network, SimOptions};

fn main() {
    let acc = Accelerator::maeri_like(64);
    let model = zoo::alexnet(1);
    println!("AlexNet under KC-P on a MAERI-like 64-PE accelerator:\n");
    let (points, mean) =
        validate_network(&model, &Style::KCP.dataflow(), &acc, SimOptions::default());
    for p in &points {
        println!("{p}");
        assert_eq!(p.sim_macs, p.exact_macs, "simulator must conserve MACs");
    }
    println!(
        "\nmean absolute runtime error: {mean:.2}% over {} layers",
        points.len()
    );
}

//! Inspect a dataflow's reuse behavior: the automatic explanation
//! (paper Figure 5's prose) plus a step-by-step execution trace showing
//! stationarity and halo reuse directly in the fetch stream.
//!
//! Run with: `cargo run --release --example reuse_explorer`

use maestro::core::explain;
use maestro::dnn::{zoo, TensorKind};
use maestro::hw::Accelerator;
use maestro::ir::Style;
use maestro::sim::trace;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let vgg = zoo::vgg16(1);
    let layer = vgg.layer("CONV5").expect("zoo layer");
    let acc = Accelerator::paper_case_study();

    for style in [Style::XP, Style::YRP, Style::KCP] {
        let df = style.dataflow();
        println!("{}", explain(layer, &df, &acc)?);
    }

    // Watch the fetch stream of the weight-stationary schedule: after the
    // initial fill, steps fetch new input columns but zero new weights.
    println!("X-P fetch stream (first 8 steps):");
    let t = trace(layer, &Style::XP.dataflow(), acc.num_pes, 8)?;
    println!(
        "{:<5} {:>10} {:>10} {:>10} {:>8} {:>8}",
        "step", "new In", "new Wt", "new Out", "MACs", "PEs"
    );
    for s in &t.steps {
        println!(
            "{:<5} {:>10} {:>10} {:>10} {:>8} {:>8}",
            s.step,
            s.new_data[TensorKind::Input as usize],
            s.new_data[TensorKind::Weight as usize],
            s.new_data[TensorKind::Output as usize],
            s.macs,
            s.active_pes
        );
    }
    Ok(())
}

//! Hardware design-space exploration (paper §5.2, Figure 13): sweep PEs,
//! NoC bandwidth, buffer capacities and mapping variants under the
//! 16 mm² / 450 mW budget, and report Pareto-optimal designs.
//!
//! Run with: `cargo run --release --example dse_pareto`

use maestro::dnn::zoo;
use maestro::dse::{variants, Explorer, SweepSpace};
use maestro::ir::Style;

fn main() {
    let vgg = zoo::vgg16(1);
    let layer = vgg.layer("CONV2").expect("zoo layer");
    let explorer = Explorer::new(SweepSpace::standard());
    let result = explorer
        .explore(layer, &variants::variants(Style::KCP))
        .expect("valid sweep space");
    if !result.stats.quarantined.is_empty() {
        eprintln!(
            "warning: {} work unit(s) quarantined — results are incomplete",
            result.stats.quarantined.len()
        );
    }

    println!(
        "explored {:.2e} designs ({} model evaluations, {:.2e} valid) in {:.2}s -> {:.2e} designs/s",
        result.stats.explored as f64,
        result.stats.evaluated,
        result.stats.valid as f64,
        result.stats.seconds,
        result.stats.rate
    );

    println!("\nPareto front (runtime vs energy):");
    let mut front = result.pareto.clone();
    front.sort_by(|a, b| a.runtime.total_cmp(&b.runtime));
    for p in &front {
        println!(
            "  {:>3} PEs  NoC {:>2}  L1 {:>6} B  L2 {:>8} B  {:<18} {:>12.0} cyc  {:>12.3e} pJ",
            p.pes, p.noc_bw, p.l1_bytes, p.l2_bytes, p.mapping, p.runtime, p.energy
        );
    }

    if let (Some(t), Some(e)) = (&result.best_throughput, &result.best_energy) {
        println!(
            "\nthroughput-optimized: {} PEs, {:.1} MACs/cycle, {:.0} mW",
            t.pes, t.throughput, t.power_mw
        );
        println!(
            "energy-optimized:     {} PEs, {:.1} MACs/cycle, {:.0} mW",
            e.pes, e.throughput, e.power_mw
        );
        println!(
            "energy-optimized design uses {:.1}x the SRAM at {:.0}% of the throughput",
            (e.l1_bytes * e.pes + e.l2_bytes) as f64 / (t.l1_bytes * t.pes + t.l2_bytes) as f64,
            100.0 * e.throughput / t.throughput
        );
    }
}

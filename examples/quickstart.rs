//! Quickstart: analyze one layer under one dataflow on one accelerator.
//!
//! Run with: `cargo run --release --example quickstart`

use maestro::core::analyze;
use maestro::dnn::{zoo, TensorKind};
use maestro::hw::{Accelerator, EnergyModel};
use maestro::ir::Style;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A workload: VGG16's second convolution (64x64 channels, 224x224).
    let vgg = zoo::vgg16(1);
    let layer = vgg.layer("CONV2").expect("zoo layer");
    println!("layer: {layer}");

    // 2. A dataflow: the NVDLA-style KC-partitioned schedule (Table 3).
    let dataflow = Style::KCP.dataflow();
    println!("\n{dataflow}\n");

    // 3. Hardware: 256 PEs, 2 KB L1, 1 MB L2, 32-element/cycle NoC.
    let acc = Accelerator::paper_case_study();

    // 4. Analyze.
    let report = analyze(layer, &dataflow, &acc)?;
    println!("{report}");
    let energy = EnergyModel::cacti_28nm(acc.l1_bytes, acc.l2_bytes);
    println!("\nenergy: {:.3e} pJ", report.energy(&energy));
    for kind in TensorKind::ALL {
        println!(
            "{kind:<7} reuse factor {:>8.1}  (algorithmic max {:>8.1})",
            report.reuse_factor(kind),
            report.algorithmic_max_reuse(kind),
        );
    }
    Ok(())
}

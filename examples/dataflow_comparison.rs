//! Compare the five Table 3 dataflow styles on early and late VGG16
//! layers — a miniature of the paper's Figure 10/12 case study.
//!
//! Run with: `cargo run --release --example dataflow_comparison`

use maestro::core::analyze;
use maestro::dnn::zoo;
use maestro::hw::{Accelerator, EnergyModel};
use maestro::ir::Style;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let vgg = zoo::vgg16(1);
    let acc = Accelerator::paper_case_study();
    let em = EnergyModel::cacti_28nm(acc.l1_bytes, acc.l2_bytes);
    for lname in ["CONV1", "CONV2", "CONV11"] {
        let layer = vgg.layer(lname).expect("zoo layer");
        println!("== VGG16 {lname} ==");
        println!(
            "{:<6} {:>14} {:>12} {:>8} {:>10}",
            "flow", "runtime (cyc)", "energy (pJ)", "util %", "BW el/cy"
        );
        for style in Style::ALL {
            let r = analyze(layer, &style.dataflow(), &acc)?;
            println!(
                "{:<6} {:>14.0} {:>12.3e} {:>8.1} {:>10.1}",
                style.short_name(),
                r.runtime,
                r.energy(&em),
                r.utilization * 100.0,
                r.peak_bw
            );
        }
        println!();
    }
    Ok(())
}

//! The adaptive-dataflow study (paper §5.1, Figure 10(f)): choose the best
//! dataflow per layer and compare against every fixed choice.
//!
//! Run with: `cargo run --release --example adaptive_dataflow`

use maestro::core::{analyze, analyze_model, analyze_model_with};
use maestro::dnn::zoo;
use maestro::hw::{Accelerator, EnergyModel};
use maestro::ir::{Dataflow, Style};

fn best_for(layer: &maestro::dnn::Layer, acc: &Accelerator) -> Dataflow {
    Style::ALL
        .iter()
        .map(|s| s.dataflow())
        .min_by(|a, b| {
            let ra = analyze(layer, a, acc)
                .map(|r| r.runtime)
                .unwrap_or(f64::MAX);
            let rb = analyze(layer, b, acc)
                .map(|r| r.runtime)
                .unwrap_or(f64::MAX);
            ra.total_cmp(&rb)
        })
        .expect("styles are non-empty")
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let model = zoo::mobilenet_v2(1);
    let acc = Accelerator::paper_case_study();
    let em = EnergyModel::cacti_28nm(acc.l1_bytes, acc.l2_bytes);

    println!("fixed dataflows on {}:", model.name);
    let mut best_fixed = f64::MAX;
    for style in Style::ALL {
        // Skip layers a style cannot map by falling back to X-P.
        let r = analyze_model_with(&model, &acc, |l| {
            let df = style.dataflow();
            if analyze(l, &df, &acc).is_ok() {
                df
            } else {
                Style::XP.dataflow()
            }
        })?;
        best_fixed = best_fixed.min(r.runtime());
        println!(
            "  {:<6} {:>12.3e} cycles  {:>12.3e} pJ",
            style.short_name(),
            r.runtime(),
            r.energy(&em)
        );
    }

    let adaptive = analyze_model_with(&model, &acc, |l| best_for(l, &acc))?;
    println!(
        "  {:<6} {:>12.3e} cycles  {:>12.3e} pJ",
        "adapt",
        adaptive.runtime(),
        adaptive.energy(&em)
    );
    println!(
        "\nadaptive runtime reduction vs best fixed: {:.1}%",
        100.0 * (1.0 - adaptive.runtime() / best_fixed)
    );

    // Which dataflow each operator class prefers:
    println!("\nper-layer choices (first ten layers):");
    for l in model.iter().take(10) {
        let df = best_for(l, &acc);
        println!(
            "  {:<18} {:<22} -> {}",
            l.name,
            l.classify().to_string(),
            df.name()
        );
    }
    let _ = analyze_model(&model, &Style::KCP.dataflow(), &acc);
    Ok(())
}

//! The dataflow auto-tuner (paper §7's future work): per-layer search
//! over styles and tile variants under a chosen objective.
//!
//! Run with: `cargo run --release --example auto_tuner`

use maestro::dnn::zoo;
use maestro::dse::{tune_model, Objective};
use maestro::hw::{Accelerator, EnergyModel};

fn main() {
    let model = zoo::resnet50(1);
    let acc = Accelerator::paper_case_study();
    let em = EnergyModel::cacti_28nm(acc.l1_bytes, acc.l2_bytes);

    for objective in [
        Objective::Runtime,
        Objective::Energy(em),
        Objective::Edp(em),
    ] {
        let tuned = tune_model(&model, &acc, objective);
        println!(
            "{objective:>8}-tuned {}: {:.3e} cycles, {:.3e} pJ, {} distinct dataflows",
            tuned.model,
            tuned.runtime(),
            tuned.energy(&em),
            tuned.distinct_dataflows()
        );
    }

    // Show what the runtime tuner picked for a few characteristic layers.
    let tuned = tune_model(&model, &acc, Objective::Runtime);
    println!("\nruntime-tuned choices (sample):");
    for name in ["CONV1", "CONV2_1_a", "CONV2_1_b", "CONV3_1_b", "FC1000"] {
        if let Some(l) = tuned.layers.iter().find(|l| l.layer == name) {
            println!(
                "  {:<12} -> {:<22} ({} candidates evaluated)",
                l.layer,
                l.dataflow.name(),
                l.evaluated
            );
        }
    }
}

//! Author a dataflow three ways — the builder API, the textual DSL, and
//! the compute-centric loop-nest front-end — and check they agree.
//!
//! Run with: `cargo run --release --example custom_dataflow`

use maestro::core::analyze;
use maestro::dnn::Dim;
use maestro::dnn::{Layer, LayerDims, Operator};
use maestro::hw::Accelerator;
use maestro::ir::loopnest::{Loop, LoopNest};
use maestro::ir::{Dataflow, SizeExpr};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A weight-stationary schedule with 4-row output tiles.
    let built = Dataflow::builder("my-ws")
        .temporal(1, 1, Dim::K)
        .temporal(1, 1, Dim::C)
        .temporal(SizeExpr::size(Dim::R), SizeExpr::size(Dim::R), Dim::R)
        .temporal(SizeExpr::size(Dim::S), SizeExpr::size(Dim::S), Dim::S)
        .temporal(
            SizeExpr::lit(4)
                .add(SizeExpr::size(Dim::R))
                .sub(SizeExpr::lit(1)),
            4,
            Dim::Y,
        )
        .spatial(SizeExpr::size(Dim::S), 1, Dim::X)
        .build();

    // The same schedule, written in the DSL.
    let parsed: Dataflow = "Dataflow my-ws {
        TemporalMap(1,1) K;
        TemporalMap(1,1) C;
        TemporalMap(Sz(R),Sz(R)) R;
        TemporalMap(Sz(S),Sz(S)) S;
        TemporalMap(4+Sz(R)-1,4) Y;
        SpatialMap(Sz(S),1) X;
    }"
    .parse()?;
    assert_eq!(built, parsed, "builder and DSL agree");

    // A tiled loop nest, lowered to directives (paper Figure 4(b)->(c)).
    let nest = LoopNest::new("my-ws")
        .loop_(Loop::for_(Dim::K, 1))
        .loop_(Loop::for_(Dim::C, 1))
        .loop_(Loop::for_(Dim::R, 3))
        .loop_(Loop::for_(Dim::S, 3))
        .loop_(Loop::for_window(Dim::Y, 6, 4))
        .loop_(Loop::par_for_window(Dim::X, 3, 1));
    let lowered = nest.to_dataflow();
    println!("loop nest lowers to:\n{lowered}\n");

    // Use it.
    let layer = Layer::new(
        "conv",
        Operator::conv2d(),
        LayerDims::square(1, 64, 64, 58, 3),
    );
    let acc = Accelerator::builder(64).build();
    let report = analyze(&layer, &built, &acc)?;
    println!("{report}");
    Ok(())
}

//! MAESTRO-rs: a data-centric cost model for DNN accelerator dataflows.
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`dnn`] — layer shapes, operator coupling, the model zoo;
//! * [`ir`] — the data-centric directives (SpatialMap / TemporalMap /
//!   Cluster), the DSL parser, the loop-nest front-end, the Table 3 styles;
//! * [`hw`] — the abstract accelerator model (PEs, scratchpads, NoC pipe,
//!   reuse-support structures, energy/area/power);
//! * [`core`] — the analytical engines: [`core::analyze`] estimates
//!   runtime, activity counts, energy, buffer needs, bandwidth demand and
//!   reuse factors for (layer × dataflow × hardware);
//! * [`sim`] — a step-exact reference simulator used to validate the
//!   model (the role RTL plays in the paper's Figure 9);
//! * [`dse`] — design-space exploration with Pareto tracking under
//!   area/power budgets.
//!
//! # Quickstart
//!
//! ```
//! use maestro::core::analyze;
//! use maestro::dnn::{zoo, TensorKind};
//! use maestro::hw::{Accelerator, EnergyModel};
//! use maestro::ir::Style;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let vgg = zoo::vgg16(1);
//! let conv2 = vgg.layer("CONV2").expect("zoo layer");
//! let acc = Accelerator::paper_case_study();
//! let report = analyze(conv2, &Style::KCP.dataflow(), &acc)?;
//! println!("{} cycles, {} pJ", report.runtime, report.energy(&EnergyModel::cacti_28nm(2048, 1 << 20)));
//! assert!(report.reuse_factor(TensorKind::Weight) > 1.0);
//! # Ok(())
//! # }
//! ```

pub use maestro_core as core;
pub use maestro_dnn as dnn;
pub use maestro_dse as dse;
pub use maestro_hw as hw;
pub use maestro_ir as ir;
pub use maestro_sim as sim;

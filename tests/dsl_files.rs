//! Golden tests for the shipped `.df` dataflow description files: they
//! parse, resolve against real layers, and the style-equivalent files
//! analyze identically to the built-in styles.

use maestro::core::analyze;
use maestro::dnn::zoo;
use maestro::hw::Accelerator;
use maestro::ir::{parse::parse_dataflow, Dataflow, Style};
use std::fs;
use std::path::Path;

fn load(name: &str) -> Dataflow {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("dataflows")
        .join(name);
    let text = fs::read_to_string(&path).unwrap_or_else(|e| panic!("{path:?}: {e}"));
    parse_dataflow(&text).unwrap_or_else(|e| panic!("{name}: {e}"))
}

#[test]
fn all_shipped_files_parse_and_resolve() {
    let vgg = zoo::vgg16(1);
    let layer = vgg.layer("CONV5").expect("zoo layer");
    let acc = Accelerator::paper_case_study();
    for name in [
        "weight_stationary.df",
        "output_stationary_2d.df",
        "row_stationary.df",
        "nvdla.df",
    ] {
        let df = load(name);
        analyze(layer, &df, &acc).unwrap_or_else(|e| panic!("{name}: {e}"));
    }
}

#[test]
fn shipped_files_match_builtin_styles() {
    let vgg = zoo::vgg16(1);
    let layer = vgg.layer("CONV5").expect("zoo layer");
    let acc = Accelerator::paper_case_study();
    let pairs = [
        ("weight_stationary.df", Style::XP),
        ("output_stationary_2d.df", Style::YXP),
        ("row_stationary.df", Style::YRP),
        ("nvdla.df", Style::KCP),
    ];
    for (file, style) in pairs {
        let a = analyze(layer, &load(file), &acc).unwrap();
        let b = analyze(layer, &style.dataflow(), &acc).unwrap();
        assert_eq!(a.runtime, b.runtime, "{file} vs {style}");
        assert_eq!(a.counts, b.counts, "{file} vs {style}");
    }
}

#[test]
fn shipped_network_file_parses_and_analyzes() {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("networks/edge_detector.net");
    let text = fs::read_to_string(&path).expect("network file readable");
    let model = maestro::dnn::parse_network(&text).expect("network file parses");
    assert_eq!(model.len(), 5);
    let acc = Accelerator::builder(64).build();
    for layer in model.iter() {
        analyze(layer, &Style::XP.dataflow(), &acc)
            .unwrap_or_else(|e| panic!("{}: {e}", layer.name));
    }
    // Round-trips through the writer.
    let back = maestro::dnn::parse_network(&maestro::dnn::write_network(&model)).unwrap();
    assert_eq!(model, back);
}

//! Golden counts: a 1-D convolution small enough to compute by hand, with
//! every activity count asserted exactly against both the analytical
//! model and the step-exact simulator.
//!
//! Layer: N1 K2 C1 X8 S3 (X' = 6), output-stationary dataflow
//! `SpatialMap(1,1) X; TemporalMap(1,1) S` on 3 PEs:
//!
//! * Schedule: 6 output columns over 3 PEs = 2 spatial folds; 3 filter
//!   taps each → 6 time steps; each PE does K2 × 1 tap = 2 MACs/step.
//!   Total MACs = 2 folds × 3 steps × 3 PEs × 2 = **36** (= 2·6·3 exact).
//! * Inputs: each PE reads one new input element per step (x = x' + s,
//!   distinct across PEs), 6 steps × 3 PEs = **18** L2 reads.
//! * Weights: the K2-deep tap pair is multicast to all PEs (not coupled
//!   to X): fetched at init (2), on each of the 4 steady S-advances (8),
//!   and refetched when the fold wraps S back to zero (2) = **12** L2
//!   reads; every PE's L1 receives each of those 12 = **36** L1 fills.
//! * Outputs: each PE accumulates K2 psums in place across the S loop
//!   (output-stationary), committing them on the fold advance (2×3) and
//!   at the final drain (2×3) = **12** L2 writes — exactly the 2×6
//!   output elements, each written once.

use maestro::core::analyze;
use maestro::dnn::{Dim, Layer, LayerDims, Operator, TensorKind};
use maestro::hw::Accelerator;
use maestro::ir::Dataflow;
use maestro::sim::{simulate, SimOptions};

fn fixture() -> (Layer, Dataflow, Accelerator) {
    let layer = Layer::new(
        "golden",
        Operator::conv2d(),
        LayerDims {
            n: 1,
            k: 2,
            c: 1,
            y: 1,
            x: 8,
            r: 1,
            s: 3,
            stride_y: 1,
            stride_x: 1,
        },
    );
    let df = Dataflow::builder("output-stationary")
        .spatial(1, 1, Dim::X)
        .temporal(1, 1, Dim::S)
        .build();
    let acc = Accelerator::builder(3).noc_bandwidth(8).build();
    (layer, df, acc)
}

#[test]
fn model_counts_match_hand_arithmetic() {
    let (layer, df, acc) = fixture();
    let r = analyze(&layer, &df, &acc).unwrap();
    assert_eq!(r.counts.macs, 36.0);
    assert_eq!(r.counts.l2_read[TensorKind::Input], 18.0);
    assert_eq!(r.counts.l2_read[TensorKind::Weight], 12.0);
    assert_eq!(r.counts.l2_write[TensorKind::Output], 12.0);
    assert_eq!(r.counts.l2_read[TensorKind::Output], 0.0, "no psum spills");
    assert_eq!(r.counts.l1_write[TensorKind::Input], 18.0);
    assert_eq!(r.counts.l1_write[TensorKind::Weight], 36.0);
    // Per-MAC operand reads and psum read-modify-writes.
    assert_eq!(r.counts.l1_read[TensorKind::Input], 36.0);
    assert_eq!(r.counts.l1_read[TensorKind::Weight], 36.0);
    assert_eq!(r.counts.l1_write[TensorKind::Output], 36.0);
}

#[test]
fn simulator_counts_match_hand_arithmetic() {
    let (layer, df, acc) = fixture();
    let s = simulate(&layer, &df, &acc, SimOptions::default()).unwrap();
    assert_eq!(s.macs, 36);
    assert_eq!(s.steps, 6);
    assert_eq!(s.counts.l2_read[TensorKind::Input], 18.0);
    assert_eq!(s.counts.l2_read[TensorKind::Weight], 12.0);
    assert_eq!(s.counts.l2_write[TensorKind::Output], 12.0);
    assert_eq!(s.counts.l1_write[TensorKind::Weight], 36.0);
    assert_eq!(s.utilization, 1.0, "all 3 PEs busy every step");
}

#[test]
fn model_and_simulator_agree_exactly_here() {
    let (layer, df, acc) = fixture();
    let m = analyze(&layer, &df, &acc).unwrap();
    let s = simulate(&layer, &df, &acc, SimOptions::default()).unwrap();
    assert_eq!(m.counts.l2_read, s.counts.l2_read);
    assert_eq!(m.counts.l2_write, s.counts.l2_write);
    assert_eq!(m.counts.l1_write, s.counts.l1_write);
    assert_eq!(m.counts.macs, s.counts.macs);
    // Runtime differs only by the init-step accounting (≤ a few cycles).
    assert!(
        (m.runtime - s.cycles).abs() <= 3.0,
        "{} vs {}",
        m.runtime,
        s.cycles
    );
}

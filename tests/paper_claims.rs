//! Qualitative paper-claim tests: the *shapes* of the evaluation results
//! (who wins, in which regime) that this reproduction must preserve.
//! EXPERIMENTS.md records the quantitative comparison.

use maestro::core::{analyze, analyze_model_with};
use maestro::dnn::{zoo, TensorKind};
use maestro::hw::{Accelerator, EnergyModel, ReuseSupport};
use maestro::ir::Style;
use maestro::sim::{validate_layer, SimOptions};

fn model_runtime(model: &maestro::dnn::Model, style: Style, acc: &Accelerator) -> f64 {
    analyze_model_with(model, acc, |l| {
        let df = style.dataflow();
        if analyze(l, &df, acc).is_ok() {
            df
        } else {
            Style::XP.dataflow()
        }
    })
    .expect("model analysis")
    .runtime()
}

/// §5.1: "KC-P dataflow style provides overall low runtime and energy".
#[test]
fn kcp_has_lowest_average_runtime_across_models() {
    let acc = Accelerator::paper_case_study();
    let models = zoo::figure10_models(1);
    let mut avg = [0.0f64; 5];
    for m in &models {
        // Normalize per model so no single network dominates the average.
        let runtimes: Vec<f64> = Style::ALL
            .iter()
            .map(|&s| model_runtime(m, s, &acc))
            .collect();
        let best = runtimes.iter().cloned().fold(f64::MAX, f64::min);
        for (i, r) in runtimes.iter().enumerate() {
            avg[i] += r / best;
        }
    }
    let kcp = avg[Style::ALL.iter().position(|s| *s == Style::KCP).unwrap()];
    for (i, style) in Style::ALL.iter().enumerate() {
        assert!(
            kcp <= avg[i] + 1e-9,
            "KC-P ({kcp:.2}) should beat {style} ({:.2}) on average",
            avg[i]
        );
    }
}

/// §1: C-P "may not achieve high utilization on layers with a small
/// number of channels".
#[test]
fn channel_partitioning_underutilizes_shallow_layers() {
    let acc = Accelerator::paper_case_study();
    let vgg = zoo::vgg16(1);
    let conv1 = vgg.layer("CONV1").expect("zoo layer"); // C = 3
    let r = analyze(conv1, &Style::CP.dataflow(), &acc).unwrap();
    assert!(r.utilization < 0.05, "C=3 on 256 PEs: {}", r.utilization);
    let conv11 = vgg.layer("CONV11").expect("zoo layer"); // C = 512
    let r = analyze(conv11, &Style::CP.dataflow(), &acc).unwrap();
    assert!(r.utilization > 0.9, "C=512 should fill the array");
}

/// Figure 11(c): point-wise convolution needs the most NoC bandwidth under
/// YX-P because 1x1 kernels have no convolutional (halo) reuse.
#[test]
fn pointwise_needs_more_bandwidth_than_standard_conv_under_yxp() {
    let acc = Accelerator::paper_case_study();
    let mobilenet = zoo::mobilenet_v2(1);
    let pw = mobilenet.layer("BN2_1_expand").expect("zoo layer");
    let vgg = zoo::vgg16(1);
    let conv = vgg.layer("CONV13").expect("zoo layer");
    let df = Style::YXP.dataflow();
    let bw_pw = analyze(pw, &df, &acc).unwrap().peak_bw;
    let bw_conv = analyze(conv, &df, &acc).unwrap().peak_bw;
    assert!(bw_pw > bw_conv * 2.0, "pointwise {bw_pw} vs 3x3 {bw_conv}");
}

/// §5.1: adaptive (per-layer best) dataflow beats every fixed dataflow.
#[test]
fn adaptive_dataflow_dominates_fixed_choices() {
    let acc = Accelerator::paper_case_study();
    let model = zoo::resnet50(1);
    let adaptive = analyze_model_with(&model, &acc, |l| {
        Style::ALL
            .iter()
            .map(|s| s.dataflow())
            .min_by(|a, b| {
                let ra = analyze(l, a, &acc).map(|r| r.runtime).unwrap_or(f64::MAX);
                let rb = analyze(l, b, &acc).map(|r| r.runtime).unwrap_or(f64::MAX);
                ra.total_cmp(&rb)
            })
            .expect("non-empty")
    })
    .unwrap()
    .runtime();
    for style in Style::ALL {
        let fixed = model_runtime(&model, style, &acc);
        assert!(
            adaptive <= fixed * 1.0001,
            "{style}: adaptive {adaptive} vs fixed {fixed}"
        );
    }
}

/// Table 5: removing multicast support inflates energy substantially at
/// similar throughput.
#[test]
fn no_multicast_costs_energy_not_throughput() {
    let vgg = zoo::vgg16(1);
    let conv2 = vgg.layer("CONV2").expect("zoo layer");
    let df = maestro::dse::variants::kcp_variant(8, 1, 1);
    let em = EnergyModel::cacti_28nm(2048, 1 << 20);
    let full = Accelerator::builder(56).noc_bandwidth(40).build();
    let none = Accelerator::builder(56)
        .noc_bandwidth(40)
        .support(ReuseSupport {
            multicast: maestro::hw::SpatialMulticast::None,
            reduction: maestro::hw::SpatialReduction::Fanin,
        })
        .build();
    let a = analyze(conv2, &df, &full).unwrap();
    let b = analyze(conv2, &df, &none).unwrap();
    assert!(
        b.energy(&em) > a.energy(&em) * 1.3,
        "energy should rise >30%: {} vs {}",
        b.energy(&em),
        a.energy(&em)
    );
    assert!(
        (b.throughput() / a.throughput()) > 0.8,
        "throughput roughly preserved"
    );
}

/// Figure 9: the analytical model tracks the step-exact simulator within a
/// few percent on the validation networks' conv layers.
#[test]
fn model_tracks_simulator_on_alexnet_conv_layers() {
    let acc = Accelerator::maeri_like(64);
    let alexnet = zoo::alexnet(1);
    for lname in ["CONV3", "CONV5"] {
        let l = alexnet.layer(lname).expect("zoo layer");
        let p = validate_layer(l, &Style::KCP.dataflow(), &acc, SimOptions::default())
            .unwrap_or_else(|e| panic!("{lname}: {e}"));
        assert_eq!(p.sim_macs, p.exact_macs, "{lname}: MAC conservation");
        assert!(
            p.runtime_error_pct() < 10.0,
            "{lname}: {:.2}% error",
            p.runtime_error_pct()
        );
    }
}

/// §4.4: uniform sparsity scales compute and traffic together.
#[test]
fn sparsity_reduces_energy_proportionally() {
    let acc = Accelerator::paper_case_study();
    let vgg = zoo::vgg16(1);
    let mut layer = vgg.layer("CONV8").expect("zoo layer").clone();
    let em = EnergyModel::normalized();
    let dense = analyze(&layer, &Style::KCP.dataflow(), &acc).unwrap();
    layer.density = maestro::dnn::Density {
        input: 0.5,
        weight: 0.5,
        output: 0.5,
    };
    let sparse = analyze(&layer, &Style::KCP.dataflow(), &acc).unwrap();
    let ratio = sparse.energy(&em) / dense.energy(&em);
    assert!(
        (0.2..0.6).contains(&ratio),
        "50% density should land near 25-50% energy, got {ratio}"
    );
}

/// §5.1 (Figure 11a/b): depth-wise convolution offers little reuse — the
/// achieved activation reuse sits close to its (small) algorithmic max.
#[test]
fn depthwise_has_little_exploitable_reuse() {
    let acc = Accelerator::paper_case_study();
    let m = zoo::mobilenet_v2(1);
    let dw = m.layer("BN2_1_dw").expect("zoo layer");
    let r = analyze(dw, &Style::XP.dataflow(), &acc).unwrap();
    assert!(
        r.algorithmic_max_reuse(TensorKind::Input) < 20.0,
        "depthwise activation reuse ceiling is inherently low: {}",
        r.algorithmic_max_reuse(TensorKind::Input)
    );
}

/// Weight-stationary styles fetch each weight from L2 approximately once
/// when the channel tile covers the layer.
#[test]
fn weight_stationarity_is_observable_in_l2_counts() {
    let acc = Accelerator::paper_case_study();
    let vgg = zoo::vgg16(1);
    let conv2 = vgg.layer("CONV2").expect("zoo layer"); // C=64 fits one tile
    let r = analyze(conv2, &Style::KCP.dataflow(), &acc).unwrap();
    let weights = conv2.tensor_elements(TensorKind::Weight) as f64;
    assert!(
        r.counts.l2_read[TensorKind::Weight] <= weights * 1.2,
        "{} vs {weights}",
        r.counts.l2_read[TensorKind::Weight]
    );
}

/// §4.4: "MAESTRO can model a variety of layers (LSTM hidden layer,
/// pooling, fully-connected, transposed convolution...)". Exercise them
/// all end to end on the DeepSpeech2-style model and UNet.
#[test]
fn non_conv_operators_analyze_end_to_end() {
    let acc = Accelerator::paper_case_study();
    let ds2 = zoo::deepspeech2(1);
    let r = analyze_model_with(&ds2, &acc, |l| {
        let df = Style::KCP.dataflow();
        if analyze(l, &df, &acc).is_ok() {
            df
        } else {
            Style::XP.dataflow()
        }
    })
    .expect("DeepSpeech2 analyzes");
    assert!(r.runtime() > 0.0);
    // The LSTM GEMMs dominate runtime (they dominate the MACs).
    let lstm_rt: f64 = r
        .layers
        .iter()
        .filter(|l| l.layer.starts_with("LSTM"))
        .map(|l| l.runtime)
        .sum();
    assert!(
        lstm_rt / r.runtime() > 0.4,
        "LSTM share {}",
        lstm_rt / r.runtime()
    );
    // Transposed convolutions (UNet's up-convolutions) carry their
    // structured-sparsity discount into the analysis.
    let unet = zoo::unet(1);
    let up = unet.layer("UP1").expect("zoo layer");
    let rep = analyze(up, &Style::XP.dataflow(), &acc).unwrap();
    assert!(
        rep.macs_effective < rep.macs_dense * 0.3,
        "upsampled zeros should discount MACs: {} vs {}",
        rep.macs_effective,
        rep.macs_dense
    );
}

/// The tuner (auto-tuned per-layer mappings with tile variants) is at
/// least as good as plain per-style adaptivity.
#[test]
fn tuner_beats_style_level_adaptivity() {
    use maestro::dse::{tune_model, Objective};
    let model = zoo::alexnet(1);
    let acc = Accelerator::paper_case_study();
    let adaptive = analyze_model_with(&model, &acc, |l| {
        Style::ALL
            .iter()
            .map(|s| s.dataflow())
            .min_by(|a, b| {
                let ra = analyze(l, a, &acc).map(|r| r.runtime).unwrap_or(f64::MAX);
                let rb = analyze(l, b, &acc).map(|r| r.runtime).unwrap_or(f64::MAX);
                ra.total_cmp(&rb)
            })
            .expect("non-empty")
    })
    .unwrap()
    .runtime();
    let tuned = tune_model(&model, &acc, Objective::Runtime).runtime();
    assert!(
        tuned <= adaptive * 1.0001,
        "tuned {tuned} vs adaptive {adaptive}"
    );
}

/// Vector (wide-MAC) PEs raise compute-bound throughput: a TPU-like
/// 16-lane configuration beats a scalar one of equal PE count on a
/// GEMM-heavy transformer block.
#[test]
fn vector_width_raises_gemm_throughput() {
    let model = zoo::transformer_encoder(1, 128);
    let scalar = Accelerator::builder(64).build();
    let tpu = Accelerator::tpu_like(64);
    let mut scalar_rt = 0.0;
    let mut tpu_rt = 0.0;
    for layer in model.iter() {
        let df = Style::KCP.dataflow();
        let pick = |acc: &Accelerator| {
            analyze(layer, &df, acc)
                .or_else(|_| analyze(layer, &Style::XP.dataflow(), acc))
                .expect("some dataflow maps")
                .runtime
        };
        scalar_rt += pick(&scalar);
        tpu_rt += pick(&tpu);
    }
    assert!(
        tpu_rt < scalar_rt / 2.0,
        "16-lane PEs should be far faster: {tpu_rt} vs {scalar_rt}"
    );
}

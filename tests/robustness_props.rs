//! Robustness properties for the panic-free pipeline: the DSL parsers
//! must reject (not panic on) arbitrary byte soup, and `analyze` must
//! return `Ok`/`Err` (never panic) across randomized layer × style ×
//! accelerator combinations.

use maestro::core::analyze;
use maestro::dnn::{Layer, LayerDims, Operator};
use maestro::hw::Accelerator;
use maestro::ir::{parse::parse_dataflow, Style};
use proptest::prelude::*;

/// A seed corpus of near-valid sources: corrupting these reaches much
/// deeper into the parser than uniform random bytes, which almost always
/// die at the first token.
const SEEDS: &[&str] = &[
    "Dataflow ODP {\n  TemporalMap(1,1) K;\n  SpatialMap(1,1) C;\n}\n",
    "Dataflow ODP {\n  SpatialMap(Sz(R),1) Y;\n  Cluster(Sz(R));\n  SpatialMap(1,1) R;\n}\n",
    "Network net {\n  Layer L1 { type: CONV; dimensions { K: 4, C: 3, Y: 8, X: 8, R: 3, S: 3 } }\n}\n",
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Arbitrary bytes never panic either parser — they parse or they
    /// return a typed error.
    #[test]
    fn parsers_never_panic_on_arbitrary_bytes(
        bytes in proptest::collection::vec(0u8..=255, 0..96),
    ) {
        let text = String::from_utf8_lossy(&bytes);
        let _ = parse_dataflow(&text);
        let _ = maestro::dnn::parse_network(&text);
    }

    /// Single-byte corruptions of valid sources never panic either parser.
    #[test]
    fn parsers_never_panic_on_corrupted_sources(
        seed in 0usize..3,
        pos in 0usize..200,
        byte in 0u8..=255,
    ) {
        let mut bytes = SEEDS[seed].as_bytes().to_vec();
        let pos = pos % bytes.len();
        bytes[pos] = byte;
        let text = String::from_utf8_lossy(&bytes);
        let _ = parse_dataflow(&text);
        let _ = maestro::dnn::parse_network(&text);
    }

    /// Parse errors that do surface always carry in-bounds line/column
    /// coordinates and a snippet taken from the offending line.
    #[test]
    fn parse_errors_point_into_the_source(
        seed in 0usize..3,
        pos in 0usize..200,
        byte in 0u8..=255,
    ) {
        let mut bytes = SEEDS[seed].as_bytes().to_vec();
        let pos = pos % bytes.len();
        bytes[pos] = byte;
        let text = String::from_utf8_lossy(&bytes).into_owned();
        if let Err(e) = parse_dataflow(&text) {
            prop_assert!(e.offset <= text.len(), "offset {} > len {}", e.offset, text.len());
            prop_assert!(e.line >= 1 && e.line <= text.lines().count().max(1), "line {}", e.line);
            prop_assert!(e.column >= 1, "column {}", e.column);
            prop_assert!(!e.to_string().is_empty());
        }
    }
}

/// Small but irregular layer shapes, including degenerate 1×1 cases.
fn arb_layer() -> impl Strategy<Value = Layer> {
    (
        1u64..3,  // n
        1u64..24, // k
        1u64..24, // c
        1u64..5,  // r
        1u64..5,  // s
        0u64..20, // y slack
        0u64..20, // x slack
        1u64..4,  // stride
        0usize..5,
    )
        .prop_map(|(n, k, c, r, s, ys, xs, stride, op)| {
            let dims = LayerDims {
                n,
                k,
                c,
                y: r + ys,
                x: s + xs,
                r,
                s,
                stride_y: stride,
                stride_x: stride,
            };
            let op = match op {
                0 => Operator::DepthwiseConv2d,
                1 => Operator::FullyConnected,
                2 => Operator::Pooling,
                3 => Operator::ElementwiseAdd,
                _ => Operator::conv2d(),
            };
            Layer::new("prop", op, dims)
        })
        .prop_filter("well-formed", |l| l.validate().is_ok())
}

/// Accelerators across several orders of magnitude, including tiny and
/// mismatched configurations (1 PE, 1 B/cycle NoC, minimal scratchpads).
fn arb_accelerator() -> impl Strategy<Value = Accelerator> {
    (1u64..=512, 1u64..=64, 6u64..=14, 10u64..=21).prop_map(|(pes, bw, l1_exp, l2_exp)| {
        Accelerator::builder(pes)
            .noc_bandwidth(bw)
            .l1_bytes(1 << l1_exp)
            .l2_bytes(1 << l2_exp)
            .build()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// `analyze` is total over layer × style × accelerator: every
    /// combination returns `Ok` or a typed `AnalysisError`, and every
    /// `Ok` report passes its own finite-value gate.
    #[test]
    fn analyze_never_panics(
        (layer, acc) in (arb_layer(), arb_accelerator()),
        style_idx in 0usize..5,
    ) {
        let style = Style::ALL[style_idx];
        match analyze(&layer, &style.dataflow(), &acc) {
            Ok(r) => {
                prop_assert!(r.runtime.is_finite() && r.runtime > 0.0);
                prop_assert!(r.utilization.is_finite());
                prop_assert!(r.peak_bw.is_finite() && r.avg_bw.is_finite());
            }
            Err(e) => prop_assert!(!e.to_string().is_empty()),
        }
    }
}

//! Property-based invariants over random layers and random (well-formed)
//! dataflows: MAC conservation, traffic lower bounds, rooflines, and
//! model-vs-simulator agreement.

use maestro::core::analyze;
use maestro::dnn::{Dim, Layer, LayerDims, Operator, TensorKind};
use maestro::hw::Accelerator;
use maestro::ir::{Dataflow, DataflowBuilder, SizeExpr};
use maestro::sim::{simulate, SimOptions};
use proptest::prelude::*;

/// A row-stationary-style dataflow with co-mapped spatial `Y`+`R` inside a
/// cluster of `Sz(R)` PEs, over random channel tiles — the co-indexed
/// multi-spatial-map semantics the styles exercise, randomized.
fn arb_row_stationary(layer: &Layer) -> impl Strategy<Value = Dataflow> {
    let dims = layer.dims;
    (1u64..=dims.c.max(1), 1u64..=dims.k.max(1)).prop_map(move |(ct, kt)| {
        Dataflow::builder("prop-rs")
            .temporal(ct, ct, Dim::C)
            .temporal(kt, kt, Dim::K)
            .spatial(SizeExpr::size(Dim::R), 1, Dim::Y)
            .temporal(SizeExpr::size(Dim::S), dims.stride_x, Dim::X)
            .temporal(SizeExpr::size(Dim::R), SizeExpr::size(Dim::R), Dim::R)
            .temporal(SizeExpr::size(Dim::S), SizeExpr::size(Dim::S), Dim::S)
            .cluster(SizeExpr::size(Dim::R))
            .spatial(1, 1, Dim::Y)
            .spatial(1, 1, Dim::R)
            .build()
    })
}

/// A random, well-formed layer small enough to simulate exhaustively.
fn arb_layer() -> impl Strategy<Value = Layer> {
    (
        1u64..3,  // n
        1u64..12, // k
        1u64..12, // c
        1u64..4,  // r
        1u64..4,  // s
        0u64..14, // y slack beyond r
        0u64..14, // x slack beyond s
        1u64..3,  // stride
    )
        .prop_map(|(n, k, c, r, s, ys, xs, stride)| {
            let dims = LayerDims {
                n,
                k,
                c,
                y: r + ys,
                x: s + xs,
                r,
                s,
                stride_y: stride,
                stride_x: stride,
            };
            Layer::new("prop", Operator::conv2d(), dims)
        })
        .prop_filter("window must fit", |l| {
            l.validate().is_ok() && l.total_macs() > 0
        })
}

/// A random gap-free dataflow for `layer`: each dimension is either fully
/// resident or tiled with offset == tile (no redundant recompute, no
/// skipped data), with one spatially mapped dimension, optionally behind a
/// cluster level.
fn arb_dataflow(layer: &Layer) -> impl Strategy<Value = Dataflow> {
    let dims = layer.dims;
    let tile = move |d: Dim, total: u64| (1u64..=total.max(1)).prop_map(move |t| (d, t));
    (
        tile(Dim::K, dims.k),
        tile(Dim::C, dims.c),
        tile(Dim::Y, dims.out_y().max(1)),
        tile(Dim::X, dims.out_x().max(1)),
        0usize..5,           // which dim is spatial (of K, C, Y, X) — 4 means none
        proptest::bool::ANY, // use a cluster level
        1u64..4,             // cluster size exponent
    )
        .prop_map(move |(k, c, y, x, spatial_idx, use_cluster, csz_exp)| {
            let stride = dims.stride_y;
            let mut b: DataflowBuilder = Dataflow::builder("prop-df");
            let entries = [k, c, y, x];
            for (i, (d, t)) in entries.iter().enumerate() {
                let (size, offset) = match d {
                    // Output-tiled window maps: exact coverage.
                    Dim::Y => (stride * (t - 1) + dims.r, t * stride),
                    Dim::X => (stride * (t - 1) + dims.s, t * stride),
                    _ => (*t, *t),
                };
                if i == spatial_idx {
                    b = b.spatial(SizeExpr::lit(size), SizeExpr::lit(offset), *d);
                } else {
                    b = b.temporal(SizeExpr::lit(size), SizeExpr::lit(offset), *d);
                }
            }
            if use_cluster {
                let csz = 1u64 << csz_exp; // 2, 4, 8 — divides the 16 PEs
                b = b.cluster(SizeExpr::lit(csz));
                // Inner level: distribute C if it has room, else K.
                b = b.spatial(1, 1, Dim::C);
            }
            b.build()
        })
}

fn acc16() -> Accelerator {
    Accelerator::builder(16).build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The simulator executes every MAC of the layer exactly once for any
    /// gap-free schedule.
    #[test]
    fn sim_conserves_macs((layer, df) in arb_layer().prop_flat_map(|l| {
        let df = arb_dataflow(&l);
        (Just(l), df)
    })) {
        let acc = acc16();
        let opts = SimOptions { max_steps: 2_000_000 };
        if let Ok(sim) = simulate(&layer, &df, &acc, opts) {
            prop_assert_eq!(sim.macs, layer.total_macs(), "dataflow {}", df);
        }
    }

    /// The analytical model's MAC count is exact up to edge-chunk padding
    /// (never undercounts, bounded overcount).
    #[test]
    fn model_mac_count_is_tight((layer, df) in arb_layer().prop_flat_map(|l| {
        let df = arb_dataflow(&l);
        (Just(l), df)
    })) {
        let acc = acc16();
        if let Ok(r) = analyze(&layer, &df, &acc) {
            let exact = layer.total_macs() as f64;
            prop_assert!(
                (r.macs_dense - exact).abs() <= exact * 0.01 + 1.0,
                "model MACs {} vs exact {exact} for {}",
                r.macs_dense,
                df
            );
        }
    }

    /// Runtime respects the compute roofline.
    #[test]
    fn runtime_roofline((layer, df) in arb_layer().prop_flat_map(|l| {
        let df = arb_dataflow(&l);
        (Just(l), df)
    })) {
        let acc = acc16();
        if let Ok(r) = analyze(&layer, &df, &acc) {
            let roofline = layer.total_macs() as f64 / acc.peak_macs_per_cycle() as f64;
            prop_assert!(r.runtime >= roofline * 0.95);
        }
    }

    /// Every operand element is fetched from L2 at least once; every
    /// output is written at least once.
    #[test]
    fn compulsory_traffic((layer, df) in arb_layer().prop_flat_map(|l| {
        let df = arb_dataflow(&l);
        (Just(l), df)
    })) {
        let acc = acc16();
        if let Ok(r) = analyze(&layer, &df, &acc) {
            // Strided convolutions never touch the skipped input rows and
            // columns, so the compulsory input traffic is the *covered*
            // receptive field, not the full tensor.
            let d = layer.dims;
            let touched = |out: u64, w: u64, stride: u64| {
                // Overlapping windows touch a contiguous band; disjoint
                // (stride > window) ones touch out x window positions.
                (stride * (out - 1) + w).min(out * w)
            };
            let covered_in = d.n
                * d.c
                * touched(d.out_y(), d.r, d.stride_y)
                * touched(d.out_x(), d.s, d.stride_x);
            prop_assert!(
                r.counts.l2_read[TensorKind::Input] >= covered_in as f64 * 0.9,
                "Input: {} < {covered_in}", r.counts.l2_read[TensorKind::Input]
            );
            prop_assert!(
                r.counts.l2_read[TensorKind::Weight]
                    >= layer.tensor_elements(TensorKind::Weight) as f64 * 0.9,
                "Weight: {} < {}",
                r.counts.l2_read[TensorKind::Weight],
                layer.tensor_elements(TensorKind::Weight)
            );
            prop_assert!(
                r.counts.l2_write[TensorKind::Output]
                    >= layer.tensor_elements(TensorKind::Output) as f64 * 0.9
            );
        }
    }

    /// Model and simulator agree on runtime within a factor-level bound
    /// for arbitrary schedules (edge-heavy schedules diverge most).
    #[test]
    fn model_tracks_sim((layer, df) in arb_layer().prop_flat_map(|l| {
        let df = arb_dataflow(&l);
        (Just(l), df)
    })) {
        let acc = acc16();
        let opts = SimOptions { max_steps: 2_000_000 };
        if let (Ok(model), Ok(sim)) = (analyze(&layer, &df, &acc), simulate(&layer, &df, &acc, opts)) {
            let ratio = model.runtime / sim.cycles.max(1.0);
            prop_assert!(
                (0.4..=4.0).contains(&ratio),
                "model {} vs sim {} (ratio {ratio}) for {}",
                model.runtime, sim.cycles, df
            );
        }
    }

    /// The DSL round-trips arbitrary generated dataflows.
    #[test]
    fn dsl_roundtrip((_, df) in arb_layer().prop_flat_map(|l| {
        let df = arb_dataflow(&l);
        (Just(l), df)
    })) {
        let printed = df.to_string();
        let reparsed: Dataflow = printed.parse().expect("generated dataflows reparse");
        prop_assert_eq!(df, reparsed);
    }

    /// Utilization is a fraction and buffer requirements are positive.
    #[test]
    fn report_sanity((layer, df) in arb_layer().prop_flat_map(|l| {
        let df = arb_dataflow(&l);
        (Just(l), df)
    })) {
        let acc = acc16();
        if let Ok(r) = analyze(&layer, &df, &acc) {
            prop_assert!((0.0..=1.0).contains(&r.utilization));
            prop_assert!(r.l1_per_pe_elems > 0);
            prop_assert!(r.l2_staging_elems > 0);
            prop_assert!(r.peak_bw >= 0.0);
            prop_assert!(r.avg_bw <= r.peak_bw * 16.0 + 64.0);
        }
    }
}

/// A random layer over the non-conv operator types (depthwise, FC,
/// pooling, element-wise residual).
fn arb_op_layer() -> impl Strategy<Value = Layer> {
    (
        0usize..4,
        1u64..3,  // n
        1u64..10, // k
        1u64..10, // c
        1u64..4,  // r/s
        0u64..10, // spatial slack
    )
        .prop_map(|(which, n, k, c, rs, slack)| {
            let square = |k, c, yx, rs| LayerDims {
                n,
                k,
                c,
                y: yx,
                x: yx,
                r: rs,
                s: rs,
                stride_y: 1,
                stride_x: 1,
            };
            match which {
                0 => Layer::new(
                    "dw",
                    Operator::DepthwiseConv2d,
                    square(1, c, rs + slack, rs),
                ),
                1 => Layer::new("fc", Operator::FullyConnected, square(k, c, 1, 1)),
                2 => Layer::new("pool", Operator::Pooling, square(1, c, rs + slack, rs)),
                _ => Layer::new("add", Operator::ElementwiseAdd, square(k, 1, 1 + slack, 1)),
            }
        })
        .prop_filter("valid", |l| l.validate().is_ok() && l.total_macs() > 0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// MAC/element-op conservation holds for the non-conv operators too.
    #[test]
    fn sim_conserves_ops_for_all_operator_types((layer, df) in arb_op_layer().prop_flat_map(|l| {
        let df = arb_dataflow(&l);
        (Just(l), df)
    })) {
        let acc = acc16();
        let opts = SimOptions { max_steps: 2_000_000 };
        if let Ok(sim) = simulate(&layer, &df, &acc, opts) {
            prop_assert_eq!(sim.macs, layer.total_macs(), "{} under {}", layer, df);
        }
    }

    /// The model's MAC accounting stays exact across operator types.
    #[test]
    fn model_macs_exact_for_all_operator_types((layer, df) in arb_op_layer().prop_flat_map(|l| {
        let df = arb_dataflow(&l);
        (Just(l), df)
    })) {
        let acc = acc16();
        if let Ok(r) = analyze(&layer, &df, &acc) {
            let exact = layer.total_macs() as f64;
            prop_assert!(
                (r.macs_dense - exact).abs() <= exact * 0.01 + 1.0,
                "{}: model {} vs exact {exact}",
                layer,
                r.macs_dense
            );
        }
    }

    /// Depthwise outputs are never spatially reduced across channels: a
    /// C-spatial mapping must produce per-unit distinct outputs.
    #[test]
    fn depthwise_channel_mapping_is_not_a_reduction(c in 2u64..10, yx_slack in 0u64..8) {
        let layer = Layer::new(
            "dw",
            Operator::DepthwiseConv2d,
            LayerDims {
                n: 1, k: 1, c, y: 3 + yx_slack, x: 3 + yx_slack,
                r: 3, s: 3, stride_y: 1, stride_x: 1,
            },
        );
        let df = Dataflow::builder("c-spatial").spatial(1, 1, Dim::C).build();
        let acc = acc16();
        if let (Ok(with_red), Ok(no_red)) = (
            analyze(&layer, &df, &acc),
            analyze(
                &layer,
                &df,
                &Accelerator::builder(16)
                    .support(maestro::hw::ReuseSupport::none())
                    .build(),
            ),
        ) {
            // Removing reduction hardware must not change output traffic:
            // there is nothing to reduce across channels.
            prop_assert_eq!(
                with_red.counts.l2_write[TensorKind::Output],
                no_red.counts.l2_write[TensorKind::Output]
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The explanation and lint passes accept any resolvable dataflow
    /// without panicking, and their findings are mutually consistent:
    /// a level that the explainer calls spatially reduced is never
    /// flagged as having no parallelism.
    #[test]
    fn explain_and_lint_are_total((layer, df) in arb_layer().prop_flat_map(|l| {
        let df = arb_dataflow(&l);
        (Just(l), df)
    })) {
        let acc = acc16();
        if let Ok(e) = maestro::core::explain(&layer, &df, &acc) {
            let lints = maestro::core::lint(&layer, &df, &acc).expect("lint resolves too");
            for le in &e.levels {
                let reduced = le
                    .observations
                    .contains(&maestro::core::Observation::SpatialReduction);
                if reduced {
                    prop_assert!(
                        !lints.iter().any(|l| matches!(
                            l,
                            maestro::core::Lint::NoParallelism { level, .. } if *level == le.level
                        )),
                        "level {} both reduced and non-parallel", le.level
                    );
                }
            }
        }
    }

    /// Network-description round-trip for random layers.
    #[test]
    fn network_dsl_roundtrip(layer in arb_layer()) {
        let mut model = maestro::dnn::Model::new("prop-net");
        model.push(layer);
        let text = maestro::dnn::write_network(&model);
        let back = maestro::dnn::parse_network(&text).expect("writer output parses");
        prop_assert_eq!(model, back);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Co-mapped Y+R (row-stationary) schedules conserve MACs exactly and
    /// keep the model within a factor bound of the simulator, across
    /// random layers and channel tiles.
    #[test]
    fn row_stationary_conservation((layer, df) in arb_layer().prop_flat_map(|l| {
        let df = arb_row_stationary(&l);
        (Just(l), df)
    })) {
        // Row stationarity needs stride-1 vertical windows.
        prop_assume!(layer.dims.stride_y == 1);
        let acc = acc16();
        let opts = SimOptions { max_steps: 2_000_000 };
        if let (Ok(m), Ok(s)) = (analyze(&layer, &df, &acc), simulate(&layer, &df, &acc, opts)) {
            prop_assert_eq!(s.macs, layer.total_macs(), "{} under {}", layer, df);
            let ratio = m.runtime / s.cycles.max(1.0);
            prop_assert!((0.25..=4.0).contains(&ratio), "model {} vs sim {}", m.runtime, s.cycles);
        }
    }
}

//! End-to-end integration: zoo models × Table 3 dataflows through the full
//! analysis pipeline.

use maestro::core::{analyze, analyze_model_with};
use maestro::dnn::{zoo, TensorKind};
use maestro::hw::{Accelerator, EnergyModel};
use maestro::ir::Style;

fn fallback(style: Style, l: &maestro::dnn::Layer, acc: &Accelerator) -> maestro::ir::Dataflow {
    let df = style.dataflow();
    if analyze(l, &df, acc).is_ok() {
        df
    } else {
        Style::XP.dataflow()
    }
}

#[test]
fn every_zoo_model_analyzes_under_every_style() {
    let acc = Accelerator::paper_case_study();
    let models = [
        zoo::vgg16(1),
        zoo::alexnet(1),
        zoo::resnet50(1),
        zoo::resnext50(1),
        zoo::mobilenet_v2(1),
        zoo::unet(1),
        zoo::dcgan(1),
    ];
    for model in &models {
        for style in Style::ALL {
            let report = analyze_model_with(model, &acc, |l| fallback(style, l, &acc))
                .unwrap_or_else(|e| panic!("{}/{style}: {e}", model.name));
            assert!(report.runtime() > 0.0, "{}/{style}", model.name);
            assert!(
                report.counts().macs > 0.0,
                "{}/{style}: zero MACs",
                model.name
            );
        }
    }
}

#[test]
fn runtime_is_bounded_by_roofline_for_all_vgg_layers() {
    let acc = Accelerator::paper_case_study();
    let vgg = zoo::vgg16(1);
    for layer in vgg.iter() {
        for style in Style::ALL {
            let Ok(r) = analyze(layer, &style.dataflow(), &acc) else {
                continue;
            };
            let roofline = layer.total_macs() as f64 / acc.peak_macs_per_cycle() as f64;
            assert!(
                r.runtime >= roofline * 0.95,
                "{}/{style}: runtime {} below roofline {roofline}",
                layer.name,
                r.runtime
            );
        }
    }
}

#[test]
fn energy_accounts_are_internally_consistent() {
    let acc = Accelerator::paper_case_study();
    let vgg = zoo::vgg16(1);
    let layer = vgg.layer("CONV5").expect("zoo layer");
    let em = EnergyModel::normalized();
    for style in Style::ALL {
        let r = analyze(layer, &style.dataflow(), &acc).unwrap();
        let breakdown = r.energy_breakdown(&em);
        assert!(
            (breakdown.total() - r.energy(&em)).abs() <= 1e-6 * r.energy(&em),
            "{style}: breakdown total mismatch"
        );
        // Energy is at least the MAC floor.
        assert!(r.energy(&em) >= r.macs_effective * em.mac);
    }
}

#[test]
fn l2_traffic_covers_compulsory_misses() {
    let acc = Accelerator::paper_case_study();
    let vgg = zoo::vgg16(1);
    let layer = vgg.layer("CONV8").expect("zoo layer");
    for style in Style::ALL {
        let r = analyze(layer, &style.dataflow(), &acc).unwrap();
        assert!(
            r.counts.l2_read[TensorKind::Input]
                >= layer.tensor_elements(TensorKind::Input) as f64 * 0.9,
            "{style}"
        );
        assert!(
            r.counts.l2_read[TensorKind::Weight]
                >= layer.tensor_elements(TensorKind::Weight) as f64 * 0.9,
            "{style}"
        );
        assert!(
            r.counts.l2_write[TensorKind::Output]
                >= layer.tensor_elements(TensorKind::Output) as f64 * 0.9,
            "{style}"
        );
    }
}

#[test]
fn reuse_factors_do_not_exceed_algorithmic_max() {
    let acc = Accelerator::paper_case_study();
    let vgg = zoo::vgg16(1);
    for lname in ["CONV2", "CONV11"] {
        let layer = vgg.layer(lname).expect("zoo layer");
        for style in Style::ALL {
            let r = analyze(layer, &style.dataflow(), &acc).unwrap();
            for kind in [TensorKind::Input, TensorKind::Weight] {
                // Fills inflate the numerator slightly; allow 10% + 2.
                assert!(
                    r.reuse_factor(kind) <= r.algorithmic_max_reuse(kind) * 1.1 + 2.0,
                    "{lname}/{style}/{kind}: {} > {}",
                    r.reuse_factor(kind),
                    r.algorithmic_max_reuse(kind)
                );
            }
        }
    }
}

#[test]
fn dsl_files_round_trip_through_analysis() {
    // A dataflow written as text analyzes identically to the same dataflow
    // built programmatically.
    let acc = Accelerator::builder(64).build();
    let vgg = zoo::vgg16(1);
    let layer = vgg.layer("CONV11").expect("zoo layer");
    let built = Style::XP.dataflow();
    let parsed: maestro::ir::Dataflow = built.to_string().parse().expect("parses");
    let a = analyze(layer, &built, &acc).unwrap();
    let b = analyze(layer, &parsed, &acc).unwrap();
    assert_eq!(a.runtime, b.runtime);
    assert_eq!(a.counts, b.counts);
}

#[test]
fn offchip_traffic_is_compulsory_plus_capacity_misses() {
    let vgg = zoo::vgg16(1);
    let layer = vgg.layer("CONV8").expect("zoo layer");
    let df = Style::KCP.dataflow();
    // Ample L2: only compulsory DRAM traffic.
    let big = Accelerator::builder(256).l2_bytes(64 << 20).build();
    let r_big = analyze(layer, &df, &big).unwrap();
    let compulsory: f64 = r_big.tensor_elems.iter().map(|&e| e as f64).sum();
    let dram_big = r_big.counts.dram_read.total() + r_big.counts.dram_write.total();
    assert!(
        (dram_big - compulsory).abs() / compulsory < 0.05,
        "big L2: {dram_big} vs compulsory {compulsory}"
    );
    // Tiny L2: capacity misses dominate.
    let small = Accelerator::builder(256).l2_bytes(16 << 10).build();
    let r_small = analyze(layer, &df, &small).unwrap();
    let dram_small = r_small.counts.dram_read.total() + r_small.counts.dram_write.total();
    assert!(
        dram_small > dram_big * 2.0,
        "small L2 should miss more: {dram_small} vs {dram_big}"
    );
}

#[test]
fn offchip_bandwidth_can_bound_runtime() {
    let vgg = zoo::vgg16(1);
    let layer = vgg.layer("CONV8").expect("zoo layer");
    let df = Style::KCP.dataflow();
    let fast = Accelerator::builder(256).offchip_bandwidth(64).build();
    let slow = Accelerator::builder(256).offchip_bandwidth(1).build();
    let rf = analyze(layer, &df, &fast).unwrap();
    let rs = analyze(layer, &df, &slow).unwrap();
    assert!(rs.runtime >= rf.runtime, "{} vs {}", rs.runtime, rf.runtime);
    // At 1 element/cycle the DRAM stream must bound the runtime.
    let dram = rs.counts.dram_read.total() + rs.counts.dram_write.total();
    assert!(rs.runtime >= dram * 0.99);
}

#[test]
fn model_and_simulator_agree_on_offchip_rule() {
    use maestro::sim::{simulate, SimOptions};
    let layer = maestro::dnn::Layer::new(
        "c",
        maestro::dnn::Operator::conv2d(),
        maestro::dnn::LayerDims::square(1, 16, 16, 18, 3),
    );
    // Small L2 so capacity misses are active on both sides.
    let acc = Accelerator::builder(64).l2_bytes(4 << 10).build();
    let df = Style::KCP.dataflow();
    let m = analyze(&layer, &df, &acc).unwrap();
    let s = simulate(&layer, &df, &acc, SimOptions::default()).unwrap();
    let md = m.counts.dram_read.total() + m.counts.dram_write.total();
    let sd = s.counts.dram_read.total() + s.counts.dram_write.total();
    assert!(
        (md - sd).abs() / sd.max(1.0) < 0.1,
        "model dram {md} vs sim dram {sd}"
    );
}

#[test]
fn per_level_summaries_expose_hierarchy() {
    let vgg = zoo::vgg16(1);
    let layer = vgg.layer("CONV5").expect("zoo layer");
    let acc = Accelerator::paper_case_study();
    let r = analyze(layer, &Style::KCP.dataflow(), &acc).unwrap();
    assert_eq!(r.levels.len(), 2);
    assert_eq!(r.levels[0].units, 4, "256 PEs / clusters of 64");
    assert_eq!(r.levels[1].units, 64);
    assert!(r.levels[0].steps > 1);
    assert_eq!(
        r.levels[1].output_spatial,
        maestro::core::OutputSpatial::Reduced
    );
    let text = r.to_string();
    assert!(text.contains("level 0"), "{text}");
    assert!(text.contains("level 1"), "{text}");
}

#[test]
fn three_level_hierarchies_analyze_and_conserve_macs() {
    use maestro::dnn::Dim;
    use maestro::ir::{Dataflow, SizeExpr};
    use maestro::sim::{simulate, SimOptions};
    // K across 4 top clusters, C across 4 sub-clusters, X' across 4 PEs.
    let df = Dataflow::builder("three-level")
        .spatial(1, 1, Dim::K)
        .cluster(SizeExpr::lit(16))
        .spatial(1, 1, Dim::C)
        .cluster(SizeExpr::lit(4))
        .spatial(SizeExpr::size(Dim::S), 1, Dim::X)
        .build();
    let layer = maestro::dnn::Layer::new(
        "c",
        maestro::dnn::Operator::conv2d(),
        maestro::dnn::LayerDims::square(1, 8, 8, 10, 3),
    );
    let acc = Accelerator::builder(64).build();
    let r = analyze(&layer, &df, &acc).unwrap();
    assert_eq!(r.levels.len(), 3);
    assert_eq!(r.levels.iter().map(|l| l.units).product::<u64>(), 64);
    let s = simulate(&layer, &df, &acc, SimOptions::default()).unwrap();
    assert_eq!(
        s.macs,
        layer.total_macs(),
        "exact MAC conservation at 3 levels"
    );
    let ratio = r.runtime / s.cycles.max(1.0);
    assert!(
        (0.3..=3.0).contains(&ratio),
        "model {} vs sim {}",
        r.runtime,
        s.cycles
    );
}

#[test]
fn custom_coupling_overrides_the_operator() {
    use maestro::dnn::coupling::{Coupling, DimSet};
    use maestro::dnn::{Dim, Layer, LayerDims, Operator};
    // A per-channel correlation: O[n][k][c] += W[k][r][s] · I[n][c][y][x]
    // — one shared K-bank of filters correlated against every channel,
    // keeping a per-(k, c) score map. Not expressible as any built-in
    // operator; expressible as a coupling.
    let custom = Coupling {
        input: DimSet::of(&[Dim::N, Dim::C, Dim::Y, Dim::X]),
        weight: DimSet::of(&[Dim::K, Dim::R, Dim::S]),
        output: DimSet::of(&[Dim::N, Dim::K, Dim::C, Dim::Y, Dim::X, Dim::R, Dim::S]),
        reduction: DimSet::of(&[Dim::R, Dim::S]),
    };
    let layer = Layer::new(
        "corr",
        Operator::conv2d(),
        LayerDims::square(1, 4, 8, 10, 3),
    )
    .with_coupling(custom);
    // The weight tensor no longer spans C.
    assert_eq!(layer.tensor_elements(TensorKind::Weight), 4 * 9);
    // Outputs span K × C score maps.
    assert_eq!(layer.tensor_elements(TensorKind::Output), 4 * 8 * 8 * 8);
    let acc = Accelerator::builder(64).build();
    let r = analyze(&layer, &Style::XP.dataflow(), &acc).unwrap();
    assert!(r.runtime > 0.0);
    // And the simulator follows the same coupling: conservation holds for
    // the custom iteration space N*K*C*Y'*X'*R*S.
    use maestro::sim::{simulate, SimOptions};
    let s = simulate(&layer, &Style::XP.dataflow(), &acc, SimOptions::default()).unwrap();
    assert_eq!(s.macs, layer.total_macs());
    assert_eq!(layer.total_macs(), 4 * 8 * 8 * 8 * 9);
}

#[test]
fn extended_zoo_analyzes_under_adaptive_choice() {
    let acc = Accelerator::paper_case_study();
    for model in [
        zoo::googlenet(1),
        zoo::efficientnet_b0(1),
        zoo::deepspeech2(1),
    ] {
        let report = analyze_model_with(&model, &acc, |l| {
            Style::ALL
                .iter()
                .map(|s| s.dataflow())
                .filter(|df| analyze(l, df, &acc).is_ok())
                .min_by(|a, b| {
                    let ra = analyze(l, a, &acc).map(|r| r.runtime).unwrap_or(f64::MAX);
                    let rb = analyze(l, b, &acc).map(|r| r.runtime).unwrap_or(f64::MAX);
                    ra.total_cmp(&rb)
                })
                .unwrap_or_else(|| Style::XP.dataflow())
        })
        .unwrap_or_else(|e| panic!("{}: {e}", model.name));
        assert!(report.runtime() > 0.0, "{}", model.name);
    }
}

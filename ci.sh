#!/usr/bin/env bash
# Local CI gate: formatting, lints (deny warnings), release build, full
# test suite. Run from the repository root before sending a change out.
#
# The workspace builds fully offline: serde/serde_json/proptest/criterion
# are local shim crates under crates/ (see DESIGN.md), so no registry
# access is needed.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check"
cargo fmt --all --check

echo "== cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

# The analysis-pipeline crates are panic-free by policy (see DESIGN.md):
# no unwrap()/expect() outside tests. Enforced both here and by
# crate-level deny attributes in each lib.rs.
echo "== cargo clippy (panic-free library crates)"
cargo clippy -p maestro-core -p maestro-ir -p maestro-dse -p maestro-hw -p maestro-dnn --lib \
  -- -D warnings -D clippy::unwrap-used -D clippy::expect-used

echo "== cargo build --release"
cargo build --release --workspace

echo "== cargo test"
cargo test -q --workspace

echo "CI OK"

#!/usr/bin/env bash
# Local CI gate: formatting, lints (deny warnings), release build, full
# test suite. Run from the repository root before sending a change out.
#
# The workspace builds fully offline: serde/serde_json/proptest/criterion
# are local shim crates under crates/ (see DESIGN.md), so no registry
# access is needed.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check"
cargo fmt --all --check

echo "== cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

# The analysis-pipeline crates are panic-free by policy (see DESIGN.md):
# no unwrap()/expect() outside tests. Enforced both here and by
# crate-level deny attributes in each lib.rs.
# (maestro-serve carries the same denies as crate-level attributes in
# its lib.rs; it is omitted from this command-line pass because clippy's
# trailing flags leak onto workspace dependencies, and serve pulls in
# maestro-sim, which is exempt from the unwrap/expect policy.)
echo "== cargo clippy (panic-free library crates)"
cargo clippy -p maestro-core -p maestro-ir -p maestro-dse -p maestro-hw -p maestro-dnn -p maestro-obs --lib \
  -- -D warnings -D clippy::unwrap-used -D clippy::expect-used

# Library crates never write to stderr directly: diagnostics go through
# the maestro-obs leveled logger (MAESTRO_LOG, off by default), whose
# emit() is the one sanctioned egress point.
echo "== cargo clippy (no stray stderr prints in library crates)"
cargo clippy -p maestro-core -p maestro-ir -p maestro-dse -p maestro-hw -p maestro-dnn \
  -p maestro-sim -p maestro-obs -p maestro-serve --lib \
  -- -D warnings -D clippy::print-stderr

# No library code may call std::process::exit: every shutdown path goes
# through the CLI's single graceful-exit function (main's ExitCode), which
# flushes the observability sinks first. Enforced here and by the
# crate-level deny attributes in each lib.rs.
echo "== cargo clippy (no process::exit outside main)"
cargo clippy -p maestro-core -p maestro-ir -p maestro-dse -p maestro-hw -p maestro-dnn \
  -p maestro-sim -p maestro-obs -p maestro-serve --lib \
  -- -D warnings -D clippy::exit

echo "== cargo build --release"
cargo build --release --workspace

echo "== cargo test"
cargo test -q --workspace

# The observability surface stays wired end to end: a real DSE run must
# expose the documented metrics in Prometheus text format. --max-seconds
# bounds the smoke so a regression hangs CI for minutes, not forever (a
# tripped deadline exits 7, which set -e turns into a failure).
echo "== observability smoke (dse --metrics -)"
metrics_out=$(target/release/maestro dse --model vgg16 --layer CONV5 --style KC-P --threads 2 --max-seconds 300 --metrics -)
for name in maestro_cache_hits maestro_cache_misses maestro_dse_unit_rate \
            maestro_dse_pareto_inserted maestro_dse_units_quarantined; do
  if ! grep -q "# TYPE ${name}" <<<"${metrics_out}"; then
    echo "missing metric ${name} in --metrics output" >&2
    exit 1
  fi
done

# Staged evaluation is a pure refactor of analyze(): the golden suite
# must prove the staged DSE bit-identical to full evaluation at 1/2/8/
# auto threads, with checkpoints and under fault injection, before any
# rate number is trusted.
echo "== staged-equivalence goldens"
cargo test -q --release -p maestro-dse --test staged_equivalence
cargo test -q --release -p maestro-sim --test staged_conform_smoke

# DSE-rate smoke: times full vs staged on the standard VGG16 CONV2 /
# KC-P sweep and refreshes the BENCH_dse_rate.json baseline tracked in
# the repo, so perf regressions show up as a diff in review. The binary
# itself asserts the two modes' results are bit-identical.
echo "== dse_rate smoke (BENCH_dse_rate.json)"
target/release/dse_rate_smoke --repeats 5 --out BENCH_dse_rate.json
grep -q '"bit_identical": true' BENCH_dse_rate.json

# The closed-form model and the step simulator must agree on a fixed
# fuzz corpus: any divergence beyond the calibrated tolerances exits 6
# and prints a minimized, ready-to-paste reproducer.
echo "== differential conformance smoke (conform --seed 1)"
conform_out=$(target/release/maestro conform --seed 1 --cases 200 --max-seconds 300 --metrics -)
if ! grep -q "maestro_conform_diverged 0" <<<"${conform_out}"; then
  echo "conformance divergence (or missing counter) in conform output" >&2
  grep -m1 "diverged" <<<"${conform_out}" >&2 || true
  exit 1
fi

# Interruption-proofing smoke: SIGTERM a sweep mid-flight (stretched by
# injected delays so the signal reliably lands between units), expect a
# graceful exit 7 plus a checkpoint, resume it without injection, and
# demand the resumed frontier is bit-identical to an uninterrupted run
# (only the wall-clock `seconds`/`rate` stats and the `partial` marker
# may differ).
echo "== kill-and-resume smoke (dse SIGTERM + --resume)"
smokedir=$(mktemp -d)
trap 'rm -rf "${smokedir}"' EXIT
dse_args=(dse --model vgg16 --layer CONV5 --style KC-P --threads 2 --json)
target/release/maestro "${dse_args[@]}" --max-seconds 300 > "${smokedir}/golden.json"
target/release/maestro "${dse_args[@]}" \
  --checkpoint "${smokedir}/smoke.ckpt" --inject delay:300ms:1.0 \
  > "${smokedir}/partial.json" 2> "${smokedir}/partial.err" &
dse_pid=$!
sleep 0.8
kill -TERM "${dse_pid}" 2>/dev/null || true
rc=0; wait "${dse_pid}" || rc=$?
if [ "${rc}" -ne 7 ]; then
  echo "interrupted dse exited ${rc}, expected 7" >&2
  cat "${smokedir}/partial.err" >&2 || true
  exit 1
fi
if ! grep -q '"partial": true' "${smokedir}/partial.json"; then
  echo "interrupted dse output lacks the partial marker" >&2
  exit 1
fi
target/release/maestro "${dse_args[@]}" --max-seconds 300 \
  --resume "${smokedir}/smoke.ckpt" > "${smokedir}/resumed.json" 2>/dev/null
strip_clock() { grep -v '"seconds"\|"rate"' "$1"; }
if ! diff <(strip_clock "${smokedir}/golden.json") <(strip_clock "${smokedir}/resumed.json") >/dev/null; then
  echo "resumed frontier differs from the uninterrupted golden run" >&2
  exit 1
fi

# Serve smoke: boot the daemon on an ephemeral port, drive it over raw
# TCP (bash /dev/tcp — no curl dependency), check the typed responses
# and the Prometheus counters, provoke one queue-full 503, then SIGTERM
# and demand a clean exit 0 inside the drain deadline.
echo "== serve smoke (daemon: analyze + dse + /metrics + shed + drain)"
serve_log="${smokedir}/serve.log"
serve_request() { # serve_request <addr> <method> <path> [body]
  local host="${1%:*}" port="${1##*:}" method="$2" path="$3" body="${4:-}"
  exec 3<>"/dev/tcp/${host}/${port}"
  # The accept path is event-driven now: a shed 503 can be written and
  # the socket closed before this write lands, so run it in a subshell
  # with SIGPIPE ignored — a late write must not kill the script.
  (
    trap '' PIPE
    printf '%s %s HTTP/1.1\r\nHost: ci\r\nConnection: close\r\nContent-Length: %s\r\n\r\n%s' \
      "${method}" "${path}" "${#body}" "${body}" >&3
  ) 2>/dev/null || true
  cat <&3 2>/dev/null || true
  exec 3>&- 2>/dev/null || true
}
wait_for_addr() { # wait_for_addr <logfile>; echoes host:port
  local addr="" i
  for i in $(seq 1 100); do
    addr=$(sed -n 's/^serving on //p' "$1" | head -1)
    [ -n "${addr}" ] && break
    sleep 0.1
  done
  [ -n "${addr}" ] || { echo "daemon never announced its address" >&2; return 1; }
  echo "${addr}"
}
target/release/maestro serve --addr 127.0.0.1:0 --workers 2 --drain-seconds 10 \
  --trace-sample 1 --access-log "${smokedir}/access.jsonl" \
  > "${serve_log}" 2> "${smokedir}/serve.err" &
serve_pid=$!
serve_addr=$(wait_for_addr "${serve_log}")
analyze_resp=$(serve_request "${serve_addr}" POST /v1/analyze \
  '{"model":"alexnet","layer":"CONV1","pes":64}')
grep -q "HTTP/1.1 200" <<<"${analyze_resp}" || { echo "analyze failed: ${analyze_resp}" >&2; exit 1; }
grep -q '"runtime"' <<<"${analyze_resp}" || { echo "analyze lacks runtime: ${analyze_resp}" >&2; exit 1; }
grep -qi "x-maestro-trace:" <<<"${analyze_resp}" || { echo "analyze lacks trace header: ${analyze_resp}" >&2; exit 1; }
dse_resp=$(serve_request "${serve_addr}" POST /v1/dse \
  '{"model":"alexnet","layer":"CONV3","style":"KC-P","space":"tiny"}')
grep -q "HTTP/1.1 200" <<<"${dse_resp}" || { echo "dse failed: ${dse_resp}" >&2; exit 1; }
grep -q '"pareto"' <<<"${dse_resp}" || { echo "dse lacks pareto front: ${dse_resp}" >&2; exit 1; }
# Batch: one request, many points, per-item error isolation — the bad
# middle point becomes an error element, the good points still analyze.
batch_resp=$(serve_request "${serve_addr}" POST /v1/batch \
  '{"points":[{"model":"alexnet","layer":"CONV1","pes":64},{"model":"alexnet","layer":"NOPE"},{"model":"alexnet","layer":"CONV2","pes":64}]}')
grep -q "HTTP/1.1 200" <<<"${batch_resp}" || { echo "batch failed: ${batch_resp}" >&2; exit 1; }
grep -q '"count":3' <<<"${batch_resp}" || { echo "batch lacks count: ${batch_resp}" >&2; exit 1; }
reports=$(grep -o '"report"' <<<"${batch_resp}" | wc -l)
[ "${reports}" -eq 2 ] || { echo "expected 2 batch reports, got ${reports}: ${batch_resp}" >&2; exit 1; }
grep -q 'no layer .NOPE' <<<"${batch_resp}" || { echo "batch lost the per-item error: ${batch_resp}" >&2; exit 1; }
# Streaming DSE: NDJSON with more than one line, the last line being the
# well-formed final result.
stream_resp=$(serve_request "${serve_addr}" POST /v1/dse \
  '{"model":"alexnet","layer":"CONV3","style":"KC-P","space":"tiny","stream":true}')
grep -q "application/x-ndjson" <<<"${stream_resp}" || { echo "stream lacks NDJSON content type: ${stream_resp}" >&2; exit 1; }
stream_body=$(sed '1,/^\r*$/d' <<<"${stream_resp}")
stream_lines=$(grep -c . <<<"${stream_body}")
[ "${stream_lines}" -gt 1 ] || { echo "expected >1 NDJSON lines, got ${stream_lines}: ${stream_resp}" >&2; exit 1; }
tail -1 <<<"${stream_body}" | grep -q '"final":true' \
  || { echo "stream final line malformed: ${stream_body}" >&2; exit 1; }
tail -1 <<<"${stream_body}" | grep -q '"partial":false' \
  || { echo "uninterrupted stream marked partial: ${stream_body}" >&2; exit 1; }
metrics_resp=$(serve_request "${serve_addr}" GET /metrics)
served=$(sed -n 's/^maestro_serve_requests_total \([0-9]*\).*/\1/p' <<<"${metrics_resp}" | head -1)
if [ -z "${served}" ] || [ "${served}" -lt 2 ]; then
  echo "expected maestro_serve_requests_total >= 2, got '${served}'" >&2
  exit 1
fi
# Build/uptime identity gauges: one constant-1 info metric with
# version+git labels, one monotone uptime gauge, pinned here so a
# rename never silently breaks dashboards.
grep -q '^maestro_build_info{version="' <<<"${metrics_resp}" \
  || { echo "missing maestro_build_info in /metrics" >&2; exit 1; }
grep -Eq '^maestro_build_info\{.*git="[^"]+".*\} 1$' <<<"${metrics_resp}" \
  || { echo "maestro_build_info lacks a git label" >&2; exit 1; }
grep -q '^# TYPE maestro_serve_uptime_seconds gauge' <<<"${metrics_resp}" \
  || { echo "missing maestro_serve_uptime_seconds in /metrics" >&2; exit 1; }
grep -q '^# TYPE maestro_serve_queue_depth gauge' <<<"${metrics_resp}" \
  || { echo "missing maestro_serve_queue_depth in /metrics" >&2; exit 1; }
grep -q '^maestro_serve_write_failures ' <<<"${metrics_resp}" \
  || { echo "missing maestro_serve_write_failures in /metrics" >&2; exit 1; }
# Request traces: the analyze request above was kept (1-in-1 sampling)
# and is listed with phase attribution.
traces_resp=$(serve_request "${serve_addr}" GET /debug/traces)
grep -q '"name":"POST /v1/analyze"' <<<"${traces_resp}" \
  || { echo "analyze trace not in /debug/traces: ${traces_resp}" >&2; exit 1; }
grep -q '"name":"analyze"' <<<"${traces_resp}" \
  || { echo "trace lacks an analyze phase: ${traces_resp}" >&2; exit 1; }
kill -TERM "${serve_pid}"
rc=0; wait "${serve_pid}" || rc=$?
if [ "${rc}" -ne 0 ]; then
  echo "daemon drain exited ${rc}, expected 0" >&2
  cat "${smokedir}/serve.err" >&2 || true
  exit 1
fi
# The JSONL access log attributed every request it saw.
grep -q '"trace_id":"' "${smokedir}/access.jsonl" \
  || { echo "access log is missing trace ids" >&2; exit 1; }
grep -q '"analyze_us":' "${smokedir}/access.jsonl" \
  || { echo "access log is missing phase attribution" >&2; exit 1; }

# Queue-full shedding: one worker, queue depth one. Occupy the worker
# and the queue slot with two half-sent requests held open on fds 4/5;
# the third connection must be shed immediately with 503 + Retry-After.
echo "== serve smoke (queue-full 503)"
target/release/maestro serve --addr 127.0.0.1:0 --workers 1 --queue-depth 1 \
  --drain-seconds 10 > "${serve_log}.shed" 2>/dev/null &
serve_pid=$!
serve_addr=$(wait_for_addr "${serve_log}.shed")
shed_host="${serve_addr%:*}"; shed_port="${serve_addr##*:}"
exec 4<>"/dev/tcp/${shed_host}/${shed_port}"; printf 'POST /v1/analyze HTTP/1.1\r\n' >&4
sleep 0.3
exec 5<>"/dev/tcp/${shed_host}/${shed_port}"; printf 'GET /healthz HT' >&5
sleep 0.3
# Shedding is decided at accept, before any request bytes are read —
# connect and read without writing, so the server's immediate close
# cannot RST away the 503 mid-handshake.
shed_resp=$(exec 3<>"/dev/tcp/${shed_host}/${shed_port}"; cat <&3; exec 3>&-)
grep -q "HTTP/1.1 503" <<<"${shed_resp}" || { echo "expected a 503 shed: ${shed_resp}" >&2; exit 1; }
grep -q "Retry-After:" <<<"${shed_resp}" || { echo "503 lacks Retry-After: ${shed_resp}" >&2; exit 1; }
exec 4>&- 5>&-
# Tail sampling must have force-kept the shed 503 in the flight
# recorder, and the trace explorer renders it — waterfall and folded.
shed_trace=""
for i in $(seq 1 50); do
  shed_trace=$(serve_request "${serve_addr}" GET /debug/traces || true)
  grep -q '"name":"shed"' <<<"${shed_trace}" && break
  sleep 0.1
done
grep -q '"name":"shed"' <<<"${shed_trace}" || { echo "shed trace was not tail-kept: ${shed_trace}" >&2; exit 1; }
grep -q '"status":503' <<<"${shed_trace}" || { echo "shed trace lacks its 503: ${shed_trace}" >&2; exit 1; }
grep -q '"kept":"error"' <<<"${shed_trace}" || { echo "shed trace not kept as error: ${shed_trace}" >&2; exit 1; }
explorer_out=$(target/release/maestro trace --from "${serve_addr}")
grep -q "shed" <<<"${explorer_out}" || { echo "trace explorer missed the shed: ${explorer_out}" >&2; exit 1; }
folded_out=$(target/release/maestro trace --from "${serve_addr}" --folded)
grep -q "shed;" <<<"${folded_out}" || { echo "folded output missed the shed: ${folded_out}" >&2; exit 1; }
kill -TERM "${serve_pid}"
rc=0; wait "${serve_pid}" || rc=$?
[ "${rc}" -eq 0 ] || { echo "shed daemon drain exited ${rc}, expected 0" >&2; exit 1; }

# Chaos smoke: sustained mixed loadgen traffic — analyze, dse, conform,
# plus /v1/batch requests and NDJSON /v1/dse streams — SIGTERM mid-load.
# The drain guarantee is zero dropped (started-but-incomplete) responses
# — a truncated stream without its final line counts as dropped, and
# loadgen itself exits 1 on any drop — and the daemon exits 0.
echo "== serve chaos smoke (SIGTERM under mixed batch/stream traffic)"
target/release/maestro serve --addr 127.0.0.1:0 --workers 2 --drain-seconds 10 \
  > "${serve_log}.chaos" 2>/dev/null &
serve_pid=$!
serve_addr=$(wait_for_addr "${serve_log}.chaos")
target/release/loadgen --addr "${serve_addr}" --seconds 3 --concurrency 4 \
  --mode mixed --retries 0 --json > "${smokedir}/chaos.json" &
loadgen_pid=$!
sleep 1
kill -TERM "${serve_pid}"
rc=0; wait "${serve_pid}" || rc=$?
[ "${rc}" -eq 0 ] || { echo "chaos daemon drain exited ${rc}, expected 0" >&2; exit 1; }
rc=0; wait "${loadgen_pid}" || rc=$?
if [ "${rc}" -ne 0 ]; then
  echo "loadgen reported dropped responses or zero successes under chaos" >&2
  cat "${smokedir}/chaos.json" >&2 || true
  exit 1
fi
grep -q '"dropped": 0' "${smokedir}/chaos.json" || { echo "chaos run dropped responses" >&2; exit 1; }

# Chaos-matrix smoke: the daemon injects its *own* seeded faults — socket
# read/write errors, delayed first writes, worker panics, handler stalls
# — while mixed loadgen traffic (with retries, honoring the computed
# Retry-After) runs against it. Invariants: no started-but-incomplete
# response, the watchdog respawned at least one panicked worker (seed 42
# first fires the panic draw at index 77, well inside a 3 s mixed load),
# /readyz recovers, and the drain still exits 0.
echo "== serve chaos-matrix smoke (seeded fault injection under load)"
target/release/maestro serve --addr 127.0.0.1:0 --workers 2 --drain-seconds 10 \
  --chaos 'read-err:0.02,write-err:0.02,write-delay:5ms:0.05,worker-panic:0.005,stall:5ms:0.05' \
  --chaos-seed 42 --watchdog-interval-ms 100 \
  > "${serve_log}.matrix" 2>/dev/null &
serve_pid=$!
serve_addr=$(wait_for_addr "${serve_log}.matrix")
target/release/loadgen --addr "${serve_addr}" --seconds 3 --concurrency 4 \
  --mode mixed --retries 3 --json > "${smokedir}/matrix.json" \
  || { echo "loadgen failed under the chaos matrix" >&2; cat "${smokedir}/matrix.json" >&2; exit 1; }
grep -q '"dropped": 0' "${smokedir}/matrix.json" \
  || { echo "chaos matrix dropped responses" >&2; cat "${smokedir}/matrix.json" >&2; exit 1; }
matrix_metrics=$(serve_request "${serve_addr}" GET /metrics)
restarts=$(sed -n 's/^maestro_serve_worker_restarts \([0-9]*\).*/\1/p' <<<"${matrix_metrics}" | head -1)
if [ -z "${restarts}" ] || [ "${restarts}" -lt 1 ]; then
  echo "expected maestro_serve_worker_restarts >= 1 under panic chaos, got '${restarts}'" >&2
  exit 1
fi
injected=$(sed -n 's/^maestro_serve_chaos_injected \([0-9]*\).*/\1/p' <<<"${matrix_metrics}" | head -1)
if [ -z "${injected}" ] || [ "${injected}" -lt 1 ]; then
  echo "expected maestro_serve_chaos_injected >= 1, got '${injected}'" >&2
  exit 1
fi
readyz_resp=$(serve_request "${serve_addr}" GET /readyz)
grep -q "HTTP/1.1 200" <<<"${readyz_resp}" \
  || { echo "/readyz not 200 after chaos load: ${readyz_resp}" >&2; exit 1; }
kill -TERM "${serve_pid}"
rc=0; wait "${serve_pid}" || rc=$?
[ "${rc}" -eq 0 ] || { echo "chaos-matrix daemon drain exited ${rc}, expected 0" >&2; exit 1; }

# Serve latency baseline: short steady loads in each serving shape —
# single analyze, 8-point batch, NDJSON stream — plus an *overload* row:
# an open-loop analyze run offering 4x the capacity just measured. The
# admission controller must hold goodput at >= 80% of the 1x capacity
# and keep admitted-request p99 under the request deadline while
# shedding the excess. All composed into one BENCH_serve.json
# (p50/p90/p99 + QPS + outcome census per row).
echo "== serve bench (BENCH_serve.json: analyze + batch + stream + overload rows)"
target/release/maestro serve --addr 127.0.0.1:0 --workers 2 \
  > "${serve_log}.bench" 2>/dev/null &
serve_pid=$!
serve_addr=$(wait_for_addr "${serve_log}.bench")
for mode in analyze batch stream; do
  target/release/loadgen --addr "${serve_addr}" --seconds 2 --concurrency 4 \
    --mode "${mode}" --retries 2 --out "${smokedir}/bench_${mode}.json" > /dev/null
done
cap_qps=$(sed -n 's/.*"qps": \([0-9.]*\).*/\1/p' "${smokedir}/bench_analyze.json" | head -1)
offered=$(awk "BEGIN{printf \"%.0f\", ${cap_qps} * 4}")
target/release/loadgen --addr "${serve_addr}" --seconds 3 --concurrency 8 \
  --mode analyze --retries 0 --offered-rate "${offered}" \
  --out "${smokedir}/bench_overload.json" > /dev/null \
  || { echo "overload loadgen failed" >&2; cat "${smokedir}/bench_overload.json" >&2; exit 1; }
kill -TERM "${serve_pid}"
rc=0; wait "${serve_pid}" || rc=$?
[ "${rc}" -eq 0 ] || { echo "bench daemon drain exited ${rc}, expected 0" >&2; exit 1; }
for mode in analyze batch stream overload; do
  for field in '"qps"' '"p50_ms"' '"p90_ms"' '"p99_ms"' '"ok"' '"shed"'; do
    grep -q "${field}" "${smokedir}/bench_${mode}.json" \
      || { echo "bench ${mode} row is missing ${field}" >&2; cat "${smokedir}/bench_${mode}.json" >&2; exit 1; }
  done
  grep -q '"dropped": 0' "${smokedir}/bench_${mode}.json" \
    || { echo "serve bench (${mode}) dropped responses" >&2; exit 1; }
done
# The accept path is event-driven now: a cached single analyze must land
# well under the former 2 ms accept-poll floor.
p50=$(sed -n 's/.*"p50_ms": \([0-9.]*\).*/\1/p' "${smokedir}/bench_analyze.json" | head -1)
awk "BEGIN{exit !(${p50} < 2.0)}" \
  || { echo "analyze p50 ${p50} ms is not below the former 2 ms accept-poll floor" >&2; exit 1; }
# The overload contract: goodput under 4x offered load stays >= 80% of
# the 1x closed-loop capacity, and the p99 of *admitted* requests stays
# under the 2 s request deadline — collapse on either axis means the
# admission controller is letting queueing delay eat the service rate.
over_qps=$(sed -n 's/.*"qps": \([0-9.]*\).*/\1/p' "${smokedir}/bench_overload.json" | head -1)
over_p99=$(sed -n 's/.*"p99_ms": \([0-9.]*\).*/\1/p' "${smokedir}/bench_overload.json" | head -1)
awk "BEGIN{exit !(${over_qps} >= 0.8 * ${cap_qps})}" \
  || { echo "overload goodput ${over_qps} qps fell below 80% of capacity ${cap_qps} qps" >&2; exit 1; }
awk "BEGIN{exit !(${over_p99} < 2000)}" \
  || { echo "overload p99 ${over_p99} ms breached the 2 s request deadline" >&2; exit 1; }
{
  printf '{\n'
  for mode in analyze batch stream overload; do
    [ "${mode}" = analyze ] || printf ',\n'
    printf '"%s":\n' "${mode}"
    cat "${smokedir}/bench_${mode}.json"
  done
  printf '}\n'
} > BENCH_serve.json

echo "CI OK"

#!/usr/bin/env bash
# Local CI gate: formatting, lints (deny warnings), release build, full
# test suite. Run from the repository root before sending a change out.
#
# The workspace builds fully offline: serde/serde_json/proptest/criterion
# are local shim crates under crates/ (see DESIGN.md), so no registry
# access is needed.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check"
cargo fmt --all --check

echo "== cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

# The analysis-pipeline crates are panic-free by policy (see DESIGN.md):
# no unwrap()/expect() outside tests. Enforced both here and by
# crate-level deny attributes in each lib.rs.
echo "== cargo clippy (panic-free library crates)"
cargo clippy -p maestro-core -p maestro-ir -p maestro-dse -p maestro-hw -p maestro-dnn -p maestro-obs --lib \
  -- -D warnings -D clippy::unwrap-used -D clippy::expect-used

# Library crates never write to stderr directly: diagnostics go through
# the maestro-obs leveled logger (MAESTRO_LOG, off by default), whose
# emit() is the one sanctioned egress point.
echo "== cargo clippy (no stray stderr prints in library crates)"
cargo clippy -p maestro-core -p maestro-ir -p maestro-dse -p maestro-hw -p maestro-dnn \
  -p maestro-sim -p maestro-obs --lib \
  -- -D warnings -D clippy::print-stderr

# No library code may call std::process::exit: every shutdown path goes
# through the CLI's single graceful-exit function (main's ExitCode), which
# flushes the observability sinks first. Enforced here and by the
# crate-level deny attributes in each lib.rs.
echo "== cargo clippy (no process::exit outside main)"
cargo clippy -p maestro-core -p maestro-ir -p maestro-dse -p maestro-hw -p maestro-dnn \
  -p maestro-sim -p maestro-obs --lib \
  -- -D warnings -D clippy::exit

echo "== cargo build --release"
cargo build --release --workspace

echo "== cargo test"
cargo test -q --workspace

# The observability surface stays wired end to end: a real DSE run must
# expose the documented metrics in Prometheus text format. --max-seconds
# bounds the smoke so a regression hangs CI for minutes, not forever (a
# tripped deadline exits 7, which set -e turns into a failure).
echo "== observability smoke (dse --metrics -)"
metrics_out=$(target/release/maestro dse --model vgg16 --layer CONV5 --style KC-P --threads 2 --max-seconds 300 --metrics -)
for name in maestro_cache_hits maestro_cache_misses maestro_dse_unit_rate \
            maestro_dse_pareto_inserted maestro_dse_units_quarantined; do
  if ! grep -q "# TYPE ${name}" <<<"${metrics_out}"; then
    echo "missing metric ${name} in --metrics output" >&2
    exit 1
  fi
done

# Staged evaluation is a pure refactor of analyze(): the golden suite
# must prove the staged DSE bit-identical to full evaluation at 1/2/8/
# auto threads, with checkpoints and under fault injection, before any
# rate number is trusted.
echo "== staged-equivalence goldens"
cargo test -q --release -p maestro-dse --test staged_equivalence
cargo test -q --release -p maestro-sim --test staged_conform_smoke

# DSE-rate smoke: times full vs staged on the standard VGG16 CONV2 /
# KC-P sweep and refreshes the BENCH_dse_rate.json baseline tracked in
# the repo, so perf regressions show up as a diff in review. The binary
# itself asserts the two modes' results are bit-identical.
echo "== dse_rate smoke (BENCH_dse_rate.json)"
target/release/dse_rate_smoke --repeats 5 --out BENCH_dse_rate.json
grep -q '"bit_identical": true' BENCH_dse_rate.json

# The closed-form model and the step simulator must agree on a fixed
# fuzz corpus: any divergence beyond the calibrated tolerances exits 6
# and prints a minimized, ready-to-paste reproducer.
echo "== differential conformance smoke (conform --seed 1)"
conform_out=$(target/release/maestro conform --seed 1 --cases 200 --max-seconds 300 --metrics -)
if ! grep -q "maestro_conform_diverged 0" <<<"${conform_out}"; then
  echo "conformance divergence (or missing counter) in conform output" >&2
  grep -m1 "diverged" <<<"${conform_out}" >&2 || true
  exit 1
fi

# Interruption-proofing smoke: SIGTERM a sweep mid-flight (stretched by
# injected delays so the signal reliably lands between units), expect a
# graceful exit 7 plus a checkpoint, resume it without injection, and
# demand the resumed frontier is bit-identical to an uninterrupted run
# (only the wall-clock `seconds`/`rate` stats and the `partial` marker
# may differ).
echo "== kill-and-resume smoke (dse SIGTERM + --resume)"
smokedir=$(mktemp -d)
trap 'rm -rf "${smokedir}"' EXIT
dse_args=(dse --model vgg16 --layer CONV5 --style KC-P --threads 2 --json)
target/release/maestro "${dse_args[@]}" --max-seconds 300 > "${smokedir}/golden.json"
target/release/maestro "${dse_args[@]}" \
  --checkpoint "${smokedir}/smoke.ckpt" --inject delay:300ms:1.0 \
  > "${smokedir}/partial.json" 2> "${smokedir}/partial.err" &
dse_pid=$!
sleep 0.8
kill -TERM "${dse_pid}" 2>/dev/null || true
rc=0; wait "${dse_pid}" || rc=$?
if [ "${rc}" -ne 7 ]; then
  echo "interrupted dse exited ${rc}, expected 7" >&2
  cat "${smokedir}/partial.err" >&2 || true
  exit 1
fi
if ! grep -q '"partial": true' "${smokedir}/partial.json"; then
  echo "interrupted dse output lacks the partial marker" >&2
  exit 1
fi
target/release/maestro "${dse_args[@]}" --max-seconds 300 \
  --resume "${smokedir}/smoke.ckpt" > "${smokedir}/resumed.json" 2>/dev/null
strip_clock() { grep -v '"seconds"\|"rate"' "$1"; }
if ! diff <(strip_clock "${smokedir}/golden.json") <(strip_clock "${smokedir}/resumed.json") >/dev/null; then
  echo "resumed frontier differs from the uninterrupted golden run" >&2
  exit 1
fi

echo "CI OK"

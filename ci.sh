#!/usr/bin/env bash
# Local CI gate: formatting, lints (deny warnings), release build, full
# test suite. Run from the repository root before sending a change out.
#
# The workspace builds fully offline: serde/serde_json/proptest/criterion
# are local shim crates under crates/ (see DESIGN.md), so no registry
# access is needed.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check"
cargo fmt --all --check

echo "== cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

# The analysis-pipeline crates are panic-free by policy (see DESIGN.md):
# no unwrap()/expect() outside tests. Enforced both here and by
# crate-level deny attributes in each lib.rs.
echo "== cargo clippy (panic-free library crates)"
cargo clippy -p maestro-core -p maestro-ir -p maestro-dse -p maestro-hw -p maestro-dnn -p maestro-obs --lib \
  -- -D warnings -D clippy::unwrap-used -D clippy::expect-used

# Library crates never write to stderr directly: diagnostics go through
# the maestro-obs leveled logger (MAESTRO_LOG, off by default), whose
# emit() is the one sanctioned egress point.
echo "== cargo clippy (no stray stderr prints in library crates)"
cargo clippy -p maestro-core -p maestro-ir -p maestro-dse -p maestro-hw -p maestro-dnn \
  -p maestro-sim -p maestro-obs --lib \
  -- -D warnings -D clippy::print-stderr

echo "== cargo build --release"
cargo build --release --workspace

echo "== cargo test"
cargo test -q --workspace

# The observability surface stays wired end to end: a real DSE run must
# expose the documented metrics in Prometheus text format.
echo "== observability smoke (dse --metrics -)"
metrics_out=$(target/release/maestro dse --model vgg16 --layer CONV5 --style KC-P --threads 2 --metrics -)
for name in maestro_cache_hits maestro_cache_misses maestro_dse_unit_rate \
            maestro_dse_pareto_inserted maestro_dse_units_quarantined; do
  if ! grep -q "# TYPE ${name}" <<<"${metrics_out}"; then
    echo "missing metric ${name} in --metrics output" >&2
    exit 1
  fi
done

# The closed-form model and the step simulator must agree on a fixed
# fuzz corpus: any divergence beyond the calibrated tolerances exits 6
# and prints a minimized, ready-to-paste reproducer.
echo "== differential conformance smoke (conform --seed 1)"
conform_out=$(target/release/maestro conform --seed 1 --cases 200 --metrics -)
if ! grep -q "maestro_conform_diverged 0" <<<"${conform_out}"; then
  echo "conformance divergence (or missing counter) in conform output" >&2
  grep -m1 "diverged" <<<"${conform_out}" >&2 || true
  exit 1
fi

echo "CI OK"

#!/usr/bin/env bash
# Local CI gate: formatting, lints (deny warnings), release build, full
# test suite. Run from the repository root before sending a change out.
#
# The workspace builds fully offline: serde/serde_json/proptest/criterion
# are local shim crates under crates/ (see DESIGN.md), so no registry
# access is needed.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check"
cargo fmt --all --check

echo "== cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo build --release"
cargo build --release --workspace

echo "== cargo test"
cargo test -q --workspace

echo "CI OK"

//! The hardware design space and its constraints.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A structurally invalid [`SweepSpace`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpaceError {
    /// The named grid has no entries.
    EmptyGrid {
        /// The offending grid (`pes`, `noc_bw`, `l1_bytes` or `l2_bytes`).
        grid: &'static str,
    },
    /// The named grid contains a zero entry.
    ZeroEntry {
        /// The offending grid (`pes`, `noc_bw`, `l1_bytes` or `l2_bytes`).
        grid: &'static str,
    },
}

impl fmt::Display for SpaceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpaceError::EmptyGrid { grid } => write!(f, "sweep grid `{grid}` is empty"),
            SpaceError::ZeroEntry { grid } => write!(f, "sweep grid `{grid}` contains 0"),
        }
    }
}

impl std::error::Error for SpaceError {}

/// Area/power budget for valid designs (the paper uses Eyeriss' reported
/// envelope: 16 mm², 450 mW).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Constraints {
    /// Maximum die area in mm².
    pub max_area_mm2: f64,
    /// Maximum power in mW.
    pub max_power_mw: f64,
}

impl Constraints {
    /// The paper's Eyeriss-envelope constraint point.
    pub const fn eyeriss_envelope() -> Self {
        Constraints {
            max_area_mm2: 16.0,
            max_power_mw: 450.0,
        }
    }
}

impl Default for Constraints {
    fn default() -> Self {
        Self::eyeriss_envelope()
    }
}

/// The swept hardware parameters: PE count, NoC bandwidth and the L1/L2
/// capacities (paper §5.2's four parameters). Buffer capacities are swept
/// as *placement* choices — a design is valid only when they cover the
/// dataflow's requirement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepSpace {
    /// PE counts to explore.
    pub pes: Vec<u64>,
    /// NoC bandwidths (elements/cycle) to explore.
    pub noc_bw: Vec<u64>,
    /// Per-PE L1 capacities (bytes) to explore.
    pub l1_bytes: Vec<u64>,
    /// Shared L2 capacities (bytes) to explore.
    pub l2_bytes: Vec<u64>,
}

impl SweepSpace {
    /// The default space: 16–512 PEs, 1–64 wide NoC, 0.25–16 KB L1,
    /// 16 KB–4 MB L2 (geometric grids).
    pub fn standard() -> Self {
        SweepSpace {
            pes: vec![16, 24, 32, 48, 64, 96, 128, 152, 192, 256, 384, 512],
            noc_bw: vec![1, 2, 4, 8, 16, 24, 32, 48, 64],
            l1_bytes: geometric(256, 16 * 1024, 17),
            l2_bytes: geometric(16 * 1024, 4 * 1024 * 1024, 17),
        }
    }

    /// A small space for tests.
    pub fn tiny() -> Self {
        SweepSpace {
            pes: vec![16, 64, 128],
            noc_bw: vec![4, 16, 32],
            l1_bytes: vec![512, 2048, 8192],
            l2_bytes: vec![64 * 1024, 512 * 1024, 2 * 1024 * 1024],
        }
    }

    /// Total number of hardware points (excluding mapping variants).
    pub fn size(&self) -> u64 {
        (self.pes.len() * self.noc_bw.len() * self.l1_bytes.len() * self.l2_bytes.len()) as u64
    }

    /// Number of L1 × L2 capacity cells — the points expanded from one
    /// analysis evaluation, and the row length of the per-bandwidth
    /// area/power and per-mapping energy tables in the explorer.
    pub fn capacity_cells(&self) -> usize {
        self.l1_bytes.len() * self.l2_bytes.len()
    }

    /// Check that every grid is non-empty and zero-free.
    ///
    /// Grids do **not** need to be sorted: the explorer takes true minima
    /// wherever a "smallest configuration" is needed.
    ///
    /// # Errors
    ///
    /// Returns a [`SpaceError`] naming the first offending grid.
    pub fn validate(&self) -> Result<(), SpaceError> {
        for (name, grid) in [
            ("pes", &self.pes),
            ("noc_bw", &self.noc_bw),
            ("l1_bytes", &self.l1_bytes),
            ("l2_bytes", &self.l2_bytes),
        ] {
            if grid.is_empty() {
                return Err(SpaceError::EmptyGrid { grid: name });
            }
            if grid.contains(&0) {
                return Err(SpaceError::ZeroEntry { grid: name });
            }
        }
        Ok(())
    }
}

/// `n` geometrically spaced values from `lo` to `hi` (inclusive, rounded).
pub fn geometric(lo: u64, hi: u64, n: usize) -> Vec<u64> {
    assert!(n >= 2 && lo > 0 && hi > lo);
    let ratio = (hi as f64 / lo as f64).powf(1.0 / (n - 1) as f64);
    let mut out: Vec<u64> = (0..n)
        .map(|i| (lo as f64 * ratio.powi(i as i32)).round() as u64)
        .collect();
    out.dedup();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometric_grid_endpoints() {
        let g = geometric(256, 16 * 1024, 7);
        assert_eq!(*g.first().unwrap(), 256);
        assert_eq!(*g.last().unwrap(), 16 * 1024);
        assert!(g.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn space_size() {
        let s = SweepSpace::tiny();
        assert_eq!(s.size(), 81);
        assert!(SweepSpace::standard().size() > 10_000);
    }

    #[test]
    fn validate_flags_empty_and_zero_grids() {
        assert!(SweepSpace::tiny().validate().is_ok());
        assert!(SweepSpace::standard().validate().is_ok());
        let mut s = SweepSpace::tiny();
        s.l1_bytes.clear();
        let err = s.validate().unwrap_err();
        assert_eq!(err, SpaceError::EmptyGrid { grid: "l1_bytes" });
        assert!(err.to_string().contains("l1_bytes"));
        let mut s = SweepSpace::tiny();
        s.noc_bw.push(0);
        let err = s.validate().unwrap_err();
        assert_eq!(err, SpaceError::ZeroEntry { grid: "noc_bw" });
        assert!(err.to_string().contains("noc_bw"));
        // Unsorted grids are allowed.
        let mut s = SweepSpace::tiny();
        s.l2_bytes.reverse();
        assert!(s.validate().is_ok());
    }

    #[test]
    fn default_constraints_are_the_eyeriss_envelope() {
        let c = Constraints::default();
        assert_eq!(c.max_area_mm2, 16.0);
        assert_eq!(c.max_power_mw, 450.0);
    }
}

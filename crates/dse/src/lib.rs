//! Hardware design-space exploration driven by the MAESTRO cost model
//! (paper §5.2, Figure 13, Table 5).
//!
//! The explorer sweeps PE count, NoC bandwidth, L1/L2 capacities and the
//! dataflow's mapping (tile-size) variants under an area/power budget,
//! bulk-skipping sub-spaces that cannot meet the budget, and reports the
//! Pareto front plus throughput-, energy- and EDP-optimized designs.
//!
//! # Example
//!
//! ```
//! use maestro_dnn::{Layer, LayerDims, Operator};
//! use maestro_dse::{variants, Explorer, SweepSpace};
//! use maestro_ir::Style;
//!
//! let layer = Layer::new("c", Operator::conv2d(), LayerDims::square(1, 32, 32, 34, 3));
//! let explorer = Explorer::new(SweepSpace::tiny());
//! let result = explorer
//!     .explore(&layer, &variants::variants(Style::KCP))
//!     .expect("valid sweep space");
//! assert!(result.stats.valid > 0);
//! assert!(result.stats.quarantined.is_empty());
//! ```

// Library code is panic-free by policy: fallible paths return typed errors
// instead of unwrapping, and panicking work units are quarantined rather
// than fatal. Tests are exempt (compiled out under `cfg(test)`).
#![cfg_attr(
    not(test),
    deny(
        clippy::unwrap_used,
        clippy::expect_used,
        clippy::print_stderr,
        clippy::exit
    )
)]

pub mod cancel;
pub mod checkpoint;
pub mod explorer;
pub mod fault;
pub mod parallel;
pub mod space;
pub mod tuner;
pub mod variants;

pub use cancel::{CancelToken, SessionCtl, SessionError, SessionReport, UnitUpdate};
pub use checkpoint::{sweep_fingerprint, Checkpoint, CheckpointError, UnitEntry};
pub use explorer::{
    insert_pareto, unit_seconds_buckets, DesignPoint, DseResult, DseStats, EvalMode, Explorer,
    ParetoFront, Partial, QuarantinedUnit,
};
pub use fault::{Fault, FaultPlan, FaultSpecError};
pub use parallel::{
    merge_partials, resolve_threads, run_units, unit_trace_draw, unit_trace_id, UnitOutcome,
};
pub use space::{Constraints, SpaceError, SweepSpace};
pub use tuner::{tune_layer, tune_model, Objective, TunedLayer, TunedModel};

//! Session control for interruption-proof sweeps.
//!
//! Re-exports the shared cooperative [`CancelToken`] (which lives in
//! `maestro-obs` so `maestro-sim`'s conformance runner can poll the same
//! token without a dependency on this crate) and defines the control/report
//! types for a *session* — an [`crate::Explorer`] run that may be resumed
//! from a checkpoint, bounded by a deadline, cancelled by a signal, and
//! exercised under deterministic fault injection. See
//! [`crate::Explorer::explore_session`].

pub use maestro_obs::cancel::{interrupt_raised, raise_interrupt, CancelToken};

use crate::checkpoint::{Checkpoint, CheckpointError};
use crate::fault::FaultPlan;
use crate::space::SpaceError;
use std::fmt;
use std::path::PathBuf;
use std::time::Duration;

/// Progress callback: `(completed_units, total_units)` after each unit
/// reaches a terminal outcome (including units skipped via resume, which
/// are reported once up front). Called from worker threads; keep it cheap.
pub type ProgressFn = dyn Fn(usize, usize) + Sync;

/// One completed work unit's frontier contribution, delivered to
/// [`SessionCtl::on_unit`] streaming consumers as the unit finishes.
///
/// The calls are serialized (the engine fires them under its completion
/// lock), `completed` is strictly monotone across them, and `pareto`
/// borrows the unit's own frontier slice — the *incremental* view; the
/// merged cross-unit frontier arrives with the final
/// [`crate::DseResult`].
#[derive(Debug)]
pub struct UnitUpdate<'a> {
    /// The unit's index in the sweep.
    pub unit: usize,
    /// Terminal units so far (including resumed-skipped ones).
    pub completed: usize,
    /// Total work units in the sweep.
    pub total: usize,
    /// This unit's local Pareto frontier (empty for a failed unit).
    pub pareto: &'a [crate::explorer::DesignPoint],
    /// The failure message when the unit was quarantined.
    pub failed: Option<&'a str>,
}

/// Per-unit streaming callback. Called from worker threads under the
/// completion lock — keep it bounded (a socket write with a timeout is
/// fine; unbounded blocking stalls the sweep).
pub type UnitFn = dyn Fn(&UnitUpdate<'_>) + Sync;

/// Controls for one interruption-proof sweep. [`SessionCtl::default`] is
/// a plain run-to-completion sweep: no checkpointing, no deadline, no
/// faults, a detached token.
pub struct SessionCtl {
    /// Cancellation token polled at work-unit boundaries. Arm a deadline
    /// on it for `--deadline`; pass [`CancelToken::new`] to also heed the
    /// process-wide interrupt flag (signals).
    pub token: CancelToken,
    /// Where to write checkpoints (periodic and final). `None` disables
    /// checkpointing.
    pub checkpoint_path: Option<PathBuf>,
    /// Write a checkpoint every this many completed units (0 = never on a
    /// unit count). The default is 0: unit-count cadence ties the write
    /// cost to the unit duration, which for fast units dwarfs the work
    /// itself, while the time-based cadence below bounds overhead by
    /// construction (one ~millisecond write per interval).
    pub checkpoint_every_units: usize,
    /// Write a checkpoint when this much time passed since the last
    /// write (checked at unit completion). Default: every 5 seconds —
    /// steady-state overhead is write-cost / 5 s, well under 1% on any
    /// workload. A graceful shutdown *always* writes a final checkpoint,
    /// so the interval only bounds how much work a SIGKILL can lose.
    pub checkpoint_every: Option<Duration>,
    /// A previously saved checkpoint to resume from. Its fingerprint must
    /// match this sweep or the session fails with
    /// [`SessionError::Checkpoint`]. Completed units (including
    /// quarantined ones) are not re-run.
    pub resume: Option<Checkpoint>,
    /// Deterministic fault plan (empty = no injection).
    pub faults: FaultPlan,
    /// How many times a failed (panicked / timed-out) unit is re-attempted
    /// before being quarantined. Fault draws are per-attempt, so a unit
    /// hit by a transient injected fault recovers on retry and the sweep
    /// result stays identical to an uninjected run.
    pub retries: u32,
    /// Per-unit watchdog budget. Deterministic by construction: only
    /// *injected* stalls can trip it (real unit work is pure compute with
    /// no cancellation points), so timeout decisions do not depend on
    /// machine speed. A unit whose injected stall meets the budget is
    /// cut short, counted in `maestro.dse.units_timed_out`, and rerouted
    /// to a retry.
    pub unit_timeout: Option<Duration>,
    /// Progress observer (the CLI's `--progress` line).
    pub on_progress: Option<Box<ProgressFn>>,
    /// Per-unit frontier observer (the serving daemon's NDJSON stream).
    /// Fired once per unit completed *in this session* — resumed-skipped
    /// units are not replayed.
    pub on_unit: Option<Box<UnitFn>>,
    /// Record a per-unit trace into the global
    /// [`maestro_obs::FlightRecorder`] for 1 in this many units
    /// (`None` = off, the CLI's `--trace-sample`). Sampling is on the
    /// *unit index* — deterministic across thread counts and
    /// interrupt/resume splits — and quarantined units are always kept,
    /// so a failed sweep is attributable after the fact.
    pub trace_sample: Option<u64>,
    /// Seed mixed into sampled units' trace IDs, so a given
    /// `(seed, unit)` pair names the same trace on every run.
    pub trace_seed: u64,
}

impl Default for SessionCtl {
    fn default() -> Self {
        SessionCtl {
            token: CancelToken::detached(),
            checkpoint_path: None,
            checkpoint_every_units: 0,
            checkpoint_every: Some(Duration::from_secs(5)),
            resume: None,
            faults: FaultPlan::new(0, Vec::new()),
            retries: 1,
            unit_timeout: None,
            on_progress: None,
            on_unit: None,
            trace_sample: None,
            trace_seed: 0,
        }
    }
}

impl fmt::Debug for SessionCtl {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SessionCtl")
            .field("checkpoint_path", &self.checkpoint_path)
            .field("checkpoint_every_units", &self.checkpoint_every_units)
            .field("checkpoint_every", &self.checkpoint_every)
            .field("resumed", &self.resume.is_some())
            .field("faults", &self.faults)
            .field("retries", &self.retries)
            .field("unit_timeout", &self.unit_timeout)
            .field("on_progress", &self.on_progress.is_some())
            .field("on_unit", &self.on_unit.is_some())
            .field("trace_sample", &self.trace_sample)
            .field("trace_seed", &self.trace_seed)
            .finish()
    }
}

/// What happened control-wise during a session (the science lives in the
/// accompanying [`crate::DseResult`]). Wall-clock-dependent fields here
/// are *not* covered by the bit-identical guarantee.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SessionReport {
    /// The cancellation token tripped (signal, explicit cancel, or
    /// deadline) before every unit completed.
    pub interrupted: bool,
    /// The token's deadline specifically had passed by session end.
    pub deadline_hit: bool,
    /// Units skipped because the resume checkpoint already held them.
    pub resumed_skipped: usize,
    /// Checkpoint files written during this session (periodic + final).
    pub checkpoint_writes: u64,
    /// Units with a terminal outcome (done or quarantined), including
    /// resumed ones.
    pub completed_units: usize,
    /// Total work units in the sweep.
    pub total_units: usize,
    /// Extra attempts spent re-running failed units.
    pub units_retried: u64,
    /// Attempts cut short by the per-unit watchdog.
    pub units_timed_out: u64,
    /// Individual faults injected (a unit hit by two kinds counts twice).
    pub faults_injected: u64,
}

/// Why a session could not run (distinct from *being interrupted*, which
/// is a successful outcome carrying partial results).
#[derive(Debug, Clone, PartialEq)]
pub enum SessionError {
    /// The sweep space is invalid.
    Space(SpaceError),
    /// A checkpoint could not be read, written, or accepted (corruption,
    /// version or fingerprint mismatch).
    Checkpoint(CheckpointError),
}

impl fmt::Display for SessionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SessionError::Space(e) => e.fmt(f),
            SessionError::Checkpoint(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for SessionError {}

impl From<SpaceError> for SessionError {
    fn from(e: SpaceError) -> Self {
        SessionError::Space(e)
    }
}

impl From<CheckpointError> for SessionError {
    fn from(e: CheckpointError) -> Self {
        SessionError::Checkpoint(e)
    }
}

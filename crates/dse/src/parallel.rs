//! Sharded parallel execution with a deterministic merge.
//!
//! The explorer's sweep is decomposed into independent **work units**, one
//! per PE-count index. A unit produces a [`Partial`] — private statistics,
//! Pareto front, per-objective bests and scatter subsample for its slice
//! of the space. [`run_units`] executes units either inline or on scoped
//! worker threads pulling indices from a shared atomic counter, and always
//! returns the partials **in unit-index order** regardless of which thread
//! computed what. [`merge_partials`] then folds them in that fixed order.
//!
//! Because the sequential path (`threads == 1`) runs the *same* units
//! through the *same* merge, the parallel result is bit-identical to the
//! sequential one at any thread count — only the wall-clock fields
//! (`seconds`, `rate`) differ:
//!
//! * **Pareto front** — re-inserting each unit's surviving points in
//!   global unit order reproduces the sequential fold: a point eliminated
//!   inside its unit is dominated by an in-unit survivor (dominance is
//!   transitive, so it would also lose globally), and `insert_pareto`'s
//!   first-wins tie rule sees candidates in the same relative order.
//! * **Per-objective bests** — folded with strict `<`, so the earliest
//!   unit's point wins ties, exactly as in a sequential sweep.
//! * **Sample** — each unit samples every 61st of *its own* valid points;
//!   the merge concatenates unit samples in order and truncates at the
//!   cap. The rule is applied per-unit on the sequential path too, which
//!   is what makes the subsample mergeable at all.
//! * **Counters** — sums, which commute.
//!
//! # Fault isolation
//!
//! Each work unit runs under [`std::panic::catch_unwind`], on the inline
//! path and on the workers alike. A panicking unit yields an `Err` at its
//! fixed index instead of aborting the sweep; [`merge_partials`] records it
//! in [`DseStats::quarantined`] (unit index + panic payload) and folds the
//! remaining units unchanged. Because the failed unit contributes nothing
//! at the same position on every path, results stay bit-identical at any
//! thread count even in the presence of failures.

use crate::explorer::{insert_pareto, update_best, DseResult, DseStats, Partial, QuarantinedUnit};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};

/// What one work unit produced: its [`Partial`], or the panic payload
/// (rendered as a string) if it panicked.
pub type UnitOutcome = Result<Partial, String>;

/// Counter of quarantined work units (`maestro.dse.units_quarantined`),
/// with the registry lookup cached behind a `OnceLock`.
fn quarantine_counter() -> &'static maestro_obs::Counter {
    static C: std::sync::OnceLock<maestro_obs::Counter> = std::sync::OnceLock::new();
    C.get_or_init(|| maestro_obs::registry().counter("maestro.dse.units_quarantined"))
}

/// Render a panic payload as a string (`&str` and `String` payloads pass
/// through; anything else gets a placeholder).
fn payload_to_string(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Resolve a thread-count request: `0` means "one per available core".
pub fn resolve_threads(requested: usize) -> usize {
    if requested == 0 {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    } else {
        requested
    }
}

/// Run `units` work units on up to `threads` scoped worker threads
/// (`0` = auto, one per core) and return their outcomes in unit-index
/// order.
///
/// Units are claimed dynamically from an atomic counter, so uneven unit
/// costs (bulk-skipped PE counts finish instantly) still load-balance.
///
/// A panicking unit becomes an `Err` at its index — on the sequential and
/// parallel paths alike — so a single poisoned configuration degrades that
/// slice instead of aborting the whole sweep.
pub fn run_units<F>(units: usize, threads: usize, unit: F) -> Vec<UnitOutcome>
where
    F: Fn(usize) -> Partial + Sync,
{
    let run_one = |i: usize| -> UnitOutcome {
        catch_unwind(AssertUnwindSafe(|| unit(i))).map_err(payload_to_string)
    };
    let threads = resolve_threads(threads).clamp(1, units.max(1));
    if threads == 1 {
        return (0..units).map(run_one).collect();
    }
    let next = AtomicUsize::new(0);
    let per_worker: Vec<Vec<(usize, UnitOutcome)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    let mut mine = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= units {
                            break;
                        }
                        mine.push((i, run_one(i)));
                    }
                    mine
                })
            })
            .collect();
        handles.into_iter().filter_map(|h| h.join().ok()).collect()
    });
    let mut slots: Vec<Option<UnitOutcome>> = (0..units).map(|_| None).collect();
    for (i, outcome) in per_worker.into_iter().flatten() {
        debug_assert!(slots[i].is_none(), "unit {i} claimed twice");
        slots[i] = Some(outcome);
    }
    // Unit panics are caught inside the worker loop, so a worker thread
    // dying (join error) should be impossible — but if it happens, its
    // claimed units are quarantined rather than crashing the merge.
    slots
        .into_iter()
        .map(|s| s.unwrap_or_else(|| Err("work unit result lost (worker thread died)".to_string())))
        .collect()
}

/// Fold unit outcomes — **in the given order** — into one result.
///
/// Failed units are quarantined into [`DseStats::quarantined`] (in
/// unit-index order) and contribute nothing else, which preserves the
/// bit-identical-at-any-thread-count guarantee even when units fail.
///
/// `seconds`/`rate` are left at zero; the caller stamps wall-clock time.
pub fn merge_partials(outcomes: Vec<UnitOutcome>, sample_cap: usize) -> DseResult {
    // Touch the counter up front so `maestro.dse.units_quarantined` shows
    // up (at zero) in every exposition, not only after the first failure —
    // dashboards and the CI grep rely on its presence.
    let quarantined_units = quarantine_counter();
    let mut out = DseResult {
        pareto: Vec::new(),
        best_throughput: None,
        best_energy: None,
        best_edp: None,
        sample: Vec::new(),
        stats: DseStats::empty(),
    };
    for (i, outcome) in outcomes.into_iter().enumerate() {
        let part = match outcome {
            Ok(p) => p,
            Err(message) => {
                maestro_obs::warn!("DSE work unit {i} quarantined: {message}");
                quarantined_units.inc();
                out.stats
                    .quarantined
                    .push(QuarantinedUnit { unit: i, message });
                continue;
            }
        };
        out.stats.explored += part.stats.explored;
        out.stats.evaluated += part.stats.evaluated;
        out.stats.valid += part.stats.valid;
        out.stats.memo_hits += part.stats.memo_hits;
        out.stats.nonfinite_dropped += part.stats.nonfinite_dropped;
        out.stats.capacity_skipped += part.stats.capacity_skipped;
        out.stats.pareto_inserted += part.stats.pareto_inserted;
        out.stats.pareto_rejected += part.stats.pareto_rejected;
        for p in &part.pareto {
            insert_pareto(&mut out.pareto, p);
        }
        if let Some(p) = &part.best_throughput {
            update_best(&mut out.best_throughput, p, |p| -p.throughput);
        }
        if let Some(p) = &part.best_energy {
            update_best(&mut out.best_energy, p, |p| p.energy);
        }
        if let Some(p) = &part.best_edp {
            update_best(&mut out.best_edp, p, |p| p.edp);
        }
        let room = sample_cap.saturating_sub(out.sample.len());
        out.sample.extend(part.sample.into_iter().take(room));
    }
    out
}

// The scoped workers share `&Explorer`, `&Layer`, `&Model` and
// `&[Dataflow]`; fail at compile time (with a readable message, not a
// trait-bound blizzard at the `scope.spawn` call) if any of them stops
// being thread-shareable.
const _: () = {
    const fn assert_sync<T: Sync>() {}
    const fn assert_send<T: Send>() {}
    assert_sync::<crate::Explorer>();
    assert_sync::<maestro_dnn::Layer>();
    assert_sync::<maestro_dnn::Model>();
    assert_sync::<maestro_ir::Dataflow>();
    assert_send::<Partial>();
    assert_send::<DseResult>();
};

#[cfg(test)]
mod tests {
    use super::*;

    fn unit(i: usize) -> Partial {
        let mut p = Partial::new();
        p.stats.explored = 100 + i as u64;
        p.stats.valid = i as u64;
        p
    }

    fn explored(outcomes: &[UnitOutcome]) -> Vec<u64> {
        outcomes
            .iter()
            .map(|o| o.as_ref().expect("unit ok").stats.explored)
            .collect()
    }

    #[test]
    fn run_units_is_index_ordered_at_any_thread_count() {
        let sequential = run_units(7, 1, unit);
        for threads in [2, 3, 8, 64] {
            let parallel = run_units(7, threads, unit);
            assert_eq!(
                explored(&sequential),
                explored(&parallel),
                "threads={threads}"
            );
        }
    }

    #[test]
    fn zero_units_and_auto_threads() {
        assert!(run_units(0, 0, unit).is_empty());
        assert!(resolve_threads(0) >= 1);
        assert_eq!(resolve_threads(5), 5);
    }

    #[test]
    fn merge_sums_counters() {
        let merged = merge_partials(run_units(4, 2, unit), 16);
        assert_eq!(merged.stats.explored, 100 + 101 + 102 + 103);
        assert_eq!(merged.stats.valid, 1 + 2 + 3);
        assert!(merged.pareto.is_empty());
        assert!(merged.stats.quarantined.is_empty());
    }

    fn faulty(i: usize) -> Partial {
        if i == 2 {
            panic!("unit {i} is poisoned");
        }
        unit(i)
    }

    #[test]
    fn panicking_unit_is_quarantined_not_fatal() {
        for threads in [1, 2, 8, 0] {
            let outcomes = run_units(5, threads, faulty);
            assert_eq!(outcomes.len(), 5);
            assert!(outcomes[2].is_err(), "threads={threads}");
            let merged = merge_partials(outcomes, 16);
            assert_eq!(merged.stats.quarantined.len(), 1);
            let q = &merged.stats.quarantined[0];
            assert_eq!(q.unit, 2);
            assert!(q.message.contains("unit 2 is poisoned"), "{}", q.message);
            // The surviving units' counters are all present.
            assert_eq!(merged.stats.explored, 100 + 101 + 103 + 104);
            assert_eq!(merged.stats.valid, 1 + 3 + 4);
        }
    }

    #[test]
    fn quarantine_preserves_merge_determinism() {
        let reference = merge_partials(run_units(5, 1, faulty), 16);
        for threads in [2, 8, 0] {
            let merged = merge_partials(run_units(5, threads, faulty), 16);
            assert_eq!(merged.stats, reference.stats, "threads={threads}");
        }
    }
}

//! Sharded parallel execution with a deterministic merge.
//!
//! The explorer's sweep is decomposed into independent **work units**, one
//! per PE-count index. A unit produces a [`Partial`] — private statistics,
//! Pareto front, per-objective bests and scatter subsample for its slice
//! of the space. [`run_units`] executes units either inline or on scoped
//! worker threads pulling indices from a shared atomic counter, and always
//! returns the partials **in unit-index order** regardless of which thread
//! computed what. [`merge_partials`] then folds them in that fixed order.
//!
//! Because the sequential path (`threads == 1`) runs the *same* units
//! through the *same* merge, the parallel result is bit-identical to the
//! sequential one at any thread count — only the wall-clock fields
//! (`seconds`, `rate`) differ:
//!
//! * **Pareto front** — re-inserting each unit's surviving points in
//!   global unit order reproduces the sequential fold: a point eliminated
//!   inside its unit is dominated by an in-unit survivor (dominance is
//!   transitive, so it would also lose globally), and `insert_pareto`'s
//!   first-wins tie rule sees candidates in the same relative order.
//! * **Per-objective bests** — folded with strict `<`, so the earliest
//!   unit's point wins ties, exactly as in a sequential sweep.
//! * **Sample** — each unit samples every 61st of *its own* valid points;
//!   the merge concatenates unit samples in order and truncates at the
//!   cap. The rule is applied per-unit on the sequential path too, which
//!   is what makes the subsample mergeable at all.
//! * **Counters** — sums, which commute.

use crate::explorer::{insert_pareto, update_best, DseResult, DseStats, Partial};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Resolve a thread-count request: `0` means "one per available core".
pub fn resolve_threads(requested: usize) -> usize {
    if requested == 0 {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    } else {
        requested
    }
}

/// Run `units` work units on up to `threads` scoped worker threads
/// (`0` = auto, one per core) and return the partials in unit-index order.
///
/// Units are claimed dynamically from an atomic counter, so uneven unit
/// costs (bulk-skipped PE counts finish instantly) still load-balance.
pub fn run_units<F>(units: usize, threads: usize, unit: F) -> Vec<Partial>
where
    F: Fn(usize) -> Partial + Sync,
{
    let threads = resolve_threads(threads).clamp(1, units.max(1));
    if threads == 1 {
        return (0..units).map(unit).collect();
    }
    let next = AtomicUsize::new(0);
    let per_worker: Vec<Vec<(usize, Partial)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    let mut mine = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= units {
                            break;
                        }
                        mine.push((i, unit(i)));
                    }
                    mine
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("DSE worker panicked"))
            .collect()
    });
    let mut slots: Vec<Option<Partial>> = (0..units).map(|_| None).collect();
    for (i, partial) in per_worker.into_iter().flatten() {
        debug_assert!(slots[i].is_none(), "unit {i} claimed twice");
        slots[i] = Some(partial);
    }
    slots
        .into_iter()
        .map(|s| s.expect("every unit claimed exactly once"))
        .collect()
}

/// Fold unit partials — **in the given order** — into one result.
///
/// `seconds`/`rate` are left at zero; the caller stamps wall-clock time.
pub fn merge_partials(partials: Vec<Partial>, sample_cap: usize) -> DseResult {
    let mut out = DseResult {
        pareto: Vec::new(),
        best_throughput: None,
        best_energy: None,
        best_edp: None,
        sample: Vec::new(),
        stats: DseStats::empty(),
    };
    for part in partials {
        out.stats.explored += part.stats.explored;
        out.stats.evaluated += part.stats.evaluated;
        out.stats.valid += part.stats.valid;
        out.stats.memo_hits += part.stats.memo_hits;
        for p in &part.pareto {
            insert_pareto(&mut out.pareto, p);
        }
        if let Some(p) = &part.best_throughput {
            update_best(&mut out.best_throughput, p, |p| -p.throughput);
        }
        if let Some(p) = &part.best_energy {
            update_best(&mut out.best_energy, p, |p| p.energy);
        }
        if let Some(p) = &part.best_edp {
            update_best(&mut out.best_edp, p, |p| p.edp);
        }
        let room = sample_cap.saturating_sub(out.sample.len());
        out.sample.extend(part.sample.into_iter().take(room));
    }
    out
}

// The scoped workers share `&Explorer`, `&Layer`, `&Model` and
// `&[Dataflow]`; fail at compile time (with a readable message, not a
// trait-bound blizzard at the `scope.spawn` call) if any of them stops
// being thread-shareable.
const _: () = {
    const fn assert_sync<T: Sync>() {}
    const fn assert_send<T: Send>() {}
    assert_sync::<crate::Explorer>();
    assert_sync::<maestro_dnn::Layer>();
    assert_sync::<maestro_dnn::Model>();
    assert_sync::<maestro_ir::Dataflow>();
    assert_send::<Partial>();
    assert_send::<DseResult>();
};

#[cfg(test)]
mod tests {
    use super::*;

    fn unit(i: usize) -> Partial {
        let mut p = Partial::new();
        p.stats.explored = 100 + i as u64;
        p.stats.valid = i as u64;
        p
    }

    #[test]
    fn run_units_is_index_ordered_at_any_thread_count() {
        let sequential = run_units(7, 1, unit);
        for threads in [2, 3, 8, 64] {
            let parallel = run_units(7, threads, unit);
            let seq: Vec<u64> = sequential.iter().map(|p| p.stats.explored).collect();
            let par: Vec<u64> = parallel.iter().map(|p| p.stats.explored).collect();
            assert_eq!(seq, par, "threads={threads}");
        }
    }

    #[test]
    fn zero_units_and_auto_threads() {
        assert!(run_units(0, 0, unit).is_empty());
        assert!(resolve_threads(0) >= 1);
        assert_eq!(resolve_threads(5), 5);
    }

    #[test]
    fn merge_sums_counters() {
        let merged = merge_partials(run_units(4, 2, unit), 16);
        assert_eq!(merged.stats.explored, 100 + 101 + 102 + 103);
        assert_eq!(merged.stats.valid, 1 + 2 + 3);
        assert!(merged.pareto.is_empty());
    }
}

//! Sharded parallel execution with a deterministic merge.
//!
//! The explorer's sweep is decomposed into independent **work units**, one
//! per PE-count index. A unit produces a [`Partial`] — private statistics,
//! Pareto front, per-objective bests and scatter subsample for its slice
//! of the space. [`run_units`] executes units either inline or on scoped
//! worker threads pulling indices from a shared atomic counter, and always
//! returns the partials **in unit-index order** regardless of which thread
//! computed what. [`merge_partials`] then folds them in that fixed order.
//!
//! Because the sequential path (`threads == 1`) runs the *same* units
//! through the *same* merge, the parallel result is bit-identical to the
//! sequential one at any thread count — only the wall-clock fields
//! (`seconds`, `rate`) differ:
//!
//! * **Pareto front** — re-inserting each unit's surviving points in
//!   global unit order reproduces the sequential fold: a point eliminated
//!   inside its unit is dominated by an in-unit survivor (dominance is
//!   transitive, so it would also lose globally), and `insert_pareto`'s
//!   first-wins tie rule sees candidates in the same relative order.
//! * **Per-objective bests** — folded with strict `<`, so the earliest
//!   unit's point wins ties, exactly as in a sequential sweep.
//! * **Sample** — each unit samples every 61st of *its own* valid points;
//!   the merge concatenates unit samples in order and truncates at the
//!   cap. The rule is applied per-unit on the sequential path too, which
//!   is what makes the subsample mergeable at all.
//! * **Counters** — sums, which commute.
//!
//! # Fault isolation
//!
//! Each work unit runs under [`std::panic::catch_unwind`], on the inline
//! path and on the workers alike. A panicking unit yields an `Err` at its
//! fixed index instead of aborting the sweep; [`merge_partials`] records it
//! in [`DseStats::quarantined`] (unit index + panic payload) and folds the
//! remaining units unchanged. Because the failed unit contributes nothing
//! at the same position on every path, results stay bit-identical at any
//! thread count even in the presence of failures.
//!
//! # Controlled execution
//!
//! [`run_units_ctl`] is the full engine underneath [`run_units`]: the same
//! claiming loop, plus cooperative cancellation (polled between units and
//! inside injected stalls), resume (units already terminal in a
//! [`Checkpoint`] are pre-filled, not re-run), per-attempt deterministic
//! fault injection with retry (a failed attempt is re-run up to
//! `retries` times with a fresh fault draw before quarantining), a
//! watchdog for injected stalls, and incremental checkpoint writes from
//! whichever worker completes a unit. Everything that affects *results*
//! (fault draws, retry counts, quarantine decisions) is a pure function of
//! the unit index, so the bit-identical guarantee extends across
//! interruption, resume and injection at any thread count.

use crate::cancel::{CancelToken, UnitUpdate};
use crate::checkpoint::{Checkpoint, UnitEntry};
use crate::explorer::{
    update_best, DesignPoint, DseResult, DseStats, ParetoFront, Partial, QuarantinedUnit,
};
use crate::fault::FaultPlan;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::Path;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// What one work unit produced: its [`Partial`], or the panic payload
/// (rendered as a string) if it panicked.
pub type UnitOutcome = Result<Partial, String>;

/// `OnceLock`-cached handles for the session-control counters, registered
/// eagerly so they all appear (at zero) in every exposition.
struct CtlMetrics {
    quarantined: maestro_obs::Counter,
    resumed_skipped: maestro_obs::Counter,
    retried: maestro_obs::Counter,
    timed_out: maestro_obs::Counter,
    faults_injected: maestro_obs::Counter,
    deadline_exceeded: maestro_obs::Counter,
}

fn ctl_metrics() -> &'static CtlMetrics {
    static M: std::sync::OnceLock<CtlMetrics> = std::sync::OnceLock::new();
    M.get_or_init(|| {
        let r = maestro_obs::registry();
        CtlMetrics {
            quarantined: r.counter("maestro.dse.units_quarantined"),
            resumed_skipped: r.counter("maestro.dse.units_resumed_skipped"),
            retried: r.counter("maestro.dse.units_retried"),
            timed_out: r.counter("maestro.dse.units_timed_out"),
            faults_injected: r.counter("maestro.dse.faults_injected"),
            deadline_exceeded: r.counter("maestro.dse.deadline_exceeded"),
        }
    })
}

/// Bump `maestro.dse.deadline_exceeded` (the session layer calls this once
/// when a run winds down with its deadline passed).
pub(crate) fn note_deadline_exceeded() {
    ctl_metrics().deadline_exceeded.inc();
}

/// Render a panic payload as a string (`&str` and `String` payloads pass
/// through; anything else gets a placeholder).
fn payload_to_string(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Deterministic trace ID for a sampled work unit — a pure function of
/// `(seed, unit)`, so the same unit names the same trace at any thread
/// count and across interrupt/resume splits.
pub fn unit_trace_id(seed: u64, unit: usize) -> maestro_obs::TraceId {
    use maestro_obs::trace::splitmix64;
    let n = unit as u64;
    let hi = splitmix64(seed ^ n.wrapping_mul(0x9e37_79b9_7f4a_7c15));
    let lo = splitmix64(hi ^ !n);
    maestro_obs::TraceId((u128::from(hi) << 64) | u128::from(lo))
}

/// The healthy-unit draw for `--trace-sample 1/k`: trace unit `i` when
/// `i % k == 0`. Quarantined units are kept regardless of the draw.
/// Pure in the unit index, so the traced subset is identical across
/// thread counts and resume splits.
pub fn unit_trace_draw(k: u64, unit: usize) -> bool {
    k > 0 && (unit as u64).is_multiple_of(k)
}

/// Milliseconds since the Unix epoch (0 if the clock is before it).
fn unix_ms() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_millis().min(u128::from(u64::MAX)) as u64)
        .unwrap_or(0)
}

/// Retain a flight-recorder entry for one completed unit, if tracing is
/// on and this unit is drawn (or was quarantined — failures always
/// keep). The recorder's own tail-sampling policy is bypassed: the draw
/// here is on the unit *index*, not the trace ID, so which units get
/// traced does not change when the seed (and hence the IDs) does.
fn record_unit_trace(
    ctl: &RunCtl<'_>,
    i: usize,
    outcome: &UnitOutcome,
    started_ms: u64,
    elapsed: Duration,
) {
    let Some(k) = ctl.trace_sample else { return };
    let failed = outcome.is_err();
    if !failed && !unit_trace_draw(k, i) {
        return;
    }
    let dur_us = elapsed.as_micros().min(u128::from(u64::MAX)) as u64;
    let reason = if failed {
        maestro_obs::KeepReason::Error
    } else {
        maestro_obs::KeepReason::Sampled
    };
    let rec = maestro_obs::TraceRecord {
        id: unit_trace_id(ctl.trace_seed, i),
        name: format!("dse.unit[{i}]"),
        status: if failed { 500 } else { 200 },
        start_unix_ms: started_ms,
        total_us: dur_us,
        bytes: 0,
        phases: vec![maestro_obs::Phase {
            name: "unit",
            start_us: 0,
            dur_us,
        }],
        kept: reason,
    };
    maestro_obs::FlightRecorder::global().keep(rec, reason);
}

/// Resolve a thread-count request: `0` means "one per available core".
pub fn resolve_threads(requested: usize) -> usize {
    if requested == 0 {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    } else {
        requested
    }
}

/// Incremental checkpoint sink for [`run_units_ctl`]: where to write, what
/// fingerprint to stamp, and how often.
pub struct CheckpointSink<'a> {
    /// Checkpoint file path (written atomically via temp + rename).
    pub path: &'a Path,
    /// Sweep fingerprint stamped into every write.
    pub fingerprint: u64,
    /// Write after this many newly completed units (0 = never on a unit
    /// count basis).
    pub every_units: usize,
    /// Also write when this much time has passed since the last write.
    pub every: Option<Duration>,
}

/// Controls for [`run_units_ctl`]. [`run_units`] passes the inert
/// configuration (detached token, no resume, no faults, no retries).
pub struct RunCtl<'a> {
    /// Polled between units and inside injected stalls.
    pub token: &'a CancelToken,
    /// Units already terminal in this checkpoint are pre-filled and
    /// skipped (quarantined entries stay quarantined — they are *not*
    /// retried, so a resumed sweep agrees with an uninterrupted one).
    pub resume: Option<&'a Checkpoint>,
    /// Deterministic per-`(unit, attempt)` fault injection.
    pub faults: &'a FaultPlan,
    /// Re-attempts granted to a failed (panicked / timed-out) unit before
    /// it is quarantined.
    pub retries: u32,
    /// Watchdog budget per attempt; only injected stalls can consume it
    /// (see [`crate::cancel::SessionCtl::unit_timeout`]).
    pub unit_timeout: Option<Duration>,
    /// Incremental checkpointing (a final checkpoint is the session
    /// layer's responsibility).
    pub checkpoint: Option<CheckpointSink<'a>>,
    /// Called with `(completed, total)` after each terminal unit.
    pub on_progress: Option<&'a (dyn Fn(usize, usize) + Sync + 'a)>,
    /// Per-unit frontier observer, fired under the completion lock so
    /// calls are serialized and `completed` is strictly monotone (see
    /// [`crate::cancel::SessionCtl::on_unit`]).
    pub on_unit: Option<&'a (dyn Fn(&UnitUpdate<'_>) + Sync + 'a)>,
    /// Record 1 in this many units (by unit index, plus every
    /// quarantined unit) as a trace in the global flight recorder.
    /// See [`crate::cancel::SessionCtl::trace_sample`].
    pub trace_sample: Option<u64>,
    /// Seed for sampled units' deterministic trace IDs.
    pub trace_seed: u64,
}

/// What [`run_units_ctl`] produced. `slots[i]` is `None` only when the run
/// was cancelled before unit `i` completed.
pub struct RunReport {
    /// Per-unit outcomes in index order; `None` = not completed.
    pub slots: Vec<Option<UnitOutcome>>,
    /// The token had tripped by the time the run wound down.
    pub cancelled: bool,
    /// Units pre-filled from the resume checkpoint.
    pub resumed_skipped: usize,
    /// Extra attempts spent on failed units.
    pub units_retried: u64,
    /// Attempts cut short by the watchdog.
    pub units_timed_out: u64,
    /// Individual faults injected.
    pub faults_injected: u64,
    /// Periodic checkpoints written during the run.
    pub checkpoint_writes: u64,
}

impl RunReport {
    /// `true` when every unit reached a terminal outcome.
    pub fn complete(&self) -> bool {
        self.slots.iter().all(|s| s.is_some())
    }

    /// Units with a terminal outcome.
    pub fn completed(&self) -> usize {
        self.slots.iter().filter(|s| s.is_some()).count()
    }
}

/// The placeholder appended to a unit's Pareto slice by `nofinite`
/// injection. Rejected by [`insert_pareto`]'s finite gate at merge time,
/// so injected sweeps stay bit-identical to clean ones — which is exactly
/// what the injection is for: proving that gate end to end.
fn poison_point() -> DesignPoint {
    DesignPoint {
        pes: 0,
        noc_bw: 0,
        l1_bytes: 0,
        l2_bytes: 0,
        mapping: "injected-nofinite".to_string(),
        area_mm2: f64::NAN,
        power_mw: f64::NAN,
        runtime: f64::NAN,
        throughput: f64::NAN,
        energy: f64::NAN,
        edp: f64::NAN,
    }
}

/// Mutable state shared by the workers, guarded by one mutex taken only at
/// unit completion (never inside the sweep hot loop).
struct SlotState {
    slots: Vec<Option<UnitOutcome>>,
    completed: usize,
    units_since_write: usize,
    last_write: Instant,
}

/// The full controlled execution engine. See the module docs; `run_units`
/// is the inert special case.
pub fn run_units_ctl<F>(units: usize, threads: usize, ctl: &RunCtl<'_>, unit: F) -> RunReport
where
    F: Fn(usize) -> Partial + Sync,
{
    let metrics = ctl_metrics();
    let mut slots: Vec<Option<UnitOutcome>> = (0..units).map(|_| None).collect();
    let mut skip = vec![false; units];
    let mut resumed_skipped = 0usize;
    if let Some(ckpt) = ctl.resume {
        for (i, entry) in ckpt.units.iter().enumerate().take(units) {
            match entry {
                Some(UnitEntry::Done(p)) => slots[i] = Some(Ok(p.clone())),
                Some(UnitEntry::Quarantined(m)) => slots[i] = Some(Err(m.clone())),
                None => continue,
            }
            skip[i] = true;
            resumed_skipped += 1;
        }
        metrics.resumed_skipped.add(resumed_skipped as u64);
    }

    let retried = AtomicU64::new(0);
    let timed_out = AtomicU64::new(0);
    let injected = AtomicU64::new(0);
    let ckpt_writes = AtomicU64::new(0);
    let state = Mutex::new(SlotState {
        completed: resumed_skipped,
        slots,
        units_since_write: 0,
        last_write: Instant::now(),
    });
    if let Some(p) = ctl.on_progress {
        p(resumed_skipped, units);
    }

    // One attempt loop per unit: fault draw → injected stall (under the
    // watchdog) → guarded execution → retry or terminal outcome. Returns
    // `None` when cancellation struck mid-unit (the unit stays incomplete
    // and will be re-run on resume).
    let run_attempts = |i: usize| -> Option<UnitOutcome> {
        let mut attempt: u32 = 0;
        loop {
            if ctl.token.is_cancelled() {
                return None;
            }
            let inj = ctl.faults.decide(i, attempt);
            if inj.count() > 0 {
                injected.fetch_add(inj.count(), Ordering::Relaxed);
                metrics.faults_injected.add(inj.count());
            }
            if let Some(stall) = inj.stall {
                // Watchdog: a stall that meets the per-unit budget times
                // the attempt out. Both quantities are deterministic, so
                // the decision is machine-independent.
                let (sleep_for, watchdog_fires) = match ctl.unit_timeout {
                    Some(budget) if stall >= budget => (budget, true),
                    _ => (stall, false),
                };
                if !ctl.token.sleep_cooperatively(sleep_for) {
                    return None;
                }
                if watchdog_fires {
                    timed_out.fetch_add(1, Ordering::Relaxed);
                    metrics.timed_out.inc();
                    if attempt < ctl.retries {
                        attempt += 1;
                        retried.fetch_add(1, Ordering::Relaxed);
                        metrics.retried.inc();
                        continue;
                    }
                    return Some(Err(format!(
                        "unit {i} timed out after {sleep_for:?} (watchdog, attempt {attempt})"
                    )));
                }
            }
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                if inj.panic {
                    panic!("injected panic (unit {i}, attempt {attempt})");
                }
                let mut part = unit(i);
                if inj.nofinite {
                    part.pareto.push(poison_point());
                }
                part
            }))
            .map_err(payload_to_string);
            match outcome {
                Ok(part) => return Some(Ok(part)),
                Err(message) => {
                    if attempt < ctl.retries {
                        attempt += 1;
                        retried.fetch_add(1, Ordering::Relaxed);
                        metrics.retried.inc();
                        continue;
                    }
                    return Some(Err(message));
                }
            }
        }
    };

    // Store a terminal outcome, write a periodic checkpoint when due, and
    // report progress. The lock is per-unit, far off the hot path.
    let complete_unit = |i: usize, outcome: UnitOutcome| {
        let mut st = state.lock().unwrap_or_else(|e| e.into_inner());
        st.slots[i] = Some(outcome);
        st.completed += 1;
        st.units_since_write += 1;
        let completed = st.completed;
        if let Some(sink) = &ctl.checkpoint {
            let due_units = sink.every_units > 0 && st.units_since_write >= sink.every_units;
            let due_time = sink.every.is_some_and(|d| st.last_write.elapsed() >= d);
            if due_units || due_time {
                let ckpt = Checkpoint::from_outcomes(sink.fingerprint, &st.slots);
                match ckpt.save(sink.path) {
                    Ok(()) => {
                        ckpt_writes.fetch_add(1, Ordering::Relaxed);
                        st.units_since_write = 0;
                        st.last_write = Instant::now();
                    }
                    Err(e) => maestro_obs::warn!("periodic checkpoint write failed: {e}"),
                }
            }
        }
        // Deliberately still under the lock: streaming consumers get
        // serialized calls with monotone `completed`, with no extra
        // synchronization of their own.
        if let Some(f) = ctl.on_unit {
            let (pareto, failed): (&[_], Option<&str>) = match &st.slots[i] {
                Some(Ok(p)) => (&p.pareto, None),
                Some(Err(e)) => (&[], Some(e.as_str())),
                None => (&[], None),
            };
            f(&UnitUpdate {
                unit: i,
                completed,
                total: units,
                pareto,
                failed,
            });
        }
        drop(st);
        if let Some(p) = ctl.on_progress {
            p(completed, units);
        }
    };

    let next = AtomicUsize::new(0);
    let worker = || loop {
        if ctl.token.is_cancelled() {
            break;
        }
        let i = next.fetch_add(1, Ordering::Relaxed);
        if i >= units {
            break;
        }
        if skip[i] {
            continue;
        }
        let started_ms = if ctl.trace_sample.is_some() {
            unix_ms()
        } else {
            0
        };
        let t0 = Instant::now();
        match run_attempts(i) {
            Some(outcome) => {
                record_unit_trace(ctl, i, &outcome, started_ms, t0.elapsed());
                complete_unit(i, outcome);
            }
            None => break,
        }
    };

    let threads = resolve_threads(threads).clamp(1, units.max(1));
    if threads == 1 {
        worker();
    } else {
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads).map(|_| scope.spawn(worker)).collect();
            for h in handles {
                let _ = h.join();
            }
        });
    }

    let st = state.into_inner().unwrap_or_else(|e| e.into_inner());
    RunReport {
        slots: st.slots,
        cancelled: ctl.token.is_cancelled(),
        resumed_skipped,
        units_retried: retried.into_inner(),
        units_timed_out: timed_out.into_inner(),
        faults_injected: injected.into_inner(),
        checkpoint_writes: ckpt_writes.into_inner(),
    }
}

/// Run `units` work units on up to `threads` scoped worker threads
/// (`0` = auto, one per core) and return their outcomes in unit-index
/// order.
///
/// Units are claimed dynamically from an atomic counter, so uneven unit
/// costs (bulk-skipped PE counts finish instantly) still load-balance.
///
/// A panicking unit becomes an `Err` at its index — on the sequential and
/// parallel paths alike — so a single poisoned configuration degrades that
/// slice instead of aborting the whole sweep.
pub fn run_units<F>(units: usize, threads: usize, unit: F) -> Vec<UnitOutcome>
where
    F: Fn(usize) -> Partial + Sync,
{
    let token = CancelToken::detached();
    let faults = FaultPlan::new(0, Vec::new());
    let ctl = RunCtl {
        token: &token,
        resume: None,
        faults: &faults,
        retries: 0,
        unit_timeout: None,
        checkpoint: None,
        on_progress: None,
        on_unit: None,
        trace_sample: None,
        trace_seed: 0,
    };
    run_units_ctl(units, threads, &ctl, unit)
        .slots
        .into_iter()
        .map(|s| s.unwrap_or_else(|| Err("work unit result lost (worker thread died)".to_string())))
        .collect()
}

/// Fold unit outcomes — **in the given order** — into one result.
///
/// Failed units are quarantined into [`DseStats::quarantined`] (in
/// unit-index order) and contribute nothing else, which preserves the
/// bit-identical-at-any-thread-count guarantee even when units fail.
///
/// `seconds`/`rate` are left at zero; the caller stamps wall-clock time.
pub fn merge_partials(outcomes: Vec<UnitOutcome>, sample_cap: usize) -> DseResult {
    merge_indexed_partials(outcomes.into_iter().enumerate().collect(), sample_cap)
}

/// [`merge_partials`] over explicitly indexed outcomes — the partial-result
/// path, where an interrupted run merges only the units that completed
/// (their true indices must survive into [`QuarantinedUnit::unit`]).
pub fn merge_indexed_partials(outcomes: Vec<(usize, UnitOutcome)>, sample_cap: usize) -> DseResult {
    // Touch the counter up front so `maestro.dse.units_quarantined` shows
    // up (at zero) in every exposition, not only after the first failure —
    // dashboards and the CI grep rely on its presence.
    let quarantined_units = &ctl_metrics().quarantined;
    let mut out = DseResult {
        pareto: Vec::new(),
        best_throughput: None,
        best_energy: None,
        best_edp: None,
        sample: Vec::new(),
        stats: DseStats::empty(),
        partial: false,
    };
    // Merge through the SoA front — same accept/evict semantics as
    // `insert_pareto`, but the dominance scans run over flat f64 columns.
    let mut front = ParetoFront::new();
    for (i, outcome) in outcomes {
        let part = match outcome {
            Ok(p) => p,
            Err(message) => {
                maestro_obs::warn!("DSE work unit {i} quarantined: {message}");
                quarantined_units.inc();
                out.stats
                    .quarantined
                    .push(QuarantinedUnit { unit: i, message });
                continue;
            }
        };
        out.stats.explored += part.stats.explored;
        out.stats.evaluated += part.stats.evaluated;
        out.stats.valid += part.stats.valid;
        out.stats.memo_hits += part.stats.memo_hits;
        out.stats.nonfinite_dropped += part.stats.nonfinite_dropped;
        out.stats.capacity_skipped += part.stats.capacity_skipped;
        out.stats.pareto_inserted += part.stats.pareto_inserted;
        out.stats.pareto_rejected += part.stats.pareto_rejected;
        for p in &part.pareto {
            front.insert(p);
        }
        if let Some(p) = &part.best_throughput {
            update_best(&mut out.best_throughput, p, |p| -p.throughput);
        }
        if let Some(p) = &part.best_energy {
            update_best(&mut out.best_energy, p, |p| p.energy);
        }
        if let Some(p) = &part.best_edp {
            update_best(&mut out.best_edp, p, |p| p.edp);
        }
        let room = sample_cap.saturating_sub(out.sample.len());
        out.sample.extend(part.sample.into_iter().take(room));
    }
    out.pareto = front.into_points();
    out
}

// The scoped workers share `&Explorer`, `&Layer`, `&Model` and
// `&[Dataflow]`; fail at compile time (with a readable message, not a
// trait-bound blizzard at the `scope.spawn` call) if any of them stops
// being thread-shareable.
const _: () = {
    const fn assert_sync<T: Sync>() {}
    const fn assert_send<T: Send>() {}
    assert_sync::<crate::Explorer>();
    assert_sync::<CancelToken>();
    assert_sync::<FaultPlan>();
    assert_sync::<maestro_dnn::Layer>();
    assert_sync::<maestro_dnn::Model>();
    assert_sync::<maestro_ir::Dataflow>();
    assert_send::<Partial>();
    assert_send::<DseResult>();
};

#[cfg(test)]
mod tests {
    use super::*;

    fn unit(i: usize) -> Partial {
        let mut p = Partial::new();
        p.stats.explored = 100 + i as u64;
        p.stats.valid = i as u64;
        p
    }

    fn explored(outcomes: &[UnitOutcome]) -> Vec<u64> {
        outcomes
            .iter()
            .map(|o| o.as_ref().expect("unit ok").stats.explored)
            .collect()
    }

    fn plain_ctl<'a>(token: &'a CancelToken, faults: &'a FaultPlan) -> RunCtl<'a> {
        RunCtl {
            token,
            resume: None,
            faults,
            retries: 0,
            unit_timeout: None,
            checkpoint: None,
            on_progress: None,
            on_unit: None,
            trace_sample: None,
            trace_seed: 0,
        }
    }

    /// The streaming hook fires exactly once per unit, serialized, with a
    /// strictly monotone `completed` and the failure message on
    /// quarantined units — the contract the NDJSON stream relies on.
    #[test]
    fn on_unit_fires_serialized_with_monotone_progress() {
        let token = CancelToken::detached();
        let faults = FaultPlan::new(0, Vec::new());
        let seen: Mutex<Vec<(usize, usize, bool)>> = Mutex::new(Vec::new());
        let on_unit = |u: &UnitUpdate<'_>| {
            seen.lock()
                .unwrap()
                .push((u.unit, u.completed, u.failed.is_some()));
        };
        let ctl = RunCtl {
            on_unit: Some(&on_unit),
            ..plain_ctl(&token, &faults)
        };
        let report = run_units_ctl(6, 3, &ctl, |i| {
            if i == 2 {
                panic!("boom unit 2");
            }
            unit(i)
        });
        assert!(report.complete());
        let seen = seen.into_inner().unwrap();
        assert_eq!(seen.len(), 6, "one call per unit");
        let completed: Vec<usize> = seen.iter().map(|(_, c, _)| *c).collect();
        assert_eq!(completed, vec![1, 2, 3, 4, 5, 6], "strictly monotone");
        let mut units: Vec<usize> = seen.iter().map(|(u, _, _)| *u).collect();
        units.sort_unstable();
        assert_eq!(units, vec![0, 1, 2, 3, 4, 5]);
        for (u, _, failed) in &seen {
            assert_eq!(*failed, *u == 2, "only the panicked unit is failed");
        }
    }

    #[test]
    fn trace_sample_records_drawn_and_quarantined_units() {
        let token = CancelToken::detached();
        let faults = FaultPlan::new(0, Vec::new());
        let ctl = RunCtl {
            trace_sample: Some(3),
            trace_seed: 42,
            ..plain_ctl(&token, &faults)
        };
        let rec = maestro_obs::FlightRecorder::global();
        rec.clear();
        let report = run_units_ctl(7, 2, &ctl, |i| {
            if i == 4 {
                panic!("boom unit 4");
            }
            unit(i)
        });
        assert_eq!(report.completed(), 7);

        // Drawn units 0, 3, 6 (1-in-3 by index) plus the quarantined
        // unit 4 — and nothing else, at any thread interleaving.
        let mut names: Vec<String> = rec.recent().iter().map(|t| t.name.clone()).collect();
        names.sort();
        assert_eq!(
            names,
            ["dse.unit[0]", "dse.unit[3]", "dse.unit[4]", "dse.unit[6]"]
        );

        // The quarantined unit is findable by its deterministic ID and
        // marked as a forced keep.
        let failed = rec
            .find(unit_trace_id(42, 4))
            .expect("quarantined unit trace kept");
        assert_eq!(failed.status, 500);
        assert_eq!(failed.kept, maestro_obs::KeepReason::Error);
        assert_eq!(failed.phases.len(), 1);
        assert_eq!(failed.phases[0].name, "unit");

        let drawn = rec
            .find(unit_trace_id(42, 3))
            .expect("drawn unit trace kept");
        assert_eq!(drawn.status, 200);
        assert_eq!(drawn.kept, maestro_obs::KeepReason::Sampled);
        rec.clear();
    }

    #[test]
    fn unit_trace_ids_are_stable_and_distinct() {
        // Golden-pin two IDs so the scheme can't drift silently: traces
        // written in EXPERIMENTS.md / scripts stay addressable.
        assert_eq!(unit_trace_id(42, 4), unit_trace_id(42, 4));
        assert_ne!(unit_trace_id(42, 4), unit_trace_id(42, 5));
        assert_ne!(unit_trace_id(42, 4), unit_trace_id(43, 4));
        assert!(unit_trace_draw(3, 0));
        assert!(!unit_trace_draw(3, 1));
        assert!(unit_trace_draw(3, 6));
        assert!(!unit_trace_draw(0, 0));
    }

    #[test]
    fn run_units_is_index_ordered_at_any_thread_count() {
        let sequential = run_units(7, 1, unit);
        for threads in [2, 3, 8, 64] {
            let parallel = run_units(7, threads, unit);
            assert_eq!(
                explored(&sequential),
                explored(&parallel),
                "threads={threads}"
            );
        }
    }

    #[test]
    fn zero_units_and_auto_threads() {
        assert!(run_units(0, 0, unit).is_empty());
        assert!(resolve_threads(0) >= 1);
        assert_eq!(resolve_threads(5), 5);
    }

    #[test]
    fn merge_sums_counters() {
        let merged = merge_partials(run_units(4, 2, unit), 16);
        assert_eq!(merged.stats.explored, 100 + 101 + 102 + 103);
        assert_eq!(merged.stats.valid, 1 + 2 + 3);
        assert!(merged.pareto.is_empty());
        assert!(merged.stats.quarantined.is_empty());
        assert!(!merged.partial);
    }

    fn faulty(i: usize) -> Partial {
        if i == 2 {
            panic!("unit {i} is poisoned");
        }
        unit(i)
    }

    #[test]
    fn panicking_unit_is_quarantined_not_fatal() {
        for threads in [1, 2, 8, 0] {
            let outcomes = run_units(5, threads, faulty);
            assert_eq!(outcomes.len(), 5);
            assert!(outcomes[2].is_err(), "threads={threads}");
            let merged = merge_partials(outcomes, 16);
            assert_eq!(merged.stats.quarantined.len(), 1);
            let q = &merged.stats.quarantined[0];
            assert_eq!(q.unit, 2);
            assert!(q.message.contains("unit 2 is poisoned"), "{}", q.message);
            // The surviving units' counters are all present.
            assert_eq!(merged.stats.explored, 100 + 101 + 103 + 104);
            assert_eq!(merged.stats.valid, 1 + 3 + 4);
        }
    }

    #[test]
    fn quarantine_preserves_merge_determinism() {
        let reference = merge_partials(run_units(5, 1, faulty), 16);
        for threads in [2, 8, 0] {
            let merged = merge_partials(run_units(5, threads, faulty), 16);
            assert_eq!(merged.stats, reference.stats, "threads={threads}");
        }
    }

    #[test]
    fn cancelled_run_leaves_later_units_incomplete() {
        let token = CancelToken::detached();
        token.cancel();
        let faults = FaultPlan::new(0, Vec::new());
        let report = run_units_ctl(6, 1, &plain_ctl(&token, &faults), unit);
        assert!(report.cancelled);
        assert!(!report.complete());
        assert_eq!(report.completed(), 0);
    }

    #[test]
    fn cancellation_mid_run_is_a_partial_not_an_error() {
        let token = CancelToken::detached();
        let faults = FaultPlan::new(0, Vec::new());
        let cancel_after = 3usize;
        // Cancellation is requested from the progress hook, which fires at
        // each unit boundary — exactly where real signals are observed.
        let progress = |done: usize, _total: usize| {
            if done >= cancel_after {
                token.cancel();
            }
        };
        let ctl = RunCtl {
            on_progress: Some(&progress),
            ..plain_ctl(&token, &faults)
        };
        let report = run_units_ctl(8, 1, &ctl, unit);
        assert!(report.cancelled);
        assert_eq!(report.completed(), cancel_after);
        // Completed prefix is exactly units 0..cancel_after on one thread.
        for (i, s) in report.slots.iter().enumerate() {
            assert_eq!(s.is_some(), i < cancel_after, "unit {i}");
        }
    }

    #[test]
    fn retry_recovers_a_transiently_failing_unit() {
        use std::sync::atomic::AtomicU32;
        let token = CancelToken::detached();
        let faults = FaultPlan::new(0, Vec::new());
        let attempts = AtomicU32::new(0);
        let flaky = |i: usize| {
            if i == 1 && attempts.fetch_add(1, Ordering::Relaxed) == 0 {
                panic!("transient failure");
            }
            unit(i)
        };
        let ctl = RunCtl {
            retries: 1,
            ..plain_ctl(&token, &faults)
        };
        let report = run_units_ctl(3, 1, &ctl, flaky);
        assert!(report.complete());
        assert_eq!(report.units_retried, 1);
        let slots: Vec<UnitOutcome> = report.slots.into_iter().flatten().collect();
        assert!(slots[1].is_ok(), "unit recovered on retry");
    }

    #[test]
    fn persistent_failure_is_quarantined_after_retries() {
        let token = CancelToken::detached();
        let faults = FaultPlan::new(0, Vec::new());
        let ctl = RunCtl {
            retries: 2,
            ..plain_ctl(&token, &faults)
        };
        let report = run_units_ctl(5, 2, &ctl, faulty);
        assert!(report.complete());
        assert_eq!(report.units_retried, 2, "both retries were spent");
        let merged = merge_indexed_partials(
            report
                .slots
                .into_iter()
                .enumerate()
                .filter_map(|(i, s)| s.map(|o| (i, o)))
                .collect(),
            16,
        );
        assert_eq!(merged.stats.quarantined.len(), 1);
        assert_eq!(merged.stats.quarantined[0].unit, 2);
    }

    #[test]
    fn injected_panic_with_retry_preserves_results() {
        let token = CancelToken::detached();
        // Rate 1.0 hits every attempt, so retries are spent and exhausted:
        // this pins the deterministic injected-quarantine path.
        let faults = FaultPlan::parse("panic:1", 9).expect("valid spec");
        let ctl = RunCtl {
            retries: 1,
            ..plain_ctl(&token, &faults)
        };
        let report = run_units_ctl(3, 1, &ctl, unit);
        assert!(report.complete());
        assert_eq!(report.units_retried, 3);
        assert!(report.faults_injected >= 6, "{}", report.faults_injected);
        for s in &report.slots {
            assert!(matches!(s, Some(Err(m)) if m.contains("injected panic")));
        }
    }

    #[test]
    fn watchdog_times_out_injected_stalls_and_reroutes() {
        let token = CancelToken::detached();
        // Stall every attempt for 10s against a 20ms budget: the watchdog
        // must fire (quickly!) and, with no retries, quarantine.
        let faults = FaultPlan::parse("delay:10s:1.0", 3).expect("valid spec");
        let ctl = RunCtl {
            unit_timeout: Some(Duration::from_millis(20)),
            ..plain_ctl(&token, &faults)
        };
        let t0 = Instant::now();
        let report = run_units_ctl(2, 1, &ctl, unit);
        assert!(
            t0.elapsed() < Duration::from_secs(5),
            "watchdog cut the stall"
        );
        assert!(report.complete());
        assert_eq!(report.units_timed_out, 2);
        for s in &report.slots {
            assert!(matches!(s, Some(Err(m)) if m.contains("timed out")));
        }
    }

    #[test]
    fn resume_skips_completed_units_and_preserves_quarantine() {
        let token = CancelToken::detached();
        let faults = FaultPlan::new(0, Vec::new());
        let mut ckpt = Checkpoint::new(7, 5);
        ckpt.units[0] = Some(UnitEntry::Done(unit(0)));
        ckpt.units[2] = Some(UnitEntry::Quarantined("old panic".to_string()));
        let ran = AtomicUsize::new(0);
        let counting = |i: usize| {
            ran.fetch_add(1, Ordering::Relaxed);
            unit(i)
        };
        let ctl = RunCtl {
            resume: Some(&ckpt),
            ..plain_ctl(&token, &faults)
        };
        let report = run_units_ctl(5, 1, &ctl, counting);
        assert!(report.complete());
        assert_eq!(report.resumed_skipped, 2);
        assert_eq!(ran.load(Ordering::Relaxed), 3, "only units 1, 3, 4 ran");
        assert!(matches!(&report.slots[2], Some(Err(m)) if m == "old panic"));
        // Full-resume outcomes equal a fresh run's.
        let fresh = run_units(5, 1, unit);
        let resumed: Vec<UnitOutcome> = report.slots.into_iter().flatten().collect();
        assert_eq!(explored(&fresh[..2]), explored(&resumed[..2]));
    }

    #[test]
    fn periodic_checkpoints_are_written_and_loadable() {
        let token = CancelToken::detached();
        let faults = FaultPlan::new(0, Vec::new());
        let dir = std::env::temp_dir().join(format!("maestro-ckpt-par-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("run.ckpt");
        let ctl = RunCtl {
            checkpoint: Some(CheckpointSink {
                path: &path,
                fingerprint: 42,
                every_units: 2,
                every: None,
            }),
            ..plain_ctl(&token, &faults)
        };
        let report = run_units_ctl(6, 2, &ctl, unit);
        assert!(report.complete());
        assert!(
            report.checkpoint_writes >= 3,
            "{}",
            report.checkpoint_writes
        );
        let ckpt = Checkpoint::load(&path).expect("readable checkpoint");
        assert_eq!(ckpt.fingerprint, 42);
        assert!(
            ckpt.completed() >= 4,
            "last periodic write covers most units"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}

//! Tile-size variants of the dataflow styles.
//!
//! The paper's DSE observes that "the tiling strategy of the dataflow
//! (mapping sizes in our directive representation) significantly affects
//! the efficiency of buffer use" (§5.2): the same style with different
//! mapping sizes trades buffer capacity against refetch traffic and
//! utilization. This module generates those mapping variants.

use maestro_dnn::Dim;
use maestro_ir::{Dataflow, SizeExpr, Style};

/// A KC-P (NVDLA-style) dataflow with `c_cluster` channels per cluster and
/// a `ytile`×`xtile` output tile per step.
pub fn kcp_variant(c_cluster: u64, ytile: u64, xtile: u64) -> Dataflow {
    let sz = SizeExpr::size;
    let win = |t: u64, d: Dim| SizeExpr::lit(t).add(sz(d)).sub(SizeExpr::lit(1));
    Dataflow::builder(format!("KC-P[c{c_cluster},y{ytile},x{xtile}]"))
        .spatial(1, 1, Dim::K)
        .temporal(c_cluster, c_cluster, Dim::C)
        .temporal(sz(Dim::R), sz(Dim::R), Dim::R)
        .temporal(sz(Dim::S), sz(Dim::S), Dim::S)
        .temporal(win(ytile, Dim::R), ytile, Dim::Y)
        .temporal(win(xtile, Dim::S), xtile, Dim::X)
        .cluster(SizeExpr::lit(c_cluster))
        .spatial(1, 1, Dim::C)
        .build()
}

/// A YR-P (row-stationary) dataflow with `c_chunk`/`k_chunk` channel tile
/// sizes and an `xtile`-wide output-column step.
pub fn yrp_variant(c_chunk: u64, k_chunk: u64, xtile: u64) -> Dataflow {
    let sz = SizeExpr::size;
    let win = |t: u64, d: Dim| SizeExpr::lit(t).add(sz(d)).sub(SizeExpr::lit(1));
    Dataflow::builder(format!("YR-P[c{c_chunk},k{k_chunk},x{xtile}]"))
        .temporal(c_chunk, c_chunk, Dim::C)
        .temporal(k_chunk, k_chunk, Dim::K)
        .spatial(sz(Dim::R), 1, Dim::Y)
        .temporal(win(xtile, Dim::S), xtile, Dim::X)
        .temporal(sz(Dim::R), sz(Dim::R), Dim::R)
        .temporal(sz(Dim::S), sz(Dim::S), Dim::S)
        .cluster(sz(Dim::R))
        .spatial(1, 1, Dim::Y)
        .spatial(1, 1, Dim::R)
        .build()
}

/// An X-P (weight-stationary) variant with a `ytile`-row output step.
pub fn xp_variant(ytile: u64) -> Dataflow {
    let sz = SizeExpr::size;
    let win = |t: u64, d: Dim| SizeExpr::lit(t).add(sz(d)).sub(SizeExpr::lit(1));
    Dataflow::builder(format!("X-P[y{ytile}]"))
        .temporal(1, 1, Dim::K)
        .temporal(1, 1, Dim::C)
        .temporal(sz(Dim::R), sz(Dim::R), Dim::R)
        .temporal(sz(Dim::S), sz(Dim::S), Dim::S)
        .temporal(win(ytile, Dim::R), ytile, Dim::Y)
        .spatial(sz(Dim::S), 1, Dim::X)
        .build()
}

/// A YX-P (ShiDianNao-style) variant with an `xtile`-wide column strip per
/// `cluster`-PE group.
pub fn yxp_variant(cluster: u64, xtile: u64) -> Dataflow {
    let sz = SizeExpr::size;
    let win = |t: u64, d: Dim| SizeExpr::lit(t).add(sz(d)).sub(SizeExpr::lit(1));
    Dataflow::builder(format!("YX-P[p{cluster},x{xtile}]"))
        .temporal(1, 1, Dim::K)
        .spatial(sz(Dim::R), 1, Dim::Y)
        .temporal(win(xtile, Dim::S), xtile, Dim::X)
        .temporal(1, 1, Dim::C)
        .temporal(sz(Dim::R), sz(Dim::R), Dim::R)
        .temporal(sz(Dim::S), sz(Dim::S), Dim::S)
        .cluster(SizeExpr::lit(cluster))
        .spatial(sz(Dim::S), 1, Dim::X)
        .build()
}

/// The mapping-variant sweep of a style (the canonical Table 3 form plus
/// tile-size alternatives).
pub fn variants(style: Style) -> Vec<Dataflow> {
    match style {
        Style::KCP => {
            let mut v = Vec::new();
            for c in [16, 32, 64] {
                for t in [1, 2, 4] {
                    v.push(kcp_variant(c, t, t));
                }
            }
            v
        }
        Style::YRP => {
            let mut v = Vec::new();
            for ck in [1, 2, 4] {
                for kk in [2, 4, 8] {
                    v.push(yrp_variant(ck, kk, 1));
                }
            }
            v
        }
        Style::XP => [1, 2, 4, 8].iter().map(|&t| xp_variant(t)).collect(),
        Style::YXP => {
            let mut v = Vec::new();
            for p in [4, 8, 16] {
                for t in [4, 8, 16] {
                    v.push(yxp_variant(p, t));
                }
            }
            v
        }
        Style::CP => vec![style.dataflow()],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use maestro_dnn::{Layer, LayerDims, Operator};
    use maestro_ir::resolve;

    fn layer() -> Layer {
        Layer::new("c", Operator::conv2d(), LayerDims::square(1, 64, 64, 58, 3))
    }

    #[test]
    fn all_variants_resolve() {
        let l = layer();
        for style in Style::ALL {
            for df in variants(style) {
                resolve(&df, &l, 256).unwrap_or_else(|e| panic!("{}: {e}", df.name()));
            }
        }
    }

    #[test]
    fn variant_names_are_distinct() {
        for style in Style::ALL {
            let vs = variants(style);
            let mut names: Vec<_> = vs.iter().map(|d| d.name().to_string()).collect();
            names.sort();
            names.dedup();
            assert_eq!(names.len(), vs.len(), "{style}");
        }
    }

    #[test]
    fn bigger_tiles_need_bigger_buffers() {
        let l = layer();
        let acc = maestro_hw::Accelerator::builder(256).build();
        let small = maestro_core::analyze(&l, &kcp_variant(64, 1, 1), &acc).unwrap();
        let big = maestro_core::analyze(&l, &kcp_variant(64, 4, 4), &acc).unwrap();
        assert!(
            big.l1_per_pe_elems > small.l1_per_pe_elems,
            "{} vs {}",
            big.l1_per_pe_elems,
            small.l1_per_pe_elems
        );
    }
}

//! Versioned, checksummed, atomically-written DSE checkpoints.
//!
//! A checkpoint captures the state of an interrupted sweep as **per-unit
//! partial results** — not the merged frontier. This is what makes resume
//! bit-identical: `merge_partials` folds units in index order and its
//! tie-breaking (`insert_pareto` first-wins, `update_best` strict-<) is
//! order-sensitive, so replaying the stored partials at their original
//! indices alongside freshly computed ones reproduces the exact sequential
//! fold an uninterrupted run would have performed. Quarantined units are
//! recorded too (terminally — they are *not* retried on resume), so a
//! resumed sweep also agrees with an uninterrupted one about degraded
//! coverage.
//!
//! # Format
//!
//! The workspace's serde shim can serialize but not deserialize (offline
//! build, no `serde_json::from_str`), so checkpoints use a purpose-built
//! line-oriented text format with a canonical encoding:
//!
//! ```text
//! maestro-dse-checkpoint v1
//! fingerprint <16 hex digits>
//! units <total>
//! unit <index> done
//! stats <explored> <evaluated> <valid> <memo_hits> <nonfinite> <capskip> <par_ins> <par_rej>
//! pareto <count>
//! point <pes> <bw> <l1> <l2> <area> <power> <runtime> <tput> <energy> <edp> <mapping…>
//! best_throughput <0|1>   (followed by a point line when 1)
//! best_energy <0|1>
//! best_edp <0|1>
//! sample <count>
//! unit <index> quarantined <message…>
//! checksum <16 hex digits>
//! ```
//!
//! Floats are written as their IEEE-754 bit patterns in hex
//! (`f64::to_bits`), so decode → re-encode is byte-identical and no
//! precision is lost. The trailing line is an FNV-1a 64 checksum of
//! everything before it; a flipped byte anywhere yields a typed
//! [`CheckpointError::Checksum`], never a panic or a silently-wrong
//! frontier.
//!
//! # Atomicity
//!
//! [`Checkpoint::save`] writes to a `<path>.tmp` sibling and renames it
//! over the target, so a crash mid-write leaves either the previous valid
//! checkpoint or a stray temp file — never a truncated checkpoint at the
//! real path.

use crate::explorer::{DesignPoint, Partial};
use crate::space::Constraints;
use crate::Explorer;
use maestro_ir::Dataflow;
use std::fmt;
use std::fmt::Write as _;
use std::path::Path;

/// Format version accepted by this build.
pub const CHECKPOINT_VERSION: &str = "v1";

const MAGIC: &str = "maestro-dse-checkpoint";

/// Why a checkpoint could not be written, read, or accepted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckpointError {
    /// Filesystem failure (open/read/write/rename).
    Io {
        /// The path involved.
        path: String,
        /// The OS error, rendered.
        reason: String,
    },
    /// The file does not follow the checkpoint grammar.
    Format {
        /// 1-based line where decoding failed.
        line: usize,
        /// What was wrong.
        reason: String,
    },
    /// The trailing checksum does not match the content — the file is
    /// corrupt (truncated, bit-flipped, or hand-edited).
    Checksum {
        /// Checksum recomputed from the content.
        expected: String,
        /// Checksum stored in the file.
        found: String,
    },
    /// The file is a checkpoint, but of an unsupported format version.
    Version {
        /// The version tag found in the header.
        found: String,
    },
    /// The checkpoint belongs to a different sweep configuration (space /
    /// constraints / workload / mappings differ).
    Fingerprint {
        /// Fingerprint of the sweep being resumed.
        expected: String,
        /// Fingerprint stored in the checkpoint.
        found: String,
    },
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io { path, reason } => {
                write!(f, "checkpoint I/O error at {path}: {reason}")
            }
            CheckpointError::Format { line, reason } => {
                write!(f, "malformed checkpoint (line {line}): {reason}")
            }
            CheckpointError::Checksum { expected, found } => write!(
                f,
                "checkpoint is corrupt: checksum {found} recorded, {expected} computed"
            ),
            CheckpointError::Version { found } => write!(
                f,
                "unsupported checkpoint version `{found}` (this build reads {CHECKPOINT_VERSION})"
            ),
            CheckpointError::Fingerprint { expected, found } => write!(
                f,
                "checkpoint belongs to a different sweep (fingerprint {found}, this sweep is {expected}) — \
                 space, constraints, workload and mappings must match exactly to resume"
            ),
        }
    }
}

impl std::error::Error for CheckpointError {}

/// Terminal outcome of one completed work unit, as stored in a checkpoint.
// `Done` dwarfs `Quarantined`, but it is also the overwhelmingly common
// variant and the enum only ever lives in the per-unit slot vector (one
// entry per PE-count shard), so boxing would add indirection to the hot
// case to save bytes on the rare one.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq)]
pub enum UnitEntry {
    /// The unit finished and produced this partial.
    Done(Partial),
    /// The unit was quarantined with this panic/timeout message and will
    /// not be retried on resume.
    Quarantined(String),
}

/// Resumable state of a sweep: which units completed and what they
/// produced. See the module docs for why per-unit partials (not the
/// merged frontier) are what is stored.
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint {
    /// Fingerprint of the sweep configuration (see [`sweep_fingerprint`]).
    pub fingerprint: u64,
    /// One slot per work unit, indexed like `SweepSpace::pes`; `None`
    /// means "not completed yet".
    pub units: Vec<Option<UnitEntry>>,
}

impl Checkpoint {
    /// An empty checkpoint for a sweep of `total_units` units.
    pub fn new(fingerprint: u64, total_units: usize) -> Self {
        Checkpoint {
            fingerprint,
            units: vec![None; total_units],
        }
    }

    /// Snapshot the outcome slots of a (possibly still incomplete) run
    /// into a checkpoint: `Ok` partials become [`UnitEntry::Done`],
    /// quarantine messages become [`UnitEntry::Quarantined`], unfinished
    /// units stay empty.
    pub fn from_outcomes(fingerprint: u64, slots: &[Option<crate::parallel::UnitOutcome>]) -> Self {
        Checkpoint {
            fingerprint,
            units: slots
                .iter()
                .map(|slot| {
                    slot.as_ref().map(|outcome| match outcome {
                        Ok(p) => UnitEntry::Done(p.clone()),
                        Err(m) => UnitEntry::Quarantined(m.clone()),
                    })
                })
                .collect(),
        }
    }

    /// Number of completed (done or quarantined) units.
    pub fn completed(&self) -> usize {
        self.units.iter().filter(|u| u.is_some()).count()
    }

    /// Whether unit `i` already has a terminal outcome.
    pub fn is_done(&self, i: usize) -> bool {
        self.units.get(i).is_some_and(|u| u.is_some())
    }

    /// Reject this checkpoint unless it matches the sweep about to run.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Fingerprint`] on a configuration mismatch
    /// (a differing unit count is also a configuration mismatch, but is
    /// reported via the fingerprint, which covers the PE grid).
    pub fn validate_against(
        &self,
        fingerprint: u64,
        total_units: usize,
    ) -> Result<(), CheckpointError> {
        if self.fingerprint != fingerprint || self.units.len() != total_units {
            return Err(CheckpointError::Fingerprint {
                expected: format!("{fingerprint:016x}"),
                found: format!("{:016x}", self.fingerprint),
            });
        }
        Ok(())
    }

    /// Canonical text encoding (see the module docs). Decoding and
    /// re-encoding any output of this function is byte-identical.
    pub fn encode(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "{MAGIC} {CHECKPOINT_VERSION}");
        let _ = writeln!(s, "fingerprint {:016x}", self.fingerprint);
        let _ = writeln!(s, "units {}", self.units.len());
        for (i, entry) in self.units.iter().enumerate() {
            match entry {
                None => {}
                Some(UnitEntry::Quarantined(msg)) => {
                    let _ = writeln!(s, "unit {i} quarantined {}", escape(msg));
                }
                Some(UnitEntry::Done(p)) => {
                    let _ = writeln!(s, "unit {i} done");
                    let st = &p.stats;
                    let _ = writeln!(
                        s,
                        "stats {} {} {} {} {} {} {} {}",
                        st.explored,
                        st.evaluated,
                        st.valid,
                        st.memo_hits,
                        st.nonfinite_dropped,
                        st.capacity_skipped,
                        st.pareto_inserted,
                        st.pareto_rejected
                    );
                    let _ = writeln!(s, "pareto {}", p.pareto.len());
                    for pt in &p.pareto {
                        encode_point(&mut s, pt);
                    }
                    for (tag, best) in [
                        ("best_throughput", &p.best_throughput),
                        ("best_energy", &p.best_energy),
                        ("best_edp", &p.best_edp),
                    ] {
                        match best {
                            Some(pt) => {
                                let _ = writeln!(s, "{tag} 1");
                                encode_point(&mut s, pt);
                            }
                            None => {
                                let _ = writeln!(s, "{tag} 0");
                            }
                        }
                    }
                    let _ = writeln!(s, "sample {}", p.sample.len());
                    for pt in &p.sample {
                        encode_point(&mut s, pt);
                    }
                }
            }
        }
        let _ = writeln!(s, "checksum {:016x}", fnv1a(s.as_bytes()));
        s
    }

    /// Decode the canonical text format, verifying the checksum.
    ///
    /// # Errors
    ///
    /// Typed [`CheckpointError`]s for corruption ([`CheckpointError::Checksum`]),
    /// grammar violations ([`CheckpointError::Format`] with a line number),
    /// and unsupported versions ([`CheckpointError::Version`]). Never
    /// panics, whatever the input.
    pub fn decode(text: &str) -> Result<Checkpoint, CheckpointError> {
        let mut lines = Lines::new(text);

        // Header: magic + version.
        let header = lines.next_required("missing header")?;
        let mut hp = header.split_whitespace();
        if hp.next() != Some(MAGIC) {
            return Err(lines.err("not a maestro-dse checkpoint"));
        }
        let version = hp.next().unwrap_or_default();
        if version != CHECKPOINT_VERSION {
            return Err(CheckpointError::Version {
                found: version.to_string(),
            });
        }

        // Checksum: recompute over everything before the trailer line.
        let trailer_at = text
            .rfind("checksum ")
            .ok_or_else(|| lines.err_at(0, "missing checksum trailer"))?;
        let found = text[trailer_at + "checksum ".len()..].trim();
        let expected = format!("{:016x}", fnv1a(&text.as_bytes()[..trailer_at]));
        if found != expected {
            return Err(CheckpointError::Checksum {
                expected,
                found: found.to_string(),
            });
        }

        let fp_line = lines.next_required("missing fingerprint line")?;
        let fingerprint = fp_line
            .strip_prefix("fingerprint ")
            .and_then(|h| u64::from_str_radix(h.trim(), 16).ok())
            .ok_or_else(|| lines.err("expected `fingerprint <16 hex digits>`"))?;
        let units_line = lines.next_required("missing units line")?;
        let total: usize = units_line
            .strip_prefix("units ")
            .and_then(|n| n.trim().parse().ok())
            .ok_or_else(|| lines.err("expected `units <count>`"))?;
        // A hostile count would allocate unboundedly; the real unit count
        // is the PE-grid length, which is tiny.
        if total > 1_000_000 {
            return Err(lines.err("unit count out of range"));
        }
        let mut ckpt = Checkpoint::new(fingerprint, total);

        loop {
            let line = lines.next_required("missing checksum trailer")?;
            if let Some(rest) = line.strip_prefix("unit ") {
                let mut parts = rest.splitn(3, ' ');
                let i: usize = parts
                    .next()
                    .and_then(|n| n.parse().ok())
                    .ok_or_else(|| lines.err("expected `unit <index> …`"))?;
                if i >= total {
                    return Err(lines.err("unit index out of range"));
                }
                if ckpt.units[i].is_some() {
                    return Err(lines.err("duplicate unit entry"));
                }
                match parts.next() {
                    Some("quarantined") => {
                        let msg = unescape(parts.next().unwrap_or_default());
                        ckpt.units[i] = Some(UnitEntry::Quarantined(msg));
                    }
                    Some("done") => {
                        let p = decode_partial(&mut lines)?;
                        ckpt.units[i] = Some(UnitEntry::Done(p));
                    }
                    _ => return Err(lines.err("expected `done` or `quarantined <message>`")),
                }
            } else if line.starts_with("checksum ") {
                break; // verified above
            } else {
                return Err(lines.err("expected `unit …` or the checksum trailer"));
            }
        }
        Ok(ckpt)
    }

    /// Atomically write this checkpoint to `path` (temp-file + rename in
    /// the same directory) and bump `maestro.dse.checkpoint_writes`.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Io`] on any filesystem failure.
    pub fn save(&self, path: &Path) -> Result<(), CheckpointError> {
        let io = |p: &Path, e: std::io::Error| CheckpointError::Io {
            path: p.display().to_string(),
            reason: e.to_string(),
        };
        let mut tmp = path.as_os_str().to_owned();
        tmp.push(".tmp");
        let tmp = std::path::PathBuf::from(tmp);
        std::fs::write(&tmp, self.encode()).map_err(|e| io(&tmp, e))?;
        std::fs::rename(&tmp, path).map_err(|e| io(path, e))?;
        checkpoint_writes().inc();
        Ok(())
    }

    /// Read and decode the checkpoint at `path`.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Io`] when the file cannot be read, otherwise any
    /// [`Checkpoint::decode`] error.
    pub fn load(path: &Path) -> Result<Checkpoint, CheckpointError> {
        let text = std::fs::read_to_string(path).map_err(|e| CheckpointError::Io {
            path: path.display().to_string(),
            reason: e.to_string(),
        })?;
        Checkpoint::decode(&text)
    }
}

/// Counter of checkpoint files written (`maestro.dse.checkpoint_writes`).
fn checkpoint_writes() -> &'static maestro_obs::Counter {
    static C: std::sync::OnceLock<maestro_obs::Counter> = std::sync::OnceLock::new();
    C.get_or_init(|| maestro_obs::registry().counter("maestro.dse.checkpoint_writes"))
}

/// Fingerprint of everything that determines a sweep's results: the
/// hardware space, constraints, model parameters, the workload, and the
/// full mapping DSL. Two sweeps with equal fingerprints produce equal
/// results, so a checkpoint is resumable exactly when fingerprints match.
/// `threads`, checkpoint cadence and fault plans are deliberately *not*
/// fingerprinted: they do not change results. The evaluation mode
/// ([`crate::EvalMode`]) *is* fingerprinted even though staged and full
/// evaluation are bit-identical by construction: a mode mismatch between
/// the run that wrote a checkpoint and the run resuming it is evidence of
/// a configuration drift worth rejecting loudly rather than papering over.
pub fn sweep_fingerprint(explorer: &Explorer, workload: &str, mappings: &[Dataflow]) -> u64 {
    let mut s = String::new();
    let sp = &explorer.space;
    let c: &Constraints = &explorer.constraints;
    let _ = write!(
        s,
        "pes{:?};bw{:?};l1{:?};l2{:?};area{:016x};power{:016x};dram{:016x};prec{};cap{};eval={};wl={workload};",
        sp.pes,
        sp.noc_bw,
        sp.l1_bytes,
        sp.l2_bytes,
        c.max_area_mm2.to_bits(),
        c.max_power_mw.to_bits(),
        explorer.dram_pj.to_bits(),
        explorer.precision_bytes,
        explorer.sample_cap,
        explorer.eval,
    );
    for m in mappings {
        let _ = write!(s, "map={m};");
    }
    fnv1a(s.as_bytes())
}

/// FNV-1a 64-bit hash — tiny, dependency-free, good enough to detect
/// corruption and configuration drift (not a cryptographic guarantee).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn encode_point(s: &mut String, p: &DesignPoint) {
    let _ = writeln!(
        s,
        "point {} {} {} {} {:016x} {:016x} {:016x} {:016x} {:016x} {:016x} {}",
        p.pes,
        p.noc_bw,
        p.l1_bytes,
        p.l2_bytes,
        p.area_mm2.to_bits(),
        p.power_mw.to_bits(),
        p.runtime.to_bits(),
        p.throughput.to_bits(),
        p.energy.to_bits(),
        p.edp.to_bits(),
        escape(&p.mapping)
    );
}

/// Escape a free-text field onto one line (`\` → `\\`, newline → `\n`,
/// CR → `\r`). Deterministic, so canonical encodings stay canonical.
fn escape(text: &str) -> String {
    text.replace('\\', "\\\\")
        .replace('\n', "\\n")
        .replace('\r', "\\r")
}

fn unescape(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    let mut chars = text.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            Some('\\') => out.push('\\'),
            Some(other) => {
                out.push('\\');
                out.push(other);
            }
            None => out.push('\\'),
        }
    }
    out
}

/// Line cursor tracking 1-based line numbers for error reporting.
struct Lines<'a> {
    iter: std::str::Lines<'a>,
    line_no: usize,
}

impl<'a> Lines<'a> {
    fn new(text: &'a str) -> Self {
        Lines {
            iter: text.lines(),
            line_no: 0,
        }
    }

    fn next_required(&mut self, missing: &str) -> Result<&'a str, CheckpointError> {
        self.line_no += 1;
        self.iter.next().ok_or(CheckpointError::Format {
            line: self.line_no,
            reason: missing.to_string(),
        })
    }

    fn err(&self, reason: &str) -> CheckpointError {
        self.err_at(self.line_no, reason)
    }

    fn err_at(&self, line: usize, reason: &str) -> CheckpointError {
        CheckpointError::Format {
            line,
            reason: reason.to_string(),
        }
    }
}

fn decode_partial(lines: &mut Lines<'_>) -> Result<Partial, CheckpointError> {
    let mut p = Partial::new();
    let stats_line = lines.next_required("missing stats line")?;
    let nums: Vec<u64> = stats_line
        .strip_prefix("stats ")
        .map(|rest| rest.split(' ').filter_map(|n| n.parse().ok()).collect())
        .unwrap_or_default();
    let [explored, evaluated, valid, memo_hits, nonfinite, capskip, par_ins, par_rej] = nums[..]
    else {
        return Err(lines.err("expected `stats` with eight counters"));
    };
    p.stats.explored = explored;
    p.stats.evaluated = evaluated;
    p.stats.valid = valid;
    p.stats.memo_hits = memo_hits;
    p.stats.nonfinite_dropped = nonfinite;
    p.stats.capacity_skipped = capskip;
    p.stats.pareto_inserted = par_ins;
    p.stats.pareto_rejected = par_rej;

    p.pareto = decode_point_list(lines, "pareto")?;
    p.best_throughput = decode_opt_point(lines, "best_throughput")?;
    p.best_energy = decode_opt_point(lines, "best_energy")?;
    p.best_edp = decode_opt_point(lines, "best_edp")?;
    p.sample = decode_point_list(lines, "sample")?;
    Ok(p)
}

fn decode_point_list(
    lines: &mut Lines<'_>,
    tag: &str,
) -> Result<Vec<DesignPoint>, CheckpointError> {
    let line = lines.next_required("missing point-list header")?;
    let count: usize = line
        .strip_prefix(tag)
        .and_then(|rest| rest.trim().parse().ok())
        .ok_or_else(|| lines.err(&format!("expected `{tag} <count>`")))?;
    if count > 10_000_000 {
        return Err(lines.err("point count out of range"));
    }
    let mut points = Vec::with_capacity(count.min(4096));
    for _ in 0..count {
        points.push(decode_point(lines)?);
    }
    Ok(points)
}

fn decode_opt_point(
    lines: &mut Lines<'_>,
    tag: &str,
) -> Result<Option<DesignPoint>, CheckpointError> {
    let line = lines.next_required("missing best-point header")?;
    match line.strip_prefix(tag).map(str::trim) {
        Some("0") => Ok(None),
        Some("1") => Ok(Some(decode_point(lines)?)),
        _ => Err(lines.err(&format!("expected `{tag} 0` or `{tag} 1`"))),
    }
}

fn decode_point(lines: &mut Lines<'_>) -> Result<DesignPoint, CheckpointError> {
    let line = lines.next_required("missing point line")?;
    let rest = line
        .strip_prefix("point ")
        .ok_or_else(|| lines.err("expected `point …`"))?;
    let mut parts = rest.splitn(11, ' ');
    let mut next_u64 = |radix: u32| -> Option<u64> {
        parts
            .next()
            .and_then(|t| u64::from_str_radix(t, radix).ok())
    };
    let fields = (
        next_u64(10),
        next_u64(10),
        next_u64(10),
        next_u64(10),
        next_u64(16),
        next_u64(16),
        next_u64(16),
        next_u64(16),
        next_u64(16),
        next_u64(16),
    );
    let (
        Some(pes),
        Some(noc_bw),
        Some(l1_bytes),
        Some(l2_bytes),
        Some(area),
        Some(power),
        Some(runtime),
        Some(throughput),
        Some(energy),
        Some(edp),
    ) = fields
    else {
        return Err(lines.err("expected ten numeric point fields"));
    };
    let mapping = unescape(parts.next().unwrap_or_default());
    Ok(DesignPoint {
        pes,
        noc_bw,
        l1_bytes,
        l2_bytes,
        mapping,
        area_mm2: f64::from_bits(area),
        power_mw: f64::from_bits(power),
        runtime: f64::from_bits(runtime),
        throughput: f64::from_bits(throughput),
        energy: f64::from_bits(energy),
        edp: f64::from_bits(edp),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::SweepSpace;

    fn point(pes: u64, runtime: f64) -> DesignPoint {
        DesignPoint {
            pes,
            noc_bw: 16,
            l1_bytes: 512,
            l2_bytes: 1 << 20,
            mapping: "per-layer best of 5".to_string(),
            area_mm2: 3.5,
            power_mw: 450.0,
            runtime,
            throughput: 128.0,
            energy: 1e9,
            edp: 1e9 * runtime,
        }
    }

    fn sample_checkpoint() -> Checkpoint {
        let mut ckpt = Checkpoint::new(0xdead_beef_cafe_f00d, 4);
        let mut p = Partial::new();
        p.stats.explored = 1000;
        p.stats.valid = 10;
        p.pareto = vec![point(64, 5000.0), point(64, 4000.0)];
        p.best_throughput = Some(point(64, 4000.0));
        p.best_edp = Some(point(64, 4500.0));
        p.sample = vec![point(64, 4100.0)];
        ckpt.units[0] = Some(UnitEntry::Done(p));
        ckpt.units[2] = Some(UnitEntry::Quarantined("panicked: bad\nluck".to_string()));
        ckpt
    }

    #[test]
    fn round_trip_is_exact_and_canonical() {
        let ckpt = sample_checkpoint();
        let text = ckpt.encode();
        let back = Checkpoint::decode(&text).expect("decodes");
        assert_eq!(back, ckpt);
        assert_eq!(back.encode(), text, "re-encode is byte-identical");
        assert_eq!(back.completed(), 2);
        assert!(back.is_done(0) && !back.is_done(1) && back.is_done(2));
    }

    #[test]
    fn nonfinite_floats_survive_the_round_trip() {
        let mut ckpt = Checkpoint::new(1, 1);
        let mut p = Partial::new();
        let mut pt = point(8, f64::NAN);
        pt.energy = f64::INFINITY;
        p.sample = vec![pt];
        ckpt.units[0] = Some(UnitEntry::Done(p));
        let back = Checkpoint::decode(&ckpt.encode()).expect("decodes");
        let Some(UnitEntry::Done(bp)) = &back.units[0] else {
            panic!("unit 0 lost");
        };
        assert!(bp.sample[0].runtime.is_nan());
        assert_eq!(bp.sample[0].energy, f64::INFINITY);
    }

    #[test]
    fn corruption_is_a_typed_checksum_error() {
        let text = sample_checkpoint().encode();
        // Flip one content byte (not in the trailer).
        let mut bytes = text.clone().into_bytes();
        let i = text.find("stats").expect("has stats line");
        bytes[i] ^= 0x20;
        let corrupt = String::from_utf8(bytes).expect("still utf-8");
        assert!(matches!(
            Checkpoint::decode(&corrupt),
            Err(CheckpointError::Checksum { .. })
        ));
    }

    #[test]
    fn truncation_never_panics() {
        let text = sample_checkpoint().encode();
        // Every cut except the last (which only drops the trailing
        // newline, leaving the content — and its checksum — intact) must
        // produce a typed error, never a panic or a silent success.
        for cut in 0..text.len() - 1 {
            if !text.is_char_boundary(cut) {
                continue;
            }
            assert!(Checkpoint::decode(&text[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn version_and_fingerprint_mismatches_are_rejected() {
        let text = sample_checkpoint().encode().replace("v1", "v9");
        assert!(matches!(
            Checkpoint::decode(&text),
            Err(CheckpointError::Version { found }) if found == "v9"
        ));

        let ckpt = sample_checkpoint();
        assert!(ckpt.validate_against(ckpt.fingerprint, 4).is_ok());
        assert!(matches!(
            ckpt.validate_against(ckpt.fingerprint + 1, 4),
            Err(CheckpointError::Fingerprint { .. })
        ));
        assert!(matches!(
            ckpt.validate_against(ckpt.fingerprint, 5),
            Err(CheckpointError::Fingerprint { .. })
        ));
    }

    #[test]
    fn garbage_input_is_a_typed_error() {
        for garbage in ["", "hello", "maestro-dse-checkpoint", "checksum 0"] {
            assert!(Checkpoint::decode(garbage).is_err(), "{garbage:?}");
        }
    }

    #[test]
    fn save_is_atomic_and_loadable() {
        let dir = std::env::temp_dir().join(format!("maestro-ckpt-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("sweep.ckpt");
        let ckpt = sample_checkpoint();
        ckpt.save(&path).expect("saves");
        assert!(
            !path.with_extension("ckpt.tmp").exists(),
            "temp was renamed"
        );
        assert_eq!(Checkpoint::load(&path).expect("loads"), ckpt);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_file_is_an_io_error() {
        let err = Checkpoint::load(Path::new("/nonexistent/nowhere.ckpt")).unwrap_err();
        assert!(matches!(err, CheckpointError::Io { .. }));
        assert!(err.to_string().contains("nowhere.ckpt"));
    }

    #[test]
    fn fingerprint_tracks_every_configuration_knob() {
        use crate::variants;
        use maestro_ir::Style;
        let maps = variants::variants(Style::KCP);
        let base = Explorer::new(SweepSpace::tiny());
        let fp = |e: &Explorer, wl: &str, m: &[Dataflow]| sweep_fingerprint(e, wl, m);
        let reference = fp(&base, "layer:c", &maps);
        assert_eq!(reference, fp(&base, "layer:c", &maps), "deterministic");

        let mut other = base.clone();
        other.precision_bytes = 2;
        assert_ne!(reference, fp(&other, "layer:c", &maps));
        let mut other = base.clone();
        other.dram_pj = 99.0;
        assert_ne!(reference, fp(&other, "layer:c", &maps));
        let mut other = base.clone();
        other.space.pes.push(4096);
        assert_ne!(reference, fp(&other, "layer:c", &maps));
        // Evaluation mode: a staged checkpoint must not resume a full
        // sweep (or vice versa), even though the two modes agree
        // bit-for-bit on results.
        let mut other = base.clone();
        other.eval = crate::EvalMode::Full;
        assert_ne!(reference, fp(&other, "layer:c", &maps));
        assert_ne!(reference, fp(&base, "layer:d", &maps));
        assert_ne!(reference, fp(&base, "layer:c", &maps[..1]));
    }
}

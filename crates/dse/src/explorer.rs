//! The design-space explorer.
//!
//! Sweeps PE count × mapping variant × NoC bandwidth with one cost-model
//! evaluation each (buffer capacities do not change the schedule, only
//! validity and access energy), then expands each evaluation across the
//! L1/L2 capacity grid. Like the paper's tool, whole sub-spaces that
//! cannot meet the area/power budget (or the dataflow's buffer
//! requirement) are *skipped in bulk* without individual evaluation, which
//! is what produces effective rates of >0.1M designs/second.

use crate::space::{Constraints, SweepSpace};
use maestro_core::{analyze, LayerReport};
use maestro_dnn::Layer;
use maestro_hw::{Accelerator, AreaModel, EnergyModel, PowerModel};
use maestro_ir::Dataflow;
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// One valid design point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DesignPoint {
    /// PE count.
    pub pes: u64,
    /// NoC bandwidth (elements/cycle).
    pub noc_bw: u64,
    /// Placed per-PE L1 capacity (bytes).
    pub l1_bytes: u64,
    /// Placed L2 capacity (bytes).
    pub l2_bytes: u64,
    /// Mapping (dataflow variant) name.
    pub mapping: String,
    /// Die area (mm²).
    pub area_mm2: f64,
    /// Power (mW).
    pub power_mw: f64,
    /// Runtime (cycles).
    pub runtime: f64,
    /// Throughput (MACs/cycle).
    pub throughput: f64,
    /// Energy (pJ, CACTI-style table at the placed capacities).
    pub energy: f64,
    /// Energy-delay product.
    pub edp: f64,
}

/// Aggregate statistics of one exploration run (paper Figure 13(c)).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DseStats {
    /// Design points covered (including bulk-skipped ones).
    pub explored: u64,
    /// Cost-model evaluations actually performed.
    pub evaluated: u64,
    /// Valid design points found.
    pub valid: u64,
    /// Wall-clock seconds.
    pub seconds: f64,
    /// Effective exploration rate (designs/second).
    pub rate: f64,
}

/// Result of one exploration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DseResult {
    /// Pareto-optimal points in the (runtime, energy) plane.
    pub pareto: Vec<DesignPoint>,
    /// Highest-throughput valid design.
    pub best_throughput: Option<DesignPoint>,
    /// Lowest-energy valid design.
    pub best_energy: Option<DesignPoint>,
    /// Lowest-EDP valid design.
    pub best_edp: Option<DesignPoint>,
    /// A subsample of valid points (for scatter plots), at most
    /// [`Explorer::sample_cap`] entries.
    pub sample: Vec<DesignPoint>,
    /// Run statistics.
    pub stats: DseStats,
}

/// Design-space exploration driver.
#[derive(Debug, Clone)]
pub struct Explorer {
    /// Hardware sweep space.
    pub space: SweepSpace,
    /// Area/power budget.
    pub constraints: Constraints,
    /// Component area model.
    pub area_model: AreaModel,
    /// Component power model.
    pub power_model: PowerModel,
    /// Cap on the retained scatter sample.
    pub sample_cap: usize,
    /// DRAM access energy per element (pJ). When the placed L2 cannot hold
    /// the layer's working set, a fraction of L2 refills spill to DRAM —
    /// this is what makes *larger* scratchpads energy-favourable and gives
    /// the paper's SRAM-heavy energy-optimized designs (§5.2).
    pub dram_pj: f64,
}

impl Explorer {
    /// An explorer over `space` with the paper's constraint point and the
    /// synthetic 28 nm component models.
    pub fn new(space: SweepSpace) -> Self {
        Explorer {
            space,
            constraints: Constraints::default(),
            area_model: AreaModel::default(),
            power_model: PowerModel::default(),
            sample_cap: 4096,
            dram_pj: 100.0,
        }
    }

    /// Total energy of a placed design: CACTI-style on-chip accesses plus
    /// DRAM spill traffic. With `l2` at least the layer's working set, only
    /// compulsory DRAM traffic remains (each tensor moved once); below the
    /// requirement-to-working-set range, L2 refills increasingly miss.
    fn placed_energy(&self, report: &LayerReport, l1: u64, l2: u64) -> f64 {
        let mut em = EnergyModel::cacti_28nm(l1, l2);
        em.dram = self.dram_pj;
        // Recompute the off-chip traffic at the *placed* capacity using
        // the shared estimator, replacing the counts taken at analysis
        // time (which assumed the reference L2 size).
        let mut counts = report.counts;
        let (dr, dw) =
            maestro_core::report::offchip_traffic(&counts, report.tensor_elems, l2);
        counts.dram_read = dr;
        counts.dram_write = dw;
        counts.energy(&em)
    }

    /// Explore `layer` across the hardware space × `mappings`.
    pub fn explore(&self, layer: &Layer, mappings: &[Dataflow]) -> DseResult {
        let t0 = Instant::now();
        let mut stats = DseStats {
            explored: 0,
            evaluated: 0,
            valid: 0,
            seconds: 0.0,
            rate: 0.0,
        };
        let mut pareto: Vec<DesignPoint> = Vec::new();
        let mut best_t: Option<DesignPoint> = None;
        let mut best_e: Option<DesignPoint> = None;
        let mut best_edp: Option<DesignPoint> = None;
        let mut sample: Vec<DesignPoint> = Vec::new();
        let caps_per_eval = (self.space.l1_bytes.len() * self.space.l2_bytes.len()) as u64;
        let min_l1 = *self.space.l1_bytes.first().expect("non-empty l1 grid");
        let min_l2 = *self.space.l2_bytes.first().expect("non-empty l2 grid");
        let min_bw = *self.space.noc_bw.iter().min().expect("non-empty bw grid");

        for &pes in &self.space.pes {
            // Bulk skip: if even the smallest configuration at this PE
            // count blows the budget, the whole subtree is invalid.
            let min_acc = Accelerator::builder(pes)
                .l1_bytes(min_l1)
                .l2_bytes(min_l2)
                .noc_bandwidth(min_bw)
                .build();
            let subtree =
                caps_per_eval * (self.space.noc_bw.len() * mappings.len()) as u64;
            if self.area_model.total_area(&min_acc) > self.constraints.max_area_mm2
                || self.power_model.total_power(&min_acc) > self.constraints.max_power_mw
            {
                stats.explored += subtree;
                continue;
            }
            for mapping in mappings {
                for &bw in &self.space.noc_bw {
                    stats.explored += caps_per_eval;
                    let acc = Accelerator::builder(pes).noc_bandwidth(bw).build();
                    let Ok(report) = analyze(layer, mapping, &acc) else {
                        continue;
                    };
                    stats.evaluated += 1;
                    self.expand_capacities(
                        pes,
                        bw,
                        mapping.name(),
                        &report,
                        &mut stats,
                        &mut pareto,
                        &mut best_t,
                        &mut best_e,
                        &mut best_edp,
                        &mut sample,
                    );
                }
            }
        }
        stats.seconds = t0.elapsed().as_secs_f64().max(1e-9);
        stats.rate = stats.explored as f64 / stats.seconds;
        DseResult {
            pareto,
            best_throughput: best_t,
            best_energy: best_e,
            best_edp,
            sample,
            stats,
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn expand_capacities(
        &self,
        pes: u64,
        bw: u64,
        mapping: &str,
        report: &LayerReport,
        stats: &mut DseStats,
        pareto: &mut Vec<DesignPoint>,
        best_t: &mut Option<DesignPoint>,
        best_e: &mut Option<DesignPoint>,
        best_edp: &mut Option<DesignPoint>,
        sample: &mut Vec<DesignPoint>,
    ) {
        for &l1 in &self.space.l1_bytes {
            if l1 < report.l1_per_pe_elems {
                continue; // capacity below the mapping's requirement
            }
            for &l2 in &self.space.l2_bytes {
                if l2 < report.l2_staging_elems {
                    continue;
                }
                let acc = Accelerator::builder(pes)
                    .noc_bandwidth(bw)
                    .l1_bytes(l1)
                    .l2_bytes(l2)
                    .build();
                let area = self.area_model.total_area(&acc);
                let power = self.power_model.total_power(&acc);
                if area > self.constraints.max_area_mm2
                    || power > self.constraints.max_power_mw
                {
                    continue;
                }
                stats.valid += 1;
                let energy = self.placed_energy(report, l1, l2);
                let point = DesignPoint {
                    pes,
                    noc_bw: bw,
                    l1_bytes: l1,
                    l2_bytes: l2,
                    mapping: mapping.to_string(),
                    area_mm2: area,
                    power_mw: power,
                    runtime: report.runtime,
                    throughput: report.throughput(),
                    energy,
                    edp: energy * report.runtime,
                };
                update_best(best_t, &point, |p| -p.throughput);
                update_best(best_e, &point, |p| p.energy);
                update_best(best_edp, &point, |p| p.edp);
                insert_pareto(pareto, &point);
                // Stratified subsample: every 61st valid point, so the
                // scatter spans the whole space instead of its first corner.
                if stats.valid % 61 == 0 && sample.len() < self.sample_cap {
                    sample.push(point);
                }
            }
        }
    }
}

fn update_best(slot: &mut Option<DesignPoint>, p: &DesignPoint, key: impl Fn(&DesignPoint) -> f64) {
    let better = match slot {
        Some(cur) => key(p) < key(cur),
        None => true,
    };
    if better {
        *slot = Some(p.clone());
    }
}

/// Insert into the (runtime, energy) Pareto front, dropping dominated
/// points.
fn insert_pareto(front: &mut Vec<DesignPoint>, p: &DesignPoint) {
    if front
        .iter()
        .any(|q| q.runtime <= p.runtime && q.energy <= p.energy)
    {
        return;
    }
    front.retain(|q| !(p.runtime <= q.runtime && p.energy <= q.energy));
    front.push(p.clone());
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::SweepSpace;
    use crate::variants;
    use maestro_dnn::{LayerDims, Operator};
    use maestro_ir::Style;

    fn layer() -> Layer {
        Layer::new("c", Operator::conv2d(), LayerDims::square(1, 32, 32, 34, 3))
    }

    #[test]
    fn exploration_finds_valid_points() {
        let e = Explorer::new(SweepSpace::tiny());
        let r = e.explore(&layer(), &variants::variants(Style::KCP));
        assert!(r.stats.valid > 0, "{:?}", r.stats);
        assert!(r.stats.explored >= r.stats.valid);
        assert!(r.best_throughput.is_some());
        assert!(r.best_energy.is_some());
        assert!(!r.pareto.is_empty());
    }

    #[test]
    fn pareto_front_is_nondominated() {
        let e = Explorer::new(SweepSpace::tiny());
        let r = e.explore(&layer(), &variants::variants(Style::KCP));
        for a in &r.pareto {
            for b in &r.pareto {
                if std::ptr::eq(a, b) {
                    continue;
                }
                assert!(
                    !(a.runtime <= b.runtime && a.energy < b.energy
                        || a.runtime < b.runtime && a.energy <= b.energy),
                    "{a:?} dominates {b:?}"
                );
            }
        }
    }

    #[test]
    fn constraints_bound_every_valid_point() {
        let e = Explorer::new(SweepSpace::tiny());
        let r = e.explore(&layer(), &variants::variants(Style::YRP));
        for p in &r.sample {
            assert!(p.area_mm2 <= e.constraints.max_area_mm2);
            assert!(p.power_mw <= e.constraints.max_power_mw);
        }
    }

    #[test]
    fn tighter_budget_yields_fewer_valid_points() {
        let space = SweepSpace::tiny();
        let loose = Explorer::new(space.clone());
        let mut tight = Explorer::new(space);
        tight.constraints = Constraints {
            max_area_mm2: 4.0,
            max_power_mw: 120.0,
        };
        let maps = variants::variants(Style::KCP);
        let l = layer();
        let a = loose.explore(&l, &maps);
        let b = tight.explore(&l, &maps);
        assert!(b.stats.valid <= a.stats.valid);
    }

    #[test]
    fn throughput_and_energy_optima_differ_in_general() {
        let e = Explorer::new(SweepSpace::tiny());
        let r = e.explore(&layer(), &variants::variants(Style::KCP));
        let t = r.best_throughput.unwrap();
        let en = r.best_energy.unwrap();
        assert!(t.throughput >= en.throughput);
        assert!(en.energy <= t.energy);
    }
}

impl Explorer {
    /// Explore a *whole model*: each hardware point is evaluated with the
    /// best-runtime mapping per layer (an embedded auto-tune), runtime and
    /// activity counts summed across layers, buffer requirements taken as
    /// worst-case. Energy at each placed capacity sums the per-layer
    /// placed energies (so per-layer working sets drive DRAM misses).
    pub fn explore_model(&self, model: &maestro_dnn::Model, mappings: &[Dataflow]) -> DseResult {
        let t0 = Instant::now();
        let mut stats = DseStats {
            explored: 0,
            evaluated: 0,
            valid: 0,
            seconds: 0.0,
            rate: 0.0,
        };
        let mut pareto: Vec<DesignPoint> = Vec::new();
        let mut best_t: Option<DesignPoint> = None;
        let mut best_e: Option<DesignPoint> = None;
        let mut best_edp: Option<DesignPoint> = None;
        let mut sample: Vec<DesignPoint> = Vec::new();
        let caps_per_eval = (self.space.l1_bytes.len() * self.space.l2_bytes.len()) as u64;

        for &pes in &self.space.pes {
            for &bw in &self.space.noc_bw {
                stats.explored += caps_per_eval;
                let acc = Accelerator::builder(pes).noc_bandwidth(bw).build();
                // Per-layer best-runtime mapping (embedded tuning).
                let mut reports: Vec<LayerReport> = Vec::with_capacity(model.len());
                let mut ok = true;
                for layer in model.iter() {
                    let best = mappings
                        .iter()
                        .filter_map(|m| {
                            stats.evaluated += 1;
                            analyze(layer, m, &acc).ok()
                        })
                        .min_by(|a, b| a.runtime.total_cmp(&b.runtime));
                    match best {
                        Some(r) => reports.push(r),
                        None => {
                            ok = false;
                            break;
                        }
                    }
                }
                if !ok {
                    continue;
                }
                let runtime: f64 = reports.iter().map(|r| r.runtime).sum();
                let macs: f64 = reports.iter().map(|r| r.macs_effective).sum();
                let l1_req = reports.iter().map(|r| r.l1_per_pe_elems).max().unwrap_or(0);
                let l2_req = reports.iter().map(|r| r.l2_staging_elems).max().unwrap_or(0);
                for &l1 in &self.space.l1_bytes {
                    if l1 < l1_req {
                        continue;
                    }
                    for &l2 in &self.space.l2_bytes {
                        if l2 < l2_req {
                            continue;
                        }
                        let placed = Accelerator::builder(pes)
                            .noc_bandwidth(bw)
                            .l1_bytes(l1)
                            .l2_bytes(l2)
                            .build();
                        let area = self.area_model.total_area(&placed);
                        let power = self.power_model.total_power(&placed);
                        if area > self.constraints.max_area_mm2
                            || power > self.constraints.max_power_mw
                        {
                            continue;
                        }
                        stats.valid += 1;
                        let energy: f64 =
                            reports.iter().map(|r| self.placed_energy(r, l1, l2)).sum();
                        let point = DesignPoint {
                            pes,
                            noc_bw: bw,
                            l1_bytes: l1,
                            l2_bytes: l2,
                            mapping: format!("per-layer best of {}", mappings.len()),
                            area_mm2: area,
                            power_mw: power,
                            runtime,
                            throughput: macs / runtime.max(1.0),
                            energy,
                            edp: energy * runtime,
                        };
                        update_best(&mut best_t, &point, |p| -p.throughput);
                        update_best(&mut best_e, &point, |p| p.energy);
                        update_best(&mut best_edp, &point, |p| p.edp);
                        insert_pareto(&mut pareto, &point);
                        if stats.valid % 61 == 0 && sample.len() < self.sample_cap {
                            sample.push(point);
                        }
                    }
                }
            }
        }
        stats.seconds = t0.elapsed().as_secs_f64().max(1e-9);
        stats.rate = stats.explored as f64 / stats.seconds;
        DseResult {
            pareto,
            best_throughput: best_t,
            best_energy: best_e,
            best_edp,
            sample,
            stats,
        }
    }

    /// [`Explorer::explore`] split across `threads` OS threads by PE
    /// count, with the partial results merged (the paper runs four DSEs
    /// concurrently on its workstation).
    pub fn explore_parallel(
        &self,
        layer: &Layer,
        mappings: &[Dataflow],
        threads: usize,
    ) -> DseResult {
        let threads = threads.max(1).min(self.space.pes.len().max(1));
        let chunks: Vec<Vec<u64>> = (0..threads)
            .map(|t| {
                self.space
                    .pes
                    .iter()
                    .copied()
                    .skip(t)
                    .step_by(threads)
                    .collect()
            })
            .collect();
        let t0 = Instant::now();
        let results: Vec<DseResult> = std::thread::scope(|scope| {
            let handles: Vec<_> = chunks
                .iter()
                .map(|pes| {
                    let mut sub = self.clone();
                    sub.space.pes = pes.clone();
                    scope.spawn(move || sub.explore(layer, mappings))
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("DSE worker")).collect()
        });
        let mut merged = DseResult {
            pareto: Vec::new(),
            best_throughput: None,
            best_energy: None,
            best_edp: None,
            sample: Vec::new(),
            stats: DseStats {
                explored: 0,
                evaluated: 0,
                valid: 0,
                seconds: 0.0,
                rate: 0.0,
            },
        };
        for r in results {
            merged.stats.explored += r.stats.explored;
            merged.stats.evaluated += r.stats.evaluated;
            merged.stats.valid += r.stats.valid;
            for p in &r.pareto {
                insert_pareto(&mut merged.pareto, p);
            }
            for p in [&r.best_throughput, &r.best_energy, &r.best_edp].into_iter().flatten() {
                update_best(&mut merged.best_throughput, p, |p| -p.throughput);
                update_best(&mut merged.best_energy, p, |p| p.energy);
                update_best(&mut merged.best_edp, p, |p| p.edp);
            }
            let room = merged.sample.capacity().max(self.sample_cap) - merged.sample.len();
            merged.sample.extend(r.sample.into_iter().take(room));
        }
        merged.stats.seconds = t0.elapsed().as_secs_f64().max(1e-9);
        merged.stats.rate = merged.stats.explored as f64 / merged.stats.seconds;
        merged
    }
}

#[cfg(test)]
mod model_tests {
    use super::*;
    use crate::space::SweepSpace;
    use crate::variants;
    use maestro_dnn::zoo;
    use maestro_ir::Style;

    #[test]
    fn whole_model_exploration() {
        let e = Explorer::new(SweepSpace::tiny());
        let model = zoo::alexnet(1);
        let maps = variants::variants(Style::KCP);
        let r = e.explore_model(&model, &maps);
        assert!(r.stats.valid > 0);
        let t = r.best_throughput.expect("some valid design");
        assert!(t.runtime > 0.0);
        assert!(t.mapping.contains("per-layer"));
    }

    #[test]
    fn parallel_matches_serial_optima() {
        let e = Explorer::new(SweepSpace::tiny());
        let model = zoo::vgg16(1);
        let layer = model.layer("CONV5").expect("zoo layer");
        let maps = variants::variants(Style::KCP);
        let serial = e.explore(layer, &maps);
        let parallel = e.explore_parallel(layer, &maps, 3);
        assert_eq!(serial.stats.valid, parallel.stats.valid);
        let (s, p) = (
            serial.best_throughput.expect("serial optimum"),
            parallel.best_throughput.expect("parallel optimum"),
        );
        assert_eq!(s.throughput, p.throughput);
        let (s, p) = (
            serial.best_energy.expect("serial"),
            parallel.best_energy.expect("parallel"),
        );
        assert!((s.energy - p.energy).abs() < 1e-6 * s.energy);
    }
}

//! The design-space explorer.
//!
//! Sweeps PE count × mapping variant × NoC bandwidth with one cost-model
//! evaluation each (buffer capacities do not change the schedule, only
//! validity and access energy), then expands each evaluation across the
//! L1/L2 capacity grid. Like the paper's tool, whole sub-spaces that
//! cannot meet the area/power budget (or the dataflow's buffer
//! requirement) are *skipped in bulk* without individual evaluation, which
//! is what produces effective rates of >0.1M designs/second.
//!
//! The sweep is sharded by PE count into independent work units (one per
//! entry of [`SweepSpace::pes`]) executed by [`crate::parallel::run_units`]
//! and folded by [`crate::parallel::merge_partials`]; `explore` is the
//! one-thread special case of `explore_parallel`, so parallel results are
//! bit-identical to sequential ones apart from the wall-clock fields.
//! Repeated layer shapes are served from a per-unit
//! [`maestro_core::AnalysisCache`] instead of re-running the cost model.

use crate::cancel::{SessionCtl, SessionError, SessionReport};
use crate::checkpoint::{sweep_fingerprint, Checkpoint};
use crate::parallel::{
    merge_indexed_partials, merge_partials, run_units, run_units_ctl, CheckpointSink, RunCtl,
};
use crate::space::{Constraints, SpaceError, SweepSpace};
use maestro_core::{AnalysisCache, AnalysisError, LayerReport};
use maestro_dnn::Layer;
use maestro_hw::{Accelerator, AreaModel, EnergyModel, PowerModel};
use maestro_ir::Dataflow;
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// How the sweep invokes the cost model.
///
/// Both modes produce bit-identical results (they share one analysis
/// implementation — see [`maestro_core::StagedAnalysis`]); `Staged` is an
/// order of magnitude faster on bandwidth-heavy sweeps and is the default.
/// The mode is folded into the checkpoint sweep fingerprint, so a
/// checkpoint written under one mode cannot silently resume under the
/// other.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum EvalMode {
    /// One fused `analyze()` per (mapping, bandwidth) grid point.
    Full,
    /// Staged evaluation: the NoC-independent stages (tensor, reuse,
    /// buffer, off-chip) are computed once per mapping and shared across
    /// the whole NoC-bandwidth axis; only the cheap performance stage
    /// re-runs per bandwidth.
    #[default]
    Staged,
}

impl std::fmt::Display for EvalMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EvalMode::Full => write!(f, "full"),
            EvalMode::Staged => write!(f, "staged"),
        }
    }
}

impl std::str::FromStr for EvalMode {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "full" => Ok(EvalMode::Full),
            "staged" => Ok(EvalMode::Staged),
            other => Err(format!("unknown eval mode `{other}` (full|staged)")),
        }
    }
}

/// One valid design point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DesignPoint {
    /// PE count.
    pub pes: u64,
    /// NoC bandwidth (elements/cycle).
    pub noc_bw: u64,
    /// Placed per-PE L1 capacity (bytes).
    pub l1_bytes: u64,
    /// Placed L2 capacity (bytes).
    pub l2_bytes: u64,
    /// Mapping (dataflow variant) name.
    pub mapping: String,
    /// Die area (mm²).
    pub area_mm2: f64,
    /// Power (mW).
    pub power_mw: f64,
    /// Runtime (cycles).
    pub runtime: f64,
    /// Throughput (MACs/cycle).
    pub throughput: f64,
    /// Energy (pJ, CACTI-style table at the placed capacities).
    pub energy: f64,
    /// Energy-delay product.
    pub edp: f64,
}

impl DesignPoint {
    /// `true` when every objective and cost scalar is finite. Non-finite
    /// points must never reach the Pareto front or the best-point slots:
    /// NaN fails every strict comparison and would silently corrupt both.
    pub fn is_finite(&self) -> bool {
        [
            self.area_mm2,
            self.power_mw,
            self.runtime,
            self.throughput,
            self.energy,
            self.edp,
        ]
        .iter()
        .all(|v| v.is_finite())
    }
}

/// A work unit that panicked during a sweep and was dropped from the
/// merged result (see [`crate::parallel::merge_partials`]).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct QuarantinedUnit {
    /// Index of the failing unit (its position in [`SweepSpace::pes`]).
    pub unit: usize,
    /// The panic payload, rendered as a string.
    pub message: String,
}

/// Aggregate statistics of one exploration run (paper Figure 13(c)).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DseStats {
    /// Design points covered (including bulk-skipped ones).
    pub explored: u64,
    /// Cost-model invocations actually performed (memo-cache misses,
    /// including ones that returned an analysis error).
    pub evaluated: u64,
    /// Valid design points found.
    pub valid: u64,
    /// Cost-model invocations served from the memo cache.
    pub memo_hits: u64,
    /// Design points dropped because an objective evaluated to NaN or
    /// infinity (the finite-value gate).
    pub nonfinite_dropped: u64,
    /// Design points rejected by the capacity filter (placed L1 or L2 too
    /// small for the mapping's buffer requirement), before any cost was
    /// computed.
    pub capacity_skipped: u64,
    /// Points accepted into a per-unit Pareto front during the sweep
    /// (some are later displaced by dominating points).
    pub pareto_inserted: u64,
    /// Points rejected from a per-unit Pareto front on arrival (dominated
    /// by or tying an existing member).
    pub pareto_rejected: u64,
    /// Work units that panicked and contributed nothing to the merged
    /// result, in unit-index order. A non-empty list means the sweep
    /// *degraded* (its coverage is incomplete) but completed.
    pub quarantined: Vec<QuarantinedUnit>,
    /// Wall-clock seconds.
    pub seconds: f64,
    /// Effective exploration rate (designs/second).
    pub rate: f64,
}

impl DseStats {
    /// All-zero statistics.
    pub const fn empty() -> Self {
        DseStats {
            explored: 0,
            evaluated: 0,
            valid: 0,
            memo_hits: 0,
            nonfinite_dropped: 0,
            capacity_skipped: 0,
            pareto_inserted: 0,
            pareto_rejected: 0,
            quarantined: Vec::new(),
            seconds: 0.0,
            rate: 0.0,
        }
    }

    /// Memo-cache hit rate in `[0, 1]` (zero when no lookups happened).
    pub fn memo_hit_rate(&self) -> f64 {
        let lookups = self.memo_hits + self.evaluated;
        if lookups == 0 {
            0.0
        } else {
            self.memo_hits as f64 / lookups as f64
        }
    }
}

/// Result of one exploration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DseResult {
    /// Pareto-optimal points in the (runtime, energy) plane.
    pub pareto: Vec<DesignPoint>,
    /// Highest-throughput valid design.
    pub best_throughput: Option<DesignPoint>,
    /// Lowest-energy valid design.
    pub best_energy: Option<DesignPoint>,
    /// Lowest-EDP valid design.
    pub best_edp: Option<DesignPoint>,
    /// A subsample of valid points (for scatter plots), at most
    /// [`Explorer::sample_cap`] entries.
    pub sample: Vec<DesignPoint>,
    /// Run statistics.
    pub stats: DseStats,
    /// `true` when the sweep was interrupted (signal, deadline, explicit
    /// cancel) before every work unit completed: the frontier and stats
    /// cover only the completed units. Always `false` for uninterrupted
    /// runs.
    pub partial: bool,
}

/// The result of one work unit (one PE count's slice of the sweep),
/// before merging. See [`crate::parallel`] for the merge rules.
#[derive(Debug, Clone, PartialEq)]
pub struct Partial {
    /// Counters for this slice (`seconds`/`rate` stay zero).
    pub stats: DseStats,
    /// Pareto front of this slice.
    pub pareto: Vec<DesignPoint>,
    /// Highest-throughput point of this slice.
    pub best_throughput: Option<DesignPoint>,
    /// Lowest-energy point of this slice.
    pub best_energy: Option<DesignPoint>,
    /// Lowest-EDP point of this slice.
    pub best_edp: Option<DesignPoint>,
    /// Every 61st valid point of this slice.
    pub sample: Vec<DesignPoint>,
}

impl Partial {
    /// An empty partial.
    pub fn new() -> Self {
        Partial {
            stats: DseStats::empty(),
            pareto: Vec::new(),
            best_throughput: None,
            best_energy: None,
            best_edp: None,
            sample: Vec::new(),
        }
    }
}

impl Default for Partial {
    fn default() -> Self {
        Partial::new()
    }
}

/// Design-space exploration driver.
#[derive(Debug, Clone)]
pub struct Explorer {
    /// Hardware sweep space.
    pub space: SweepSpace,
    /// Area/power budget.
    pub constraints: Constraints,
    /// Component area model.
    pub area_model: AreaModel,
    /// Component power model.
    pub power_model: PowerModel,
    /// Cap on the retained scatter sample.
    pub sample_cap: usize,
    /// DRAM access energy per element (pJ). When the placed L2 cannot hold
    /// the layer's working set, a fraction of L2 refills spill to DRAM —
    /// this is what makes *larger* scratchpads energy-favourable and gives
    /// the paper's SRAM-heavy energy-optimized designs (§5.2).
    pub dram_pj: f64,
    /// Element width in bytes, threaded into every built accelerator. The
    /// capacity grids are in **bytes** while the cost model's buffer
    /// requirements are in **elements**, so validity compares
    /// `capacity / precision_bytes` against the requirement (exactly as
    /// [`Accelerator::l1_elements`] does).
    pub precision_bytes: u64,
    /// **Test-only fault-injection hook**: when set, the work unit for this
    /// PE count panics, exercising the quarantine path end to end. Leave
    /// `None` in production use.
    pub fail_unit_pes: Option<u64>,
    /// How the cost model is invoked (staged delta-evaluation vs. fused
    /// full analysis). Results are bit-identical either way.
    pub eval: EvalMode,
    /// Per-tier LRU capacity of each work unit's [`AnalysisCache`]
    /// (`0` = unbounded).
    pub memo_cap: usize,
}

impl Explorer {
    /// An explorer over `space` with the paper's constraint point, the
    /// synthetic 28 nm component models and 1-byte (int8) elements.
    pub fn new(space: SweepSpace) -> Self {
        Explorer {
            space,
            constraints: Constraints::default(),
            area_model: AreaModel::default(),
            power_model: PowerModel::default(),
            sample_cap: 4096,
            dram_pj: 100.0,
            precision_bytes: 1,
            fail_unit_pes: None,
            eval: EvalMode::default(),
            memo_cap: maestro_core::DEFAULT_CACHE_CAP,
        }
    }

    /// Dispatch one cost-model invocation according to [`Explorer::eval`].
    fn memo_analyze(
        &self,
        memo: &mut AnalysisCache,
        layer: &Layer,
        mapping: &Dataflow,
        acc: &Accelerator,
    ) -> Result<LayerReport, AnalysisError> {
        match self.eval {
            EvalMode::Full => memo.analyze(layer, mapping, acc),
            EvalMode::Staged => memo.analyze_staged(layer, mapping, acc),
        }
    }

    /// An accelerator at one sweep point, carrying the explorer's element
    /// precision.
    fn accelerator(&self, pes: u64, bw: u64, l1_l2: Option<(u64, u64)>) -> Accelerator {
        let mut b = Accelerator::builder(pes)
            .noc_bandwidth(bw)
            .precision_bytes(self.precision_bytes);
        if let Some((l1, l2)) = l1_l2 {
            b = b.l1_bytes(l1).l2_bytes(l2);
        }
        b.build()
    }

    /// Byte capacity `bytes` expressed in elements.
    fn elements(&self, bytes: u64) -> u64 {
        bytes / self.precision_bytes.max(1)
    }

    /// Total energy of a placed design: CACTI-style on-chip accesses plus
    /// DRAM spill traffic. With `l2` at least the layer's working set, only
    /// compulsory DRAM traffic remains (each tensor moved once); below the
    /// requirement-to-working-set range, L2 refills increasingly miss.
    fn placed_energy(&self, report: &LayerReport, l1: u64, l2: u64) -> f64 {
        let mut em = EnergyModel::cacti_28nm(l1, l2);
        em.dram = self.dram_pj;
        // Recompute the off-chip traffic at the *placed* capacity using
        // the shared estimator, replacing the counts taken at analysis
        // time (which assumed the reference L2 size).
        let mut counts = report.counts;
        let (dr, dw) =
            maestro_core::report::offchip_traffic(&counts, report.tensor_elems, self.elements(l2));
        counts.dram_read = dr;
        counts.dram_write = dw;
        counts.energy(&em)
    }

    /// Explore `layer` across the hardware space × `mappings`.
    ///
    /// # Errors
    ///
    /// Returns [`SpaceError`] when the sweep space has an empty or
    /// zero-containing grid.
    pub fn explore(&self, layer: &Layer, mappings: &[Dataflow]) -> Result<DseResult, SpaceError> {
        self.explore_parallel(layer, mappings, 1)
    }

    /// [`Explorer::explore`] sharded by PE count across `threads` scoped
    /// worker threads (`0` = one per core). The result is bit-identical to
    /// `explore` at any thread count, except the wall-clock `seconds` and
    /// `rate` fields. (The paper runs four DSEs concurrently on its
    /// workstation; this parallelizes *within* one DSE.)
    ///
    /// A panicking work unit does not abort the sweep: it is quarantined
    /// (see [`DseStats::quarantined`]) and the remaining units complete.
    ///
    /// # Errors
    ///
    /// Returns [`SpaceError`] when the sweep space has an empty or
    /// zero-containing grid.
    pub fn explore_parallel(
        &self,
        layer: &Layer,
        mappings: &[Dataflow],
        threads: usize,
    ) -> Result<DseResult, SpaceError> {
        let t0 = Instant::now();
        self.space.validate()?;
        let partials = run_units(self.space.pes.len(), threads, |i| {
            self.explore_unit(self.space.pes[i], layer, mappings)
        });
        let mut result = merge_partials(partials, self.sample_cap);
        finish_stats(&mut result.stats, t0);
        Ok(result)
    }

    /// One work unit: the full mapping × bandwidth × capacity sweep at a
    /// single PE count. A thin shell around [`Explorer::explore_unit_inner`]
    /// that times the unit and batch-flushes its counters to the global
    /// metrics registry — wall-clock throughput goes to metrics *only*,
    /// never into [`DseStats`], which must stay deterministic.
    fn explore_unit(&self, pes: u64, layer: &Layer, mappings: &[Dataflow]) -> Partial {
        let _span = maestro_obs::span::span("maestro.dse.unit");
        let t0 = Instant::now();
        let part = self.explore_unit_inner(pes, layer, mappings);
        flush_unit_metrics(&part, t0.elapsed());
        part
    }

    fn explore_unit_inner(&self, pes: u64, layer: &Layer, mappings: &[Dataflow]) -> Partial {
        if self.fail_unit_pes == Some(pes) {
            panic!("injected failure for PE count {pes}");
        }
        let mut part = Partial::new();
        let caps_per_eval = self.space.capacity_cells() as u64;
        // The space is validated at the `explore*` boundary; an empty grid
        // here would mean a caller bypassed it, so degrade to an empty
        // partial instead of panicking.
        let (Some(&min_l1), Some(&min_l2), Some(&min_bw)) = (
            self.space.l1_bytes.iter().min(),
            self.space.l2_bytes.iter().min(),
            self.space.noc_bw.iter().min(),
        ) else {
            return part;
        };

        // Bulk skip: if even the smallest configuration at this PE count
        // blows the budget, the whole subtree is invalid.
        let min_acc = self.accelerator(pes, min_bw, Some((min_l1, min_l2)));
        let subtree = caps_per_eval * (self.space.noc_bw.len() * mappings.len()) as u64;
        if self.area_model.total_area(&min_acc) > self.constraints.max_area_mm2
            || self.power_model.total_power(&min_acc) > self.constraints.max_power_mw
        {
            part.stats.explored += subtree;
            return part;
        }
        let mut memo = AnalysisCache::with_capacity(self.memo_cap);
        let ctx = UnitCtx::new(self, pes);
        let mut front = ParetoFront::new();
        // Placed energy depends only on (mapping, L1, L2): activity counts
        // and tensor sizes are NoC-independent, so one decomposed energy
        // table per mapping is shared across the whole bandwidth axis
        // (filled lazily from the first analyzable bandwidth's report).
        let mut ecells = EnergyCells::new(self.space.l1_bytes.len(), self.space.l2_bytes.len());
        let mut best = BestKeys::new();
        for mapping in mappings.iter() {
            ecells.reset();
            // Staged mode amortizes the context fingerprint across the
            // NoC axis: prepared once here, each per-bandwidth call below
            // hashes only the two NoC words (`analyze_staged_prepared`).
            let prepared = match self.eval {
                EvalMode::Staged => {
                    let acc0 = self.accelerator(pes, self.space.noc_bw[0], None);
                    Some(AnalysisCache::prepare(layer, mapping, &acc0))
                }
                EvalMode::Full => None,
            };
            for (b_idx, &bw) in self.space.noc_bw.iter().enumerate() {
                part.stats.explored += caps_per_eval;
                // Capacities do not change the schedule, so the analysis
                // runs at the reference capacities and is expanded below.
                let acc = self.accelerator(pes, bw, None);
                let analyzed = match &prepared {
                    Some(p) => memo.analyze_staged_prepared(p, &acc),
                    None => memo.analyze(layer, mapping, &acc),
                };
                let report = match analyzed {
                    Ok(r) => r,
                    Err(AnalysisError::NonFinite { .. }) => {
                        part.stats.nonfinite_dropped += caps_per_eval;
                        continue;
                    }
                    Err(_) => continue,
                };
                self.expand_capacities(
                    pes,
                    b_idx,
                    mapping.name(),
                    &report,
                    &mut part,
                    &mut front,
                    &ctx,
                    &mut ecells,
                    &mut best,
                );
            }
        }
        part.pareto = front.into_points();
        part.stats.evaluated += memo.misses();
        part.stats.memo_hits += memo.hits();
        part
    }

    /// Expand one (PE count, bandwidth, mapping) evaluation across the
    /// L1/L2 capacity grid, accumulating into `part` and `front`.
    ///
    /// The capacity loop is the sweep's hot path (hundreds of iterations
    /// per evaluation), so everything that does not vary inside it is
    /// precomputed: the budget/finiteness verdict is one byte load from
    /// `ctx.mask`, placed energy one load from the per-mapping `ecells`
    /// table (both bit-identical to the full model calls — see `UnitCtx`),
    /// the best-objective comparisons hit register-resident keys, and the
    /// dominance scan collapses to one scalar compare because runtime is
    /// constant across this whole expansion. The `DesignPoint` (with its
    /// owned mapping string) — and the recomposed area/power it carries —
    /// is only materialized for points that actually enter a best slot,
    /// the front, or the sample.
    #[allow(clippy::too_many_arguments)]
    fn expand_capacities(
        &self,
        pes: u64,
        b_idx: usize,
        mapping: &str,
        report: &LayerReport,
        part: &mut Partial,
        front: &mut ParetoFront,
        ctx: &UnitCtx,
        ecells: &mut EnergyCells,
        best: &mut BestKeys,
    ) {
        let bw = self.space.noc_bw[b_idx];
        let l2_len = self.space.l2_bytes.len();
        ecells.fill_once(self, report, ctx);
        let runtime = report.runtime;
        let throughput = report.throughput();
        let neg_tp = -throughput;
        let rt_tp_ok = runtime.is_finite() && throughput.is_finite();
        let l1_req = report.l1_per_pe_elems;
        let l2_req = report.l2_staging_elems;
        let cells = ctx.l1_elems.len() * l2_len;
        let mask = &ctx.mask[b_idx * cells..(b_idx + 1) * cells];
        // `min_en <= e` is exactly the dominance verdict for a candidate
        // at this expansion's (constant) runtime; an accepted candidate
        // becomes the new minimum (see `ParetoFront::min_energy_leq_runtime`).
        let mut min_en = front.min_energy_leq_runtime(runtime);
        // Stats accumulate in locals (flushed below) so the dense loop
        // does not read-modify-write `part.stats` fields per cell.
        let mut valid = part.stats.valid;
        let mut rejected = 0u64;
        let mut skipped = 0u64;
        let mut dropped = 0u64;
        let l1_len = self.space.l1_bytes.len();
        let l1_elems = &ctx.l1_elems[..l1_len];
        let l2_elems = &ctx.l2_elems[..l2_len];
        let row_fast = &ctx.row_fast[b_idx * l1_len..(b_idx + 1) * l1_len];
        let row_any = &ctx.row_any[b_idx * l1_len..(b_idx + 1) * l1_len];
        let l2_all_fit = l2_req <= ctx.l2_min_elems;
        // Cells below the L2 requirement — the same subset for every L1
        // row, so one count serves every dead row's capacity skips.
        let l2_skip_count = l2_elems.iter().filter(|&&c| c < l2_req).count() as u64;
        for (i1, &l1_cap) in l1_elems.iter().enumerate() {
            // The grid is in bytes, the requirement in elements.
            if l1_cap < l1_req {
                // Capacity below the mapping's requirement: the whole L2
                // row of the grid is skipped without costing.
                skipped += l2_len as u64;
                continue;
            }
            // Dead row: no cell passes the budget, so the scalar loop
            // would only count the capacity skips (budget-rejected cells
            // are uncounted, exactly as in the fused filter).
            if row_any[i1] == 0 {
                skipped += l2_skip_count;
                continue;
            }
            // Whole-row reject: when provably no cell of this L2 row can
            // be skipped, dropped, win an objective, or enter the front,
            // the scalar loop below would only count — all cells valid,
            // all rejected — plus push any every-61st-valid samples. Each
            // clause certifies one scalar-path outcome: row uniformly
            // within budget and finite; runtime/throughput and every
            // placed energy finite (EDP spans [rowmin, rowmax]·runtime,
            // both finite, and runtime > 0 under `rt_tp_ok`, so EDP is
            // monotone in energy); no objective beaten by the row's best
            // case (a NaN empty best fails its `>=`, forcing the scalar
            // path); and the front's minimum at or below the row minimum.
            if row_fast[i1] != 0
                && l2_all_fit
                && rt_tp_ok
                && ecells.row_finite[i1] != 0
                && (ecells.rowmax[i1] * runtime).is_finite()
                && neg_tp >= best.neg_throughput
                && ecells.rowmin[i1] >= best.energy
                && ecells.rowmin[i1] * runtime >= best.edp
                && min_en <= ecells.rowmin[i1]
            {
                let row_start = valid;
                valid += l2_len as u64;
                rejected += l2_len as u64;
                // Samples landing in this row (valid counts row_start+1
                // ..=valid): materialize exactly the cells the scalar
                // loop would have pushed, in the same order.
                let mut m = row_start - row_start % 61 + 61;
                while m <= valid && part.sample.len() < self.sample_cap {
                    let i2 = (m - row_start - 1) as usize;
                    let e = ecells.e[i1 * l2_len + i2];
                    let (area, power) = ctx.area_power(b_idx, i1, i2);
                    part.sample.push(
                        Cand {
                            pes,
                            bw,
                            l1: self.space.l1_bytes[i1],
                            l2: self.space.l2_bytes[i2],
                            mapping,
                            area,
                            power,
                            runtime,
                            throughput,
                            energy: e,
                            edp: e * runtime,
                        }
                        .to_point(),
                    );
                    m += 61;
                }
                continue;
            }
            let mrow = &mask[i1 * l2_len..i1 * l2_len + l2_len];
            let erow = &ecells.e[i1 * l2_len..i1 * l2_len + l2_len];
            for (i2, &l2_cap) in l2_elems.iter().enumerate() {
                if l2_cap < l2_req {
                    skipped += 1;
                    continue;
                }
                let flags = mrow[i2];
                if flags & MASK_BUDGET_OK == 0 {
                    continue;
                }
                let e = erow[i2];
                let edp = e * runtime;
                // Finite-value gate: drop-and-count rather than let a NaN
                // objective corrupt the front or the best slots.
                if flags & MASK_AP_FINITE == 0 || !rt_tp_ok || !e.is_finite() || !edp.is_finite() {
                    dropped += 1;
                    continue;
                }
                valid += 1;
                // `!(k >= best)` is exactly `k.total_cmp(&best) == Less`
                // here: the candidate key is finite, an empty (NaN) best
                // loses every `>=`, and within each key family zeros share
                // one sign (energy/EDP are sums/products of non-negatives,
                // so +0; negated throughput of a non-negative is -0), so
                // the `-0 < +0` case of the total order cannot arise.
                // The negated form is deliberate (NaN must land on the
                // "wins" side), hence the lint allowance.
                #[allow(clippy::neg_cmp_op_on_partial_ord)]
                let wins_tp = !(neg_tp >= best.neg_throughput);
                #[allow(clippy::neg_cmp_op_on_partial_ord)]
                let wins_en = !(e >= best.energy);
                #[allow(clippy::neg_cmp_op_on_partial_ord)]
                let wins_edp = !(edp >= best.edp);
                #[allow(clippy::neg_cmp_op_on_partial_ord)]
                let accepted = !(min_en <= e);
                let sampled = valid.is_multiple_of(61) && part.sample.len() < self.sample_cap;
                if !(wins_tp | wins_en | wins_edp | accepted | sampled) {
                    rejected += 1;
                    continue;
                }
                // Slow path: the point matters — materialize it once.
                let (area, power) = ctx.area_power(b_idx, i1, i2);
                let point = Cand {
                    pes,
                    bw,
                    l1: self.space.l1_bytes[i1],
                    l2: self.space.l2_bytes[i2],
                    mapping,
                    area,
                    power,
                    runtime,
                    throughput,
                    energy: e,
                    edp,
                }
                .to_point();
                if wins_tp {
                    best.neg_throughput = neg_tp;
                    part.best_throughput = Some(point.clone());
                }
                if wins_en {
                    best.energy = e;
                    part.best_energy = Some(point.clone());
                }
                if wins_edp {
                    best.edp = edp;
                    part.best_edp = Some(point.clone());
                }
                if accepted {
                    front.accept(runtime, e, point.clone());
                    min_en = e;
                    part.stats.pareto_inserted += 1;
                } else {
                    rejected += 1;
                }
                // Stratified subsample: every 61st valid point *of this
                // unit*, so the scatter spans the whole space instead of
                // its first corner — and so unit samples concatenate
                // deterministically (see `crate::parallel`).
                if sampled {
                    part.sample.push(point);
                }
            }
        }
        part.stats.valid = valid;
        part.stats.pareto_rejected += rejected;
        part.stats.capacity_skipped += skipped;
        part.stats.nonfinite_dropped += dropped;
    }
}

/// Per-unit expansion context: the capacity grids converted to elements
/// once, plus the area/power/energy models decomposed into per-axis
/// component tables.
///
/// Area and power are sums of four independent components — PE array (L1
/// axis), shared L2, NoC (bandwidth axis), and reuse support — so one
/// table per axis replaces a full model evaluation (with its `powf`/`sqrt`
/// calls and `Accelerator` construction) per grid point. The component
/// values come from the *same* public model methods `total_area`/
/// `total_power` are built from, summed in the same order, so the
/// recomposed scalars are bit-identical to the per-point calls they
/// replace (pinned by `cost_decomposition_matches_full_model_calls`
/// below).
struct UnitCtx {
    l1_elems: Vec<u64>,
    l2_elems: Vec<u64>,
    /// `num_pes as f64 * pe_area(..)` per L1 grid entry.
    a_l1: Vec<f64>,
    a_l2: Vec<f64>,
    a_bw: Vec<f64>,
    a_sup: f64,
    p_l1: Vec<f64>,
    p_l2: Vec<f64>,
    p_bw: Vec<f64>,
    p_sup: f64,
    /// CACTI-style per-access energies along the capacity axes:
    /// (l1_read, l1_write) per L1 entry, (l2_read, l2_write) per L2 entry.
    e_l1: Vec<(f64, f64)>,
    e_l2: Vec<(f64, f64)>,
    /// Capacity-independent per-access energies.
    e_mac: f64,
    e_noc: f64,
    /// Per-(bandwidth, capacity cell) verdict flags, `b_idx * cells +
    /// i1 * l2_len + i2`: see [`MASK_BUDGET_OK`] / [`MASK_AP_FINITE`].
    mask: Vec<u8>,
    /// Per-(bandwidth, L1 row) flag, `b_idx * l1_len + i1`: nonzero when
    /// *every* cell of the row is both inside the budget and finite — the
    /// precondition for the expansion's whole-row reject.
    row_fast: Vec<u8>,
    /// Per-(bandwidth, L1 row) flag: nonzero when *any* cell of the row
    /// passes the budget. A zero row contributes nothing but capacity
    /// skips, so the expansion drops it without touching its cells.
    row_any: Vec<u8>,
    /// Smallest L2 grid capacity in elements (`u64::MAX` on an empty
    /// grid): `l2_req <= l2_min_elems` means no cell of a row is
    /// capacity-skipped.
    l2_min_elems: u64,
}

/// [`UnitCtx::mask`] bit: the cell passes the area/power budget — the
/// same `> max` comparisons as the fused filter, so a NaN cost *passes*
/// here and is dropped by the finiteness gate, exactly as before.
const MASK_BUDGET_OK: u8 = 1;
/// [`UnitCtx::mask`] bit: the cell's area and power are both finite.
const MASK_AP_FINITE: u8 = 2;

impl UnitCtx {
    fn new(ex: &Explorer, pes: u64) -> Self {
        // One reference accelerator supplies the unit-constant parameters
        // (vector width, precision, reuse support) exactly as the
        // per-point constructions did.
        let bw0 = ex.space.noc_bw.first().copied().unwrap_or(1);
        let acc0 = ex.accelerator(pes, bw0, None);
        let n = acc0.num_pes;
        let nf = n as f64;
        let a = &ex.area_model;
        let p = &ex.power_model;
        let e0 = maestro_hw::EnergyModel::cacti_28nm(0, 0);
        let mut ctx = UnitCtx {
            l1_elems: ex.space.l1_bytes.iter().map(|&b| ex.elements(b)).collect(),
            l2_elems: ex.space.l2_bytes.iter().map(|&b| ex.elements(b)).collect(),
            a_l1: ex
                .space
                .l1_bytes
                .iter()
                .map(|&l1| nf * a.pe_area(acc0.vector_width, acc0.precision_bytes, l1))
                .collect(),
            a_l2: ex.space.l2_bytes.iter().map(|&l2| a.l2_area(l2)).collect(),
            a_bw: ex
                .space
                .noc_bw
                .iter()
                .map(|&bw| a.noc_area(n, bw))
                .collect(),
            a_sup: a.support_area(n, acc0.support),
            p_l1: ex
                .space
                .l1_bytes
                .iter()
                .map(|&l1| p.pe_array_power(n, acc0.vector_width, l1))
                .collect(),
            p_l2: ex.space.l2_bytes.iter().map(|&l2| p.l2_power(l2)).collect(),
            p_bw: ex.space.noc_bw.iter().map(|&bw| p.noc_power(bw)).collect(),
            p_sup: p.support_power(n, acc0.support),
            e_l1: ex
                .space
                .l1_bytes
                .iter()
                .map(|&l1| {
                    let em = maestro_hw::EnergyModel::cacti_28nm(l1, 0);
                    (em.l1_read, em.l1_write)
                })
                .collect(),
            e_l2: ex
                .space
                .l2_bytes
                .iter()
                .map(|&l2| {
                    let em = maestro_hw::EnergyModel::cacti_28nm(0, l2);
                    (em.l2_read, em.l2_write)
                })
                .collect(),
            e_mac: e0.mac,
            e_noc: e0.noc,
            mask: Vec::new(),
            row_fast: Vec::new(),
            row_any: Vec::new(),
            l2_min_elems: u64::MAX,
        };
        ctx.l2_min_elems = ctx.l2_elems.iter().copied().min().unwrap_or(u64::MAX);
        // Precompute the budget/finiteness verdict of every grid point
        // once per unit (the verdict is mapping-independent), so the
        // per-mapping expansion reduces it to one byte load — and roll the
        // verdicts up per L1 row for the whole-row reject.
        let cells = ctx.l1_elems.len() * ctx.l2_elems.len();
        let mut mask = vec![0u8; ex.space.noc_bw.len() * cells];
        let mut row_fast = vec![0u8; ex.space.noc_bw.len() * ctx.l1_elems.len()];
        let mut row_any = vec![0u8; ex.space.noc_bw.len() * ctx.l1_elems.len()];
        for b_idx in 0..ex.space.noc_bw.len() {
            for i1 in 0..ctx.l1_elems.len() {
                let mut all = MASK_BUDGET_OK | MASK_AP_FINITE;
                let mut any = 0u8;
                for i2 in 0..ctx.l2_elems.len() {
                    let (area, power) = ctx.area_power(b_idx, i1, i2);
                    let mut m = 0u8;
                    if !(area > ex.constraints.max_area_mm2 || power > ex.constraints.max_power_mw)
                    {
                        m |= MASK_BUDGET_OK;
                    }
                    if area.is_finite() && power.is_finite() {
                        m |= MASK_AP_FINITE;
                    }
                    all &= m;
                    any |= m & MASK_BUDGET_OK;
                    mask[b_idx * cells + i1 * ctx.l2_elems.len() + i2] = m;
                }
                row_fast[b_idx * ctx.l1_elems.len() + i1] =
                    u8::from(all == MASK_BUDGET_OK | MASK_AP_FINITE);
                row_any[b_idx * ctx.l1_elems.len() + i1] = any;
            }
        }
        ctx.mask = mask;
        ctx.row_fast = row_fast;
        ctx.row_any = row_any;
        ctx
    }

    /// `(area, power)` at one grid point, recomposed from the component
    /// tables with the same addition order as `total_area`/`total_power`.
    #[inline]
    fn area_power(&self, b_idx: usize, i1: usize, i2: usize) -> (f64, f64) {
        (
            self.a_l1[i1] + self.a_l2[i2] + self.a_bw[b_idx] + self.a_sup,
            self.p_l1[i1] + self.p_l2[i2] + self.p_bw[b_idx] + self.p_sup,
        )
    }
}

/// Per-mapping energy decomposition: the activity totals scaled once, plus
/// the placed DRAM traffic per L2 grid entry. `at(i1, i2)` reproduces
/// [`Explorer::placed_energy`] term by term in the same order (pinned by
/// `cost_decomposition_matches_full_model_calls`), turning a model
/// evaluation per (mapping, capacity) pair into a handful of
/// multiply-adds per grid point.
struct EnergyTab {
    mac: f64,
    l1r: f64,
    l1w: f64,
    l2r: f64,
    l2w: f64,
    noc: f64,
    dram_pj: f64,
    /// Placed `(dram_read + dram_write).total()` per L2 grid entry.
    dram: Vec<f64>,
}

impl EnergyTab {
    fn new(ex: &Explorer, report: &LayerReport, ctx: &UnitCtx) -> Self {
        let c = &report.counts;
        EnergyTab {
            mac: c.macs * ctx.e_mac,
            l1r: c.l1_read.total(),
            l1w: c.l1_write.total(),
            l2r: c.l2_read.total(),
            l2w: c.l2_write.total(),
            noc: c.noc.total() * ctx.e_noc,
            dram_pj: ex.dram_pj,
            dram: ctx
                .l2_elems
                .iter()
                .map(|&l2_elems| {
                    let (dr, dw) =
                        maestro_core::report::offchip_traffic(c, report.tensor_elems, l2_elems);
                    dr.total() + dw.total()
                })
                .collect(),
        }
    }

    /// Placed energy at one capacity cell — the reference recomposition.
    /// The sweep itself uses the row-hoisted [`EnergyCells::fill_once`];
    /// `cost_decomposition_matches_full_model_calls` pins both against
    /// [`Explorer::placed_energy`] bit-for-bit.
    #[cfg(test)]
    fn at(&self, ctx: &UnitCtx, i1: usize, i2: usize) -> f64 {
        let (e1r, e1w) = ctx.e_l1[i1];
        let (e2r, e2w) = ctx.e_l2[i2];
        self.mac
            + self.l1r * e1r
            + self.l1w * e1w
            + self.l2r * e2r
            + self.l2w * e2w
            + self.noc
            + self.dram[i2] * self.dram_pj
    }
}

/// The per-mapping placed energies of every capacity cell, composed once
/// per mapping (placed energy is NoC-independent) and shared across the
/// whole bandwidth axis. The cell values are [`EnergyTab::at`] evaluated
/// with the identical operation sequence — the shared left prefix of the
/// sum is hoisted per L1 row, which preserves every intermediate rounding.
struct EnergyCells {
    ready: bool,
    e: Vec<f64>,
    /// Per-L1-row minimum / maximum placed energy — the extreme
    /// objectives a row can produce (EDP is monotone in energy at the
    /// expansion's constant positive runtime), driving the whole-row
    /// reject in `expand_capacities`.
    rowmin: Vec<f64>,
    rowmax: Vec<f64>,
    /// Per-L1-row flag: every cell of the row is finite. Tracked
    /// explicitly because `f64::min`/`max` skip NaN operands, so a NaN
    /// cell (which must be *dropped*, not rejected) would otherwise be
    /// invisible in the extremes.
    row_finite: Vec<u8>,
}

impl EnergyCells {
    fn new(l1_len: usize, l2_len: usize) -> Self {
        EnergyCells {
            ready: false,
            e: vec![0.0; l1_len * l2_len],
            rowmin: vec![f64::NAN; l1_len],
            rowmax: vec![f64::NAN; l1_len],
            row_finite: vec![0; l1_len],
        }
    }

    /// Invalidate before moving to the next mapping.
    fn reset(&mut self) {
        self.ready = false;
    }

    /// Fill from the first analyzable bandwidth's report (activity counts
    /// are the same for every bandwidth of a mapping).
    fn fill_once(&mut self, ex: &Explorer, report: &LayerReport, ctx: &UnitCtx) {
        if self.ready {
            return;
        }
        let tab = EnergyTab::new(ex, report, ctx);
        let l2_len = ctx.l2_elems.len();
        for (i1, &(e1r, e1w)) in ctx.e_l1.iter().enumerate() {
            // Left prefix of the `EnergyTab::at` chain, constant per row.
            let row = tab.mac + tab.l1r * e1r + tab.l1w * e1w;
            let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
            let mut finite = true;
            for (i2, &(e2r, e2w)) in ctx.e_l2.iter().enumerate() {
                let v = row + tab.l2r * e2r + tab.l2w * e2w + tab.noc + tab.dram[i2] * tab.dram_pj;
                self.e[i1 * l2_len + i2] = v;
                lo = lo.min(v);
                hi = hi.max(v);
                finite &= v.is_finite();
            }
            self.rowmin[i1] = lo;
            self.rowmax[i1] = hi;
            self.row_finite[i1] = u8::from(finite);
        }
        self.ready = true;
    }
}

/// Running best-objective keys mirroring the `Partial::best_*` slots, so
/// the hot loop compares against a register-resident `f64` instead of
/// re-deriving the key from the stored [`DesignPoint`]. `NAN` means the
/// slot is empty; `total_cmp` orders every finite key below it, which
/// reproduces the "empty slot always loses" rule of [`update_best`].
struct BestKeys {
    neg_throughput: f64,
    energy: f64,
    edp: f64,
}

impl BestKeys {
    fn new() -> Self {
        BestKeys {
            neg_throughput: f64::NAN,
            energy: f64::NAN,
            edp: f64::NAN,
        }
    }
}

/// A candidate design point by value, before the owned [`DesignPoint`]
/// (and its mapping `String`) is materialized. Most candidates are
/// examined and discarded; deferring the allocation to acceptance keeps
/// the hot loop allocation-free.
struct Cand<'a> {
    pes: u64,
    bw: u64,
    l1: u64,
    l2: u64,
    mapping: &'a str,
    area: f64,
    power: f64,
    runtime: f64,
    throughput: f64,
    energy: f64,
    edp: f64,
}

impl Cand<'_> {
    /// Mirror of [`DesignPoint::is_finite`].
    fn is_finite(&self) -> bool {
        [
            self.area,
            self.power,
            self.runtime,
            self.throughput,
            self.energy,
            self.edp,
        ]
        .iter()
        .all(|v| v.is_finite())
    }

    fn to_point(&self) -> DesignPoint {
        DesignPoint {
            pes: self.pes,
            noc_bw: self.bw,
            l1_bytes: self.l1,
            l2_bytes: self.l2,
            mapping: self.mapping.to_string(),
            area_mm2: self.area,
            power_mw: self.power,
            runtime: self.runtime,
            throughput: self.throughput,
            energy: self.energy,
            edp: self.edp,
        }
    }
}

/// [`update_best`] for a not-yet-materialized candidate: same finite gate
/// and strict-less, first-wins tie rule, but the owned point is only built
/// (once, shared via `made`) when the candidate actually wins a slot.
fn update_best_cand(
    slot: &mut Option<DesignPoint>,
    key_val: f64,
    cand: &Cand<'_>,
    made: &mut Option<DesignPoint>,
    key: impl Fn(&DesignPoint) -> f64,
) {
    if !key_val.is_finite() {
        return;
    }
    let better = match slot {
        Some(cur) => key_val.total_cmp(&key(cur)) == std::cmp::Ordering::Less,
        None => true,
    };
    if better {
        *slot = Some(made.get_or_insert_with(|| cand.to_point()).clone());
    }
}

/// Stamp wall-clock duration and effective rate onto merged statistics.
fn finish_stats(stats: &mut DseStats, t0: Instant) {
    stats.seconds = t0.elapsed().as_secs_f64().max(1e-9);
    stats.rate = stats.explored as f64 / stats.seconds;
}

/// `OnceLock`-cached handles for the per-unit DSE metrics: one registry
/// lookup per process, one batched flush per work unit.
struct UnitMetrics {
    units: maestro_obs::Counter,
    explored: maestro_obs::Counter,
    valid: maestro_obs::Counter,
    capacity_skipped: maestro_obs::Counter,
    pareto_inserted: maestro_obs::Counter,
    pareto_rejected: maestro_obs::Counter,
    unit_seconds: maestro_obs::Histogram,
    unit_rate: maestro_obs::Histogram,
}

/// The one source of truth for `maestro.dse.unit_seconds` bucket bounds:
/// log-spaced, 2 per decade from 100 µs to 60 s, so tail quantiles
/// interpolate within ~3x instead of the old decade-wide jumps. The CLI
/// registers the same histogram from its progress callback — sharing the
/// bounds here keeps the two registrations from conflicting.
pub fn unit_seconds_buckets() -> Vec<f64> {
    maestro_obs::metrics::log_buckets(1e-4, 60.0, 2)
}

fn unit_metrics() -> &'static UnitMetrics {
    static M: std::sync::OnceLock<UnitMetrics> = std::sync::OnceLock::new();
    M.get_or_init(|| {
        let r = maestro_obs::registry();
        UnitMetrics {
            units: r.counter("maestro.dse.units_completed"),
            explored: r.counter("maestro.dse.points_explored"),
            valid: r.counter("maestro.dse.points_valid"),
            capacity_skipped: r.counter("maestro.dse.capacity_skipped"),
            pareto_inserted: r.counter("maestro.dse.pareto_inserted"),
            pareto_rejected: r.counter("maestro.dse.pareto_rejected"),
            unit_seconds: r.histogram("maestro.dse.unit_seconds", &unit_seconds_buckets()),
            // Designs/second per shard; the paper reports sweeps north of
            // 0.1M designs/s, hence the decade buckets up to 1e8.
            unit_rate: r.histogram("maestro.dse.unit_rate", &[1e3, 1e4, 1e5, 1e6, 1e7, 1e8]),
        }
    })
}

/// One batched flush of a finished work unit's counters and wall-clock
/// throughput into the global registry. The sweep hot loop touches only
/// the unit-private [`Partial`]; shared atomics are hit once per unit.
fn flush_unit_metrics(part: &Partial, elapsed: std::time::Duration) {
    let m = unit_metrics();
    m.units.inc();
    m.explored.add(part.stats.explored);
    m.valid.add(part.stats.valid);
    m.capacity_skipped.add(part.stats.capacity_skipped);
    m.pareto_inserted.add(part.stats.pareto_inserted);
    m.pareto_rejected.add(part.stats.pareto_rejected);
    let secs = elapsed.as_secs_f64().max(1e-9);
    m.unit_seconds.observe(secs);
    m.unit_rate.observe(part.stats.explored as f64 / secs);
}

/// Replace `slot` when `key(p)` is strictly smaller — on ties the earlier
/// point wins, which keeps the parallel merge identical to a sequential
/// sweep. A non-finite key is rejected outright, whether the slot is empty
/// or occupied: `total_cmp` alone is not enough, because a *negative* NaN
/// (which the `-throughput` key produces from a NaN throughput) sorts
/// below every finite value and would displace a finite incumbent. The
/// gate keeps poisoned candidates (fault-harness injections, damaged
/// checkpoints) out of the best-point slots.
pub(crate) fn update_best(
    slot: &mut Option<DesignPoint>,
    p: &DesignPoint,
    key: impl Fn(&DesignPoint) -> f64,
) {
    if !key(p).is_finite() {
        return;
    }
    let better = match slot {
        Some(cur) => key(p).total_cmp(&key(cur)) == std::cmp::Ordering::Less,
        None => true,
    };
    if better {
        *slot = Some(p.clone());
    }
}

/// Insert into the (runtime, energy) Pareto front, dropping dominated
/// points. A point that ties an existing front member on both axes is
/// dropped (first occurrence wins), so folding points in a fixed order
/// yields a deterministic front.
///
/// Points with a NaN or infinite objective are rejected outright: NaN
/// fails every `<=` comparison, so without this gate such a point would
/// look "non-dominated" and enter the front while never evicting anything
/// honestly.
///
/// Returns `true` when the point entered the front, `false` when it was
/// rejected (dominated, tying, or non-finite) — callers feed the
/// insertion/rejection tallies in [`DseStats`] from this.
pub fn insert_pareto(front: &mut Vec<DesignPoint>, p: &DesignPoint) -> bool {
    if !(p.runtime.is_finite() && p.energy.is_finite()) {
        return false;
    }
    if front
        .iter()
        .any(|q| q.runtime <= p.runtime && q.energy <= p.energy)
    {
        return false;
    }
    front.retain(|q| !(p.runtime <= q.runtime && p.energy <= q.energy));
    front.push(p.clone());
    true
}

/// A structure-of-arrays (runtime, energy) Pareto front.
///
/// Semantically identical to folding points through [`insert_pareto`], but
/// the dominance scan runs over two flat `f64` arrays instead of a
/// `Vec<DesignPoint>` of ~100-byte records with heap-allocated mapping
/// strings. The scan accumulates a branch-free boolean (no early exit by
/// default — fronts are small and the predictable loop beats a
/// mispredicted break), and eviction compacts all three arrays in one
/// stable pass.
#[derive(Debug, Default, Clone)]
pub struct ParetoFront {
    runtime: Vec<f64>,
    energy: Vec<f64>,
    points: Vec<DesignPoint>,
}

impl ParetoFront {
    /// An empty front.
    pub fn new() -> Self {
        ParetoFront::default()
    }

    /// Number of points currently on the front.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the front is empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The points currently on the front, in insertion (fold) order.
    pub fn points(&self) -> &[DesignPoint] {
        &self.points
    }

    /// Whether `(rt, en)` is dominated by (or ties) an existing member —
    /// the same `q.runtime <= rt && q.energy <= en` test as
    /// [`insert_pareto`]. The scan runs branch-free within fixed-width
    /// chunks of the SoA columns (accumulating the disjunction, no
    /// per-element branch for the predictor to miss) and exits between
    /// chunks: in a sweep almost every candidate is dominated, usually by
    /// an early member, so a full-length scan would throw away the common
    /// case while a per-element early exit mispredicts on dense fronts.
    fn dominated(&self, rt: f64, en: f64) -> bool {
        const CHUNK: usize = 8;
        let n = self.points.len();
        let mut i = 0;
        while i + CHUNK <= n {
            let mut dom = false;
            for j in i..i + CHUNK {
                dom |= self.runtime[j] <= rt && self.energy[j] <= en;
            }
            if dom {
                return true;
            }
            i += CHUNK;
        }
        let mut dom = false;
        for j in i..n {
            dom |= self.runtime[j] <= rt && self.energy[j] <= en;
        }
        dom
    }

    /// Stable in-place removal of members dominated by `(rt, en)` —
    /// mirrors `retain(|q| !(rt <= q.runtime && en <= q.energy))`.
    fn evict_dominated(&mut self, rt: f64, en: f64) {
        let mut w = 0usize;
        for r in 0..self.points.len() {
            let keep = !(rt <= self.runtime[r] && en <= self.energy[r]);
            if keep {
                if w != r {
                    self.runtime[w] = self.runtime[r];
                    self.energy[w] = self.energy[r];
                    self.points.swap(w, r);
                }
                w += 1;
            }
        }
        self.runtime.truncate(w);
        self.energy.truncate(w);
        self.points.truncate(w);
    }

    /// Minimum member energy among members with `runtime <= rt`
    /// (`+inf` when there is none). For a candidate at runtime `rt`,
    /// `min_energy_leq_runtime(rt) <= en` is exactly [`Self::dominated`] —
    /// the sweep's capacity expansion exploits this to reduce the per-cell
    /// dominance scan to one scalar compare, since runtime is constant
    /// across a whole (mapping, bandwidth) expansion.
    fn min_energy_leq_runtime(&self, rt: f64) -> f64 {
        let mut min = f64::INFINITY;
        for i in 0..self.points.len() {
            if self.runtime[i] <= rt && self.energy[i] < min {
                min = self.energy[i];
            }
        }
        min
    }

    /// Accept a point already known to be finite and non-dominated:
    /// evict what it dominates and push. Callers must have established
    /// both preconditions (see `expand_capacities`); this is the accept
    /// half of [`Self::try_insert_with`].
    fn accept(&mut self, rt: f64, en: f64, point: DesignPoint) {
        self.evict_dominated(rt, en);
        self.runtime.push(rt);
        self.energy.push(en);
        self.points.push(point);
    }

    /// Insert `(rt, en)` if non-dominated, materializing the owned point
    /// via `make` only on acceptance. Returns whether the point entered
    /// the front — same accept/reject behaviour as [`insert_pareto`].
    pub fn try_insert_with(
        &mut self,
        rt: f64,
        en: f64,
        make: impl FnOnce() -> DesignPoint,
    ) -> bool {
        if !(rt.is_finite() && en.is_finite()) {
            return false;
        }
        if self.dominated(rt, en) {
            return false;
        }
        self.evict_dominated(rt, en);
        self.runtime.push(rt);
        self.energy.push(en);
        self.points.push(make());
        true
    }

    /// Insert an already-owned point (merge path). Equivalent to
    /// [`insert_pareto`] on the underlying vector.
    pub fn insert(&mut self, p: &DesignPoint) -> bool {
        self.try_insert_with(p.runtime, p.energy, || p.clone())
    }

    /// Consume the front, returning the surviving points in fold order.
    pub fn into_points(self) -> Vec<DesignPoint> {
        self.points
    }
}

impl From<Vec<DesignPoint>> for ParetoFront {
    /// Rebuild the SoA columns from an existing front (assumed already
    /// mutually non-dominated, e.g. a checkpointed partial's front).
    fn from(points: Vec<DesignPoint>) -> Self {
        ParetoFront {
            runtime: points.iter().map(|p| p.runtime).collect(),
            energy: points.iter().map(|p| p.energy).collect(),
            points,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::SweepSpace;
    use crate::variants;
    use maestro_dnn::{LayerDims, Operator};
    use maestro_ir::Style;

    fn layer() -> Layer {
        Layer::new("c", Operator::conv2d(), LayerDims::square(1, 32, 32, 34, 3))
    }

    /// The per-axis cost decomposition (`UnitCtx::area_power`,
    /// `EnergyTab::at`) must reproduce the full model calls bit-for-bit —
    /// exact `f64` equality, not tolerance — on every grid point of the
    /// standard space. The doc comments on `UnitCtx`/`EnergyTab` point
    /// here.
    #[test]
    fn cost_decomposition_matches_full_model_calls() {
        let ex = Explorer::new(SweepSpace::standard());
        let maps = variants::variants(Style::KCP);
        for &pes in &[16u64, 128, 512] {
            let ctx = UnitCtx::new(&ex, pes);
            for (b_idx, &bw) in ex.space.noc_bw.iter().enumerate() {
                for (i1, &l1) in ex.space.l1_bytes.iter().enumerate() {
                    for (i2, &l2) in ex.space.l2_bytes.iter().enumerate() {
                        let acc = ex.accelerator(pes, bw, Some((l1, l2)));
                        let (area, power) = ctx.area_power(b_idx, i1, i2);
                        assert_eq!(area.to_bits(), ex.area_model.total_area(&acc).to_bits());
                        assert_eq!(power.to_bits(), ex.power_model.total_power(&acc).to_bits());
                    }
                }
            }
            // Energy: decomposed table vs `placed_energy` on a real report.
            let acc = ex.accelerator(pes, ex.space.noc_bw[0], None);
            for mapping in &maps {
                let Ok(report) = maestro_core::analyze(&layer(), mapping, &acc) else {
                    continue;
                };
                let etab = EnergyTab::new(&ex, &report, &ctx);
                let mut cells = EnergyCells::new(ex.space.l1_bytes.len(), ex.space.l2_bytes.len());
                cells.fill_once(&ex, &report, &ctx);
                for (i1, &l1) in ex.space.l1_bytes.iter().enumerate() {
                    for (i2, &l2) in ex.space.l2_bytes.iter().enumerate() {
                        let want = ex.placed_energy(&report, l1, l2);
                        assert_eq!(etab.at(&ctx, i1, i2).to_bits(), want.to_bits());
                        let got = cells.e[i1 * ex.space.l2_bytes.len() + i2];
                        assert_eq!(got.to_bits(), want.to_bits());
                    }
                }
            }
        }
    }

    #[test]
    fn exploration_finds_valid_points() {
        let e = Explorer::new(SweepSpace::tiny());
        let r = e
            .explore(&layer(), &variants::variants(Style::KCP))
            .expect("valid space");
        assert!(r.stats.valid > 0, "{:?}", r.stats);
        assert!(r.stats.explored >= r.stats.valid);
        assert!(r.best_throughput.is_some());
        assert!(r.best_energy.is_some());
        assert!(!r.pareto.is_empty());
    }

    #[test]
    fn pareto_front_is_nondominated() {
        let e = Explorer::new(SweepSpace::tiny());
        let r = e
            .explore(&layer(), &variants::variants(Style::KCP))
            .expect("valid space");
        for a in &r.pareto {
            for b in &r.pareto {
                if std::ptr::eq(a, b) {
                    continue;
                }
                assert!(
                    !(a.runtime <= b.runtime && a.energy < b.energy
                        || a.runtime < b.runtime && a.energy <= b.energy),
                    "{a:?} dominates {b:?}"
                );
            }
        }
    }

    #[test]
    fn constraints_bound_every_valid_point() {
        let e = Explorer::new(SweepSpace::tiny());
        let r = e
            .explore(&layer(), &variants::variants(Style::YRP))
            .expect("valid space");
        for p in &r.sample {
            assert!(p.area_mm2 <= e.constraints.max_area_mm2);
            assert!(p.power_mw <= e.constraints.max_power_mw);
        }
    }

    #[test]
    fn tighter_budget_yields_fewer_valid_points() {
        let space = SweepSpace::tiny();
        let loose = Explorer::new(space.clone());
        let mut tight = Explorer::new(space);
        tight.constraints = Constraints {
            max_area_mm2: 4.0,
            max_power_mw: 120.0,
        };
        let maps = variants::variants(Style::KCP);
        let l = layer();
        let a = loose.explore(&l, &maps).expect("valid space");
        let b = tight.explore(&l, &maps).expect("valid space");
        assert!(b.stats.valid <= a.stats.valid);
    }

    #[test]
    fn throughput_and_energy_optima_differ_in_general() {
        let e = Explorer::new(SweepSpace::tiny());
        let r = e
            .explore(&layer(), &variants::variants(Style::KCP))
            .expect("valid space");
        let t = r.best_throughput.unwrap();
        let en = r.best_energy.unwrap();
        assert!(t.throughput >= en.throughput);
        assert!(en.energy <= t.energy);
    }

    /// Regression test for the capacity-unit bug: the sweep grids are in
    /// **bytes** but the cost model reports requirements in **elements**.
    /// With 2-byte elements, a grid entry equal to the element requirement
    /// holds only half the data and must be rejected. (The old filter
    /// compared bytes against elements directly, so precision never
    /// mattered and the point below was wrongly accepted.)
    #[test]
    fn capacity_filter_converts_bytes_to_elements() {
        let maps = variants::variants(Style::KCP);
        let l = layer();
        // Requirement (in elements) of this layer/mapping at one point.
        let acc = Accelerator::builder(64).noc_bandwidth(16).build();
        let report = maestro_core::analyze(&l, &maps[0], &acc).expect("analyzable");
        assert!(report.l1_per_pe_elems > 0);

        // A one-point space whose L1 grid equals the element requirement
        // *in bytes* — enough at 1 byte/element, too small at 2.
        let space = SweepSpace {
            pes: vec![64],
            noc_bw: vec![16],
            l1_bytes: vec![report.l1_per_pe_elems],
            l2_bytes: vec![2 * 1024 * 1024],
        };
        let mut e = Explorer::new(space);
        e.precision_bytes = 1;
        let one_byte = e.explore(&l, &maps[0..1]).expect("valid space");
        assert!(one_byte.stats.valid > 0, "{:?}", one_byte.stats);

        e.precision_bytes = 2;
        let two_byte = e.explore(&l, &maps[0..1]).expect("valid space");
        assert_eq!(
            two_byte.stats.valid, 0,
            "an L1 of {} bytes cannot hold {} two-byte elements",
            report.l1_per_pe_elems, report.l1_per_pe_elems
        );
    }

    /// Regression test for the bulk-skip minimum: the "smallest
    /// configuration" must use the true grid minima, not the first
    /// entries. With a descending L1 grid, first-entry selection builds an
    /// oversized probe accelerator and wrongly skips every PE count.
    #[test]
    fn bulk_skip_uses_true_grid_minima() {
        let maps = variants::variants(Style::KCP);
        let l = layer();
        let sorted = SweepSpace {
            // Large-but-valid grid values alongside small ones.
            l1_bytes: vec![512, 128 * 1024 * 1024],
            ..SweepSpace::tiny()
        };
        let mut reversed = sorted.clone();
        reversed.l1_bytes.reverse();
        let a = Explorer::new(sorted)
            .explore(&l, &maps)
            .expect("valid space");
        let b = Explorer::new(reversed)
            .explore(&l, &maps)
            .expect("valid space");
        assert!(a.stats.valid > 0);
        assert_eq!(a.stats.valid, b.stats.valid);
        assert_eq!(a.best_throughput, b.best_throughput);
    }

    /// Ratio helpers must degrade to 0.0 — never NaN — when no events of
    /// the denominating kind occurred (e.g. a fully bulk-skipped sweep
    /// performs zero cache lookups).
    #[test]
    fn memo_hit_rate_is_zero_not_nan_without_lookups() {
        let empty = DseStats::empty();
        assert_eq!(empty.memo_hit_rate(), 0.0);
        assert!(!empty.memo_hit_rate().is_nan());
        let mut some = DseStats::empty();
        some.memo_hits = 3;
        some.evaluated = 1;
        assert!((some.memo_hit_rate() - 0.75).abs() < 1e-12);
    }

    /// A NaN-keyed candidate must not seed an empty best slot (it used to:
    /// the `None` arm accepted unconditionally). With the fault harness
    /// appending NaN-poisoned points to partials, this hole would let an
    /// injected point become `best_throughput` on an otherwise-empty unit.
    #[test]
    fn update_best_rejects_nan_into_empty_slot() {
        let mut nan_point = point_for_tests();
        nan_point.throughput = f64::NAN;
        let mut slot: Option<DesignPoint> = None;
        update_best(&mut slot, &nan_point, |p| -p.throughput);
        assert!(slot.is_none(), "NaN key must not seed an empty slot");

        let finite = point_for_tests();
        update_best(&mut slot, &finite, |p| -p.throughput);
        assert!(slot.is_some(), "finite key seeds the slot");
        update_best(&mut slot, &nan_point, |p| -p.throughput);
        assert_eq!(
            slot.as_ref().map(|p| p.throughput),
            Some(finite.throughput),
            "NaN key must not displace a finite incumbent"
        );
    }

    fn point_for_tests() -> DesignPoint {
        DesignPoint {
            pes: 64,
            noc_bw: 16,
            l1_bytes: 512,
            l2_bytes: 1 << 20,
            mapping: "kcp".to_string(),
            area_mm2: 3.0,
            power_mw: 400.0,
            runtime: 1e6,
            throughput: 100.0,
            energy: 1e9,
            edp: 1e15,
        }
    }

    #[test]
    fn empty_grid_is_a_typed_error_not_a_panic() {
        let mut space = SweepSpace::tiny();
        space.noc_bw.clear();
        let err = Explorer::new(space)
            .explore(&layer(), &variants::variants(Style::KCP))
            .unwrap_err();
        assert_eq!(err, crate::space::SpaceError::EmptyGrid { grid: "noc_bw" });
        assert!(err.to_string().contains("noc_bw"), "{err}");
    }
}

impl Explorer {
    /// Explore a *whole model*: each hardware point is evaluated with the
    /// best-runtime mapping per layer (an embedded auto-tune), runtime and
    /// activity counts summed across layers, buffer requirements taken as
    /// worst-case. Energy at each placed capacity sums the per-layer
    /// placed energies (so per-layer working sets drive DRAM misses).
    ///
    /// # Errors
    ///
    /// Returns [`SpaceError`] when the sweep space has an empty or
    /// zero-containing grid.
    pub fn explore_model(
        &self,
        model: &maestro_dnn::Model,
        mappings: &[Dataflow],
    ) -> Result<DseResult, SpaceError> {
        self.explore_model_parallel(model, mappings, 1)
    }

    /// [`Explorer::explore_model`] sharded by PE count across `threads`
    /// scoped worker threads (`0` = one per core), bit-identical to the
    /// sequential result except `seconds`/`rate`. Repeated layer shapes
    /// (VGG/ResNet blocks) hit the per-unit memo cache instead of
    /// re-running the cost model; `stats.memo_hits` counts those.
    ///
    /// A panicking work unit does not abort the sweep: it is quarantined
    /// (see [`DseStats::quarantined`]) and the remaining units complete.
    ///
    /// # Errors
    ///
    /// Returns [`SpaceError`] when the sweep space has an empty or
    /// zero-containing grid.
    pub fn explore_model_parallel(
        &self,
        model: &maestro_dnn::Model,
        mappings: &[Dataflow],
        threads: usize,
    ) -> Result<DseResult, SpaceError> {
        let t0 = Instant::now();
        self.space.validate()?;
        let partials = run_units(self.space.pes.len(), threads, |i| {
            self.model_unit(self.space.pes[i], model, mappings)
        });
        let mut result = merge_partials(partials, self.sample_cap);
        finish_stats(&mut result.stats, t0);
        Ok(result)
    }

    /// One whole-model work unit: the bandwidth × capacity sweep at a
    /// single PE count, auto-tuning the mapping per layer. Timed and
    /// metric-flushed like [`Explorer::explore_unit`].
    fn model_unit(&self, pes: u64, model: &maestro_dnn::Model, mappings: &[Dataflow]) -> Partial {
        let _span = maestro_obs::span::span("maestro.dse.unit");
        let t0 = Instant::now();
        let part = self.model_unit_inner(pes, model, mappings);
        flush_unit_metrics(&part, t0.elapsed());
        part
    }

    fn model_unit_inner(
        &self,
        pes: u64,
        model: &maestro_dnn::Model,
        mappings: &[Dataflow],
    ) -> Partial {
        if self.fail_unit_pes == Some(pes) {
            panic!("injected failure for PE count {pes}");
        }
        let mut part = Partial::new();
        let caps_per_eval = self.space.capacity_cells() as u64;
        let mut memo = AnalysisCache::with_capacity(self.memo_cap);
        let ctx = UnitCtx::new(self, pes);
        let mut front = ParetoFront::new();
        let l2_len = self.space.l2_bytes.len();
        // The mapping label is the same for every point of this unit.
        let label = format!("per-layer best of {}", mappings.len());
        for (b_idx, &bw) in self.space.noc_bw.iter().enumerate() {
            part.stats.explored += caps_per_eval;
            let acc = self.accelerator(pes, bw, None);
            // Per-layer best-runtime mapping (embedded tuning).
            let mut reports: Vec<LayerReport> = Vec::with_capacity(model.len());
            let mut ok = true;
            for layer in model.iter() {
                let best = mappings
                    .iter()
                    .filter_map(|m| self.memo_analyze(&mut memo, layer, m, &acc).ok())
                    .min_by(|a, b| a.runtime.total_cmp(&b.runtime));
                match best {
                    Some(r) => reports.push(r),
                    None => {
                        ok = false;
                        break;
                    }
                }
            }
            if !ok {
                continue;
            }
            let runtime: f64 = reports.iter().map(|r| r.runtime).sum();
            let macs: f64 = reports.iter().map(|r| r.macs_effective).sum();
            let throughput = macs / runtime.max(1.0);
            let l1_req = reports.iter().map(|r| r.l1_per_pe_elems).max().unwrap_or(0);
            let l2_req = reports
                .iter()
                .map(|r| r.l2_staging_elems)
                .max()
                .unwrap_or(0);
            for (i1, &l1) in self.space.l1_bytes.iter().enumerate() {
                if ctx.l1_elems[i1] < l1_req {
                    part.stats.capacity_skipped += l2_len as u64;
                    continue;
                }
                for (i2, &l2) in self.space.l2_bytes.iter().enumerate() {
                    if ctx.l2_elems[i2] < l2_req {
                        part.stats.capacity_skipped += 1;
                        continue;
                    }
                    let (area, power) = ctx.area_power(b_idx, i1, i2);
                    if area > self.constraints.max_area_mm2 || power > self.constraints.max_power_mw
                    {
                        continue;
                    }
                    // No cross-bandwidth energy cache here: the per-layer
                    // best mapping (and so the activity counts) can change
                    // with bandwidth.
                    let energy: f64 = reports.iter().map(|r| self.placed_energy(r, l1, l2)).sum();
                    let cand = Cand {
                        pes,
                        bw,
                        l1,
                        l2,
                        mapping: &label,
                        area,
                        power,
                        runtime,
                        throughput,
                        energy,
                        edp: energy * runtime,
                    };
                    if !cand.is_finite() {
                        part.stats.nonfinite_dropped += 1;
                        continue;
                    }
                    part.stats.valid += 1;
                    let mut made: Option<DesignPoint> = None;
                    update_best_cand(
                        &mut part.best_throughput,
                        -cand.throughput,
                        &cand,
                        &mut made,
                        |p| -p.throughput,
                    );
                    update_best_cand(&mut part.best_energy, cand.energy, &cand, &mut made, |p| {
                        p.energy
                    });
                    update_best_cand(&mut part.best_edp, cand.edp, &cand, &mut made, |p| p.edp);
                    if front.try_insert_with(cand.runtime, cand.energy, || {
                        made.get_or_insert_with(|| cand.to_point()).clone()
                    }) {
                        part.stats.pareto_inserted += 1;
                    } else {
                        part.stats.pareto_rejected += 1;
                    }
                    if part.stats.valid.is_multiple_of(61) && part.sample.len() < self.sample_cap {
                        part.sample
                            .push(made.get_or_insert_with(|| cand.to_point()).clone());
                    }
                }
            }
        }
        part.pareto = front.into_points();
        part.stats.evaluated += memo.misses();
        part.stats.memo_hits += memo.hits();
        part
    }
}

impl Explorer {
    /// [`Explorer::explore_parallel`] as an interruption-proof **session**:
    /// resumable from a checkpoint, periodically checkpointed,
    /// deadline/signal-cancellable, and optionally fault-injected — all
    /// per [`SessionCtl`]. The scientific result stays bit-identical to a
    /// plain uninterrupted `explore_parallel` run (at any thread count,
    /// across any interrupt/resume split, with or without injected
    /// transient faults) except the wall-clock `seconds`/`rate` fields and
    /// the [`DseResult::partial`] marker on interrupted runs.
    ///
    /// # Errors
    ///
    /// [`SessionError::Space`] for an invalid sweep space;
    /// [`SessionError::Checkpoint`] when the resume checkpoint does not
    /// match this sweep or a checkpoint cannot be written. Being
    /// *interrupted* is not an error: the result comes back with
    /// `partial: true` and [`SessionReport::interrupted`] set.
    pub fn explore_session(
        &self,
        layer: &Layer,
        mappings: &[Dataflow],
        threads: usize,
        ctl: &SessionCtl,
    ) -> Result<(DseResult, SessionReport), SessionError> {
        let t0 = Instant::now();
        self.space.validate()?;
        let fingerprint = sweep_fingerprint(self, &format!("layer:{layer:?}"), mappings);
        self.run_session(fingerprint, threads, ctl, t0, |i| {
            self.explore_unit(self.space.pes[i], layer, mappings)
        })
    }

    /// [`Explorer::explore_model_parallel`] as an interruption-proof
    /// session. See [`Explorer::explore_session`].
    ///
    /// # Errors
    ///
    /// As [`Explorer::explore_session`].
    pub fn explore_model_session(
        &self,
        model: &maestro_dnn::Model,
        mappings: &[Dataflow],
        threads: usize,
        ctl: &SessionCtl,
    ) -> Result<(DseResult, SessionReport), SessionError> {
        let t0 = Instant::now();
        self.space.validate()?;
        let fingerprint = sweep_fingerprint(self, &format!("model:{model:?}"), mappings);
        self.run_session(fingerprint, threads, ctl, t0, |i| {
            self.model_unit(self.space.pes[i], model, mappings)
        })
    }

    /// Shared session driver: validate the resume checkpoint, run the
    /// controlled unit loop, write the final checkpoint, merge whatever
    /// completed, and assemble the control report.
    fn run_session<F>(
        &self,
        fingerprint: u64,
        threads: usize,
        ctl: &SessionCtl,
        t0: Instant,
        unit: F,
    ) -> Result<(DseResult, SessionReport), SessionError>
    where
        F: Fn(usize) -> Partial + Sync,
    {
        let total = self.space.pes.len();
        if let Some(resume) = &ctl.resume {
            resume.validate_against(fingerprint, total)?;
        }
        let run_ctl = RunCtl {
            token: &ctl.token,
            resume: ctl.resume.as_ref(),
            faults: &ctl.faults,
            retries: ctl.retries,
            unit_timeout: ctl.unit_timeout,
            checkpoint: ctl.checkpoint_path.as_deref().map(|path| CheckpointSink {
                path,
                fingerprint,
                every_units: ctl.checkpoint_every_units,
                every: ctl.checkpoint_every,
            }),
            on_progress: ctl.on_progress.as_deref(),
            on_unit: ctl.on_unit.as_deref(),
            trace_sample: ctl.trace_sample,
            trace_seed: ctl.trace_seed,
        };
        let run = run_units_ctl(total, threads, &run_ctl, unit);

        // Final checkpoint: always current as of the last completed unit,
        // whether the run finished or was cut short.
        let mut checkpoint_writes = run.checkpoint_writes;
        if let Some(path) = &ctl.checkpoint_path {
            Checkpoint::from_outcomes(fingerprint, &run.slots).save(path)?;
            checkpoint_writes += 1;
        }

        let complete = run.complete();
        let completed_units = run.completed();
        let report = SessionReport {
            interrupted: run.cancelled && !complete,
            deadline_hit: ctl.token.deadline_exceeded(),
            resumed_skipped: run.resumed_skipped,
            checkpoint_writes,
            completed_units,
            total_units: total,
            units_retried: run.units_retried,
            units_timed_out: run.units_timed_out,
            faults_injected: run.faults_injected,
        };
        if report.deadline_hit {
            crate::parallel::note_deadline_exceeded();
        }
        let mut result = merge_indexed_partials(
            run.slots
                .into_iter()
                .enumerate()
                .filter_map(|(i, s)| s.map(|o| (i, o)))
                .collect(),
            self.sample_cap,
        );
        result.partial = !complete;
        finish_stats(&mut result.stats, t0);
        Ok((result, report))
    }
}

#[cfg(test)]
mod model_tests {
    use super::*;
    use crate::space::SweepSpace;
    use crate::variants;
    use maestro_dnn::zoo;
    use maestro_ir::Style;

    #[test]
    fn whole_model_exploration() {
        let e = Explorer::new(SweepSpace::tiny());
        let model = zoo::alexnet(1);
        let maps = variants::variants(Style::KCP);
        let r = e.explore_model(&model, &maps).expect("valid space");
        assert!(r.stats.valid > 0);
        let t = r.best_throughput.expect("some valid design");
        assert!(t.runtime > 0.0);
        assert!(t.mapping.contains("per-layer"));
    }

    #[test]
    fn repeated_model_shapes_hit_the_memo_cache() {
        // VGG-16 repeats convolution shapes, so the per-unit cache must
        // serve a large share of the per-layer tuning lookups.
        let e = Explorer::new(SweepSpace::tiny());
        let model = zoo::vgg16(1);
        let maps = variants::variants(Style::KCP);
        let r = e.explore_model(&model, &maps).expect("valid space");
        assert!(r.stats.memo_hits > 0, "{:?}", r.stats);
        // Hits + misses cannot exceed one lookup per
        // (layer, mapping, bw, pes) combination (fewer when a hardware
        // point fails early on an unresolvable layer).
        let lookups = (model.len() * maps.len() * e.space.noc_bw.len() * e.space.pes.len()) as u64;
        assert!(r.stats.memo_hits + r.stats.evaluated <= lookups);
    }

    #[test]
    fn parallel_matches_serial_optima() {
        let e = Explorer::new(SweepSpace::tiny());
        let model = zoo::vgg16(1);
        let layer = model.layer("CONV5").expect("zoo layer");
        let maps = variants::variants(Style::KCP);
        let serial = e.explore(layer, &maps).expect("valid space");
        let parallel = e.explore_parallel(layer, &maps, 3).expect("valid space");
        assert_eq!(serial.stats.valid, parallel.stats.valid);
        let (s, p) = (
            serial.best_throughput.expect("serial optimum"),
            parallel.best_throughput.expect("parallel optimum"),
        );
        assert_eq!(s.throughput, p.throughput);
        let (s, p) = (
            serial.best_energy.expect("serial"),
            parallel.best_energy.expect("parallel"),
        );
        assert!((s.energy - p.energy).abs() < 1e-6 * s.energy);
    }
}

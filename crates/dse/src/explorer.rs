//! The design-space explorer.
//!
//! Sweeps PE count × mapping variant × NoC bandwidth with one cost-model
//! evaluation each (buffer capacities do not change the schedule, only
//! validity and access energy), then expands each evaluation across the
//! L1/L2 capacity grid. Like the paper's tool, whole sub-spaces that
//! cannot meet the area/power budget (or the dataflow's buffer
//! requirement) are *skipped in bulk* without individual evaluation, which
//! is what produces effective rates of >0.1M designs/second.
//!
//! The sweep is sharded by PE count into independent work units (one per
//! entry of [`SweepSpace::pes`]) executed by [`crate::parallel::run_units`]
//! and folded by [`crate::parallel::merge_partials`]; `explore` is the
//! one-thread special case of `explore_parallel`, so parallel results are
//! bit-identical to sequential ones apart from the wall-clock fields.
//! Repeated layer shapes are served from a per-unit
//! [`maestro_core::AnalysisCache`] instead of re-running the cost model.

use crate::cancel::{SessionCtl, SessionError, SessionReport};
use crate::checkpoint::{sweep_fingerprint, Checkpoint};
use crate::parallel::{
    merge_indexed_partials, merge_partials, run_units, run_units_ctl, CheckpointSink, RunCtl,
};
use crate::space::{Constraints, SpaceError, SweepSpace};
use maestro_core::{AnalysisCache, AnalysisError, LayerReport};
use maestro_dnn::Layer;
use maestro_hw::{Accelerator, AreaModel, EnergyModel, PowerModel};
use maestro_ir::Dataflow;
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// One valid design point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DesignPoint {
    /// PE count.
    pub pes: u64,
    /// NoC bandwidth (elements/cycle).
    pub noc_bw: u64,
    /// Placed per-PE L1 capacity (bytes).
    pub l1_bytes: u64,
    /// Placed L2 capacity (bytes).
    pub l2_bytes: u64,
    /// Mapping (dataflow variant) name.
    pub mapping: String,
    /// Die area (mm²).
    pub area_mm2: f64,
    /// Power (mW).
    pub power_mw: f64,
    /// Runtime (cycles).
    pub runtime: f64,
    /// Throughput (MACs/cycle).
    pub throughput: f64,
    /// Energy (pJ, CACTI-style table at the placed capacities).
    pub energy: f64,
    /// Energy-delay product.
    pub edp: f64,
}

impl DesignPoint {
    /// `true` when every objective and cost scalar is finite. Non-finite
    /// points must never reach the Pareto front or the best-point slots:
    /// NaN fails every strict comparison and would silently corrupt both.
    pub fn is_finite(&self) -> bool {
        [
            self.area_mm2,
            self.power_mw,
            self.runtime,
            self.throughput,
            self.energy,
            self.edp,
        ]
        .iter()
        .all(|v| v.is_finite())
    }
}

/// A work unit that panicked during a sweep and was dropped from the
/// merged result (see [`crate::parallel::merge_partials`]).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct QuarantinedUnit {
    /// Index of the failing unit (its position in [`SweepSpace::pes`]).
    pub unit: usize,
    /// The panic payload, rendered as a string.
    pub message: String,
}

/// Aggregate statistics of one exploration run (paper Figure 13(c)).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DseStats {
    /// Design points covered (including bulk-skipped ones).
    pub explored: u64,
    /// Cost-model invocations actually performed (memo-cache misses,
    /// including ones that returned an analysis error).
    pub evaluated: u64,
    /// Valid design points found.
    pub valid: u64,
    /// Cost-model invocations served from the memo cache.
    pub memo_hits: u64,
    /// Design points dropped because an objective evaluated to NaN or
    /// infinity (the finite-value gate).
    pub nonfinite_dropped: u64,
    /// Design points rejected by the capacity filter (placed L1 or L2 too
    /// small for the mapping's buffer requirement), before any cost was
    /// computed.
    pub capacity_skipped: u64,
    /// Points accepted into a per-unit Pareto front during the sweep
    /// (some are later displaced by dominating points).
    pub pareto_inserted: u64,
    /// Points rejected from a per-unit Pareto front on arrival (dominated
    /// by or tying an existing member).
    pub pareto_rejected: u64,
    /// Work units that panicked and contributed nothing to the merged
    /// result, in unit-index order. A non-empty list means the sweep
    /// *degraded* (its coverage is incomplete) but completed.
    pub quarantined: Vec<QuarantinedUnit>,
    /// Wall-clock seconds.
    pub seconds: f64,
    /// Effective exploration rate (designs/second).
    pub rate: f64,
}

impl DseStats {
    /// All-zero statistics.
    pub const fn empty() -> Self {
        DseStats {
            explored: 0,
            evaluated: 0,
            valid: 0,
            memo_hits: 0,
            nonfinite_dropped: 0,
            capacity_skipped: 0,
            pareto_inserted: 0,
            pareto_rejected: 0,
            quarantined: Vec::new(),
            seconds: 0.0,
            rate: 0.0,
        }
    }

    /// Memo-cache hit rate in `[0, 1]` (zero when no lookups happened).
    pub fn memo_hit_rate(&self) -> f64 {
        let lookups = self.memo_hits + self.evaluated;
        if lookups == 0 {
            0.0
        } else {
            self.memo_hits as f64 / lookups as f64
        }
    }
}

/// Result of one exploration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DseResult {
    /// Pareto-optimal points in the (runtime, energy) plane.
    pub pareto: Vec<DesignPoint>,
    /// Highest-throughput valid design.
    pub best_throughput: Option<DesignPoint>,
    /// Lowest-energy valid design.
    pub best_energy: Option<DesignPoint>,
    /// Lowest-EDP valid design.
    pub best_edp: Option<DesignPoint>,
    /// A subsample of valid points (for scatter plots), at most
    /// [`Explorer::sample_cap`] entries.
    pub sample: Vec<DesignPoint>,
    /// Run statistics.
    pub stats: DseStats,
    /// `true` when the sweep was interrupted (signal, deadline, explicit
    /// cancel) before every work unit completed: the frontier and stats
    /// cover only the completed units. Always `false` for uninterrupted
    /// runs.
    pub partial: bool,
}

/// The result of one work unit (one PE count's slice of the sweep),
/// before merging. See [`crate::parallel`] for the merge rules.
#[derive(Debug, Clone, PartialEq)]
pub struct Partial {
    /// Counters for this slice (`seconds`/`rate` stay zero).
    pub stats: DseStats,
    /// Pareto front of this slice.
    pub pareto: Vec<DesignPoint>,
    /// Highest-throughput point of this slice.
    pub best_throughput: Option<DesignPoint>,
    /// Lowest-energy point of this slice.
    pub best_energy: Option<DesignPoint>,
    /// Lowest-EDP point of this slice.
    pub best_edp: Option<DesignPoint>,
    /// Every 61st valid point of this slice.
    pub sample: Vec<DesignPoint>,
}

impl Partial {
    /// An empty partial.
    pub fn new() -> Self {
        Partial {
            stats: DseStats::empty(),
            pareto: Vec::new(),
            best_throughput: None,
            best_energy: None,
            best_edp: None,
            sample: Vec::new(),
        }
    }
}

impl Default for Partial {
    fn default() -> Self {
        Partial::new()
    }
}

/// Design-space exploration driver.
#[derive(Debug, Clone)]
pub struct Explorer {
    /// Hardware sweep space.
    pub space: SweepSpace,
    /// Area/power budget.
    pub constraints: Constraints,
    /// Component area model.
    pub area_model: AreaModel,
    /// Component power model.
    pub power_model: PowerModel,
    /// Cap on the retained scatter sample.
    pub sample_cap: usize,
    /// DRAM access energy per element (pJ). When the placed L2 cannot hold
    /// the layer's working set, a fraction of L2 refills spill to DRAM —
    /// this is what makes *larger* scratchpads energy-favourable and gives
    /// the paper's SRAM-heavy energy-optimized designs (§5.2).
    pub dram_pj: f64,
    /// Element width in bytes, threaded into every built accelerator. The
    /// capacity grids are in **bytes** while the cost model's buffer
    /// requirements are in **elements**, so validity compares
    /// `capacity / precision_bytes` against the requirement (exactly as
    /// [`Accelerator::l1_elements`] does).
    pub precision_bytes: u64,
    /// **Test-only fault-injection hook**: when set, the work unit for this
    /// PE count panics, exercising the quarantine path end to end. Leave
    /// `None` in production use.
    pub fail_unit_pes: Option<u64>,
}

impl Explorer {
    /// An explorer over `space` with the paper's constraint point, the
    /// synthetic 28 nm component models and 1-byte (int8) elements.
    pub fn new(space: SweepSpace) -> Self {
        Explorer {
            space,
            constraints: Constraints::default(),
            area_model: AreaModel::default(),
            power_model: PowerModel::default(),
            sample_cap: 4096,
            dram_pj: 100.0,
            precision_bytes: 1,
            fail_unit_pes: None,
        }
    }

    /// An accelerator at one sweep point, carrying the explorer's element
    /// precision.
    fn accelerator(&self, pes: u64, bw: u64, l1_l2: Option<(u64, u64)>) -> Accelerator {
        let mut b = Accelerator::builder(pes)
            .noc_bandwidth(bw)
            .precision_bytes(self.precision_bytes);
        if let Some((l1, l2)) = l1_l2 {
            b = b.l1_bytes(l1).l2_bytes(l2);
        }
        b.build()
    }

    /// Byte capacity `bytes` expressed in elements.
    fn elements(&self, bytes: u64) -> u64 {
        bytes / self.precision_bytes.max(1)
    }

    /// Total energy of a placed design: CACTI-style on-chip accesses plus
    /// DRAM spill traffic. With `l2` at least the layer's working set, only
    /// compulsory DRAM traffic remains (each tensor moved once); below the
    /// requirement-to-working-set range, L2 refills increasingly miss.
    fn placed_energy(&self, report: &LayerReport, l1: u64, l2: u64) -> f64 {
        let mut em = EnergyModel::cacti_28nm(l1, l2);
        em.dram = self.dram_pj;
        // Recompute the off-chip traffic at the *placed* capacity using
        // the shared estimator, replacing the counts taken at analysis
        // time (which assumed the reference L2 size).
        let mut counts = report.counts;
        let (dr, dw) =
            maestro_core::report::offchip_traffic(&counts, report.tensor_elems, self.elements(l2));
        counts.dram_read = dr;
        counts.dram_write = dw;
        counts.energy(&em)
    }

    /// Explore `layer` across the hardware space × `mappings`.
    ///
    /// # Errors
    ///
    /// Returns [`SpaceError`] when the sweep space has an empty or
    /// zero-containing grid.
    pub fn explore(&self, layer: &Layer, mappings: &[Dataflow]) -> Result<DseResult, SpaceError> {
        self.explore_parallel(layer, mappings, 1)
    }

    /// [`Explorer::explore`] sharded by PE count across `threads` scoped
    /// worker threads (`0` = one per core). The result is bit-identical to
    /// `explore` at any thread count, except the wall-clock `seconds` and
    /// `rate` fields. (The paper runs four DSEs concurrently on its
    /// workstation; this parallelizes *within* one DSE.)
    ///
    /// A panicking work unit does not abort the sweep: it is quarantined
    /// (see [`DseStats::quarantined`]) and the remaining units complete.
    ///
    /// # Errors
    ///
    /// Returns [`SpaceError`] when the sweep space has an empty or
    /// zero-containing grid.
    pub fn explore_parallel(
        &self,
        layer: &Layer,
        mappings: &[Dataflow],
        threads: usize,
    ) -> Result<DseResult, SpaceError> {
        let t0 = Instant::now();
        self.space.validate()?;
        let partials = run_units(self.space.pes.len(), threads, |i| {
            self.explore_unit(self.space.pes[i], layer, mappings)
        });
        let mut result = merge_partials(partials, self.sample_cap);
        finish_stats(&mut result.stats, t0);
        Ok(result)
    }

    /// One work unit: the full mapping × bandwidth × capacity sweep at a
    /// single PE count. A thin shell around [`Explorer::explore_unit_inner`]
    /// that times the unit and batch-flushes its counters to the global
    /// metrics registry — wall-clock throughput goes to metrics *only*,
    /// never into [`DseStats`], which must stay deterministic.
    fn explore_unit(&self, pes: u64, layer: &Layer, mappings: &[Dataflow]) -> Partial {
        let _span = maestro_obs::span::span("maestro.dse.unit");
        let t0 = Instant::now();
        let part = self.explore_unit_inner(pes, layer, mappings);
        flush_unit_metrics(&part, t0.elapsed());
        part
    }

    fn explore_unit_inner(&self, pes: u64, layer: &Layer, mappings: &[Dataflow]) -> Partial {
        if self.fail_unit_pes == Some(pes) {
            panic!("injected failure for PE count {pes}");
        }
        let mut part = Partial::new();
        let caps_per_eval = (self.space.l1_bytes.len() * self.space.l2_bytes.len()) as u64;
        // The space is validated at the `explore*` boundary; an empty grid
        // here would mean a caller bypassed it, so degrade to an empty
        // partial instead of panicking.
        let (Some(&min_l1), Some(&min_l2), Some(&min_bw)) = (
            self.space.l1_bytes.iter().min(),
            self.space.l2_bytes.iter().min(),
            self.space.noc_bw.iter().min(),
        ) else {
            return part;
        };

        // Bulk skip: if even the smallest configuration at this PE count
        // blows the budget, the whole subtree is invalid.
        let min_acc = self.accelerator(pes, min_bw, Some((min_l1, min_l2)));
        let subtree = caps_per_eval * (self.space.noc_bw.len() * mappings.len()) as u64;
        if self.area_model.total_area(&min_acc) > self.constraints.max_area_mm2
            || self.power_model.total_power(&min_acc) > self.constraints.max_power_mw
        {
            part.stats.explored += subtree;
            return part;
        }
        let mut memo = AnalysisCache::new();
        for (m_idx, mapping) in mappings.iter().enumerate() {
            for (b_idx, &bw) in self.space.noc_bw.iter().enumerate() {
                part.stats.explored += caps_per_eval;
                // Capacities do not change the schedule, so the analysis
                // runs at the reference capacities and is expanded below.
                let acc = self.accelerator(pes, bw, None);
                let tag = (m_idx * self.space.noc_bw.len() + b_idx) as u64;
                let report = match memo.analyze(layer, mapping, &acc, tag) {
                    Ok(r) => r,
                    Err(AnalysisError::NonFinite { .. }) => {
                        part.stats.nonfinite_dropped += caps_per_eval;
                        continue;
                    }
                    Err(_) => continue,
                };
                self.expand_capacities(pes, bw, mapping.name(), &report, &mut part);
            }
        }
        part.stats.evaluated += memo.misses();
        part.stats.memo_hits += memo.hits();
        part
    }

    /// Expand one (PE count, bandwidth, mapping) evaluation across the
    /// L1/L2 capacity grid, accumulating into `part`.
    fn expand_capacities(
        &self,
        pes: u64,
        bw: u64,
        mapping: &str,
        report: &LayerReport,
        part: &mut Partial,
    ) {
        for &l1 in &self.space.l1_bytes {
            // The grid is in bytes, the requirement in elements.
            if self.elements(l1) < report.l1_per_pe_elems {
                // Capacity below the mapping's requirement: the whole L2
                // row of the grid is skipped without costing.
                part.stats.capacity_skipped += self.space.l2_bytes.len() as u64;
                continue;
            }
            for &l2 in &self.space.l2_bytes {
                if self.elements(l2) < report.l2_staging_elems {
                    part.stats.capacity_skipped += 1;
                    continue;
                }
                let acc = self.accelerator(pes, bw, Some((l1, l2)));
                let area = self.area_model.total_area(&acc);
                let power = self.power_model.total_power(&acc);
                if area > self.constraints.max_area_mm2 || power > self.constraints.max_power_mw {
                    continue;
                }
                let energy = self.placed_energy(report, l1, l2);
                let point = DesignPoint {
                    pes,
                    noc_bw: bw,
                    l1_bytes: l1,
                    l2_bytes: l2,
                    mapping: mapping.to_string(),
                    area_mm2: area,
                    power_mw: power,
                    runtime: report.runtime,
                    throughput: report.throughput(),
                    energy,
                    edp: energy * report.runtime,
                };
                // Finite-value gate: drop-and-count rather than let a NaN
                // objective corrupt the front or the best slots.
                if !point.is_finite() {
                    part.stats.nonfinite_dropped += 1;
                    continue;
                }
                part.stats.valid += 1;
                update_best(&mut part.best_throughput, &point, |p| -p.throughput);
                update_best(&mut part.best_energy, &point, |p| p.energy);
                update_best(&mut part.best_edp, &point, |p| p.edp);
                if insert_pareto(&mut part.pareto, &point) {
                    part.stats.pareto_inserted += 1;
                } else {
                    part.stats.pareto_rejected += 1;
                }
                // Stratified subsample: every 61st valid point *of this
                // unit*, so the scatter spans the whole space instead of
                // its first corner — and so unit samples concatenate
                // deterministically (see `crate::parallel`).
                if part.stats.valid.is_multiple_of(61) && part.sample.len() < self.sample_cap {
                    part.sample.push(point);
                }
            }
        }
    }
}

/// Stamp wall-clock duration and effective rate onto merged statistics.
fn finish_stats(stats: &mut DseStats, t0: Instant) {
    stats.seconds = t0.elapsed().as_secs_f64().max(1e-9);
    stats.rate = stats.explored as f64 / stats.seconds;
}

/// `OnceLock`-cached handles for the per-unit DSE metrics: one registry
/// lookup per process, one batched flush per work unit.
struct UnitMetrics {
    units: maestro_obs::Counter,
    explored: maestro_obs::Counter,
    valid: maestro_obs::Counter,
    capacity_skipped: maestro_obs::Counter,
    pareto_inserted: maestro_obs::Counter,
    pareto_rejected: maestro_obs::Counter,
    unit_seconds: maestro_obs::Histogram,
    unit_rate: maestro_obs::Histogram,
}

fn unit_metrics() -> &'static UnitMetrics {
    static M: std::sync::OnceLock<UnitMetrics> = std::sync::OnceLock::new();
    M.get_or_init(|| {
        let r = maestro_obs::registry();
        UnitMetrics {
            units: r.counter("maestro.dse.units_completed"),
            explored: r.counter("maestro.dse.points_explored"),
            valid: r.counter("maestro.dse.points_valid"),
            capacity_skipped: r.counter("maestro.dse.capacity_skipped"),
            pareto_inserted: r.counter("maestro.dse.pareto_inserted"),
            pareto_rejected: r.counter("maestro.dse.pareto_rejected"),
            unit_seconds: r.histogram(
                "maestro.dse.unit_seconds",
                &[1e-4, 1e-3, 1e-2, 0.1, 1.0, 10.0, 60.0],
            ),
            // Designs/second per shard; the paper reports sweeps north of
            // 0.1M designs/s, hence the decade buckets up to 1e8.
            unit_rate: r.histogram("maestro.dse.unit_rate", &[1e3, 1e4, 1e5, 1e6, 1e7, 1e8]),
        }
    })
}

/// One batched flush of a finished work unit's counters and wall-clock
/// throughput into the global registry. The sweep hot loop touches only
/// the unit-private [`Partial`]; shared atomics are hit once per unit.
fn flush_unit_metrics(part: &Partial, elapsed: std::time::Duration) {
    let m = unit_metrics();
    m.units.inc();
    m.explored.add(part.stats.explored);
    m.valid.add(part.stats.valid);
    m.capacity_skipped.add(part.stats.capacity_skipped);
    m.pareto_inserted.add(part.stats.pareto_inserted);
    m.pareto_rejected.add(part.stats.pareto_rejected);
    let secs = elapsed.as_secs_f64().max(1e-9);
    m.unit_seconds.observe(secs);
    m.unit_rate.observe(part.stats.explored as f64 / secs);
}

/// Replace `slot` when `key(p)` is strictly smaller — on ties the earlier
/// point wins, which keeps the parallel merge identical to a sequential
/// sweep. A non-finite key is rejected outright, whether the slot is empty
/// or occupied: `total_cmp` alone is not enough, because a *negative* NaN
/// (which the `-throughput` key produces from a NaN throughput) sorts
/// below every finite value and would displace a finite incumbent. The
/// gate keeps poisoned candidates (fault-harness injections, damaged
/// checkpoints) out of the best-point slots.
pub(crate) fn update_best(
    slot: &mut Option<DesignPoint>,
    p: &DesignPoint,
    key: impl Fn(&DesignPoint) -> f64,
) {
    if !key(p).is_finite() {
        return;
    }
    let better = match slot {
        Some(cur) => key(p).total_cmp(&key(cur)) == std::cmp::Ordering::Less,
        None => true,
    };
    if better {
        *slot = Some(p.clone());
    }
}

/// Insert into the (runtime, energy) Pareto front, dropping dominated
/// points. A point that ties an existing front member on both axes is
/// dropped (first occurrence wins), so folding points in a fixed order
/// yields a deterministic front.
///
/// Points with a NaN or infinite objective are rejected outright: NaN
/// fails every `<=` comparison, so without this gate such a point would
/// look "non-dominated" and enter the front while never evicting anything
/// honestly.
///
/// Returns `true` when the point entered the front, `false` when it was
/// rejected (dominated, tying, or non-finite) — callers feed the
/// insertion/rejection tallies in [`DseStats`] from this.
pub fn insert_pareto(front: &mut Vec<DesignPoint>, p: &DesignPoint) -> bool {
    if !(p.runtime.is_finite() && p.energy.is_finite()) {
        return false;
    }
    if front
        .iter()
        .any(|q| q.runtime <= p.runtime && q.energy <= p.energy)
    {
        return false;
    }
    front.retain(|q| !(p.runtime <= q.runtime && p.energy <= q.energy));
    front.push(p.clone());
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::SweepSpace;
    use crate::variants;
    use maestro_dnn::{LayerDims, Operator};
    use maestro_ir::Style;

    fn layer() -> Layer {
        Layer::new("c", Operator::conv2d(), LayerDims::square(1, 32, 32, 34, 3))
    }

    #[test]
    fn exploration_finds_valid_points() {
        let e = Explorer::new(SweepSpace::tiny());
        let r = e
            .explore(&layer(), &variants::variants(Style::KCP))
            .expect("valid space");
        assert!(r.stats.valid > 0, "{:?}", r.stats);
        assert!(r.stats.explored >= r.stats.valid);
        assert!(r.best_throughput.is_some());
        assert!(r.best_energy.is_some());
        assert!(!r.pareto.is_empty());
    }

    #[test]
    fn pareto_front_is_nondominated() {
        let e = Explorer::new(SweepSpace::tiny());
        let r = e
            .explore(&layer(), &variants::variants(Style::KCP))
            .expect("valid space");
        for a in &r.pareto {
            for b in &r.pareto {
                if std::ptr::eq(a, b) {
                    continue;
                }
                assert!(
                    !(a.runtime <= b.runtime && a.energy < b.energy
                        || a.runtime < b.runtime && a.energy <= b.energy),
                    "{a:?} dominates {b:?}"
                );
            }
        }
    }

    #[test]
    fn constraints_bound_every_valid_point() {
        let e = Explorer::new(SweepSpace::tiny());
        let r = e
            .explore(&layer(), &variants::variants(Style::YRP))
            .expect("valid space");
        for p in &r.sample {
            assert!(p.area_mm2 <= e.constraints.max_area_mm2);
            assert!(p.power_mw <= e.constraints.max_power_mw);
        }
    }

    #[test]
    fn tighter_budget_yields_fewer_valid_points() {
        let space = SweepSpace::tiny();
        let loose = Explorer::new(space.clone());
        let mut tight = Explorer::new(space);
        tight.constraints = Constraints {
            max_area_mm2: 4.0,
            max_power_mw: 120.0,
        };
        let maps = variants::variants(Style::KCP);
        let l = layer();
        let a = loose.explore(&l, &maps).expect("valid space");
        let b = tight.explore(&l, &maps).expect("valid space");
        assert!(b.stats.valid <= a.stats.valid);
    }

    #[test]
    fn throughput_and_energy_optima_differ_in_general() {
        let e = Explorer::new(SweepSpace::tiny());
        let r = e
            .explore(&layer(), &variants::variants(Style::KCP))
            .expect("valid space");
        let t = r.best_throughput.unwrap();
        let en = r.best_energy.unwrap();
        assert!(t.throughput >= en.throughput);
        assert!(en.energy <= t.energy);
    }

    /// Regression test for the capacity-unit bug: the sweep grids are in
    /// **bytes** but the cost model reports requirements in **elements**.
    /// With 2-byte elements, a grid entry equal to the element requirement
    /// holds only half the data and must be rejected. (The old filter
    /// compared bytes against elements directly, so precision never
    /// mattered and the point below was wrongly accepted.)
    #[test]
    fn capacity_filter_converts_bytes_to_elements() {
        let maps = variants::variants(Style::KCP);
        let l = layer();
        // Requirement (in elements) of this layer/mapping at one point.
        let acc = Accelerator::builder(64).noc_bandwidth(16).build();
        let report = maestro_core::analyze(&l, &maps[0], &acc).expect("analyzable");
        assert!(report.l1_per_pe_elems > 0);

        // A one-point space whose L1 grid equals the element requirement
        // *in bytes* — enough at 1 byte/element, too small at 2.
        let space = SweepSpace {
            pes: vec![64],
            noc_bw: vec![16],
            l1_bytes: vec![report.l1_per_pe_elems],
            l2_bytes: vec![2 * 1024 * 1024],
        };
        let mut e = Explorer::new(space);
        e.precision_bytes = 1;
        let one_byte = e.explore(&l, &maps[0..1]).expect("valid space");
        assert!(one_byte.stats.valid > 0, "{:?}", one_byte.stats);

        e.precision_bytes = 2;
        let two_byte = e.explore(&l, &maps[0..1]).expect("valid space");
        assert_eq!(
            two_byte.stats.valid, 0,
            "an L1 of {} bytes cannot hold {} two-byte elements",
            report.l1_per_pe_elems, report.l1_per_pe_elems
        );
    }

    /// Regression test for the bulk-skip minimum: the "smallest
    /// configuration" must use the true grid minima, not the first
    /// entries. With a descending L1 grid, first-entry selection builds an
    /// oversized probe accelerator and wrongly skips every PE count.
    #[test]
    fn bulk_skip_uses_true_grid_minima() {
        let maps = variants::variants(Style::KCP);
        let l = layer();
        let sorted = SweepSpace {
            // Large-but-valid grid values alongside small ones.
            l1_bytes: vec![512, 128 * 1024 * 1024],
            ..SweepSpace::tiny()
        };
        let mut reversed = sorted.clone();
        reversed.l1_bytes.reverse();
        let a = Explorer::new(sorted)
            .explore(&l, &maps)
            .expect("valid space");
        let b = Explorer::new(reversed)
            .explore(&l, &maps)
            .expect("valid space");
        assert!(a.stats.valid > 0);
        assert_eq!(a.stats.valid, b.stats.valid);
        assert_eq!(a.best_throughput, b.best_throughput);
    }

    /// Ratio helpers must degrade to 0.0 — never NaN — when no events of
    /// the denominating kind occurred (e.g. a fully bulk-skipped sweep
    /// performs zero cache lookups).
    #[test]
    fn memo_hit_rate_is_zero_not_nan_without_lookups() {
        let empty = DseStats::empty();
        assert_eq!(empty.memo_hit_rate(), 0.0);
        assert!(!empty.memo_hit_rate().is_nan());
        let mut some = DseStats::empty();
        some.memo_hits = 3;
        some.evaluated = 1;
        assert!((some.memo_hit_rate() - 0.75).abs() < 1e-12);
    }

    /// A NaN-keyed candidate must not seed an empty best slot (it used to:
    /// the `None` arm accepted unconditionally). With the fault harness
    /// appending NaN-poisoned points to partials, this hole would let an
    /// injected point become `best_throughput` on an otherwise-empty unit.
    #[test]
    fn update_best_rejects_nan_into_empty_slot() {
        let mut nan_point = point_for_tests();
        nan_point.throughput = f64::NAN;
        let mut slot: Option<DesignPoint> = None;
        update_best(&mut slot, &nan_point, |p| -p.throughput);
        assert!(slot.is_none(), "NaN key must not seed an empty slot");

        let finite = point_for_tests();
        update_best(&mut slot, &finite, |p| -p.throughput);
        assert!(slot.is_some(), "finite key seeds the slot");
        update_best(&mut slot, &nan_point, |p| -p.throughput);
        assert_eq!(
            slot.as_ref().map(|p| p.throughput),
            Some(finite.throughput),
            "NaN key must not displace a finite incumbent"
        );
    }

    fn point_for_tests() -> DesignPoint {
        DesignPoint {
            pes: 64,
            noc_bw: 16,
            l1_bytes: 512,
            l2_bytes: 1 << 20,
            mapping: "kcp".to_string(),
            area_mm2: 3.0,
            power_mw: 400.0,
            runtime: 1e6,
            throughput: 100.0,
            energy: 1e9,
            edp: 1e15,
        }
    }

    #[test]
    fn empty_grid_is_a_typed_error_not_a_panic() {
        let mut space = SweepSpace::tiny();
        space.noc_bw.clear();
        let err = Explorer::new(space)
            .explore(&layer(), &variants::variants(Style::KCP))
            .unwrap_err();
        assert_eq!(err, crate::space::SpaceError::EmptyGrid { grid: "noc_bw" });
        assert!(err.to_string().contains("noc_bw"), "{err}");
    }
}

impl Explorer {
    /// Explore a *whole model*: each hardware point is evaluated with the
    /// best-runtime mapping per layer (an embedded auto-tune), runtime and
    /// activity counts summed across layers, buffer requirements taken as
    /// worst-case. Energy at each placed capacity sums the per-layer
    /// placed energies (so per-layer working sets drive DRAM misses).
    ///
    /// # Errors
    ///
    /// Returns [`SpaceError`] when the sweep space has an empty or
    /// zero-containing grid.
    pub fn explore_model(
        &self,
        model: &maestro_dnn::Model,
        mappings: &[Dataflow],
    ) -> Result<DseResult, SpaceError> {
        self.explore_model_parallel(model, mappings, 1)
    }

    /// [`Explorer::explore_model`] sharded by PE count across `threads`
    /// scoped worker threads (`0` = one per core), bit-identical to the
    /// sequential result except `seconds`/`rate`. Repeated layer shapes
    /// (VGG/ResNet blocks) hit the per-unit memo cache instead of
    /// re-running the cost model; `stats.memo_hits` counts those.
    ///
    /// A panicking work unit does not abort the sweep: it is quarantined
    /// (see [`DseStats::quarantined`]) and the remaining units complete.
    ///
    /// # Errors
    ///
    /// Returns [`SpaceError`] when the sweep space has an empty or
    /// zero-containing grid.
    pub fn explore_model_parallel(
        &self,
        model: &maestro_dnn::Model,
        mappings: &[Dataflow],
        threads: usize,
    ) -> Result<DseResult, SpaceError> {
        let t0 = Instant::now();
        self.space.validate()?;
        let partials = run_units(self.space.pes.len(), threads, |i| {
            self.model_unit(self.space.pes[i], model, mappings)
        });
        let mut result = merge_partials(partials, self.sample_cap);
        finish_stats(&mut result.stats, t0);
        Ok(result)
    }

    /// One whole-model work unit: the bandwidth × capacity sweep at a
    /// single PE count, auto-tuning the mapping per layer. Timed and
    /// metric-flushed like [`Explorer::explore_unit`].
    fn model_unit(&self, pes: u64, model: &maestro_dnn::Model, mappings: &[Dataflow]) -> Partial {
        let _span = maestro_obs::span::span("maestro.dse.unit");
        let t0 = Instant::now();
        let part = self.model_unit_inner(pes, model, mappings);
        flush_unit_metrics(&part, t0.elapsed());
        part
    }

    fn model_unit_inner(
        &self,
        pes: u64,
        model: &maestro_dnn::Model,
        mappings: &[Dataflow],
    ) -> Partial {
        if self.fail_unit_pes == Some(pes) {
            panic!("injected failure for PE count {pes}");
        }
        let mut part = Partial::new();
        let caps_per_eval = (self.space.l1_bytes.len() * self.space.l2_bytes.len()) as u64;
        let mut memo = AnalysisCache::new();
        for (b_idx, &bw) in self.space.noc_bw.iter().enumerate() {
            part.stats.explored += caps_per_eval;
            let acc = self.accelerator(pes, bw, None);
            // Per-layer best-runtime mapping (embedded tuning).
            let mut reports: Vec<LayerReport> = Vec::with_capacity(model.len());
            let mut ok = true;
            for layer in model.iter() {
                let best = mappings
                    .iter()
                    .enumerate()
                    .filter_map(|(m_idx, m)| {
                        let tag = (m_idx * self.space.noc_bw.len() + b_idx) as u64;
                        memo.analyze(layer, m, &acc, tag).ok()
                    })
                    .min_by(|a, b| a.runtime.total_cmp(&b.runtime));
                match best {
                    Some(r) => reports.push(r),
                    None => {
                        ok = false;
                        break;
                    }
                }
            }
            if !ok {
                continue;
            }
            let runtime: f64 = reports.iter().map(|r| r.runtime).sum();
            let macs: f64 = reports.iter().map(|r| r.macs_effective).sum();
            let l1_req = reports.iter().map(|r| r.l1_per_pe_elems).max().unwrap_or(0);
            let l2_req = reports
                .iter()
                .map(|r| r.l2_staging_elems)
                .max()
                .unwrap_or(0);
            for &l1 in &self.space.l1_bytes {
                if self.elements(l1) < l1_req {
                    part.stats.capacity_skipped += self.space.l2_bytes.len() as u64;
                    continue;
                }
                for &l2 in &self.space.l2_bytes {
                    if self.elements(l2) < l2_req {
                        part.stats.capacity_skipped += 1;
                        continue;
                    }
                    let placed = self.accelerator(pes, bw, Some((l1, l2)));
                    let area = self.area_model.total_area(&placed);
                    let power = self.power_model.total_power(&placed);
                    if area > self.constraints.max_area_mm2 || power > self.constraints.max_power_mw
                    {
                        continue;
                    }
                    let energy: f64 = reports.iter().map(|r| self.placed_energy(r, l1, l2)).sum();
                    let point = DesignPoint {
                        pes,
                        noc_bw: bw,
                        l1_bytes: l1,
                        l2_bytes: l2,
                        mapping: format!("per-layer best of {}", mappings.len()),
                        area_mm2: area,
                        power_mw: power,
                        runtime,
                        throughput: macs / runtime.max(1.0),
                        energy,
                        edp: energy * runtime,
                    };
                    if !point.is_finite() {
                        part.stats.nonfinite_dropped += 1;
                        continue;
                    }
                    part.stats.valid += 1;
                    update_best(&mut part.best_throughput, &point, |p| -p.throughput);
                    update_best(&mut part.best_energy, &point, |p| p.energy);
                    update_best(&mut part.best_edp, &point, |p| p.edp);
                    if insert_pareto(&mut part.pareto, &point) {
                        part.stats.pareto_inserted += 1;
                    } else {
                        part.stats.pareto_rejected += 1;
                    }
                    if part.stats.valid.is_multiple_of(61) && part.sample.len() < self.sample_cap {
                        part.sample.push(point);
                    }
                }
            }
        }
        part.stats.evaluated += memo.misses();
        part.stats.memo_hits += memo.hits();
        part
    }
}

impl Explorer {
    /// [`Explorer::explore_parallel`] as an interruption-proof **session**:
    /// resumable from a checkpoint, periodically checkpointed,
    /// deadline/signal-cancellable, and optionally fault-injected — all
    /// per [`SessionCtl`]. The scientific result stays bit-identical to a
    /// plain uninterrupted `explore_parallel` run (at any thread count,
    /// across any interrupt/resume split, with or without injected
    /// transient faults) except the wall-clock `seconds`/`rate` fields and
    /// the [`DseResult::partial`] marker on interrupted runs.
    ///
    /// # Errors
    ///
    /// [`SessionError::Space`] for an invalid sweep space;
    /// [`SessionError::Checkpoint`] when the resume checkpoint does not
    /// match this sweep or a checkpoint cannot be written. Being
    /// *interrupted* is not an error: the result comes back with
    /// `partial: true` and [`SessionReport::interrupted`] set.
    pub fn explore_session(
        &self,
        layer: &Layer,
        mappings: &[Dataflow],
        threads: usize,
        ctl: &SessionCtl,
    ) -> Result<(DseResult, SessionReport), SessionError> {
        let t0 = Instant::now();
        self.space.validate()?;
        let fingerprint = sweep_fingerprint(self, &format!("layer:{layer:?}"), mappings);
        self.run_session(fingerprint, threads, ctl, t0, |i| {
            self.explore_unit(self.space.pes[i], layer, mappings)
        })
    }

    /// [`Explorer::explore_model_parallel`] as an interruption-proof
    /// session. See [`Explorer::explore_session`].
    ///
    /// # Errors
    ///
    /// As [`Explorer::explore_session`].
    pub fn explore_model_session(
        &self,
        model: &maestro_dnn::Model,
        mappings: &[Dataflow],
        threads: usize,
        ctl: &SessionCtl,
    ) -> Result<(DseResult, SessionReport), SessionError> {
        let t0 = Instant::now();
        self.space.validate()?;
        let fingerprint = sweep_fingerprint(self, &format!("model:{model:?}"), mappings);
        self.run_session(fingerprint, threads, ctl, t0, |i| {
            self.model_unit(self.space.pes[i], model, mappings)
        })
    }

    /// Shared session driver: validate the resume checkpoint, run the
    /// controlled unit loop, write the final checkpoint, merge whatever
    /// completed, and assemble the control report.
    fn run_session<F>(
        &self,
        fingerprint: u64,
        threads: usize,
        ctl: &SessionCtl,
        t0: Instant,
        unit: F,
    ) -> Result<(DseResult, SessionReport), SessionError>
    where
        F: Fn(usize) -> Partial + Sync,
    {
        let total = self.space.pes.len();
        if let Some(resume) = &ctl.resume {
            resume.validate_against(fingerprint, total)?;
        }
        let run_ctl = RunCtl {
            token: &ctl.token,
            resume: ctl.resume.as_ref(),
            faults: &ctl.faults,
            retries: ctl.retries,
            unit_timeout: ctl.unit_timeout,
            checkpoint: ctl.checkpoint_path.as_deref().map(|path| CheckpointSink {
                path,
                fingerprint,
                every_units: ctl.checkpoint_every_units,
                every: ctl.checkpoint_every,
            }),
            on_progress: ctl.on_progress.as_deref(),
        };
        let run = run_units_ctl(total, threads, &run_ctl, unit);

        // Final checkpoint: always current as of the last completed unit,
        // whether the run finished or was cut short.
        let mut checkpoint_writes = run.checkpoint_writes;
        if let Some(path) = &ctl.checkpoint_path {
            Checkpoint::from_outcomes(fingerprint, &run.slots).save(path)?;
            checkpoint_writes += 1;
        }

        let complete = run.complete();
        let completed_units = run.completed();
        let report = SessionReport {
            interrupted: run.cancelled && !complete,
            deadline_hit: ctl.token.deadline_exceeded(),
            resumed_skipped: run.resumed_skipped,
            checkpoint_writes,
            completed_units,
            total_units: total,
            units_retried: run.units_retried,
            units_timed_out: run.units_timed_out,
            faults_injected: run.faults_injected,
        };
        if report.deadline_hit {
            crate::parallel::note_deadline_exceeded();
        }
        let mut result = merge_indexed_partials(
            run.slots
                .into_iter()
                .enumerate()
                .filter_map(|(i, s)| s.map(|o| (i, o)))
                .collect(),
            self.sample_cap,
        );
        result.partial = !complete;
        finish_stats(&mut result.stats, t0);
        Ok((result, report))
    }
}

#[cfg(test)]
mod model_tests {
    use super::*;
    use crate::space::SweepSpace;
    use crate::variants;
    use maestro_dnn::zoo;
    use maestro_ir::Style;

    #[test]
    fn whole_model_exploration() {
        let e = Explorer::new(SweepSpace::tiny());
        let model = zoo::alexnet(1);
        let maps = variants::variants(Style::KCP);
        let r = e.explore_model(&model, &maps).expect("valid space");
        assert!(r.stats.valid > 0);
        let t = r.best_throughput.expect("some valid design");
        assert!(t.runtime > 0.0);
        assert!(t.mapping.contains("per-layer"));
    }

    #[test]
    fn repeated_model_shapes_hit_the_memo_cache() {
        // VGG-16 repeats convolution shapes, so the per-unit cache must
        // serve a large share of the per-layer tuning lookups.
        let e = Explorer::new(SweepSpace::tiny());
        let model = zoo::vgg16(1);
        let maps = variants::variants(Style::KCP);
        let r = e.explore_model(&model, &maps).expect("valid space");
        assert!(r.stats.memo_hits > 0, "{:?}", r.stats);
        // Hits + misses cannot exceed one lookup per
        // (layer, mapping, bw, pes) combination (fewer when a hardware
        // point fails early on an unresolvable layer).
        let lookups = (model.len() * maps.len() * e.space.noc_bw.len() * e.space.pes.len()) as u64;
        assert!(r.stats.memo_hits + r.stats.evaluated <= lookups);
    }

    #[test]
    fn parallel_matches_serial_optima() {
        let e = Explorer::new(SweepSpace::tiny());
        let model = zoo::vgg16(1);
        let layer = model.layer("CONV5").expect("zoo layer");
        let maps = variants::variants(Style::KCP);
        let serial = e.explore(layer, &maps).expect("valid space");
        let parallel = e.explore_parallel(layer, &maps, 3).expect("valid space");
        assert_eq!(serial.stats.valid, parallel.stats.valid);
        let (s, p) = (
            serial.best_throughput.expect("serial optimum"),
            parallel.best_throughput.expect("parallel optimum"),
        );
        assert_eq!(s.throughput, p.throughput);
        let (s, p) = (
            serial.best_energy.expect("serial"),
            parallel.best_energy.expect("parallel"),
        );
        assert!((s.energy - p.energy).abs() < 1e-6 * s.energy);
    }
}

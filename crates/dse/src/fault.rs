//! Deterministic fault injection for the DSE worker loop.
//!
//! A [`FaultPlan`] is parsed from a compact spec (`--inject
//! panic:0.01,delay:50ms:0.05,nofinite:0.001`) plus a seed, and decides —
//! as a pure function of `(seed, kind, unit, attempt)` — whether a given
//! execution attempt of a work unit is hit by each fault kind. Because
//! the decision depends on nothing else (not thread count, not timing),
//! fault-injected sweeps stay bit-identically reproducible, which is what
//! lets CI prove that quarantine, checkpoint/resume and the watchdog
//! interact correctly under failure.
//!
//! Three fault kinds:
//!
//! * **panic** — the attempt panics before doing any work, exercising the
//!   catch-unwind + retry + quarantine path;
//! * **delay** — the attempt stalls (cooperatively: the sleep observes the
//!   cancellation token and the per-unit watchdog budget) before doing its
//!   work, exercising deadline/signal responsiveness and the watchdog;
//! * **nofinite** — a `NaN`-poisoned design point is appended to the
//!   unit's Pareto slice after it computes, exercising the merge-side
//!   finite-value gates (the injected point must never survive into the
//!   merged front, so results stay bit-identical to a clean run).

use std::fmt;
use std::time::Duration;

/// One fault kind with its per-attempt probability.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Fault {
    /// Panic at the start of the attempt, with probability `rate`.
    Panic {
        /// Per-attempt injection probability in `[0, 1]`.
        rate: f64,
    },
    /// Stall for `duration` at the start of the attempt, with probability
    /// `rate`.
    Delay {
        /// How long the injected stall lasts (cooperative sleep).
        duration: Duration,
        /// Per-attempt injection probability in `[0, 1]`.
        rate: f64,
    },
    /// Append a non-finite design point to the unit's result, with
    /// probability `rate`.
    NoFinite {
        /// Per-attempt injection probability in `[0, 1]`.
        rate: f64,
    },
}

/// A malformed `--inject` spec.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultSpecError {
    /// The offending clause.
    pub clause: String,
    /// Why it was rejected.
    pub reason: String,
}

impl fmt::Display for FaultSpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bad fault clause `{}`: {}", self.clause, self.reason)
    }
}

impl std::error::Error for FaultSpecError {}

/// What a [`FaultPlan`] decided for one `(unit, attempt)` execution.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Injection {
    /// Panic at the start of the attempt.
    pub panic: bool,
    /// Stall for this long at the start of the attempt.
    pub stall: Option<Duration>,
    /// Poison the unit result with a non-finite point.
    pub nofinite: bool,
}

impl Injection {
    /// Number of faults this injection carries.
    pub fn count(&self) -> u64 {
        u64::from(self.panic) + u64::from(self.stall.is_some()) + u64::from(self.nofinite)
    }
}

/// A seeded, deterministic fault-injection plan. See the module docs.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    seed: u64,
    faults: Vec<Fault>,
}

impl FaultPlan {
    /// A plan from explicit faults.
    pub fn new(seed: u64, faults: Vec<Fault>) -> Self {
        FaultPlan { seed, faults }
    }

    /// Parse a spec like `panic:0.01,delay:50ms:0.05,nofinite:0.001`.
    /// Durations accept `ms`, `s` or bare milliseconds; rates are in
    /// `[0, 1]`.
    ///
    /// # Errors
    ///
    /// Returns [`FaultSpecError`] naming the first malformed clause.
    pub fn parse(spec: &str, seed: u64) -> Result<FaultPlan, FaultSpecError> {
        let err = |clause: &str, reason: &str| FaultSpecError {
            clause: clause.to_string(),
            reason: reason.to_string(),
        };
        let rate_of = |clause: &str, text: &str| -> Result<f64, FaultSpecError> {
            let rate: f64 = text
                .parse()
                .map_err(|_| err(clause, "rate must be a number"))?;
            if !(0.0..=1.0).contains(&rate) {
                return Err(err(clause, "rate must be in [0, 1]"));
            }
            Ok(rate)
        };
        let mut faults = Vec::new();
        for clause in spec.split(',').filter(|c| !c.trim().is_empty()) {
            let clause = clause.trim();
            let mut parts = clause.split(':');
            let kind = parts.next().unwrap_or_default();
            match kind {
                "panic" | "nofinite" => {
                    let rate = rate_of(clause, parts.next().unwrap_or_default())?;
                    if parts.next().is_some() {
                        return Err(err(clause, "expected `kind:rate`"));
                    }
                    faults.push(if kind == "panic" {
                        Fault::Panic { rate }
                    } else {
                        Fault::NoFinite { rate }
                    });
                }
                "delay" => {
                    let dur_text = parts.next().unwrap_or_default();
                    let rate = rate_of(clause, parts.next().unwrap_or_default())?;
                    if parts.next().is_some() {
                        return Err(err(clause, "expected `delay:duration:rate`"));
                    }
                    let duration = parse_duration(dur_text)
                        .ok_or_else(|| err(clause, "duration must be like `50ms` or `2s`"))?;
                    faults.push(Fault::Delay { duration, rate });
                }
                other => {
                    return Err(err(
                        clause,
                        &format!("unknown fault kind `{other}` (panic, delay, nofinite)"),
                    ));
                }
            }
        }
        Ok(FaultPlan { seed, faults })
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// `true` when the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Decide the injection for one `(unit, attempt)` execution. Pure:
    /// the same plan always returns the same decision for the same pair.
    pub fn decide(&self, unit: usize, attempt: u32) -> Injection {
        let mut inj = Injection::default();
        for (slot, fault) in self.faults.iter().enumerate() {
            let (kind_tag, rate) = match fault {
                Fault::Panic { rate } => (1u64, *rate),
                Fault::Delay { rate, .. } => (2, *rate),
                Fault::NoFinite { rate } => (3, *rate),
            };
            let draw = unit_draw(self.seed, kind_tag, slot as u64, unit as u64, attempt);
            if draw >= rate {
                continue;
            }
            match fault {
                Fault::Panic { .. } => inj.panic = true,
                Fault::Delay { duration, .. } => {
                    // Two delay clauses on the same attempt: the longer
                    // stall wins (they would overlap, not add).
                    inj.stall = Some(inj.stall.map_or(*duration, |d| d.max(*duration)));
                }
                Fault::NoFinite { .. } => inj.nofinite = true,
            }
        }
        inj
    }
}

/// `hms`/`s`-suffixed duration literal (bare numbers are milliseconds).
fn parse_duration(text: &str) -> Option<Duration> {
    let (num, scale_ms) = if let Some(n) = text.strip_suffix("ms") {
        (n, 1.0)
    } else if let Some(n) = text.strip_suffix('s') {
        (n, 1000.0)
    } else {
        (text, 1.0)
    };
    let v: f64 = num.parse().ok()?;
    if !(v.is_finite() && v >= 0.0) {
        return None;
    }
    Some(Duration::from_secs_f64(v * scale_ms / 1000.0))
}

/// Uniform draw in `[0, 1)` from a splitmix64 finalizer over the decision
/// coordinates — stateless, so decisions are independent of evaluation
/// order and thread count.
fn unit_draw(seed: u64, kind: u64, slot: u64, unit: u64, attempt: u32) -> f64 {
    let mut z = seed
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(kind.wrapping_mul(0xbf58_476d_1ce4_e5b9))
        .wrapping_add(slot.wrapping_mul(0x94d0_49bb_1331_11eb))
        .wrapping_add(unit.wrapping_mul(0x2545_f491_4f6c_dd1d))
        .wrapping_add(u64::from(attempt).wrapping_mul(0xd6e8_feb8_6659_fd93));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^= z >> 31;
    (z >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_documented_spec() {
        let plan = FaultPlan::parse("panic:0.01,delay:50ms:0.05,nofinite:0.001", 7).unwrap();
        assert_eq!(
            plan,
            FaultPlan::new(
                7,
                vec![
                    Fault::Panic { rate: 0.01 },
                    Fault::Delay {
                        duration: Duration::from_millis(50),
                        rate: 0.05
                    },
                    Fault::NoFinite { rate: 0.001 },
                ]
            )
        );
        assert!(!plan.is_empty());
        assert!(FaultPlan::parse("", 0).unwrap().is_empty());
        assert!(FaultPlan::parse("delay:2s:1.0", 0).is_ok());
        assert!(FaultPlan::parse("delay:250:0.5", 0).is_ok(), "bare ms");
    }

    #[test]
    fn rejects_malformed_specs() {
        for bad in [
            "explode:0.5",
            "panic:2.0",
            "panic:x",
            "delay:50ms",
            "delay:fast:0.5",
            "panic:0.5:extra",
            "delay:-5ms:0.5",
        ] {
            let err = FaultPlan::parse(bad, 0).unwrap_err();
            assert!(!err.to_string().is_empty(), "{bad}");
        }
    }

    #[test]
    fn decisions_are_deterministic_and_attempt_sensitive() {
        let plan = FaultPlan::parse("panic:0.5", 42).unwrap();
        let a: Vec<bool> = (0..64).map(|u| plan.decide(u, 0).panic).collect();
        let b: Vec<bool> = (0..64).map(|u| plan.decide(u, 0).panic).collect();
        assert_eq!(a, b, "same coordinates, same decision");
        let retry: Vec<bool> = (0..64).map(|u| plan.decide(u, 1).panic).collect();
        assert_ne!(a, retry, "retries draw fresh randomness");
        assert!(a.iter().any(|&p| p) && a.iter().any(|&p| !p));
    }

    #[test]
    fn rates_zero_and_one_are_exact() {
        let never = FaultPlan::parse("panic:0", 1).unwrap();
        let always = FaultPlan::parse("panic:1", 1).unwrap();
        for u in 0..100 {
            assert!(!never.decide(u, 0).panic);
            assert!(always.decide(u, 0).panic);
        }
    }

    #[test]
    fn longest_of_overlapping_delays_wins() {
        let plan = FaultPlan::new(
            0,
            vec![
                Fault::Delay {
                    duration: Duration::from_millis(10),
                    rate: 1.0,
                },
                Fault::Delay {
                    duration: Duration::from_millis(30),
                    rate: 1.0,
                },
            ],
        );
        assert_eq!(plan.decide(0, 0).stall, Some(Duration::from_millis(30)));
        assert_eq!(plan.decide(0, 0).count(), 1);
    }
}

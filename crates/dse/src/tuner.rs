//! Dataflow auto-tuning (the paper's stated future work, §7: "a dataflow
//! auto-tuner to find an optimal dataflow on the specified DNN model and
//! hardware configuration").
//!
//! For a fixed hardware configuration the tuner searches the mapping
//! space — the five Table 3 styles and their tile-size variants — per
//! layer, under a selectable objective, and reports the per-layer winners
//! together with the improvement over the best fixed dataflow.

use crate::variants::variants;
use maestro_core::{analyze, LayerReport};
use maestro_dnn::{Layer, Model};
use maestro_hw::{Accelerator, EnergyModel};
use maestro_ir::{Dataflow, Style};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The tuning objective.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Objective {
    /// Minimize runtime (cycles).
    Runtime,
    /// Minimize energy under the given table.
    Energy(EnergyModel),
    /// Minimize energy-delay product.
    Edp(EnergyModel),
}

impl Objective {
    /// The scalar score of a report (lower is better).
    pub fn score(&self, report: &LayerReport) -> f64 {
        match self {
            Objective::Runtime => report.runtime,
            Objective::Energy(em) => report.energy(em),
            Objective::Edp(em) => report.edp(em),
        }
    }
}

impl fmt::Display for Objective {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Objective::Runtime => write!(f, "runtime"),
            Objective::Energy(_) => write!(f, "energy"),
            Objective::Edp(_) => write!(f, "EDP"),
        }
    }
}

/// One layer's tuning outcome.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TunedLayer {
    /// Layer name.
    pub layer: String,
    /// Winning dataflow.
    pub dataflow: Dataflow,
    /// The winning analysis report.
    pub report: LayerReport,
    /// Candidates evaluated (mappable ones).
    pub evaluated: usize,
}

/// A whole-model tuning outcome.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TunedModel {
    /// Model name.
    pub model: String,
    /// Per-layer winners, in network order.
    pub layers: Vec<TunedLayer>,
}

impl TunedModel {
    /// End-to-end runtime of the tuned schedule.
    pub fn runtime(&self) -> f64 {
        self.layers.iter().map(|l| l.report.runtime).sum()
    }

    /// Total energy of the tuned schedule.
    pub fn energy(&self, em: &EnergyModel) -> f64 {
        self.layers.iter().map(|l| l.report.energy(em)).sum()
    }

    /// How many distinct dataflow names the tuned schedule uses.
    pub fn distinct_dataflows(&self) -> usize {
        let mut names: Vec<&str> = self.layers.iter().map(|l| l.dataflow.name()).collect();
        names.sort_unstable();
        names.dedup();
        names.len()
    }
}

/// The default candidate set: every Table 3 style plus its tile-size
/// variants.
pub fn default_candidates() -> Vec<Dataflow> {
    let mut out = Vec::new();
    for style in Style::ALL {
        out.push(style.dataflow());
        out.extend(variants(style));
    }
    // Variant generators may reproduce the canonical form; dedup by name.
    out.sort_by(|a, b| a.name().cmp(b.name()));
    out.dedup_by(|a, b| a.name() == b.name());
    out
}

/// Tune one layer: evaluate every mappable candidate and keep the best.
///
/// Returns `None` when no candidate can be mapped (e.g. zero PEs is
/// rejected earlier by construction, so in practice this means every
/// candidate's cluster size exceeded the PE count).
pub fn tune_layer(
    layer: &Layer,
    acc: &Accelerator,
    objective: Objective,
    candidates: &[Dataflow],
) -> Option<TunedLayer> {
    let mut best: Option<(f64, &Dataflow, LayerReport)> = None;
    let mut evaluated = 0usize;
    for df in candidates {
        let Ok(report) = analyze(layer, df, acc) else {
            continue;
        };
        evaluated += 1;
        let score = objective.score(&report);
        let better = best.as_ref().is_none_or(|(s, _, _)| score < *s);
        if better {
            best = Some((score, df, report));
        }
    }
    best.map(|(_, df, report)| TunedLayer {
        layer: layer.name.clone(),
        dataflow: df.clone(),
        report,
        evaluated,
    })
}

/// Tune every layer of a model with the default candidate set.
///
/// # Panics
///
/// Panics if some layer cannot be mapped by *any* candidate (the default
/// set always contains single-level dataflows that map on ≥ 1 PE, so this
/// indicates an invalid layer).
pub fn tune_model(model: &Model, acc: &Accelerator, objective: Objective) -> TunedModel {
    let candidates = default_candidates();
    let layers = model
        .iter()
        .map(|l| {
            tune_layer(l, acc, objective, &candidates)
                .unwrap_or_else(|| panic!("layer {} has no mappable candidate", l.name))
        })
        .collect();
    TunedModel {
        model: model.name.clone(),
        layers,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use maestro_dnn::zoo;

    #[test]
    fn tuned_beats_every_fixed_style() {
        let model = zoo::alexnet(1);
        let acc = Accelerator::builder(128).build();
        let tuned = tune_model(&model, &acc, Objective::Runtime);
        for style in Style::ALL {
            let mut fixed = 0.0f64;
            for layer in model.iter() {
                let df = style.dataflow();
                let r = analyze(layer, &df, &acc)
                    .or_else(|_| analyze(layer, &Style::XP.dataflow(), &acc));
                fixed += r.expect("fallback maps").runtime;
            }
            assert!(
                tuned.runtime() <= fixed * 1.0001,
                "{style}: tuned {} vs fixed {fixed}",
                tuned.runtime()
            );
        }
    }

    #[test]
    fn tile_variants_beat_canonical_styles_somewhere() {
        // The tuner's value-add over per-style adaptivity: tile variants.
        let model = zoo::vgg16(1);
        let acc = Accelerator::paper_case_study();
        let tuned = tune_model(&model, &acc, Objective::Runtime);
        let uses_variant = tuned.layers.iter().any(|l| l.dataflow.name().contains('['));
        assert!(uses_variant, "expected some tile-size variant to win");
    }

    #[test]
    fn objectives_disagree() {
        let model = zoo::vgg16(1);
        let layer = model.layer("CONV11").expect("zoo layer");
        let acc = Accelerator::paper_case_study();
        let cands = default_candidates();
        let em = EnergyModel::cacti_28nm(acc.l1_bytes, acc.l2_bytes);
        let by_rt = tune_layer(layer, &acc, Objective::Runtime, &cands).unwrap();
        let by_en = tune_layer(layer, &acc, Objective::Energy(em), &cands).unwrap();
        assert!(by_rt.report.runtime <= by_en.report.runtime);
        assert!(by_en.report.energy(&em) <= by_rt.report.energy(&em));
    }

    #[test]
    fn candidate_set_is_deduplicated_and_substantial() {
        let c = default_candidates();
        assert!(c.len() >= 30, "{}", c.len());
        let mut names: Vec<_> = c.iter().map(|d| d.name()).collect();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(before, names.len());
    }

    #[test]
    fn tuned_model_reports_diversity() {
        let model = zoo::mobilenet_v2(1);
        let acc = Accelerator::paper_case_study();
        let tuned = tune_model(&model, &acc, Objective::Runtime);
        assert!(
            tuned.distinct_dataflows() >= 2,
            "MobileNet mixes operator types"
        );
        assert!(tuned.layers.iter().all(|l| l.evaluated > 0));
    }
}

//! Property tests for the checkpoint wire format: the canonical encoding
//! round-trips exactly (including non-finite floats), and every
//! single-byte corruption is a typed error — never a panic, never a
//! silently-accepted checkpoint.

use maestro_dse::checkpoint::fnv1a;
use maestro_dse::{Checkpoint, CheckpointError, DesignPoint, Partial, UnitEntry};
use proptest::prelude::*;

/// Tiny deterministic PRNG so one `u64` seed expands into a whole
/// checkpoint (the proptest shim generates flat tuples; structured
/// values are easier to derive than to compose).
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }

    /// An f64 that is frequently non-finite or negative-zero — the cases
    /// a lossy text format would destroy.
    fn f64(&mut self) -> f64 {
        match self.below(6) {
            0 => f64::NAN,
            1 => f64::INFINITY,
            2 => f64::NEG_INFINITY,
            3 => -0.0,
            4 => f64::from_bits(self.next()),
            _ => (self.below(1000) as f64) / 7.0,
        }
    }

    fn point(&mut self) -> DesignPoint {
        DesignPoint {
            pes: self.below(4096),
            noc_bw: self.below(128),
            l1_bytes: self.below(1 << 20),
            l2_bytes: self.below(1 << 24),
            // Exercise the string escaping: separators, newlines, quotes,
            // backslashes.
            mapping: match self.below(4) {
                0 => String::new(),
                1 => "KC-P[c16,y4,x4]".into(),
                2 => "evil \\ mapping\nwith newline\r".into(),
                _ => format!("map-{}", self.next()),
            },
            area_mm2: self.f64(),
            power_mw: self.f64(),
            runtime: self.f64(),
            throughput: self.f64(),
            energy: self.f64(),
            edp: self.f64(),
        }
    }

    fn partial(&mut self) -> Partial {
        let mut p = Partial::new();
        p.stats.explored = self.next();
        p.stats.evaluated = self.below(1 << 40);
        p.stats.valid = self.below(1 << 40);
        p.stats.memo_hits = self.below(1 << 40);
        p.stats.nonfinite_dropped = self.below(100);
        p.stats.capacity_skipped = self.below(100);
        p.stats.pareto_inserted = self.below(100);
        p.stats.pareto_rejected = self.below(100);
        for _ in 0..self.below(4) {
            p.pareto.push(self.point());
        }
        if self.below(2) == 0 {
            p.best_throughput = Some(self.point());
        }
        if self.below(2) == 0 {
            p.best_energy = Some(self.point());
        }
        if self.below(2) == 0 {
            p.best_edp = Some(self.point());
        }
        for _ in 0..self.below(3) {
            p.sample.push(self.point());
        }
        p
    }

    fn checkpoint(&mut self) -> Checkpoint {
        let fingerprint = self.next();
        let total = 1 + self.below(6) as usize;
        let mut cp = Checkpoint::new(fingerprint, total);
        for i in 0..total {
            cp.units[i] = match self.below(3) {
                0 => None,
                1 => Some(UnitEntry::Done(self.partial())),
                _ => Some(UnitEntry::Quarantined(match self.below(3) {
                    0 => String::new(),
                    1 => "panicked at 'boom'".into(),
                    _ => "multi\nline \\ payload".into(),
                })),
            };
        }
        cp
    }
}

proptest! {
    #[test]
    fn encode_decode_reencode_is_byte_identical(seed in 0u64..u64::MAX) {
        let cp = Rng(seed | 1).checkpoint();
        let text = cp.encode();
        let back = Checkpoint::decode(&text).expect("canonical text decodes");
        prop_assert_eq!(back.fingerprint, cp.fingerprint);
        prop_assert_eq!(back.units.len(), cp.units.len());
        prop_assert_eq!(back.encode(), text, "re-encoding is not canonical");
    }

    #[test]
    fn any_single_byte_corruption_is_a_typed_error(seed in 0u64..u64::MAX) {
        let mut rng = Rng(seed | 1);
        let cp = rng.checkpoint();
        let text = cp.encode();
        let mut bytes = text.into_bytes();
        let at = rng.below(bytes.len() as u64) as usize;
        let flip = 1 + rng.below(255) as u8; // never a no-op
        bytes[at] ^= flip;
        // Decode must reject the tampered text with a typed error — any
        // variant is fine, a panic or an Ok is not.
        match Checkpoint::decode(&String::from_utf8_lossy(&bytes)) {
            Err(_) => {}
            Ok(_) => prop_assert!(
                false,
                "corrupted checkpoint accepted (byte {at} ^ {flip:#x})"
            ),
        }
    }
}

#[test]
fn version_bump_with_valid_checksum_is_a_version_error() {
    let cp = Rng(7).checkpoint();
    let tampered = cp
        .encode()
        .replace("maestro-dse-checkpoint v1", "maestro-dse-checkpoint v9");
    // Re-stamp the checksum so only the version is wrong.
    let body_end = tampered.rfind("checksum ").expect("has checksum line");
    let body = &tampered[..body_end];
    let restamped = format!("{body}checksum {:016x}\n", fnv1a(body.as_bytes()));
    match Checkpoint::decode(&restamped) {
        Err(CheckpointError::Version { found }) => assert!(found.contains("v9"), "{found}"),
        other => panic!("expected Version error, got {other:?}"),
    }
}

#[test]
fn fingerprint_mismatch_is_reported_with_both_values() {
    let cp = Rng(9).checkpoint();
    let total = cp.units.len();
    let err = cp
        .validate_against(cp.fingerprint.wrapping_add(1), total)
        .expect_err("mismatched fingerprint must be rejected");
    assert!(
        matches!(&err, CheckpointError::Fingerprint { expected, found }
            if expected != found),
        "wrong error: {err:?}"
    );
}

//! Golden tests for interruption-proof sessions: a sweep interrupted at
//! unit K, checkpointed, and resumed must be **bit-identical** to the
//! uninterrupted run — at any thread count, and with or without injected
//! panics, stalls, and non-finite poison. Only the wall-clock fields
//! (`seconds`, `rate`) and the `partial` marker on the interrupted half
//! may differ.

use maestro_dnn::{Layer, LayerDims, Operator};
use maestro_dse::{variants, Checkpoint, DseResult, Explorer, FaultPlan, SessionCtl, SweepSpace};
use maestro_ir::Style;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU32, Ordering};
use std::time::Duration;

/// Strip the wall-clock fields so the rest can be compared exactly.
fn canonical(mut r: DseResult) -> DseResult {
    r.stats.seconds = 0.0;
    r.stats.rate = 0.0;
    r
}

/// A workload small enough to finish fast but spanning several units.
fn conv_layer() -> Layer {
    Layer::new("c", Operator::conv2d(), LayerDims::square(1, 64, 32, 34, 3))
}

fn space() -> SweepSpace {
    let full = SweepSpace::standard();
    SweepSpace {
        pes: full.pes.iter().copied().step_by(2).collect(),
        noc_bw: full.noc_bw.iter().copied().step_by(3).collect(),
        l1_bytes: full.l1_bytes.iter().copied().step_by(4).collect(),
        l2_bytes: full.l2_bytes.iter().copied().step_by(4).collect(),
    }
}

/// A scratch checkpoint path unique to this test invocation.
fn scratch(tag: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!(
        "maestro-interrupt-resume-{}-{tag}.ckpt",
        std::process::id()
    ));
    p
}

/// Run a session that cancels itself once `k` units have completed, then
/// resume from the resulting checkpoint (with `resume_faults` active) and
/// return the resumed-to-completion result.
fn interrupt_at_k_then_resume(
    tag: &str,
    threads: usize,
    k: u32,
    first_faults: FaultPlan,
    resume_faults: FaultPlan,
) -> DseResult {
    let explorer = Explorer::new(space());
    let layer = conv_layer();
    let maps = variants::variants(Style::KCP);
    let path = scratch(tag);
    let _ = std::fs::remove_file(&path);

    // Phase 1: cancel after K completed units, from the progress hook —
    // the same boundary a signal or deadline trips at.
    let mut ctl = SessionCtl {
        checkpoint_path: Some(path.clone()),
        faults: first_faults,
        retries: 2,
        unit_timeout: Some(Duration::from_millis(5)),
        ..Default::default()
    };
    let token = ctl.token.clone();
    let done_units = AtomicU32::new(0);
    ctl.on_progress = Some(Box::new(move |_done, _total| {
        if done_units.fetch_add(1, Ordering::Relaxed) + 1 >= k {
            token.cancel();
        }
    }));
    let (partial, report) = explorer
        .explore_session(&layer, &maps, threads, &ctl)
        .expect("interrupted session still succeeds");
    assert!(report.interrupted, "{tag}: session should be interrupted");
    assert!(partial.partial, "{tag}: result should be marked partial");
    assert!(
        report.completed_units < report.total_units,
        "{tag}: interrupt must land mid-sweep (completed {}/{})",
        report.completed_units,
        report.total_units
    );
    assert!(report.checkpoint_writes > 0, "{tag}: no checkpoint written");

    // Phase 2: resume from the checkpoint and run to completion.
    let ckpt = Checkpoint::load(&path).expect("checkpoint loads");
    let resumed_ctl = SessionCtl {
        checkpoint_path: Some(path.clone()),
        resume: Some(ckpt),
        faults: resume_faults,
        retries: 2,
        unit_timeout: Some(Duration::from_millis(5)),
        ..Default::default()
    };
    let (full, resumed_report) = explorer
        .explore_session(&layer, &maps, threads, &resumed_ctl)
        .expect("resumed session succeeds");
    assert!(!resumed_report.interrupted, "{tag}: resume ran to the end");
    assert!(!full.partial, "{tag}: resumed result is complete");
    assert_eq!(
        resumed_report.resumed_skipped, report.completed_units,
        "{tag}: resume must skip exactly the units the first run finished"
    );
    let _ = std::fs::remove_file(&path);
    canonical(full)
}

fn uninterrupted() -> DseResult {
    let explorer = Explorer::new(space());
    let maps = variants::variants(Style::KCP);
    canonical(
        explorer
            .explore_parallel(&conv_layer(), &maps, 1)
            .expect("valid space"),
    )
}

#[test]
fn interrupt_and_resume_is_bit_identical_at_every_thread_count() {
    let golden = uninterrupted();
    assert!(
        golden.stats.quarantined.is_empty(),
        "clean run must not quarantine"
    );
    for threads in [1usize, 2, 8, 0] {
        let r = interrupt_at_k_then_resume(
            &format!("t{threads}"),
            threads,
            2,
            FaultPlan::new(0, Vec::new()),
            FaultPlan::new(0, Vec::new()),
        );
        assert_eq!(golden, r, "threads={threads}: resumed run diverged");
    }
}

#[test]
fn interrupt_and_resume_is_bit_identical_under_injected_faults() {
    let golden = uninterrupted();
    // Transient panics recover on retry; injected stalls trip the 5ms
    // watchdog and the unit is rerouted; non-finite poison is rejected by
    // the merge's finite gates. All three must leave the science
    // untouched. (Deterministic draws: these seeds are chosen so no unit
    // fails every attempt — asserted via the quarantine list below.)
    let plans: &[(&str, &str)] = &[
        ("panics", "panic:0.3"),
        ("stalls", "delay:50ms:0.3"),
        ("poison", "nofinite:1.0"),
        ("mixed", "panic:0.2,delay:50ms:0.2,nofinite:0.5"),
    ];
    for (tag, spec) in plans {
        let faults = FaultPlan::parse(spec, 42).expect("valid fault spec");
        let r = interrupt_at_k_then_resume(&format!("faults-{tag}"), 2, 2, faults.clone(), faults);
        assert!(
            r.stats.quarantined.is_empty(),
            "{tag}: a unit failed every attempt — pick a different seed"
        );
        assert_eq!(&golden, &r, "{tag}: faults leaked into the result");
    }
}

/// Measurement harness behind EXPERIMENTS.md's checkpoint-overhead
/// number: times a whole-model session with and without per-unit
/// checkpointing (the default interval). Ignored by default because it
/// is a benchmark, not an assertion — run with
/// `cargo test -p maestro-dse --release --test interrupt_resume -- --ignored --nocapture`.
#[test]
#[ignore = "timing measurement, run manually"]
fn measure_checkpoint_overhead() {
    let explorer = Explorer::new(SweepSpace::standard());
    let model = maestro_dnn::zoo::resnet50(1);
    // All five styles' variants: the realistic "which dataflow wins"
    // sweep, heavy enough per unit for steady timing.
    let maps: Vec<_> = Style::ALL
        .iter()
        .flat_map(|s| variants::variants(*s))
        .collect();
    let path = scratch("overhead");
    let mut base = f64::MAX;
    let mut ckpt = f64::MAX;
    for _ in 0..3 {
        let plain = SessionCtl::default();
        let (r, _) = explorer
            .explore_model_session(&model, &maps, 2, &plain)
            .expect("plain session");
        base = base.min(r.stats.seconds);
        let with_ckpt = SessionCtl {
            checkpoint_path: Some(path.clone()),
            ..Default::default()
        };
        let (r, rep) = explorer
            .explore_model_session(&model, &maps, 2, &with_ckpt)
            .expect("checkpointed session");
        ckpt = ckpt.min(r.stats.seconds);
        println!(
            "plain {base:.3}s  checkpointed {ckpt:.3}s  ({} writes) overhead {:+.2}%",
            rep.checkpoint_writes,
            100.0 * (ckpt - base) / base
        );
    }
    let _ = std::fs::remove_file(&path);
}

#[test]
fn resume_against_a_different_sweep_is_rejected() {
    let explorer = Explorer::new(space());
    let layer = conv_layer();
    let maps = variants::variants(Style::KCP);
    let path = scratch("fingerprint");
    let _ = std::fs::remove_file(&path);
    let ctl = SessionCtl {
        checkpoint_path: Some(path.clone()),
        ..Default::default()
    };
    explorer
        .explore_session(&layer, &maps, 1, &ctl)
        .expect("baseline session");
    let ckpt = Checkpoint::load(&path).expect("checkpoint loads");
    // Same checkpoint, different workload: must be refused, not merged.
    let other = Layer::new("d", Operator::conv2d(), LayerDims::square(1, 32, 16, 18, 3));
    let bad = SessionCtl {
        resume: Some(ckpt),
        ..Default::default()
    };
    let err = explorer
        .explore_session(&other, &maps, 1, &bad)
        .expect_err("fingerprint mismatch must be rejected");
    assert!(
        matches!(
            err,
            maestro_dse::SessionError::Checkpoint(maestro_dse::CheckpointError::Fingerprint { .. })
        ),
        "wrong error: {err:?}"
    );
    let _ = std::fs::remove_file(&path);
}

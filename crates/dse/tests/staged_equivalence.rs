//! Golden equivalence suite for the two evaluation modes of the explorer.
//!
//! [`EvalMode::Staged`] shares the NoC-independent analysis stages across
//! the bandwidth axis (and re-prices only the performance stage per
//! bandwidth); [`EvalMode::Full`] runs the fused analysis at every
//! (mapping, bandwidth) grid point. The two must agree **bit-for-bit** on
//! the whole [`DseResult`] — fronts, best points, samples, and every
//! statistics counter except the wall-clock fields — at any thread count,
//! across checkpoints, and under injected faults. Anything less would mean
//! the 10× speedup changed the science.

use maestro_dnn::{zoo, Layer, LayerDims, Operator};
use maestro_dse::{
    variants, Checkpoint, DseResult, EvalMode, Explorer, FaultPlan, SessionCtl, SweepSpace,
};
use maestro_ir::Style;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU32, Ordering};

/// Strip the wall-clock fields so the rest can be compared exactly.
fn canonical(mut r: DseResult) -> DseResult {
    r.stats.seconds = 0.0;
    r.stats.rate = 0.0;
    r
}

fn explorer(eval: EvalMode, space: SweepSpace) -> Explorer {
    let mut e = Explorer::new(space);
    e.eval = eval;
    e
}

fn scratch(tag: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!(
        "maestro-staged-equiv-{}-{tag}.ckpt",
        std::process::id()
    ));
    p
}

/// Representative zoo layers (early / depthwise / late shapes) × all five
/// Table-3 styles on the tiny space: staged and full sweeps must produce
/// identical results. This is the per-layer golden grid behind the staged
/// default.
#[test]
fn staged_equals_full_across_zoo_layers_and_styles() {
    let vgg = zoo::vgg16(1);
    let mobilenet = zoo::mobilenet_v2(1);
    let mut layers: Vec<&Layer> = Vec::new();
    layers.extend(vgg.iter().take(1));
    layers.extend(vgg.iter().skip(vgg.len() - 1));
    layers.extend(mobilenet.iter().skip(3).take(2));
    assert!(layers.len() >= 4);
    for layer in layers {
        for style in Style::ALL {
            let maps = variants::variants(style);
            let full = explorer(EvalMode::Full, SweepSpace::tiny())
                .explore(layer, &maps)
                .expect("valid space");
            let staged = explorer(EvalMode::Staged, SweepSpace::tiny())
                .explore(layer, &maps)
                .expect("valid space");
            assert!(
                staged.stats.valid > 0,
                "{} {style}: empty sweep",
                layer.name
            );
            assert_eq!(
                canonical(full),
                canonical(staged),
                "{} {style}: modes diverged",
                layer.name
            );
        }
    }
}

/// The thread count must be orthogonal to the evaluation mode: staged at
/// 1/2/8/auto threads equals full at one thread, bit for bit.
#[test]
fn staged_equals_full_at_every_thread_count() {
    let layer = Layer::new("c", Operator::conv2d(), LayerDims::square(1, 64, 32, 34, 3));
    let maps = variants::variants(Style::KCP);
    let space = || {
        let full = SweepSpace::standard();
        SweepSpace {
            pes: full.pes.iter().copied().step_by(2).collect(),
            noc_bw: full.noc_bw.iter().copied().step_by(2).collect(),
            l1_bytes: full.l1_bytes.iter().copied().step_by(3).collect(),
            l2_bytes: full.l2_bytes.iter().copied().step_by(3).collect(),
        }
    };
    let golden = canonical(
        explorer(EvalMode::Full, space())
            .explore_parallel(&layer, &maps, 1)
            .expect("valid space"),
    );
    assert!(golden.stats.valid > 0);
    let staged = explorer(EvalMode::Staged, space());
    for threads in [1usize, 2, 8, 0] {
        let r = canonical(
            staged
                .explore_parallel(&layer, &maps, threads)
                .expect("valid space"),
        );
        assert_eq!(golden, r, "threads={threads}: staged diverged from full");
    }
}

/// Whole-model sweeps go through the per-layer auto-tuning path; it must
/// be mode-independent too.
#[test]
fn staged_equals_full_for_whole_model_sweeps() {
    let model = zoo::alexnet(1);
    let maps = variants::variants(Style::KCP);
    let full = explorer(EvalMode::Full, SweepSpace::tiny())
        .explore_model(&model, &maps)
        .expect("valid space");
    let staged = explorer(EvalMode::Staged, SweepSpace::tiny())
        .explore_model_parallel(&model, &maps, 0)
        .expect("valid space");
    assert!(staged.stats.valid > 0);
    assert_eq!(canonical(full), canonical(staged));
}

/// A staged session interrupted mid-sweep, checkpointed, and resumed (with
/// fault injection active on both halves) must land bit-identical to an
/// uninterrupted *full*-mode run: the staged path composes with the whole
/// interruption-proofing machinery.
#[test]
fn staged_session_with_checkpoint_and_faults_matches_full() {
    let layer = Layer::new("c", Operator::conv2d(), LayerDims::square(1, 64, 32, 34, 3));
    let maps = variants::variants(Style::XP);
    let space = || {
        let full = SweepSpace::standard();
        SweepSpace {
            pes: full.pes.iter().copied().step_by(2).collect(),
            noc_bw: full.noc_bw.iter().copied().step_by(3).collect(),
            l1_bytes: full.l1_bytes.iter().copied().step_by(4).collect(),
            l2_bytes: full.l2_bytes.iter().copied().step_by(4).collect(),
        }
    };
    let golden = canonical(
        explorer(EvalMode::Full, space())
            .explore_parallel(&layer, &maps, 1)
            .expect("valid space"),
    );

    let staged = explorer(EvalMode::Staged, space());
    let path = scratch("session");
    let _ = std::fs::remove_file(&path);
    let faults = FaultPlan::parse("panic:0.2,nofinite:0.5", 42).expect("valid fault spec");

    // Phase 1: cancel after two completed units.
    let mut ctl = SessionCtl {
        checkpoint_path: Some(path.clone()),
        faults: faults.clone(),
        retries: 2,
        ..Default::default()
    };
    let token = ctl.token.clone();
    let done_units = AtomicU32::new(0);
    ctl.on_progress = Some(Box::new(move |_done, _total| {
        if done_units.fetch_add(1, Ordering::Relaxed) + 1 >= 2 {
            token.cancel();
        }
    }));
    let (partial, report) = staged
        .explore_session(&layer, &maps, 2, &ctl)
        .expect("interrupted session still succeeds");
    assert!(report.interrupted && partial.partial);

    // Phase 2: resume to completion under the same fault plan.
    let ckpt = Checkpoint::load(&path).expect("checkpoint loads");
    let resumed_ctl = SessionCtl {
        checkpoint_path: Some(path.clone()),
        resume: Some(ckpt),
        faults,
        retries: 2,
        ..Default::default()
    };
    let (full_run, resumed_report) = staged
        .explore_session(&layer, &maps, 2, &resumed_ctl)
        .expect("resumed session succeeds");
    assert!(!resumed_report.interrupted && !full_run.partial);
    let _ = std::fs::remove_file(&path);

    let r = canonical(full_run);
    assert!(
        r.stats.quarantined.is_empty(),
        "a unit failed every attempt — pick a different seed"
    );
    assert_eq!(golden, r, "staged session diverged from full sweep");
}

/// Satellite guard: a checkpoint written in one evaluation mode must not
/// resume a sweep running in the other, even though their results agree —
/// the fingerprint treats the mode as part of the sweep's identity.
#[test]
fn cross_mode_resume_is_rejected() {
    let layer = Layer::new("c", Operator::conv2d(), LayerDims::square(1, 32, 16, 18, 3));
    let maps = variants::variants(Style::KCP);
    let path = scratch("cross-mode");
    let _ = std::fs::remove_file(&path);
    let ctl = SessionCtl {
        checkpoint_path: Some(path.clone()),
        ..Default::default()
    };
    explorer(EvalMode::Staged, SweepSpace::tiny())
        .explore_session(&layer, &maps, 1, &ctl)
        .expect("baseline staged session");
    let ckpt = Checkpoint::load(&path).expect("checkpoint loads");
    let bad = SessionCtl {
        resume: Some(ckpt),
        ..Default::default()
    };
    let err = explorer(EvalMode::Full, SweepSpace::tiny())
        .explore_session(&layer, &maps, 1, &bad)
        .expect_err("cross-mode resume must be rejected");
    assert!(
        matches!(
            err,
            maestro_dse::SessionError::Checkpoint(maestro_dse::CheckpointError::Fingerprint { .. })
        ),
        "wrong error: {err:?}"
    );
    let _ = std::fs::remove_file(&path);
}

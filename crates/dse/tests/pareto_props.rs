//! Property tests for the Pareto-front fold used by both the sequential
//! explorer and the parallel merge.

use maestro_dse::{insert_pareto, DesignPoint, ParetoFront};
use proptest::prelude::*;

/// A design point whose only meaningful coordinates are (runtime, energy).
/// Small integer grids force plenty of exact ties and duplicates.
fn point(runtime: u64, energy: u64) -> DesignPoint {
    DesignPoint {
        pes: 0,
        noc_bw: 0,
        l1_bytes: 0,
        l2_bytes: 0,
        mapping: String::new(),
        area_mm2: 0.0,
        power_mw: 0.0,
        runtime: runtime as f64,
        throughput: 0.0,
        energy: energy as f64,
        edp: 0.0,
    }
}

fn fold(points: &[(u64, u64)]) -> Vec<DesignPoint> {
    let mut front = Vec::new();
    for &(r, e) in points {
        insert_pareto(&mut front, &point(r, e));
    }
    front
}

/// The front as a sorted set of (runtime, energy) pairs.
fn pairs(front: &[DesignPoint]) -> Vec<(u64, u64)> {
    let mut v: Vec<(u64, u64)> = front
        .iter()
        .map(|p| (p.runtime as u64, p.energy as u64))
        .collect();
    v.sort_unstable();
    v.dedup();
    v
}

/// Brute-force reference: the distinct pairs not strictly dominated by any
/// input pair.
fn reference_front(points: &[(u64, u64)]) -> Vec<(u64, u64)> {
    let mut v: Vec<(u64, u64)> = points
        .iter()
        .copied()
        .filter(|&(r, e)| {
            !points
                .iter()
                .any(|&(qr, qe)| qr <= r && qe <= e && (qr < r || qe < e))
        })
        .collect();
    v.sort_unstable();
    v.dedup();
    v
}

/// Eight points over a 5×5 grid: dense enough for dominance chains,
/// duplicates, and ties on a single axis.
#[allow(clippy::type_complexity)]
fn points_strategy() -> impl Strategy<
    Value = (
        (u64, u64),
        (u64, u64),
        (u64, u64),
        (u64, u64),
        (u64, u64),
        (u64, u64),
        (u64, u64),
        (u64, u64),
    ),
> {
    let p = || (1u64..6, 1u64..6);
    (p(), p(), p(), p(), p(), p(), p(), p())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn front_is_nondominated_and_minimal(pts in points_strategy(), rotation in 0usize..8) {
        let (a, b, c, d, e, f, g, h) = pts;
        let mut points = vec![a, b, c, d, e, f, g, h];

        let front = fold(&points);
        // No member strictly dominates another (equal pairs never coexist:
        // insert_pareto drops exact ties on arrival).
        for x in &front {
            for y in &front {
                if std::ptr::eq(x, y) {
                    continue;
                }
                prop_assert!(
                    !(x.runtime <= y.runtime && x.energy <= y.energy),
                    "{}/{} dominates {}/{}",
                    x.runtime, x.energy, y.runtime, y.energy
                );
            }
        }
        // As a set, the front is exactly the non-dominated subset.
        prop_assert_eq!(pairs(&front), reference_front(&points));

        // Insertion order must not change the front as a set.
        points.rotate_left(rotation);
        let rotated = fold(&points);
        prop_assert_eq!(pairs(&rotated), pairs(&front));
        points.reverse();
        let reversed = fold(&points);
        prop_assert_eq!(pairs(&reversed), pairs(&front));
    }

    /// The SoA [`ParetoFront`] is a drop-in for folding through
    /// `insert_pareto`: same accept/reject verdicts point-by-point, and the
    /// exact same surviving points *in the same order* (not just as a set)
    /// — the explorer's inserted/rejected tallies and serialized fronts
    /// depend on both.
    #[test]
    fn soa_front_matches_insert_pareto_exactly(pts in points_strategy(), rotation in 0usize..8) {
        let (a, b, c, d, e, f, g, h) = pts;
        let mut points = vec![a, b, c, d, e, f, g, h];
        points.rotate_left(rotation);

        let mut vec_front = Vec::new();
        let mut soa_front = ParetoFront::new();
        for &(r, e) in &points {
            let p = point(r, e);
            let vec_accepted = insert_pareto(&mut vec_front, &p);
            let soa_accepted = soa_front.insert(&p);
            prop_assert_eq!(vec_accepted, soa_accepted, "verdict diverged on {:?}", (r, e));
            prop_assert_eq!(&vec_front, soa_front.points(), "front diverged after {:?}", (r, e));
        }
        prop_assert_eq!(vec_front, soa_front.into_points());
    }
}

/// The lazy-materialization path (`try_insert_with`) only invokes its
/// constructor on acceptance, and non-finite objectives are rejected
/// before the constructor can run.
#[test]
fn try_insert_with_builds_points_only_on_acceptance() {
    let mut front = ParetoFront::new();
    assert!(front.try_insert_with(2.0, 2.0, || fpoint(2.0, 2.0)));
    // Dominated: constructor must not run.
    assert!(!front.try_insert_with(3.0, 3.0, || unreachable!("dominated point was built")));
    // Non-finite: rejected before the dominance scan.
    assert!(!front.try_insert_with(f64::NAN, 0.0, || unreachable!("NaN point was built")));
    assert!(!front.try_insert_with(0.0, f64::INFINITY, || unreachable!("inf point was built")));
    // Dominating: accepted, evicts the incumbent.
    assert!(front.try_insert_with(1.0, 1.0, || fpoint(1.0, 1.0)));
    assert_eq!(front.len(), 1);
    assert_eq!(
        (front.points()[0].runtime, front.points()[0].energy),
        (1.0, 1.0)
    );
}

/// A point with raw float coordinates, for non-finite inputs.
fn fpoint(runtime: f64, energy: f64) -> DesignPoint {
    DesignPoint {
        runtime,
        energy,
        ..point(0, 0)
    }
}

/// Non-finite objectives must neither enter the front nor evict finite
/// incumbents (regression test for the NaN-safety gate: a NaN compares
/// "not dominated" against everything, so an ungated fold would both
/// admit it and let it survive all later dominance checks).
#[test]
fn non_finite_points_never_enter_the_front() {
    let mut front = Vec::new();
    for bad in [
        fpoint(f64::NAN, 1.0),
        fpoint(1.0, f64::NAN),
        fpoint(f64::NAN, f64::NAN),
        fpoint(f64::INFINITY, 1.0),
        fpoint(1.0, f64::NEG_INFINITY),
    ] {
        insert_pareto(&mut front, &bad);
        assert!(front.is_empty(), "{bad:?} entered an empty front");
    }

    // Establish a finite front, then attack it with NaN points.
    insert_pareto(&mut front, &fpoint(2.0, 3.0));
    insert_pareto(&mut front, &fpoint(3.0, 2.0));
    assert_eq!(front.len(), 2);
    insert_pareto(&mut front, &fpoint(f64::NAN, 0.0));
    insert_pareto(&mut front, &fpoint(0.0, f64::NAN));
    assert_eq!(front.len(), 2, "NaN point evicted a finite incumbent");
    assert!(front
        .iter()
        .all(|p| p.runtime.is_finite() && p.energy.is_finite()));

    // A finite dominating point still works after the NaN attacks.
    insert_pareto(&mut front, &fpoint(1.0, 1.0));
    assert_eq!(front.len(), 1);
    assert_eq!((front[0].runtime, front[0].energy), (1.0, 1.0));
}

#[test]
fn duplicate_points_keep_first_occurrence_only() {
    let front = fold(&[(2, 2), (2, 2), (2, 2)]);
    assert_eq!(front.len(), 1);
}

#[test]
fn dominated_then_dominating() {
    let front = fold(&[(3, 3), (1, 1)]);
    assert_eq!(pairs(&front), vec![(1, 1)]);
    let front = fold(&[(1, 1), (3, 3)]);
    assert_eq!(pairs(&front), vec![(1, 1)]);
}

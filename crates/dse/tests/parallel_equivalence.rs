//! Golden tests: the sharded parallel explorer must be **bit-identical**
//! to the sequential one at any thread count — same Pareto front (same
//! order), same per-objective bests, same scatter sample, same counters.
//! Only the wall-clock fields (`seconds`, `rate`) may differ.

use maestro_dnn::{zoo, Layer, LayerDims, Operator};
use maestro_dse::{variants, DseResult, Explorer, SweepSpace};
use maestro_ir::Style;

/// Strip the wall-clock fields so the rest can be compared exactly.
fn canonical(mut r: DseResult) -> DseResult {
    r.stats.seconds = 0.0;
    r.stats.rate = 0.0;
    r
}

fn assert_identical(seq: &DseResult, par: DseResult, what: &str) {
    let par = canonical(par);
    assert_eq!(seq.stats, par.stats, "{what}: stats differ");
    assert_eq!(seq.pareto, par.pareto, "{what}: pareto fronts differ");
    assert_eq!(
        seq.best_throughput, par.best_throughput,
        "{what}: best_throughput differs"
    );
    assert_eq!(
        seq.best_energy, par.best_energy,
        "{what}: best_energy differs"
    );
    assert_eq!(seq.best_edp, par.best_edp, "{what}: best_edp differs");
    assert_eq!(seq.sample, par.sample, "{what}: samples differ");
    assert_eq!(seq, &par, "{what}: results differ");
}

/// A slice of the standard space that keeps the test fast while still
/// spanning several PE counts and triggering bulk skips.
fn trimmed_standard() -> SweepSpace {
    let full = SweepSpace::standard();
    SweepSpace {
        pes: full.pes.iter().copied().step_by(2).collect(),
        noc_bw: full.noc_bw.iter().copied().step_by(3).collect(),
        l1_bytes: full.l1_bytes.iter().copied().step_by(4).collect(),
        l2_bytes: full.l2_bytes.iter().copied().step_by(4).collect(),
    }
}

fn conv_layer() -> Layer {
    Layer::new("c", Operator::conv2d(), LayerDims::square(1, 64, 32, 34, 3))
}

#[test]
fn layer_explore_is_thread_count_invariant_on_tiny_space() {
    let e = Explorer::new(SweepSpace::tiny());
    let layer = conv_layer();
    let maps = variants::variants(Style::KCP);
    let seq = canonical(e.explore(&layer, &maps).expect("valid space"));
    assert!(seq.stats.valid > 0, "{:?}", seq.stats);
    for threads in [1, 2, 8] {
        let par = e
            .explore_parallel(&layer, &maps, threads)
            .expect("valid space");
        assert_identical(&seq, par, &format!("tiny space, {threads} threads"));
    }
}

#[test]
fn layer_explore_is_thread_count_invariant_on_trimmed_standard_space() {
    let e = Explorer::new(trimmed_standard());
    let layer = conv_layer();
    let maps = variants::variants(Style::YRP);
    let seq = canonical(e.explore(&layer, &maps).expect("valid space"));
    assert!(seq.stats.valid > 0, "{:?}", seq.stats);
    assert!(
        !seq.sample.is_empty(),
        "space too small to exercise sampling"
    );
    for threads in [1, 2, 8] {
        let par = e
            .explore_parallel(&layer, &maps, threads)
            .expect("valid space");
        assert_identical(&seq, par, &format!("trimmed standard, {threads} threads"));
    }
}

#[test]
fn model_explore_is_thread_count_invariant() {
    let e = Explorer::new(SweepSpace::tiny());
    let model = zoo::alexnet(1);
    let maps = variants::variants(Style::KCP);
    let seq = canonical(e.explore_model(&model, &maps).expect("valid space"));
    assert!(seq.stats.valid > 0, "{:?}", seq.stats);
    for threads in [1, 2, 8] {
        let par = e
            .explore_model_parallel(&model, &maps, threads)
            .expect("valid space");
        assert_identical(&seq, par, &format!("alexnet, {threads} threads"));
    }
}

/// Fault isolation: a panicking work unit (injected via the test hook)
/// must not abort the sweep. The run completes, the failed unit is
/// reported in `stats.quarantined`, and the merged result stays
/// bit-identical at 1/2/8/auto threads.
#[test]
fn quarantined_unit_degrades_without_aborting_and_stays_deterministic() {
    let mut e = Explorer::new(SweepSpace::tiny());
    let poisoned_pes = e.space.pes[1];
    e.fail_unit_pes = Some(poisoned_pes);
    let layer = conv_layer();
    let maps = variants::variants(Style::KCP);

    let seq = canonical(e.explore(&layer, &maps).expect("valid space"));
    assert_eq!(
        seq.stats.quarantined.len(),
        1,
        "{:?}",
        seq.stats.quarantined
    );
    assert_eq!(seq.stats.quarantined[0].unit, 1);
    assert!(
        seq.stats.quarantined[0]
            .message
            .contains(&format!("injected failure for PE count {poisoned_pes}")),
        "{}",
        seq.stats.quarantined[0].message
    );
    // The surviving units still produce results.
    assert!(seq.stats.valid > 0, "{:?}", seq.stats);

    for threads in [1, 2, 8, 0] {
        let par = e
            .explore_parallel(&layer, &maps, threads)
            .expect("valid space");
        assert_identical(&seq, par, &format!("quarantine, {threads} threads"));
    }

    // The degraded run found strictly fewer (or equal) points than a
    // healthy one, and a healthy run quarantines nothing.
    let mut healthy = e.clone();
    healthy.fail_unit_pes = None;
    let full = canonical(healthy.explore(&layer, &maps).expect("valid space"));
    assert!(full.stats.quarantined.is_empty());
    assert!(seq.stats.valid <= full.stats.valid);
    assert!(seq.stats.explored < full.stats.explored);
}

#[test]
fn model_explore_quarantines_panicking_units_too() {
    let mut e = Explorer::new(SweepSpace::tiny());
    e.fail_unit_pes = Some(e.space.pes[0]);
    let model = zoo::alexnet(1);
    let maps = variants::variants(Style::KCP);
    let seq = canonical(e.explore_model(&model, &maps).expect("valid space"));
    assert_eq!(seq.stats.quarantined.len(), 1);
    assert_eq!(seq.stats.quarantined[0].unit, 0);
    for threads in [2, 8] {
        let par = e
            .explore_model_parallel(&model, &maps, threads)
            .expect("valid space");
        assert_identical(&seq, par, &format!("model quarantine, {threads} threads"));
    }
}

#[test]
fn auto_thread_count_gives_the_same_result() {
    let e = Explorer::new(SweepSpace::tiny());
    let layer = conv_layer();
    let maps = variants::variants(Style::KCP);
    let seq = canonical(e.explore(&layer, &maps).expect("valid space"));
    // threads == 0 resolves to the host's core count.
    let auto = e.explore_parallel(&layer, &maps, 0).expect("valid space");
    assert_identical(&seq, auto, "auto thread count");
}

/// Observability must not perturb results: with span collection *enabled*
/// (the most invasive configuration — every analyze call and work unit
/// records timing into thread-local buffers flushed to a global sink),
/// the explorer stays bit-identical to an uninstrumented sequential run
/// at 1/2/8/auto threads, and the trace actually covers the run.
#[test]
fn tracing_enabled_preserves_bit_identical_results() {
    let e = Explorer::new(SweepSpace::tiny());
    let layer = conv_layer();
    let maps = variants::variants(Style::KCP);

    // Reference run with collection off.
    let seq = canonical(e.explore(&layer, &maps).expect("valid space"));
    assert!(seq.stats.valid > 0, "{:?}", seq.stats);

    maestro_obs::span::enable();
    let traced = std::panic::catch_unwind(|| {
        let mut runs = Vec::new();
        for threads in [1, 2, 8, 0] {
            runs.push((
                threads,
                e.explore_parallel(&layer, &maps, threads)
                    .expect("valid space"),
            ));
        }
        runs
    });
    maestro_obs::span::disable();
    let events = maestro_obs::span::drain();

    for (threads, par) in traced.expect("traced sweeps completed") {
        assert_identical(&seq, par, &format!("tracing on, {threads} threads"));
    }
    // The trace covered the sweeps: unit spans with nested analysis-stage
    // spans (the staged evaluator emits per-stage spans — tensor/reuse/
    // buffer/noc from `StagedAnalysis::build`, perf from `finish` — rather
    // than the fused `maestro.analysis.analyze` wrapper).
    assert!(
        events.iter().any(|ev| ev.name == "maestro.dse.unit"),
        "no unit spans collected"
    );
    assert!(
        events
            .iter()
            .any(|ev| ev.name.starts_with("maestro.analysis.") && ev.parent.is_some()),
        "no nested analysis spans collected"
    );
}

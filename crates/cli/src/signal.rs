//! Zero-dependency POSIX signal hookup for graceful shutdown.
//!
//! The handler does exactly one async-signal-safe thing: it flips the
//! process-wide interrupt flag ([`maestro_obs::raise_interrupt`] is a
//! single atomic store). Long-running commands (`dse`, `conform`) poll
//! that flag through their [`maestro_obs::CancelToken`] at work-unit /
//! case boundaries, drain in-flight work, write their final artifacts,
//! and exit with code 7 (interrupted-with-partial-results). Nothing is
//! torn down from inside the handler itself.

/// `SIGINT` (Ctrl-C).
const SIGINT: i32 = 2;
/// `SIGTERM` (polite kill, e.g. from a job scheduler).
const SIGTERM: i32 = 15;

#[cfg(unix)]
extern "C" {
    /// `signal(2)`. We use the raw libc binding (no crates) and install a
    /// plain function pointer; the previous disposition is ignored.
    fn signal(signum: i32, handler: usize) -> usize;
}

extern "C" fn on_signal(_signum: i32) {
    maestro_obs::raise_interrupt();
}

/// Route `SIGINT`/`SIGTERM` to the interrupt flag. Idempotent; installed
/// only by the long-running commands so short commands keep the default
/// kill-me-now disposition.
pub fn install_interrupt_handlers() {
    #[cfg(unix)]
    unsafe {
        let handler = on_signal as extern "C" fn(i32) as usize;
        signal(SIGINT, handler);
        signal(SIGTERM, handler);
    }
}

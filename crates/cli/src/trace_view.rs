//! The `maestro trace` explorer: fetch kept traces from a running
//! daemon's `/debug/traces` endpoint (or a saved JSON dump) and render
//! them as an ASCII waterfall or a collapsed-stack (`--folded`) dump
//! that flamegraph tooling consumes directly.

use maestro_serve::{parse_json, Value};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// One decoded trace (the `/debug/traces` element schema).
pub struct TraceView {
    /// 32 hex digits.
    pub id: String,
    /// What ran: `"POST /v1/analyze"`, `"shed"`, `"dse.unit[3]"`.
    pub name: String,
    /// HTTP-style outcome status.
    pub status: u64,
    /// End-to-end duration, microseconds.
    pub total_us: u64,
    /// Tail-sampling keep reason: `error` / `slow` / `sampled`.
    pub kept: String,
    /// `(name, start_us, dur_us)` per attributed phase, in time order.
    pub phases: Vec<(String, u64, u64)>,
}

/// `GET` a path from the daemon over one `Connection: close` request and
/// return the response body. Errors are rendered for the user (they end
/// up in a [`crate::CliError`]).
pub fn fetch(addr: &str, path: &str) -> Result<String, String> {
    let mut s = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    let _ = s.set_read_timeout(Some(Duration::from_secs(10)));
    let _ = s.set_write_timeout(Some(Duration::from_secs(10)));
    s.write_all(
        format!("GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n").as_bytes(),
    )
    .map_err(|e| format!("send to {addr}: {e}"))?;
    let mut raw = String::new();
    s.read_to_string(&mut raw)
        .map_err(|e| format!("read from {addr}: {e}"))?;
    let (head, body) = raw
        .split_once("\r\n\r\n")
        .ok_or_else(|| format!("malformed HTTP response from {addr}"))?;
    let code: u16 = head
        .split_whitespace()
        .nth(1)
        .and_then(|c| c.parse().ok())
        .unwrap_or(0);
    if code != 200 {
        return Err(format!("GET {path}: HTTP {code}: {}", body.trim()));
    }
    Ok(body.to_string())
}

/// Decode a `/debug/traces` listing (`{"traces":[...]}`) or a single
/// trace object into views, preserving order (newest first from the
/// daemon).
pub fn decode_traces(text: &str) -> Result<Vec<TraceView>, String> {
    let v = parse_json(text).map_err(|e| format!("trace JSON: {e}"))?;
    match v.get("traces") {
        Some(Value::Arr(items)) => items.iter().map(decode_one).collect(),
        Some(_) => Err("`traces` is not an array".to_string()),
        None => Ok(vec![decode_one(&v)?]),
    }
}

fn decode_one(v: &Value) -> Result<TraceView, String> {
    let s = |k: &str| v.get(k).and_then(Value::as_str).map(str::to_string);
    let n = |k: &str| v.get(k).and_then(Value::as_u64);
    let mut phases = Vec::new();
    if let Some(Value::Arr(ps)) = v.get("phases") {
        for p in ps {
            phases.push((
                p.get("name")
                    .and_then(Value::as_str)
                    .unwrap_or("?")
                    .to_string(),
                p.get("start_us").and_then(Value::as_u64).unwrap_or(0),
                p.get("dur_us").and_then(Value::as_u64).unwrap_or(0),
            ));
        }
    }
    Ok(TraceView {
        id: s("trace_id").ok_or("trace object is missing `trace_id`")?,
        name: s("name").unwrap_or_default(),
        status: n("status").unwrap_or(0),
        total_us: n("total_us").unwrap_or(0),
        kept: s("kept").unwrap_or_default(),
        phases,
    })
}

/// One summary line for the listing view.
pub fn summary(t: &TraceView) -> String {
    format!(
        "{}  {:>4}  {:>10}  {:<7}  {}",
        t.id,
        t.status,
        fmt_us(t.total_us),
        t.kept,
        t.name
    )
}

/// ASCII waterfall: one bar per phase, scaled to the trace total, with
/// absolute offset and duration on the right.
pub fn waterfall(t: &TraceView) -> String {
    const W: u64 = 40;
    let mut out = format!(
        "trace {}  {}  status={}  total={}  kept={}\n",
        t.id,
        t.name,
        t.status,
        fmt_us(t.total_us),
        t.kept
    );
    let total = t.total_us.max(1);
    for (name, start, dur) in &t.phases {
        let a = (start * W / total).min(W - 1);
        // Ceil the end so a nonzero phase always gets at least one cell.
        let b = ((start + dur) * W).div_ceil(total).clamp(a + 1, W);
        let bar: String = (0..W)
            .map(|i| if i >= a && i < b { '#' } else { '.' })
            .collect();
        out.push_str(&format!(
            "  {name:<10} [{bar}] {:>9} +{}\n",
            fmt_us(*start),
            fmt_us(*dur)
        ));
    }
    out
}

/// Collapsed-stack dump (`request;phase microseconds`), one line per
/// phase — the input format of standard flamegraph scripts.
pub fn folded(t: &TraceView) -> String {
    let root = t.name.replace([' ', ';'], "_");
    let mut out = String::new();
    for (name, _, dur) in &t.phases {
        let frame = name.replace([' ', ';'], "_");
        out.push_str(&format!("{root};{frame} {dur}\n"));
    }
    out
}

fn fmt_us(us: u64) -> String {
    if us >= 1_000_000 {
        format!("{:.2}s", us as f64 / 1e6)
    } else if us >= 1_000 {
        format!("{:.2}ms", us as f64 / 1e3)
    } else {
        format!("{us}us")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"{"traces":[{"trace_id":"00000000000000000000000000000abc","name":"POST /v1/analyze","status":200,"start_unix_ms":1,"total_us":1000,"bytes":42,"kept":"sampled","phases":[{"name":"queue","start_us":0,"dur_us":100},{"name":"parse","start_us":100,"dur_us":100},{"name":"analyze","start_us":200,"dur_us":700},{"name":"serialize","start_us":900,"dur_us":100}]}]}"#;

    #[test]
    fn decodes_listing_and_renders_waterfall() {
        let ts = decode_traces(SAMPLE).expect("decode");
        assert_eq!(ts.len(), 1);
        let t = &ts[0];
        assert_eq!(t.id.len(), 32);
        assert_eq!(t.phases.len(), 4);
        let w = waterfall(t);
        assert!(w.contains("status=200"), "{w}");
        assert!(w.contains("analyze"), "{w}");
        assert!(w.contains('#'), "{w}");
        // The analyze bar dominates: 70% of 40 cells = 28.
        let analyze_line = w
            .lines()
            .find(|l| l.trim_start().starts_with("analyze"))
            .expect("bar");
        assert_eq!(analyze_line.matches('#').count(), 28, "{analyze_line}");
    }

    #[test]
    fn folded_emits_one_stack_line_per_phase() {
        let ts = decode_traces(SAMPLE).expect("decode");
        let f = folded(&ts[0]);
        assert_eq!(f.lines().count(), 4);
        assert!(f.contains("POST_/v1/analyze;analyze 700\n"), "{f}");
    }

    #[test]
    fn single_object_and_hostile_inputs() {
        let one = decode_traces(
            r#"{"trace_id":"ff","name":"shed","status":503,"total_us":5,"kept":"error","phases":[]}"#,
        )
        .expect("single-object form");
        assert_eq!(one.len(), 1);
        assert_eq!(one[0].status, 503);
        assert!(decode_traces("{").is_err());
        assert!(decode_traces(r#"{"name":"no id"}"#).is_err());
    }
}

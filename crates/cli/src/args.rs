//! Minimal command-line argument parsing (no external dependencies).

use std::collections::HashMap;

/// Parsed command line: a subcommand, positional arguments, and
/// `--key value` / `--flag` options.
#[derive(Debug, Clone, Default)]
pub struct Args {
    /// The subcommand (first non-flag argument).
    pub command: String,
    /// Remaining positional arguments.
    pub positional: Vec<String>,
    /// `--key value` options and boolean `--flag`s (value `"true"`).
    pub options: HashMap<String, String>,
}

impl Args {
    /// Parse from an iterator of arguments (excluding `argv[0]`).
    pub fn parse(mut argv: impl Iterator<Item = String>) -> Args {
        let mut args = Args::default();
        let mut pending_key: Option<String> = None;
        for a in argv.by_ref() {
            if let Some(key) = a.strip_prefix("--") {
                if let Some(k) = pending_key.take() {
                    args.options.insert(k, "true".into());
                }
                pending_key = Some(key.to_string());
            } else if let Some(k) = pending_key.take() {
                args.options.insert(k, a);
            } else if args.command.is_empty() {
                args.command = a;
            } else {
                args.positional.push(a);
            }
        }
        if let Some(k) = pending_key.take() {
            args.options.insert(k, "true".into());
        }
        args
    }

    /// String option with a default.
    pub fn get<'a>(&'a self, key: &str, default: &'a str) -> &'a str {
        self.options.get(key).map(String::as_str).unwrap_or(default)
    }

    /// Integer option with a default.
    ///
    /// # Errors
    ///
    /// Returns an error message when the value is not an integer.
    pub fn get_u64(&self, key: &str, default: u64) -> Result<u64, String> {
        match self.options.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("--{key} expects an integer, got `{v}`")),
        }
    }

    /// Floating-point option with a default.
    ///
    /// # Errors
    ///
    /// Returns an error message when the value is not a number.
    pub fn get_f64(&self, key: &str, default: f64) -> Result<f64, String> {
        match self.options.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("--{key} expects a number, got `{v}`")),
        }
    }

    /// Boolean flag.
    pub fn flag(&self, key: &str) -> bool {
        self.options.get(key).is_some_and(|v| v == "true")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Args {
        Args::parse(s.split_whitespace().map(String::from))
    }

    #[test]
    fn subcommand_and_options() {
        let a = parse("analyze --model vgg16 --pes 256 --json");
        assert_eq!(a.command, "analyze");
        assert_eq!(a.get("model", ""), "vgg16");
        assert_eq!(a.get_u64("pes", 64).unwrap(), 256);
        assert!(a.flag("json"));
        assert!(!a.flag("quiet"));
    }

    #[test]
    fn positional_arguments() {
        let a = parse("zoo resnet50 extra");
        assert_eq!(a.command, "zoo");
        assert_eq!(a.positional, vec!["resnet50", "extra"]);
    }

    #[test]
    fn bad_integer_reports_error() {
        let a = parse("x --pes lots");
        assert!(a.get_u64("pes", 1).is_err());
    }

    #[test]
    fn float_options() {
        let a = parse("x --tol-runtime 12.5");
        assert_eq!(a.get_f64("tol-runtime", 1.0).unwrap(), 12.5);
        assert_eq!(a.get_f64("missing", 2.5).unwrap(), 2.5);
        assert!(a.get_f64("tol-runtime", 1.0).is_ok());
        let b = parse("x --tol-l1 wide");
        assert!(b.get_f64("tol-l1", 1.0).is_err());
    }

    #[test]
    fn trailing_flag() {
        let a = parse("x --verbose");
        assert!(a.flag("verbose"));
    }
}

//! `maestro` — command-line front-end for the dataflow cost model.
//!
//! ```text
//! maestro analyze  --model vgg16 --layer CONV2 --dataflow KC-P --pes 256 [--bw 32] [--json]
//! maestro model    --model resnet50 --dataflow YR-P --pes 256 [--adaptive] [--json]
//! maestro dse      --model vgg16 --layer CONV2 --style KC-P [--threads N] [--json]
//! maestro validate --model alexnet --dataflow YR-P --pes 168
//! maestro mapping  --model vgg16 --layer CONV1 --dataflow YR-P --pes 6 --step 0
//! maestro zoo
//! ```
//!
//! `--dataflow` accepts a Table 3 style name (C-P, X-P, YX-P, YR-P, KC-P)
//! or a path to a `.df` file in the textual DSL.

mod args;
mod signal;
mod trace_view;

use args::Args;
use maestro_core::{analyze, analyze_model, analyze_model_with, AnalysisError};
use maestro_dnn::{zoo, Layer, Model, TensorKind};
use maestro_hw::{Accelerator, EnergyModel};
use maestro_ir::{parse::parse_dataflow, Dataflow, Style};
use maestro_sim::{mapping_at_step, validate_network, SimOptions};
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::time::Duration;

/// What class of failure occurred. Each kind maps to a distinct process
/// exit code so scripts can tell them apart without scraping stderr.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ErrorKind {
    /// Bad invocation: unknown command, bad flag value, unreadable input.
    Usage,
    /// A dataflow or network description failed to parse.
    Parse,
    /// The dataflow does not resolve onto the layer / accelerator.
    Resolve,
    /// The cost-model analysis itself failed.
    Analysis,
    /// The conformance harness found model-vs-simulator divergences.
    Conformance,
    /// A signal or deadline cut the run short. Partial results (and a
    /// resumable checkpoint, when requested) were still written.
    Interrupted,
    /// Anything else.
    Other,
}

/// A rendered diagnostic plus its failure class.
#[derive(Debug)]
struct CliError {
    kind: ErrorKind,
    message: String,
}

impl CliError {
    fn new(kind: ErrorKind, message: impl Into<String>) -> Self {
        CliError {
            kind,
            message: message.into(),
        }
    }

    fn usage(message: impl Into<String>) -> Self {
        CliError::new(ErrorKind::Usage, message)
    }

    fn parse(message: impl Into<String>) -> Self {
        CliError::new(ErrorKind::Parse, message)
    }

    fn resolve(message: impl Into<String>) -> Self {
        CliError::new(ErrorKind::Resolve, message)
    }

    fn analysis(message: impl Into<String>) -> Self {
        CliError::new(ErrorKind::Analysis, message)
    }

    fn exit_code(&self) -> ExitCode {
        ExitCode::from(match self.kind {
            ErrorKind::Usage => 2,
            ErrorKind::Parse => 3,
            ErrorKind::Resolve => 4,
            ErrorKind::Analysis => 5,
            ErrorKind::Conformance => 6,
            ErrorKind::Interrupted => 7,
            ErrorKind::Other => 1,
        })
    }
}

impl From<String> for CliError {
    fn from(message: String) -> Self {
        CliError::new(ErrorKind::Other, message)
    }
}

impl From<AnalysisError> for CliError {
    fn from(e: AnalysisError) -> Self {
        match e {
            AnalysisError::Resolve(_) => CliError::resolve(e.to_string()),
            _ => CliError::analysis(e.to_string()),
        }
    }
}

fn main() -> ExitCode {
    let args = Args::parse(std::env::args().skip(1));
    // Span collection is off (one relaxed load per call site) unless the
    // user asked for a trace artifact.
    if !args.get("trace-json", "").is_empty() {
        maestro_obs::span::enable();
    }
    let result = match args.command.as_str() {
        "analyze" => cmd_analyze(&args),
        "model" => cmd_model(&args),
        "dse" => cmd_dse(&args),
        "validate" => cmd_validate(&args),
        "conform" => cmd_conform(&args),
        "serve" => cmd_serve(&args),
        "mapping" => cmd_mapping(&args),
        "explain" => cmd_explain(&args),
        "lint" => cmd_lint(&args),
        "trace" => cmd_trace(&args),
        "tune" => cmd_tune(&args),
        "zoo" => cmd_zoo(),
        "" | "help" | "-h" => {
            print!("{}", USAGE);
            Ok(())
        }
        other => Err(CliError::usage(format!(
            "unknown command `{other}`\n{USAGE}"
        ))),
    };
    // Observability artifacts are written even when the command fails
    // (e.g. `conform` exiting non-zero on divergences still dumps its
    // counters); the command's own error decides the exit code.
    let obs = write_observability(&args);
    match result.and(obs) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {}", e.message);
            e.exit_code()
        }
    }
}

/// Emit the observability artifacts the user asked for: `--metrics
/// <path|->` dumps the global registry in Prometheus text exposition
/// format, `--trace-json <path|->` dumps collected spans as JSONL. `-`
/// writes to stdout. Runs after the command finishes — success or not —
/// so the artifacts always describe the run that happened.
fn write_observability(args: &Args) -> Result<(), CliError> {
    let write = |dest: &str, what: &str, text: String| -> Result<(), CliError> {
        if dest == "-" {
            print!("{text}");
            Ok(())
        } else {
            std::fs::write(dest, text)
                .map_err(|e| CliError::usage(format!("writing {what} to {dest}: {e}")))
        }
    };
    let metrics_dest = args.get("metrics", "");
    if !metrics_dest.is_empty() {
        write(
            metrics_dest,
            "metrics",
            maestro_obs::registry().render_prometheus(),
        )?;
    }
    let trace_dest = args.get("trace-json", "");
    if !trace_dest.is_empty() {
        maestro_obs::span::disable();
        let events = maestro_obs::span::drain();
        write(trace_dest, "trace", maestro_obs::span::to_jsonl(&events))?;
    }
    Ok(())
}

const USAGE: &str = "\
maestro — data-centric DNN dataflow cost model

USAGE:
  maestro analyze  --model <zoo> --layer <name> --dataflow <style|file> --pes <n> [--bw <n>] [--json]
  maestro model    --model <zoo> --dataflow <style|file> --pes <n> [--adaptive] [--json]
  maestro dse      --model <zoo> --layer <name> --style <style> [--threads <n>] [--json]
  maestro validate --model <zoo> --dataflow <style|file> --pes <n>
  maestro conform  [--seed <n>] [--cases <n>] [--max-steps <n>] [--max-seconds <s>] [--tol-runtime <pct>] [--tol-l1 <pct>] [--tol-l2 <pct>] [--tol-util <abs>] [--tol-macs <pct>] [--json]
  maestro serve    [--addr <host:port>] [--workers <n>] [--queue-depth <n>] [--drain-seconds <s>]
  maestro mapping  --model <zoo> --layer <name> --dataflow <style|file> --pes <n> --step <t>
  maestro explain  --model <zoo> --layer <name> --dataflow <style|file> --pes <n>
  maestro lint     --model <zoo> --layer <name> --dataflow <style|file> --pes <n>
  maestro trace    --model <zoo> --layer <name> --dataflow <style|file> --pes <n> [--steps <k>]
  maestro trace    [<id>] --from <host:port> | --file <dump.json> [--folded]
  maestro tune     --model <zoo> --pes <n> [--objective runtime|energy|edp] [--json]
  maestro zoo

Zoo models: vgg16 alexnet resnet50 resnext50 mobilenet_v2 unet dcgan deepspeech2 googlenet efficientnet_b0\n(--model also accepts a path to a Network description file)
Styles (Table 3): C-P X-P YX-P YR-P KC-P

Long-running sweeps (dse):
  --checkpoint <path>        write a resumable checkpoint (atomic temp-file + rename)
  --checkpoint-interval <n>  also checkpoint every n completed units (default 0 = off)
  --checkpoint-secs <s>      checkpoint every s seconds (default 5; 0 = off; a final
                             checkpoint is always written on graceful shutdown)
  --resume <path>            resume from a checkpoint; completed units are skipped
  --deadline <s>             stop gracefully after s seconds with partial results
  --max-seconds <s>          alias for --deadline (conform honors it too)
  --inject <spec>            deterministic fault injection, e.g. panic:0.01,delay:50ms:0.05,nofinite:0.001
  --inject-seed <n>          seed for the fault plan (default 0)
  --retries <n>              re-attempts for a failed unit before quarantine (default 1)
  --unit-timeout <ms>        per-unit watchdog budget (trips only on injected stalls)
  --progress                 stderr progress line with units/s and ETA
  --trace-sample <k|1/k>     record 1-in-k per-unit traces into the flight recorder
                             (quarantined units are always kept)
  --trace-seed <n>           seed for the deterministic per-unit trace IDs (default 0)
  --trace-out <path|->       dump the recorded unit traces as JSON after the sweep
  --eval <staged|full>       cost-model evaluation mode (default staged; bit-identical,
                             staged shares NoC-independent stages across the bw axis)
  --memo-cap <n>             per-unit analysis-cache entry cap (default 4096; 0 = unbounded)

Serving (serve):
  --addr <host:port>         bind address (default 127.0.0.1:7433; port 0 picks a free port)
  --workers <n>              worker threads (default 4)
  --queue-depth <n>          admission queue bound; full queue sheds 503 + Retry-After (default 64)
  --default-deadline-ms <n>  deadline for requests without deadline_ms (default 10000)
  --max-request-threads <n>  cap on the `threads` one /v1/dse request may claim
                             (default 0 = the host's available parallelism)
  --drain-seconds <s>        drain budget after SIGTERM/SIGINT before in-flight
                             requests are cancelled (default 5; forced drain exits 7)
  --io-timeout <s>           socket read/write timeout, slow-loris guard (default 10)
  --max-body-bytes <n>       request body cap, 413 beyond it (default 1048576)
  --shards <n>               shared analysis-cache shards (default 8)
  --memo-cap <n>             per-shard analysis-cache entry cap (default 4096)
  --max-seconds <s>          self-terminate after s seconds (smoke tests)
  --test-endpoints           enable POST /v1/panic (panic-isolation tests only)
  --access-log <path|->      JSONL per-request log with phase attribution (- = stdout)
  --trace-capacity <n>       flight-recorder ring size, last n kept traces (default 256)
  --trace-sample <k|1/k>     keep 1-in-k healthy requests; 5xx/shed/504/slow are
                             always kept (default 16)
  --trace-slow-ms <n>        requests at least this slow are always kept (default 100)
  --trace-seed <n>           fixed trace-ID seed (tests; default: from the clock)
  --sojourn-target-ms <n>    CoDel dequeue-shed target for queue sojourn (default 500; 0 = off)
  --watchdog-interval-ms <n> worker watchdog tick: respawn crashed, supersede wedged (default 250)
  --worker-quorum <n>        live workers needed for /readyz 200 (default 0 = majority)
  --wedge-ms <n>             heartbeat staleness after which a busy worker is wedged
                             (default 30000; 0 = off)
  --chaos <spec>             seeded serve-plane fault injection, e.g.
                             read-err:0.02,write-err:0.02,write-delay:5ms:0.05,worker-panic:0.005,stall:5ms:0.05
  --chaos-seed <n>           seed for the chaos plan (default 0)

Trace explorer (trace --from/--file):
  --from <host:port>         fetch /debug/traces (or /debug/traces/<id>) from a daemon
  --file <path>              read a saved trace dump (e.g. dse --trace-out) instead
  --folded                   collapsed-stack output for flamegraph scripts

Observability (any command):
  --metrics <path|->     dump the metrics registry (Prometheus text format)
  --trace-json <path|->  collect spans and dump them as JSON lines
  MAESTRO_LOG=<level>    stderr diagnostics: error|warn|info|debug|trace (default off)

Exit codes:
  0 ok   1 other   2 usage   3 parse error / corrupt checkpoint   4 unresolvable mapping
  5 analysis failure   6 conformance divergence   7 interrupted (partial results written)
";

fn load_model(name: &str) -> Result<Model, CliError> {
    if let Some(m) = zoo::by_name(name, 1) {
        return Ok(m);
    }
    // Not a zoo name: try it as a network description file.
    let text = std::fs::read_to_string(name).map_err(|e| {
        CliError::usage(format!(
            "`{name}` is not a zoo model and reading it failed: {e}"
        ))
    })?;
    maestro_dnn::parse_network(&text).map_err(|e| CliError::parse(format!("parsing {name}: {e}")))
}

fn load_dataflow(spec: &str) -> Result<Dataflow, CliError> {
    for s in Style::ALL {
        if s.short_name().eq_ignore_ascii_case(spec) || s.alias().eq_ignore_ascii_case(spec) {
            return Ok(s.dataflow());
        }
    }
    let text = std::fs::read_to_string(spec).map_err(|e| {
        CliError::usage(format!(
            "`{spec}` is not a style name and reading it failed: {e}"
        ))
    })?;
    parse_dataflow(&text).map_err(|e| CliError::parse(format!("parsing {spec}: {e}")))
}

fn pick_layer<'m>(model: &'m Model, args: &Args) -> Result<&'m Layer, CliError> {
    let name = args.get("layer", "");
    if name.is_empty() {
        return Err(CliError::usage("missing --layer"));
    }
    model
        .layer(name)
        .ok_or_else(|| CliError::usage(format!("model {} has no layer `{name}`", model.name)))
}

fn accelerator(args: &Args) -> Result<Accelerator, CliError> {
    let pes = args.get_u64("pes", 256).map_err(CliError::usage)?;
    let bw = args.get_u64("bw", 32).map_err(CliError::usage)?;
    let l1 = args.get_u64("l1", 2048).map_err(CliError::usage)?;
    let l2 = args.get_u64("l2", 1 << 20).map_err(CliError::usage)?;
    Ok(Accelerator::builder(pes)
        .noc_bandwidth(bw)
        .l1_bytes(l1)
        .l2_bytes(l2)
        .build())
}

fn cmd_analyze(args: &Args) -> Result<(), CliError> {
    let model = load_model(args.get("model", "vgg16"))?;
    let layer = pick_layer(&model, args)?;
    let df = load_dataflow(args.get("dataflow", "KC-P"))?;
    let acc = accelerator(args)?;
    let report = analyze(layer, &df, &acc)?;
    if args.flag("json") {
        println!(
            "{}",
            serde_json::to_string_pretty(&report).map_err(|e| e.to_string())?
        );
    } else {
        println!("{report}");
        let em = EnergyModel::cacti_28nm(acc.l1_bytes, acc.l2_bytes);
        println!(
            "  energy        {:>14.3e} pJ (CACTI-style 28nm)",
            report.energy(&em)
        );
        for k in TensorKind::ALL {
            println!(
                "  {k:<7} reuse {:>14.1} (algorithmic max {:.1})",
                report.reuse_factor(k),
                report.algorithmic_max_reuse(k)
            );
        }
    }
    Ok(())
}

fn cmd_model(args: &Args) -> Result<(), CliError> {
    let model = load_model(args.get("model", "vgg16"))?;
    let acc = accelerator(args)?;
    let report = if args.flag("adaptive") {
        analyze_model_with(&model, &acc, |layer| {
            Style::ALL
                .iter()
                .map(|s| s.dataflow())
                .filter(|df| analyze(layer, df, &acc).is_ok())
                .min_by(|a, b| {
                    let ra = analyze(layer, a, &acc)
                        .map(|r| r.runtime)
                        .unwrap_or(f64::MAX);
                    let rb = analyze(layer, b, &acc)
                        .map(|r| r.runtime)
                        .unwrap_or(f64::MAX);
                    ra.total_cmp(&rb)
                })
                .unwrap_or_else(|| Style::KCP.dataflow())
        })
    } else {
        let df = load_dataflow(args.get("dataflow", "KC-P"))?;
        analyze_model(&model, &df, &acc)
    }
    .map_err(CliError::from)?;
    if args.flag("json") {
        println!(
            "{}",
            serde_json::to_string_pretty(&report).map_err(|e| e.to_string())?
        );
    } else {
        println!("{report}");
        let em = EnergyModel::cacti_28nm(acc.l1_bytes, acc.l2_bytes);
        println!(
            "total: {:.3e} cycles, {:.3e} pJ",
            report.runtime(),
            report.energy(&em)
        );
    }
    Ok(())
}

/// Map a checkpoint failure onto the documented exit-code families:
/// unreadable/unwritable files are usage errors (2); corruption, version
/// or fingerprint mismatches are parse-class errors (3).
fn checkpoint_error(e: &maestro_dse::CheckpointError) -> CliError {
    match e {
        maestro_dse::CheckpointError::Io { .. } => CliError::usage(e.to_string()),
        _ => CliError::parse(e.to_string()),
    }
}

fn session_error(e: &maestro_dse::SessionError) -> CliError {
    match e {
        maestro_dse::SessionError::Space(e) => CliError::analysis(e.to_string()),
        maestro_dse::SessionError::Checkpoint(e) => checkpoint_error(e),
    }
}

/// Build the interruption-proofing controls for `dse` from its flags.
/// Returns the controls plus whether `--resume` was given. Also installs
/// the SIGINT/SIGTERM handler: the returned token heeds the process-wide
/// interrupt flag, so a signal drains in-flight units and the command
/// exits 7 with partial results instead of dying mid-write.
fn session_ctl(args: &Args, threads: usize) -> Result<(maestro_dse::SessionCtl, bool), CliError> {
    signal::install_interrupt_handlers();
    let mut ctl = maestro_dse::SessionCtl {
        token: maestro_dse::CancelToken::new(),
        ..Default::default()
    };
    // --deadline and --max-seconds are aliases; the latter exists so CI
    // can pass one uniform guard to both `dse` and `conform`.
    let deadline = args.get_f64("deadline", 0.0).map_err(CliError::usage)?;
    let max_seconds = args.get_f64("max-seconds", 0.0).map_err(CliError::usage)?;
    let budget = if deadline > 0.0 {
        deadline
    } else {
        max_seconds
    };
    if budget > 0.0 {
        ctl.token.set_deadline_in(Duration::from_secs_f64(budget));
    }
    let ckpt = args.get("checkpoint", "");
    if !ckpt.is_empty() {
        ctl.checkpoint_path = Some(PathBuf::from(ckpt));
    }
    // Cadence: by default, periodic checkpoints are time-based (every 5s,
    // bounding overhead on any workload); --checkpoint-interval N adds a
    // unit-count trigger on top. The final checkpoint on shutdown is
    // unconditional either way.
    ctl.checkpoint_every_units = usize::try_from(
        args.get_u64("checkpoint-interval", 0)
            .map_err(CliError::usage)?,
    )
    .map_err(|_| CliError::usage("--checkpoint-interval is too large"))?;
    let ckpt_secs = args
        .get_f64("checkpoint-secs", 5.0)
        .map_err(CliError::usage)?;
    ctl.checkpoint_every = (ckpt_secs > 0.0).then(|| Duration::from_secs_f64(ckpt_secs));
    let resume = args.get("resume", "");
    let resumed = !resume.is_empty();
    if resumed {
        let cp =
            maestro_dse::Checkpoint::load(Path::new(resume)).map_err(|e| checkpoint_error(&e))?;
        // Keep checkpointing the file we resumed from (unless the user
        // pointed --checkpoint elsewhere) so repeated interrupt/resume
        // cycles keep accumulating progress in one place.
        if ctl.checkpoint_path.is_none() {
            ctl.checkpoint_path = Some(PathBuf::from(resume));
        }
        ctl.resume = Some(cp);
    }
    let inject = args.get("inject", "");
    if !inject.is_empty() {
        let seed = args.get_u64("inject-seed", 0).map_err(CliError::usage)?;
        ctl.faults = maestro_dse::FaultPlan::parse(inject, seed)
            .map_err(|e| CliError::usage(e.to_string()))?;
    }
    ctl.retries = u32::try_from(args.get_u64("retries", 1).map_err(CliError::usage)?)
        .map_err(|_| CliError::usage("--retries is too large"))?;
    let trace_sample = args.get("trace-sample", "");
    if !trace_sample.is_empty() {
        ctl.trace_sample = Some(parse_sample(trace_sample)?);
        ctl.trace_seed = args.get_u64("trace-seed", 0).map_err(CliError::usage)?;
    }
    let timeout_ms = args.get_u64("unit-timeout", 0).map_err(CliError::usage)?;
    if timeout_ms > 0 {
        ctl.unit_timeout = Some(Duration::from_millis(timeout_ms));
    }
    if args.flag("progress") {
        let workers = maestro_dse::resolve_threads(threads);
        ctl.on_progress = Some(Box::new(move |done, total| {
            // Same histogram handle the workers feed (the bounds must
            // match the registration inside maestro-dse); its mean gives
            // seconds per unit per worker.
            let h = maestro_obs::registry().histogram(
                "maestro.dse.unit_seconds",
                &maestro_dse::unit_seconds_buckets(),
            );
            let (count, sum) = (h.count(), h.sum());
            if count == 0 || sum <= 0.0 {
                eprintln!("progress: {done}/{total} units");
            } else {
                let mean = sum / count as f64;
                let rate = workers as f64 / mean;
                let eta = (total.saturating_sub(done)) as f64 * mean / workers as f64;
                eprintln!("progress: {done}/{total} units — {rate:.1} units/s, ETA {eta:.0}s");
            }
        }));
    }
    Ok((ctl, resumed))
}

/// Parse a `--trace-sample` rate: `K` or `1/K`, keeping 1 in `K`
/// (`1` = keep everything).
fn parse_sample(spec: &str) -> Result<u64, CliError> {
    let k = spec.strip_prefix("1/").unwrap_or(spec);
    let k: u64 = k
        .parse()
        .map_err(|_| CliError::usage(format!("--trace-sample expects K or 1/K, got `{spec}`")))?;
    if k == 0 {
        return Err(CliError::usage("--trace-sample must be at least 1"));
    }
    Ok(k)
}

fn cmd_dse(args: &Args) -> Result<(), CliError> {
    let model = load_model(args.get("model", "vgg16"))?;
    let layer = pick_layer(&model, args)?;
    let style_name = args.get("style", "KC-P");
    let style = Style::ALL
        .into_iter()
        .find(|s| s.short_name().eq_ignore_ascii_case(style_name))
        .ok_or_else(|| CliError::usage(format!("unknown style `{style_name}`")))?;
    // 0 = one worker per core; results are identical at any thread count.
    let threads = usize::try_from(args.get_u64("threads", 0).map_err(CliError::usage)?)
        .map_err(|_| CliError::usage("--threads is too large"))?;
    let (ctl, resumed) = session_ctl(args, threads)?;
    let mut explorer = maestro_dse::Explorer::new(maestro_dse::SweepSpace::standard());
    explorer.eval = args
        .get("eval", "staged")
        .parse::<maestro_dse::EvalMode>()
        .map_err(CliError::usage)?;
    explorer.memo_cap = usize::try_from(
        args.get_u64("memo-cap", maestro_core::DEFAULT_CACHE_CAP as u64)
            .map_err(CliError::usage)?,
    )
    .map_err(|_| CliError::usage("--memo-cap is too large"))?;
    let (result, session) = explorer
        .explore_session(
            layer,
            &maestro_dse::variants::variants(style),
            threads,
            &ctl,
        )
        .map_err(|e| session_error(&e))?;
    if resumed {
        // stderr so `--json` stdout stays machine-parseable.
        eprintln!("resumed: {} units skipped", session.resumed_skipped);
    }
    // Per-unit traces, when sampled: dump whatever the flight recorder
    // kept (drawn units plus every quarantined one) — even on an
    // interrupted run, where attribution matters most.
    let trace_out = args.get("trace-out", "");
    if !trace_out.is_empty() {
        let dump =
            maestro_obs::trace::records_to_json(&maestro_obs::FlightRecorder::global().recent());
        if trace_out == "-" {
            println!("{dump}");
        } else {
            std::fs::write(trace_out, dump)
                .map_err(|e| CliError::usage(format!("writing traces to {trace_out}: {e}")))?;
        }
    }
    // An interrupted session still prints everything it has — the partial
    // frontier is the whole point of graceful shutdown — and then exits 7.
    let interrupted_err = session.interrupted.then(|| {
        let resume_hint = ctl
            .checkpoint_path
            .as_ref()
            .map(|p| format!(" (resume with --resume {})", p.display()))
            .unwrap_or_default();
        CliError::new(
            ErrorKind::Interrupted,
            format!(
                "interrupted after {} of {} units — partial results emitted{resume_hint}",
                session.completed_units, session.total_units
            ),
        )
    });
    if args.flag("json") {
        println!(
            "{}",
            serde_json::to_string_pretty(&result).map_err(|e| e.to_string())?
        );
        return match interrupted_err {
            Some(e) => Err(e),
            None => Ok(()),
        };
    }
    let s = &result.stats;
    println!(
        "explored {} designs in {:.2}s — {:.2e} designs/s",
        s.explored, s.seconds, s.rate
    );
    println!(
        "  cost model      {} evaluated, {} memo hits ({:.1}% hit rate)",
        s.evaluated,
        s.memo_hits,
        100.0 * s.memo_hit_rate()
    );
    println!(
        "  filtered        {} capacity-skipped, {} non-finite dropped",
        s.capacity_skipped, s.nonfinite_dropped
    );
    println!(
        "  valid           {} points ({} Pareto insertions, {} rejections)",
        s.valid, s.pareto_inserted, s.pareto_rejected
    );
    if s.quarantined.is_empty() {
        println!("  quarantined     0 work units");
    } else {
        // Degraded coverage is always surfaced in the summary; the
        // per-unit panic payloads were already logged (at warn level)
        // by the merge, so they are not repeated here.
        println!(
            "  quarantined     {} work units — coverage is incomplete",
            s.quarantined.len()
        );
    }
    let show = |tag: &str, p: &Option<maestro_dse::DesignPoint>| {
        if let Some(p) = p {
            println!(
                "{tag}: {} PEs, NoC {}, L1 {} B, L2 {} B, map {} -> {:.1} MACs/cyc, {:.3e} pJ, {:.1} mm2, {:.0} mW",
                p.pes, p.noc_bw, p.l1_bytes, p.l2_bytes, p.mapping, p.throughput, p.energy, p.area_mm2, p.power_mw
            );
        }
    };
    if session.checkpoint_writes > 0
        || session.units_retried > 0
        || session.units_timed_out > 0
        || session.faults_injected > 0
    {
        println!(
            "  session         {} checkpoint writes, {} retries, {} timeouts, {} faults injected",
            session.checkpoint_writes,
            session.units_retried,
            session.units_timed_out,
            session.faults_injected
        );
    }
    show("throughput-optimized", &result.best_throughput);
    show("energy-optimized    ", &result.best_energy);
    show("EDP-optimized       ", &result.best_edp);
    if result.partial {
        println!(
            "Pareto front: {} points (PARTIAL — {} of {} units completed)",
            result.pareto.len(),
            session.completed_units,
            session.total_units
        );
    } else {
        println!("Pareto front: {} points", result.pareto.len());
    }
    match interrupted_err {
        Some(e) => Err(e),
        None => Ok(()),
    }
}

fn cmd_validate(args: &Args) -> Result<(), CliError> {
    let model = load_model(args.get("model", "vgg16"))?;
    let df = load_dataflow(args.get("dataflow", "KC-P"))?;
    let acc = accelerator(args)?;
    let (points, mean) = validate_network(&model, &df, &acc, SimOptions::default());
    for p in &points {
        println!("{p}");
    }
    println!(
        "mean absolute runtime error: {mean:.2}% over {} layers",
        points.len()
    );
    Ok(())
}

fn cmd_conform(args: &Args) -> Result<(), CliError> {
    let d = maestro_sim::ConformConfig::default();
    let cfg = maestro_sim::ConformConfig {
        seed: args.get_u64("seed", d.seed).map_err(CliError::usage)?,
        cases: args.get_u64("cases", d.cases).map_err(CliError::usage)?,
        max_steps: args
            .get_u64("max-steps", d.max_steps)
            .map_err(CliError::usage)?,
        tol: maestro_sim::Tolerances {
            runtime_pct: args
                .get_f64("tol-runtime", d.tol.runtime_pct)
                .map_err(CliError::usage)?,
            l1_pct: args
                .get_f64("tol-l1", d.tol.l1_pct)
                .map_err(CliError::usage)?,
            l2_pct: args
                .get_f64("tol-l2", d.tol.l2_pct)
                .map_err(CliError::usage)?,
            utilization_abs: args
                .get_f64("tol-util", d.tol.utilization_abs)
                .map_err(CliError::usage)?,
            model_macs_pct: args
                .get_f64("tol-macs", d.tol.model_macs_pct)
                .map_err(CliError::usage)?,
        },
    };
    // `conform` is the other long-running command: it honors the same
    // --max-seconds guard and SIGINT/SIGTERM semantics as `dse`, exiting 7
    // with a partial (but fully reported) sweep when cut short.
    signal::install_interrupt_handlers();
    let token = maestro_obs::CancelToken::new();
    let max_seconds = args.get_f64("max-seconds", 0.0).map_err(CliError::usage)?;
    if max_seconds > 0.0 {
        token.set_deadline_in(Duration::from_secs_f64(max_seconds));
    }
    let report = maestro_sim::run_conform_cancellable(&cfg, &token);
    if args.flag("json") {
        println!(
            "{}",
            serde_json::to_string_pretty(&report).map_err(|e| e.to_string())?
        );
    } else {
        println!(
            "conform: seed {} — {} cases, {} compared, {} diverged",
            report.seed,
            report.cases,
            report.compared,
            report.diverged.len()
        );
        println!(
            "  skipped         {} unresolvable, {} model errors, {} over step budget",
            report.skipped_resolve, report.skipped_analysis, report.skipped_steps
        );
        if report.interrupted {
            println!(
                "  interrupted     after {} of {} cases — partial report",
                report.cases, cfg.cases
            );
        }
        println!(
            "  tolerances      runtime {}%, L1 {}%, L2 {}%, |util| {}, model-MACs {}%",
            cfg.tol.runtime_pct,
            cfg.tol.l1_pct,
            cfg.tol.l2_pct,
            cfg.tol.utilization_abs,
            cfg.tol.model_macs_pct
        );
        for dc in &report.diverged {
            println!("\ncase {} diverged — original: {}", dc.index, dc.original);
            println!("shrunk to: {}", dc.shrunk);
            for div in &dc.divergences {
                println!("  {div}");
            }
            println!("--- reproducer ---\n{}", dc.reproducer);
        }
    }
    if !report.is_clean() {
        // Divergence outranks interruption: a failed conformance check
        // must fail loudly even when the run was also cut short.
        Err(CliError::new(
            ErrorKind::Conformance,
            format!(
                "{} of {} compared cases diverged beyond tolerance (seed {})",
                report.diverged.len(),
                report.compared,
                report.seed
            ),
        ))
    } else if report.interrupted {
        Err(CliError::new(
            ErrorKind::Interrupted,
            format!(
                "interrupted after {} of {} cases — partial conformance report (seed {})",
                report.cases, cfg.cases, report.seed
            ),
        ))
    } else {
        Ok(())
    }
}

fn cmd_serve(args: &Args) -> Result<(), CliError> {
    let to_usize = |v: u64, what: &str| -> Result<usize, CliError> {
        usize::try_from(v).map_err(|_| CliError::usage(format!("--{what} is too large")))
    };
    let cfg = maestro_serve::ServeConfig {
        addr: args.get("addr", "127.0.0.1:7433").to_string(),
        workers: to_usize(
            args.get_u64("workers", 4).map_err(CliError::usage)?,
            "workers",
        )?,
        queue_depth: to_usize(
            args.get_u64("queue-depth", 64).map_err(CliError::usage)?,
            "queue-depth",
        )?,
        default_deadline: Duration::from_millis(
            args.get_u64("default-deadline-ms", 10_000)
                .map_err(CliError::usage)?,
        ),
        drain_deadline: Duration::from_secs_f64(
            args.get_f64("drain-seconds", 5.0)
                .map_err(CliError::usage)?,
        ),
        max_body_bytes: to_usize(
            args.get_u64("max-body-bytes", 1024 * 1024)
                .map_err(CliError::usage)?,
            "max-body-bytes",
        )?,
        io_timeout: Duration::from_secs_f64(
            args.get_f64("io-timeout", 10.0).map_err(CliError::usage)?,
        ),
        memo_cap: to_usize(
            args.get_u64("memo-cap", maestro_core::DEFAULT_CACHE_CAP as u64)
                .map_err(CliError::usage)?,
            "memo-cap",
        )?,
        shards: to_usize(
            args.get_u64("shards", 8).map_err(CliError::usage)?,
            "shards",
        )?,
        test_endpoints: args.flag("test-endpoints"),
        access_log: {
            let dest = args.get("access-log", "");
            (!dest.is_empty()).then(|| dest.to_string())
        },
        trace_capacity: to_usize(
            args.get_u64("trace-capacity", 256)
                .map_err(CliError::usage)?,
            "trace-capacity",
        )?,
        trace_sample: parse_sample(args.get("trace-sample", "16"))?,
        trace_slow: Duration::from_millis(
            args.get_u64("trace-slow-ms", 100)
                .map_err(CliError::usage)?,
        ),
        trace_seed: if args.get("trace-seed", "").is_empty() {
            None
        } else {
            Some(args.get_u64("trace-seed", 0).map_err(CliError::usage)?)
        },
        max_request_threads: to_usize(
            args.get_u64("max-request-threads", 0)
                .map_err(CliError::usage)?,
            "max-request-threads",
        )?,
        sojourn_target: Duration::from_millis(
            args.get_u64("sojourn-target-ms", 500)
                .map_err(CliError::usage)?,
        ),
        watchdog_interval: Duration::from_millis(
            args.get_u64("watchdog-interval-ms", 250)
                .map_err(CliError::usage)?
                .max(10),
        ),
        worker_quorum: to_usize(
            args.get_u64("worker-quorum", 0).map_err(CliError::usage)?,
            "worker-quorum",
        )?,
        wedge_after: Duration::from_millis(
            args.get_u64("wedge-ms", 30_000).map_err(CliError::usage)?,
        ),
        chaos: {
            let spec = args.get("chaos", "");
            (!spec.is_empty()).then(|| spec.to_string())
        },
        chaos_seed: args.get_u64("chaos-seed", 0).map_err(CliError::usage)?,
    };
    // SIGTERM/SIGINT raise the process interrupt flag, which this heeding
    // token observes — tripping it starts the drain.
    signal::install_interrupt_handlers();
    let shutdown = maestro_obs::CancelToken::new();
    let max_seconds = args.get_f64("max-seconds", 0.0).map_err(CliError::usage)?;
    if max_seconds > 0.0 {
        shutdown.set_deadline_in(Duration::from_secs_f64(max_seconds));
    }
    let requested = cfg.addr.clone();
    let server = maestro_serve::Server::bind(cfg)
        .map_err(|e| CliError::usage(format!("cannot bind {requested}: {e}")))?;
    let addr = server
        .local_addr()
        .map_err(|e| CliError::new(ErrorKind::Other, format!("local_addr: {e}")))?;
    // Scripted clients (the ci smoke, loadgen wrappers) read this line to
    // learn the port when `--addr ...:0` picked one.
    println!("serving on {addr}");
    match server
        .run(&shutdown)
        .map_err(|e| CliError::new(ErrorKind::Other, format!("serve: {e}")))?
    {
        maestro_serve::DrainOutcome::Clean => Ok(()),
        maestro_serve::DrainOutcome::Forced => Err(CliError::new(
            ErrorKind::Interrupted,
            "drain deadline expired — in-flight requests were cancelled (their 504 responses were still written)",
        )),
    }
}

fn cmd_mapping(args: &Args) -> Result<(), CliError> {
    let model = load_model(args.get("model", "vgg16"))?;
    let layer = pick_layer(&model, args)?;
    let df = load_dataflow(args.get("dataflow", "YR-P"))?;
    let pes = args.get_u64("pes", 6).map_err(CliError::usage)?;
    let step = args.get_u64("step", 0).map_err(CliError::usage)?;
    let maps =
        mapping_at_step(layer, &df, pes, step).map_err(|e| CliError::analysis(e.to_string()))?;
    println!("{} / {} / {} PEs / t={step}", layer.name, df.name(), pes);
    for m in maps {
        print!("PE{:<3} [{:?}]", m.pe, m.unit_coords);
        for (kind, ranges) in TensorKind::ALL.iter().zip(&m.ranges) {
            print!("  {kind}: ");
            for (d, iv) in ranges {
                print!("{d}:{}-{} ", iv.start, iv.start + iv.len.saturating_sub(1));
            }
        }
        println!();
    }
    Ok(())
}

fn cmd_explain(args: &Args) -> Result<(), CliError> {
    let model = load_model(args.get("model", "vgg16"))?;
    let layer = pick_layer(&model, args)?;
    let df = load_dataflow(args.get("dataflow", "KC-P"))?;
    let acc = accelerator(args)?;
    let explanation =
        maestro_core::explain(layer, &df, &acc).map_err(|e| CliError::resolve(e.to_string()))?;
    print!("{explanation}");
    Ok(())
}

fn cmd_lint(args: &Args) -> Result<(), CliError> {
    let model = load_model(args.get("model", "vgg16"))?;
    let layer = pick_layer(&model, args)?;
    let df = load_dataflow(args.get("dataflow", "KC-P"))?;
    let acc = accelerator(args)?;
    let lints =
        maestro_core::lint(layer, &df, &acc).map_err(|e| CliError::resolve(e.to_string()))?;
    if lints.is_empty() {
        println!("no findings: {} maps cleanly onto {}", df.name(), acc.name);
    } else {
        for l in &lints {
            println!("warning: {l}");
        }
    }
    Ok(())
}

/// `maestro trace` is two tools behind one name. With `--from` (a
/// daemon's `/debug/traces`) or `--file` (a saved dump) it is the
/// request-trace explorer: a listing, an ASCII waterfall per trace, or
/// `--folded` collapsed stacks for flamegraph scripts. Otherwise it is
/// the original simulator step trace (`--model/--layer/...`).
fn cmd_trace(args: &Args) -> Result<(), CliError> {
    let from = args.get("from", "");
    let file = args.get("file", "");
    if !from.is_empty() || !file.is_empty() {
        return cmd_trace_explorer(args, from, file);
    }
    let model = load_model(args.get("model", "vgg16"))?;
    let layer = pick_layer(&model, args)?;
    let df = load_dataflow(args.get("dataflow", "KC-P"))?;
    let pes = args.get_u64("pes", 256).map_err(CliError::usage)?;
    let steps = args.get_u64("steps", 16).map_err(CliError::usage)?;
    let t = maestro_sim::trace(layer, &df, pes, steps)
        .map_err(|e| CliError::analysis(e.to_string()))?;
    println!(
        "{} / {} / {} PEs — showing {} of {} steps",
        layer.name,
        df.name(),
        pes,
        t.steps.len(),
        t.total_steps
    );
    println!(
        "{:<6} {:>8} {:>10} {:>10} {:>10} {:>10} {:>8}",
        "step", "loop", "new In", "new Wt", "new Out", "MACs", "PEs"
    );
    for s in &t.steps {
        println!(
            "{:<6} {:>8} {:>10} {:>10} {:>10} {:>10} {:>8}",
            s.step,
            s.advanced.map_or("-".to_string(), |j| j.to_string()),
            s.new_data[0],
            s.new_data[1],
            s.new_data[2],
            s.macs,
            s.active_pes
        );
    }
    Ok(())
}

fn cmd_trace_explorer(args: &Args, from: &str, file: &str) -> Result<(), CliError> {
    let id = args
        .positional
        .first()
        .map(String::as_str)
        .unwrap_or_default();
    let text = if !from.is_empty() {
        let path = if id.is_empty() {
            "/debug/traces".to_string()
        } else {
            format!("/debug/traces/{id}")
        };
        trace_view::fetch(from, &path).map_err(CliError::usage)?
    } else {
        std::fs::read_to_string(file)
            .map_err(|e| CliError::usage(format!("reading {file}: {e}")))?
    };
    let mut traces = trace_view::decode_traces(&text).map_err(CliError::parse)?;
    if !id.is_empty() {
        // The daemon path already filtered; this covers `--file` dumps
        // (and tolerates abbreviated IDs either way).
        traces.retain(|t| t.id.starts_with(id) || t.id.trim_start_matches('0') == id);
        if traces.is_empty() {
            return Err(CliError::usage(format!("no trace matching `{id}`")));
        }
    }
    if args.flag("folded") {
        for t in &traces {
            print!("{}", trace_view::folded(t));
        }
        return Ok(());
    }
    if id.is_empty() && traces.len() > 1 {
        println!(
            "{:<32}  {:>4}  {:>10}  {:<7}  name",
            "trace", "code", "total", "kept"
        );
        for t in &traces {
            println!("{}", trace_view::summary(t));
        }
        println!("\n(`maestro trace <id> ...` for a waterfall)");
    } else {
        for t in &traces {
            print!("{}", trace_view::waterfall(t));
        }
    }
    Ok(())
}

fn cmd_tune(args: &Args) -> Result<(), CliError> {
    let model = load_model(args.get("model", "vgg16"))?;
    let acc = accelerator(args)?;
    let em = EnergyModel::cacti_28nm(acc.l1_bytes, acc.l2_bytes);
    let objective = match args.get("objective", "runtime") {
        "runtime" => maestro_dse::Objective::Runtime,
        "energy" => maestro_dse::Objective::Energy(em),
        "edp" => maestro_dse::Objective::Edp(em),
        other => return Err(CliError::usage(format!("unknown objective `{other}`"))),
    };
    let tuned = maestro_dse::tune_model(&model, &acc, objective);
    if args.flag("json") {
        println!(
            "{}",
            serde_json::to_string_pretty(&tuned).map_err(|e| e.to_string())?
        );
        return Ok(());
    }
    println!(
        "tuned {} for {objective} on {} PEs ({} distinct dataflows):",
        tuned.model,
        acc.num_pes,
        tuned.distinct_dataflows()
    );
    for l in &tuned.layers {
        println!(
            "  {:<18} -> {:<20} {:>12.0} cyc {:>8.1} MAC/cy",
            l.layer,
            l.dataflow.name(),
            l.report.runtime,
            l.report.throughput()
        );
    }
    println!(
        "total: {:.3e} cycles, {:.3e} pJ",
        tuned.runtime(),
        tuned.energy(&em)
    );
    Ok(())
}

fn cmd_zoo() -> Result<(), CliError> {
    for name in [
        "vgg16",
        "alexnet",
        "resnet50",
        "resnext50",
        "mobilenet_v2",
        "unet",
        "dcgan",
        "deepspeech2",
        "googlenet",
        "efficientnet_b0",
    ] {
        let m = load_model(name)?;
        println!(
            "{:<13} {:>3} layers, {:>14} MACs",
            name,
            m.len(),
            m.total_macs()
        );
    }
    Ok(())
}

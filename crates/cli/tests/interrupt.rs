//! End-to-end interruption tests driving the `maestro` binary: a SIGINT
//! mid-sweep must exit with code 7 *quickly*, leaving behind a loadable
//! checkpoint, a `"partial": true` frontier on stdout, and flushed
//! observability artifacts; a follow-up `--resume` run reports the
//! skipped units and completes cleanly.

#![cfg(unix)]

use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

fn scratch(tag: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!(
        "maestro-cli-interrupt-{}-{tag}",
        std::process::id()
    ));
    p
}

/// Spawn a dse sweep stretched by injected delays so signals reliably
/// land mid-flight.
fn spawn_slow_dse(ckpt: &std::path::Path, metrics: &std::path::Path) -> Child {
    Command::new(env!("CARGO_BIN_EXE_maestro"))
        .args([
            "dse",
            "--model",
            "vgg16",
            "--layer",
            "CONV5",
            "--style",
            "KC-P",
            "--threads",
            "2",
            "--inject",
            "delay:400ms:1.0",
            "--checkpoint",
            &ckpt.display().to_string(),
            "--metrics",
            &metrics.display().to_string(),
            "--json",
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn maestro binary")
}

fn signal(child: &Child, sig: &str) {
    let ok = Command::new("kill")
        .args([sig, &child.id().to_string()])
        .status()
        .expect("spawn kill")
        .success();
    assert!(ok, "kill {sig} failed");
}

/// Wait for exit with a hard deadline, returning (exit_code, elapsed).
fn wait_within(child: &mut Child, limit: Duration) -> (i32, Duration) {
    let start = Instant::now();
    loop {
        if let Some(status) = child.try_wait().expect("try_wait") {
            return (status.code().expect("exit code"), start.elapsed());
        }
        if start.elapsed() > limit {
            let _ = child.kill();
            panic!("binary did not exit within {limit:?} after the signal");
        }
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// Drain the child's stdout/stderr from background threads. The partial
/// JSON frontier can exceed the 64 KiB pipe buffer, so the pipes must be
/// read *while* the child shuts down or it blocks mid-write and never
/// exits.
fn reader_threads(child: &mut Child) -> [std::thread::JoinHandle<String>; 2] {
    use std::io::Read;
    let mut stdout = child.stdout.take().expect("piped stdout");
    let mut stderr = child.stderr.take().expect("piped stderr");
    [
        std::thread::spawn(move || {
            let mut s = String::new();
            let _ = stdout.read_to_string(&mut s);
            s
        }),
        std::thread::spawn(move || {
            let mut s = String::new();
            let _ = stderr.read_to_string(&mut s);
            s
        }),
    ]
}

#[test]
fn sigint_exits_7_with_checkpoint_partial_frontier_and_metrics() {
    let ckpt = scratch("sigint.ckpt");
    let metrics = scratch("sigint.prom");
    let _ = std::fs::remove_file(&ckpt);
    let _ = std::fs::remove_file(&metrics);

    let mut child = spawn_slow_dse(&ckpt, &metrics);
    let [out_reader, err_reader] = reader_threads(&mut child);
    // Let a few units finish (12 units x 400ms on 2 threads ≈ 2.4s total).
    std::thread::sleep(Duration::from_millis(900));
    signal(&child, "-INT");
    let (code, elapsed) = wait_within(&mut child, Duration::from_secs(2));
    assert_eq!(code, 7, "SIGINT must exit interrupted-with-partial-results");
    assert!(
        elapsed < Duration::from_secs(2),
        "graceful shutdown took {elapsed:?}"
    );
    let stdout = out_reader.join().expect("stdout reader");
    let stderr = err_reader.join().expect("stderr reader");
    assert!(
        stdout.contains("\"partial\": true"),
        "stdout lacks the partial marker:\n{stdout}"
    );
    assert!(
        stderr.contains("interrupted after"),
        "stderr lacks the interruption diagnostic:\n{stderr}"
    );

    // The checkpoint must be a valid, non-empty resume artifact.
    let text = std::fs::read_to_string(&ckpt).expect("checkpoint written");
    assert!(text.starts_with("maestro-dse-checkpoint v1"), "{text}");
    assert!(text.contains("unit "), "no completed units in:\n{text}");

    // Observability sinks are flushed on the interrupted path too.
    let prom = std::fs::read_to_string(&metrics).expect("metrics written");
    assert!(
        prom.contains("maestro_dse_units_completed"),
        "metrics not flushed:\n{prom}"
    );

    // Resume from the checkpoint: reports the skip, finishes, exits 0.
    let out = Command::new(env!("CARGO_BIN_EXE_maestro"))
        .args([
            "dse",
            "--model",
            "vgg16",
            "--layer",
            "CONV5",
            "--style",
            "KC-P",
            "--threads",
            "2",
            "--resume",
            &ckpt.display().to_string(),
            "--json",
        ])
        .output()
        .expect("spawn resume run");
    assert_eq!(out.status.code(), Some(0), "resume run failed");
    let rerr = String::from_utf8_lossy(&out.stderr);
    assert!(
        rerr.contains("resumed:") && rerr.contains("units skipped"),
        "resume did not report skipped units:\n{rerr}"
    );
    let rout = String::from_utf8_lossy(&out.stdout);
    assert!(rout.contains("\"partial\": false"), "{rout}");

    let _ = std::fs::remove_file(&ckpt);
    let _ = std::fs::remove_file(&metrics);
}

#[test]
fn deadline_exits_7_and_progress_reports_eta() {
    let out = Command::new(env!("CARGO_BIN_EXE_maestro"))
        .args([
            "dse",
            "--model",
            "vgg16",
            "--layer",
            "CONV5",
            "--style",
            "KC-P",
            "--threads",
            "1",
            "--inject",
            "delay:200ms:1.0",
            "--deadline",
            "0.5",
            "--progress",
        ])
        .output()
        .expect("spawn deadline run");
    assert_eq!(
        out.status.code(),
        Some(7),
        "deadline must exit interrupted: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("PARTIAL"), "{stdout}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("progress:") && stderr.contains("ETA"),
        "--progress did not report an ETA:\n{stderr}"
    );
}

#[test]
fn conform_max_seconds_cuts_the_run_with_a_partial_report() {
    let out = Command::new(env!("CARGO_BIN_EXE_maestro"))
        .args(["conform", "--cases", "1000000", "--max-seconds", "0.3"])
        .output()
        .expect("spawn conform run");
    // How many cases fit in the budget depends on machine speed, and the
    // random stream has rare tolerance-boundary divergences deep in; since
    // divergence outranks interruption, the exit code is 7 when the sampled
    // prefix was clean and 6 when it was not. Either way the budget must
    // cut the run short and mark the report partial — that is what this
    // test pins. (Pure exit-7 interruption is pinned by the dse tests
    // above, whose workloads cannot diverge.)
    let code = out.status.code();
    assert!(
        code == Some(7) || code == Some(6),
        "conform over its budget must exit interrupted (7) or diverged (6), got {code:?}: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("interrupted") && stdout.contains("partial report"),
        "{stdout}"
    );
}

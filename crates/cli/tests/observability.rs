//! Drives the `maestro` binary end-to-end and checks its observability
//! surface: `--metrics` emits valid Prometheus text exposition with the
//! documented metric names, `--trace-json` emits well-formed JSON lines
//! covering every analysis engine stage, and diagnostics stay silent at
//! the default log level.

use std::path::PathBuf;
use std::process::{Command, Output};

fn maestro(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_maestro"))
        .env_remove("MAESTRO_LOG")
        .args(args)
        .output()
        .expect("spawn maestro binary")
}

fn temp_path(name: &str) -> PathBuf {
    let mut path = std::env::temp_dir();
    path.push(format!("maestro-obs-test-{}-{name}", std::process::id()));
    path
}

/// `dse --metrics -` interleaves the human summary and the exposition on
/// stdout; the exposition lines are the ones starting with `#` or a
/// `maestro_` sample.
fn exposition_lines(stdout: &str) -> Vec<&str> {
    stdout
        .lines()
        .filter(|l| l.starts_with('#') || l.starts_with("maestro_"))
        .collect()
}

#[test]
fn dse_metrics_exposition_has_documented_names() {
    let out = maestro(&[
        "dse",
        "--model",
        "vgg16",
        "--layer",
        "CONV5",
        "--style",
        "KC-P",
        "--threads",
        "2",
        "--metrics",
        "-",
    ]);
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
    for name in [
        "maestro_cache_hits",
        "maestro_cache_misses",
        "maestro_cache_inserts",
        "maestro_dse_units_completed",
        "maestro_dse_units_quarantined",
        "maestro_dse_unit_seconds",
        "maestro_dse_unit_rate",
        "maestro_dse_pareto_inserted",
        "maestro_dse_pareto_rejected",
        "maestro_dse_capacity_skipped",
        "maestro_analysis_calls",
    ] {
        assert!(
            stdout.contains(&format!("# TYPE {name} ")),
            "missing TYPE line for {name} in:\n{stdout}"
        );
    }
    // No quarantine happened, but the counter must still be exposed.
    assert!(
        stdout.contains("maestro_dse_units_quarantined 0"),
        "{stdout}"
    );
    // Minimal exposition well-formedness: every sample line is
    // `name[{labels}] value` with a parseable value.
    for line in exposition_lines(&stdout) {
        if line.starts_with('#') {
            continue;
        }
        let (_, value) = line.rsplit_once(' ').expect("sample has a value");
        assert!(
            value == "+Inf" || value.parse::<f64>().is_ok(),
            "unparseable sample value in `{line}`"
        );
    }
    // Histograms carry the _sum/_count companion series.
    assert!(stdout.contains("maestro_dse_unit_seconds_sum"), "{stdout}");
    assert!(
        stdout.contains("maestro_dse_unit_seconds_count"),
        "{stdout}"
    );
    assert!(stdout.contains("le=\"+Inf\""), "{stdout}");
}

#[test]
fn metrics_write_to_file() {
    let path = temp_path("metrics.prom");
    let out = maestro(&[
        "analyze",
        "--model",
        "vgg16",
        "--layer",
        "CONV2",
        "--dataflow",
        "KC-P",
        "--pes",
        "256",
        "--metrics",
        path.to_str().expect("utf8 temp path"),
    ]);
    assert_eq!(out.status.code(), Some(0));
    let text = std::fs::read_to_string(&path).expect("metrics file written");
    assert!(text.contains("maestro_analysis_calls 1"), "{text}");
}

#[test]
fn trace_json_covers_every_analysis_stage() {
    let path = temp_path("trace.jsonl");
    let out = maestro(&[
        "analyze",
        "--model",
        "vgg16",
        "--layer",
        "CONV2",
        "--dataflow",
        "KC-P",
        "--pes",
        "256",
        "--trace-json",
        path.to_str().expect("utf8 temp path"),
    ]);
    assert_eq!(out.status.code(), Some(0));
    let text = std::fs::read_to_string(&path).expect("trace file written");
    for stage in [
        "maestro.analysis.analyze",
        "maestro.analysis.tensor",
        "maestro.analysis.reuse",
        "maestro.analysis.buffer",
        "maestro.analysis.noc",
    ] {
        assert!(text.contains(stage), "stage {stage} missing from:\n{text}");
    }
    // Well-formed JSONL: one object per line with the documented keys.
    for line in text.lines() {
        assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
        for key in ["\"name\":", "\"id\":", "\"parent\":", "\"dur_us\":"] {
            assert!(line.contains(key), "missing {key} in `{line}`");
        }
    }
    // Stage spans nest under the root analyze span: exactly one root.
    let roots = text
        .lines()
        .filter(|l| l.contains("\"parent\":null"))
        .count();
    assert_eq!(roots, 1, "{text}");
}

#[test]
fn dse_human_summary_reports_full_stats() {
    let out = maestro(&[
        "dse",
        "--model",
        "vgg16",
        "--layer",
        "CONV5",
        "--style",
        "KC-P",
        "--threads",
        "1",
    ]);
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
    for needle in [
        "memo hits",
        "hit rate",
        "capacity-skipped",
        "non-finite dropped",
        "Pareto insertions",
        "quarantined",
        "designs/s",
    ] {
        assert!(stdout.contains(needle), "missing `{needle}` in:\n{stdout}");
    }
}

#[test]
fn default_log_level_is_silent_on_success() {
    let out = maestro(&[
        "analyze",
        "--model",
        "vgg16",
        "--layer",
        "CONV2",
        "--dataflow",
        "KC-P",
        "--pes",
        "256",
    ]);
    assert_eq!(out.status.code(), Some(0));
    assert!(
        out.stderr.is_empty(),
        "stderr not silent: {}",
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn maestro_log_enables_stderr_diagnostics() {
    let out = Command::new(env!("CARGO_BIN_EXE_maestro"))
        .env("MAESTRO_LOG", "warn")
        .args(["analyze", "--model", "vgg16", "--layer", "CONV2"])
        .output()
        .expect("spawn maestro binary");
    // A successful analyze emits no warnings either — the level gate alone
    // must not produce output.
    assert_eq!(out.status.code(), Some(0));
    assert!(out.stderr.is_empty());
}

#[test]
fn conform_metrics_report_harness_counters() {
    let out = maestro(&["conform", "--seed", "3", "--cases", "10", "--metrics", "-"]);
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
    let expo = exposition_lines(&stdout).join("\n");
    assert!(expo.contains("maestro_conform_cases 10"), "{expo}");
    for name in [
        "maestro_conform_diverged",
        "maestro_conform_shrunk",
        "maestro_conform_skipped",
    ] {
        assert!(expo.contains(name), "missing {name}: {expo}");
    }
}

//! Drives the `maestro` binary end-to-end and checks that each class of
//! user error maps to its documented exit code with a rendered diagnostic
//! on stderr (never a panic backtrace):
//!
//! - 2 `Usage`       — unknown command, bad flag value, unreadable input
//! - 3 `Parse`       — malformed dataflow (`.m`/`.df`) or network file
//! - 4 `Resolve`     — dataflow does not resolve onto the layer/accelerator
//! - 5 `Analysis`    — the cost model itself rejected the configuration
//! - 6 `Conformance` — `conform` found model-vs-simulator divergences

use std::io::Write;
use std::path::PathBuf;
use std::process::{Command, Output};

fn maestro(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_maestro"))
        .args(args)
        .output()
        .expect("spawn maestro binary")
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

/// Write `content` to a unique temp file and return its path. The file is
/// leaked into the temp dir; test runs are cheap and the OS cleans up.
fn temp_file(name: &str, content: &str) -> PathBuf {
    let mut path = std::env::temp_dir();
    path.push(format!("maestro-cli-test-{}-{name}", std::process::id()));
    let mut f = std::fs::File::create(&path).expect("create temp file");
    f.write_all(content.as_bytes()).expect("write temp file");
    path
}

#[test]
fn unknown_command_exits_2_with_usage() {
    let out = maestro(&["frobnicate"]);
    assert_eq!(out.status.code(), Some(2), "{}", stderr(&out));
    let err = stderr(&out);
    assert!(err.contains("unknown command `frobnicate`"), "{err}");
    assert!(err.contains("USAGE"), "{err}");
}

#[test]
fn bad_integer_flag_exits_2() {
    let out = maestro(&["analyze", "--layer", "CONV2", "--pes", "lots"]);
    assert_eq!(out.status.code(), Some(2), "{}", stderr(&out));
    assert!(
        stderr(&out).contains("--pes expects an integer"),
        "{}",
        stderr(&out)
    );
}

#[test]
fn missing_layer_exits_2() {
    let out = maestro(&["analyze", "--model", "vgg16"]);
    assert_eq!(out.status.code(), Some(2), "{}", stderr(&out));
    assert!(stderr(&out).contains("missing --layer"), "{}", stderr(&out));
}

#[test]
fn unreadable_dataflow_file_exits_2() {
    let out = maestro(&[
        "analyze",
        "--layer",
        "CONV2",
        "--dataflow",
        "/nonexistent/path.m",
    ]);
    assert_eq!(out.status.code(), Some(2), "{}", stderr(&out));
    assert!(
        stderr(&out).contains("is not a style name and reading it failed"),
        "{}",
        stderr(&out)
    );
}

#[test]
fn malformed_dataflow_file_exits_3_with_caret_diagnostic() {
    let df = temp_file(
        "bad.m",
        "Dataflow ODP {\n  TemporalMap(1,1) K;\n  TemporalMap(1,!) Q;\n}\n",
    );
    let out = maestro(&[
        "analyze",
        "--layer",
        "CONV2",
        "--dataflow",
        df.to_str().expect("utf8 path"),
    ]);
    assert_eq!(out.status.code(), Some(3), "{}", stderr(&out));
    let err = stderr(&out);
    // The new ParseError diagnostics carry line/column, the offending
    // source line, and a caret under the error.
    assert!(err.contains("parse error at line 3"), "{err}");
    assert!(err.contains("TemporalMap(1,!) Q;"), "{err}");
    assert!(err.contains('^'), "{err}");
}

#[test]
fn malformed_network_file_exits_3() {
    let net = temp_file("bad.net", "Network broken {\n  Layer L1 { type: }\n}\n");
    let out = maestro(&["model", "--model", net.to_str().expect("utf8 path")]);
    assert_eq!(out.status.code(), Some(3), "{}", stderr(&out));
    assert!(stderr(&out).contains("parsing"), "{}", stderr(&out));
}

#[test]
fn unresolvable_dataflow_exits_4() {
    // A dataflow that never maps the layer's dimensions cannot be
    // resolved onto it: every style needs the mapped dims to exist.
    let df = temp_file(
        "unresolvable.m",
        "Dataflow ODP {\n  SpatialMap(1,1) Z;\n}\n",
    );
    let out = maestro(&[
        "analyze",
        "--layer",
        "CONV2",
        "--dataflow",
        df.to_str().expect("utf8 path"),
    ]);
    // `Z` is not a dimension name, so this dies in the parser (exit 3);
    // a structurally valid but unmappable dataflow dies in resolve.
    assert_eq!(out.status.code(), Some(3), "{}", stderr(&out));

    // Mapping the same dimension twice in one cluster level is a
    // well-formed parse but an invalid mapping: ResolveError::DuplicateDim.
    let df = temp_file(
        "duplicate_dim.m",
        "Dataflow ODP {\n  TemporalMap(1,1) K;\n  TemporalMap(1,1) K;\n}\n",
    );
    let out = maestro(&[
        "analyze",
        "--layer",
        "CONV2",
        "--dataflow",
        df.to_str().expect("utf8 path"),
    ]);
    assert_eq!(out.status.code(), Some(4), "{}", stderr(&out));
    assert!(
        stderr(&out).contains("mapped more than once"),
        "{}",
        stderr(&out)
    );
}

#[test]
fn healthy_invocations_exit_0() {
    let out = maestro(&["analyze", "--model", "vgg16", "--layer", "CONV2"]);
    assert_eq!(out.status.code(), Some(0), "{}", stderr(&out));
    let out = maestro(&["help"]);
    assert_eq!(out.status.code(), Some(0), "{}", stderr(&out));
}

#[test]
fn conform_divergence_exits_6() {
    // Zero tolerance turns any nonzero model-vs-sim delta into a reported
    // divergence; a handful of cases is guaranteed to contain one.
    let out = maestro(&[
        "conform",
        "--seed",
        "1",
        "--cases",
        "5",
        "--tol-runtime",
        "0",
        "--tol-l1",
        "0",
        "--tol-l2",
        "0",
        "--tol-util",
        "0",
        "--tol-macs",
        "0",
    ]);
    assert_eq!(out.status.code(), Some(6), "{}", stderr(&out));
    assert!(
        stderr(&out).contains("diverged beyond tolerance"),
        "{}",
        stderr(&out)
    );
    // The report prints a ready-to-paste reproducer for the first failure.
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("#[test]"), "{stdout}");
    assert!(stdout.contains("validate_layer"), "{stdout}");
}

#[test]
fn conform_clean_run_exits_0() {
    let out = maestro(&["conform", "--seed", "1", "--cases", "25"]);
    assert_eq!(out.status.code(), Some(0), "{}", stderr(&out));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("0 diverged"), "{stdout}");
}

//! End-to-end tracing tests driving the real `maestro serve` binary:
//! every response carries an `x-maestro-trace` header, `/debug/traces`
//! phase attribution agrees with the access log, shed requests are
//! tail-kept, and the `maestro trace` explorer renders what the daemon
//! serves.

#![cfg(unix)]

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::process::{Child, Command, Stdio};
use std::time::Duration;

fn spawn_serve(extra: &[&str]) -> (Child, String) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_maestro"))
        .args(["serve", "--addr", "127.0.0.1:0"])
        .args(extra)
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn maestro serve");
    let stdout = child.stdout.take().expect("piped stdout");
    let mut lines = BufReader::new(stdout).lines();
    let announce = lines
        .next()
        .expect("an announcement line")
        .expect("readable stdout");
    let addr = announce
        .strip_prefix("serving on ")
        .unwrap_or_else(|| panic!("unexpected announcement: {announce:?}"))
        .to_string();
    (child, addr)
}

fn stop(child: &mut Child) {
    let _ = Command::new("kill")
        .args(["-TERM", &child.id().to_string()])
        .status();
    let _ = child.wait();
}

fn request(addr: &str, raw: String) -> String {
    let mut s = TcpStream::connect(addr).expect("connect to daemon");
    s.set_read_timeout(Some(Duration::from_secs(30))).ok();
    s.write_all(raw.as_bytes()).expect("write request");
    let mut out = String::new();
    s.read_to_string(&mut out).expect("read response");
    out
}

fn get(addr: &str, path: &str) -> String {
    request(
        addr,
        format!("GET {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n"),
    )
}

fn post(addr: &str, path: &str, body: &str) -> String {
    request(
        addr,
        format!(
            "POST {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        ),
    )
}

fn status_of(response: &str) -> u16 {
    response
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("unparseable response: {response:?}"))
}

/// The `x-maestro-trace` header value, if present.
fn trace_id_of(response: &str) -> Option<String> {
    response.lines().find_map(|l| {
        let (k, v) = l.split_once(':')?;
        k.eq_ignore_ascii_case("x-maestro-trace")
            .then(|| v.trim().to_string())
    })
}

/// Pull every `"key":<integer>` occurrence out of a JSON-ish line.
fn field_u64(text: &str, key: &str) -> Option<u64> {
    let pat = format!("\"{key}\":");
    let rest = &text[text.find(&pat)? + pat.len()..];
    let digits: String = rest.chars().take_while(char::is_ascii_digit).collect();
    digits.parse().ok()
}

#[test]
fn every_response_carries_a_trace_header() {
    let (mut child, addr) = spawn_serve(&["--trace-seed", "7"]);
    // Success, 404, and a parser-rejected 400 all get trace IDs.
    let ok = post(
        &addr,
        "/v1/analyze",
        "{\"model\":\"alexnet\",\"layer\":\"CONV1\",\"pes\":64}",
    );
    assert_eq!(status_of(&ok), 200, "{ok}");
    let id = trace_id_of(&ok).expect("trace header on 200");
    assert_eq!(id.len(), 32, "{id}");
    assert!(id.chars().all(|c| c.is_ascii_hexdigit()), "{id}");

    let missing = get(&addr, "/no-such-endpoint");
    assert_eq!(status_of(&missing), 404);
    assert!(trace_id_of(&missing).is_some(), "{missing}");

    let bad = post(&addr, "/v1/analyze", "{nope");
    assert_eq!(status_of(&bad), 400);
    assert!(trace_id_of(&bad).is_some(), "{bad}");

    // Distinct requests get distinct IDs.
    let ok2 = get(&addr, "/healthz");
    assert_ne!(trace_id_of(&ok2).expect("header"), id);
    stop(&mut child);
}

#[test]
fn debug_trace_phases_sum_to_the_access_log_total() {
    let dir = std::env::temp_dir().join(format!("maestro-trace-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let log = dir.join("access.jsonl");
    let log_str = log.to_str().expect("utf-8 temp path").to_string();
    let (mut child, addr) = spawn_serve(&["--trace-sample", "1", "--access-log", &log_str]);
    // A whole-model vgg16 analysis: multi-millisecond, so phase
    // attribution operates far above clock granularity.
    let resp = post(&addr, "/v1/analyze", "{\"model\":\"vgg16\",\"pes\":256}");
    assert_eq!(status_of(&resp), 200, "{resp}");
    let id = trace_id_of(&resp).expect("trace header");

    let detail = get(&addr, &format!("/debug/traces/{id}"));
    assert_eq!(status_of(&detail), 200, "{detail}");
    let body = detail.split("\r\n\r\n").nth(1).expect("body");
    let total = field_u64(body, "total_us").expect("total_us in trace");
    // Sum the per-phase durations out of the detail JSON.
    let mut phase_sum = 0u64;
    let mut rest = body;
    while let Some(i) = rest.find("\"dur_us\":") {
        rest = &rest[i + "\"dur_us\":".len()..];
        let digits: String = rest.chars().take_while(char::is_ascii_digit).collect();
        phase_sum += digits.parse::<u64>().expect("dur_us digits");
    }
    assert!(total > 1_000, "whole-model analyze too fast: {total}us");
    let gap = total.abs_diff(phase_sum);
    assert!(
        gap * 20 <= total,
        "phases sum to {phase_sum}us but the trace total is {total}us (gap > 5%)"
    );

    // The access log agrees with the trace on the same request.
    stop(&mut child); // drain flushes the log
    let log_text = std::fs::read_to_string(&log).expect("access log written");
    let line = log_text
        .lines()
        .find(|l| l.contains(&id))
        .unwrap_or_else(|| panic!("trace {id} not in access log:\n{log_text}"));
    let log_total = field_u64(line, "total_us").expect("total_us in access log");
    assert_eq!(log_total, total, "{line}");
    let attributed = ["queue_us", "parse_us", "analyze_us", "serialize_us"]
        .iter()
        .map(|k| field_u64(line, k).expect("phase field"))
        .sum::<u64>();
    let gap = log_total.abs_diff(attributed);
    assert!(
        gap * 20 <= log_total,
        "access log attributes {attributed}us of {log_total}us (gap > 5%)"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn shed_requests_are_tail_kept_and_renderable() {
    // One worker, queue depth 1, and an aggressive sample-out rate: the
    // only way a trace survives is the tail-sampling error override.
    let (mut child, addr) = spawn_serve(&[
        "--workers",
        "1",
        "--queue-depth",
        "1",
        "--trace-sample",
        "1000000",
        "--io-timeout",
        "1",
    ]);
    // Occupy the worker and the queue with connections that send
    // nothing (the 1 s io-timeout reaps them), then trip admission.
    let hold_a = TcpStream::connect(&addr).expect("hold worker");
    let hold_b = TcpStream::connect(&addr).expect("hold queue");
    let mut shed_status = 0;
    for _ in 0..50 {
        let resp = get(&addr, "/healthz");
        shed_status = status_of(&resp);
        if shed_status == 503 {
            assert!(trace_id_of(&resp).is_some(), "shed carries a trace: {resp}");
            break;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    assert_eq!(shed_status, 503, "admission control never shed");
    drop(hold_a);
    drop(hold_b);

    // Wait for the daemon to drain the held connections, then read the
    // flight recorder: the 503 must be there as a forced keep.
    let mut listing = String::new();
    for _ in 0..100 {
        std::thread::sleep(Duration::from_millis(50));
        let resp = get(&addr, "/debug/traces");
        if status_of(&resp) == 200 {
            listing = resp;
            if listing.contains("\"status\":503") {
                break;
            }
        }
    }
    assert!(
        listing.contains("\"status\":503"),
        "shed trace not kept: {listing}"
    );
    let shed_region = &listing[listing.find("\"status\":503").unwrap()..];
    assert!(
        shed_region.starts_with("\"status\":503,\"start_unix_ms\""),
        "{shed_region}"
    );
    assert!(listing.contains("\"kept\":\"error\""), "{listing}");
    assert!(listing.contains("\"name\":\"shed\""), "{listing}");

    // The explorer renders the daemon's listing and folded stacks.
    let out = Command::new(env!("CARGO_BIN_EXE_maestro"))
        .args(["trace", "--from", &addr])
        .output()
        .expect("run maestro trace");
    assert!(out.status.success(), "{out:?}");
    let text = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(text.contains("503"), "{text}");
    assert!(text.contains("shed"), "{text}");

    let folded = Command::new(env!("CARGO_BIN_EXE_maestro"))
        .args(["trace", "--from", &addr, "--folded"])
        .output()
        .expect("run maestro trace --folded");
    assert!(folded.status.success(), "{folded:?}");
    let text = String::from_utf8_lossy(&folded.stdout).to_string();
    assert!(text.contains("shed;"), "{text}");
    stop(&mut child);
}

#[test]
fn dse_trace_sample_dumps_unit_traces_the_explorer_reads() {
    let dir = std::env::temp_dir().join(format!("maestro-dse-trace-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let dump = dir.join("units.json");
    let dump_str = dump.to_str().expect("utf-8 temp path");
    let out = Command::new(env!("CARGO_BIN_EXE_maestro"))
        .args([
            "dse",
            "--model",
            "alexnet",
            "--layer",
            "CONV1",
            "--style",
            "KC-P",
            "--threads",
            "2",
            "--trace-sample",
            "1/4",
            "--trace-seed",
            "9",
            "--trace-out",
            dump_str,
        ])
        .output()
        .expect("run maestro dse");
    assert!(out.status.success(), "{out:?}");
    let text = std::fs::read_to_string(&dump).expect("trace dump written");
    assert!(text.contains("\"name\":\"dse.unit[0]\""), "{text}");
    assert!(text.contains("\"name\":\"dse.unit[4]\""), "{text}");
    // 1-in-4 of the sweep's units: unit 1 is not drawn.
    assert!(!text.contains("\"name\":\"dse.unit[1]\""), "{text}");

    // The explorer renders the dump from a file, no daemon involved.
    let folded = Command::new(env!("CARGO_BIN_EXE_maestro"))
        .args(["trace", "--file", dump_str, "--folded"])
        .output()
        .expect("run maestro trace --file");
    assert!(folded.status.success(), "{folded:?}");
    let text = String::from_utf8_lossy(&folded.stdout).to_string();
    assert!(text.contains(";unit "), "{text}");
    let _ = std::fs::remove_dir_all(&dir);
}

//! End-to-end daemon tests driving the real `maestro serve` binary:
//! start, issue requests over TCP, then SIGTERM and pin the drain
//! semantics and exit codes — `0` for a clean drain, `7` when the drain
//! deadline forces cancellation of in-flight requests.

#![cfg(unix)]

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

/// Start `maestro serve --addr 127.0.0.1:0 <extra args>` and read the
/// picked port from the announcement line on stdout.
fn spawn_serve(extra: &[&str]) -> (Child, String) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_maestro"))
        .args(["serve", "--addr", "127.0.0.1:0"])
        .args(extra)
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn maestro serve");
    let stdout = child.stdout.take().expect("piped stdout");
    let mut lines = BufReader::new(stdout).lines();
    let announce = lines
        .next()
        .expect("an announcement line")
        .expect("readable stdout");
    let addr = announce
        .strip_prefix("serving on ")
        .unwrap_or_else(|| panic!("unexpected announcement: {announce:?}"))
        .to_string();
    (child, addr)
}

fn signal(child: &Child, sig: &str) {
    let ok = Command::new("kill")
        .args([sig, &child.id().to_string()])
        .status()
        .expect("spawn kill")
        .success();
    assert!(ok, "kill {sig} failed");
}

fn wait_within(child: &mut Child, limit: Duration) -> (i32, Duration) {
    let start = Instant::now();
    loop {
        if let Some(status) = child.try_wait().expect("try_wait") {
            return (status.code().expect("exit code"), start.elapsed());
        }
        if start.elapsed() > limit {
            let _ = child.kill();
            panic!("daemon did not exit within {limit:?} after the signal");
        }
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// One request on its own connection; returns the raw response.
fn request(addr: &str, raw: String) -> String {
    let mut s = TcpStream::connect(addr).expect("connect to daemon");
    s.set_read_timeout(Some(Duration::from_secs(30))).ok();
    s.write_all(raw.as_bytes()).expect("write request");
    let mut out = String::new();
    s.read_to_string(&mut out).expect("read response");
    out
}

fn get(addr: &str, path: &str) -> String {
    request(
        addr,
        format!("GET {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n"),
    )
}

fn post(addr: &str, path: &str, body: &str) -> String {
    request(
        addr,
        format!(
            "POST {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        ),
    )
}

fn status_of(response: &str) -> u16 {
    response
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("unparseable response: {response:?}"))
}

#[test]
fn serve_answers_analyze_and_drains_cleanly_on_sigterm() {
    let (mut child, addr) = spawn_serve(&[]);
    assert_eq!(status_of(&get(&addr, "/healthz")), 200);
    assert_eq!(status_of(&get(&addr, "/readyz")), 200);
    let resp = post(
        &addr,
        "/v1/analyze",
        "{\"model\":\"alexnet\",\"layer\":\"CONV1\",\"pes\":64}",
    );
    assert_eq!(status_of(&resp), 200, "{resp}");
    assert!(resp.contains("\"runtime\""), "{resp}");
    let metrics = get(&addr, "/metrics");
    assert!(
        metrics.contains("maestro_serve_requests_total"),
        "{metrics}"
    );

    signal(&child, "-TERM");
    let (code, elapsed) = wait_within(&mut child, Duration::from_secs(10));
    assert_eq!(code, 0, "clean drain must exit 0");
    assert!(elapsed < Duration::from_secs(8), "drain took {elapsed:?}");
    // The dead daemon no longer accepts.
    assert!(TcpStream::connect(&addr).is_err(), "socket still open");
}

#[test]
fn sigterm_mid_request_finishes_in_flight_work_then_exits_0() {
    let (mut child, addr) = spawn_serve(&["--drain-seconds", "30"]);
    // Put a multi-second request in flight, then SIGTERM around it.
    let addr2 = addr.clone();
    let client = std::thread::spawn(move || {
        post(&addr2, "/v1/conform", "{\"cases\":60,\"max_steps\":20000}")
    });
    std::thread::sleep(Duration::from_millis(200));
    signal(&child, "-TERM");
    // The in-flight response is written in full before the exit: zero
    // dropped responses on a clean drain.
    let resp = client.join().expect("client thread");
    assert_eq!(status_of(&resp), 200, "{resp}");
    assert!(resp.contains("\"diverged\""), "{resp}");
    let (code, _) = wait_within(&mut child, Duration::from_secs(30));
    assert_eq!(code, 0, "in-flight work finished inside the drain budget");
}

#[test]
fn forced_drain_exits_7_but_still_answers_with_504() {
    let (mut child, addr) = spawn_serve(&["--drain-seconds", "0.3"]);
    // An in-flight request that cannot finish inside the 0.3 s drain
    // budget: a huge conform sweep with an hour-long client deadline.
    let addr2 = addr.clone();
    let client = std::thread::spawn(move || {
        post(
            &addr2,
            "/v1/conform",
            "{\"cases\":1000000,\"deadline_ms\":3600000}",
        )
    });
    std::thread::sleep(Duration::from_millis(300));
    signal(&child, "-TERM");
    let (code, elapsed) = wait_within(&mut child, Duration::from_secs(10));
    assert_eq!(code, 7, "forced drain must exit interrupted");
    assert!(
        elapsed < Duration::from_secs(8),
        "forced drain hung: {elapsed:?}"
    );
    // Even the forcibly cancelled request got a well-formed 504 response.
    let resp = client.join().expect("client thread");
    assert_eq!(status_of(&resp), 504, "{resp}");
    assert!(resp.contains("\"partial\":true"), "{resp}");
}

/// Fetch one metric's value from the daemon's Prometheus exposition.
fn metric_value(addr: &str, name: &str) -> f64 {
    let metrics = get(addr, "/metrics");
    metrics
        .lines()
        .find(|l| l.starts_with(name) && !l.starts_with('#'))
        .and_then(|l| l.split_whitespace().last())
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.0)
}

#[test]
fn readyz_dips_below_quorum_while_a_worker_is_wedged() {
    // A deliberately sleepy watchdog (10 s scans) so the quorum dip is
    // observable deterministically: while one of the two workers sits in
    // a 1.2 s stall past the 100 ms wedge threshold, `/readyz` must
    // report 503 naming the quorum cause, then recover to 200 once the
    // stall ends — no supersession involved.
    let (mut child, addr) = spawn_serve(&[
        "--workers",
        "2",
        "--worker-quorum",
        "2",
        "--wedge-ms",
        "100",
        "--watchdog-interval-ms",
        "10000",
        "--test-endpoints",
    ]);
    assert_eq!(status_of(&get(&addr, "/readyz")), 200);
    let addr2 = addr.clone();
    let stalled = std::thread::spawn(move || post(&addr2, "/v1/stall", "{\"ms\":1200}"));
    let deadline = Instant::now() + Duration::from_secs(5);
    let mut saw_quorum_503 = false;
    let mut recovered = false;
    while Instant::now() < deadline {
        let resp = get(&addr, "/readyz");
        match status_of(&resp) {
            503 if resp.contains("quorum") => saw_quorum_503 = true,
            200 if saw_quorum_503 => {
                recovered = true;
                break;
            }
            _ => {}
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    assert!(saw_quorum_503, "never observed the below-quorum 503");
    assert!(recovered, "/readyz never recovered to 200 after the stall");
    // The wedged worker still completed its request.
    let resp = stalled.join().expect("stall client");
    assert_eq!(status_of(&resp), 200, "{resp}");
    assert!(resp.contains("\"stalled_ms\":1200"), "{resp}");
    signal(&child, "-TERM");
    let (code, _) = wait_within(&mut child, Duration::from_secs(10));
    assert_eq!(code, 0);
}

#[test]
fn wedged_workers_are_superseded_and_replaced_under_a_fast_watchdog() {
    // Here the watchdog is fast (150 ms scans, 100 ms wedge threshold)
    // and the stall long (2 s): the watchdog must supersede the wedged
    // worker and spawn a replacement while the stall is still running.
    let (mut child, addr) = spawn_serve(&[
        "--workers",
        "2",
        "--worker-quorum",
        "2",
        "--wedge-ms",
        "100",
        "--watchdog-interval-ms",
        "150",
        "--test-endpoints",
    ]);
    let addr2 = addr.clone();
    let stalled = std::thread::spawn(move || post(&addr2, "/v1/stall", "{\"ms\":2000}"));
    // The restart counter must tick within the stall window, and once it
    // has, the replacement worker puts /readyz back at 200.
    let deadline = Instant::now() + Duration::from_secs(5);
    while metric_value(&addr, "maestro_serve_worker_restarts") < 1.0 {
        assert!(
            Instant::now() < deadline,
            "watchdog never replaced the wedged worker"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    assert_eq!(status_of(&get(&addr, "/readyz")), 200);
    // The superseded worker still writes its response before exiting.
    let resp = stalled.join().expect("stall client");
    assert_eq!(status_of(&resp), 200, "{resp}");
    signal(&child, "-TERM");
    let (code, _) = wait_within(&mut child, Duration::from_secs(10));
    assert_eq!(code, 0);
}

#[test]
fn seeded_worker_panic_chaos_drops_no_responses_and_restarts_workers() {
    // Deterministic chaos: with seed 7 at a 5% worker-panic rate, some
    // of the ~120 pre-pop draws fire. Every request must still complete
    // (the panic is drawn *before* a connection is popped), the watchdog
    // must log restarts, and the daemon must still drain cleanly.
    let (mut child, addr) = spawn_serve(&[
        "--workers",
        "2",
        "--chaos",
        "worker-panic:0.05",
        "--chaos-seed",
        "7",
        "--watchdog-interval-ms",
        "100",
    ]);
    for i in 0..120 {
        let resp = post(
            &addr,
            "/v1/analyze",
            &format!(
                "{{\"model\":\"alexnet\",\"layer\":\"CONV{}\",\"pes\":64}}",
                (i % 5) + 1
            ),
        );
        assert_eq!(status_of(&resp), 200, "request {i}: {resp}");
    }
    assert!(
        metric_value(&addr, "maestro_serve_worker_restarts") >= 1.0,
        "no worker restarts observed under 5% panic chaos"
    );
    assert_eq!(status_of(&get(&addr, "/readyz")), 200);
    signal(&child, "-TERM");
    let (code, _) = wait_within(&mut child, Duration::from_secs(10));
    assert_eq!(code, 0, "chaos daemon must still drain cleanly");
}

#[test]
fn bad_requests_get_typed_statuses_from_the_binary() {
    let (mut child, addr) = spawn_serve(&[]);
    assert_eq!(status_of(&post(&addr, "/v1/analyze", "{nope")), 400);
    assert_eq!(status_of(&get(&addr, "/no-such-endpoint")), 404);
    let resp = request(
        &addr,
        "POST /v1/analyze HTTP/1.1\r\nContent-Length: 99999999\r\n\r\n".to_string(),
    );
    assert_eq!(status_of(&resp), 413, "{resp}");
    signal(&child, "-TERM");
    let (code, _) = wait_within(&mut child, Duration::from_secs(10));
    assert_eq!(code, 0);
}

//! Individual dataflow directives and layer-parametric size expressions.

use maestro_dnn::{Dim, DimSizes};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A size or offset expression, evaluated against a layer's dimension
/// sizes when the dataflow is resolved.
///
/// This is what lets a single dataflow description (e.g. Table 3's
/// `TemporalMap(Sz(R), Sz(R)) R`) apply to every layer of a network.
///
/// ```
/// use maestro_dnn::{Dim, DimSizes};
/// use maestro_ir::SizeExpr;
///
/// let e = SizeExpr::size(Dim::S).add(SizeExpr::lit(7)).sub(SizeExpr::lit(1));
/// let dims = DimSizes::ones().with(Dim::S, 3);
/// assert_eq!(e.eval(&dims), 9);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SizeExpr {
    /// A literal constant.
    Const(u64),
    /// `Sz(dim)` — the full size of a dimension in the current layer.
    Size(Dim),
    /// Sum of two expressions.
    Add(Box<SizeExpr>, Box<SizeExpr>),
    /// Saturating difference of two expressions.
    Sub(Box<SizeExpr>, Box<SizeExpr>),
}

impl SizeExpr {
    /// A literal constant expression.
    pub const fn lit(v: u64) -> Self {
        SizeExpr::Const(v)
    }

    /// The `Sz(dim)` expression.
    pub const fn size(dim: Dim) -> Self {
        SizeExpr::Size(dim)
    }

    /// `self + rhs`.
    #[must_use]
    #[allow(clippy::should_implement_trait)] // by-value builder, not ops::Add
    pub fn add(self, rhs: SizeExpr) -> Self {
        SizeExpr::Add(Box::new(self), Box::new(rhs))
    }

    /// `self - rhs` (saturating at zero on evaluation).
    #[must_use]
    #[allow(clippy::should_implement_trait)] // by-value builder, not ops::Sub
    pub fn sub(self, rhs: SizeExpr) -> Self {
        SizeExpr::Sub(Box::new(self), Box::new(rhs))
    }

    /// Evaluate against concrete dimension sizes.
    pub fn eval(&self, dims: &DimSizes) -> u64 {
        match self {
            SizeExpr::Const(v) => *v,
            SizeExpr::Size(d) => dims.get(*d),
            SizeExpr::Add(a, b) => a.eval(dims) + b.eval(dims),
            SizeExpr::Sub(a, b) => a.eval(dims).saturating_sub(b.eval(dims)),
        }
    }
}

impl From<u64> for SizeExpr {
    fn from(v: u64) -> Self {
        SizeExpr::Const(v)
    }
}

impl From<Dim> for SizeExpr {
    fn from(d: Dim) -> Self {
        SizeExpr::Size(d)
    }
}

impl fmt::Display for SizeExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SizeExpr::Const(v) => write!(f, "{v}"),
            SizeExpr::Size(d) => write!(f, "Sz({d})"),
            SizeExpr::Add(a, b) => write!(f, "{a}+{b}"),
            SizeExpr::Sub(a, b) => write!(f, "{a}-{b}"),
        }
    }
}

/// Whether a map distributes indices over space (sub-units) or time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MapKind {
    /// Distributed across the sub-units of the cluster level.
    Spatial,
    /// Distributed across time steps, replicated on every sub-unit.
    Temporal,
}

impl fmt::Display for MapKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MapKind::Spatial => write!(f, "SpatialMap"),
            MapKind::Temporal => write!(f, "TemporalMap"),
        }
    }
}

/// One directive of a data-centric dataflow description.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Directive {
    /// `SpatialMap(size, offset) dim`
    SpatialMap {
        /// Number of indices mapped to each sub-unit.
        size: SizeExpr,
        /// Shift of the starting index between consecutive sub-units.
        offset: SizeExpr,
        /// The mapped dimension.
        dim: Dim,
    },
    /// `TemporalMap(size, offset) dim`
    TemporalMap {
        /// Number of indices mapped per time step.
        size: SizeExpr,
        /// Shift of the starting index between consecutive time steps.
        offset: SizeExpr,
        /// The mapped dimension.
        dim: Dim,
    },
    /// `Cluster(size)` — group the sub-units below into clusters of `size`.
    Cluster(SizeExpr),
}

impl Directive {
    /// The mapped dimension, if this is a map directive.
    pub fn dim(&self) -> Option<Dim> {
        match self {
            Directive::SpatialMap { dim, .. } | Directive::TemporalMap { dim, .. } => Some(*dim),
            Directive::Cluster(_) => None,
        }
    }

    /// The map kind, if this is a map directive.
    pub fn kind(&self) -> Option<MapKind> {
        match self {
            Directive::SpatialMap { .. } => Some(MapKind::Spatial),
            Directive::TemporalMap { .. } => Some(MapKind::Temporal),
            Directive::Cluster(_) => None,
        }
    }
}

impl fmt::Display for Directive {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Directive::SpatialMap { size, offset, dim } => {
                write!(f, "SpatialMap({size},{offset}) {dim}")
            }
            Directive::TemporalMap { size, offset, dim } => {
                write!(f, "TemporalMap({size},{offset}) {dim}")
            }
            Directive::Cluster(size) => write!(f, "Cluster({size})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size_expr_eval() {
        let dims = DimSizes::new(1, 2, 3, 4, 5, 6, 7);
        assert_eq!(SizeExpr::lit(9).eval(&dims), 9);
        assert_eq!(SizeExpr::size(Dim::R).eval(&dims), 6);
        let e = SizeExpr::lit(8)
            .add(SizeExpr::size(Dim::S))
            .sub(SizeExpr::lit(1));
        assert_eq!(e.eval(&dims), 14);
        // Saturating subtraction.
        assert_eq!(SizeExpr::lit(1).sub(SizeExpr::lit(5)).eval(&dims), 0);
    }

    #[test]
    fn size_expr_display() {
        let e = SizeExpr::lit(8)
            .add(SizeExpr::size(Dim::S))
            .sub(SizeExpr::lit(1));
        assert_eq!(e.to_string(), "8+Sz(S)-1");
    }

    #[test]
    fn directive_display() {
        let d = Directive::SpatialMap {
            size: SizeExpr::size(Dim::R),
            offset: SizeExpr::lit(1),
            dim: Dim::Y,
        };
        assert_eq!(d.to_string(), "SpatialMap(Sz(R),1) Y");
        assert_eq!(d.dim(), Some(Dim::Y));
        assert_eq!(d.kind(), Some(MapKind::Spatial));
        let c = Directive::Cluster(SizeExpr::lit(8));
        assert_eq!(c.to_string(), "Cluster(8)");
        assert_eq!(c.dim(), None);
        assert_eq!(c.kind(), None);
    }

    #[test]
    fn conversions() {
        assert_eq!(SizeExpr::from(4u64), SizeExpr::Const(4));
        assert_eq!(SizeExpr::from(Dim::K), SizeExpr::Size(Dim::K));
    }
}

//! Binding a dataflow to a concrete layer and PE count.
//!
//! This implements the structural half of the paper's Cluster Analysis
//! engine (§4.1): splitting the directive list into cluster levels,
//! counting sub-units per level, evaluating size expressions against the
//! layer's dimensions, clamping map sizes, and inferring omitted directives
//! (a dimension not mapped at a level is fully resident there, i.e. an
//! implicit `TemporalMap(size, size)` in the innermost position).

use crate::dataflow::Dataflow;
use crate::directive::{Directive, MapKind};
use maestro_dnn::{Dim, DimSizes, Layer, ALL_DIMS};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A map directive with its size expressions evaluated and clamped.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ResolvedMap {
    /// Spatial or temporal.
    pub kind: MapKind,
    /// The mapped dimension.
    pub dim: Dim,
    /// Mapped chunk size (clamped to the level's dimension size, ≥ 1).
    pub size: u64,
    /// Chunk start shift between consecutive units / time steps (≥ 1).
    pub offset: u64,
    /// `true` when this map was inferred rather than written by the user.
    pub inferred: bool,
}

impl ResolvedMap {
    /// Number of chunks this map produces over a dimension of size `dim_size`:
    /// `ceil((dim_size - size) / offset) + 1`.
    pub fn num_chunks(&self, dim_size: u64) -> u64 {
        if self.size >= dim_size {
            1
        } else {
            (dim_size - self.size).div_ceil(self.offset) + 1
        }
    }

    /// The chunk (start, len) at index `i` over a dimension of `dim_size`.
    ///
    /// The final chunk is truncated at the dimension boundary (the "edge"
    /// iteration case of the paper).
    pub fn chunk(&self, i: u64, dim_size: u64) -> (u64, u64) {
        let start = (i * self.offset).min(dim_size.saturating_sub(1));
        let len = self.size.min(dim_size - start);
        (start, len)
    }
}

impl fmt::Display for ResolvedMap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}({},{}) {}",
            self.kind, self.size, self.offset, self.dim
        )
    }
}

/// One cluster level of a resolved dataflow.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResolvedLevel {
    /// Maps in data-movement order (outer first). Every dimension appears
    /// exactly once; inferred full-coverage maps are appended innermost.
    pub maps: Vec<ResolvedMap>,
    /// Number of sub-units (sub-clusters, or PEs at the innermost level)
    /// within one instance of this level.
    pub num_units: u64,
    /// Dimension sizes visible at this level (the outer level's mapped
    /// chunk sizes; the layer's sizes at the top level).
    pub dims: DimSizes,
}

impl ResolvedLevel {
    /// The map for dimension `d`. Resolution guarantees every dimension is
    /// mapped, so this is `Some` for any `ResolvedLevel` produced by
    /// [`resolve`]; hand-built levels may omit dimensions.
    pub fn map(&self, d: Dim) -> Option<&ResolvedMap> {
        self.maps.iter().find(|m| m.dim == d)
    }

    /// Maps that are spatial at this level, in order.
    pub fn spatial_maps(&self) -> impl Iterator<Item = &ResolvedMap> + '_ {
        self.maps.iter().filter(|m| m.kind == MapKind::Spatial)
    }

    /// The chunk sizes of every map (steady-state footprint sizes).
    pub fn mapped_sizes(&self) -> DimSizes {
        let mut s = DimSizes::ones();
        for m in &self.maps {
            s.set(m.dim, m.size.min(self.dims.get(m.dim)));
        }
        s
    }
}

/// A dataflow bound to a layer and a PE count.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Resolved {
    /// Cluster levels, outermost first. Always at least one.
    pub levels: Vec<ResolvedLevel>,
    /// Total PEs in the accelerator.
    pub num_pes: u64,
    /// PEs actually covered by the cluster hierarchy
    /// (`Π level.num_units ≤ num_pes`).
    pub used_pes: u64,
    /// Vertical stride of the bound layer.
    pub stride_y: u64,
    /// Horizontal stride of the bound layer.
    pub stride_x: u64,
}

impl Resolved {
    /// The innermost (PE) level. [`resolve`] always produces at least one
    /// level, so this is `Some` for any resolver output.
    pub fn innermost(&self) -> Option<&ResolvedLevel> {
        self.levels.last()
    }

    /// Stride along `d` (1 except for Y/X).
    pub fn stride(&self, d: Dim) -> u64 {
        match d {
            Dim::Y => self.stride_y,
            Dim::X => self.stride_x,
            _ => 1,
        }
    }
}

/// Errors produced while resolving a dataflow against a layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ResolveError {
    /// A map size evaluated to zero.
    ZeroSize(Dim),
    /// A map offset evaluated to zero.
    ZeroOffset(Dim),
    /// The same dimension is mapped twice within one cluster level.
    DuplicateDim(Dim),
    /// A cluster size evaluated to zero.
    ZeroClusterSize,
    /// A cluster level would have zero units (cluster size exceeds the
    /// available sub-units).
    ClusterTooLarge {
        /// The offending cluster size.
        cluster: u64,
        /// Units available to subdivide.
        available: u64,
    },
    /// The dataflow has no PEs to map onto.
    NoPes,
}

impl fmt::Display for ResolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ResolveError::ZeroSize(d) => write!(f, "map size for {d} evaluates to zero"),
            ResolveError::ZeroOffset(d) => write!(f, "map offset for {d} evaluates to zero"),
            ResolveError::DuplicateDim(d) => {
                write!(
                    f,
                    "dimension {d} is mapped more than once in a cluster level"
                )
            }
            ResolveError::ZeroClusterSize => write!(f, "cluster size evaluates to zero"),
            ResolveError::ClusterTooLarge { cluster, available } => write!(
                f,
                "cluster size {cluster} exceeds the {available} available sub-units"
            ),
            ResolveError::NoPes => write!(f, "accelerator has zero PEs"),
        }
    }
}

impl std::error::Error for ResolveError {}

/// Resolve `dataflow` for `layer` on an accelerator with `num_pes` PEs.
///
/// # Errors
///
/// Returns a [`ResolveError`] when the dataflow is structurally invalid
/// for this layer/PE combination (zero sizes or offsets, duplicate maps,
/// oversized clusters).
pub fn resolve(dataflow: &Dataflow, layer: &Layer, num_pes: u64) -> Result<Resolved, ResolveError> {
    if num_pes == 0 {
        return Err(ResolveError::NoPes);
    }
    let mut layer_dims = layer.dims.sizes();
    // A dimension no tensor of this layer indexes (e.g. K for depthwise,
    // Y/X/R/S for a GEMM coupling) has no data axis to tile: iterating it
    // would replicate identical work. Clamp its extent to one trip so maps
    // over uncoupled dims degenerate instead of multiplying the schedule.
    let coupling = layer.coupling();
    for d in ALL_DIMS {
        let coupled = coupling.input.contains(d)
            || coupling.weight.contains(d)
            || coupling.output.contains(d);
        if !coupled {
            layer_dims.set(d, 1);
        }
    }

    // Split directives into per-level map lists and collect cluster sizes.
    let mut level_dirs: Vec<Vec<&Directive>> = Vec::new();
    let mut current: Vec<&Directive> = Vec::new();
    let mut cluster_sizes: Vec<u64> = Vec::new();
    for d in dataflow.directives() {
        match d {
            Directive::Cluster(sz) => {
                let v = sz.eval(&layer_dims);
                if v == 0 {
                    return Err(ResolveError::ZeroClusterSize);
                }
                cluster_sizes.push(v);
                level_dirs.push(std::mem::take(&mut current));
            }
            _ => current.push(d),
        }
    }
    level_dirs.push(current);

    // Units per level: level 0 divides the PEs into clusters of
    // cluster_sizes[0]; level i divides cluster_sizes[i-1] into clusters of
    // cluster_sizes[i]; the innermost level's units are its cluster size.
    let num_levels = level_dirs.len();
    let mut units = Vec::with_capacity(num_levels);
    let mut available = num_pes;
    for (i, &c) in cluster_sizes.iter().enumerate() {
        if c > available {
            return Err(ResolveError::ClusterTooLarge {
                cluster: c,
                available,
            });
        }
        units.push(available / c);
        available = c;
        if i == cluster_sizes.len() - 1 {
            units.push(c);
        }
    }
    if cluster_sizes.is_empty() {
        units.push(num_pes);
    }
    debug_assert_eq!(units.len(), num_levels);

    // Resolve each level top-down, threading dimension sizes.
    let mut levels = Vec::with_capacity(num_levels);
    let mut dims = layer_dims;
    for (li, dirs) in level_dirs.iter().enumerate() {
        let mut maps: Vec<ResolvedMap> = Vec::with_capacity(ALL_DIMS.len());
        for d in dirs {
            let (kind, size, offset, dim) = match d {
                Directive::SpatialMap { size, offset, dim } => {
                    (MapKind::Spatial, size, offset, *dim)
                }
                Directive::TemporalMap { size, offset, dim } => {
                    (MapKind::Temporal, size, offset, *dim)
                }
                Directive::Cluster(_) => unreachable!("clusters split levels"),
            };
            if maps.iter().any(|m| m.dim == dim) {
                return Err(ResolveError::DuplicateDim(dim));
            }
            // Sizes are evaluated against the *layer* dims so `Sz(R)` means
            // the same thing at every level, then clamped to this level.
            let size = size.eval(&layer_dims);
            let offset = offset.eval(&layer_dims);
            if size == 0 {
                return Err(ResolveError::ZeroSize(dim));
            }
            if offset == 0 {
                return Err(ResolveError::ZeroOffset(dim));
            }
            maps.push(ResolvedMap {
                kind,
                dim,
                size: size.min(dims.get(dim)),
                offset,
                inferred: false,
            });
        }
        // Inferred full-coverage maps for unmapped dimensions (innermost).
        for dim in ALL_DIMS {
            if !maps.iter().any(|m| m.dim == dim) {
                let sz = dims.get(dim);
                maps.push(ResolvedMap {
                    kind: MapKind::Temporal,
                    dim,
                    size: sz,
                    offset: sz,
                    inferred: true,
                });
            }
        }
        let level = ResolvedLevel {
            maps,
            num_units: units[li],
            dims,
        };
        dims = level.mapped_sizes();
        levels.push(level);
    }

    let used_pes = levels.iter().map(|l| l.num_units).product();
    Ok(Resolved {
        levels,
        num_pes,
        used_pes,
        stride_y: layer.dims.stride_y,
        stride_x: layer.dims.stride_x,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::directive::SizeExpr;
    use maestro_dnn::{LayerDims, Operator};

    fn toy_layer() -> Layer {
        Layer::new("t", Operator::conv2d(), LayerDims::square(1, 4, 6, 8, 3))
    }

    #[test]
    fn single_level_resolution() {
        let df = Dataflow::builder("os")
            .spatial(SizeExpr::size(Dim::S), 1, Dim::X)
            .temporal(SizeExpr::size(Dim::S), SizeExpr::size(Dim::S), Dim::S)
            .build();
        let r = resolve(&df, &toy_layer(), 16).unwrap();
        assert_eq!(r.levels.len(), 1);
        let l = &r.levels[0];
        assert_eq!(l.num_units, 16);
        assert_eq!(l.map(Dim::X).unwrap().size, 3);
        assert_eq!(l.map(Dim::X).unwrap().kind, MapKind::Spatial);
        // All 7 dims present; unmapped are inferred full coverage.
        assert_eq!(l.maps.len(), 7);
        let k = l.map(Dim::K).unwrap();
        assert!(k.inferred);
        assert_eq!(k.size, 4);
        assert_eq!(k.offset, 4);
    }

    #[test]
    fn cluster_unit_arithmetic() {
        let df = Dataflow::builder("two")
            .spatial(1, 1, Dim::K)
            .cluster(SizeExpr::lit(8))
            .spatial(1, 1, Dim::C)
            .build();
        let r = resolve(&df, &toy_layer(), 64).unwrap();
        assert_eq!(r.levels.len(), 2);
        assert_eq!(r.levels[0].num_units, 8, "64 PEs / clusters of 8");
        assert_eq!(r.levels[1].num_units, 8, "8 PEs per cluster");
        assert_eq!(r.used_pes, 64);
    }

    #[test]
    fn nested_clusters() {
        let df = Dataflow::builder("three")
            .spatial(1, 1, Dim::K)
            .cluster(SizeExpr::lit(16))
            .spatial(1, 1, Dim::C)
            .cluster(SizeExpr::lit(4))
            .spatial(1, 1, Dim::X)
            .build();
        let r = resolve(&df, &toy_layer(), 64).unwrap();
        assert_eq!(r.levels.len(), 3);
        assert_eq!(r.levels[0].num_units, 4); // 64 / 16
        assert_eq!(r.levels[1].num_units, 4); // 16 / 4
        assert_eq!(r.levels[2].num_units, 4); // 4
    }

    #[test]
    fn inner_level_sees_outer_chunk_sizes() {
        let df = Dataflow::builder("yx")
            .spatial(SizeExpr::size(Dim::R), 1, Dim::Y)
            .temporal(4, 4, Dim::X)
            .cluster(SizeExpr::lit(4))
            .spatial(1, 1, Dim::X)
            .build();
        let r = resolve(&df, &toy_layer(), 16).unwrap();
        let inner = &r.levels[1];
        assert_eq!(inner.dims.get(Dim::Y), 3, "outer mapped Sz(R)=3 rows");
        assert_eq!(inner.dims.get(Dim::X), 4, "outer mapped 4 columns");
        assert_eq!(
            inner.dims.get(Dim::K),
            4,
            "unmapped dims pass through whole"
        );
    }

    #[test]
    fn size_clamping() {
        let df = Dataflow::builder("clamp")
            .temporal(100, 100, Dim::C)
            .build();
        let r = resolve(&df, &toy_layer(), 4).unwrap();
        assert_eq!(r.levels[0].map(Dim::C).unwrap().size, 6);
    }

    #[test]
    fn errors() {
        let layer = toy_layer();
        let df = Dataflow::builder("z").temporal(0u64, 1, Dim::K).build();
        assert_eq!(resolve(&df, &layer, 4), Err(ResolveError::ZeroSize(Dim::K)));

        let df = Dataflow::builder("z").temporal(1, 0u64, Dim::K).build();
        assert_eq!(
            resolve(&df, &layer, 4),
            Err(ResolveError::ZeroOffset(Dim::K))
        );

        let df = Dataflow::builder("d")
            .temporal(1, 1, Dim::K)
            .spatial(1, 1, Dim::K)
            .build();
        assert_eq!(
            resolve(&df, &layer, 4),
            Err(ResolveError::DuplicateDim(Dim::K))
        );

        let df = Dataflow::builder("c")
            .spatial(1, 1, Dim::K)
            .cluster(SizeExpr::lit(32))
            .spatial(1, 1, Dim::C)
            .build();
        assert!(matches!(
            resolve(&df, &layer, 16),
            Err(ResolveError::ClusterTooLarge {
                cluster: 32,
                available: 16
            })
        ));

        let df = Dataflow::builder("p").spatial(1, 1, Dim::K).build();
        assert_eq!(resolve(&df, &layer, 0), Err(ResolveError::NoPes));
    }

    #[test]
    fn chunk_iteration() {
        let m = ResolvedMap {
            kind: MapKind::Temporal,
            dim: Dim::X,
            size: 3,
            offset: 2,
            inferred: false,
        };
        // dim size 8: starts 0,2,4, last chunk start 4 has len 3; chunks
        // cover up to index 6 then an edge chunk is needed: ceil((8-3)/2)+1=4.
        assert_eq!(m.num_chunks(8), 4);
        assert_eq!(m.chunk(0, 8), (0, 3));
        assert_eq!(m.chunk(1, 8), (2, 3));
        assert_eq!(m.chunk(3, 8), (6, 2), "edge chunk truncated");
        // Fully covered dimension: one chunk.
        assert_eq!(m.num_chunks(3), 1);
        assert_eq!(m.num_chunks(2), 1);
    }

    #[test]
    fn yr_p_style_two_spatial_maps_in_inner_level() {
        let df = Dataflow::builder("yr")
            .spatial(SizeExpr::size(Dim::R), 1, Dim::Y)
            .cluster(SizeExpr::size(Dim::R))
            .spatial(1, 1, Dim::Y)
            .spatial(1, 1, Dim::R)
            .build();
        let r = resolve(&df, &toy_layer(), 12).unwrap();
        let inner = &r.levels[1];
        assert_eq!(inner.num_units, 3);
        assert_eq!(inner.spatial_maps().count(), 2);
        assert_eq!(inner.dims.get(Dim::Y), 3);
        assert_eq!(inner.dims.get(Dim::R), 3);
    }
}

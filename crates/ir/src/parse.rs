//! Text format for dataflow descriptions (the MAESTRO-style DSL).
//!
//! Grammar (whitespace-insensitive, `//` line comments):
//!
//! ```text
//! dataflow  := "Dataflow" IDENT "{" directive* "}"
//! directive := ("SpatialMap" | "TemporalMap") "(" expr "," expr ")" DIM ";"
//!            | "Cluster" "(" expr ")" ";"
//! expr      := term (("+" | "-") term)*
//! term      := INT | "Sz" "(" DIM ")"
//! DIM       := "N" | "K" | "C" | "Y" | "X" | "R" | "S" | "Y'" | "X'"
//! ```
//!
//! A bare directive list (without the `Dataflow name { }` wrapper) is also
//! accepted and named `"anonymous"`.

use crate::dataflow::Dataflow;
use crate::directive::{Directive, SizeExpr};
use maestro_dnn::Dim;
use std::fmt;

/// A parse failure, with source position information and a message.
///
/// Errors returned by [`parse_dataflow`] carry line/column coordinates and
/// the offending source line; `Display` renders a caret snippet pointing at
/// the error. The raw byte `offset` is kept for compatibility.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset where the error was detected.
    pub offset: usize,
    /// 1-based line number of the error (0 when no source was attached).
    pub line: usize,
    /// 1-based byte column within the line (0 when no source was attached).
    pub column: usize,
    /// The offending source line (empty when no source was attached).
    pub snippet: String,
    /// Human-readable description of what went wrong.
    pub message: String,
}

impl ParseError {
    fn new(offset: usize, message: impl Into<String>) -> Self {
        ParseError {
            offset,
            line: 0,
            column: 0,
            snippet: String::new(),
            message: message.into(),
        }
    }

    /// Attach source context: computes the 1-based line/column of `offset`
    /// and captures the offending source line for caret rendering.
    #[must_use]
    pub fn with_source(mut self, src: &str) -> Self {
        let offset = self.offset.min(src.len());
        let line_start = src[..offset].rfind('\n').map_or(0, |i| i + 1);
        let line_end = src[offset..].find('\n').map_or(src.len(), |i| offset + i);
        self.line = src[..offset].matches('\n').count() + 1;
        self.column = offset - line_start + 1;
        self.snippet = src[line_start..line_end].to_string();
        self
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            return write!(f, "parse error at byte {}: {}", self.offset, self.message);
        }
        writeln!(
            f,
            "parse error at line {}, column {}: {}",
            self.line, self.column, self.message
        )?;
        writeln!(f, "  {}", self.snippet)?;
        write!(f, "  {}^", " ".repeat(self.column.saturating_sub(1)))
    }
}

impl std::error::Error for ParseError {}

struct Lexer<'a> {
    src: &'a str,
    pos: usize,
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Tok {
    Ident(String),
    Int(u64),
    LParen,
    RParen,
    LBrace,
    RBrace,
    Comma,
    Semi,
    Plus,
    Minus,
    Eof,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "`{s}`"),
            Tok::Int(v) => write!(f, "`{v}`"),
            Tok::LParen => write!(f, "`(`"),
            Tok::RParen => write!(f, "`)`"),
            Tok::LBrace => write!(f, "`{{`"),
            Tok::RBrace => write!(f, "`}}`"),
            Tok::Comma => write!(f, "`,`"),
            Tok::Semi => write!(f, "`;`"),
            Tok::Plus => write!(f, "`+`"),
            Tok::Minus => write!(f, "`-`"),
            Tok::Eof => write!(f, "end of input"),
        }
    }
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer { src, pos: 0 }
    }

    fn skip_trivia(&mut self) {
        let bytes = self.src.as_bytes();
        loop {
            while self.pos < bytes.len() && bytes[self.pos].is_ascii_whitespace() {
                self.pos += 1;
            }
            if self.src[self.pos..].starts_with("//") {
                while self.pos < bytes.len() && bytes[self.pos] != b'\n' {
                    self.pos += 1;
                }
            } else {
                break;
            }
        }
    }

    fn next(&mut self) -> Result<(usize, Tok), ParseError> {
        self.skip_trivia();
        let start = self.pos;
        let bytes = self.src.as_bytes();
        if self.pos >= bytes.len() {
            return Ok((start, Tok::Eof));
        }
        let c = bytes[self.pos];
        let tok = match c {
            b'(' => {
                self.pos += 1;
                Tok::LParen
            }
            b')' => {
                self.pos += 1;
                Tok::RParen
            }
            b'{' => {
                self.pos += 1;
                Tok::LBrace
            }
            b'}' => {
                self.pos += 1;
                Tok::RBrace
            }
            b',' => {
                self.pos += 1;
                Tok::Comma
            }
            b';' => {
                self.pos += 1;
                Tok::Semi
            }
            b'+' => {
                self.pos += 1;
                Tok::Plus
            }
            b'-' => {
                self.pos += 1;
                Tok::Minus
            }
            b'0'..=b'9' => {
                let mut end = self.pos;
                while end < bytes.len() && bytes[end].is_ascii_digit() {
                    end += 1;
                }
                let v: u64 = self.src[self.pos..end]
                    .parse()
                    .map_err(|_| ParseError::new(start, "integer literal out of range"))?;
                self.pos = end;
                Tok::Int(v)
            }
            _ if c.is_ascii_alphabetic() || c == b'_' => {
                let mut end = self.pos;
                while end < bytes.len()
                    && (bytes[end].is_ascii_alphanumeric()
                        || bytes[end] == b'_'
                        || bytes[end] == b'-'
                        || bytes[end] == b'\'')
                {
                    end += 1;
                }
                let s = self.src[self.pos..end].to_string();
                self.pos = end;
                Tok::Ident(s)
            }
            other => {
                return Err(ParseError::new(
                    start,
                    format!("unexpected character `{}`", other as char),
                ))
            }
        };
        Ok((start, tok))
    }
}

struct Parser<'a> {
    lexer: Lexer<'a>,
    peeked: Option<(usize, Tok)>,
}

impl<'a> Parser<'a> {
    fn new(src: &'a str) -> Self {
        Parser {
            lexer: Lexer::new(src),
            peeked: None,
        }
    }

    fn peek(&mut self) -> Result<&(usize, Tok), ParseError> {
        if self.peeked.is_none() {
            self.peeked = Some(self.lexer.next()?);
        }
        match self.peeked.as_ref() {
            Some(t) => Ok(t),
            // Unreachable (just filled above), but reported as an error
            // rather than a panic: the library is panic-free by policy.
            None => Err(ParseError::new(self.lexer.pos, "internal lexer error")),
        }
    }

    fn bump(&mut self) -> Result<(usize, Tok), ParseError> {
        match self.peeked.take() {
            Some(t) => Ok(t),
            None => self.lexer.next(),
        }
    }

    fn expect(&mut self, want: &Tok) -> Result<(), ParseError> {
        let (off, got) = self.bump()?;
        if &got == want {
            Ok(())
        } else {
            Err(ParseError::new(
                off,
                format!("expected {want}, found {got}"),
            ))
        }
    }

    fn dim(&mut self) -> Result<Dim, ParseError> {
        let (off, tok) = self.bump()?;
        match tok {
            Tok::Ident(name) => name
                .parse()
                .map_err(|_| ParseError::new(off, format!("`{name}` is not a dimension name"))),
            other => Err(ParseError::new(
                off,
                format!("expected a dimension name, found {other}"),
            )),
        }
    }

    fn term(&mut self) -> Result<SizeExpr, ParseError> {
        let (off, tok) = self.bump()?;
        match tok {
            Tok::Int(v) => Ok(SizeExpr::Const(v)),
            Tok::Ident(s) if s == "Sz" => {
                self.expect(&Tok::LParen)?;
                let d = self.dim()?;
                self.expect(&Tok::RParen)?;
                Ok(SizeExpr::Size(d))
            }
            other => Err(ParseError::new(
                off,
                format!("expected an integer or Sz(dim), found {other}"),
            )),
        }
    }

    fn expr(&mut self) -> Result<SizeExpr, ParseError> {
        let mut lhs = self.term()?;
        loop {
            match &self.peek()?.1 {
                Tok::Plus => {
                    self.bump()?;
                    lhs = lhs.add(self.term()?);
                }
                Tok::Minus => {
                    self.bump()?;
                    lhs = lhs.sub(self.term()?);
                }
                _ => return Ok(lhs),
            }
        }
    }

    fn directive(&mut self, keyword: &str, off: usize) -> Result<Directive, ParseError> {
        match keyword {
            "SpatialMap" | "TemporalMap" => {
                self.expect(&Tok::LParen)?;
                let size = self.expr()?;
                self.expect(&Tok::Comma)?;
                let offset = self.expr()?;
                self.expect(&Tok::RParen)?;
                let dim = self.dim()?;
                if keyword == "SpatialMap" {
                    Ok(Directive::SpatialMap { size, offset, dim })
                } else {
                    Ok(Directive::TemporalMap { size, offset, dim })
                }
            }
            "Cluster" => {
                self.expect(&Tok::LParen)?;
                let size = self.expr()?;
                // Real MAESTRO files write `Cluster(n, P)`; accept and
                // ignore a trailing `, IDENT` argument.
                if self.peek()?.1 == Tok::Comma {
                    self.bump()?;
                    self.bump()?;
                }
                self.expect(&Tok::RParen)?;
                Ok(Directive::Cluster(size))
            }
            other => Err(ParseError::new(
                off,
                format!("expected SpatialMap, TemporalMap or Cluster, found `{other}`"),
            )),
        }
    }

    fn directives_until(&mut self, terminator: &Tok) -> Result<Vec<Directive>, ParseError> {
        let mut out = Vec::new();
        loop {
            let (off, tok) = self.bump()?;
            match tok {
                t if &t == terminator => return Ok(out),
                Tok::Ident(kw) => {
                    out.push(self.directive(&kw, off)?);
                    // Semicolons between directives are optional.
                    if self.peek()?.1 == Tok::Semi {
                        self.bump()?;
                    }
                }
                other => {
                    return Err(ParseError::new(
                        off,
                        format!("expected a directive or {terminator}, found {other}"),
                    ))
                }
            }
        }
    }
}

/// Parse a dataflow description.
///
/// # Errors
///
/// Returns a [`ParseError`] with line/column coordinates and a caret
/// snippet on malformed input.
///
/// ```
/// use maestro_ir::parse::parse_dataflow;
/// let df = parse_dataflow(
///     "Dataflow ws {\n  TemporalMap(1,1) K;\n  SpatialMap(Sz(S),1) X;\n}",
/// ).unwrap();
/// assert_eq!(df.name(), "ws");
/// assert_eq!(df.directives().len(), 2);
/// ```
pub fn parse_dataflow(src: &str) -> Result<Dataflow, ParseError> {
    parse_toplevel(src).map_err(|e| e.with_source(src))
}

fn parse_toplevel(src: &str) -> Result<Dataflow, ParseError> {
    let mut p = Parser::new(src);
    let (off, tok) = p.bump()?;
    match tok {
        Tok::Ident(kw) if kw == "Dataflow" => {
            let (noff, ntok) = p.bump()?;
            let name = match ntok {
                Tok::Ident(n) => n,
                other => {
                    return Err(ParseError::new(
                        noff,
                        format!("expected a dataflow name, found {other}"),
                    ))
                }
            };
            p.expect(&Tok::LBrace)?;
            let directives = p.directives_until(&Tok::RBrace)?;
            let (eoff, etok) = p.bump()?;
            if etok != Tok::Eof {
                return Err(ParseError::new(
                    eoff,
                    format!("trailing input after dataflow body: {etok}"),
                ));
            }
            Ok(Dataflow::new(name, directives))
        }
        Tok::Ident(kw) => {
            // Bare directive list.
            let mut first = vec![p.directive(&kw, off)?];
            if p.peek()?.1 == Tok::Semi {
                p.bump()?;
            }
            let rest = p.directives_until(&Tok::Eof)?;
            first.extend(rest);
            Ok(Dataflow::new("anonymous", first))
        }
        Tok::Eof => Err(ParseError::new(off, "empty input")),
        other => Err(ParseError::new(
            off,
            format!("expected `Dataflow` or a directive, found {other}"),
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::styles::Style;

    #[test]
    fn roundtrip_all_styles() {
        for s in Style::ALL {
            let df = s.dataflow();
            let printed = df.to_string();
            let reparsed =
                parse_dataflow(&printed).unwrap_or_else(|e| panic!("{s}: {e}\n{printed}"));
            // Names with `-` parse back identically thanks to ident rules.
            assert_eq!(df, reparsed, "{printed}");
        }
    }

    #[test]
    fn bare_directive_list() {
        let df = parse_dataflow("TemporalMap(1,1) K SpatialMap(2,2) C").unwrap();
        assert_eq!(df.name(), "anonymous");
        assert_eq!(df.directives().len(), 2);
    }

    #[test]
    fn comments_and_whitespace() {
        let df = parse_dataflow(
            "Dataflow x { // a comment\n  TemporalMap(Sz(R), Sz(R)) R; // inline\n}",
        )
        .unwrap();
        assert_eq!(df.directives().len(), 1);
    }

    #[test]
    fn output_centric_dims_are_aliases() {
        let df = parse_dataflow("SpatialMap(1,1) Y'").unwrap();
        assert_eq!(df.directives()[0].dim(), Some(maestro_dnn::Dim::Y));
    }

    #[test]
    fn cluster_with_type_argument() {
        let df = parse_dataflow("Cluster(3, P); SpatialMap(1,1) Y").unwrap();
        assert_eq!(df.directives().len(), 2);
    }

    #[test]
    fn size_expressions() {
        let df = parse_dataflow("TemporalMap(8+Sz(S)-1, 8) X").unwrap();
        let printed = df.to_string();
        assert!(printed.contains("8+Sz(S)-1"), "{printed}");
    }

    #[test]
    fn error_reporting() {
        let err = parse_dataflow("").unwrap_err();
        assert!(err.message.contains("empty"));

        let err = parse_dataflow("Dataflow x { Frob(1,1) K; }").unwrap_err();
        assert!(err.message.contains("Frob"), "{err}");

        let err = parse_dataflow("TemporalMap(1,1) Q").unwrap_err();
        assert!(err.message.contains("dimension"), "{err}");

        let err = parse_dataflow("TemporalMap(1 1) K").unwrap_err();
        assert!(err.message.contains("expected"), "{err}");

        let err = parse_dataflow("Dataflow x { } garbage").unwrap_err();
        assert!(err.message.contains("trailing"), "{err}");
    }

    #[test]
    fn error_offsets_point_into_source() {
        let src = "Dataflow x { TemporalMap(1,1) Q; }";
        let err = parse_dataflow(src).unwrap_err();
        assert_eq!(&src[err.offset..err.offset + 1], "Q");
    }

    #[test]
    fn errors_carry_line_column_and_snippet() {
        let src = "Dataflow x {\n  TemporalMap(1,1) K;\n  TemporalMap(1,1) Q;\n}";
        let err = parse_dataflow(src).unwrap_err();
        assert_eq!(err.line, 3);
        assert_eq!(err.column, 20);
        assert_eq!(err.snippet, "  TemporalMap(1,1) Q;");
        assert_eq!(&src[err.offset..err.offset + 1], "Q");
    }

    #[test]
    fn display_renders_a_caret_under_the_error() {
        let err = parse_dataflow("TemporalMap(1,1) Q").unwrap_err();
        let rendered = err.to_string();
        assert!(rendered.contains("line 1, column 18"), "{rendered}");
        assert!(rendered.contains("TemporalMap(1,1) Q"), "{rendered}");
        let caret_line = rendered.lines().last().unwrap();
        assert_eq!(
            caret_line.find('^'),
            Some(2 + 17),
            "caret under column 18 with 2-space indent:\n{rendered}"
        );
    }

    #[test]
    fn errors_at_end_of_input_stay_in_bounds() {
        let err = parse_dataflow("Dataflow x {").unwrap_err();
        assert!(err.line >= 1);
        assert!(err.offset <= "Dataflow x {".len());
        let _ = err.to_string();
    }
}

//! Compute-centric front-end: tiled loop nests with explicit parallelism.
//!
//! The paper positions the data-centric directives as an IR that "can be
//! extracted from a high-level loop-nest notation" (§3.2, Figure 4(b)→(c)).
//! This module provides that extraction for the common affine case: a nest
//! of `for`/`parallel_for` loops over dimension tiles, with explicit
//! buffer-level boundaries, converts directly into a directive list.
//!
//! ```
//! use maestro_dnn::Dim;
//! use maestro_ir::loopnest::{Loop, LoopNest};
//!
//! // Figure 4(b): the output-stationary 1-D convolution.
//! let nest = LoopNest::new("fig4")
//!     .loop_(Loop::par_for(Dim::X, 2))
//!     .loop_(Loop::for_(Dim::S, 3));
//! let df = nest.to_dataflow();
//! assert_eq!(df.directives().len(), 2);
//! ```

use crate::dataflow::Dataflow;
use crate::directive::{Directive, SizeExpr};
use maestro_dnn::Dim;
use serde::{Deserialize, Serialize};

/// One level of a tiled loop nest.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Loop {
    /// A sequential loop over tiles of `tile` indices of `dim`.
    For {
        /// Iterated dimension.
        dim: Dim,
        /// Tile size (indices advanced per iteration).
        tile: u64,
        /// Step between consecutive tile starts; equals `tile` for
        /// classic tiling, smaller for sliding windows.
        step: u64,
    },
    /// A parallel loop: tiles of `dim` are distributed across PEs.
    ParFor {
        /// Parallelized dimension.
        dim: Dim,
        /// Tile size per PE.
        tile: u64,
        /// Step between consecutive PEs' tile starts.
        step: u64,
    },
    /// A buffer-level boundary: loops below this point target the next
    /// (inner) scratchpad level of clusters of `size` units.
    Level {
        /// Cluster size of the inner level.
        size: u64,
    },
}

impl Loop {
    /// A sequential loop with step == tile.
    pub const fn for_(dim: Dim, tile: u64) -> Self {
        Loop::For {
            dim,
            tile,
            step: tile,
        }
    }

    /// A sequential sliding-window loop (`step < tile`).
    pub const fn for_window(dim: Dim, tile: u64, step: u64) -> Self {
        Loop::For { dim, tile, step }
    }

    /// A parallel loop with step == tile.
    pub const fn par_for(dim: Dim, tile: u64) -> Self {
        Loop::ParFor {
            dim,
            tile,
            step: tile,
        }
    }

    /// A parallel sliding-window loop (`step < tile`, overlapping tiles
    /// across PEs — e.g. halos of input rows).
    pub const fn par_for_window(dim: Dim, tile: u64, step: u64) -> Self {
        Loop::ParFor { dim, tile, step }
    }
}

/// A complete tiled loop nest (outermost loop first).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LoopNest {
    name: String,
    loops: Vec<Loop>,
}

impl LoopNest {
    /// Create an empty nest.
    pub fn new(name: impl Into<String>) -> Self {
        LoopNest {
            name: name.into(),
            loops: Vec::new(),
        }
    }

    /// Append a loop (builder-style, outermost first).
    #[must_use]
    pub fn loop_(mut self, l: Loop) -> Self {
        self.loops.push(l);
        self
    }

    /// The loops, outermost first.
    pub fn loops(&self) -> &[Loop] {
        &self.loops
    }

    /// Extract the data-centric directive representation.
    ///
    /// `for` becomes `TemporalMap(tile, step)`, `parallel_for` becomes
    /// `SpatialMap(tile, step)`, and [`Loop::Level`] becomes
    /// `Cluster(size)`; loop order is preserved as directive order.
    pub fn to_dataflow(&self) -> Dataflow {
        let directives = self
            .loops
            .iter()
            .map(|l| match *l {
                Loop::For { dim, tile, step } => Directive::TemporalMap {
                    size: SizeExpr::lit(tile),
                    offset: SizeExpr::lit(step),
                    dim,
                },
                Loop::ParFor { dim, tile, step } => Directive::SpatialMap {
                    size: SizeExpr::lit(tile),
                    offset: SizeExpr::lit(step),
                    dim,
                },
                Loop::Level { size } => Directive::Cluster(SizeExpr::lit(size)),
            })
            .collect();
        Dataflow::new(self.name.clone(), directives)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::directive::MapKind;

    #[test]
    fn figure4_extraction() {
        // Figure 4(b): par_for over x' tiles of 2, for over s tiles of 3.
        let nest = LoopNest::new("fig4")
            .loop_(Loop::par_for(Dim::X, 2))
            .loop_(Loop::for_(Dim::S, 3));
        let df = nest.to_dataflow();
        assert_eq!(df.name(), "fig4");
        let d = df.directives();
        assert_eq!(d[0].kind(), Some(MapKind::Spatial));
        assert_eq!(d[0].dim(), Some(Dim::X));
        assert_eq!(d[1].kind(), Some(MapKind::Temporal));
    }

    #[test]
    fn multi_level_nest_with_windows() {
        // Figure 6(a)-style: two buffer levels, sliding windows on Y.
        let nest = LoopNest::new("rs")
            .loop_(Loop::for_(Dim::C, 3))
            .loop_(Loop::for_(Dim::K, 2))
            .loop_(Loop::par_for_window(Dim::Y, 3, 1))
            .loop_(Loop::for_window(Dim::X, 3, 1))
            .loop_(Loop::Level { size: 3 })
            .loop_(Loop::par_for(Dim::Y, 1))
            .loop_(Loop::par_for(Dim::R, 1));
        let df = nest.to_dataflow();
        assert_eq!(df.num_levels(), 2);
        assert_eq!(
            df.directives().len(),
            7,
            "Level becomes a Cluster directive"
        );
        // Window steps survive the conversion.
        let s = df.to_string();
        assert!(s.contains("SpatialMap(3,1) Y"), "{s}");
        assert!(s.contains("Cluster(3)"), "{s}");
    }

    #[test]
    fn loops_accessor() {
        let nest = LoopNest::new("n").loop_(Loop::for_(Dim::K, 4));
        assert_eq!(nest.loops().len(), 1);
    }
}

//! The dataflow styles evaluated in the paper.
//!
//! Table 3 defines five partitioning strategies, each motivated by a real
//! accelerator: C-P (no-local-reuse, DianNao-style), X-P (weight-stationary),
//! YX-P (ShiDianNao-style output-stationary), YR-P (Eyeriss-style
//! row-stationary), and KC-P (NVDLA-style weight-stationary with channel
//! parallelism). This module also provides the six 1-D convolution
//! "playground" dataflows of Figure 5 and the row-stationary example of
//! Figure 6.

use crate::dataflow::Dataflow;
use crate::directive::SizeExpr;
use maestro_dnn::Dim;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The five Table 3 dataflow styles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Style {
    /// C-Partitioned: input-channel parallelism, no local reuse (NLR).
    CP,
    /// X-Partitioned: weight-stationary with column parallelism (WS).
    XP,
    /// YX-Partitioned: 2-D output parallelism, ShiDianNao-style (Shi).
    YXP,
    /// YR-Partitioned: row-stationary, Eyeriss-style (RS).
    YRP,
    /// KC-Partitioned: channel parallel weight-stationary, NVDLA-style (DLA).
    KCP,
}

impl Style {
    /// All five styles in Table 3 order.
    pub const ALL: [Style; 5] = [Style::CP, Style::XP, Style::YXP, Style::YRP, Style::KCP];

    /// The short name used in the paper's figures (NLR/WS/Shi/RS/DLA
    /// in Figure 12, C-P/X-P/... in Figure 10).
    pub const fn short_name(self) -> &'static str {
        match self {
            Style::CP => "C-P",
            Style::XP => "X-P",
            Style::YXP => "YX-P",
            Style::YRP => "YR-P",
            Style::KCP => "KC-P",
        }
    }

    /// The informal accelerator-style alias (Figure 12's axis labels).
    pub const fn alias(self) -> &'static str {
        match self {
            Style::CP => "NLR",
            Style::XP => "WS",
            Style::YXP => "Shi",
            Style::YRP => "RS",
            Style::KCP => "DLA",
        }
    }

    /// Construct the style's dataflow description (Table 3).
    pub fn dataflow(self) -> Dataflow {
        let sz = SizeExpr::size;
        match self {
            // Large spatial reduction, input-channel parallelism, no local
            // reuse.
            Style::CP => Dataflow::builder(self.short_name())
                .temporal(1, 1, Dim::K)
                .temporal(sz(Dim::R), 1, Dim::Y)
                .temporal(sz(Dim::S), 1, Dim::X)
                .temporal(sz(Dim::R), sz(Dim::R), Dim::R)
                .temporal(sz(Dim::S), sz(Dim::S), Dim::S)
                .spatial(1, 1, Dim::C)
                .build(),
            // Weight-stationary, input-column parallelism.
            Style::XP => Dataflow::builder(self.short_name())
                .temporal(1, 1, Dim::K)
                .temporal(1, 1, Dim::C)
                .temporal(sz(Dim::R), sz(Dim::R), Dim::R)
                .temporal(sz(Dim::S), sz(Dim::S), Dim::S)
                .temporal(sz(Dim::R), 1, Dim::Y)
                .spatial(sz(Dim::S), 1, Dim::X)
                .build(),
            // Output-stationary over a 2-D activation tile (ShiDianNao).
            Style::YXP => Dataflow::builder(self.short_name())
                .temporal(1, 1, Dim::K)
                .spatial(sz(Dim::R), 1, Dim::Y)
                .temporal(
                    SizeExpr::lit(8).add(sz(Dim::S)).sub(SizeExpr::lit(1)),
                    8,
                    Dim::X,
                )
                .temporal(1, 1, Dim::C)
                .temporal(sz(Dim::R), sz(Dim::R), Dim::R)
                .temporal(sz(Dim::S), sz(Dim::S), Dim::S)
                .cluster(SizeExpr::lit(8))
                .spatial(sz(Dim::S), 1, Dim::X)
                .build(),
            // Row-stationary (Eyeriss): rows of inputs spatially across
            // clusters, filter rows spatially within a cluster.
            Style::YRP => Dataflow::builder(self.short_name())
                .temporal(2, 2, Dim::C)
                .temporal(2, 2, Dim::K)
                .spatial(sz(Dim::R), 1, Dim::Y)
                .temporal(sz(Dim::S), 1, Dim::X)
                .temporal(sz(Dim::R), sz(Dim::R), Dim::R)
                .temporal(sz(Dim::S), sz(Dim::S), Dim::S)
                .cluster(sz(Dim::R))
                .spatial(1, 1, Dim::Y)
                .spatial(1, 1, Dim::R)
                .build(),
            // NVDLA-style: output channels across clusters, input channels
            // within a cluster, weight-stationary.
            Style::KCP => Dataflow::builder(self.short_name())
                .spatial(1, 1, Dim::K)
                .temporal(64, 64, Dim::C)
                .temporal(sz(Dim::R), sz(Dim::R), Dim::R)
                .temporal(sz(Dim::S), sz(Dim::S), Dim::S)
                .temporal(sz(Dim::R), 1, Dim::Y)
                .temporal(sz(Dim::S), 1, Dim::X)
                .cluster(SizeExpr::lit(64))
                .spatial(1, 1, Dim::C)
                .build(),
        }
    }

    /// A one-line characterization (Table 3's right column, abridged).
    pub const fn characteristics(self) -> &'static str {
        match self {
            Style::CP => "input-channel parallelism; large spatial reduction; no local reuse",
            Style::XP => "weight-stationary; column parallelism; halo spatial reuse",
            Style::YXP => "output-stationary; 2-D activation parallelism; 2-D halo reuse",
            Style::YRP => "row-stationary; Y and S parallelism; spatial reduction in cluster",
            Style::KCP => "weight-stationary; K and C parallelism; 64-way spatial reduction",
        }
    }
}

impl fmt::Display for Style {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.short_name())
    }
}

/// The six 1-D convolution playground dataflows of Figure 5 (A–F).
///
/// These operate on a 1-D convolution layer (`N=K=C=1`, `Y=R=1`), mapping
/// only `X` (via sliding windows over the output) and `S`.
pub fn playground(id: char) -> Option<Dataflow> {
    let sz = SizeExpr::size;
    let name = format!("Fig5-{id}");
    let df = match id {
        // A: output-stationary — X' spatial, S temporal.
        'A' => Dataflow::builder(name)
            .spatial(sz(Dim::S), 1, Dim::X)
            .temporal(1, 1, Dim::S)
            .build(),
        // B: weight-stationary — S temporal outer, X' spatial... order
        // swapped relative to A: S outer means weights change slowest.
        'B' => Dataflow::builder(name)
            .temporal(1, 1, Dim::S)
            .spatial(sz(Dim::S), 1, Dim::X)
            .build(),
        // C: collaborative output-stationary — S spatial, X' temporal,
        // X' outer.
        'C' => Dataflow::builder(name)
            .temporal(sz(Dim::S), 1, Dim::X)
            .spatial(1, 1, Dim::S)
            .build(),
        // D: collaborative weight-stationary — S spatial (stationary per
        // PE), X' temporal inner.
        'D' => Dataflow::builder(name)
            .spatial(1, 1, Dim::S)
            .temporal(sz(Dim::S), 1, Dim::X)
            .build(),
        // E: tiled collaborative weight-stationary — S spatial with tile
        // size 2, exposing partial temporal reuse of inputs.
        'E' => Dataflow::builder(name)
            .spatial(2, 2, Dim::S)
            .temporal(sz(Dim::S), 1, Dim::X)
            .build(),
        // F: clustered — X' across clusters, S within clusters
        // (the inner X' map is the inferred full window).
        'F' => Dataflow::builder(name)
            .temporal(sz(Dim::S), sz(Dim::S), Dim::S)
            .spatial(sz(Dim::S), 1, Dim::X)
            .cluster(sz(Dim::S))
            .spatial(1, 1, Dim::S)
            .build(),
        _ => return None,
    };
    Some(df)
}

/// The Figure 6 row-stationary example dataflow: a two-level hierarchy
/// with three-PE clusters, for the Figure 1 layer (K4 C6 Y8 X8 R3 S3).
pub fn figure6_row_stationary() -> Dataflow {
    let sz = SizeExpr::size;
    Dataflow::builder("Fig6-RS")
        .temporal(1, 1, Dim::N)
        .temporal(3, 3, Dim::C)
        .temporal(2, 2, Dim::K)
        .spatial(3, 1, Dim::Y)
        .temporal(3, 1, Dim::X)
        .temporal(sz(Dim::R), sz(Dim::R), Dim::R)
        .temporal(sz(Dim::S), sz(Dim::S), Dim::S)
        .cluster(SizeExpr::lit(3))
        .spatial(1, 1, Dim::Y)
        .spatial(1, 1, Dim::R)
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resolve::resolve;
    use maestro_dnn::{Layer, LayerDims, Operator};

    fn vgg_conv2() -> Layer {
        Layer::new(
            "c2",
            Operator::conv2d(),
            LayerDims::square(1, 64, 64, 226, 3),
        )
    }

    #[test]
    fn all_styles_resolve_on_vgg_conv2() {
        let layer = vgg_conv2();
        for s in Style::ALL {
            let df = s.dataflow();
            let r =
                resolve(&df, &layer, 256).unwrap_or_else(|e| panic!("{s} failed to resolve: {e}"));
            assert!(!r.levels.is_empty());
            assert!(r.used_pes <= 256);
        }
    }

    #[test]
    fn style_names_and_aliases() {
        assert_eq!(Style::KCP.short_name(), "KC-P");
        assert_eq!(Style::KCP.alias(), "DLA");
        assert_eq!(Style::YRP.alias(), "RS");
        assert_eq!(Style::CP.to_string(), "C-P");
        for s in Style::ALL {
            assert!(!s.characteristics().is_empty());
        }
    }

    #[test]
    fn kcp_has_two_levels_with_64_wide_inner() {
        let r = resolve(&Style::KCP.dataflow(), &vgg_conv2(), 256).unwrap();
        assert_eq!(r.levels.len(), 2);
        assert_eq!(r.levels[0].num_units, 4, "256 PEs / clusters of 64");
        assert_eq!(r.levels[1].num_units, 64);
    }

    #[test]
    fn yrp_cluster_size_tracks_filter_rows() {
        let r = resolve(&Style::YRP.dataflow(), &vgg_conv2(), 256).unwrap();
        assert_eq!(r.levels[1].num_units, 3, "Cluster(Sz(R)) with R=3");
        assert_eq!(r.levels[0].num_units, 85, "floor(256/3) clusters");
        assert_eq!(r.used_pes, 255);
    }

    #[test]
    fn playground_dataflows_resolve_on_1d_conv() {
        // 1-D conv: X'=6, S=3 => X=8 (Figure 5 uses 3 PEs).
        let layer = Layer::new(
            "1d",
            Operator::conv2d(),
            LayerDims {
                n: 1,
                k: 1,
                c: 1,
                y: 1,
                x: 8,
                r: 1,
                s: 3,
                stride_y: 1,
                stride_x: 1,
            },
        );
        for id in ['A', 'B', 'C', 'D', 'E', 'F'] {
            let df = playground(id).unwrap();
            let pes = if id == 'F' { 6 } else { 3 };
            resolve(&df, &layer, pes)
                .unwrap_or_else(|e| panic!("Fig5-{id} failed to resolve: {e}"));
        }
        assert!(playground('Z').is_none());
    }

    #[test]
    fn figure6_resolves_on_figure1_layer() {
        let layer = Layer::new("fig1", Operator::conv2d(), LayerDims::square(2, 4, 6, 8, 3));
        let r = resolve(&figure6_row_stationary(), &layer, 6).unwrap();
        assert_eq!(r.levels.len(), 2);
        assert_eq!(r.levels[0].num_units, 2, "two clusters");
        assert_eq!(r.levels[1].num_units, 3, "three PEs each");
    }
}

//! Complete dataflow descriptions and a builder for constructing them.

use crate::directive::{Directive, SizeExpr};
use maestro_dnn::Dim;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// A named, ordered list of dataflow directives.
///
/// The `Display` impl prints the MAESTRO-style textual form, and
/// [`FromStr`] parses it back; the two round-trip.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Dataflow {
    name: String,
    directives: Vec<Directive>,
}

impl Dataflow {
    /// Create a dataflow from parts.
    ///
    /// Prefer [`Dataflow::builder`] in application code.
    pub fn new(name: impl Into<String>, directives: Vec<Directive>) -> Self {
        Dataflow {
            name: name.into(),
            directives,
        }
    }

    /// Start building a dataflow with the given name.
    pub fn builder(name: impl Into<String>) -> DataflowBuilder {
        DataflowBuilder {
            name: name.into(),
            directives: Vec::new(),
        }
    }

    /// The dataflow's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The ordered directive list.
    pub fn directives(&self) -> &[Directive] {
        &self.directives
    }

    /// Number of cluster levels (number of `Cluster` directives + 1).
    pub fn num_levels(&self) -> usize {
        1 + self
            .directives
            .iter()
            .filter(|d| matches!(d, Directive::Cluster(_)))
            .count()
    }

    /// Returns a copy with a different name.
    #[must_use]
    pub fn renamed(&self, name: impl Into<String>) -> Self {
        Dataflow {
            name: name.into(),
            directives: self.directives.clone(),
        }
    }
}

impl fmt::Display for Dataflow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Dataflow {} {{", self.name)?;
        let mut depth = 1usize;
        for d in &self.directives {
            if matches!(d, Directive::Cluster(_)) {
                for _ in 0..depth {
                    write!(f, "  ")?;
                }
                writeln!(f, "{d};")?;
                depth += 1;
            } else {
                for _ in 0..depth {
                    write!(f, "  ")?;
                }
                writeln!(f, "{d};")?;
            }
        }
        write!(f, "}}")
    }
}

impl FromStr for Dataflow {
    type Err = crate::parse::ParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        crate::parse::parse_dataflow(s)
    }
}

/// Incremental builder for [`Dataflow`] (paper-order: outer first).
///
/// ```
/// use maestro_dnn::Dim;
/// use maestro_ir::{Dataflow, SizeExpr};
///
/// let df = Dataflow::builder("kc-p")
///     .temporal(2, 2, Dim::K)
///     .cluster(SizeExpr::lit(64))
///     .spatial(1, 1, Dim::C)
///     .build();
/// assert_eq!(df.num_levels(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct DataflowBuilder {
    name: String,
    directives: Vec<Directive>,
}

impl DataflowBuilder {
    /// Append a `TemporalMap(size, offset) dim`.
    #[must_use]
    pub fn temporal(
        mut self,
        size: impl Into<SizeExpr>,
        offset: impl Into<SizeExpr>,
        dim: Dim,
    ) -> Self {
        self.directives.push(Directive::TemporalMap {
            size: size.into(),
            offset: offset.into(),
            dim,
        });
        self
    }

    /// Append a `SpatialMap(size, offset) dim`.
    #[must_use]
    pub fn spatial(
        mut self,
        size: impl Into<SizeExpr>,
        offset: impl Into<SizeExpr>,
        dim: Dim,
    ) -> Self {
        self.directives.push(Directive::SpatialMap {
            size: size.into(),
            offset: offset.into(),
            dim,
        });
        self
    }

    /// Append a `Cluster(size)` directive, opening an inner level.
    #[must_use]
    pub fn cluster(mut self, size: impl Into<SizeExpr>) -> Self {
        self.directives.push(Directive::Cluster(size.into()));
        self
    }

    /// Finish building.
    pub fn build(self) -> Dataflow {
        Dataflow {
            name: self.name,
            directives: self.directives,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_and_accessors() {
        let df = Dataflow::builder("t")
            .spatial(1, 1, Dim::K)
            .temporal(SizeExpr::size(Dim::R), SizeExpr::size(Dim::R), Dim::R)
            .build();
        assert_eq!(df.name(), "t");
        assert_eq!(df.directives().len(), 2);
        assert_eq!(df.num_levels(), 1);
        let df2 = df.renamed("u");
        assert_eq!(df2.name(), "u");
        assert_eq!(df2.directives(), df.directives());
    }

    #[test]
    fn display_is_indented_by_cluster_depth() {
        let df = Dataflow::builder("x")
            .temporal(1, 1, Dim::K)
            .cluster(SizeExpr::lit(4))
            .spatial(1, 1, Dim::C)
            .build();
        let s = df.to_string();
        assert!(s.contains("Dataflow x {"));
        assert!(s.contains("  TemporalMap(1,1) K;"));
        assert!(s.contains("  Cluster(4);"));
        assert!(s.contains("    SpatialMap(1,1) C;"));
        assert!(s.ends_with('}'));
    }

    #[test]
    fn num_levels_counts_clusters() {
        let df = Dataflow::builder("n")
            .temporal(1, 1, Dim::K)
            .cluster(SizeExpr::lit(4))
            .spatial(1, 1, Dim::C)
            .cluster(SizeExpr::lit(2))
            .spatial(1, 1, Dim::K)
            .build();
        assert_eq!(df.num_levels(), 3);
    }
}

//! The data-centric dataflow intermediate representation (paper §3).
//!
//! A *dataflow* is an ordered list of directives:
//!
//! * [`Directive::SpatialMap`] — distribute a dimension's indices across the
//!   sub-units (PEs or sub-clusters) of the current cluster level;
//! * [`Directive::TemporalMap`] — distribute a dimension's indices across
//!   time steps, identically on every sub-unit;
//! * [`Directive::Cluster`] — group the sub-units below into logical
//!   clusters, opening a new (inner) cluster level;
//! * directive *order* encodes the data-movement order (outer directives
//!   change more slowly).
//!
//! Map sizes and offsets are [`SizeExpr`]s so a dataflow can be written once
//! and re-used across layers (`Sz(R)` etc.), exactly like the paper's
//! Table 3 listings. [`resolve::resolve`] binds a dataflow to a concrete
//! layer and PE count, producing the per-level structure consumed by both
//! the analytical model (`maestro-core`) and the reference simulator
//! (`maestro-sim`).
//!
//! # Example
//!
//! ```
//! use maestro_dnn::Dim;
//! use maestro_ir::{Dataflow, SizeExpr};
//!
//! let df = Dataflow::builder("output-stationary")
//!     .spatial(SizeExpr::size(Dim::S), 1, Dim::X)
//!     .temporal(SizeExpr::size(Dim::S), SizeExpr::size(Dim::S), Dim::S)
//!     .build();
//! assert_eq!(df.directives().len(), 2);
//! let printed = df.to_string();
//! let reparsed: Dataflow = printed.parse().unwrap();
//! assert_eq!(df, reparsed);
//! ```

// Library code is panic-free by policy: fallible paths return typed errors
// instead of unwrapping. Tests are exempt (compiled out under `cfg(test)`).
#![cfg_attr(
    not(test),
    deny(
        clippy::unwrap_used,
        clippy::expect_used,
        clippy::print_stderr,
        clippy::exit
    )
)]

pub mod dataflow;
pub mod directive;
pub mod loopnest;
pub mod parse;
pub mod resolve;
pub mod styles;

pub use dataflow::{Dataflow, DataflowBuilder};
pub use directive::{Directive, MapKind, SizeExpr};
pub use parse::ParseError;
pub use resolve::{resolve, ResolveError, Resolved, ResolvedLevel, ResolvedMap};
pub use styles::Style;

//! Area and power models of accelerator building blocks.
//!
//! The paper synthesizes MAC units, buses, arbiters and scratchpads at
//! 28 nm and fits the bus cost to a linear model and the arbiter cost to a
//! quadratic one (§5.2), then uses those fits inside the DSE. We reproduce
//! the *structure* of that model with synthetic 28 nm-plausible constants,
//! calibrated so that the paper's constraint point (16 mm², 450 mW — the
//! reported Eyeriss budget) binds in the same region of the design space
//! (roughly 50–250 PEs with tens-of-KB to MB-scale buffers).

use crate::config::Accelerator;
use serde::{Deserialize, Serialize};

/// Component area model (mm²).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AreaModel {
    /// Fixed per-PE control/pipeline overhead (mm²).
    pub pe_overhead_mm2: f64,
    /// One 16-bit MAC lane (mm²); scaled by `(bits/16)^1.5`.
    pub mac16_mm2: f64,
    /// SRAM density (mm² per byte), including periphery amortization.
    pub sram_mm2_per_byte: f64,
    /// Fixed SRAM macro overhead (mm² per macro instance).
    pub sram_macro_mm2: f64,
    /// Bus wiring cost (mm² per element/cycle of bandwidth) — linear fit.
    pub bus_mm2_per_lane: f64,
    /// Arbiter cost (mm² per port²) — quadratic fit.
    pub arbiter_mm2_per_port2: f64,
}

impl AreaModel {
    /// The synthetic 28 nm calibration used throughout the workspace.
    pub const fn synthetic_28nm() -> Self {
        AreaModel {
            pe_overhead_mm2: 0.045,
            mac16_mm2: 0.0016,
            sram_mm2_per_byte: 1.2e-6,
            sram_macro_mm2: 0.0008,
            bus_mm2_per_lane: 0.012,
            arbiter_mm2_per_port2: 3.0e-5,
        }
    }

    /// Area of one PE: overhead + vector MAC + L1 macro.
    pub fn pe_area(&self, vector_width: u64, precision_bytes: u64, l1_bytes: u64) -> f64 {
        let bits = precision_bytes as f64 * 8.0;
        let mac = self.mac16_mm2 * (bits / 16.0).powf(1.5) * vector_width as f64;
        let l1 = self.sram_macro_mm2 + self.sram_mm2_per_byte * l1_bytes as f64;
        self.pe_overhead_mm2 + mac + l1
    }

    /// Area of the shared L2 scratchpad.
    pub fn l2_area(&self, l2_bytes: u64) -> f64 {
        self.sram_macro_mm2 + self.sram_mm2_per_byte * l2_bytes as f64
    }

    /// Area of the NoC: linear bus + quadratic arbiter.
    pub fn noc_area(&self, num_pes: u64, bandwidth: u64) -> f64 {
        self.bus_mm2_per_lane * bandwidth as f64
            + self.arbiter_mm2_per_port2 * (num_pes as f64).powi(2) / 64.0
    }

    /// Area of the spatial-reuse support structures (Table 2's choices):
    /// fan-out wiring scales with destinations, adder trees with sources.
    pub fn support_area(&self, num_pes: u64, support: crate::support::ReuseSupport) -> f64 {
        use crate::support::{SpatialMulticast, SpatialReduction};
        let n = num_pes as f64;
        let multicast = match support.multicast {
            SpatialMulticast::Fanout => 0.0002 * n,
            SpatialMulticast::StoreAndForward => 0.0003 * n,
            SpatialMulticast::None => 0.0,
        };
        let reduction = match support.reduction {
            // One adder per tree node ≈ one per source.
            SpatialReduction::Fanin => 0.0004 * n,
            SpatialReduction::ReduceAndForward => 0.0003 * n,
            SpatialReduction::None => 0.0,
        };
        multicast + reduction
    }

    /// Total accelerator area in mm².
    pub fn total_area(&self, acc: &Accelerator) -> f64 {
        acc.num_pes as f64 * self.pe_area(acc.vector_width, acc.precision_bytes, acc.l1_bytes)
            + self.l2_area(acc.l2_bytes)
            + self.noc_area(acc.num_pes, acc.noc.bandwidth)
            + self.support_area(acc.num_pes, acc.support)
    }
}

impl Default for AreaModel {
    fn default() -> Self {
        Self::synthetic_28nm()
    }
}

/// Component power model (mW, at the nominal 1 GHz clock).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerModel {
    /// Per-PE baseline power (control + L1 leakage), mW.
    pub pe_mw: f64,
    /// Additional power per MAC lane, mW.
    pub mac_lane_mw: f64,
    /// SRAM power per KB (dynamic + leakage at typical activity), mW.
    pub sram_mw_per_kb: f64,
    /// NoC power per element/cycle of bandwidth, mW.
    pub noc_mw_per_lane: f64,
}

impl PowerModel {
    /// The synthetic 28 nm calibration.
    pub const fn synthetic_28nm() -> Self {
        PowerModel {
            pe_mw: 1.1,
            mac_lane_mw: 0.35,
            sram_mw_per_kb: 0.055,
            noc_mw_per_lane: 0.9,
        }
    }

    /// Power of the whole PE array (control, MAC lanes, L1 scratchpads).
    pub fn pe_array_power(&self, num_pes: u64, vector_width: u64, l1_bytes: u64) -> f64 {
        num_pes as f64
            * (self.pe_mw
                + self.mac_lane_mw * vector_width as f64
                + self.sram_mw_per_kb * l1_bytes as f64 / 1024.0)
    }

    /// Power of the shared L2 scratchpad.
    pub fn l2_power(&self, l2_bytes: u64) -> f64 {
        self.sram_mw_per_kb * l2_bytes as f64 / 1024.0
    }

    /// Power of the NoC at the given bandwidth.
    pub fn noc_power(&self, bandwidth: u64) -> f64 {
        self.noc_mw_per_lane * bandwidth as f64
    }

    /// Power of the spatial-reuse support structures (a small per-PE
    /// overhead when present).
    pub fn support_power(&self, num_pes: u64, support: crate::support::ReuseSupport) -> f64 {
        support_cost::support_power_mw(num_pes, support)
    }

    /// Total accelerator power in mW: the component sums above, added in
    /// this fixed order (the DSE decomposes the total into per-axis
    /// component tables and relies on reproducing the exact additions).
    pub fn total_power(&self, acc: &Accelerator) -> f64 {
        self.pe_array_power(acc.num_pes, acc.vector_width, acc.l1_bytes)
            + self.l2_power(acc.l2_bytes)
            + self.noc_power(acc.noc.bandwidth)
            + self.support_power(acc.num_pes, acc.support)
    }
}

impl Default for PowerModel {
    fn default() -> Self {
        Self::synthetic_28nm()
    }
}

mod support_cost {
    use crate::support::{ReuseSupport, SpatialMulticast, SpatialReduction};

    /// Power of the spatial-reuse structures, mW.
    pub fn support_power_mw(num_pes: u64, support: ReuseSupport) -> f64 {
        let n = num_pes as f64;
        let m = match support.multicast {
            SpatialMulticast::None => 0.0,
            _ => 0.02 * n,
        };
        let r = match support.reduction {
            SpatialReduction::None => 0.0,
            _ => 0.03 * n,
        };
        m + r
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn acc(pes: u64, l1: u64, l2: u64, bw: u64) -> Accelerator {
        Accelerator::builder(pes)
            .l1_bytes(l1)
            .l2_bytes(l2)
            .noc_bandwidth(bw)
            .build()
    }

    #[test]
    fn area_monotonic_in_everything() {
        let a = AreaModel::default();
        let base = a.total_area(&acc(128, 2048, 1 << 20, 32));
        assert!(a.total_area(&acc(256, 2048, 1 << 20, 32)) > base);
        assert!(a.total_area(&acc(128, 4096, 1 << 20, 32)) > base);
        assert!(a.total_area(&acc(128, 2048, 1 << 21, 32)) > base);
        assert!(a.total_area(&acc(128, 2048, 1 << 20, 64)) > base);
    }

    #[test]
    fn constraint_point_binds_in_paper_region() {
        // The paper's 16 mm² / 450 mW budget should admit a mid-size design
        // and reject an extreme one.
        let a = AreaModel::default();
        let p = PowerModel::default();
        let mid = acc(128, 2048, 1 << 20, 32);
        assert!(a.total_area(&mid) < 16.0, "{}", a.total_area(&mid));
        assert!(p.total_power(&mid) < 450.0, "{}", p.total_power(&mid));
        let big = acc(1024, 8192, 8 << 20, 128);
        assert!(a.total_area(&big) > 16.0 || p.total_power(&big) > 450.0);
        // And specifically ~150-250 PEs should be near the power knee.
        let knee = acc(256, 2048, 1 << 20, 32);
        let pw = p.total_power(&knee);
        assert!((300.0..600.0).contains(&pw), "{pw}");
    }

    #[test]
    fn arbiter_cost_is_quadratic() {
        let a = AreaModel::default();
        let n1 = a.noc_area(64, 32);
        let n2 = a.noc_area(128, 32);
        let n4 = a.noc_area(256, 32);
        assert!((n2 - a.bus_mm2_per_lane * 32.0) / (n1 - a.bus_mm2_per_lane * 32.0) > 3.9);
        assert!((n4 - a.bus_mm2_per_lane * 32.0) / (n2 - a.bus_mm2_per_lane * 32.0) > 3.9);
    }

    #[test]
    fn support_structures_cost_area_and_power() {
        let a = AreaModel::default();
        let p = PowerModel::default();
        let full = acc(128, 2048, 1 << 20, 32);
        let none = Accelerator::builder(128)
            .l1_bytes(2048)
            .l2_bytes(1 << 20)
            .noc_bandwidth(32)
            .support(crate::support::ReuseSupport::none())
            .build();
        assert!(a.total_area(&full) > a.total_area(&none));
        assert!(p.total_power(&full) > p.total_power(&none));
    }

    #[test]
    fn precision_scales_mac_area() {
        let a = AreaModel::default();
        assert!(a.pe_area(1, 2, 2048) > a.pe_area(1, 1, 2048));
        assert!(a.pe_area(4, 1, 2048) > a.pe_area(1, 1, 2048));
    }
}

//! The analytical network-on-chip pipe model (paper §4.2).
//!
//! MAESTRO models the NoC with two parameters — bandwidth (pipe width) and
//! average latency (pipe length) — which, combined with a pipelining
//! assumption, approximates buses, crossbars, trees and meshes. For a bus
//! or crossbar the model is exact; for an `N×N` mesh injected from a corner
//! the paper recommends bandwidth `N` and average latency `N`.

use serde::{Deserialize, Serialize};

/// NoC pipe parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct NocConfig {
    /// Elements transferable per cycle (pipe width).
    pub bandwidth: u64,
    /// Average delivery latency in cycles (pipe length).
    pub avg_latency: u64,
}

impl NocConfig {
    /// Create a pipe model with the given bandwidth and latency.
    ///
    /// # Panics
    ///
    /// Panics if `bandwidth` is zero.
    pub fn new(bandwidth: u64, avg_latency: u64) -> Self {
        assert!(bandwidth > 0, "NoC bandwidth must be positive");
        NocConfig {
            bandwidth,
            avg_latency,
        }
    }

    /// Cycles to deliver `elements` through the pipe:
    /// `ceil(elements / bandwidth) + avg_latency` (zero for an empty
    /// transfer — nothing enters the pipe).
    pub fn transfer_cycles(&self, elements: u64) -> u64 {
        if elements == 0 {
            0
        } else {
            elements.div_ceil(self.bandwidth) + self.avg_latency
        }
    }

    /// Parameters approximating an `n × n` mesh injected at a corner.
    pub fn mesh(n: u64) -> Self {
        NocConfig::new(n.max(1), n)
    }

    /// A bus with dedicated per-tensor channels (e.g. Eyeriss' three-way
    /// hierarchical bus ≈ bandwidth 3 × channel width).
    pub fn bus(width: u64, latency: u64) -> Self {
        NocConfig::new(width, latency)
    }
}

impl Default for NocConfig {
    fn default() -> Self {
        NocConfig::new(32, 2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_rounds_up_and_adds_latency() {
        let noc = NocConfig::new(8, 2);
        assert_eq!(noc.transfer_cycles(0), 0);
        assert_eq!(noc.transfer_cycles(1), 3);
        assert_eq!(noc.transfer_cycles(8), 3);
        assert_eq!(noc.transfer_cycles(9), 4);
        assert_eq!(noc.transfer_cycles(64), 10);
    }

    #[test]
    fn mesh_preset() {
        let m = NocConfig::mesh(16);
        assert_eq!(m.bandwidth, 16);
        assert_eq!(m.avg_latency, 16);
    }

    #[test]
    #[should_panic(expected = "bandwidth")]
    fn zero_bandwidth_panics() {
        let _ = NocConfig::new(0, 1);
    }
}

//! Abstract DNN accelerator hardware model (paper Figure 2).
//!
//! The model is the pervasive spatial-accelerator template: an array of
//! processing elements (PEs), each with a private L1 scratchpad and a
//! (possibly vector) MAC unit, a shared L2 scratchpad, and a
//! network-on-chip connecting them. The NoC is modeled as a *pipe*
//! (bandwidth + average latency, §4.2), and the hardware's support for each
//! reuse class — spatial/temporal multicast and reduction (Table 2) — is an
//! explicit capability that costs area/energy and enables the corresponding
//! reuse.
//!
//! Data quantities throughout the workspace are counted in *elements*
//! (words); [`Accelerator::precision_bytes`] converts to bytes for buffer
//! sizing and area.
//!
//! # Example
//!
//! ```
//! use maestro_hw::Accelerator;
//!
//! let acc = Accelerator::builder(256)
//!     .noc_bandwidth(32)
//!     .l1_bytes(2 * 1024)
//!     .l2_bytes(1024 * 1024)
//!     .build();
//! assert_eq!(acc.num_pes, 256);
//! assert_eq!(acc.peak_macs_per_cycle(), 256);
//! ```

// Library code is panic-free by policy: fallible paths return typed errors
// instead of unwrapping. Tests are exempt (compiled out under `cfg(test)`).
#![cfg_attr(
    not(test),
    deny(
        clippy::unwrap_used,
        clippy::expect_used,
        clippy::print_stderr,
        clippy::exit
    )
)]

pub mod area;
pub mod config;
pub mod energy;
pub mod noc;
pub mod support;

pub use area::{AreaModel, PowerModel};
pub use config::{Accelerator, AcceleratorBuilder};
pub use energy::EnergyModel;
pub use noc::NocConfig;
pub use support::{ReuseSupport, SpatialMulticast, SpatialReduction};

//! The accelerator configuration and its builder.

use crate::noc::NocConfig;
use crate::support::ReuseSupport;
use serde::{Deserialize, Serialize};
use std::fmt;

/// One accelerator configuration: the hardware inputs of the cost model
/// (paper Figure 2's parameter list).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Accelerator {
    /// Configuration name (for reports).
    pub name: String,
    /// Number of processing elements.
    pub num_pes: u64,
    /// MACs each PE performs per cycle (ALU vector width).
    pub vector_width: u64,
    /// Bytes per data element (ALU precision).
    pub precision_bytes: u64,
    /// Per-PE L1 scratchpad capacity in bytes.
    pub l1_bytes: u64,
    /// Shared L2 scratchpad capacity in bytes.
    pub l2_bytes: u64,
    /// NoC pipe parameters.
    pub noc: NocConfig,
    /// Spatial multicast / reduction capabilities.
    pub support: ReuseSupport,
    /// Off-chip (DRAM) bandwidth in elements per cycle, used to charge the
    /// initial L2 fill.
    pub offchip_bandwidth: u64,
}

impl Accelerator {
    /// Start building a configuration with `num_pes` PEs and defaults
    /// matching the paper's case studies (2 KB L1, 1 MB L2, 32-wide NoC,
    /// full reuse support, 1-byte elements).
    pub fn builder(num_pes: u64) -> AcceleratorBuilder {
        AcceleratorBuilder {
            acc: Accelerator {
                name: format!("acc-{num_pes}pe"),
                num_pes,
                vector_width: 1,
                precision_bytes: 1,
                l1_bytes: 2 * 1024,
                l2_bytes: 1024 * 1024,
                noc: NocConfig::default(),
                support: ReuseSupport::full(),
                offchip_bandwidth: 16,
            },
        }
    }

    /// Peak MAC throughput per cycle.
    pub fn peak_macs_per_cycle(&self) -> u64 {
        self.num_pes * self.vector_width
    }

    /// L1 capacity in elements.
    pub fn l1_elements(&self) -> u64 {
        self.l1_bytes / self.precision_bytes.max(1)
    }

    /// L2 capacity in elements.
    pub fn l2_elements(&self) -> u64 {
        self.l2_bytes / self.precision_bytes.max(1)
    }

    /// The 256-PE, 32 GB/s configuration used for the Figure 10/11 case
    /// studies.
    pub fn paper_case_study() -> Self {
        Accelerator::builder(256).name("case-study-256pe").build()
    }

    /// An Eyeriss-like configuration: 168 PEs, a three-channel hierarchical
    /// bus, systolic-style forwarding.
    pub fn eyeriss_like() -> Self {
        Accelerator::builder(168)
            .name("eyeriss-like")
            .l1_bytes(512)
            .l2_bytes(108 * 1024)
            .noc(NocConfig::bus(3, 2))
            .support(ReuseSupport {
                multicast: crate::support::SpatialMulticast::Fanout,
                reduction: crate::support::SpatialReduction::ReduceAndForward,
            })
            .build()
    }

    /// A TPU-flavoured configuration: fewer, wide vector PEs (a 16-lane
    /// MAC per PE), large unified buffer, high off-chip bandwidth.
    pub fn tpu_like(num_pes: u64) -> Self {
        Accelerator::builder(num_pes)
            .name("tpu-like")
            .vector_width(16)
            .l1_bytes(4 * 1024)
            .l2_bytes(8 * 1024 * 1024)
            .noc(NocConfig::new(64, 2))
            .offchip_bandwidth(64)
            .support(ReuseSupport::systolic())
            .build()
    }

    /// A MAERI-like configuration: 64 PEs with fat-tree distribution and
    /// augmented-reduction-tree collection.
    pub fn maeri_like(num_pes: u64) -> Self {
        Accelerator::builder(num_pes)
            .name("maeri-like")
            .l1_bytes(1024)
            .l2_bytes(512 * 1024)
            .noc(NocConfig::new(16, 1))
            .support(ReuseSupport::full())
            .build()
    }
}

impl fmt::Display for Accelerator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} PEs x{}w, L1 {} B, L2 {} B, NoC {}x/{}cy, mcast {}, red {}",
            self.name,
            self.num_pes,
            self.vector_width,
            self.l1_bytes,
            self.l2_bytes,
            self.noc.bandwidth,
            self.noc.avg_latency,
            self.support.multicast,
            self.support.reduction,
        )
    }
}

/// Builder for [`Accelerator`] (non-consuming terminal `build`).
#[derive(Debug, Clone)]
pub struct AcceleratorBuilder {
    acc: Accelerator,
}

impl AcceleratorBuilder {
    /// Set the configuration name.
    #[must_use]
    pub fn name(mut self, name: impl Into<String>) -> Self {
        self.acc.name = name.into();
        self
    }

    /// Set the ALU vector width (MACs per PE per cycle).
    #[must_use]
    pub fn vector_width(mut self, w: u64) -> Self {
        self.acc.vector_width = w;
        self
    }

    /// Set element precision in bytes.
    #[must_use]
    pub fn precision_bytes(mut self, b: u64) -> Self {
        self.acc.precision_bytes = b;
        self
    }

    /// Set per-PE L1 capacity in bytes.
    #[must_use]
    pub fn l1_bytes(mut self, b: u64) -> Self {
        self.acc.l1_bytes = b;
        self
    }

    /// Set shared L2 capacity in bytes.
    #[must_use]
    pub fn l2_bytes(mut self, b: u64) -> Self {
        self.acc.l2_bytes = b;
        self
    }

    /// Set the full NoC configuration.
    #[must_use]
    pub fn noc(mut self, noc: NocConfig) -> Self {
        self.acc.noc = noc;
        self
    }

    /// Set just the NoC bandwidth (elements per cycle).
    #[must_use]
    pub fn noc_bandwidth(mut self, bw: u64) -> Self {
        self.acc.noc = NocConfig::new(bw, self.acc.noc.avg_latency);
        self
    }

    /// Set the spatial reuse support.
    #[must_use]
    pub fn support(mut self, s: ReuseSupport) -> Self {
        self.acc.support = s;
        self
    }

    /// Set the off-chip bandwidth in elements per cycle.
    #[must_use]
    pub fn offchip_bandwidth(mut self, bw: u64) -> Self {
        self.acc.offchip_bandwidth = bw;
        self
    }

    /// Finish building.
    pub fn build(self) -> Accelerator {
        self.acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_defaults_match_case_study() {
        let acc = Accelerator::paper_case_study();
        assert_eq!(acc.num_pes, 256);
        assert_eq!(acc.noc.bandwidth, 32);
        assert_eq!(acc.l1_bytes, 2048);
        assert_eq!(acc.l2_bytes, 1 << 20);
    }

    #[test]
    fn builder_setters() {
        let acc = Accelerator::builder(64)
            .name("x")
            .vector_width(4)
            .precision_bytes(2)
            .l1_bytes(4096)
            .l2_bytes(1 << 19)
            .noc_bandwidth(8)
            .offchip_bandwidth(4)
            .build();
        assert_eq!(acc.name, "x");
        assert_eq!(acc.peak_macs_per_cycle(), 256);
        assert_eq!(acc.l1_elements(), 2048);
        assert_eq!(acc.l2_elements(), 1 << 18);
        assert_eq!(acc.noc.bandwidth, 8);
        assert_eq!(acc.offchip_bandwidth, 4);
    }

    #[test]
    fn presets() {
        assert_eq!(Accelerator::eyeriss_like().num_pes, 168);
        assert_eq!(Accelerator::maeri_like(64).num_pes, 64);
        let tpu = Accelerator::tpu_like(64);
        assert_eq!(tpu.peak_macs_per_cycle(), 1024);
    }

    #[test]
    fn display_mentions_key_parameters() {
        let s = Accelerator::paper_case_study().to_string();
        assert!(s.contains("256 PEs"));
        assert!(s.contains("NoC 32x"));
    }
}

//! Per-activity energy tables.
//!
//! The cost engine produces *activity counts* (MACs, buffer accesses, NoC
//! traversals); multiplying by this table yields energy, exactly as the
//! paper multiplies counts by CACTI-derived base energies (§5). Absolute
//! values here are synthetic but calibrated to the well-published 28 nm
//! orderings: a small (KB-scale) scratchpad access costs a few× a MAC, a
//! MB-scale shared buffer costs tens of× a MAC.

use serde::{Deserialize, Serialize};

/// Energy per activity, in picojoules (or arbitrary units for
/// [`EnergyModel::normalized`]).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyModel {
    /// One multiply-accumulate.
    pub mac: f64,
    /// One element read from a PE's L1 scratchpad.
    pub l1_read: f64,
    /// One element write to a PE's L1 scratchpad.
    pub l1_write: f64,
    /// One element read from the shared L2 scratchpad.
    pub l2_read: f64,
    /// One element write to the shared L2 scratchpad.
    pub l2_write: f64,
    /// One element traversing the NoC.
    pub noc: f64,
    /// One element moved to or from off-chip DRAM.
    pub dram: f64,
}

impl EnergyModel {
    /// Energies normalized to the MAC (Figure 12's "normalized to MAC
    /// energy of C-P" convention): L1 ≈ 1.7×, L2 ≈ 19×, NoC ≈ 2× a MAC.
    pub const fn normalized() -> Self {
        EnergyModel {
            mac: 1.0,
            l1_read: 1.68,
            l1_write: 1.68,
            l2_read: 18.6,
            l2_write: 18.6,
            noc: 2.0,
            // The well-published ~200x MAC cost of a DRAM access.
            dram: 200.0,
        }
    }

    /// A CACTI-flavoured 28 nm table in pJ for the given scratchpad
    /// capacities: SRAM access energy grows ≈ √capacity
    /// (`0.35 pJ × √KB`), MAC is a 16-bit multiply-add (0.5 pJ).
    pub fn cacti_28nm(l1_bytes: u64, l2_bytes: u64) -> Self {
        let l1 = sram_access_pj(l1_bytes);
        let l2 = sram_access_pj(l2_bytes);
        EnergyModel {
            mac: 0.5,
            l1_read: l1,
            l1_write: l1 * 1.05,
            l2_read: l2,
            l2_write: l2 * 1.05,
            noc: 0.7,
            dram: 120.0,
        }
    }
}

impl Default for EnergyModel {
    fn default() -> Self {
        Self::normalized()
    }
}

/// Synthetic CACTI-style SRAM access energy: `0.35 pJ × √(capacity in KB)`,
/// floored at a register-file-like 0.15 pJ.
pub fn sram_access_pj(bytes: u64) -> f64 {
    let kb = bytes as f64 / 1024.0;
    (0.35 * kb.sqrt()).max(0.15)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalized_ratios() {
        let e = EnergyModel::normalized();
        assert_eq!(e.mac, 1.0);
        assert!(e.l2_read > e.l1_read && e.l1_read > e.mac);
    }

    #[test]
    fn cacti_scales_with_capacity() {
        let small = EnergyModel::cacti_28nm(2 * 1024, 64 * 1024);
        let big = EnergyModel::cacti_28nm(2 * 1024, 1024 * 1024);
        assert!(big.l2_read > small.l2_read);
        assert_eq!(big.l1_read, small.l1_read);
        // 1 MB L2 should cost an order of magnitude more than 2 KB L1.
        assert!(big.l2_read / big.l1_read > 10.0);
    }

    #[test]
    fn sram_floor() {
        assert_eq!(sram_access_pj(16), 0.15);
        assert!((sram_access_pj(1024) - 0.35).abs() < 1e-12);
    }
}

//! Hardware implementation choices for spatial reuse (paper Table 2).
//!
//! Temporal multicast (stationary buffers) and temporal reduction
//! (read-modify-write buffers) are assumed present in every PE — they are
//! what the L1 scratchpad *is*. Spatial multicast and spatial reduction are
//! optional structures whose presence/absence the cost model charges for
//! (Table 5 quantifies the impact of removing them).

use serde::{Deserialize, Serialize};
use std::fmt;

/// How (and whether) the NoC replicates one datum to many PEs in a cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum SpatialMulticast {
    /// A fan-out structure (bus or tree): one upstream read serves all
    /// destinations.
    #[default]
    Fanout,
    /// Store-and-forward neighbor links (systolic): one upstream read, but
    /// delivery is staggered by one hop per unit.
    StoreAndForward,
    /// No multicast: the upstream buffer is read once *per destination*.
    None,
}

impl SpatialMulticast {
    /// Extra delivery cycles beyond the pipe model for `units` receivers.
    pub fn extra_latency(&self, units: u64) -> u64 {
        match self {
            SpatialMulticast::Fanout | SpatialMulticast::None => 0,
            SpatialMulticast::StoreAndForward => units.saturating_sub(1),
        }
    }

    /// Upstream reads needed to deliver one element to `units` receivers.
    pub fn upstream_reads(&self, units: u64) -> u64 {
        match self {
            SpatialMulticast::Fanout | SpatialMulticast::StoreAndForward => 1,
            SpatialMulticast::None => units,
        }
    }
}

impl fmt::Display for SpatialMulticast {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            SpatialMulticast::Fanout => "fanout (bus/tree)",
            SpatialMulticast::StoreAndForward => "store-and-forward",
            SpatialMulticast::None => "none",
        };
        f.write_str(s)
    }
}

/// How (and whether) partial sums from many PEs combine in space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum SpatialReduction {
    /// A fan-in adder tree: `log2(units)` combining latency, one upstream
    /// write per reduced output.
    #[default]
    Fanin,
    /// Reduce-and-forward neighbor chains (systolic): `units - 1` latency,
    /// one upstream write per reduced output.
    ReduceAndForward,
    /// No spatial reduction: every PE's partial sums travel upstream and
    /// are combined by read-modify-write at the parent buffer.
    None,
}

impl SpatialReduction {
    /// Extra combining latency for reducing across `units` sources.
    pub fn extra_latency(&self, units: u64) -> u64 {
        match self {
            SpatialReduction::Fanin => {
                if units <= 1 {
                    0
                } else {
                    64 - u64::from((units - 1).leading_zeros()) // ceil(log2(units))
                }
            }
            SpatialReduction::ReduceAndForward => units.saturating_sub(1),
            SpatialReduction::None => 0,
        }
    }

    /// Upstream writes produced per reduced output across `units` sources.
    pub fn upstream_writes(&self, units: u64) -> u64 {
        match self {
            SpatialReduction::Fanin | SpatialReduction::ReduceAndForward => 1,
            SpatialReduction::None => units,
        }
    }
}

impl fmt::Display for SpatialReduction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            SpatialReduction::Fanin => "fan-in (adder tree)",
            SpatialReduction::ReduceAndForward => "reduce-and-forward",
            SpatialReduction::None => "none",
        };
        f.write_str(s)
    }
}

/// The pair of spatial-reuse capabilities of an accelerator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub struct ReuseSupport {
    /// Spatial multicast structure.
    pub multicast: SpatialMulticast,
    /// Spatial reduction structure.
    pub reduction: SpatialReduction,
}

impl ReuseSupport {
    /// Full support with the cheapest structures (bus fan-out, adder tree).
    pub const fn full() -> Self {
        ReuseSupport {
            multicast: SpatialMulticast::Fanout,
            reduction: SpatialReduction::Fanin,
        }
    }

    /// Systolic-style support (store-and-forward, reduce-and-forward).
    pub const fn systolic() -> Self {
        ReuseSupport {
            multicast: SpatialMulticast::StoreAndForward,
            reduction: SpatialReduction::ReduceAndForward,
        }
    }

    /// No spatial reuse hardware at all.
    pub const fn none() -> Self {
        ReuseSupport {
            multicast: SpatialMulticast::None,
            reduction: SpatialReduction::None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn multicast_read_amplification() {
        assert_eq!(SpatialMulticast::Fanout.upstream_reads(64), 1);
        assert_eq!(SpatialMulticast::StoreAndForward.upstream_reads(64), 1);
        assert_eq!(SpatialMulticast::None.upstream_reads(64), 64);
    }

    #[test]
    fn reduction_write_amplification() {
        assert_eq!(SpatialReduction::Fanin.upstream_writes(64), 1);
        assert_eq!(SpatialReduction::None.upstream_writes(64), 64);
    }

    #[test]
    fn latencies() {
        assert_eq!(SpatialReduction::Fanin.extra_latency(1), 0);
        assert_eq!(SpatialReduction::Fanin.extra_latency(2), 1);
        assert_eq!(SpatialReduction::Fanin.extra_latency(64), 6);
        assert_eq!(SpatialReduction::Fanin.extra_latency(65), 7);
        assert_eq!(SpatialReduction::ReduceAndForward.extra_latency(64), 63);
        assert_eq!(SpatialMulticast::StoreAndForward.extra_latency(8), 7);
        assert_eq!(SpatialMulticast::Fanout.extra_latency(8), 0);
    }

    #[test]
    fn presets() {
        assert_eq!(ReuseSupport::full().multicast, SpatialMulticast::Fanout);
        assert_eq!(
            ReuseSupport::systolic().reduction,
            SpatialReduction::ReduceAndForward
        );
        assert_eq!(ReuseSupport::none().multicast, SpatialMulticast::None);
        assert_eq!(ReuseSupport::default(), ReuseSupport::full());
    }
}

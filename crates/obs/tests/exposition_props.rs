//! Property tests for the Prometheus text exposition: label values
//! containing every escape-relevant character (`\`, `"`, newline) plus
//! structural characters (`{`, `}`, `,`, `=`, spaces) must round-trip
//! through render → parse unchanged, and the rendered exposition must
//! stay line-structured (one sample per line).

use maestro_obs::metrics::{parse_exposition, Registry};
use proptest::collection;
use proptest::prelude::*;

/// Alphabet biased toward the characters that break naive renderers.
const ALPHABET: &[char] = &[
    '\\', '"', '\n', '{', '}', ',', '=', ' ', 'a', 'b', 'Z', '0', '9', '_', '.', '-', '/', 'µ',
    '\t',
];

fn label_value(bytes: Vec<usize>) -> String {
    bytes
        .into_iter()
        .map(|i| ALPHABET[i % ALPHABET.len()])
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn hostile_label_values_round_trip(
        raw_a in collection::vec(0usize..1000, 0..24),
        raw_b in collection::vec(0usize..1000, 0..24),
    ) {
        let va = label_value(raw_a);
        let vb = label_value(raw_b);
        let r = Registry::new();
        r.info("maestro.prop.info", &[("a", &va), ("b", &vb)]);
        r.counter("maestro.prop.anchor").add(7);

        let text = r.render_prometheus();
        // Line structure survives: exactly one non-comment line per
        // sample, so embedded newlines must have been escaped.
        let sample_lines: Vec<&str> = text
            .lines()
            .filter(|l| !l.trim().is_empty() && !l.starts_with('#'))
            .collect();
        prop_assert_eq!(sample_lines.len(), 2, "{}", text);

        let samples = parse_exposition(&text);
        let info = samples
            .iter()
            .find(|s| s.name == "maestro_prop_info")
            .unwrap_or_else(|| panic!("info sample missing in:\n{text}"));
        prop_assert_eq!(info.value, 1.0);
        prop_assert_eq!(info.label("a"), Some(va.as_str()), "{}", text);
        prop_assert_eq!(info.label("b"), Some(vb.as_str()), "{}", text);
        // The unrelated counter still parses to its exact value.
        let anchor = samples
            .iter()
            .find(|s| s.name == "maestro_prop_anchor")
            .unwrap_or_else(|| panic!("anchor sample missing in:\n{text}"));
        prop_assert_eq!(anchor.value, 7.0);
    }
}

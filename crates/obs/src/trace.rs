//! Request-scoped tracing: trace IDs, a per-thread trace context, and a
//! tail-sampling **flight recorder**.
//!
//! A [`TraceId`] is a 128-bit identifier stamped on a unit of served work
//! (an HTTP request in `maestro serve`, a DSE work unit under
//! `--trace-sample`). While the work runs, the ID is installed in a
//! thread-local *trace context* ([`set_current`]); every span the thread
//! records during that window carries it (see
//! [`crate::span::SpanEvent::trace`]), so a span dump can be sliced per
//! request after the fact.
//!
//! When the work finishes, its phase breakdown is assembled into a
//! [`TraceRecord`] and offered to the process-global [`FlightRecorder`] —
//! a bounded ring of the last N *kept* traces. Keeping is **tail-based**:
//! the decision is made after the outcome is known, so the recorder keeps
//!
//! * 100% of failed work (HTTP 5xx: sheds, panics, deadline 504s,
//!   quarantined DSE units) — [`KeepReason::Error`];
//! * 100% of work slower than the configured threshold —
//!   [`KeepReason::Slow`];
//! * a deterministic 1-in-K sample of everything else —
//!   [`KeepReason::Sampled`], decided by a splitmix64 finalizer over the
//!   trace ID so the sample is stable across runs with seeded IDs.
//!
//! # Memory bound
//!
//! The recorder holds at most `capacity` records. Each record is one
//! allocation for the route name plus one `Vec` of fixed-size phases
//! (typically 4–6), so the worst-case footprint is
//! `capacity × (sizeof(TraceRecord) + name + phases)` ≈ a few hundred
//! bytes per record — ~100 KiB at the default capacity of 256. Eviction
//! is strictly FIFO; nothing in the recorder grows without bound.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

/// A 128-bit trace identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TraceId(pub u128);

impl TraceId {
    /// Render as 32 lowercase hex digits (the wire format used in the
    /// `x-maestro-trace` header, `/debug/traces/<id>` and the access log).
    pub fn to_hex(self) -> String {
        format!("{:032x}", self.0)
    }

    /// Parse a hex trace ID (1–32 digits, case-insensitive).
    pub fn parse(s: &str) -> Option<TraceId> {
        if s.is_empty() || s.len() > 32 || !s.bytes().all(|b| b.is_ascii_hexdigit()) {
            return None;
        }
        u128::from_str_radix(s, 16).ok().map(TraceId)
    }

    /// The low 64 bits — the sampling key.
    pub fn lo(self) -> u64 {
        self.0 as u64
    }
}

impl std::fmt::Display for TraceId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

/// The splitmix64 finalizer — the same mixing constants the DSE fault
/// plan uses. Good enough to decorrelate sequential counters into
/// uniform-looking IDs, and fully deterministic.
#[must_use]
pub fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

static TRACE_SEED: AtomicU64 = AtomicU64::new(0);
static TRACE_COUNTER: AtomicU64 = AtomicU64::new(1);

/// Fix the trace-ID seed (tests, `--trace-seed`). Call before the first
/// [`next_trace_id`]; with a fixed seed the full ID sequence — and
/// therefore the 1-in-K sampling decisions — is reproducible.
pub fn seed_trace_ids(seed: u64) {
    TRACE_SEED.store(seed, Ordering::Relaxed);
    TRACE_COUNTER.store(1, Ordering::Relaxed);
}

/// Draw the next trace ID: two chained splitmix64 finalizations of a
/// process-global counter mixed with the seed. Unique within the process
/// by construction (the counter), reproducible when seeded.
pub fn next_trace_id() -> TraceId {
    let n = TRACE_COUNTER.fetch_add(1, Ordering::Relaxed);
    let seed = match TRACE_SEED.load(Ordering::Relaxed) {
        0 => {
            // First use without an explicit seed: derive one from the
            // wall clock so concurrent daemons don't collide. Racing
            // initializers agree via compare_exchange.
            let entropy = std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map(|d| d.as_nanos() as u64)
                .unwrap_or(0x5eed)
                | 1;
            match TRACE_SEED.compare_exchange(0, entropy, Ordering::Relaxed, Ordering::Relaxed) {
                Ok(_) => entropy,
                Err(current) => current,
            }
        }
        s => s,
    };
    let hi = splitmix64(seed ^ n.wrapping_mul(0x9e37_79b9_7f4a_7c15));
    let lo = splitmix64(hi ^ n);
    TraceId(((hi as u128) << 64) | lo as u128)
}

thread_local! {
    static CURRENT_TRACE: std::cell::Cell<u128> = const { std::cell::Cell::new(0) };
}

/// Install `id` as the thread's current trace; spans recorded until
/// [`clear_current`] carry it. Returns the previously installed ID (0 =
/// none) so nested scopes can restore it.
pub fn set_current(id: TraceId) -> u128 {
    CURRENT_TRACE.with(|c| c.replace(id.0))
}

/// Remove the thread's current trace (restoring `prev` from
/// [`set_current`]).
pub fn clear_current(prev: u128) {
    CURRENT_TRACE.with(|c| c.set(prev));
}

/// The thread's current trace ID, 0 when none is installed.
pub fn current() -> u128 {
    CURRENT_TRACE.with(std::cell::Cell::get)
}

/// One attributed phase of a trace (e.g. `queue`, `parse`, `analyze`,
/// `serialize`). Offsets are relative to the trace's own start.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Phase {
    /// Phase name.
    pub name: &'static str,
    /// Start offset from the trace start, microseconds.
    pub start_us: u64,
    /// Duration, microseconds.
    pub dur_us: u64,
}

/// Why the recorder kept a trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KeepReason {
    /// Failed work (5xx / shed / panic / 504 / quarantined unit): always
    /// kept.
    Error,
    /// Exceeded the slow-trace threshold: always kept.
    Slow,
    /// Healthy and fast, drawn by the deterministic 1-in-K sample.
    Sampled,
}

impl KeepReason {
    /// Stable lowercase label (the JSON `kept` field).
    pub fn label(self) -> &'static str {
        match self {
            KeepReason::Error => "error",
            KeepReason::Slow => "slow",
            KeepReason::Sampled => "sampled",
        }
    }
}

/// One completed, attributed trace.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceRecord {
    /// The trace ID.
    pub id: TraceId,
    /// What ran: `"POST /v1/analyze"`, `"shed"`, `"dse.unit[3]"`, ...
    pub name: String,
    /// HTTP-style status of the outcome (DSE units use 200/500).
    pub status: u16,
    /// Wall-clock start, milliseconds since the Unix epoch.
    pub start_unix_ms: u64,
    /// End-to-end duration, microseconds.
    pub total_us: u64,
    /// Response bytes (0 where not meaningful).
    pub bytes: u64,
    /// Attributed phases, in time order.
    pub phases: Vec<Phase>,
    /// Why this record survived tail sampling (stamped by the recorder).
    pub kept: KeepReason,
}

impl TraceRecord {
    /// Render as one JSON object (the `/debug/traces` element schema).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(160 + self.phases.len() * 48);
        out.push_str("{\"trace_id\":\"");
        out.push_str(&self.id.to_hex());
        out.push_str("\",\"name\":");
        push_json_str(&mut out, &self.name);
        out.push_str(&format!(
            ",\"status\":{},\"start_unix_ms\":{},\"total_us\":{},\"bytes\":{},\"kept\":\"{}\",\"phases\":[",
            self.status,
            self.start_unix_ms,
            self.total_us,
            self.bytes,
            self.kept.label()
        ));
        for (i, p) in self.phases.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"name\":");
            push_json_str(&mut out, p.name);
            out.push_str(&format!(
                ",\"start_us\":{},\"dur_us\":{}}}",
                p.start_us, p.dur_us
            ));
        }
        out.push_str("]}");
        out
    }
}

/// JSON-escape `s` into `out` with surrounding quotes.
fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Render a slice of records as the `/debug/traces` body:
/// `{"traces":[...]}`.
pub fn records_to_json(records: &[TraceRecord]) -> String {
    let mut out = String::from("{\"traces\":[");
    for (i, r) in records.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&r.to_json());
    }
    out.push_str("]}");
    out
}

/// Tail-sampling policy of a [`FlightRecorder`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlightPolicy {
    /// Ring capacity — the memory bound (FIFO eviction beyond it).
    pub capacity: usize,
    /// Keep 1 in `sample_k` healthy traces (1 = keep all, 0 = keep none
    /// except errors/slow).
    pub sample_k: u64,
    /// Keep every trace at least this slow, regardless of the sample.
    pub slow_us: u64,
}

impl Default for FlightPolicy {
    fn default() -> Self {
        FlightPolicy {
            capacity: 256,
            sample_k: 16,
            slow_us: 100_000,
        }
    }
}

/// Bounded ring of kept traces. See the module docs for the sampling
/// policy and memory bound.
#[derive(Debug)]
pub struct FlightRecorder {
    inner: Mutex<Ring>,
}

#[derive(Debug)]
struct Ring {
    policy: FlightPolicy,
    buf: VecDeque<TraceRecord>,
    kept: u64,
    sampled_out: u64,
}

impl Default for FlightRecorder {
    fn default() -> Self {
        FlightRecorder::new(FlightPolicy::default())
    }
}

impl FlightRecorder {
    /// A recorder with the given policy.
    pub fn new(policy: FlightPolicy) -> FlightRecorder {
        FlightRecorder {
            inner: Mutex::new(Ring {
                policy,
                buf: VecDeque::with_capacity(policy.capacity.min(1024)),
                kept: 0,
                sampled_out: 0,
            }),
        }
    }

    /// The process-global recorder (`maestro serve` and `dse
    /// --trace-sample` share it; [`FlightRecorder::configure`] rebinds
    /// its policy at startup).
    pub fn global() -> &'static FlightRecorder {
        static GLOBAL: OnceLock<FlightRecorder> = OnceLock::new();
        GLOBAL.get_or_init(FlightRecorder::default)
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Ring> {
        // Records are plain data; a poisoned lock cannot leave the ring
        // structurally broken.
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Replace the policy (shrinking the ring if needed). Call once at
    /// startup, before traffic.
    pub fn configure(&self, policy: FlightPolicy) {
        let mut r = self.lock();
        r.policy = policy;
        while r.buf.len() > r.policy.capacity {
            r.buf.pop_front();
        }
    }

    /// The active policy.
    pub fn policy(&self) -> FlightPolicy {
        self.lock().policy
    }

    /// The tail-sampling decision for an outcome, without recording.
    /// `None` = drop.
    pub fn decide(&self, id: TraceId, status: u16, total_us: u64) -> Option<KeepReason> {
        let policy = self.policy();
        decide(policy, id, status, total_us)
    }

    /// Offer a completed trace. Returns the keep reason when the record
    /// was retained, `None` when it was sampled out.
    pub fn record(&self, mut rec: TraceRecord) -> Option<KeepReason> {
        let mut r = self.lock();
        let Some(reason) = decide(r.policy, rec.id, rec.status, rec.total_us) else {
            r.sampled_out += 1;
            return None;
        };
        rec.kept = reason;
        if r.policy.capacity == 0 {
            return None;
        }
        while r.buf.len() >= r.policy.capacity {
            r.buf.pop_front();
        }
        r.buf.push_back(rec);
        r.kept += 1;
        Some(reason)
    }

    /// Retain a trace unconditionally, bypassing the sampling policy —
    /// for callers that made their own keep decision (the DSE per-unit
    /// path samples on the *unit index*, not the trace ID, so resumed
    /// sweeps trace the same units). Capacity eviction still applies.
    pub fn keep(&self, mut rec: TraceRecord, reason: KeepReason) {
        let mut r = self.lock();
        rec.kept = reason;
        if r.policy.capacity == 0 {
            return;
        }
        while r.buf.len() >= r.policy.capacity {
            r.buf.pop_front();
        }
        r.buf.push_back(rec);
        r.kept += 1;
    }

    /// The retained traces, newest first.
    pub fn recent(&self) -> Vec<TraceRecord> {
        self.lock().buf.iter().rev().cloned().collect()
    }

    /// Find a retained trace by ID.
    pub fn find(&self, id: TraceId) -> Option<TraceRecord> {
        self.lock().buf.iter().rev().find(|r| r.id == id).cloned()
    }

    /// `(kept, sampled_out)` totals since process start.
    pub fn stats(&self) -> (u64, u64) {
        let r = self.lock();
        (r.kept, r.sampled_out)
    }

    /// Drop every retained trace (tests).
    pub fn clear(&self) {
        self.lock().buf.clear();
    }
}

/// The pure sampling decision — a function of the policy and the
/// outcome, so it is golden-testable without a recorder.
pub fn decide(policy: FlightPolicy, id: TraceId, status: u16, total_us: u64) -> Option<KeepReason> {
    if status >= 500 {
        return Some(KeepReason::Error);
    }
    if total_us >= policy.slow_us {
        return Some(KeepReason::Slow);
    }
    match policy.sample_k {
        0 => None,
        1 => Some(KeepReason::Sampled),
        k => splitmix64(id.lo())
            .is_multiple_of(k)
            .then_some(KeepReason::Sampled),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_ids_render_and_parse() {
        let id = TraceId(0x0123_4567_89ab_cdef_0011_2233_4455_6677);
        let hex = id.to_hex();
        assert_eq!(hex.len(), 32);
        assert_eq!(TraceId::parse(&hex), Some(id));
        assert_eq!(TraceId::parse(&hex.to_uppercase()), Some(id));
        assert_eq!(TraceId::parse("xyz"), None);
        assert_eq!(TraceId::parse(""), None);
        assert_eq!(TraceId::parse("7f"), Some(TraceId(0x7f)));
    }

    // Seeding mutates process-global state; tests that reseed must not
    // interleave with each other under the parallel test runner.
    static SEED_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn seeded_ids_are_reproducible_and_distinct() {
        let _guard = SEED_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        seed_trace_ids(42);
        let a: Vec<TraceId> = (0..8).map(|_| next_trace_id()).collect();
        seed_trace_ids(42);
        let b: Vec<TraceId> = (0..8).map(|_| next_trace_id()).collect();
        assert_eq!(a, b);
        let mut uniq = a.clone();
        uniq.sort();
        uniq.dedup();
        assert_eq!(uniq.len(), a.len(), "{a:?}");
    }

    #[test]
    fn current_trace_nests_and_restores() {
        assert_eq!(current(), 0);
        let prev = set_current(TraceId(7));
        assert_eq!(prev, 0);
        assert_eq!(current(), 7);
        let prev2 = set_current(TraceId(9));
        assert_eq!(prev2, 7);
        clear_current(prev2);
        assert_eq!(current(), 7);
        clear_current(prev);
        assert_eq!(current(), 0);
    }

    fn rec(id: u128, status: u16, total_us: u64) -> TraceRecord {
        TraceRecord {
            id: TraceId(id),
            name: "test".to_string(),
            status,
            start_unix_ms: 0,
            total_us,
            bytes: 0,
            phases: vec![Phase {
                name: "work",
                start_us: 0,
                dur_us: total_us,
            }],
            kept: KeepReason::Sampled,
        }
    }

    #[test]
    fn tail_sampling_keeps_every_error_and_slow_trace() {
        let fr = FlightRecorder::new(FlightPolicy {
            capacity: 64,
            sample_k: 1_000_000, // effectively never sample a success
            slow_us: 10_000,
        });
        for (i, status) in [(1u128, 500u16), (2, 503), (3, 504)] {
            assert_eq!(
                fr.record(rec(i, status, 5)),
                Some(KeepReason::Error),
                "status {status}"
            );
        }
        assert_eq!(fr.record(rec(4, 200, 10_000)), Some(KeepReason::Slow));
        assert_eq!(fr.record(rec(5, 200, 5)), None, "fast success sampled out");
        assert_eq!(fr.recent().len(), 4);
        assert_eq!(fr.stats(), (4, 1));
    }

    #[test]
    fn seeded_sampling_keeps_a_golden_1_in_k_subset() {
        let _guard = SEED_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        // Golden-pin the exact kept subset for seed 1234, k = 8 over the
        // first 64 IDs. Any change to splitmix64, the ID derivation, or
        // the sampling draw moves this set — and silently breaks
        // cross-run trace addressability, which is what this test is for.
        let policy = FlightPolicy {
            capacity: 64,
            sample_k: 8,
            slow_us: u64::MAX,
        };
        let kept_set = |seed: u64| -> Vec<usize> {
            seed_trace_ids(seed);
            (0..64)
                .filter(|_| decide(policy, next_trace_id(), 200, 1).is_some())
                .collect::<Vec<usize>>()
        };
        let kept = kept_set(1234);
        assert_eq!(kept, vec![19, 21, 31, 41, 56, 58]);
        // Reproducible on a fresh seeding, different under another seed.
        assert_eq!(kept_set(1234), kept);
        assert_ne!(kept_set(99), kept);
        // Errors override the draw at every index regardless of seed.
        seed_trace_ids(1234);
        for _ in 0..64 {
            assert_eq!(
                decide(policy, next_trace_id(), 503, 1),
                Some(KeepReason::Error)
            );
        }
        seed_trace_ids(0);
    }

    #[test]
    fn keep_bypasses_the_sampling_policy() {
        let fr = FlightRecorder::new(FlightPolicy {
            capacity: 4,
            sample_k: 0, // policy would drop everything
            slow_us: u64::MAX,
        });
        assert_eq!(fr.record(rec(1, 200, 1)), None);
        fr.keep(rec(2, 200, 1), KeepReason::Sampled);
        fr.keep(rec(3, 500, 1), KeepReason::Error);
        let recent = fr.recent();
        assert_eq!(recent.len(), 2);
        assert_eq!(recent[0].kept, KeepReason::Error);
        assert_eq!(recent[1].kept, KeepReason::Sampled);
    }

    #[test]
    fn capacity_bounds_the_ring_fifo() {
        let fr = FlightRecorder::new(FlightPolicy {
            capacity: 3,
            sample_k: 1,
            slow_us: u64::MAX,
        });
        for i in 0..10u128 {
            fr.record(rec(i, 200, 1));
        }
        let recent = fr.recent();
        assert_eq!(recent.len(), 3);
        // Newest first; the oldest seven were evicted.
        let ids: Vec<u128> = recent.iter().map(|r| r.id.0).collect();
        assert_eq!(ids, vec![9, 8, 7]);
        assert!(fr.find(TraceId(9)).is_some());
        assert!(fr.find(TraceId(0)).is_none());
    }

    #[test]
    fn record_json_schema_is_stable() {
        let mut r = rec(0xab, 200, 42);
        r.name = "POST /v1/analyze \"x\"".to_string();
        r.bytes = 7;
        let js = r.to_json();
        assert!(js.starts_with("{\"trace_id\":\"000000000000000000000000000000ab\""));
        assert!(
            js.contains("\"name\":\"POST /v1/analyze \\\"x\\\"\""),
            "{js}"
        );
        assert!(js.contains("\"status\":200"), "{js}");
        assert!(js.contains("\"total_us\":42"), "{js}");
        assert!(js.contains("\"bytes\":7"), "{js}");
        assert!(
            js.contains("\"phases\":[{\"name\":\"work\",\"start_us\":0,\"dur_us\":42}]"),
            "{js}"
        );
        let all = records_to_json(&[r.clone(), r]);
        assert!(all.starts_with("{\"traces\":[{"), "{all}");
        assert!(all.contains("},{"), "{all}");
    }
}

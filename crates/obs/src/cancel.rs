//! Cooperative cancellation: a cheap, cloneable token checked at work
//! boundaries, with an optional wall-clock deadline and a process-global
//! interrupt flag that an (async-signal-safe) signal handler can raise.
//!
//! Long-running pipelines (the DSE explorer's work units, the conformance
//! harness's case loop) poll [`CancelToken::is_cancelled`] between units of
//! work and drain gracefully when it trips. Three independent sources can
//! trip a token:
//!
//! * an explicit [`CancelToken::cancel`] call (tests, embedders);
//! * a deadline set via [`CancelToken::set_deadline_in`] (`--deadline`);
//! * the process-wide interrupt flag raised by [`raise_interrupt`] —
//!   designed to be called from a `SIGINT`/`SIGTERM` handler, since it is
//!   nothing but one relaxed atomic store.
//!
//! The token is an `Arc` over two atomics: cloning is cheap, checking is
//! two relaxed loads (plus one `Instant::now()` only when a deadline is
//! armed), and no locks are ever taken — safe to poll from any number of
//! worker threads at unit-boundary granularity.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

/// Process-wide interrupt flag (set by signal handlers via
/// [`raise_interrupt`]).
static INTERRUPTED: AtomicBool = AtomicBool::new(false);

/// Raise the process-wide interrupt flag. Async-signal-safe: a single
/// relaxed atomic store, no allocation, no locks — callable directly from
/// a `SIGINT`/`SIGTERM` handler.
pub fn raise_interrupt() {
    INTERRUPTED.store(true, Ordering::Relaxed);
}

/// Whether [`raise_interrupt`] has been called in this process.
pub fn interrupt_raised() -> bool {
    INTERRUPTED.load(Ordering::Relaxed)
}

/// Clear the process-wide interrupt flag (tests and multi-run embedders).
pub fn clear_interrupt() {
    INTERRUPTED.store(false, Ordering::Relaxed);
}

/// Monotonic epoch for deadline arithmetic: deadlines are stored as
/// microseconds since the first token was created, so they fit in one
/// atomic `u64` (0 = no deadline armed).
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

#[derive(Debug)]
struct Inner {
    flag: AtomicBool,
    /// Deadline in µs since [`epoch`]; 0 means "none".
    deadline_micros: AtomicU64,
    /// Whether this token also observes the process-wide interrupt flag.
    heed_interrupt: bool,
}

/// A cloneable cancellation token. See the module docs for semantics.
#[derive(Debug, Clone)]
pub struct CancelToken(Arc<Inner>);

impl CancelToken {
    /// A token that observes explicit cancellation, its own deadline, and
    /// the process-wide interrupt flag.
    pub fn new() -> Self {
        epoch(); // arm the epoch before any deadline arithmetic
        CancelToken(Arc::new(Inner {
            flag: AtomicBool::new(false),
            deadline_micros: AtomicU64::new(0),
            heed_interrupt: true,
        }))
    }

    /// A token that never observes the process interrupt flag and has no
    /// deadline: it trips only on an explicit [`CancelToken::cancel`].
    /// Library entry points that take no token use one of these, so plain
    /// API calls keep their run-to-completion semantics.
    pub fn detached() -> Self {
        CancelToken(Arc::new(Inner {
            flag: AtomicBool::new(false),
            deadline_micros: AtomicU64::new(0),
            heed_interrupt: false,
        }))
    }

    /// Trip the token explicitly.
    pub fn cancel(&self) {
        self.0.flag.store(true, Ordering::Relaxed);
    }

    /// Arm a deadline `budget` from now. A zero budget trips immediately.
    pub fn set_deadline_in(&self, budget: Duration) {
        let at = epoch().elapsed() + budget;
        // Stored +1 so an exactly-zero elapsed time still arms (0 = none).
        self.0
            .deadline_micros
            .store(at.as_micros() as u64 + 1, Ordering::Relaxed);
    }

    /// Whether the armed deadline (if any) has passed.
    pub fn deadline_exceeded(&self) -> bool {
        let d = self.0.deadline_micros.load(Ordering::Relaxed);
        d != 0 && epoch().elapsed().as_micros() as u64 + 1 >= d
    }

    /// Whether any cancellation source has tripped: explicit cancel, the
    /// process interrupt flag (unless detached), or the deadline.
    pub fn is_cancelled(&self) -> bool {
        self.0.flag.load(Ordering::Relaxed)
            || (self.0.heed_interrupt && interrupt_raised())
            || self.deadline_exceeded()
    }

    /// Sleep for `total`, waking early (returning `false`) if the token
    /// trips. Sleeps in small slices so cancellation latency stays in the
    /// low milliseconds regardless of `total` — this is what keeps
    /// injected stalls and long waits responsive to signals.
    pub fn sleep_cooperatively(&self, total: Duration) -> bool {
        const SLICE: Duration = Duration::from_millis(5);
        let t0 = Instant::now();
        while t0.elapsed() < total {
            if self.is_cancelled() {
                return false;
            }
            std::thread::sleep(SLICE.min(total - t0.elapsed()));
        }
        !self.is_cancelled()
    }
}

impl Default for CancelToken {
    fn default() -> Self {
        CancelToken::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn explicit_cancel_trips_all_clones() {
        let t = CancelToken::detached();
        let u = t.clone();
        assert!(!t.is_cancelled());
        u.cancel();
        assert!(t.is_cancelled());
        assert!(!t.deadline_exceeded(), "no deadline was armed");
    }

    #[test]
    fn deadline_trips_after_budget() {
        let t = CancelToken::detached();
        t.set_deadline_in(Duration::from_millis(20));
        assert!(!t.is_cancelled());
        std::thread::sleep(Duration::from_millis(40));
        assert!(t.deadline_exceeded());
        assert!(t.is_cancelled());
    }

    #[test]
    fn zero_deadline_trips_immediately() {
        let t = CancelToken::detached();
        t.set_deadline_in(Duration::ZERO);
        assert!(t.is_cancelled());
    }

    #[test]
    fn interrupt_flag_reaches_heeding_tokens_only() {
        clear_interrupt();
        let heeding = CancelToken::new();
        let detached = CancelToken::detached();
        raise_interrupt();
        assert!(interrupt_raised());
        assert!(heeding.is_cancelled());
        assert!(!detached.is_cancelled());
        clear_interrupt();
        assert!(!heeding.is_cancelled());
    }

    #[test]
    fn cooperative_sleep_wakes_early_on_cancel() {
        let t = CancelToken::detached();
        let u = t.clone();
        let h = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(15));
            u.cancel();
        });
        let t0 = Instant::now();
        let completed = t.sleep_cooperatively(Duration::from_secs(30));
        assert!(!completed);
        assert!(t0.elapsed() < Duration::from_secs(5));
        h.join().expect("canceller thread");
    }

    #[test]
    fn cooperative_sleep_completes_when_uncancelled() {
        let t = CancelToken::detached();
        assert!(t.sleep_cooperatively(Duration::from_millis(10)));
    }
}

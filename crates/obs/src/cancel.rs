//! Cooperative cancellation: a cheap, cloneable token checked at work
//! boundaries, with an optional wall-clock deadline and a process-global
//! interrupt flag that an (async-signal-safe) signal handler can raise.
//!
//! Long-running pipelines (the DSE explorer's work units, the conformance
//! harness's case loop) poll [`CancelToken::is_cancelled`] between units of
//! work and drain gracefully when it trips. Three independent sources can
//! trip a token:
//!
//! * an explicit [`CancelToken::cancel`] call (tests, embedders);
//! * a deadline set via [`CancelToken::set_deadline_in`] (`--deadline`);
//! * the process-wide interrupt flag raised by [`raise_interrupt`] —
//!   designed to be called from a `SIGINT`/`SIGTERM` handler, since it is
//!   nothing but one relaxed atomic store.
//!
//! The token is an `Arc` over two atomics: cloning is cheap, checking is
//! two relaxed loads (plus one `Instant::now()` only when a deadline is
//! armed), and no locks are ever taken — safe to poll from any number of
//! worker threads at unit-boundary granularity.
//!
//! # Clones vs. children
//!
//! A **clone** shares the same state: cancelling or arming a deadline on
//! any clone trips all of them. A **child**
//! ([`CancelToken::child_with_deadline`]) has its *own* flag and deadline
//! but also observes its parent chain — so a server can hand each request
//! a child with a per-request deadline without a timed-out request ever
//! cancelling the server token, while cancelling the server token still
//! drains every in-flight request.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

/// Process-wide interrupt flag (set by signal handlers via
/// [`raise_interrupt`]).
static INTERRUPTED: AtomicBool = AtomicBool::new(false);

/// Raise the process-wide interrupt flag. Async-signal-safe: a single
/// relaxed atomic store, no allocation, no locks — callable directly from
/// a `SIGINT`/`SIGTERM` handler.
pub fn raise_interrupt() {
    INTERRUPTED.store(true, Ordering::Relaxed);
}

/// Whether [`raise_interrupt`] has been called in this process.
pub fn interrupt_raised() -> bool {
    INTERRUPTED.load(Ordering::Relaxed)
}

/// Clear the process-wide interrupt flag (tests and multi-run embedders).
pub fn clear_interrupt() {
    INTERRUPTED.store(false, Ordering::Relaxed);
}

/// Monotonic epoch for deadline arithmetic: deadlines are stored as
/// microseconds since the first token was created, so they fit in one
/// atomic `u64` (0 = no deadline armed).
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

#[derive(Debug)]
struct Inner {
    flag: AtomicBool,
    /// Deadline in µs since [`epoch`]; 0 means "none".
    deadline_micros: AtomicU64,
    /// Whether this token also observes the process-wide interrupt flag.
    heed_interrupt: bool,
    /// Parent token state, observed (never mutated) by this token. A
    /// child trips when any ancestor trips; ancestors are unaffected by
    /// anything done to the child.
    parent: Option<Arc<Inner>>,
}

impl Inner {
    /// Whether this state (or any ancestor) has tripped.
    fn cancelled(&self) -> bool {
        let mut cur = self;
        loop {
            if cur.flag.load(Ordering::Relaxed)
                || (cur.heed_interrupt && interrupt_raised())
                || cur.deadline_passed()
            {
                return true;
            }
            match &cur.parent {
                Some(p) => cur = p,
                None => return false,
            }
        }
    }

    fn deadline_passed(&self) -> bool {
        let d = self.deadline_micros.load(Ordering::Relaxed);
        d != 0 && epoch().elapsed().as_micros() as u64 + 1 >= d
    }
}

/// A cloneable cancellation token. See the module docs for semantics.
#[derive(Debug, Clone)]
pub struct CancelToken(Arc<Inner>);

impl CancelToken {
    /// A token that observes explicit cancellation, its own deadline, and
    /// the process-wide interrupt flag.
    pub fn new() -> Self {
        epoch(); // arm the epoch before any deadline arithmetic
        CancelToken(Arc::new(Inner {
            flag: AtomicBool::new(false),
            deadline_micros: AtomicU64::new(0),
            heed_interrupt: true,
            parent: None,
        }))
    }

    /// A token that never observes the process interrupt flag and has no
    /// deadline: it trips only on an explicit [`CancelToken::cancel`].
    /// Library entry points that take no token use one of these, so plain
    /// API calls keep their run-to-completion semantics.
    pub fn detached() -> Self {
        CancelToken(Arc::new(Inner {
            flag: AtomicBool::new(false),
            deadline_micros: AtomicU64::new(0),
            heed_interrupt: false,
            parent: None,
        }))
    }

    /// A child token with its own deadline `budget` from now: it trips
    /// when the budget elapses, when [`CancelToken::cancel`] is called on
    /// it, or when *this* token (or any of its ancestors) trips — but
    /// nothing done to the child ever affects this token. This is what
    /// makes per-request deadlines safe in a long-lived server: the old
    /// pattern of arming [`CancelToken::set_deadline_in`] on a clone
    /// shared state with every other clone, so one request's deadline
    /// cancelled the whole process.
    pub fn child_with_deadline(&self, budget: Duration) -> Self {
        let child = CancelToken(Arc::new(Inner {
            flag: AtomicBool::new(false),
            deadline_micros: AtomicU64::new(0),
            // Interrupt observation is inherited through the parent
            // chain; the child adds no policy of its own.
            heed_interrupt: false,
            parent: Some(Arc::clone(&self.0)),
        }));
        child.set_deadline_in(budget);
        child
    }

    /// A child token with no deadline of its own (see
    /// [`CancelToken::child_with_deadline`]).
    pub fn child(&self) -> Self {
        CancelToken(Arc::new(Inner {
            flag: AtomicBool::new(false),
            deadline_micros: AtomicU64::new(0),
            heed_interrupt: false,
            parent: Some(Arc::clone(&self.0)),
        }))
    }

    /// Trip the token explicitly.
    pub fn cancel(&self) {
        self.0.flag.store(true, Ordering::Relaxed);
    }

    /// Arm a deadline `budget` from now. A zero budget trips immediately.
    pub fn set_deadline_in(&self, budget: Duration) {
        let at = epoch().elapsed() + budget;
        // Stored +1 so an exactly-zero elapsed time still arms (0 = none).
        self.0
            .deadline_micros
            .store(at.as_micros() as u64 + 1, Ordering::Relaxed);
    }

    /// Whether the armed deadline (if any) of *this* token has passed
    /// (ancestor deadlines are observed by [`CancelToken::is_cancelled`],
    /// not here).
    pub fn deadline_exceeded(&self) -> bool {
        self.0.deadline_passed()
    }

    /// Whether any cancellation source has tripped: explicit cancel, the
    /// process interrupt flag (unless detached), the deadline, or any of
    /// those on an ancestor token.
    pub fn is_cancelled(&self) -> bool {
        self.0.cancelled()
    }

    /// Sleep for `total`, waking early (returning `false`) if the token
    /// trips. Sleeps in small slices so cancellation latency stays in the
    /// low milliseconds regardless of `total` — this is what keeps
    /// injected stalls and long waits responsive to signals.
    pub fn sleep_cooperatively(&self, total: Duration) -> bool {
        const SLICE: Duration = Duration::from_millis(5);
        let t0 = Instant::now();
        while t0.elapsed() < total {
            if self.is_cancelled() {
                return false;
            }
            std::thread::sleep(SLICE.min(total - t0.elapsed()));
        }
        !self.is_cancelled()
    }
}

impl Default for CancelToken {
    fn default() -> Self {
        CancelToken::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn explicit_cancel_trips_all_clones() {
        let t = CancelToken::detached();
        let u = t.clone();
        assert!(!t.is_cancelled());
        u.cancel();
        assert!(t.is_cancelled());
        assert!(!t.deadline_exceeded(), "no deadline was armed");
    }

    #[test]
    fn deadline_trips_after_budget() {
        let t = CancelToken::detached();
        t.set_deadline_in(Duration::from_millis(20));
        assert!(!t.is_cancelled());
        std::thread::sleep(Duration::from_millis(40));
        assert!(t.deadline_exceeded());
        assert!(t.is_cancelled());
    }

    #[test]
    fn zero_deadline_trips_immediately() {
        let t = CancelToken::detached();
        t.set_deadline_in(Duration::ZERO);
        assert!(t.is_cancelled());
    }

    #[test]
    fn interrupt_flag_reaches_heeding_tokens_only() {
        clear_interrupt();
        let heeding = CancelToken::new();
        let detached = CancelToken::detached();
        raise_interrupt();
        assert!(interrupt_raised());
        assert!(heeding.is_cancelled());
        assert!(!detached.is_cancelled());
        clear_interrupt();
        assert!(!heeding.is_cancelled());
    }

    #[test]
    fn cooperative_sleep_wakes_early_on_cancel() {
        let t = CancelToken::detached();
        let u = t.clone();
        let h = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(15));
            u.cancel();
        });
        let t0 = Instant::now();
        let completed = t.sleep_cooperatively(Duration::from_secs(30));
        assert!(!completed);
        assert!(t0.elapsed() < Duration::from_secs(5));
        h.join().expect("canceller thread");
    }

    #[test]
    fn cooperative_sleep_completes_when_uncancelled() {
        let t = CancelToken::detached();
        assert!(t.sleep_cooperatively(Duration::from_millis(10)));
    }

    /// The server-safety regression: a child's deadline (or explicit
    /// cancel) must never trip its parent — the old clone-and-arm pattern
    /// shared deadline state across every clone of the token.
    #[test]
    fn child_deadline_never_cancels_parent() {
        let server = CancelToken::detached();
        let request = server.child_with_deadline(Duration::ZERO);
        assert!(request.is_cancelled(), "zero budget trips immediately");
        assert!(request.deadline_exceeded());
        assert!(!server.is_cancelled(), "parent must be unaffected");
        assert!(!server.deadline_exceeded());
        let other = server.child_with_deadline(Duration::from_secs(3600));
        assert!(!other.is_cancelled(), "sibling must be unaffected");
        other.cancel();
        assert!(!server.is_cancelled(), "explicit child cancel stays local");
    }

    #[test]
    fn parent_cancel_reaches_children_transitively() {
        let root = CancelToken::detached();
        let mid = root.child();
        let leaf = mid.child_with_deadline(Duration::from_secs(3600));
        assert!(!leaf.is_cancelled());
        root.cancel();
        assert!(mid.is_cancelled());
        assert!(leaf.is_cancelled());
        assert!(
            !leaf.deadline_exceeded(),
            "the leaf's own deadline did not pass; the trip came from root"
        );
    }

    #[test]
    fn child_observes_interrupt_through_heeding_parent() {
        clear_interrupt();
        let heeding = CancelToken::new();
        let child = heeding.child_with_deadline(Duration::from_secs(3600));
        let detached_child = CancelToken::detached().child();
        raise_interrupt();
        assert!(child.is_cancelled(), "inherited via the parent chain");
        assert!(!detached_child.is_cancelled());
        clear_interrupt();
        assert!(!child.is_cancelled());
    }
}

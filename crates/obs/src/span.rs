//! Hierarchical tracing spans with RAII guards and per-thread buffers.
//!
//! A span is entered with [`span`] and closed when its [`SpanGuard`]
//! drops. Collection is **off by default**: [`enable`] installs the
//! process-global sink, [`drain`] removes the collected events. When
//! disabled, entering a span is one relaxed atomic load and an inert
//! guard — no clock read, no allocation, no thread-local access — which
//! is what keeps the instrumented DSE hot path at measured-noise cost
//! (see the `obs_overhead` bench).
//!
//! Finished spans accumulate in a thread-local buffer; the buffer is
//! flushed into the global sink only when the thread's *root* span
//! closes, so worker threads never contend on the sink lock mid-unit.
//! Parent/child links are explicit: every event carries its own `id` and
//! its parent's, both unique process-wide.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// One finished span occurrence.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanEvent {
    /// Span name (dotted scheme, e.g. `maestro.analysis.reuse`).
    pub name: &'static str,
    /// Process-wide unique id of this occurrence.
    pub id: u64,
    /// Id of the enclosing span occurrence on the same thread, if any.
    pub parent: Option<u64>,
    /// Ordinal of the thread that ran the span (assigned per thread, in
    /// first-span order).
    pub thread: u64,
    /// Nesting depth (0 = root span of its thread at that moment).
    pub depth: u32,
    /// Start time in nanoseconds since the process trace epoch.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub duration_ns: u64,
    /// The request trace the span ran under (see [`crate::trace`]);
    /// 0 when no trace context was installed on the thread.
    pub trace: u128,
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static NEXT_ID: AtomicU64 = AtomicU64::new(1);
static NEXT_THREAD: AtomicU64 = AtomicU64::new(0);

fn epoch() -> &'static Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    EPOCH.get_or_init(Instant::now)
}

fn sink() -> &'static Mutex<Vec<SpanEvent>> {
    static SINK: OnceLock<Mutex<Vec<SpanEvent>>> = OnceLock::new();
    SINK.get_or_init(|| Mutex::new(Vec::new()))
}

struct ThreadState {
    ordinal: u64,
    /// Ids of the currently open spans (innermost last).
    stack: Vec<u64>,
    /// Finished spans awaiting a root-scope flush.
    buffer: Vec<SpanEvent>,
}

thread_local! {
    static STATE: std::cell::RefCell<ThreadState> = std::cell::RefCell::new(ThreadState {
        ordinal: NEXT_THREAD.fetch_add(1, Ordering::Relaxed),
        stack: Vec::new(),
        buffer: Vec::new(),
    });
}

/// Turn span collection on. Idempotent.
pub fn enable() {
    // Pin the epoch before the first span so start offsets stay small.
    let _ = epoch();
    ENABLED.store(true, Ordering::Relaxed);
}

/// Turn span collection off (newly entered spans become no-ops; already
/// open guards still record on close).
pub fn disable() {
    ENABLED.store(false, Ordering::Relaxed);
}

/// `true` when a sink is installed.
#[inline]
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Enter a span. The returned guard records the span when dropped; hold
/// it in a `_named` local for the duration of the stage:
///
/// ```
/// {
///     let _s = maestro_obs::span::span("maestro.analysis.reuse");
///     // ... the stage ...
/// } // span closes here
/// ```
#[inline]
pub fn span(name: &'static str) -> SpanGuard {
    if !is_enabled() {
        return SpanGuard(None);
    }
    span_slow(name)
}

#[cold]
fn span_slow(name: &'static str) -> SpanGuard {
    let id = NEXT_ID.fetch_add(1, Ordering::Relaxed);
    let trace = crate::trace::current();
    let start_ns = epoch().elapsed().as_nanos() as u64;
    let (parent, depth, thread) = STATE.with(|s| {
        let mut s = s.borrow_mut();
        let parent = s.stack.last().copied();
        let depth = s.stack.len() as u32;
        s.stack.push(id);
        (parent, depth, s.ordinal)
    });
    SpanGuard(Some(OpenSpan {
        name,
        id,
        parent,
        thread,
        depth,
        start_ns,
        trace,
        start: Instant::now(),
    }))
}

#[derive(Debug)]
struct OpenSpan {
    name: &'static str,
    id: u64,
    parent: Option<u64>,
    thread: u64,
    depth: u32,
    start_ns: u64,
    trace: u128,
    start: Instant,
}

/// RAII guard for an entered span; records the [`SpanEvent`] on drop.
#[derive(Debug)]
#[must_use = "a span guard records its span when dropped; binding it to `_` closes it immediately"]
pub struct SpanGuard(Option<OpenSpan>);

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(open) = self.0.take() else {
            return;
        };
        let event = SpanEvent {
            name: open.name,
            id: open.id,
            parent: open.parent,
            thread: open.thread,
            depth: open.depth,
            start_ns: open.start_ns,
            duration_ns: open.start.elapsed().as_nanos() as u64,
            trace: open.trace,
        };
        STATE.with(|s| {
            let mut s = s.borrow_mut();
            // Pop this span (guards drop in LIFO order under normal
            // control flow; a stray out-of-order drop just truncates).
            if let Some(pos) = s.stack.iter().rposition(|&id| id == open.id) {
                s.stack.truncate(pos);
            }
            s.buffer.push(event);
            // Root scope closed: hand the thread's batch to the global
            // sink in one lock acquisition.
            if s.stack.is_empty() {
                let batch = std::mem::take(&mut s.buffer);
                if let Ok(mut sink) = sink().lock() {
                    sink.extend(batch);
                }
            }
        });
    }
}

/// Take every collected span, ordered by (thread, start time) so output
/// is stable regardless of which worker flushed first.
pub fn drain() -> Vec<SpanEvent> {
    let mut events = match sink().lock() {
        Ok(mut s) => std::mem::take(&mut *s),
        Err(_) => Vec::new(),
    };
    events.sort_by_key(|e| (e.thread, e.start_ns, e.id));
    events
}

/// Render events as JSON Lines: one object per span, schema
/// `{"name","id","parent","thread","depth","start_us","dur_us"}` plus a
/// `"trace"` hex field on spans recorded under a request trace context.
/// Names are `&'static str` identifiers from this codebase; they are
/// escaped anyway so the output is valid JSON for any name.
pub fn to_jsonl(events: &[SpanEvent]) -> String {
    let mut out = String::new();
    for e in events {
        out.push_str("{\"name\":\"");
        for c in e.name.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                c => out.push(c),
            }
        }
        out.push_str("\",\"id\":");
        out.push_str(&e.id.to_string());
        out.push_str(",\"parent\":");
        match e.parent {
            Some(p) => out.push_str(&p.to_string()),
            None => out.push_str("null"),
        }
        out.push_str(",\"thread\":");
        out.push_str(&e.thread.to_string());
        out.push_str(",\"depth\":");
        out.push_str(&e.depth.to_string());
        out.push_str(",\"start_us\":");
        out.push_str(&(e.start_ns / 1_000).to_string());
        out.push_str(",\"dur_us\":");
        out.push_str(&(e.duration_ns / 1_000).to_string());
        if e.trace != 0 {
            out.push_str(&format!(",\"trace\":\"{:032x}\"", e.trace));
        }
        out.push_str("}\n");
    }
    out
}

/// Aggregated timing of one span name across occurrences.
#[derive(Debug, Clone, PartialEq)]
pub struct StageStats {
    /// Span name.
    pub name: &'static str,
    /// Occurrences.
    pub count: u64,
    /// Σ duration in nanoseconds.
    pub total_ns: u64,
    /// Maximum single duration in nanoseconds.
    pub max_ns: u64,
}

/// Aggregate events by span name, ordered by descending total time —
/// the per-stage breakdown the bench binaries print.
pub fn aggregate(events: &[SpanEvent]) -> Vec<StageStats> {
    let mut stages: Vec<StageStats> = Vec::new();
    for e in events {
        match stages.iter_mut().find(|s| s.name == e.name) {
            Some(s) => {
                s.count += 1;
                s.total_ns += e.duration_ns;
                s.max_ns = s.max_ns.max(e.duration_ns);
            }
            None => stages.push(StageStats {
                name: e.name,
                count: 1,
                total_ns: e.duration_ns,
                max_ns: e.duration_ns,
            }),
        }
    }
    stages.sort_by(|a, b| b.total_ns.cmp(&a.total_ns).then(a.name.cmp(b.name)));
    stages
}

/// Format a per-stage breakdown table (used by the bench binaries).
pub fn breakdown_table(events: &[SpanEvent]) -> String {
    let stages = aggregate(events);
    let mut out = String::new();
    out.push_str(&format!(
        "{:<28} {:>9} {:>12} {:>12} {:>12}\n",
        "stage", "count", "total (ms)", "mean (us)", "max (us)"
    ));
    for s in &stages {
        out.push_str(&format!(
            "{:<28} {:>9} {:>12.2} {:>12.1} {:>12.1}\n",
            s.name,
            s.count,
            s.total_ns as f64 / 1e6,
            s.total_ns as f64 / 1e3 / s.count.max(1) as f64,
            s.max_ns as f64 / 1e3,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serializes tests that enable/drain the global sink.
    static TEST_MUTEX: Mutex<()> = Mutex::new(());

    fn with_tracing<T>(f: impl FnOnce() -> T) -> (T, Vec<SpanEvent>) {
        let _guard = TEST_MUTEX.lock().unwrap_or_else(|e| e.into_inner());
        drain();
        enable();
        let out = f();
        disable();
        (out, drain())
    }

    #[test]
    fn disabled_spans_are_inert() {
        let _guard = TEST_MUTEX.lock().unwrap_or_else(|e| e.into_inner());
        disable();
        drain();
        {
            let _s = span("maestro.test.noop");
        }
        assert!(drain().is_empty());
    }

    #[test]
    fn nesting_records_parent_child_and_durations() {
        let ((), events) = with_tracing(|| {
            let _root = span("maestro.test.root");
            for _ in 0..2 {
                let _child = span("maestro.test.child");
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
        });
        let root = events
            .iter()
            .find(|e| e.name == "maestro.test.root")
            .expect("root span recorded");
        let children: Vec<_> = events
            .iter()
            .filter(|e| e.name == "maestro.test.child")
            .collect();
        assert_eq!(children.len(), 2);
        for c in &children {
            assert_eq!(c.parent, Some(root.id), "{c:?}");
            assert_eq!(c.depth, root.depth + 1);
            assert_eq!(c.thread, root.thread);
            assert!(c.duration_ns <= root.duration_ns, "{c:?} vs {root:?}");
            assert!(c.start_ns >= root.start_ns);
        }
        // The root covers both children.
        let child_total: u64 = children.iter().map(|c| c.duration_ns).sum();
        assert!(root.duration_ns >= child_total);
    }

    #[test]
    fn concurrent_threads_keep_independent_hierarchies() {
        let ((), events) = with_tracing(|| {
            std::thread::scope(|scope| {
                for _ in 0..4 {
                    scope.spawn(|| {
                        let _root = span("maestro.test.worker");
                        let _inner = span("maestro.test.inner");
                    });
                }
            });
        });
        let roots: Vec<_> = events
            .iter()
            .filter(|e| e.name == "maestro.test.worker")
            .collect();
        let inners: Vec<_> = events
            .iter()
            .filter(|e| e.name == "maestro.test.inner")
            .collect();
        assert_eq!(roots.len(), 4);
        assert_eq!(inners.len(), 4);
        for inner in &inners {
            // Each inner's parent is the root *from its own thread*.
            let parent = roots
                .iter()
                .find(|r| Some(r.id) == inner.parent)
                .unwrap_or_else(|| panic!("no parent for {inner:?}"));
            assert_eq!(parent.thread, inner.thread);
        }
        // Four distinct threads (scoped spawns are real OS threads).
        let mut threads: Vec<u64> = roots.iter().map(|r| r.thread).collect();
        threads.sort_unstable();
        threads.dedup();
        assert_eq!(threads.len(), 4, "{threads:?}");
    }

    #[test]
    fn jsonl_is_one_valid_object_per_line() {
        let ((), events) = with_tracing(|| {
            let _a = span("maestro.test.jsonl");
        });
        let text = to_jsonl(&events);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), events.len());
        for line in lines {
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
            assert!(line.contains("\"name\":\"maestro.test.jsonl\""), "{line}");
            assert!(line.contains("\"dur_us\":"), "{line}");
        }
    }

    #[test]
    fn spans_carry_the_installed_trace_context() {
        let ((), events) = with_tracing(|| {
            {
                let _bare = span("maestro.test.untraced");
            }
            let prev = crate::trace::set_current(crate::trace::TraceId(0xfeed));
            {
                let _traced = span("maestro.test.traced");
            }
            crate::trace::clear_current(prev);
        });
        let bare = events
            .iter()
            .find(|e| e.name == "maestro.test.untraced")
            .expect("untraced span recorded");
        let traced = events
            .iter()
            .find(|e| e.name == "maestro.test.traced")
            .expect("traced span recorded");
        assert_eq!(bare.trace, 0);
        assert_eq!(traced.trace, 0xfeed);
        let jsonl = to_jsonl(&events);
        let traced_line = jsonl
            .lines()
            .find(|l| l.contains("maestro.test.traced"))
            .expect("traced line");
        assert!(
            traced_line.contains("\"trace\":\"0000000000000000000000000000feed\""),
            "{traced_line}"
        );
        let bare_line = jsonl
            .lines()
            .find(|l| l.contains("maestro.test.untraced"))
            .expect("bare line");
        assert!(!bare_line.contains("\"trace\""), "{bare_line}");
    }

    #[test]
    fn aggregate_sums_by_name() {
        let events = vec![
            SpanEvent {
                name: "a",
                id: 1,
                parent: None,
                thread: 0,
                depth: 0,
                start_ns: 0,
                duration_ns: 100,
                trace: 0,
            },
            SpanEvent {
                name: "b",
                id: 2,
                parent: Some(1),
                thread: 0,
                depth: 1,
                start_ns: 10,
                duration_ns: 30,
                trace: 0,
            },
            SpanEvent {
                name: "b",
                id: 3,
                parent: Some(1),
                thread: 0,
                depth: 1,
                start_ns: 50,
                duration_ns: 50,
                trace: 0,
            },
        ];
        let agg = aggregate(&events);
        assert_eq!(agg[0].name, "a");
        let b = agg.iter().find(|s| s.name == "b").expect("b aggregated");
        assert_eq!(b.count, 2);
        assert_eq!(b.total_ns, 80);
        assert_eq!(b.max_ns, 50);
        let table = breakdown_table(&events);
        assert!(table.contains("stage"), "{table}");
        assert!(table.contains('b'), "{table}");
    }
}

//! A process-global registry of named counters, gauges and fixed-bucket
//! histograms, rendered in the Prometheus text exposition format.
//!
//! Handles ([`Counter`], [`Gauge`], [`Histogram`]) are cheap `Arc`-backed
//! atomics: register once (a mutex-guarded name lookup), then update
//! lock-free from any thread. The instrumented hot paths batch their
//! local tallies and flush once per unit of work, so the steady-state
//! cost of metrics on the DSE hot loop is zero.
//!
//! Rendering sanitizes the dotted naming scheme (`maestro.dse.valid` →
//! `maestro_dse_valid`) and emits `# TYPE` headers, histogram
//! `_bucket{le=...}` / `_sum` / `_count` series, and bare samples for
//! counters and gauges. [`parse_exposition`] reads that format back —
//! used by the round-trip tests and available to downstream tooling.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// A monotonically increasing counter.
#[derive(Debug, Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Increment by one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increment by `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that can go up and down. Stored as `f64` bits.
#[derive(Debug, Clone)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Set the value.
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// A histogram over fixed, cumulative-style bucket upper bounds.
///
/// Bounds are set at first registration and never change afterwards —
/// stable boundaries are part of the exposition contract (dashboards and
/// the round-trip tests rely on them). Values are recorded into the first
/// bucket whose bound is `>= value`; everything overflows into the
/// implicit `+Inf` bucket. The sum is accumulated in micro-units
/// (`value * 1e6` rounded) so it can live in an atomic without locking.
#[derive(Debug, Clone)]
pub struct Histogram {
    inner: Arc<HistogramInner>,
}

#[derive(Debug)]
struct HistogramInner {
    bounds: Vec<f64>,
    /// One per bound, plus the `+Inf` overflow bucket last. Non-cumulative
    /// internally; rendering accumulates.
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    /// Σ observed values, in micro-units.
    sum_micros: AtomicU64,
}

impl Histogram {
    /// Record one observation. Negative and NaN values clamp into the
    /// first bucket (they still count toward `_count`), so a buggy
    /// observation can never panic or vanish silently.
    pub fn observe(&self, v: f64) {
        let idx = self
            .inner
            .bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(self.inner.bounds.len());
        self.inner.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.inner.count.fetch_add(1, Ordering::Relaxed);
        let micros = if v.is_finite() && v > 0.0 {
            (v * 1e6).round() as u64
        } else {
            0
        };
        self.inner.sum_micros.fetch_add(micros, Ordering::Relaxed);
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.inner.count.load(Ordering::Relaxed)
    }

    /// Σ of observed values.
    pub fn sum(&self) -> f64 {
        self.inner.sum_micros.load(Ordering::Relaxed) as f64 / 1e6
    }

    /// The configured bucket upper bounds (excluding `+Inf`).
    pub fn bounds(&self) -> &[f64] {
        &self.inner.bounds
    }

    /// Cumulative bucket counts, one per bound plus the final `+Inf`.
    pub fn cumulative_buckets(&self) -> Vec<u64> {
        let mut acc = 0u64;
        self.inner
            .buckets
            .iter()
            .map(|b| {
                acc += b.load(Ordering::Relaxed);
                acc
            })
            .collect()
    }
}

#[derive(Debug, Clone)]
enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

/// The metrics registry: a name → metric table.
#[derive(Debug, Default)]
pub struct Registry {
    // BTreeMap so the exposition is deterministically ordered.
    metrics: Mutex<BTreeMap<String, Metric>>,
}

/// The process-global registry.
pub fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(Registry::default)
}

impl Registry {
    /// A fresh, private registry (tests; production code uses
    /// [`registry`]).
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Get or create the counter `name`.
    pub fn counter(&self, name: &str) -> Counter {
        let mut m = self.lock();
        match m
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter(Counter(Arc::new(AtomicU64::new(0)))))
        {
            Metric::Counter(c) => c.clone(),
            // Same name registered as a different kind: a programming
            // error, but panicking in a metrics path is worse than
            // handing back a detached handle.
            _ => Counter(Arc::new(AtomicU64::new(0))),
        }
    }

    /// Get or create the gauge `name`.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut m = self.lock();
        match m
            .entry(name.to_string())
            .or_insert_with(|| Metric::Gauge(Gauge(Arc::new(AtomicU64::new(0f64.to_bits())))))
        {
            Metric::Gauge(g) => g.clone(),
            _ => Gauge(Arc::new(AtomicU64::new(0f64.to_bits()))),
        }
    }

    /// Get or create the histogram `name` with the given bucket upper
    /// bounds (ascending; the `+Inf` bucket is implicit). If `name`
    /// already exists, the *existing* boundaries win — they are fixed for
    /// the life of the process.
    pub fn histogram(&self, name: &str, bounds: &[f64]) -> Histogram {
        let mut m = self.lock();
        match m.entry(name.to_string()).or_insert_with(|| {
            let mut sorted: Vec<f64> = bounds.iter().copied().filter(|b| b.is_finite()).collect();
            sorted.sort_by(f64::total_cmp);
            sorted.dedup();
            let buckets = (0..=sorted.len()).map(|_| AtomicU64::new(0)).collect();
            Metric::Histogram(Histogram {
                inner: Arc::new(HistogramInner {
                    bounds: sorted,
                    buckets,
                    count: AtomicU64::new(0),
                    sum_micros: AtomicU64::new(0),
                }),
            })
        }) {
            Metric::Histogram(h) => h.clone(),
            _ => Histogram {
                inner: Arc::new(HistogramInner {
                    bounds: Vec::new(),
                    buckets: vec![AtomicU64::new(0)],
                    count: AtomicU64::new(0),
                    sum_micros: AtomicU64::new(0),
                }),
            },
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, BTreeMap<String, Metric>> {
        // A poisoned registry mutex means some other thread panicked
        // mid-registration; the map itself is still structurally sound.
        self.metrics.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Render every metric in the Prometheus text exposition format.
    pub fn render_prometheus(&self) -> String {
        let m = self.lock();
        let mut out = String::new();
        for (name, metric) in m.iter() {
            let pname = sanitize(name);
            match metric {
                Metric::Counter(c) => {
                    let _ = writeln!(out, "# TYPE {pname} counter");
                    let _ = writeln!(out, "{pname} {}", c.get());
                }
                Metric::Gauge(g) => {
                    let _ = writeln!(out, "# TYPE {pname} gauge");
                    let _ = writeln!(out, "{pname} {}", fmt_f64(g.get()));
                }
                Metric::Histogram(h) => {
                    let _ = writeln!(out, "# TYPE {pname} histogram");
                    let cumulative = h.cumulative_buckets();
                    for (bound, count) in h.bounds().iter().zip(&cumulative) {
                        let _ =
                            writeln!(out, "{pname}_bucket{{le=\"{}\"}} {count}", fmt_f64(*bound));
                    }
                    let total = cumulative.last().copied().unwrap_or(0);
                    let _ = writeln!(out, "{pname}_bucket{{le=\"+Inf\"}} {total}");
                    let _ = writeln!(out, "{pname}_sum {}", fmt_f64(h.sum()));
                    let _ = writeln!(out, "{pname}_count {}", h.count());
                }
            }
        }
        out
    }
}

/// Prometheus metric names allow `[a-zA-Z0-9_:]`; map the dotted scheme
/// (and any stray `-`) onto `_`.
fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

/// Format a float the way Prometheus expects: integral values without a
/// trailing `.0`, everything else in shortest-roundtrip form.
fn fmt_f64(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

/// One parsed sample of an exposition: `name{labels} value`.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Sanitized metric name (including `_bucket`/`_sum`/`_count`
    /// suffixes for histogram series).
    pub name: String,
    /// The `le` label for histogram buckets, if present.
    pub le: Option<String>,
    /// The sample value.
    pub value: f64,
}

/// Parse a Prometheus text exposition back into samples (comments and
/// `# TYPE` lines are skipped). Supports the subset this module renders:
/// bare samples and a single optional `le` label.
pub fn parse_exposition(text: &str) -> Vec<Sample> {
    let mut samples = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let Some((head, value)) = line.rsplit_once(' ') else {
            continue;
        };
        let Ok(value) = value.parse::<f64>() else {
            continue;
        };
        let (name, le) = match head.split_once('{') {
            None => (head.to_string(), None),
            Some((n, rest)) => {
                let le = rest
                    .trim_end_matches('}')
                    .split(',')
                    .find_map(|kv| kv.trim().strip_prefix("le="))
                    .map(|v| v.trim_matches('"').to_string());
                (n.to_string(), le)
            }
        };
        samples.push(Sample { name, le, value });
    }
    samples
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_register_once_and_accumulate() {
        let r = Registry::new();
        let a = r.counter("maestro.test.ops");
        let b = r.counter("maestro.test.ops");
        a.add(3);
        b.inc();
        assert_eq!(a.get(), 4, "handles share the same cell");
        let g = r.gauge("maestro.test.level");
        g.set(2.5);
        assert!((r.gauge("maestro.test.level").get() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn histogram_bucket_boundaries_are_stable() {
        let r = Registry::new();
        let h = r.histogram("maestro.test.lat", &[0.1, 1.0, 10.0]);
        // Re-registration with different bounds must NOT change them.
        let h2 = r.histogram("maestro.test.lat", &[99.0]);
        assert_eq!(h.bounds(), &[0.1, 1.0, 10.0]);
        assert_eq!(h2.bounds(), &[0.1, 1.0, 10.0]);

        h.observe(0.05); // -> le 0.1
        h.observe(0.5); // -> le 1.0
        h.observe(0.7); // -> le 1.0
        h.observe(5.0); // -> le 10.0
        h.observe(100.0); // -> +Inf
        assert_eq!(h.cumulative_buckets(), vec![1, 3, 4, 5]);
        assert_eq!(h.count(), 5);
        assert!((h.sum() - 106.25).abs() < 1e-6, "{}", h.sum());
    }

    #[test]
    fn histogram_clamps_degenerate_observations() {
        let r = Registry::new();
        let h = r.histogram("maestro.test.weird", &[1.0]);
        h.observe(-3.0);
        h.observe(f64::NAN);
        assert_eq!(h.count(), 2);
        // NaN fails every `<=`, so it lands in +Inf; negatives land in
        // the first bucket. Neither panics, both count.
        assert_eq!(h.cumulative_buckets(), vec![1, 2]);
        assert_eq!(h.sum(), 0.0);
    }

    #[test]
    fn exposition_round_trips() {
        let r = Registry::new();
        r.counter("maestro.rt.hits").add(42);
        r.gauge("maestro.rt.threads").set(8.0);
        let h = r.histogram("maestro.rt.seconds", &[0.001, 0.01, 0.1]);
        h.observe(0.0005);
        h.observe(0.05);
        h.observe(3.0);

        let text = r.render_prometheus();
        assert!(text.contains("# TYPE maestro_rt_hits counter"), "{text}");
        assert!(text.contains("maestro_rt_hits 42"), "{text}");
        assert!(
            text.contains("# TYPE maestro_rt_seconds histogram"),
            "{text}"
        );

        let samples = parse_exposition(&text);
        let find = |name: &str, le: Option<&str>| -> f64 {
            samples
                .iter()
                .find(|s| s.name == name && s.le.as_deref() == le)
                .unwrap_or_else(|| panic!("missing {name} le={le:?} in:\n{text}"))
                .value
        };
        assert_eq!(find("maestro_rt_hits", None), 42.0);
        assert_eq!(find("maestro_rt_threads", None), 8.0);
        assert_eq!(find("maestro_rt_seconds_bucket", Some("0.001")), 1.0);
        assert_eq!(find("maestro_rt_seconds_bucket", Some("0.1")), 2.0);
        assert_eq!(find("maestro_rt_seconds_bucket", Some("+Inf")), 3.0);
        assert_eq!(find("maestro_rt_seconds_count", None), 3.0);
        assert!((find("maestro_rt_seconds_sum", None) - 3.0505).abs() < 1e-4);

        // Render → parse → the same bucket counts the handles report.
        assert_eq!(h.cumulative_buckets(), vec![1, 1, 2, 3]);
    }

    #[test]
    fn sanitize_maps_dots_and_dashes() {
        assert_eq!(sanitize("maestro.dse.unit-rate"), "maestro_dse_unit_rate");
    }
}

//! A process-global registry of named counters, gauges and fixed-bucket
//! histograms, rendered in the Prometheus text exposition format.
//!
//! Handles ([`Counter`], [`Gauge`], [`Histogram`]) are cheap `Arc`-backed
//! atomics: register once (a mutex-guarded name lookup), then update
//! lock-free from any thread. The instrumented hot paths batch their
//! local tallies and flush once per unit of work, so the steady-state
//! cost of metrics on the DSE hot loop is zero.
//!
//! Rendering sanitizes the dotted naming scheme (`maestro.dse.valid` →
//! `maestro_dse_valid`) and emits `# TYPE` headers, histogram
//! `_bucket{le=...}` / `_sum` / `_count` series, and bare samples for
//! counters and gauges. [`parse_exposition`] reads that format back —
//! used by the round-trip tests and available to downstream tooling.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// A monotonically increasing counter.
#[derive(Debug, Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Increment by one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increment by `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that can go up and down. Stored as `f64` bits.
#[derive(Debug, Clone)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Set the value.
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Atomically add `delta` (may be negative) via a CAS loop over the
    /// stored bits — safe under concurrent updates, unlike a read/`set`
    /// pair which can lose increments between the two steps.
    pub fn add(&self, delta: f64) {
        let _ = self
            .0
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |bits| {
                Some((f64::from_bits(bits) + delta).to_bits())
            });
    }

    /// Atomically increment by one.
    #[inline]
    pub fn inc(&self) {
        self.add(1.0);
    }

    /// Atomically decrement by one.
    #[inline]
    pub fn dec(&self) {
        self.add(-1.0);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// A histogram over fixed, cumulative-style bucket upper bounds.
///
/// Bounds are set at first registration and never change afterwards —
/// stable boundaries are part of the exposition contract (dashboards and
/// the round-trip tests rely on them). Values are recorded into the first
/// bucket whose bound is `>= value`; everything overflows into the
/// implicit `+Inf` bucket. The sum is accumulated in micro-units
/// (`value * 1e6` rounded) so it can live in an atomic without locking.
#[derive(Debug, Clone)]
pub struct Histogram {
    inner: Arc<HistogramInner>,
}

#[derive(Debug)]
struct HistogramInner {
    bounds: Vec<f64>,
    /// One per bound, plus the `+Inf` overflow bucket last. Non-cumulative
    /// internally; rendering accumulates.
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    /// Σ observed values, in micro-units.
    sum_micros: AtomicU64,
}

impl Histogram {
    /// Record one observation. Negative and NaN values clamp into the
    /// first bucket (they still count toward `_count`), so a buggy
    /// observation can never panic or vanish silently.
    pub fn observe(&self, v: f64) {
        let idx = self
            .inner
            .bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(self.inner.bounds.len());
        self.inner.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.inner.count.fetch_add(1, Ordering::Relaxed);
        let micros = if v.is_finite() && v > 0.0 {
            (v * 1e6).round() as u64
        } else {
            0
        };
        self.inner.sum_micros.fetch_add(micros, Ordering::Relaxed);
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.inner.count.load(Ordering::Relaxed)
    }

    /// Σ of observed values.
    pub fn sum(&self) -> f64 {
        self.inner.sum_micros.load(Ordering::Relaxed) as f64 / 1e6
    }

    /// The configured bucket upper bounds (excluding `+Inf`).
    pub fn bounds(&self) -> &[f64] {
        &self.inner.bounds
    }

    /// Cumulative bucket counts, one per bound plus the final `+Inf`.
    pub fn cumulative_buckets(&self) -> Vec<u64> {
        let mut acc = 0u64;
        self.inner
            .buckets
            .iter()
            .map(|b| {
                acc += b.load(Ordering::Relaxed);
                acc
            })
            .collect()
    }

    /// Estimate the `q`-quantile of the recorded distribution (see the
    /// free [`quantile`] function for the interpolation rule).
    pub fn quantile(&self, q: f64) -> f64 {
        quantile(self.bounds(), &self.cumulative_buckets(), q)
    }
}

/// Log-spaced histogram bucket upper bounds: `per_decade` geometrically
/// spaced bounds per factor of 10, from `min` up to (and including) a
/// bound at `max`. Bounds are rounded to 3 significant digits so the
/// exposition labels stay readable (`0.001`, `0.00178`, `0.00316`, ...).
///
/// Degenerate inputs are clamped rather than panicking: non-positive
/// `min` becomes `1e-6`, `per_decade` 0 becomes 1, and the series is
/// capped at 256 bounds.
pub fn log_buckets(min: f64, max: f64, per_decade: u32) -> Vec<f64> {
    let min = if min.is_finite() && min > 0.0 {
        min
    } else {
        1e-6
    };
    let max = if max.is_finite() && max > min {
        max
    } else {
        min
    };
    let ratio = 10f64.powf(1.0 / per_decade.max(1) as f64);
    let mut out = Vec::new();
    let mut b = min;
    // Stop just shy of max so rounding jitter can't emit a bound that
    // duplicates the final exact-max bound.
    while b < max * 0.999 && out.len() < 255 {
        out.push(round_sig3(b));
        b *= ratio;
    }
    out.push(round_sig3(max));
    out.dedup();
    out
}

/// Round to 3 significant digits.
fn round_sig3(v: f64) -> f64 {
    if v == 0.0 || !v.is_finite() {
        return v;
    }
    let mag = v.abs().log10().floor();
    let scale = 10f64.powf(2.0 - mag);
    (v * scale).round() / scale
}

/// Estimate the `q`-quantile from histogram buckets, the same way
/// Prometheus' `histogram_quantile` does: find the bucket the target
/// rank falls in, then interpolate linearly between the bucket's edges
/// (the first bucket's lower edge is 0). Ranks landing in the `+Inf`
/// overflow bucket clamp to the last finite bound.
///
/// `cumulative` must be the cumulative counts, one per bound plus the
/// final `+Inf` entry — exactly what
/// [`Histogram::cumulative_buckets`] returns. Returns `NaN` for an empty
/// histogram; `q` is clamped to `[0, 1]`.
pub fn quantile(bounds: &[f64], cumulative: &[u64], q: f64) -> f64 {
    let total = cumulative.last().copied().unwrap_or(0);
    if total == 0 {
        return f64::NAN;
    }
    let q = q.clamp(0.0, 1.0);
    let target = q * total as f64;
    let mut prev = 0u64;
    for (idx, &cum) in cumulative.iter().enumerate() {
        if (cum as f64) >= target && cum > prev {
            let lower = if idx == 0 { 0.0 } else { bounds[idx - 1] };
            if idx >= bounds.len() {
                // +Inf bucket: no finite upper edge to interpolate to.
                return bounds.last().copied().unwrap_or(f64::NAN);
            }
            let upper = bounds[idx];
            let in_bucket = (cum - prev) as f64;
            let frac = ((target - prev as f64) / in_bucket).clamp(0.0, 1.0);
            return lower + frac * (upper - lower);
        }
        prev = cum;
    }
    bounds.last().copied().unwrap_or(f64::NAN)
}

#[derive(Debug, Clone)]
enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
    /// A constant-1 gauge carrying identity labels (the Prometheus
    /// `*_info` idiom, e.g. `maestro_build_info{version=...,git=...} 1`).
    Info(Vec<(String, String)>),
}

/// The metrics registry: a name → metric table.
#[derive(Debug, Default)]
pub struct Registry {
    // BTreeMap so the exposition is deterministically ordered.
    metrics: Mutex<BTreeMap<String, Metric>>,
}

/// The process-global registry.
pub fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(Registry::default)
}

impl Registry {
    /// A fresh, private registry (tests; production code uses
    /// [`registry`]).
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Get or create the counter `name`.
    pub fn counter(&self, name: &str) -> Counter {
        let mut m = self.lock();
        match m
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter(Counter(Arc::new(AtomicU64::new(0)))))
        {
            Metric::Counter(c) => c.clone(),
            // Same name registered as a different kind: a programming
            // error, but panicking in a metrics path is worse than
            // handing back a detached handle.
            _ => Counter(Arc::new(AtomicU64::new(0))),
        }
    }

    /// Get or create the gauge `name`.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut m = self.lock();
        match m
            .entry(name.to_string())
            .or_insert_with(|| Metric::Gauge(Gauge(Arc::new(AtomicU64::new(0f64.to_bits())))))
        {
            Metric::Gauge(g) => g.clone(),
            _ => Gauge(Arc::new(AtomicU64::new(0f64.to_bits()))),
        }
    }

    /// Get or create the histogram `name` with the given bucket upper
    /// bounds (ascending; the `+Inf` bucket is implicit). If `name`
    /// already exists, the *existing* boundaries win — they are fixed for
    /// the life of the process.
    pub fn histogram(&self, name: &str, bounds: &[f64]) -> Histogram {
        let mut m = self.lock();
        match m.entry(name.to_string()).or_insert_with(|| {
            let mut sorted: Vec<f64> = bounds.iter().copied().filter(|b| b.is_finite()).collect();
            sorted.sort_by(f64::total_cmp);
            sorted.dedup();
            let buckets = (0..=sorted.len()).map(|_| AtomicU64::new(0)).collect();
            Metric::Histogram(Histogram {
                inner: Arc::new(HistogramInner {
                    bounds: sorted,
                    buckets,
                    count: AtomicU64::new(0),
                    sum_micros: AtomicU64::new(0),
                }),
            })
        }) {
            Metric::Histogram(h) => h.clone(),
            _ => Histogram {
                inner: Arc::new(HistogramInner {
                    bounds: Vec::new(),
                    buckets: vec![AtomicU64::new(0)],
                    count: AtomicU64::new(0),
                    sum_micros: AtomicU64::new(0),
                }),
            },
        }
    }

    /// Register (or replace) the info metric `name`: a constant-1 gauge
    /// whose labels carry build/identity metadata. Label values are
    /// escaped on render, so any string is safe.
    pub fn info(&self, name: &str, labels: &[(&str, &str)]) {
        let mut m = self.lock();
        m.insert(
            name.to_string(),
            Metric::Info(
                labels
                    .iter()
                    .map(|(k, v)| (k.to_string(), v.to_string()))
                    .collect(),
            ),
        );
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, BTreeMap<String, Metric>> {
        // A poisoned registry mutex means some other thread panicked
        // mid-registration; the map itself is still structurally sound.
        self.metrics.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Render every metric in the Prometheus text exposition format.
    pub fn render_prometheus(&self) -> String {
        let m = self.lock();
        let mut out = String::new();
        for (name, metric) in m.iter() {
            let pname = sanitize(name);
            match metric {
                Metric::Counter(c) => {
                    let _ = writeln!(out, "# TYPE {pname} counter");
                    let _ = writeln!(out, "{pname} {}", c.get());
                }
                Metric::Gauge(g) => {
                    let _ = writeln!(out, "# TYPE {pname} gauge");
                    let _ = writeln!(out, "{pname} {}", fmt_f64(g.get()));
                }
                Metric::Histogram(h) => {
                    let _ = writeln!(out, "# TYPE {pname} histogram");
                    let cumulative = h.cumulative_buckets();
                    for (bound, count) in h.bounds().iter().zip(&cumulative) {
                        let _ =
                            writeln!(out, "{pname}_bucket{{le=\"{}\"}} {count}", fmt_f64(*bound));
                    }
                    let total = cumulative.last().copied().unwrap_or(0);
                    let _ = writeln!(out, "{pname}_bucket{{le=\"+Inf\"}} {total}");
                    let _ = writeln!(out, "{pname}_sum {}", fmt_f64(h.sum()));
                    let _ = writeln!(out, "{pname}_count {}", h.count());
                }
                Metric::Info(labels) => {
                    let _ = writeln!(out, "# TYPE {pname} gauge");
                    let _ = write!(out, "{pname}{{");
                    for (i, (k, v)) in labels.iter().enumerate() {
                        if i > 0 {
                            out.push(',');
                        }
                        let _ = write!(out, "{}=\"{}\"", sanitize(k), escape_label(v));
                    }
                    let _ = writeln!(out, "}} 1");
                }
            }
        }
        out
    }
}

/// Prometheus metric names allow `[a-zA-Z0-9_:]`; map the dotted scheme
/// (and any stray `-`) onto `_`.
fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

/// Format a float the way Prometheus expects: integral values without a
/// trailing `.0`, everything else in shortest-roundtrip form.
fn fmt_f64(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

/// Escape a label value per the Prometheus text format: backslash,
/// double quote, and newline.
fn escape_label(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// One parsed sample of an exposition: `name{labels} value`.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Sanitized metric name (including `_bucket`/`_sum`/`_count`
    /// suffixes for histogram series).
    pub name: String,
    /// The `le` label for histogram buckets, if present.
    pub le: Option<String>,
    /// The full label set, unescaped, in exposition order.
    pub labels: Vec<(String, String)>,
    /// The sample value.
    pub value: f64,
}

impl Sample {
    /// Look up a label value by key.
    pub fn label(&self, key: &str) -> Option<&str> {
        self.labels
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// Parse a Prometheus text exposition back into samples (comments and
/// `# TYPE` lines are skipped). Supports the subset this module renders:
/// bare samples and quoted, escaped label sets.
pub fn parse_exposition(text: &str) -> Vec<Sample> {
    let mut samples = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let Some((head, value)) = line.rsplit_once(' ') else {
            continue;
        };
        let Ok(value) = value.parse::<f64>() else {
            continue;
        };
        let (name, labels) = match head.split_once('{') {
            None => (head.to_string(), Vec::new()),
            Some((n, rest)) => (
                n.to_string(),
                parse_labels(rest.strip_suffix('}').unwrap_or(rest)),
            ),
        };
        let le = labels
            .iter()
            .find(|(k, _)| k == "le")
            .map(|(_, v)| v.clone());
        samples.push(Sample {
            name,
            le,
            labels,
            value,
        });
    }
    samples
}

/// Parse the inside of a `{...}` label set, honoring quoting and the
/// `\\` / `\"` / `\n` escapes [`escape_label`] emits.
fn parse_labels(s: &str) -> Vec<(String, String)> {
    let mut labels = Vec::new();
    let mut chars = s.chars().peekable();
    loop {
        while matches!(chars.peek(), Some(&c) if c == ',' || c.is_whitespace()) {
            chars.next();
        }
        if chars.peek().is_none() {
            break;
        }
        let mut key = String::new();
        while let Some(&c) = chars.peek() {
            if c == '=' {
                break;
            }
            key.push(c);
            chars.next();
        }
        if chars.next() != Some('=') || chars.next() != Some('"') {
            break; // malformed tail; keep what we have
        }
        let mut val = String::new();
        loop {
            match chars.next() {
                None | Some('"') => break,
                Some('\\') => match chars.next() {
                    Some('n') => val.push('\n'),
                    Some('"') => val.push('"'),
                    Some('\\') => val.push('\\'),
                    Some(other) => {
                        val.push('\\');
                        val.push(other);
                    }
                    None => break,
                },
                Some(c) => val.push(c),
            }
        }
        labels.push((key.trim().to_string(), val));
    }
    labels
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_register_once_and_accumulate() {
        let r = Registry::new();
        let a = r.counter("maestro.test.ops");
        let b = r.counter("maestro.test.ops");
        a.add(3);
        b.inc();
        assert_eq!(a.get(), 4, "handles share the same cell");
        let g = r.gauge("maestro.test.level");
        g.set(2.5);
        assert!((r.gauge("maestro.test.level").get() - 2.5).abs() < 1e-12);
    }

    /// Pins the `in_flight`-style race: N threads doing paired inc/dec
    /// must leave the gauge at exactly zero. With the old read-then-`set`
    /// update pattern interleavings lost updates and the gauge drifted.
    #[test]
    fn gauge_add_is_atomic_under_contention() {
        let r = Registry::new();
        let g = r.gauge("maestro.test.contended");
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let g = g.clone();
                std::thread::spawn(move || {
                    for _ in 0..2_000 {
                        g.inc();
                        g.dec();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(g.get(), 0.0, "paired inc/dec must cancel exactly");

        g.add(2.5);
        g.add(-1.0);
        assert!((g.get() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn histogram_bucket_boundaries_are_stable() {
        let r = Registry::new();
        let h = r.histogram("maestro.test.lat", &[0.1, 1.0, 10.0]);
        // Re-registration with different bounds must NOT change them.
        let h2 = r.histogram("maestro.test.lat", &[99.0]);
        assert_eq!(h.bounds(), &[0.1, 1.0, 10.0]);
        assert_eq!(h2.bounds(), &[0.1, 1.0, 10.0]);

        h.observe(0.05); // -> le 0.1
        h.observe(0.5); // -> le 1.0
        h.observe(0.7); // -> le 1.0
        h.observe(5.0); // -> le 10.0
        h.observe(100.0); // -> +Inf
        assert_eq!(h.cumulative_buckets(), vec![1, 3, 4, 5]);
        assert_eq!(h.count(), 5);
        assert!((h.sum() - 106.25).abs() < 1e-6, "{}", h.sum());
    }

    #[test]
    fn histogram_clamps_degenerate_observations() {
        let r = Registry::new();
        let h = r.histogram("maestro.test.weird", &[1.0]);
        h.observe(-3.0);
        h.observe(f64::NAN);
        assert_eq!(h.count(), 2);
        // NaN fails every `<=`, so it lands in +Inf; negatives land in
        // the first bucket. Neither panics, both count.
        assert_eq!(h.cumulative_buckets(), vec![1, 2]);
        assert_eq!(h.sum(), 0.0);
    }

    #[test]
    fn exposition_round_trips() {
        let r = Registry::new();
        r.counter("maestro.rt.hits").add(42);
        r.gauge("maestro.rt.threads").set(8.0);
        let h = r.histogram("maestro.rt.seconds", &[0.001, 0.01, 0.1]);
        h.observe(0.0005);
        h.observe(0.05);
        h.observe(3.0);

        let text = r.render_prometheus();
        assert!(text.contains("# TYPE maestro_rt_hits counter"), "{text}");
        assert!(text.contains("maestro_rt_hits 42"), "{text}");
        assert!(
            text.contains("# TYPE maestro_rt_seconds histogram"),
            "{text}"
        );

        let samples = parse_exposition(&text);
        let find = |name: &str, le: Option<&str>| -> f64 {
            samples
                .iter()
                .find(|s| s.name == name && s.le.as_deref() == le)
                .unwrap_or_else(|| panic!("missing {name} le={le:?} in:\n{text}"))
                .value
        };
        assert_eq!(find("maestro_rt_hits", None), 42.0);
        assert_eq!(find("maestro_rt_threads", None), 8.0);
        assert_eq!(find("maestro_rt_seconds_bucket", Some("0.001")), 1.0);
        assert_eq!(find("maestro_rt_seconds_bucket", Some("0.1")), 2.0);
        assert_eq!(find("maestro_rt_seconds_bucket", Some("+Inf")), 3.0);
        assert_eq!(find("maestro_rt_seconds_count", None), 3.0);
        assert!((find("maestro_rt_seconds_sum", None) - 3.0505).abs() < 1e-4);

        // Render → parse → the same bucket counts the handles report.
        assert_eq!(h.cumulative_buckets(), vec![1, 1, 2, 3]);
    }

    #[test]
    fn sanitize_maps_dots_and_dashes() {
        assert_eq!(sanitize("maestro.dse.unit-rate"), "maestro_dse_unit_rate");
    }

    #[test]
    fn log_buckets_are_geometric_and_bounded() {
        let b = log_buckets(0.001, 10.0, 3);
        // 3 per decade over 4 decades = 12 steps + the exact max.
        assert_eq!(b.len(), 13, "{b:?}");
        assert_eq!(b[0], 0.001);
        assert_eq!(b[1], 0.00215);
        assert_eq!(b[2], 0.00464);
        assert_eq!(b[3], 0.01);
        assert_eq!(*b.last().unwrap(), 10.0);
        assert!(b.windows(2).all(|w| w[0] < w[1]), "{b:?}");
        // Degenerate inputs clamp instead of panicking.
        assert!(!log_buckets(-1.0, 0.0, 0).is_empty());
        assert!(log_buckets(1e-9, 1e9, 100).len() <= 256);
    }

    #[test]
    fn quantile_interpolates_within_buckets() {
        // Bounds 10/20/40, counts: 4 in (0,10], 4 in (10,20], 2 in +Inf.
        let bounds = [10.0, 20.0, 40.0];
        let cumulative = [4, 8, 8, 10];
        // p50 → rank 5 of 10 → 1 into the 4-count (10,20] bucket: 12.5.
        assert!((quantile(&bounds, &cumulative, 0.5) - 12.5).abs() < 1e-9);
        // p25 → rank 2.5 of 10 → 62.5% through (0,10]: 6.25.
        assert!((quantile(&bounds, &cumulative, 0.25) - 6.25).abs() < 1e-9);
        // p80 → rank 8 → exactly the top of (10,20].
        assert!((quantile(&bounds, &cumulative, 0.8) - 20.0).abs() < 1e-9);
        // p99 lands in +Inf → clamps to the last finite bound.
        assert_eq!(quantile(&bounds, &cumulative, 0.99), 40.0);
        // q is clamped; empty histograms answer NaN.
        assert_eq!(quantile(&bounds, &cumulative, 2.0), 40.0);
        assert!(quantile(&bounds, &[0, 0, 0, 0], 0.5).is_nan());
        assert!(quantile(&[], &[], 0.5).is_nan());
    }

    #[test]
    fn histogram_quantile_matches_free_function() {
        let r = Registry::new();
        let h = r.histogram("maestro.test.q", &[1.0, 2.0, 4.0]);
        for v in [0.5, 1.5, 1.6, 3.0] {
            h.observe(v);
        }
        let direct = h.quantile(0.5);
        let free = quantile(h.bounds(), &h.cumulative_buckets(), 0.5);
        assert_eq!(direct, free);
        // rank 2 of 4 → halfway through the 2-count (1,2] bucket.
        assert!((direct - 1.5).abs() < 1e-9, "{direct}");
    }

    #[test]
    fn info_metric_renders_constant_one_with_labels() {
        let r = Registry::new();
        r.info(
            "maestro.build_info",
            &[("version", "0.1.0"), ("git", "abc1234")],
        );
        let text = r.render_prometheus();
        assert!(text.contains("# TYPE maestro_build_info gauge"), "{text}");
        assert!(
            text.contains("maestro_build_info{version=\"0.1.0\",git=\"abc1234\"} 1"),
            "{text}"
        );
        let samples = parse_exposition(&text);
        let s = samples
            .iter()
            .find(|s| s.name == "maestro_build_info")
            .expect("info sample");
        assert_eq!(s.value, 1.0);
        assert_eq!(s.label("version"), Some("0.1.0"));
        assert_eq!(s.label("git"), Some("abc1234"));
    }

    #[test]
    fn label_escaping_round_trips_hostile_values() {
        let hostile = "a\\b\"c\nd,e}f{g=h";
        let r = Registry::new();
        r.info("maestro.test.esc", &[("v", hostile), ("plain", "ok")]);
        let text = r.render_prometheus();
        // The rendered line is still one line (newline escaped).
        let line = text
            .lines()
            .find(|l| l.starts_with("maestro_test_esc{"))
            .expect("info line");
        assert!(line.contains("\\n"), "{line}");
        let samples = parse_exposition(&text);
        let s = samples
            .iter()
            .find(|s| s.name == "maestro_test_esc")
            .expect("esc sample");
        assert_eq!(s.label("v"), Some(hostile));
        assert_eq!(s.label("plain"), Some("ok"));
    }

    #[test]
    fn concurrent_updates_during_render_stay_consistent() {
        // Worker threads hammer a counter + histogram while the main
        // thread renders and re-parses in a loop — the shape the serve
        // worker pool produces when /metrics is scraped under load. The
        // parsed exposition must always be well-formed and every parsed
        // histogram must satisfy its own invariants (cumulative buckets
        // nondecreasing, +Inf == _count).
        let r = std::sync::Arc::new(Registry::new());
        let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
        let mut handles = Vec::new();
        for t in 0..4 {
            let r = std::sync::Arc::clone(&r);
            let stop = std::sync::Arc::clone(&stop);
            handles.push(std::thread::spawn(move || {
                let c = r.counter("maestro.test.conc.ops");
                let h = r.histogram("maestro.test.conc.lat", &[0.001, 0.01, 0.1, 1.0]);
                let mut n = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    c.inc();
                    h.observe((n % 7) as f64 * 0.03);
                    // Churn registration too: lookups race with renders.
                    let _ = r.gauge(if t % 2 == 0 {
                        "maestro.test.conc.g0"
                    } else {
                        "maestro.test.conc.g1"
                    });
                    n += 1;
                }
                n
            }));
        }
        for _ in 0..50 {
            let text = r.render_prometheus();
            let samples = parse_exposition(&text);
            let bucket_of = |le: &str| {
                samples
                    .iter()
                    .find(|s| {
                        s.name == "maestro_test_conc_lat_bucket" && s.le.as_deref() == Some(le)
                    })
                    .map(|s| s.value)
            };
            if let (Some(inf), Some(count)) = (
                bucket_of("+Inf"),
                samples
                    .iter()
                    .find(|s| s.name == "maestro_test_conc_lat_count")
                    .map(|s| s.value),
            ) {
                // Rendering reads bucket cells then the count cell;
                // each worker has at most one observe in flight between
                // its bucket and count increments, so the count snapshot
                // can trail the +Inf snapshot by at most the thread
                // count.
                assert!(count + 4.0 >= inf, "count {count} < +Inf {inf}\n{text}");
            }
            let mut prev = 0.0;
            for s in samples
                .iter()
                .filter(|s| s.name == "maestro_test_conc_lat_bucket")
            {
                assert!(s.value >= prev, "buckets not cumulative:\n{text}");
                prev = s.value;
            }
        }
        stop.store(true, Ordering::Relaxed);
        let total: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert!(total > 0);
        assert_eq!(r.counter("maestro.test.conc.ops").get(), total);
    }
}

//! A tiny leveled logger, env-controlled and off by default.
//!
//! The level is read once from `MAESTRO_LOG` (`error`, `warn`, `info`,
//! `debug`, `trace`, or `off`/unset) on first use; [`set_level`]
//! overrides it at runtime. Records go to stderr, or to a caller-installed
//! capture sink ([`capture`]) — which is how tests assert that a path is
//! *silent* at the default level.
//!
//! Use through the crate-level macros:
//!
//! ```
//! maestro_obs::warn!("sweep degraded: {} units quarantined", 2);
//! ```

use std::io::Write;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Mutex;

/// Log severity, ordered from most to least severe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum Level {
    /// Logging disabled (the default).
    Off = 0,
    /// Unrecoverable or correctness-affecting conditions.
    Error = 1,
    /// Degraded-but-continuing conditions (quarantined units, fallbacks).
    Warn = 2,
    /// High-level progress.
    Info = 3,
    /// Per-operation diagnostics.
    Debug = 4,
    /// Everything.
    Trace = 5,
}

impl Level {
    /// The label used in rendered records and accepted by `MAESTRO_LOG`.
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Off => "off",
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
            Level::Trace => "trace",
        }
    }

    fn from_u8(v: u8) -> Level {
        match v {
            1 => Level::Error,
            2 => Level::Warn,
            3 => Level::Info,
            4 => Level::Debug,
            5 => Level::Trace,
            _ => Level::Off,
        }
    }

    /// Parse a `MAESTRO_LOG` value. Unknown values disable logging rather
    /// than erroring: the logger must never take the process down.
    pub fn parse(s: &str) -> Level {
        match s.trim().to_ascii_lowercase().as_str() {
            "error" | "1" => Level::Error,
            "warn" | "warning" | "2" => Level::Warn,
            "info" | "3" => Level::Info,
            "debug" | "4" => Level::Debug,
            "trace" | "5" => Level::Trace,
            _ => Level::Off,
        }
    }
}

/// Sentinel meaning "not yet initialized from the environment".
const UNINIT: u8 = u8::MAX;

static LEVEL: AtomicU8 = AtomicU8::new(UNINIT);

/// Capture sink for tests: when set, rendered records go here instead of
/// stderr. Guarded by a plain mutex — capture is a test-only slow path.
#[allow(clippy::type_complexity)]
static SINK: Mutex<Option<Box<dyn FnMut(Level, &str) + Send>>> = Mutex::new(None);

/// The active level, initializing from `MAESTRO_LOG` on first call.
pub fn level() -> Level {
    let v = LEVEL.load(Ordering::Relaxed);
    if v != UNINIT {
        return Level::from_u8(v);
    }
    let initial = std::env::var("MAESTRO_LOG")
        .map(|s| Level::parse(&s))
        .unwrap_or(Level::Off);
    // A racing first call may store the same value twice; that's benign.
    LEVEL.store(initial as u8, Ordering::Relaxed);
    initial
}

/// Override the level (tests, CLI verbosity flags).
pub fn set_level(level: Level) {
    LEVEL.store(level as u8, Ordering::Relaxed);
}

/// `true` when a record at `at` would be emitted. One relaxed load on the
/// common (disabled) path.
#[inline]
pub fn enabled(at: Level) -> bool {
    at != Level::Off && at <= level()
}

/// Install a capture sink receiving `(level, rendered line)` instead of
/// stderr. Returns the previously installed sink. Tests use this both to
/// inspect records and to assert silence.
#[allow(clippy::type_complexity)]
pub fn set_capture(
    sink: Option<Box<dyn FnMut(Level, &str) + Send>>,
) -> Option<Box<dyn FnMut(Level, &str) + Send>> {
    match SINK.lock() {
        Ok(mut s) => std::mem::replace(&mut *s, sink),
        Err(_) => None,
    }
}

/// Emit one record. Called by the macros after the level check, so the
/// disabled path never reaches here.
pub fn emit(at: Level, args: std::fmt::Arguments<'_>) {
    let line = format!("[maestro {}] {args}", at.as_str());
    if let Ok(mut sink) = SINK.lock() {
        if let Some(f) = sink.as_mut() {
            f(at, &line);
            return;
        }
    }
    // Raw handle write (not `eprintln!`): library crates deny
    // `clippy::print_stderr`; this is the one sanctioned egress point.
    // A failed write (closed stderr) is deliberately ignored — the logger
    // must never take the process down.
    let _ = writeln!(std::io::stderr().lock(), "{line}");
}

/// Log at [`Level::Error`].
#[macro_export]
macro_rules! error {
    ($($arg:tt)*) => {
        if $crate::log::enabled($crate::Level::Error) {
            $crate::log::emit($crate::Level::Error, format_args!($($arg)*));
        }
    };
}

/// Log at [`Level::Warn`].
#[macro_export]
macro_rules! warn {
    ($($arg:tt)*) => {
        if $crate::log::enabled($crate::Level::Warn) {
            $crate::log::emit($crate::Level::Warn, format_args!($($arg)*));
        }
    };
}

/// Log at [`Level::Info`].
#[macro_export]
macro_rules! info {
    ($($arg:tt)*) => {
        if $crate::log::enabled($crate::Level::Info) {
            $crate::log::emit($crate::Level::Info, format_args!($($arg)*));
        }
    };
}

/// Log at [`Level::Debug`].
#[macro_export]
macro_rules! debug {
    ($($arg:tt)*) => {
        if $crate::log::enabled($crate::Level::Debug) {
            $crate::log::emit($crate::Level::Debug, format_args!($($arg)*));
        }
    };
}

/// Log at [`Level::Trace`].
#[macro_export]
macro_rules! trace {
    ($($arg:tt)*) => {
        if $crate::log::enabled($crate::Level::Trace) {
            $crate::log::emit($crate::Level::Trace, format_args!($($arg)*));
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Arc, Mutex as StdMutex};

    /// Serializes tests that touch the global level/sink.
    static TEST_MUTEX: StdMutex<()> = StdMutex::new(());

    /// Collects captured records; holds the test mutex and restores the
    /// previous level/sink on drop so parallel tests don't interleave.
    struct Capture {
        lines: Arc<StdMutex<Vec<(Level, String)>>>,
        prev_level: Level,
        _guard: std::sync::MutexGuard<'static, ()>,
    }

    impl Capture {
        fn install(at: Level) -> Capture {
            let guard = TEST_MUTEX.lock().unwrap_or_else(|e| e.into_inner());
            let lines: Arc<StdMutex<Vec<(Level, String)>>> = Arc::default();
            let sink_lines = Arc::clone(&lines);
            set_capture(Some(Box::new(move |lvl, s| {
                if let Ok(mut v) = sink_lines.lock() {
                    v.push((lvl, s.to_string()));
                }
            })));
            let prev_level = level();
            set_level(at);
            Capture {
                lines,
                prev_level,
                _guard: guard,
            }
        }

        fn take(&self) -> Vec<(Level, String)> {
            self.lines
                .lock()
                .map(|mut v| std::mem::take(&mut *v))
                .unwrap_or_default()
        }
    }

    impl Drop for Capture {
        fn drop(&mut self) {
            set_level(self.prev_level);
            set_capture(None);
        }
    }

    #[test]
    fn parse_accepts_names_and_numbers() {
        assert_eq!(Level::parse("warn"), Level::Warn);
        assert_eq!(Level::parse("DEBUG"), Level::Debug);
        assert_eq!(Level::parse("3"), Level::Info);
        assert_eq!(Level::parse(""), Level::Off);
        assert_eq!(Level::parse("nonsense"), Level::Off);
    }

    #[test]
    fn level_gates_and_capture_receives() {
        let cap = Capture::install(Level::Warn);
        crate::warn!("shown {}", 1);
        crate::debug!("hidden");
        let got = cap.take();
        assert_eq!(got.len(), 1, "{got:?}");
        assert_eq!(got[0].0, Level::Warn);
        assert!(got[0].1.contains("shown 1"), "{}", got[0].1);
        assert!(got[0].1.contains("[maestro warn]"), "{}", got[0].1);
    }

    #[test]
    fn off_is_silent() {
        let cap = Capture::install(Level::Off);
        crate::error!("even errors are gated when off");
        assert!(cap.take().is_empty());
    }
}

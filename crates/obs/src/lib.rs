//! Structured observability for the MAESTRO pipeline — hand-rolled and
//! dependency-free because this workspace builds offline (no registry
//! access: `tracing`/`metrics`/`log` cannot be pulled in; see DESIGN.md's
//! dependency policy).
//!
//! Five cooperating facilities:
//!
//! * [`cancel`] — a cloneable cooperative [`CancelToken`] (explicit
//!   cancel, wall-clock deadline, process-wide interrupt flag raisable
//!   from a signal handler), polled by long-running pipelines at
//!   work-unit boundaries.
//! * [`log`] — a tiny leveled logger, env-controlled via `MAESTRO_LOG`
//!   and **off by default**, so library diagnostics go through one
//!   redirectable path instead of ad-hoc `eprintln!` call sites.
//! * [`metrics`] — a process-global registry of named counters, gauges
//!   and fixed-bucket histograms with atomic updates, rendered in the
//!   Prometheus text exposition format.
//! * [`span`] — lightweight hierarchical tracing spans: RAII guards,
//!   monotonic timing, per-thread buffers flushed at root-scope exit so
//!   the parallel DSE hot path never contends on a global lock. Exported
//!   as JSONL events.
//! * [`trace`] — request-scoped trace IDs propagated into spans via a
//!   thread-local context, plus a bounded tail-sampling
//!   [`trace::FlightRecorder`] that keeps 100% of failed/slow work and a
//!   deterministic 1-in-K sample of the rest.
//!
//! # Zero cost when disabled
//!
//! Spans are gated on one process-global atomic flag: when no sink is
//! installed (the default), [`span::span`] is a relaxed load plus an
//! inert guard — no thread-local access, no allocation, no clock read.
//! The logger is the same: one relaxed load against the level. Metric
//! handles are pre-registered atomics; the instrumented hot paths batch
//! their updates (one flush per DSE work unit, one per memo-cache drop),
//! so steady-state cost is zero loads per design point. The
//! `obs_overhead` bench in `maestro-bench` pins the disabled-path cost.
//!
//! # Naming scheme
//!
//! Dotted, hierarchical names: `maestro.analysis.*` for the cost-model
//! engines, `maestro.cache.*` for the analysis memo cache,
//! `maestro.dse.*` for the explorer, `maestro.sim.*` for the reference
//! simulator. Prometheus exposition sanitizes `.`/`-` to `_`.

// Library code is panic-free by policy, and all diagnostics must flow
// through the logger (the logger's own emitter writes to the raw stderr
// handle, which the lint does not cover).
#![cfg_attr(
    not(test),
    deny(
        clippy::unwrap_used,
        clippy::expect_used,
        clippy::print_stderr,
        clippy::exit
    )
)]

pub mod cancel;
pub mod log;
pub mod metrics;
pub mod span;
pub mod trace;

pub use cancel::{interrupt_raised, raise_interrupt, CancelToken};
pub use log::Level;
pub use metrics::{registry, Counter, Gauge, Histogram, Registry};
pub use span::{SpanEvent, SpanGuard};
pub use trace::{FlightPolicy, FlightRecorder, KeepReason, Phase, TraceId, TraceRecord};

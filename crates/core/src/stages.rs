//! Staged analysis: the NoC-independent stages of [`analyze`] split from
//! the cheap per-NoC performance stage, so a sweep over NoC bandwidths can
//! run the expensive half once.
//!
//! [`analyze`] is literally `StagedAnalysis::build(..)?.finish(..)` — the
//! fused and staged paths share one implementation, so they cannot drift:
//! bit-identical results are a property of the code structure, not of a
//! test suite.
//!
//! Stage boundaries match the spans maestro-obs already instruments:
//!
//! * `maestro.analysis.tensor` — bind the dataflow, derive per-level views;
//! * `maestro.analysis.reuse` — per-level transition-class analysis
//!   ([`analyze_level_static`]): activity counts, MACs, transition tables;
//! * `maestro.analysis.buffer` — L2 read-modify-write correction,
//!   utilization, capacity requirements;
//! * `maestro.analysis.noc` — off-chip (DRAM) traffic and delay, which
//!   depend on the L2 capacity and off-chip bandwidth but *not* on the NoC
//!   pipe;
//! * `maestro.analysis.perf` — [`finish`]: price the transition tables
//!   under a concrete (bandwidth, latency) NoC.
//!
//! Everything up to and including `noc` is captured in a [`StagedAnalysis`];
//! [`finish`] re-prices it for as many NoC configurations as desired.
//!
//! [`analyze`]: crate::analyze
//! [`analyze_level_static`]: crate::engine::analyze_level_static
//! [`finish`]: StagedAnalysis::finish

use crate::analysis::AnalysisError;
use crate::counts::ActivityCounts;
use crate::engine::{analyze_level_static, level_perf, LevelPerf, LevelStatic};
use crate::level::LevelCtx;
use crate::report::{LayerReport, LevelSummary};
use maestro_dnn::{Layer, TensorKind};
use maestro_hw::Accelerator;
use maestro_ir::{resolve, Dataflow};
use std::sync::OnceLock;

/// Counter of [`LayerReport::validate`] rejections inside the analysis
/// entry points (`maestro.analysis.validation_failures`).
fn validation_failures() -> &'static maestro_obs::Counter {
    static C: OnceLock<maestro_obs::Counter> = OnceLock::new();
    C.get_or_init(|| maestro_obs::registry().counter("maestro.analysis.validation_failures"))
}

/// Counter of analysis builds (`maestro.analysis.calls`). Each fused
/// [`analyze`](crate::analyze) counts once; under staged evaluation each
/// *static build* counts once however many NoC points it is finished for —
/// which is exactly the number of expensive analyses actually run.
fn analysis_calls() -> &'static maestro_obs::Counter {
    static C: OnceLock<maestro_obs::Counter> = OnceLock::new();
    C.get_or_init(|| maestro_obs::registry().counter("maestro.analysis.calls"))
}

/// The NoC-independent result of analyzing (layer × dataflow × accelerator
/// minus its NoC pipe): everything [`analyze`](crate::analyze) computes
/// except runtime, average/peak bandwidth and per-level pass cycles.
///
/// Build once with [`StagedAnalysis::build`], then obtain full
/// [`LayerReport`]s for any number of NoC configurations with
/// [`StagedAnalysis::finish`] — each finish is a few hundred floating-point
/// operations instead of a full re-analysis.
#[derive(Debug, Clone, PartialEq)]
pub struct StagedAnalysis {
    layer: String,
    dataflow: String,
    used_pes: u64,
    num_pes: u64,
    utilization: f64,
    tensor_elems: [u64; 3],
    /// Top-level activity counts, after the RMW correction and with DRAM
    /// traffic stamped (all NoC-independent).
    counts: ActivityCounts,
    macs_dense: f64,
    macs_effective: f64,
    l1_per_pe_elems: u64,
    l2_staging_elems: u64,
    /// Off-chip transfer delay (elements / off-chip bandwidth), overlapped
    /// against on-chip runtime in [`finish`](StagedAnalysis::finish).
    dram_delay: f64,
    /// Per-level static analyses, outermost first (index = level).
    levels_static: Vec<LevelStatic>,
    /// Per-level report summaries with `pass_cycles` left at zero; filled
    /// per NoC configuration by [`finish`](StagedAnalysis::finish).
    levels_meta: Vec<LevelSummary>,
}

impl StagedAnalysis {
    /// Run the tensor, reuse, buffer and off-chip stages for
    /// (layer × dataflow) on `acc`.
    ///
    /// Only the NoC-independent parts of `acc` are read: PE count, vector
    /// width, reuse support, L2 capacity and off-chip bandwidth. Two
    /// accelerators differing only in `acc.noc` produce identical builds —
    /// that invariance is what the staged sweep cache keys on.
    ///
    /// # Errors
    ///
    /// Returns [`AnalysisError`] when the layer is invalid or the dataflow
    /// cannot be resolved for this layer/PE combination.
    pub fn build(
        layer: &Layer,
        dataflow: &Dataflow,
        acc: &Accelerator,
    ) -> Result<Self, AnalysisError> {
        analysis_calls().inc();

        // Tensor + cluster analysis: bind the dataflow to the layer, derive
        // the per-level data views (paper §4.1–§4.2).
        let (resolved, coupling, ctxs) = {
            let _s = maestro_obs::span::span("maestro.analysis.tensor");
            layer.validate()?;
            let resolved = resolve(dataflow, layer, acc.num_pes)?;
            let coupling = layer.coupling();
            let ctxs: Vec<LevelCtx> = resolved
                .levels
                .iter()
                .map(|l| LevelCtx::build(&resolved, l, &coupling))
                .collect();
            (resolved, coupling, ctxs)
        };

        // Reuse analysis: the per-level transition-class engine (paper
        // §4.2–§4.4), innermost level first.
        let (mut levels_static, mut levels_meta) = {
            let _s = maestro_obs::span::span("maestro.analysis.reuse");
            let mut stats: Vec<LevelStatic> = Vec::with_capacity(ctxs.len());
            let mut meta: Vec<LevelSummary> = Vec::with_capacity(ctxs.len());
            for (i, ctx) in ctxs.iter().enumerate().rev() {
                let st = analyze_level_static(
                    ctx,
                    stats.last().map(LevelStatic::carry),
                    acc.support,
                    acc.vector_width,
                    &coupling,
                    layer.density,
                    i == 0,
                );
                meta.push(LevelSummary {
                    level: i,
                    units: ctx.num_units,
                    active_units: ctx.active_units,
                    utilization: ctx.utilization,
                    steps: ctx.total_steps,
                    pass_cycles: 0.0,
                    footprint: [
                        ctx.views.footprint(&coupling, TensorKind::Input),
                        ctx.views.footprint(&coupling, TensorKind::Weight),
                        ctx.views.footprint(&coupling, TensorKind::Output),
                    ],
                    output_spatial: ctx.output_spatial,
                });
                stats.push(st);
            }
            (stats, meta)
        };
        // Stored outermost-first so index == level.
        levels_static.reverse();
        levels_meta.reverse();
        let Some(top) = levels_static.first() else {
            return Err(AnalysisError::EmptyResolution);
        };
        if resolved.used_pes == 0 || resolved.used_pes > acc.num_pes {
            return Err(AnalysisError::Internal(
                "resolved PE usage is outside the accelerator's PE array",
            ));
        }
        let mut counts = top.counts;
        let macs_dense = top.macs_dense;
        let macs_effective = top.macs_effective;
        let l1_per_pe_elems = top.l1_per_pe;
        let l2_staging_elems = top.staging;

        // Buffer analysis: L2 read-modify-write correction and utilization
        // (the capacity side of the cost model).
        let utilization = {
            let _s = maestro_obs::span::span("maestro.analysis.buffer");
            // Without spatial-reduction hardware, partial sums from
            // spatially reduced levels are combined by read-modify-write at
            // the L2: every output write implies one extra read (paper
            // Table 2 / Table 5).
            if acc.support.reduction == maestro_hw::SpatialReduction::None
                && ctxs
                    .iter()
                    .any(|c| c.output_spatial == crate::level::OutputSpatial::Reduced)
            {
                let writes = counts.l2_write[TensorKind::Output];
                counts.l2_read[TensorKind::Output] += writes;
            }
            ctxs.iter().map(|c| c.utilization).product::<f64>()
                * (resolved.used_pes as f64 / acc.num_pes as f64)
        };

        // Off-chip analysis: DRAM traffic (Figure 2 lists DRAM bandwidth
        // among the model's hardware parameters) — compulsory moves plus
        // capacity misses. The delay depends on L2 capacity and off-chip
        // bandwidth only; the overlap against on-chip execution happens in
        // `finish`, where the on-chip runtime is known.
        let (dram_delay, tensor_elems) = {
            let _s = maestro_obs::span::span("maestro.analysis.noc");
            let tensor_elems = [
                layer.tensor_elements(TensorKind::Input),
                layer.tensor_elements(TensorKind::Weight),
                layer.tensor_elements(TensorKind::Output),
            ];
            let (dram_read, dram_write) =
                crate::report::offchip_traffic(&counts, tensor_elems, acc.l2_elements());
            counts.dram_read = dram_read;
            counts.dram_write = dram_write;
            let dram_delay =
                (dram_read.total() + dram_write.total()) / acc.offchip_bandwidth.max(1) as f64;
            (dram_delay, tensor_elems)
        };

        Ok(StagedAnalysis {
            layer: layer.name.clone(),
            dataflow: dataflow.name().to_string(),
            used_pes: resolved.used_pes,
            num_pes: acc.num_pes,
            utilization,
            tensor_elems,
            counts,
            macs_dense,
            macs_effective,
            l1_per_pe_elems,
            l2_staging_elems,
            dram_delay,
            levels_static,
            levels_meta,
        })
    }

    /// Price the staged analysis under a concrete NoC pipe, producing the
    /// same [`LayerReport`] a fused [`analyze`](crate::analyze) on an
    /// accelerator with that NoC would — bit for bit.
    ///
    /// # Errors
    ///
    /// Returns [`AnalysisError::NonFinite`] when the priced report fails
    /// the finite-value gate (e.g. zero bandwidth yielding an infinite
    /// runtime).
    pub fn finish(&self, bandwidth: u64, avg_latency: u64) -> Result<LayerReport, AnalysisError> {
        let _s = maestro_obs::span::span("maestro.analysis.perf");
        let mut perf: Option<LevelPerf> = None;
        let mut levels = self.levels_meta.clone();
        for (st, meta) in self.levels_static.iter().zip(levels.iter_mut()).rev() {
            let p = level_perf(st, perf.as_ref(), bandwidth, avg_latency);
            meta.pass_cycles = p.runtime_steady;
            perf = Some(p);
        }
        let Some(top) = perf else {
            return Err(AnalysisError::EmptyResolution);
        };

        let runtime = top.runtime_first.max(self.dram_delay);
        let avg_bw = if runtime > 0.0 {
            (self.counts.l2_read.total() + self.counts.l2_write.total()) / runtime
        } else {
            0.0
        };

        let report = LayerReport {
            layer: self.layer.clone(),
            dataflow: self.dataflow.clone(),
            runtime,
            counts: self.counts,
            macs_dense: self.macs_dense,
            macs_effective: self.macs_effective,
            l1_per_pe_elems: self.l1_per_pe_elems,
            l2_staging_elems: self.l2_staging_elems,
            peak_bw: top.peak_bw,
            avg_bw,
            utilization: self.utilization,
            used_pes: self.used_pes,
            num_pes: self.num_pes,
            tensor_elems: self.tensor_elems,
            levels,
        };
        if let Err(e) = report.validate() {
            validation_failures().inc();
            maestro_obs::debug!(
                "analysis of {}/{} rejected by the finite-value gate: {e}",
                self.layer,
                self.dataflow
            );
            return Err(e);
        }
        Ok(report)
    }

    /// The analyzed layer's name.
    pub fn layer(&self) -> &str {
        &self.layer
    }

    /// The analyzed dataflow's name.
    pub fn dataflow(&self) -> &str {
        &self.dataflow
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use maestro_dnn::{Layer, LayerDims, Operator};
    use maestro_ir::Style;

    fn sample_layer() -> Layer {
        Layer::new("c", Operator::conv2d(), LayerDims::square(1, 16, 16, 18, 3))
    }

    #[test]
    fn finish_matches_fused_analyze_across_noc_grid() {
        let layer = sample_layer();
        for style in Style::ALL {
            let df = style.dataflow();
            let base = Accelerator::builder(64)
                .noc(maestro_hw::NocConfig::new(1, 0))
                .build();
            let staged = StagedAnalysis::build(&layer, &df, &base).unwrap();
            for bw in [1u64, 8, 32, 256] {
                for lat in [0u64, 2, 8] {
                    let acc = Accelerator::builder(64)
                        .noc(maestro_hw::NocConfig::new(bw, lat))
                        .build();
                    let fused = crate::analyze(&layer, &df, &acc).unwrap();
                    let fin = staged.finish(bw, lat).unwrap();
                    assert_eq!(fused, fin, "{style} bw={bw} lat={lat}");
                }
            }
        }
    }

    #[test]
    fn build_ignores_noc_configuration() {
        let layer = sample_layer();
        let df = Style::KCP.dataflow();
        let a = StagedAnalysis::build(
            &layer,
            &df,
            &Accelerator::builder(64)
                .noc(maestro_hw::NocConfig::new(1, 9))
                .build(),
        );
        let b = StagedAnalysis::build(
            &layer,
            &df,
            &Accelerator::builder(64)
                .noc(maestro_hw::NocConfig::new(512, 0))
                .build(),
        );
        assert_eq!(a.unwrap(), b.unwrap());
    }

    #[test]
    fn build_propagates_layer_errors() {
        let bad = Layer::new("bad", Operator::conv2d(), LayerDims::square(1, 0, 3, 8, 3));
        let acc = Accelerator::builder(16).build();
        let err = StagedAnalysis::build(&bad, &Style::KCP.dataflow(), &acc).unwrap_err();
        assert!(matches!(err, AnalysisError::Layer(_)));
    }
}

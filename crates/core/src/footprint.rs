//! Tensor footprints and overlap arithmetic over per-level dimension views.
//!
//! Maps on the input-spatial dimensions `Y`/`X` are canonicalized into
//! *output-coordinate* windows: a `TemporalMap(Sz(R), 1) Y` is a window of
//! one output row advancing one row per step. All per-step footprints
//! derive from these views:
//!
//! * output rows per step = the `Y` view's output-chunk;
//! * input rows per step  = `stride × (out_chunk − 1) + R_chunk`
//!   (the receptive field of the output chunk under the current filter
//!   chunk);
//! * weight rows per step = the `R` view's chunk.
//!
//! Filter-window dimensions (`R`/`S`) never change the output footprint —
//! iterating them is pure reduction. This matches the behaviour of all the
//! paper's dataflows (Table 3, Figures 5 and 6) including co-spatial
//! `Y`+`R` mappings (row stationary), where each PE's single-row psum
//! belongs to the cluster-shared output row.

use maestro_dnn::layer::out_extent;
use maestro_dnn::{Coupling, Dim, TensorKind};
use serde::{Deserialize, Serialize};

/// Spatial strides of the bound layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Strides {
    /// Vertical stride.
    pub y: u64,
    /// Horizontal stride.
    pub x: u64,
}

impl Strides {
    /// Unit strides.
    pub const ONE: Strides = Strides { y: 1, x: 1 };

    /// Stride along `d` (1 for non-spatial dims).
    pub fn of(&self, d: Dim) -> u64 {
        match d {
            Dim::Y => self.y,
            Dim::X => self.x,
            _ => 1,
        }
    }
}

/// The per-level view of one dimension's map, in canonical coordinates:
/// dimension indices for `N/K/C/R/S`, *output* positions for `Y/X`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DimView {
    /// The dimension.
    pub dim: Dim,
    /// `true` if spatially mapped at this level.
    pub spatial: bool,
    /// Position of the map in the level's directive order.
    pub pos: usize,
    /// Chunk size per unit/time-step (output positions for `Y`/`X`).
    pub chunk: u64,
    /// Advance per trip / per unit (output positions for `Y`/`X`).
    pub step: u64,
    /// Total extent at this level (output positions for `Y`/`X`).
    pub total: u64,
    /// Number of chunks covering `total`.
    pub trips: u64,
}

/// The seven dimension views of one cluster level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LevelViews {
    views: [DimView; 7],
    /// Layer strides.
    pub strides: Strides,
}

impl LevelViews {
    /// Build from an array indexed in canonical dimension order.
    pub fn new(views: [DimView; 7], strides: Strides) -> Self {
        LevelViews { views, strides }
    }

    /// The view of dimension `d`.
    pub fn view(&self, d: Dim) -> &DimView {
        &self.views[d.index()]
    }

    /// Iterate the views in canonical order.
    pub fn iter(&self) -> impl Iterator<Item = &DimView> + '_ {
        self.views.iter()
    }

    /// The filter-window partner chunk used to derive input receptive
    /// fields: the `R` (or `S`) chunk for axis `Y` (or `X`).
    fn partner_chunk(&self, d: Dim) -> u64 {
        match d.window_partner() {
            Some(p) => self.view(p).chunk,
            None => 1,
        }
    }

    /// Footprint factor of dimension `d` for tensor `kind` (1 when
    /// uncoupled).
    pub fn fp_factor(&self, coupling: &Coupling, kind: TensorKind, d: Dim) -> u64 {
        if !coupling.is_coupled(kind, d) {
            return 1;
        }
        let v = self.view(d);
        match kind {
            TensorKind::Input if d.is_input_spatial() && coupling.has_window_on(d) => {
                // Receptive field of the output chunk. When the stride
                // exceeds the filter chunk, the rows between consecutive
                // output anchors are never touched, so each extra output
                // adds only `filter` rows, not `stride`.
                let f = self.partner_chunk(d);
                self.strides.of(d).min(f) * (v.chunk - 1) + f
            }
            TensorKind::Output => {
                if d.is_filter_window() && coupling.has_window_on_partner(d) {
                    1 // folded into the Y/X half
                } else {
                    v.chunk
                }
            }
            _ => v.chunk,
        }
    }

    /// Full footprint (elements) of tensor `kind` per unit per step.
    pub fn footprint(&self, coupling: &Coupling, kind: TensorKind) -> u64 {
        maestro_dnn::ALL_DIMS
            .iter()
            .map(|&d| self.fp_factor(coupling, kind, d))
            .product()
    }

    /// Footprint overlap factor along `d` when its view advances by
    /// `advance` steps-worth of positions (i.e. `advance` in the view's
    /// canonical coordinates). Returns the full factor for uncoupled
    /// dimensions.
    pub fn overlap_factor(
        &self,
        coupling: &Coupling,
        kind: TensorKind,
        d: Dim,
        advance: u64,
    ) -> u64 {
        if kind == TensorKind::Input && d.is_filter_window() && coupling.has_window_on_partner(d) {
            // Advancing the filter chunk slides the input receptive field
            // along the *partner* axis; the returned value is the partner
            // axis' surviving extent (callers must not also multiply the
            // partner's own factor for the same transition). With a gapped
            // window every output's disjoint field slides at once.
            if let Some(axis) = d.window_partner() {
                let v = self.view(axis);
                let slide = if self.strides.of(axis) > self.partner_chunk(axis) {
                    v.chunk * advance
                } else {
                    advance
                };
                return self.fp_factor(coupling, kind, axis).saturating_sub(slide);
            }
        }
        if !coupling.is_coupled(kind, d) {
            return 1;
        }
        let f = self.fp_factor(coupling, kind, d);
        match kind {
            TensorKind::Input if d.is_input_spatial() && coupling.has_window_on(d) => {
                // The input window slides by stride × out-positions; with a
                // gapped window (stride > filter chunk) each advanced
                // output retires only its own `filter` rows.
                let per = self.strides.of(d).min(self.partner_chunk(d));
                f.saturating_sub(per * advance)
            }
            TensorKind::Output if d.is_filter_window() && coupling.has_window_on_partner(d) => {
                // Pure reduction: outputs unchanged.
                f
            }
            _ => f.saturating_sub(advance),
        }
    }
}

/// Helpers on [`Coupling`] for window-pair checks.
pub trait CouplingExt {
    /// `true` when the operation slides a window along input axis `d`
    /// (`Y` or `X`): both halves of the pair are output-coupled.
    fn has_window_on(&self, d: Dim) -> bool;
    /// `true` when filter dimension `d` (`R`/`S`) participates in a window
    /// with its input-axis partner.
    fn has_window_on_partner(&self, d: Dim) -> bool;
}

impl CouplingExt for Coupling {
    fn has_window_on(&self, d: Dim) -> bool {
        match d.window_partner() {
            Some(p) => self.output.contains(d) && self.output.contains(p),
            None => false,
        }
    }

    fn has_window_on_partner(&self, d: Dim) -> bool {
        match d.window_partner() {
            Some(p) => self.output.contains(d) && self.output.contains(p),
            None => false,
        }
    }
}

/// Convert a map on dimension `d` (sizes in input coordinates for `Y`/`X`)
/// into view coordinates: `(chunk, step, total)`.
///
/// For `Y`/`X` with window semantics: `chunk` is the output extent of the
/// mapped window under the level's *full* filter extent, `step` is
/// `offset / stride` output positions (min 1), and `total` is the level's
/// total output extent. For everything else the map is passed through
/// (clamped to the level size).
pub fn to_view_coords(
    coupling: &Coupling,
    d: Dim,
    map_size: u64,
    map_offset: u64,
    level_dim_size: u64,
    level_filter_size: u64,
    stride: u64,
) -> (u64, u64, u64) {
    if d.is_input_spatial() && coupling.has_window_on(d) {
        let total = out_extent(level_dim_size, level_filter_size, stride).max(1);
        let chunk = out_extent(map_size, level_filter_size, stride)
            .max(1)
            .min(total);
        // An input-space advance of `map_offset` rows moves the first output
        // whose window is fully resident by ceil(offset/stride): rounding
        // down would overlap adjacent output chunks and double-count outputs
        // whose input rows the next chunk does not actually hold.
        let step = map_offset.div_ceil(stride).max(1);
        (chunk, step, total)
    } else {
        let chunk = map_size.min(level_dim_size);
        (chunk, map_offset, level_dim_size)
    }
}

/// Number of chunk positions covering `total` with `(chunk, step)`.
pub fn num_trips(chunk: u64, step: u64, total: u64) -> u64 {
    if chunk >= total {
        1
    } else {
        (total - chunk).div_ceil(step) + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use maestro_dnn::coupling::Coupling;

    fn view(dim: Dim, spatial: bool, chunk: u64, step: u64, total: u64) -> DimView {
        DimView {
            dim,
            spatial,
            pos: dim.index(),
            chunk,
            step,
            total,
            trips: num_trips(chunk, step, total),
        }
    }

    /// KC-P-like leaf views: one output pixel, full 3x3 window, C=1, K=1.
    fn kcp_leaf() -> LevelViews {
        LevelViews::new(
            [
                view(Dim::N, false, 1, 1, 1),
                view(Dim::K, false, 1, 1, 1),
                view(Dim::C, true, 1, 1, 64),
                view(Dim::Y, false, 1, 1, 1),
                view(Dim::X, false, 1, 1, 1),
                view(Dim::R, false, 3, 3, 3),
                view(Dim::S, false, 3, 3, 3),
            ],
            Strides::ONE,
        )
    }

    #[test]
    fn kcp_leaf_footprints() {
        let v = kcp_leaf();
        let c = Coupling::conv2d();
        // Input: 1 channel x (1-1+3) x (1-1+3) receptive field.
        assert_eq!(v.footprint(&c, TensorKind::Input), 9);
        assert_eq!(v.footprint(&c, TensorKind::Weight), 9);
        assert_eq!(v.footprint(&c, TensorKind::Output), 1);
    }

    #[test]
    fn window_overlap_in_output_coords() {
        // Y view: chunk of 4 output rows advancing 4; R chunk 3, stride 1.
        let mut views = kcp_leaf();
        views.views[Dim::Y.index()] = view(Dim::Y, false, 4, 4, 16);
        let c = Coupling::conv2d();
        // Input rows per step: 1*(4-1)+3 = 6.
        assert_eq!(views.fp_factor(&c, TensorKind::Input, Dim::Y), 6);
        // Advancing 4 output rows keeps 6-4 = 2 input rows (halo).
        assert_eq!(views.overlap_factor(&c, TensorKind::Input, Dim::Y, 4), 2);
        // Output rows don't overlap when advancing by the full chunk.
        assert_eq!(views.overlap_factor(&c, TensorKind::Output, Dim::Y, 4), 0);
        // Advancing by 1 keeps 3 of 4 output rows.
        assert_eq!(views.overlap_factor(&c, TensorKind::Output, Dim::Y, 1), 3);
    }

    #[test]
    fn filter_advance_is_pure_reduction_for_outputs() {
        let mut views = kcp_leaf();
        views.views[Dim::R.index()] = view(Dim::R, false, 1, 1, 3);
        let c = Coupling::conv2d();
        // Output footprint unchanged by an R advance.
        assert_eq!(views.overlap_factor(&c, TensorKind::Output, Dim::R, 1), 1);
        // Input receptive field slides with R: factor 1*(1-1)+1=1, keep 0.
        assert_eq!(views.fp_factor(&c, TensorKind::Input, Dim::Y), 1);
        assert_eq!(views.overlap_factor(&c, TensorKind::Input, Dim::R, 1), 0);
        // Weights are refetched (chunk 1, advance 1).
        assert_eq!(views.overlap_factor(&c, TensorKind::Weight, Dim::R, 1), 0);
    }

    #[test]
    fn strided_views() {
        let c = Coupling::conv2d();
        // Layer Y=11, R=3, stride 2 => out total 5.
        let (chunk, step, total) = to_view_coords(&c, Dim::Y, 7, 2, 11, 3, 2);
        assert_eq!(total, 5);
        assert_eq!(chunk, 3, "window of 7 input rows = 3 output rows");
        assert_eq!(step, 1, "offset 2 / stride 2");
        // Non-window dim passes through.
        let (chunk, step, total) = to_view_coords(&c, Dim::C, 64, 64, 256, 3, 1);
        assert_eq!((chunk, step, total), (64, 64, 256));
        // Oversized map clamps.
        let (chunk, _, _) = to_view_coords(&c, Dim::C, 512, 512, 256, 3, 1);
        assert_eq!(chunk, 256);
    }

    #[test]
    fn gemm_views_ignore_window_logic() {
        let c = Coupling::gemm();
        let (chunk, step, total) = to_view_coords(&c, Dim::Y, 1, 1, 1, 1, 1);
        assert_eq!((chunk, step, total), (1, 1, 1));
        let v = LevelViews::new(
            [
                view(Dim::N, false, 2, 2, 8),
                view(Dim::K, true, 4, 4, 64),
                view(Dim::C, false, 16, 16, 128),
                view(Dim::Y, false, 1, 1, 1),
                view(Dim::X, false, 1, 1, 1),
                view(Dim::R, false, 1, 1, 1),
                view(Dim::S, false, 1, 1, 1),
            ],
            Strides::ONE,
        );
        assert_eq!(v.footprint(&c, TensorKind::Weight), 4 * 16);
        assert_eq!(v.footprint(&c, TensorKind::Input), 2 * 16);
        assert_eq!(v.footprint(&c, TensorKind::Output), 2 * 4);
    }

    #[test]
    fn trips_arithmetic() {
        assert_eq!(num_trips(3, 1, 8), 6);
        assert_eq!(num_trips(8, 8, 8), 1);
        assert_eq!(num_trips(3, 2, 8), 4);
        assert_eq!(num_trips(10, 1, 8), 1);
    }
}

//! MAESTRO: an analytical cost model for DNN dataflows.
//!
//! Given a DNN layer ([`maestro_dnn::Layer`]), a data-centric dataflow
//! description ([`maestro_ir::Dataflow`]) and a hardware configuration
//! ([`maestro_hw::Accelerator`]), [`analyze`] estimates runtime, activity
//! counts (and therefore energy), buffer requirements, NoC bandwidth
//! demand, PE utilization and per-tensor reuse factors — the outputs of the
//! paper's five analysis engines (tensor, cluster, reuse, performance and
//! cost analysis; §4, Figures 7–8).
//!
//! # Example
//!
//! ```
//! use maestro_core::analyze;
//! use maestro_dnn::{Layer, LayerDims, Operator, TensorKind};
//! use maestro_hw::{Accelerator, EnergyModel};
//! use maestro_ir::Style;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let layer = Layer::new("conv", Operator::conv2d(), LayerDims::square(1, 64, 64, 58, 3));
//! let acc = Accelerator::builder(256).build();
//! let report = analyze(&layer, &Style::KCP.dataflow(), &acc)?;
//! println!("runtime: {} cycles", report.runtime);
//! println!("energy:  {}", report.energy(&EnergyModel::normalized()));
//! println!("filter reuse: {:.1}x", report.reuse_factor(TensorKind::Weight));
//! # Ok(())
//! # }
//! ```

// Library code is panic-free by policy: fallible paths return
// `AnalysisError` instead of unwrapping. Tests are exempt (the attribute
// is compiled out under `cfg(test)`).
#![cfg_attr(
    not(test),
    deny(
        clippy::unwrap_used,
        clippy::expect_used,
        clippy::print_stderr,
        clippy::exit
    )
)]

pub mod analysis;
pub mod counts;
pub mod engine;
pub mod explain;
pub mod footprint;
pub mod level;
pub mod lint;
pub mod lru;
pub mod memo;
pub mod report;
pub mod reuse;
pub mod stages;

pub use analysis::{
    analyze, analyze_cancellable, analyze_model, analyze_model_cancellable, analyze_model_with,
    AnalysisError,
};
pub use counts::{ActivityCounts, EnergyBreakdown, PerTensor};
pub use engine::{LevelPerf, LevelResult, LevelStatic};
pub use explain::{explain, Explanation, Observation};
pub use level::{LevelCtx, OutputSpatial};
pub use lint::{lint, Lint};
pub use memo::{AnalysisCache, PreparedContext, ShapeKey, SharedAnalysisCache, DEFAULT_CACHE_CAP};
pub use report::{LayerReport, ModelReport};
pub use reuse::{opportunity_table, spatial_opportunity, temporal_opportunity, ReuseForm};
pub use stages::StagedAnalysis;

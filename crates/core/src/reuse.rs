//! The reuse-opportunity taxonomy of paper Tables 1 and 2.
//!
//! Reuse arises when the same data is visible to multiple *spatial*
//! destinations (PEs in one time step) or multiple *temporal* destinations
//! (time steps at one PE). Operand tensors present multicast opportunities;
//! the output tensor presents reduction opportunities. Which opportunity a
//! mapping exposes is fully determined by dimension coupling.

use crate::engine::depends;
use maestro_dnn::{Coupling, Dim, TensorKind};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A reuse opportunity exposed by a mapping choice.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ReuseForm {
    /// The same data serves several destinations (operands).
    Multicast,
    /// Partial results from several sources combine (outputs).
    Reduction,
    /// No reuse: the data differs per destination.
    None,
}

impl fmt::Display for ReuseForm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ReuseForm::Multicast => "Multicast",
            ReuseForm::Reduction => "Reduction",
            ReuseForm::None => "-",
        };
        f.write_str(s)
    }
}

/// The reuse opportunity for tensor `kind` when dimension `mapped` is
/// spatially mapped (paper Table 1, left half).
///
/// A tensor that does not depend on the mapped dimension is identical
/// across PEs — a spatial multicast opportunity. The output tensor, when
/// the mapped dimension is a reduction dimension, is accumulated across
/// PEs — a spatial reduction opportunity.
pub fn spatial_opportunity(coupling: &Coupling, mapped: Dim, kind: TensorKind) -> ReuseForm {
    opportunity(coupling, mapped, kind)
}

/// The reuse opportunity for tensor `kind` when dimension `mapped` is the
/// innermost temporally mapped dimension (paper Table 1, right half).
///
/// A tensor that does not depend on the innermost temporal dimension is
/// unchanged across adjacent time steps — a temporal multicast
/// (stationary-buffer) opportunity; the output analogously gets temporal
/// reduction (in-place accumulation).
pub fn temporal_opportunity(coupling: &Coupling, innermost: Dim, kind: TensorKind) -> ReuseForm {
    opportunity(coupling, innermost, kind)
}

fn opportunity(coupling: &Coupling, mapped: Dim, kind: TensorKind) -> ReuseForm {
    match kind {
        TensorKind::Output => {
            if coupling.is_reduction(mapped) {
                ReuseForm::Reduction
            } else if depends(coupling, TensorKind::Output, mapped) {
                ReuseForm::None
            } else {
                ReuseForm::Multicast
            }
        }
        operand => {
            if depends(coupling, operand, mapped) {
                ReuseForm::None
            } else {
                ReuseForm::Multicast
            }
        }
    }
}

/// One row of paper Table 1 for a given coupling.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct OpportunityRow {
    /// The mapped dimension.
    pub dim: Dim,
    /// Opportunity for (Input, Weight, Output) under spatial mapping.
    pub spatial: [ReuseForm; 3],
    /// Opportunity for (Input, Weight, Output) as innermost temporal dim.
    pub temporal: [ReuseForm; 3],
}

/// Build the full Table 1 for a coupling.
pub fn opportunity_table(coupling: &Coupling) -> Vec<OpportunityRow> {
    maestro_dnn::ALL_DIMS
        .iter()
        .map(|&dim| OpportunityRow {
            dim,
            spatial: TensorKind::ALL.map(|k| spatial_opportunity(coupling, dim, k)),
            temporal: TensorKind::ALL.map(|k| temporal_opportunity(coupling, dim, k)),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conv_table1_spot_checks() {
        let c = Coupling::conv2d();
        // K mapped: inputs are identical across PEs => multicast.
        assert_eq!(
            spatial_opportunity(&c, Dim::K, TensorKind::Input),
            ReuseForm::Multicast
        );
        // C mapped: outputs accumulate across PEs => reduction.
        assert_eq!(
            spatial_opportunity(&c, Dim::C, TensorKind::Output),
            ReuseForm::Reduction
        );
        // X/Y mapped: filters identical across PEs => multicast.
        assert_eq!(
            spatial_opportunity(&c, Dim::Y, TensorKind::Weight),
            ReuseForm::Multicast
        );
        // R/S mapped: outputs reduce (filter window is a reduction dim).
        assert_eq!(
            spatial_opportunity(&c, Dim::R, TensorKind::Output),
            ReuseForm::Reduction
        );
        // K innermost temporal: inputs stationary => temporal multicast.
        assert_eq!(
            temporal_opportunity(&c, Dim::K, TensorKind::Input),
            ReuseForm::Multicast
        );
        // C innermost temporal: outputs accumulate in place.
        assert_eq!(
            temporal_opportunity(&c, Dim::C, TensorKind::Output),
            ReuseForm::Reduction
        );
        // K mapped: weights differ per PE => none.
        assert_eq!(
            spatial_opportunity(&c, Dim::K, TensorKind::Weight),
            ReuseForm::None
        );
    }

    #[test]
    fn depthwise_c_is_not_a_reduction() {
        let c = Coupling::depthwise();
        assert_eq!(
            spatial_opportunity(&c, Dim::C, TensorKind::Output),
            ReuseForm::None,
            "depthwise output is coupled to C: no reduction across channels"
        );
        assert_eq!(
            spatial_opportunity(&c, Dim::R, TensorKind::Output),
            ReuseForm::Reduction
        );
    }

    #[test]
    fn table_covers_all_dims() {
        let t = opportunity_table(&Coupling::conv2d());
        assert_eq!(t.len(), 7);
        // N mapped: weights identical across PEs.
        let n = &t[0];
        assert_eq!(n.spatial[TensorKind::Weight as usize], ReuseForm::Multicast);
    }
}

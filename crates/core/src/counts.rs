//! Activity counts: the raw output of the cost analysis engine.
//!
//! Counts are kept as `f64` because density (sparsity) scaling and
//! occurrence-weighted sums produce fractional expectations, and because
//! energy integration multiplies them by fractional per-access energies.

use maestro_dnn::TensorKind;
use maestro_hw::EnergyModel;
use serde::{Deserialize, Serialize};
use std::ops::{Add, AddAssign, Index, IndexMut};

/// A per-tensor triple of counts, indexed by [`TensorKind`].
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct PerTensor(pub [f64; 3]);

impl PerTensor {
    /// Sum over the three tensors.
    pub fn total(&self) -> f64 {
        self.0.iter().sum()
    }

    /// Scale every entry.
    #[must_use]
    pub fn scaled(&self, by: f64) -> Self {
        PerTensor([self.0[0] * by, self.0[1] * by, self.0[2] * by])
    }
}

impl Index<TensorKind> for PerTensor {
    type Output = f64;

    fn index(&self, k: TensorKind) -> &f64 {
        &self.0[k as usize]
    }
}

impl IndexMut<TensorKind> for PerTensor {
    fn index_mut(&mut self, k: TensorKind) -> &mut f64 {
        &mut self.0[k as usize]
    }
}

impl Add for PerTensor {
    type Output = PerTensor;

    fn add(self, rhs: PerTensor) -> PerTensor {
        PerTensor([
            self.0[0] + rhs.0[0],
            self.0[1] + rhs.0[1],
            self.0[2] + rhs.0[2],
        ])
    }
}

impl AddAssign for PerTensor {
    fn add_assign(&mut self, rhs: PerTensor) {
        for i in 0..3 {
            self.0[i] += rhs.0[i];
        }
    }
}

/// Hardware activity counts for one analyzed scope (a cluster-level pass or
/// a whole layer).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct ActivityCounts {
    /// Multiply-accumulate operations (element operations for non-MAC ops).
    pub macs: f64,
    /// Element reads from PE-local L1 scratchpads.
    pub l1_read: PerTensor,
    /// Element writes to PE-local L1 scratchpads.
    pub l1_write: PerTensor,
    /// Element reads from the shared L2 scratchpad.
    pub l2_read: PerTensor,
    /// Element writes to the shared L2 scratchpad.
    pub l2_write: PerTensor,
    /// Elements traversing the NoC.
    pub noc: PerTensor,
    /// Element reads from off-chip DRAM.
    pub dram_read: PerTensor,
    /// Element writes to off-chip DRAM.
    pub dram_write: PerTensor,
}

impl ActivityCounts {
    /// An all-zero count set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Integrate against an energy table.
    pub fn energy(&self, e: &EnergyModel) -> f64 {
        self.macs * e.mac
            + self.l1_read.total() * e.l1_read
            + self.l1_write.total() * e.l1_write
            + self.l2_read.total() * e.l2_read
            + self.l2_write.total() * e.l2_write
            + self.noc.total() * e.noc
            + (self.dram_read.total() + self.dram_write.total()) * e.dram
    }

    /// Energy broken down by activity class, in Figure 12's categories.
    pub fn energy_breakdown(&self, e: &EnergyModel) -> EnergyBreakdown {
        EnergyBreakdown {
            mac: self.macs * e.mac,
            l1_read: self.l1_read.scaled(e.l1_read),
            l1_write: self.l1_write.scaled(e.l1_write),
            l2_read: self.l2_read.scaled(e.l2_read),
            l2_write: self.l2_write.scaled(e.l2_write),
            noc: self.noc.scaled(e.noc),
            dram: (self.dram_read + self.dram_write).scaled(e.dram),
        }
    }

    /// Accumulate `rhs` scaled by `times` (e.g. inner-level counts times
    /// the number of inner passes).
    pub fn add_scaled(&mut self, rhs: &ActivityCounts, times: f64) {
        self.macs += rhs.macs * times;
        self.l1_read += rhs.l1_read.scaled(times);
        self.l1_write += rhs.l1_write.scaled(times);
        self.l2_read += rhs.l2_read.scaled(times);
        self.l2_write += rhs.l2_write.scaled(times);
        self.noc += rhs.noc.scaled(times);
        self.dram_read += rhs.dram_read.scaled(times);
        self.dram_write += rhs.dram_write.scaled(times);
    }
}

impl Add for ActivityCounts {
    type Output = ActivityCounts;

    fn add(self, rhs: ActivityCounts) -> ActivityCounts {
        let mut out = self;
        out.add_scaled(&rhs, 1.0);
        out
    }
}

/// Per-category energy (Figure 12's stacked bars), in the units of the
/// [`EnergyModel`] used to produce it.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct EnergyBreakdown {
    /// MAC energy.
    pub mac: f64,
    /// L1 read energy per tensor.
    pub l1_read: PerTensor,
    /// L1 write energy per tensor.
    pub l1_write: PerTensor,
    /// L2 read energy per tensor.
    pub l2_read: PerTensor,
    /// L2 write energy per tensor.
    pub l2_write: PerTensor,
    /// NoC energy per tensor.
    pub noc: PerTensor,
    /// DRAM energy per tensor.
    pub dram: PerTensor,
}

impl EnergyBreakdown {
    /// Total energy across categories.
    pub fn total(&self) -> f64 {
        self.mac
            + self.l1_read.total()
            + self.l1_write.total()
            + self.l2_read.total()
            + self.l2_write.total()
            + self.noc.total()
            + self.dram.total()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_tensor_indexing() {
        let mut p = PerTensor::default();
        p[TensorKind::Weight] = 3.0;
        p[TensorKind::Output] += 2.0;
        assert_eq!(p[TensorKind::Weight], 3.0);
        assert_eq!(p.total(), 5.0);
        assert_eq!(p.scaled(2.0).total(), 10.0);
    }

    #[test]
    fn energy_integration() {
        let mut c = ActivityCounts::new();
        c.macs = 10.0;
        c.l2_read[TensorKind::Input] = 2.0;
        let e = EnergyModel::normalized();
        let total = c.energy(&e);
        assert!((total - (10.0 + 2.0 * 18.6)).abs() < 1e-9);
        let bd = c.energy_breakdown(&e);
        assert!((bd.total() - total).abs() < 1e-9);
        assert!((bd.l2_read[TensorKind::Input] - 37.2).abs() < 1e-9);
    }

    #[test]
    fn add_scaled_accumulates() {
        let mut a = ActivityCounts::new();
        a.macs = 1.0;
        let mut b = ActivityCounts::new();
        b.macs = 2.0;
        b.noc[TensorKind::Weight] = 1.0;
        a.add_scaled(&b, 3.0);
        assert_eq!(a.macs, 7.0);
        assert_eq!(a.noc[TensorKind::Weight], 3.0);
        let c = a + b;
        assert_eq!(c.macs, 9.0);
    }
}

//! Analysis reports: the user-facing output of the cost model.

use crate::counts::{ActivityCounts, EnergyBreakdown, PerTensor};
use maestro_dnn::TensorKind;
use maestro_hw::{Accelerator, EnergyModel};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Per-cluster-level detail inside a [`LayerReport`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LevelSummary {
    /// Level index (0 = outermost).
    pub level: usize,
    /// Sub-units of one instance of this level.
    pub units: u64,
    /// Units active in a steady step.
    pub active_units: u64,
    /// Average useful fraction of the units.
    pub utilization: f64,
    /// Time steps per pass of one instance.
    pub steps: u64,
    /// Steady-state pass runtime of one instance (cycles).
    pub pass_cycles: f64,
    /// Per-unit per-step footprints (Input, Weight, Output), elements.
    pub footprint: [u64; 3],
    /// Whether outputs vary, reduce, or are not parallel across units.
    pub output_spatial: crate::level::OutputSpatial,
}

/// The analysis result for one layer under one dataflow and one hardware
/// configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayerReport {
    /// Layer name.
    pub layer: String,
    /// Dataflow name.
    pub dataflow: String,
    /// Estimated runtime in cycles.
    pub runtime: f64,
    /// Activity counts for the whole layer.
    pub counts: ActivityCounts,
    /// Dense MAC count modeled.
    pub macs_dense: f64,
    /// Density-scaled MAC count.
    pub macs_effective: f64,
    /// Required per-PE L1 capacity, elements (double-buffered).
    pub l1_per_pe_elems: u64,
    /// Required L2 staging capacity, elements (double-buffered).
    pub l2_staging_elems: u64,
    /// Peak NoC bandwidth demand, elements/cycle.
    pub peak_bw: f64,
    /// Average NoC bandwidth use, elements/cycle.
    pub avg_bw: f64,
    /// Average fraction of PEs doing useful work.
    pub utilization: f64,
    /// PEs covered by the dataflow's cluster hierarchy.
    pub used_pes: u64,
    /// Total PEs in the configuration.
    pub num_pes: u64,
    /// Whole-tensor element counts (for reuse-factor denominators),
    /// indexed Input/Weight/Output.
    pub tensor_elems: [u64; 3],
    /// Per-cluster-level detail, outermost first.
    pub levels: Vec<LevelSummary>,
}

impl LayerReport {
    /// Finite-value gate: reject any NaN or infinite scalar in the report
    /// before it can reach Pareto/best-point comparisons, where NaN fails
    /// every strict ordering and would silently corrupt the front.
    ///
    /// # Errors
    ///
    /// Returns [`AnalysisError::NonFinite`] naming the first offending
    /// field.
    ///
    /// [`AnalysisError::NonFinite`]: crate::AnalysisError::NonFinite
    pub fn validate(&self) -> Result<(), crate::AnalysisError> {
        let scalars: [(&'static str, f64); 6] = [
            ("runtime", self.runtime),
            ("macs_dense", self.macs_dense),
            ("macs_effective", self.macs_effective),
            ("peak_bw", self.peak_bw),
            ("avg_bw", self.avg_bw),
            ("utilization", self.utilization),
        ];
        for (field, v) in scalars {
            if !v.is_finite() {
                return Err(crate::AnalysisError::NonFinite { field });
            }
        }
        if !self.counts.macs.is_finite() {
            return Err(crate::AnalysisError::NonFinite {
                field: "counts.macs",
            });
        }
        let tensors: [(&'static str, &PerTensor); 7] = [
            ("counts.l1_read", &self.counts.l1_read),
            ("counts.l1_write", &self.counts.l1_write),
            ("counts.l2_read", &self.counts.l2_read),
            ("counts.l2_write", &self.counts.l2_write),
            ("counts.noc", &self.counts.noc),
            ("counts.dram_read", &self.counts.dram_read),
            ("counts.dram_write", &self.counts.dram_write),
        ];
        for (field, t) in tensors {
            if !t.0.iter().all(|v| v.is_finite()) {
                return Err(crate::AnalysisError::NonFinite { field });
            }
        }
        Ok(())
    }

    /// Total energy under an energy table.
    pub fn energy(&self, e: &EnergyModel) -> f64 {
        self.counts.energy(e)
    }

    /// Per-category energy (Figure 12).
    pub fn energy_breakdown(&self, e: &EnergyModel) -> EnergyBreakdown {
        self.counts.energy_breakdown(e)
    }

    /// Throughput in MACs per cycle.
    pub fn throughput(&self) -> f64 {
        if self.runtime > 0.0 {
            self.macs_effective / self.runtime
        } else {
            0.0
        }
    }

    /// Energy-delay product.
    pub fn edp(&self, e: &EnergyModel) -> f64 {
        self.energy(e) * self.runtime
    }

    /// The reuse factor of a tensor: local (L1) accesses per upstream (L2)
    /// fetch (Figure 11's metric). Infinite reuse (zero fetches) is
    /// reported as the algorithmic maximum.
    pub fn reuse_factor(&self, kind: TensorKind) -> f64 {
        let local = self.counts.l1_read[kind] + self.counts.l1_write[kind];
        let upstream = self.counts.l2_read[kind] + self.counts.l2_write[kind];
        if upstream > 0.0 {
            local / upstream
        } else {
            self.algorithmic_max_reuse(kind)
        }
    }

    /// The algorithmic maximum reuse factor: MAC-level accesses divided by
    /// the tensor's size (the "A" bars of Figure 11).
    pub fn algorithmic_max_reuse(&self, kind: TensorKind) -> f64 {
        let elems = self.tensor_elems[kind as usize] as f64;
        if elems > 0.0 {
            // Outputs are touched twice per MAC (read-modify-write).
            let per_mac = if kind == TensorKind::Output { 2.0 } else { 1.0 };
            self.macs_effective * per_mac / elems
        } else {
            0.0
        }
    }

    /// `true` when the dataflow's buffer requirements fit the hardware.
    pub fn buffers_fit(&self, acc: &Accelerator) -> bool {
        self.l1_per_pe_elems <= acc.l1_elements() && self.l2_staging_elems <= acc.l2_elements()
    }
}

impl fmt::Display for LayerReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Layer {} / dataflow {}", self.layer, self.dataflow)?;
        writeln!(f, "  runtime       {:>14.0} cycles", self.runtime)?;
        writeln!(f, "  MACs          {:>14.0}", self.macs_effective)?;
        writeln!(
            f,
            "  throughput    {:>14.2} MACs/cycle (utilization {:.1}%)",
            self.throughput(),
            self.utilization * 100.0
        )?;
        writeln!(
            f,
            "  L2 traffic    {:>14.0} rd / {:.0} wr",
            self.counts.l2_read.total(),
            self.counts.l2_write.total()
        )?;
        writeln!(
            f,
            "  buffers       L1/PE {} elems, L2 {} elems",
            self.l1_per_pe_elems, self.l2_staging_elems
        )?;
        writeln!(
            f,
            "  NoC bandwidth {:>14.2} peak / {:.2} avg elems/cycle",
            self.peak_bw, self.avg_bw
        )?;
        for l in &self.levels {
            write!(
                f,
                "  level {}      {:>4} units ({} active, {:.0}% useful), {} steps/pass, fp I/W/O {}/{}/{}",
                l.level,
                l.units,
                l.active_units,
                l.utilization * 100.0,
                l.steps,
                l.footprint[0],
                l.footprint[1],
                l.footprint[2]
            )?;
            if l.level + 1 < self.levels.len() {
                writeln!(f)?;
            }
        }
        Ok(())
    }
}

/// Estimated off-chip (DRAM) traffic for activity `counts` over tensors of
/// `tensor_elems` elements, given an L2 of `l2_elements`.
///
/// Every tensor incurs *compulsory* DRAM traffic (first fetch / final
/// store). Re-reads from the L2 stay on-chip only to the extent the L2 can
/// keep the tensors resident: with capacity below the combined working set,
/// the excess re-reads miss to DRAM proportionally. Returns
/// `(dram_reads, dram_writes)` per tensor.
pub fn offchip_traffic(
    counts: &ActivityCounts,
    tensor_elems: [u64; 3],
    l2_elements: u64,
) -> (PerTensor, PerTensor) {
    let working_set: f64 = tensor_elems.iter().map(|&e| e as f64).sum();
    let resident = if working_set > 0.0 {
        (l2_elements as f64 / working_set).min(1.0)
    } else {
        1.0
    };
    let miss = 1.0 - resident;
    let mut reads = PerTensor::default();
    let mut writes = PerTensor::default();
    for kind in TensorKind::ALL {
        let size = tensor_elems[kind as usize] as f64;
        if kind.is_operand() {
            let compulsory = counts.l2_read[kind].min(size);
            reads[kind] = compulsory + (counts.l2_read[kind] - compulsory).max(0.0) * miss;
        } else {
            let compulsory = counts.l2_write[kind].min(size);
            writes[kind] = compulsory + (counts.l2_write[kind] - compulsory).max(0.0) * miss;
            // Partial sums re-fetched through the L2 miss at the same rate.
            reads[kind] = counts.l2_read[kind] * miss;
        }
    }
    (reads, writes)
}

/// Aggregated analysis of a whole model under one dataflow assignment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelReport {
    /// Model name.
    pub model: String,
    /// Per-layer reports, in network order.
    pub layers: Vec<LayerReport>,
}

impl ModelReport {
    /// End-to-end runtime (layers executed sequentially).
    pub fn runtime(&self) -> f64 {
        self.layers.iter().map(|l| l.runtime).sum()
    }

    /// Total activity counts.
    pub fn counts(&self) -> ActivityCounts {
        let mut c = ActivityCounts::new();
        for l in &self.layers {
            c.add_scaled(&l.counts, 1.0);
        }
        c
    }

    /// Total energy.
    pub fn energy(&self, e: &EnergyModel) -> f64 {
        self.layers.iter().map(|l| l.energy(e)).sum()
    }

    /// Worst-case per-PE L1 requirement across layers.
    pub fn l1_per_pe_elems(&self) -> u64 {
        self.layers
            .iter()
            .map(|l| l.l1_per_pe_elems)
            .max()
            .unwrap_or(0)
    }

    /// Worst-case L2 staging requirement across layers.
    pub fn l2_staging_elems(&self) -> u64 {
        self.layers
            .iter()
            .map(|l| l.l2_staging_elems)
            .max()
            .unwrap_or(0)
    }

    /// Worst-case NoC bandwidth demand across layers.
    pub fn peak_bw(&self) -> f64 {
        self.layers.iter().map(|l| l.peak_bw).fold(0.0, f64::max)
    }
}

impl fmt::Display for ModelReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Model {}: {} layers, runtime {:.0} cycles",
            self.model,
            self.layers.len(),
            self.runtime()
        )?;
        for l in &self.layers {
            writeln!(
                f,
                "  {:<18} {:<6} {:>14.0} cyc {:>8.2} MAC/cyc",
                l.layer,
                l.dataflow,
                l.runtime,
                l.throughput()
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dummy_report(runtime: f64, macs: f64) -> LayerReport {
        let mut counts = ActivityCounts::new();
        counts.macs = macs;
        counts.l1_read[TensorKind::Input] = macs;
        counts.l2_read[TensorKind::Input] = macs / 10.0;
        LayerReport {
            layer: "l".into(),
            dataflow: "d".into(),
            runtime,
            counts,
            macs_dense: macs,
            macs_effective: macs,
            l1_per_pe_elems: 8,
            l2_staging_elems: 64,
            peak_bw: 4.0,
            avg_bw: 2.0,
            utilization: 1.0,
            used_pes: 4,
            num_pes: 4,
            tensor_elems: [100, 10, 50],
            levels: Vec::new(),
        }
    }

    #[test]
    fn derived_metrics() {
        let r = dummy_report(1000.0, 4000.0);
        assert!((r.throughput() - 4.0).abs() < 1e-9);
        assert!((r.reuse_factor(TensorKind::Input) - 10.0).abs() < 1e-9);
        assert!((r.algorithmic_max_reuse(TensorKind::Input) - 40.0).abs() < 1e-9);
        assert!(
            (r.algorithmic_max_reuse(TensorKind::Output) - 160.0).abs() < 1e-9,
            "outputs count read+write per MAC"
        );
        let e = EnergyModel::normalized();
        assert!(r.edp(&e) > 0.0);
        let acc = Accelerator::builder(4).build();
        assert!(r.buffers_fit(&acc));
    }

    #[test]
    fn validate_accepts_finite_and_names_nonfinite_fields() {
        let mut r = dummy_report(1000.0, 4000.0);
        assert!(r.validate().is_ok());
        r.runtime = f64::NAN;
        let err = r.validate().unwrap_err();
        assert!(err.to_string().contains("runtime"), "{err}");
        r.runtime = 1000.0;
        r.counts.l2_read[TensorKind::Weight] = f64::INFINITY;
        let err = r.validate().unwrap_err();
        assert!(err.to_string().contains("l2_read"), "{err}");
    }

    #[test]
    fn zero_fetch_reuse_falls_back_to_algorithmic() {
        let mut r = dummy_report(10.0, 100.0);
        r.counts.l2_read[TensorKind::Weight] = 0.0;
        r.counts.l1_read[TensorKind::Weight] = 100.0;
        assert!((r.reuse_factor(TensorKind::Weight) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn model_report_aggregates() {
        let m = ModelReport {
            model: "m".into(),
            layers: vec![dummy_report(10.0, 40.0), dummy_report(20.0, 40.0)],
        };
        assert!((m.runtime() - 30.0).abs() < 1e-9);
        assert_eq!(m.l1_per_pe_elems(), 8);
        assert_eq!(m.l2_staging_elems(), 64);
        assert!((m.peak_bw() - 4.0).abs() < 1e-9);
        assert!((m.counts().macs - 80.0).abs() < 1e-9);
        let disp = m.to_string();
        assert!(disp.contains("2 layers"));
    }
}

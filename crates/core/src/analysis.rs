//! Public entry points: analyze a layer or a whole model.

use crate::engine::{analyze_level, LevelResult};
use crate::level::LevelCtx;
use crate::report::{LayerReport, ModelReport};
use maestro_dnn::layer::LayerError;
use maestro_dnn::{Layer, Model, TensorKind};
use maestro_hw::Accelerator;
use maestro_ir::{resolve, Dataflow, ResolveError};
use std::fmt;
use std::sync::OnceLock;

/// Counter of [`LayerReport::validate`] rejections inside [`analyze`]
/// (`maestro.analysis.validation_failures`). A `OnceLock`-cached handle:
/// the registry lookup happens once, increments are lock-free.
fn validation_failures() -> &'static maestro_obs::Counter {
    static C: OnceLock<maestro_obs::Counter> = OnceLock::new();
    C.get_or_init(|| maestro_obs::registry().counter("maestro.analysis.validation_failures"))
}

/// Counter of [`analyze`] invocations (`maestro.analysis.calls`).
fn analysis_calls() -> &'static maestro_obs::Counter {
    static C: OnceLock<maestro_obs::Counter> = OnceLock::new();
    C.get_or_init(|| maestro_obs::registry().counter("maestro.analysis.calls"))
}

/// Errors produced by the analysis entry points.
///
/// The library is panic-free by policy: conditions that would previously
/// abort the process (violated internal invariants, non-finite arithmetic,
/// degenerate resolutions) are reported through the [`Internal`],
/// [`NonFinite`] and [`EmptyResolution`] variants instead, so a sweep can
/// drop the offending configuration and continue.
///
/// [`Internal`]: AnalysisError::Internal
/// [`NonFinite`]: AnalysisError::NonFinite
/// [`EmptyResolution`]: AnalysisError::EmptyResolution
#[derive(Debug, Clone, PartialEq)]
pub enum AnalysisError {
    /// The layer description is invalid.
    Layer(LayerError),
    /// The dataflow cannot be bound to the layer/accelerator.
    Resolve(ResolveError),
    /// An internal invariant of the cost model was violated. This indicates
    /// a bug in the analysis, reported as an error instead of a panic so
    /// callers can quarantine the configuration.
    Internal(&'static str),
    /// The analysis produced a NaN or infinite value in the named report
    /// field (e.g. from a non-finite density input).
    NonFinite {
        /// The report field that failed the finite-value gate.
        field: &'static str,
    },
    /// Resolution produced no cluster levels, so there is nothing to
    /// analyze.
    EmptyResolution,
}

impl fmt::Display for AnalysisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnalysisError::Layer(e) => write!(f, "invalid layer: {e}"),
            AnalysisError::Resolve(e) => write!(f, "cannot resolve dataflow: {e}"),
            AnalysisError::Internal(what) => {
                write!(f, "internal invariant violated: {what}")
            }
            AnalysisError::NonFinite { field } => {
                write!(f, "analysis produced a non-finite value in `{field}`")
            }
            AnalysisError::EmptyResolution => {
                write!(f, "resolution produced no cluster levels")
            }
        }
    }
}

impl std::error::Error for AnalysisError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AnalysisError::Layer(e) => Some(e),
            AnalysisError::Resolve(e) => Some(e),
            _ => None,
        }
    }
}

impl From<LayerError> for AnalysisError {
    fn from(e: LayerError) -> Self {
        AnalysisError::Layer(e)
    }
}

impl From<ResolveError> for AnalysisError {
    fn from(e: ResolveError) -> Self {
        AnalysisError::Resolve(e)
    }
}

/// Analyze one layer under `dataflow` on `acc`.
///
/// # Errors
///
/// Returns [`AnalysisError`] when the layer is invalid or the dataflow
/// cannot be resolved for this layer/PE combination.
///
/// ```
/// use maestro_core::analyze;
/// use maestro_dnn::{Layer, LayerDims, Operator};
/// use maestro_hw::Accelerator;
/// use maestro_ir::Style;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let layer = Layer::new("c", Operator::conv2d(), LayerDims::square(1, 16, 16, 18, 3));
/// let acc = Accelerator::builder(64).build();
/// let report = analyze(&layer, &Style::KCP.dataflow(), &acc)?;
/// assert!(report.runtime > 0.0);
/// # Ok(())
/// # }
/// ```
pub fn analyze(
    layer: &Layer,
    dataflow: &Dataflow,
    acc: &Accelerator,
) -> Result<LayerReport, AnalysisError> {
    let _span = maestro_obs::span::span("maestro.analysis.analyze");
    analysis_calls().inc();

    // Tensor + cluster analysis: bind the dataflow to the layer, derive
    // the per-level data views (paper §4.1–§4.2).
    let (resolved, coupling, ctxs) = {
        let _s = maestro_obs::span::span("maestro.analysis.tensor");
        layer.validate()?;
        let resolved = resolve(dataflow, layer, acc.num_pes)?;
        let coupling = layer.coupling();
        let ctxs: Vec<LevelCtx> = resolved
            .levels
            .iter()
            .map(|l| LevelCtx::build(&resolved, l, &coupling))
            .collect();
        (resolved, coupling, ctxs)
    };

    // Reuse + performance analysis: the per-level transition-class engine
    // (paper §4.2–§4.4), innermost level first.
    let (result, mut levels) = {
        let _s = maestro_obs::span::span("maestro.analysis.reuse");
        let mut result: Option<LevelResult> = None;
        let mut levels: Vec<crate::report::LevelSummary> = Vec::with_capacity(ctxs.len());
        for (i, ctx) in ctxs.iter().enumerate().rev() {
            let r = analyze_level(ctx, result.as_ref(), acc, &coupling, layer.density, i == 0);
            levels.push(crate::report::LevelSummary {
                level: i,
                units: ctx.num_units,
                active_units: ctx.active_units,
                utilization: ctx.utilization,
                steps: ctx.total_steps,
                pass_cycles: r.runtime_steady,
                footprint: [
                    ctx.views.footprint(&coupling, TensorKind::Input),
                    ctx.views.footprint(&coupling, TensorKind::Weight),
                    ctx.views.footprint(&coupling, TensorKind::Output),
                ],
                output_spatial: ctx.output_spatial,
            });
            result = Some(r);
        }
        (result, levels)
    };
    levels.reverse();
    let Some(mut top) = result else {
        return Err(AnalysisError::EmptyResolution);
    };
    if resolved.used_pes == 0 || resolved.used_pes > acc.num_pes {
        return Err(AnalysisError::Internal(
            "resolved PE usage is outside the accelerator's PE array",
        ));
    }

    // Buffer analysis: L2 read-modify-write correction and utilization
    // (the capacity side of the cost model).
    let utilization = {
        let _s = maestro_obs::span::span("maestro.analysis.buffer");
        // Without spatial-reduction hardware, partial sums from spatially
        // reduced levels are combined by read-modify-write at the L2:
        // every output write implies one extra read (paper Table 2 /
        // Table 5).
        if acc.support.reduction == maestro_hw::SpatialReduction::None
            && ctxs
                .iter()
                .any(|c| c.output_spatial == crate::level::OutputSpatial::Reduced)
        {
            let writes = top.counts.l2_write[TensorKind::Output];
            top.counts.l2_read[TensorKind::Output] += writes;
        }
        ctxs.iter().map(|c| c.utilization).product::<f64>()
            * (resolved.used_pes as f64 / acc.num_pes as f64)
    };

    // NoC + off-chip analysis: DRAM traffic (Figure 2 lists DRAM
    // bandwidth among the model's hardware parameters) — compulsory moves
    // plus capacity misses, overlapped against on-chip execution
    // (double-buffered) — and average NoC bandwidth.
    let (runtime, avg_bw, tensor_elems) = {
        let _s = maestro_obs::span::span("maestro.analysis.noc");
        let tensor_elems = [
            layer.tensor_elements(TensorKind::Input),
            layer.tensor_elements(TensorKind::Weight),
            layer.tensor_elements(TensorKind::Output),
        ];
        let (dram_read, dram_write) =
            crate::report::offchip_traffic(&top.counts, tensor_elems, acc.l2_elements());
        top.counts.dram_read = dram_read;
        top.counts.dram_write = dram_write;
        let dram_delay =
            (dram_read.total() + dram_write.total()) / acc.offchip_bandwidth.max(1) as f64;
        let runtime = top.runtime_first.max(dram_delay);
        let avg_bw = if runtime > 0.0 {
            (top.counts.l2_read.total() + top.counts.l2_write.total()) / runtime
        } else {
            0.0
        };
        (runtime, avg_bw, tensor_elems)
    };

    let report = LayerReport {
        layer: layer.name.clone(),
        dataflow: dataflow.name().to_string(),
        runtime,
        counts: top.counts,
        macs_dense: top.macs_dense,
        macs_effective: top.macs_effective,
        l1_per_pe_elems: top.l1_per_pe,
        l2_staging_elems: top.staging,
        peak_bw: top.peak_bw,
        avg_bw,
        utilization,
        used_pes: resolved.used_pes,
        num_pes: acc.num_pes,
        tensor_elems,
        levels,
    };
    if let Err(e) = report.validate() {
        validation_failures().inc();
        maestro_obs::debug!(
            "analysis of {}/{} rejected by the finite-value gate: {e}",
            layer.name,
            dataflow.name()
        );
        return Err(e);
    }
    Ok(report)
}

/// Analyze every layer of `model` under a per-layer dataflow choice.
///
/// # Errors
///
/// Fails on the first layer that cannot be analyzed.
pub fn analyze_model_with(
    model: &Model,
    acc: &Accelerator,
    mut choose: impl FnMut(&Layer) -> Dataflow,
) -> Result<ModelReport, AnalysisError> {
    let mut layers = Vec::with_capacity(model.len());
    for layer in model.iter() {
        layers.push(analyze(layer, &choose(layer), acc)?);
    }
    Ok(ModelReport {
        model: model.name.clone(),
        layers,
    })
}

/// Analyze every layer of `model` under one fixed dataflow.
///
/// # Errors
///
/// Fails on the first layer that cannot be analyzed.
pub fn analyze_model(
    model: &Model,
    dataflow: &Dataflow,
    acc: &Accelerator,
) -> Result<ModelReport, AnalysisError> {
    analyze_model_with(model, acc, |_| dataflow.clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use maestro_dnn::{zoo, LayerDims, Operator};
    use maestro_ir::Style;

    #[test]
    fn analyze_rejects_invalid_layers() {
        let layer = Layer::new("bad", Operator::conv2d(), LayerDims::square(1, 0, 3, 8, 3));
        let acc = Accelerator::builder(16).build();
        let err = analyze(&layer, &Style::KCP.dataflow(), &acc).unwrap_err();
        assert!(matches!(err, AnalysisError::Layer(_)));
        assert!(err.to_string().contains("invalid layer"));
    }

    #[test]
    fn analyze_model_sums_layers() {
        let model = zoo::alexnet(1);
        let acc = Accelerator::builder(64).build();
        let report = analyze_model(&model, &Style::KCP.dataflow(), &acc).unwrap();
        assert_eq!(report.layers.len(), model.len());
        assert!(report.runtime() > 0.0);
        let sum: f64 = report.layers.iter().map(|l| l.runtime).sum();
        assert!((report.runtime() - sum).abs() < 1e-6);
    }

    #[test]
    fn adaptive_choice_is_at_least_as_good_as_fixed() {
        let model = zoo::alexnet(1);
        let acc = Accelerator::builder(64).build();
        // Adaptive: per layer, pick the best of the five styles by runtime.
        let adaptive = analyze_model_with(&model, &acc, |layer| {
            Style::ALL
                .iter()
                .map(|s| s.dataflow())
                .min_by(|a, b| {
                    let ra = analyze(layer, a, &acc)
                        .map(|r| r.runtime)
                        .unwrap_or(f64::MAX);
                    let rb = analyze(layer, b, &acc)
                        .map(|r| r.runtime)
                        .unwrap_or(f64::MAX);
                    ra.total_cmp(&rb)
                })
                .expect("non-empty styles")
        })
        .unwrap();
        for style in Style::ALL {
            let fixed = analyze_model(&model, &style.dataflow(), &acc).unwrap();
            assert!(
                adaptive.runtime() <= fixed.runtime() * 1.0001,
                "adaptive {} vs {style} {}",
                adaptive.runtime(),
                fixed.runtime()
            );
        }
    }

    #[test]
    fn utilization_is_a_fraction() {
        let layer = Layer::new("c", Operator::conv2d(), LayerDims::square(1, 16, 16, 18, 3));
        let acc = Accelerator::builder(64).build();
        for style in Style::ALL {
            let r = analyze(&layer, &style.dataflow(), &acc).unwrap();
            assert!(
                (0.0..=1.0).contains(&r.utilization),
                "{style}: {}",
                r.utilization
            );
        }
    }
}

//! Public entry points: analyze a layer or a whole model.

use crate::report::{LayerReport, ModelReport};
use crate::stages::StagedAnalysis;
use maestro_dnn::layer::LayerError;
use maestro_dnn::{Layer, Model};
use maestro_hw::Accelerator;
use maestro_ir::{Dataflow, ResolveError};
use std::fmt;

/// Errors produced by the analysis entry points.
///
/// The library is panic-free by policy: conditions that would previously
/// abort the process (violated internal invariants, non-finite arithmetic,
/// degenerate resolutions) are reported through the [`Internal`],
/// [`NonFinite`] and [`EmptyResolution`] variants instead, so a sweep can
/// drop the offending configuration and continue.
///
/// [`Internal`]: AnalysisError::Internal
/// [`NonFinite`]: AnalysisError::NonFinite
/// [`EmptyResolution`]: AnalysisError::EmptyResolution
#[derive(Debug, Clone, PartialEq)]
pub enum AnalysisError {
    /// The layer description is invalid.
    Layer(LayerError),
    /// The dataflow cannot be bound to the layer/accelerator.
    Resolve(ResolveError),
    /// An internal invariant of the cost model was violated. This indicates
    /// a bug in the analysis, reported as an error instead of a panic so
    /// callers can quarantine the configuration.
    Internal(&'static str),
    /// The analysis produced a NaN or infinite value in the named report
    /// field (e.g. from a non-finite density input).
    NonFinite {
        /// The report field that failed the finite-value gate.
        field: &'static str,
    },
    /// Resolution produced no cluster levels, so there is nothing to
    /// analyze.
    EmptyResolution,
    /// A cooperative cancellation token tripped (deadline, signal, or
    /// explicit cancel) before the analysis completed. Only the
    /// `*_cancellable` entry points produce this; plain calls run to
    /// completion.
    Cancelled,
}

impl fmt::Display for AnalysisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnalysisError::Layer(e) => write!(f, "invalid layer: {e}"),
            AnalysisError::Resolve(e) => write!(f, "cannot resolve dataflow: {e}"),
            AnalysisError::Internal(what) => {
                write!(f, "internal invariant violated: {what}")
            }
            AnalysisError::NonFinite { field } => {
                write!(f, "analysis produced a non-finite value in `{field}`")
            }
            AnalysisError::EmptyResolution => {
                write!(f, "resolution produced no cluster levels")
            }
            AnalysisError::Cancelled => {
                write!(f, "analysis cancelled (deadline or interrupt)")
            }
        }
    }
}

impl std::error::Error for AnalysisError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AnalysisError::Layer(e) => Some(e),
            AnalysisError::Resolve(e) => Some(e),
            _ => None,
        }
    }
}

impl From<LayerError> for AnalysisError {
    fn from(e: LayerError) -> Self {
        AnalysisError::Layer(e)
    }
}

impl From<ResolveError> for AnalysisError {
    fn from(e: ResolveError) -> Self {
        AnalysisError::Resolve(e)
    }
}

/// Analyze one layer under `dataflow` on `acc`.
///
/// # Errors
///
/// Returns [`AnalysisError`] when the layer is invalid or the dataflow
/// cannot be resolved for this layer/PE combination.
///
/// ```
/// use maestro_core::analyze;
/// use maestro_dnn::{Layer, LayerDims, Operator};
/// use maestro_hw::Accelerator;
/// use maestro_ir::Style;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let layer = Layer::new("c", Operator::conv2d(), LayerDims::square(1, 16, 16, 18, 3));
/// let acc = Accelerator::builder(64).build();
/// let report = analyze(&layer, &Style::KCP.dataflow(), &acc)?;
/// assert!(report.runtime > 0.0);
/// # Ok(())
/// # }
/// ```
pub fn analyze(
    layer: &Layer,
    dataflow: &Dataflow,
    acc: &Accelerator,
) -> Result<LayerReport, AnalysisError> {
    let _span = maestro_obs::span::span("maestro.analysis.analyze");
    // The staged pipeline IS the implementation: the fused entry point
    // builds the NoC-independent stages and immediately prices them under
    // this accelerator's NoC, so staged and fused evaluation cannot drift.
    StagedAnalysis::build(layer, dataflow, acc)?.finish(acc.noc.bandwidth, acc.noc.avg_latency)
}

/// [`analyze`] polling a cooperative [`CancelToken`] at its stage
/// boundary: when the token trips before the (cheap) pricing stage runs,
/// the call returns [`AnalysisError::Cancelled`] instead of finishing.
/// This is the per-request deadline hook for the serving daemon — a
/// request whose budget expires stops consuming its worker at the next
/// cancellation point rather than running to completion.
///
/// [`CancelToken`]: maestro_obs::CancelToken
///
/// # Errors
///
/// As [`analyze`], plus [`AnalysisError::Cancelled`] when `token` trips
/// before completion.
pub fn analyze_cancellable(
    layer: &Layer,
    dataflow: &Dataflow,
    acc: &Accelerator,
    token: &maestro_obs::CancelToken,
) -> Result<LayerReport, AnalysisError> {
    if token.is_cancelled() {
        return Err(AnalysisError::Cancelled);
    }
    let _span = maestro_obs::span::span("maestro.analysis.analyze");
    let staged = StagedAnalysis::build(layer, dataflow, acc)?;
    // Stage boundary: the expensive NoC-independent stages are done; bail
    // before pricing if the budget expired while they ran.
    if token.is_cancelled() {
        return Err(AnalysisError::Cancelled);
    }
    staged.finish(acc.noc.bandwidth, acc.noc.avg_latency)
}

/// Analyze every layer of `model` under a per-layer dataflow choice.
///
/// # Errors
///
/// Fails on the first layer that cannot be analyzed.
pub fn analyze_model_with(
    model: &Model,
    acc: &Accelerator,
    mut choose: impl FnMut(&Layer) -> Dataflow,
) -> Result<ModelReport, AnalysisError> {
    let mut layers = Vec::with_capacity(model.len());
    for layer in model.iter() {
        layers.push(analyze(layer, &choose(layer), acc)?);
    }
    Ok(ModelReport {
        model: model.name.clone(),
        layers,
    })
}

/// Analyze every layer of `model` under one fixed dataflow.
///
/// # Errors
///
/// Fails on the first layer that cannot be analyzed.
pub fn analyze_model(
    model: &Model,
    dataflow: &Dataflow,
    acc: &Accelerator,
) -> Result<ModelReport, AnalysisError> {
    analyze_model_with(model, acc, |_| dataflow.clone())
}

/// [`analyze_model`] polling a cooperative [`CancelToken`] at every layer
/// boundary: a tripped token aborts the remaining layers with
/// [`AnalysisError::Cancelled`]. Deep models (ResNet-50, EfficientNet)
/// are the whole-model serving path's long pole, so per-layer polling
/// bounds a timed-out request's overstay to one layer's analysis.
///
/// [`CancelToken`]: maestro_obs::CancelToken
///
/// # Errors
///
/// As [`analyze_model`], plus [`AnalysisError::Cancelled`] when `token`
/// trips before the last layer completes.
pub fn analyze_model_cancellable(
    model: &Model,
    dataflow: &Dataflow,
    acc: &Accelerator,
    token: &maestro_obs::CancelToken,
) -> Result<ModelReport, AnalysisError> {
    let mut layers = Vec::with_capacity(model.len());
    for layer in model.iter() {
        if token.is_cancelled() {
            return Err(AnalysisError::Cancelled);
        }
        layers.push(analyze(layer, dataflow, acc)?);
    }
    Ok(ModelReport {
        model: model.name.clone(),
        layers,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use maestro_dnn::{zoo, LayerDims, Operator};
    use maestro_ir::Style;

    #[test]
    fn analyze_rejects_invalid_layers() {
        let layer = Layer::new("bad", Operator::conv2d(), LayerDims::square(1, 0, 3, 8, 3));
        let acc = Accelerator::builder(16).build();
        let err = analyze(&layer, &Style::KCP.dataflow(), &acc).unwrap_err();
        assert!(matches!(err, AnalysisError::Layer(_)));
        assert!(err.to_string().contains("invalid layer"));
    }

    #[test]
    fn analyze_model_sums_layers() {
        let model = zoo::alexnet(1);
        let acc = Accelerator::builder(64).build();
        let report = analyze_model(&model, &Style::KCP.dataflow(), &acc).unwrap();
        assert_eq!(report.layers.len(), model.len());
        assert!(report.runtime() > 0.0);
        let sum: f64 = report.layers.iter().map(|l| l.runtime).sum();
        assert!((report.runtime() - sum).abs() < 1e-6);
    }

    #[test]
    fn adaptive_choice_is_at_least_as_good_as_fixed() {
        let model = zoo::alexnet(1);
        let acc = Accelerator::builder(64).build();
        // Adaptive: per layer, pick the best of the five styles by runtime.
        let adaptive = analyze_model_with(&model, &acc, |layer| {
            Style::ALL
                .iter()
                .map(|s| s.dataflow())
                .min_by(|a, b| {
                    let ra = analyze(layer, a, &acc)
                        .map(|r| r.runtime)
                        .unwrap_or(f64::MAX);
                    let rb = analyze(layer, b, &acc)
                        .map(|r| r.runtime)
                        .unwrap_or(f64::MAX);
                    ra.total_cmp(&rb)
                })
                .expect("non-empty styles")
        })
        .unwrap();
        for style in Style::ALL {
            let fixed = analyze_model(&model, &style.dataflow(), &acc).unwrap();
            assert!(
                adaptive.runtime() <= fixed.runtime() * 1.0001,
                "adaptive {} vs {style} {}",
                adaptive.runtime(),
                fixed.runtime()
            );
        }
    }

    #[test]
    fn cancellable_paths_match_plain_calls_and_honor_the_token() {
        let layer = Layer::new("c", Operator::conv2d(), LayerDims::square(1, 16, 16, 18, 3));
        let acc = Accelerator::builder(64).build();
        let df = Style::KCP.dataflow();
        let live = maestro_obs::CancelToken::detached();
        assert_eq!(
            analyze_cancellable(&layer, &df, &acc, &live).unwrap(),
            analyze(&layer, &df, &acc).unwrap()
        );
        let model = zoo::alexnet(1);
        assert_eq!(
            analyze_model_cancellable(&model, &df, &acc, &live).unwrap(),
            analyze_model(&model, &df, &acc).unwrap()
        );
        let tripped = maestro_obs::CancelToken::detached();
        tripped.cancel();
        assert_eq!(
            analyze_cancellable(&layer, &df, &acc, &tripped).unwrap_err(),
            AnalysisError::Cancelled
        );
        assert_eq!(
            analyze_model_cancellable(&model, &df, &acc, &tripped).unwrap_err(),
            AnalysisError::Cancelled
        );
    }

    #[test]
    fn utilization_is_a_fraction() {
        let layer = Layer::new("c", Operator::conv2d(), LayerDims::square(1, 16, 16, 18, 3));
        let acc = Accelerator::builder(64).build();
        for style in Style::ALL {
            let r = analyze(&layer, &style.dataflow(), &acc).unwrap();
            assert!(
                (0.0..=1.0).contains(&r.utilization),
                "{style}: {}",
                r.utilization
            );
        }
    }
}

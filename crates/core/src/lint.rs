//! Dataflow lints: structural quality feedback on a schedule.
//!
//! The cost model happily evaluates *legal but wasteful* dataflows — ones
//! that recompute work, skip data, or leave PEs idle. These lints surface
//! such issues the way the released MAESTRO tool warns about mapping
//! problems, and the way an architect reviews a candidate schedule before
//! trusting its numbers.

use crate::level::LevelCtx;
use maestro_dnn::{Dim, Layer};
use maestro_hw::Accelerator;
use maestro_ir::{resolve, Dataflow, ResolveError};
use serde::{Deserialize, Serialize};
use std::fmt;

/// One schedule-quality finding.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Lint {
    /// Consecutive chunks of a dimension overlap on a non-window
    /// dimension: the overlapped work is *recomputed* every trip.
    RedundantRecompute {
        /// Cluster level.
        level: usize,
        /// Offending dimension.
        dim: Dim,
        /// Chunk size (view coordinates).
        chunk: u64,
        /// Advance per trip.
        step: u64,
    },
    /// Chunks skip positions (`step > chunk`): part of the problem is
    /// never computed.
    CoverageGap {
        /// Cluster level.
        level: usize,
        /// Offending dimension.
        dim: Dim,
        /// Chunk size.
        chunk: u64,
        /// Advance per trip.
        step: u64,
    },
    /// The cluster hierarchy does not cover all PEs.
    UnusedPes {
        /// PEs covered by the hierarchy.
        used: u64,
        /// PEs available.
        total: u64,
    },
    /// A level's spatial chunks cannot fill its units in any step.
    LowSpatialOccupancy {
        /// Cluster level.
        level: usize,
        /// Steady-state active units.
        active: u64,
        /// Units available.
        units: u64,
    },
    /// A multi-unit level has no spatial map: every unit replicates the
    /// same work.
    NoParallelism {
        /// Cluster level.
        level: usize,
        /// Units available.
        units: u64,
    },
    /// The per-PE L1 requirement exceeds the configured capacity.
    L1Overflow {
        /// Required elements.
        required: u64,
        /// Available elements.
        capacity: u64,
    },
    /// The L2 staging requirement exceeds the configured capacity.
    L2Overflow {
        /// Required elements.
        required: u64,
        /// Available elements.
        capacity: u64,
    },
}

impl fmt::Display for Lint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Lint::RedundantRecompute { level, dim, chunk, step } => write!(
                f,
                "level {level}: {dim} chunks of {chunk} advance by {step} — {} positions recomputed per trip",
                chunk - step
            ),
            Lint::CoverageGap { level, dim, chunk, step } => write!(
                f,
                "level {level}: {dim} chunks of {chunk} advance by {step} — {} positions skipped per trip",
                step - chunk
            ),
            Lint::UnusedPes { used, total } => {
                write!(f, "cluster hierarchy covers {used} of {total} PEs")
            }
            Lint::LowSpatialOccupancy { level, active, units } => write!(
                f,
                "level {level}: at most {active} of {units} units ever active"
            ),
            Lint::NoParallelism { level, units } => write!(
                f,
                "level {level}: no spatial map — {units} units replicate the same work"
            ),
            Lint::L1Overflow { required, capacity } => write!(
                f,
                "per-PE L1 needs {required} elements but only {capacity} fit"
            ),
            Lint::L2Overflow { required, capacity } => write!(
                f,
                "L2 staging needs {required} elements but only {capacity} fit"
            ),
        }
    }
}

/// Lint `dataflow` for `layer` on `acc`.
///
/// # Errors
///
/// Fails when the dataflow cannot be resolved at all (structural errors
/// are reported by [`maestro_ir::resolve()`], not as lints).
pub fn lint(
    layer: &Layer,
    dataflow: &Dataflow,
    acc: &Accelerator,
) -> Result<Vec<Lint>, ResolveError> {
    let coupling = layer.coupling();
    let resolved = resolve(dataflow, layer, acc.num_pes)?;
    let mut lints = Vec::new();

    if resolved.used_pes < acc.num_pes {
        lints.push(Lint::UnusedPes {
            used: resolved.used_pes,
            total: acc.num_pes,
        });
    }

    for (li, level) in resolved.levels.iter().enumerate() {
        let ctx = LevelCtx::build(&resolved, level, &coupling);
        for v in ctx.views.iter() {
            if v.trips <= 1 {
                continue;
            }
            if v.step < v.chunk {
                // Window axes legitimately overlap through the receptive
                // field; in view (output) coordinates, overlap always
                // means recompute.
                lints.push(Lint::RedundantRecompute {
                    level: li,
                    dim: v.dim,
                    chunk: v.chunk,
                    step: v.step,
                });
            } else if v.step > v.chunk {
                lints.push(Lint::CoverageGap {
                    level: li,
                    dim: v.dim,
                    chunk: v.chunk,
                    step: v.step,
                });
            }
        }
        if ctx.num_units > 1 {
            if ctx.views.iter().all(|v| !v.spatial) {
                lints.push(Lint::NoParallelism {
                    level: li,
                    units: ctx.num_units,
                });
            } else if ctx.active_units < ctx.num_units {
                lints.push(Lint::LowSpatialOccupancy {
                    level: li,
                    active: ctx.active_units,
                    units: ctx.num_units,
                });
            }
        }
    }

    // Buffer requirements vs capacities.
    if let Ok(report) = crate::analysis::analyze(layer, dataflow, acc) {
        if report.l1_per_pe_elems > acc.l1_elements() {
            lints.push(Lint::L1Overflow {
                required: report.l1_per_pe_elems,
                capacity: acc.l1_elements(),
            });
        }
        if report.l2_staging_elems > acc.l2_elements() {
            lints.push(Lint::L2Overflow {
                required: report.l2_staging_elems,
                capacity: acc.l2_elements(),
            });
        }
    }

    Ok(lints)
}

#[cfg(test)]
mod tests {
    use super::*;
    use maestro_dnn::{LayerDims, Operator};
    use maestro_ir::{SizeExpr, Style};

    fn layer() -> Layer {
        Layer::new("c", Operator::conv2d(), LayerDims::square(1, 64, 64, 58, 3))
    }

    #[test]
    fn clean_styles_mostly_lint_free() {
        let acc = Accelerator::builder(256).build();
        let l = layer();
        for style in [Style::KCP, Style::XP] {
            let lints = lint(&l, &style.dataflow(), &acc).unwrap();
            assert!(
                !lints.iter().any(|l| matches!(
                    l,
                    Lint::RedundantRecompute { .. } | Lint::CoverageGap { .. }
                )),
                "{style}: {lints:?}"
            );
        }
    }

    #[test]
    fn recompute_is_flagged() {
        // K chunks of 4 advancing by 2: half the work recomputed.
        let df = Dataflow::builder("re").temporal(4, 2, Dim::K).build();
        let acc = Accelerator::builder(16).build();
        let lints = lint(&layer(), &df, &acc).unwrap();
        assert!(
            lints
                .iter()
                .any(|l| matches!(l, Lint::RedundantRecompute { dim: Dim::K, .. })),
            "{lints:?}"
        );
    }

    #[test]
    fn gaps_are_flagged() {
        let df = Dataflow::builder("gap").temporal(2, 4, Dim::C).build();
        let acc = Accelerator::builder(16).build();
        let lints = lint(&layer(), &df, &acc).unwrap();
        assert!(
            lints
                .iter()
                .any(|l| matches!(l, Lint::CoverageGap { dim: Dim::C, .. })),
            "{lints:?}"
        );
    }

    #[test]
    fn replicated_work_is_flagged() {
        let df = Dataflow::builder("seq").temporal(1, 1, Dim::K).build();
        let acc = Accelerator::builder(16).build();
        let lints = lint(&layer(), &df, &acc).unwrap();
        assert!(
            lints
                .iter()
                .any(|l| matches!(l, Lint::NoParallelism { .. })),
            "{lints:?}"
        );
    }

    #[test]
    fn pe_coverage_and_occupancy() {
        // YR-P on 256 PEs: 255 used (85 clusters of 3).
        let acc = Accelerator::builder(256).build();
        let lints = lint(&layer(), &Style::YRP.dataflow(), &acc).unwrap();
        assert!(
            lints.iter().any(|l| matches!(
                l,
                Lint::UnusedPes {
                    used: 255,
                    total: 256
                }
            )),
            "{lints:?}"
        );
        // C-P on a 64-channel layer over 256 PEs: only 64 active.
        let lints = lint(&layer(), &Style::CP.dataflow(), &acc).unwrap();
        assert!(
            lints
                .iter()
                .any(|l| matches!(l, Lint::LowSpatialOccupancy { active: 64, .. })),
            "{lints:?}"
        );
    }

    #[test]
    fn buffer_overflow_is_flagged() {
        let acc = Accelerator::builder(64).l1_bytes(8).l2_bytes(64).build();
        let df = Dataflow::builder("big")
            .temporal(SizeExpr::size(Dim::C), SizeExpr::size(Dim::C), Dim::C)
            .spatial(1, 1, Dim::K)
            .build();
        let lints = lint(&layer(), &df, &acc).unwrap();
        assert!(
            lints.iter().any(|l| matches!(l, Lint::L1Overflow { .. })),
            "{lints:?}"
        );
        assert!(
            lints.iter().any(|l| matches!(l, Lint::L2Overflow { .. })),
            "{lints:?}"
        );
    }

    #[test]
    fn lint_display() {
        let l = Lint::UnusedPes {
            used: 255,
            total: 256,
        };
        assert!(l.to_string().contains("255 of 256"));
    }
}

//! The performance and cost analysis engines (paper §4.2–§4.4, Figure 8).
//!
//! Each cluster level is analyzed by enumerating its odometer *transition
//! classes* — Init, plus "loop `j` advances (inner loops reset)" for every
//! temporal loop — in closed form: each class has an occurrence count and a
//! per-occurrence traffic/delay, so runtime and activity counts come out as
//! occurrence-weighted sums without walking every time step. Levels compose
//! recursively: the inner level's steady-state pass runtime is the outer
//! level's per-step compute delay (double-buffered), exactly the paper's
//! multi-cluster scheme (§4.4).

use crate::counts::ActivityCounts;
use crate::level::{LevelCtx, OutputSpatial};
use maestro_dnn::{Coupling, Density, Dim, TensorKind};
use maestro_hw::Accelerator;
use serde::{Deserialize, Serialize};

/// Analysis results for one cluster level (one pass of one instance),
/// inner levels included.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LevelResult {
    /// Pass runtime assuming the pipeline is already warm (used as the
    /// parent's per-step compute delay).
    pub runtime_steady: f64,
    /// Pass runtime including the initial fill (used for the first step).
    pub runtime_first: f64,
    /// Activity counts for one pass, inner levels included.
    pub counts: ActivityCounts,
    /// Dense MACs per pass.
    pub macs_dense: f64,
    /// Density-scaled MACs per pass.
    pub macs_effective: f64,
    /// Required L1 capacity per PE, in elements (double-buffered).
    pub l1_per_pe: u64,
    /// Data staged per steady step across this level's units, in elements
    /// (double-buffered) — the L2 requirement when this is the top level.
    pub staging: u64,
    /// Peak NoC bandwidth demand (elements/cycle) to avoid stalls.
    pub peak_bw: f64,
    /// Steady-state per-step compute delay at this level.
    pub compute_delay: f64,
    /// Replication fanout of (input, weight) data from this level's
    /// boundary down to PE L1s: data multicast at a level lands in every
    /// unit's L1, data distributed spatially splits. Used by the top level
    /// to charge L1 fills and NoC deliveries.
    pub fanout: [f64; 2],
    /// Output elements committed upstream across one pass of this level
    /// (in boundary elements, edge-coverage scaled). The parent uses this
    /// to spill partial sums its own output loops never see turn over.
    pub out_egress: f64,
    /// Output elements still resident in the units at the end of a pass —
    /// the part an outer reduction loop can revisit without a refetch.
    pub out_resident: f64,
}

/// Whether a tensor's footprint depends on a dimension's position (i.e.
/// resetting that dimension invalidates the tensor's resident data).
pub fn depends(coupling: &Coupling, kind: TensorKind, d: Dim) -> bool {
    use crate::footprint::CouplingExt;
    match kind {
        TensorKind::Output => {
            // Outputs are anchored to the Y/X windows; R/S iteration is
            // pure reduction.
            coupling.is_coupled(kind, d)
                && !(d.is_filter_window() && coupling.has_window_on_partner(d))
        }
        TensorKind::Input => {
            coupling.is_coupled(kind, d)
                || (d.is_filter_window() && coupling.has_window_on_partner(d))
        }
        TensorKind::Weight => coupling.is_coupled(kind, d),
    }
}

/// What happens to a dimension on a given odometer transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum DimState {
    /// The dimension's chunk advances by this many view-coordinate steps.
    Advance(u64),
    /// An inner loop: the dimension resets to its first chunk.
    Reset,
    /// Outer loop or unlooped: the chunk is unchanged.
    Hold,
}

fn dim_state(ctx: &LevelCtx, j: usize, d: Dim) -> DimState {
    if let Some((_, adv)) = ctx.loops[j].dims.iter().find(|(ld, _)| *ld == d) {
        DimState::Advance(*adv)
    } else if ctx.loops[j + 1..]
        .iter()
        .any(|l| l.dims.iter().any(|(ld, _)| *ld == d))
    {
        DimState::Reset
    } else {
        DimState::Hold
    }
}

/// New elements of `kind` needed (per unit) when loop `j` advances and all
/// inner loops reset.
///
/// When `own_only` is set (used for the output tensor's psum accounting),
/// inner-loop resets are treated as unchanged: the result then measures the
/// change caused by this loop's *own* dimensions, so pure-reduction loops
/// (whose advance revisits the same outputs) report zero and are classified
/// as reduction loops rather than output loops.
fn new_data(
    ctx: &LevelCtx,
    coupling: &Coupling,
    kind: TensorKind,
    j: usize,
    own_only: bool,
) -> f64 {
    use crate::footprint::CouplingExt;
    let fp = ctx.views.footprint(coupling, kind) as f64;
    let mut overlap = 1.0f64;
    let st = |d: Dim| {
        let s = dim_state(ctx, j, d);
        if own_only && s == DimState::Reset {
            DimState::Hold
        } else {
            s
        }
    };
    // A reset is a *negative* advance: the dim jumps from its last chunk
    // position back to the first, a span of adv × (trips − 1) view
    // positions per inner loop it appears in. Short sliding windows wrap
    // to a nearby position and keep most of their footprint resident.
    let reset_span = |d: Dim| -> u64 {
        ctx.loops[j + 1..]
            .iter()
            .flat_map(|l| l.dims.iter().map(move |(ld, a)| (*ld, *a, l.trips)))
            .filter(|(ld, _, _)| *ld == d)
            .map(|(_, a, trips)| a * trips.saturating_sub(1))
            .sum()
    };
    for d in maestro_dnn::ALL_DIMS {
        // The input's receptive field along Y/X depends on both halves of
        // the window pair; handle the pair on the Y/X visit and skip R/S.
        if kind == TensorKind::Input && d.is_input_spatial() && coupling.has_window_on(d) {
            let Some(p) = d.window_partner() else {
                continue;
            };
            let f = ctx.views.fp_factor(coupling, kind, d) as f64;
            let disp = |s: DimState, dd: Dim| -> i64 {
                match s {
                    DimState::Advance(a) => a as i64,
                    DimState::Reset => -(reset_span(dd) as i64),
                    DimState::Hold => 0,
                }
            };
            let shift =
                (ctx.views.strides.of(d) as i64 * disp(st(d), d) + disp(st(p), p)).unsigned_abs();
            overlap *= (f - shift as f64).max(0.0);
            continue;
        }
        if kind == TensorKind::Input && d.is_filter_window() && coupling.has_window_on_partner(d) {
            continue; // handled on the partner axis above
        }
        if !coupling.is_coupled(kind, d) {
            continue;
        }
        if kind == TensorKind::Output && d.is_filter_window() && coupling.has_window_on_partner(d) {
            continue; // pure reduction: outputs anchored to the Y/X window
        }
        match st(d) {
            DimState::Hold => overlap *= ctx.views.fp_factor(coupling, kind, d) as f64,
            DimState::Advance(a) => {
                overlap *= ctx.views.overlap_factor(coupling, kind, d, a) as f64;
            }
            DimState::Reset => {
                overlap *= ctx.views.overlap_factor(coupling, kind, d, reset_span(d)) as f64;
            }
        }
        if overlap == 0.0 {
            break;
        }
    }
    (fp - overlap).max(0.0)
}

/// Per-occurrence NoC transfer delay for `elements` through a
/// (bandwidth, latency) pipe.
fn transfer_bw(bandwidth: f64, avg_latency: f64, elements: f64) -> f64 {
    if elements <= 0.0 {
        0.0
    } else {
        (elements / bandwidth).ceil() + avg_latency
    }
}

/// One non-Init odometer transition class of a level: how often a loop
/// advances across one pass, and how many elements cross the level
/// boundary when it does. Pure data-volume quantities — NoC-independent —
/// computed once by [`analyze_level_static`] and re-priced for every NoC
/// configuration by [`level_perf`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Transition {
    /// Occurrences of this transition across one pass of the level.
    pub occurrences: f64,
    /// Elements entering the level per occurrence (operands + psum
    /// refetches).
    pub ingress: f64,
    /// Elements leaving the level per occurrence (outputs + psum spills).
    pub egress: f64,
}

/// The NoC-independent analysis of one cluster level (inner levels
/// included): reuse and buffer results — activity counts, MACs, capacity
/// requirements — plus the transition table that [`level_perf`] prices
/// under a concrete NoC pipe. Everything here is a pure function of
/// (layer, dataflow, PE count, reuse support, vector width); nothing
/// depends on NoC bandwidth or latency.
#[derive(Debug, Clone, PartialEq)]
pub struct LevelStatic {
    /// Per-loop transition classes, in loop order.
    pub transitions: Vec<Transition>,
    /// Elements fetched on the Init transition.
    pub init_ingress: f64,
    /// Resident output elements drained at the boundary after the last
    /// step (priced only at the top level).
    pub drain_elems: f64,
    /// Temporal edge-padding correction applied to the pass runtime.
    pub coverage_temporal: f64,
    /// Pipeline-fill latency of the reduction network (charged on Init).
    pub reduction_latency: f64,
    /// Pipeline-fill latency of the multicast network (charged on Init).
    pub multicast_latency: f64,
    /// Per-step compute delay at the leaf (vector-width-quantized MACs);
    /// zero above the leaf, where the inner level's steady pass runtime
    /// takes its place.
    pub leaf_delay: f64,
    /// Whether this is the innermost level.
    pub is_leaf: bool,
    /// Whether this is the outermost level.
    pub is_top: bool,
    /// Activity counts for one pass, inner levels included.
    pub counts: ActivityCounts,
    /// Dense MACs per pass.
    pub macs_dense: f64,
    /// Density-scaled MACs per pass.
    pub macs_effective: f64,
    /// Required L1 capacity per PE, in elements (double-buffered).
    pub l1_per_pe: u64,
    /// Data staged per steady step across this level's units, in elements.
    pub staging: u64,
    /// Replication fanout of (input, weight) data down to PE L1s.
    pub fanout: [f64; 2],
    /// Output elements committed upstream across one pass.
    pub out_egress: f64,
    /// Output elements still resident in the units at the end of a pass.
    pub out_resident: f64,
}

/// The NoC-dependent results of one level under a concrete (bandwidth,
/// latency) pipe, derived from a [`LevelStatic`] by [`level_perf`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LevelPerf {
    /// Pass runtime assuming the pipeline is already warm.
    pub runtime_steady: f64,
    /// Pass runtime including the initial fill.
    pub runtime_first: f64,
    /// Peak NoC bandwidth demand (elements/cycle) to avoid stalls.
    pub peak_bw: f64,
    /// Steady-state per-step compute delay at this level.
    pub compute_delay: f64,
}

/// The slice of an inner level's results its parent reads during *static*
/// analysis: the NoC-independent quantities that cross the level boundary.
/// Both [`LevelStatic`] and a full [`LevelResult`] can produce one.
#[derive(Debug, Clone, Copy)]
pub struct LevelCarry<'a> {
    /// Inner pass activity counts.
    pub counts: &'a ActivityCounts,
    /// Dense MACs per inner pass.
    pub macs_dense: f64,
    /// Density-scaled MACs per inner pass.
    pub macs_effective: f64,
    /// Inner L1 requirement, in elements.
    pub l1_per_pe: u64,
    /// Inner (input, weight) replication fanout.
    pub fanout: [f64; 2],
    /// Inner per-pass output egress, in boundary elements.
    pub out_egress: f64,
    /// Inner resident outputs at end of pass.
    pub out_resident: f64,
}

impl LevelStatic {
    /// The boundary view a parent level's static analysis reads.
    pub fn carry(&self) -> LevelCarry<'_> {
        LevelCarry {
            counts: &self.counts,
            macs_dense: self.macs_dense,
            macs_effective: self.macs_effective,
            l1_per_pe: self.l1_per_pe,
            fanout: self.fanout,
            out_egress: self.out_egress,
            out_resident: self.out_resident,
        }
    }
}

impl LevelResult {
    /// The boundary view a parent level's static analysis reads.
    pub fn carry(&self) -> LevelCarry<'_> {
        LevelCarry {
            counts: &self.counts,
            macs_dense: self.macs_dense,
            macs_effective: self.macs_effective,
            l1_per_pe: self.l1_per_pe,
            fanout: self.fanout,
            out_egress: self.out_egress,
            out_resident: self.out_resident,
        }
    }
}

/// Price a level's static analysis under a concrete NoC pipe.
///
/// This is the performance half of [`analyze_level`]: the f64 operations
/// run in exactly the order the fused analysis ran them, so composing
/// [`analyze_level_static`] with `level_perf` is bit-identical to the
/// original single pass — which is what lets a sweep re-price one static
/// analysis across a whole NoC-bandwidth grid.
pub fn level_perf(
    st: &LevelStatic,
    inner: Option<&LevelPerf>,
    bandwidth: u64,
    avg_latency: u64,
) -> LevelPerf {
    let bw = bandwidth as f64;
    let lat = avg_latency as f64;
    let (compute_delay, compute_first) = match inner {
        Some(p) => (p.runtime_steady, p.runtime_first + st.reduction_latency),
        None => (st.leaf_delay, st.leaf_delay + st.reduction_latency),
    };
    let mut runtime_accum = 0.0f64;
    let mut peak_bw = 0.0f64;
    let mut last_outstanding = compute_delay; // steady stand-in when loop-free
    for t in &st.transitions {
        let ingress_delay = transfer_bw(bw, lat, t.ingress);
        let egress_delay = transfer_bw(bw, lat, t.egress);
        let outstanding = compute_delay.max(ingress_delay).max(egress_delay);
        runtime_accum += t.occurrences * outstanding;
        last_outstanding = outstanding;
        let headroom = (compute_delay - lat).max(1.0);
        peak_bw = peak_bw.max((t.ingress + t.egress) / headroom);
    }
    // Init transition: everything fetched, nothing overlapped. The fill is
    // one stream from the L2 down through the level hierarchy, so its
    // serialization is charged once, at the top boundary; inner levels see
    // data already in flight and add only their network's pipeline-fill
    // latency.
    let init_transfer = if st.is_top {
        transfer_bw(bw, lat, st.init_ingress)
    } else {
        0.0
    };
    let init_delay = init_transfer + st.multicast_latency + compute_first;
    peak_bw = peak_bw.max(st.init_ingress / (compute_delay - lat).max(1.0));
    // Final drain of the last resident outputs, serialized at the L2
    // boundary after the last step (matches the simulator's epilogue).
    let final_drain = if st.is_top {
        (st.drain_elems / bw).ceil()
    } else {
        0.0
    };
    let runtime_first = init_delay + runtime_accum * st.coverage_temporal + final_drain;
    let runtime_steady = runtime_accum * st.coverage_temporal + last_outstanding;
    let peak_bw = peak_bw.max(inner.map(|p| p.peak_bw).unwrap_or(0.0));
    LevelPerf {
        runtime_steady,
        runtime_first,
        peak_bw,
        compute_delay,
    }
}

/// Analyze one level given the already-analyzed inner level (if any).
///
/// `is_top` marks the outermost level (its ingress/egress is charged to the
/// L2 scratchpad); the innermost level (when `inner` is `None`) charges L1
/// fills and per-MAC operand accesses.
///
/// This is the fused convenience form: it runs [`analyze_level_static`]
/// and prices the result with [`level_perf`] under `acc`'s NoC, which is
/// exactly what the staged pipeline does — so fused and staged analysis
/// are the same code path and cannot drift.
pub fn analyze_level(
    ctx: &LevelCtx,
    inner: Option<&LevelResult>,
    acc: &Accelerator,
    coupling: &Coupling,
    density: Density,
    is_top: bool,
) -> LevelResult {
    let st = analyze_level_static(
        ctx,
        inner.map(LevelResult::carry),
        acc.support,
        acc.vector_width,
        coupling,
        density,
        is_top,
    );
    let inner_perf = inner.map(|r| LevelPerf {
        runtime_steady: r.runtime_steady,
        runtime_first: r.runtime_first,
        peak_bw: r.peak_bw,
        compute_delay: r.compute_delay,
    });
    let pf = level_perf(
        &st,
        inner_perf.as_ref(),
        acc.noc.bandwidth,
        acc.noc.avg_latency,
    );
    LevelResult {
        runtime_steady: pf.runtime_steady,
        runtime_first: pf.runtime_first,
        counts: st.counts,
        macs_dense: st.macs_dense,
        macs_effective: st.macs_effective,
        l1_per_pe: st.l1_per_pe,
        staging: st.staging,
        peak_bw: pf.peak_bw,
        compute_delay: pf.compute_delay,
        fanout: st.fanout,
        out_egress: st.out_egress,
        out_resident: st.out_resident,
    }
}

/// The NoC-independent half of [`analyze_level`]: reuse/buffer analysis
/// plus the transition table. `support` and `vector_width` are the only
/// accelerator inputs this half reads — deliberately *not* the whole
/// [`Accelerator`], so the signature itself proves the result cannot
/// depend on the NoC configuration.
#[allow(clippy::too_many_lines)]
pub fn analyze_level_static(
    ctx: &LevelCtx,
    inner: Option<LevelCarry<'_>>,
    support: maestro_hw::ReuseSupport,
    vector_width: u64,
    coupling: &Coupling,
    density: Density,
    is_top: bool,
) -> LevelStatic {
    let is_leaf = inner.is_none();
    let active = ctx.active_units;
    let activef = active as f64;

    // Footprints per unit per step.
    let fp = |k: TensorKind| ctx.views.footprint(coupling, k) as f64;
    let fp_in = fp(TensorKind::Input);
    let fp_w = fp(TensorKind::Weight);
    let fp_out = fp(TensorKind::Output);

    // Traffic multipliers across units.
    let operand_mult = |k: TensorKind| -> f64 {
        if ctx.varies_spatially(coupling, k) {
            match support.multicast {
                maestro_hw::SpatialMulticast::None => activef,
                _ => activef * ctx.spatial_sharing_ratio(coupling, k),
            }
        } else {
            support.multicast.upstream_reads(active) as f64
        }
    };
    let in_mult = operand_mult(TensorKind::Input);
    let w_mult = operand_mult(TensorKind::Weight);
    let out_mult = match ctx.output_spatial {
        OutputSpatial::Varies => activef,
        OutputSpatial::Reduced => support.reduction.upstream_writes(active) as f64,
        OutputSpatial::NotParallel => 1.0,
    };
    let d_in = density.input;
    let d_w = density.weight;
    let d_out = density.output;

    // Per-step compute delay. Multicast/reduction network latencies are
    // pipeline-fill costs: they delay the first result, not the steady
    // state, so they are charged on the Init transition only.
    let reduction_latency = if ctx.output_spatial == OutputSpatial::Reduced {
        support.reduction.extra_latency(active) as f64
    } else {
        0.0
    };
    let multicast_latency = support.multicast.extra_latency(active) as f64;
    let leaf_delay = if is_leaf {
        let macs = ctx.macs_per_unit_step() as f64 * density.mac_fraction();
        (macs / vector_width as f64).ceil().max(1.0)
    } else {
        0.0
    };

    // Coverage corrects for edge padding: each dimension's chunk grid
    // covers `trips × chunk ≥ total` positions, but only `total` carry
    // real work. Per-step compute and traffic are both roughly
    // proportional to the chunk-size product, so scaling the
    // occurrence-weighted sums by the coverage ratio reproduces the exact
    // totals (and makes the multi-level MAC aggregate exact: inner
    // extents are the outer level's steady chunks, so products telescope).
    let coverage: f64 = ctx
        .views
        .iter()
        .map(|v| v.total as f64 / (v.trips as f64 * v.chunk as f64))
        .product();
    // Runtime only shrinks with *temporal* edge padding: a spatial edge
    // chunk runs on fewer/smaller units in parallel, taking the same time.
    let coverage_temporal: f64 = ctx
        .views
        .iter()
        .filter(|v| !v.spatial)
        .map(|v| v.total as f64 / (v.trips as f64 * v.chunk as f64))
        .product();
    // Traffic shrinks only along dimensions the tensor's footprint actually
    // depends on: a K edge chunk moves fewer weights and outputs but the
    // same inputs.
    let coverage_of = |kind: TensorKind| -> f64 {
        ctx.views
            .iter()
            .filter(|v| depends(coupling, kind, v.dim))
            .map(|v| v.total as f64 / (v.trips as f64 * v.chunk as f64))
            .product()
    };
    let cov_in = coverage_of(TensorKind::Input);
    let cov_w = coverage_of(TensorKind::Weight);
    let cov_out = coverage_of(TensorKind::Output);

    // Transition classes.
    let mut counts = ActivityCounts::new();
    let mut transitions = Vec::with_capacity(ctx.loops.len());
    // Per-unit ingress totals for one pass, per tensor (for L1 fills).
    let mut per_unit_in = fp_in;
    let mut per_unit_w = fp_w;
    // Per-unit egress totals (for L1 drains).
    let mut per_unit_out = fp_out; // final flush of resident outputs
                                   // Aggregated L2/noc traffic for one pass.
    let mut l2_in = fp_in * in_mult * d_in;
    let mut l2_w = fp_w * w_mult * d_w;
    let mut final_write = fp_out * out_mult * d_out; // completed outputs
    let mut spill_write = 0.0f64; // partial-sum spills (always hit L2)
    let mut spill_read = 0.0f64; // partial-sum refetches

    let mut outer_cycles = 1.0f64; // Π of trips of loops outer than j
    let mut outer_red = 1.0f64; // Π of trips of reduction loops outer than j
    for (j, l) in ctx.loops.iter().enumerate() {
        let occurrences = (l.trips - 1) as f64 * outer_cycles;
        let new_in = new_data(ctx, coupling, TensorKind::Input, j, false);
        let new_w = new_data(ctx, coupling, TensorKind::Weight, j, false);
        let out_new = new_data(ctx, coupling, TensorKind::Output, j, true);
        let is_output_loop = out_new > 0.0;

        let mut ingress = new_in * in_mult * d_in + new_w * w_mult * d_w;
        let mut egress = 0.0f64;
        if is_output_loop {
            let moved = out_new * out_mult * d_out;
            if outer_red > 1.0 {
                // Partial sums spill upstream and are re-fetched on every
                // revisit (all outer-reduction iterations but the first).
                let refetch = moved * (outer_red - 1.0) / outer_red;
                ingress += refetch;
                egress += moved;
                spill_write += moved * occurrences;
                spill_read += refetch * occurrences;
            } else {
                egress += moved;
                final_write += moved * occurrences;
            }
            per_unit_out += out_new * occurrences;
        }

        transitions.push(Transition {
            occurrences,
            ingress,
            egress,
        });

        per_unit_in += new_in * occurrences;
        per_unit_w += new_w * occurrences;
        l2_in += new_in * in_mult * d_in * occurrences;
        l2_w += new_w * w_mult * d_w * occurrences;

        outer_cycles *= l.trips as f64;
        if !is_output_loop
            && l.dims
                .iter()
                .any(|(d, _)| coupling.reduction.contains(*d) || d.is_filter_window())
        {
            // A reduction revisit recomputes the same outputs. This level's
            // output loops see no turnover, but outputs the levels *below*
            // could not keep resident (folded through the PEs mid-pass)
            // were already committed upstream as partials: each revisit
            // fetches them back, replicated across this level's units. The
            // matching writes are already part of the commit stream below.
            if let Some(r) = inner {
                let nonresident = (r.out_egress - r.out_resident).max(0.0);
                spill_read += nonresident * out_mult * occurrences;
            }
            outer_red *= l.trips as f64;
        }
    }

    // Init-transition fetch volume; [`level_perf`] prices it (and the
    // final output drain) under the concrete NoC.
    let init_ingress = fp_in * in_mult * d_in + fp_w * w_mult * d_w;

    // ---- Activity counts ----
    let passes_per_step =
        ctx.total_steps as f64 * ctx.num_units as f64 * ctx.utilization * coverage;
    let macs_dense;
    let macs_effective;
    if let Some(r) = inner {
        counts.add_scaled(r.counts, passes_per_step);
        macs_dense = r.macs_dense * passes_per_step;
        macs_effective = r.macs_effective * passes_per_step;
    } else {
        macs_dense = ctx.macs_per_unit_step() as f64 * passes_per_step;
        macs_effective = macs_dense * density.mac_fraction();
        counts.macs = macs_effective;
        // Per-MAC operand and psum accesses at the PE register/L1 level.
        counts.l1_read[TensorKind::Input] += macs_effective;
        counts.l1_read[TensorKind::Weight] += macs_effective;
        counts.l1_read[TensorKind::Output] += macs_effective;
        counts.l1_write[TensorKind::Output] += macs_effective;
        // Output drains and their NoC traversals happen once per pass at
        // the PEs, whatever level commits them upstream. Per-unit totals
        // replicate by the *average* spatial occupancy: with folds the last
        // wrap runs fewer units, which `utilization` already measures.
        let avg_active = ctx.num_units as f64 * ctx.utilization;
        counts.l1_read[TensorKind::Output] += per_unit_out * d_out * avg_active * cov_out;
        counts.noc[TensorKind::Output] += (final_write + spill_write + spill_read) * cov_out;
    }
    // Replication fanout from this level's boundary to PE L1s: multicast
    // tensors land in every sub-unit's L1, distributed tensors split.
    let child_fanout = inner.map(|r| r.fanout).unwrap_or([1.0, 1.0]);
    let step_fanout = |k: TensorKind, below: f64| -> f64 {
        if ctx.varies_spatially(coupling, k) {
            below
        } else {
            activef * below
        }
    };
    let fanout = [
        step_fanout(TensorKind::Input, child_fanout[0]),
        step_fanout(TensorKind::Weight, child_fanout[1]),
    ];
    // When the inner level folds outputs through its units mid-pass it
    // cannot hold them resident: every pass streams its full egress across
    // this boundary (there is no intermediate output buffer between the
    // PE array and the L2). Otherwise outputs accumulate in place and only
    // this level's own turnover commits.
    let out_commit = match inner {
        Some(r) if r.out_egress > r.out_resident => {
            r.out_egress * out_mult * ctx.total_steps as f64
        }
        _ => final_write,
    };
    // Partial-sum spills always reach the L2, regardless of level.
    counts.l2_write[TensorKind::Output] += spill_write * cov_out;
    counts.l2_read[TensorKind::Output] += spill_read * cov_out;
    if is_top {
        // Operand fetches and completed-output commits are charged once,
        // at the boundary that actually touches the L2. L1 fills and their
        // NoC deliveries are the same stream, replicated by the multicast
        // fanout of the levels below (data held stationary by outer loops
        // is *not* re-filled every inner pass).
        counts.l2_read[TensorKind::Input] += l2_in * cov_in;
        counts.l2_read[TensorKind::Weight] += l2_w * cov_w;
        counts.l2_write[TensorKind::Output] += out_commit * cov_out;
        let avg_active = ctx.num_units as f64 * ctx.utilization;
        let fill_in = per_unit_in * d_in * avg_active * child_fanout[0] * cov_in;
        let fill_w = per_unit_w * d_w * avg_active * child_fanout[1] * cov_w;
        counts.l1_write[TensorKind::Input] += fill_in;
        counts.l1_write[TensorKind::Weight] += fill_w;
        counts.noc[TensorKind::Input] += fill_in;
        counts.noc[TensorKind::Weight] += fill_w;
    }

    // Buffer requirements.
    let l1_per_pe = if is_leaf {
        2 * (fp_in as u64 + fp_w as u64) + 2 * fp_out as u64
    } else {
        inner.map(|r| r.l1_per_pe).unwrap_or(0)
    };
    let out_staged = match ctx.output_spatial {
        OutputSpatial::Varies => fp_out * activef,
        _ => fp_out,
    };
    let staging = (2.0
        * (fp_in * activef * ctx.spatial_sharing_ratio(coupling, TensorKind::Input)
            + fp_w * activef * ctx.spatial_sharing_ratio(coupling, TensorKind::Weight)
            + out_staged)) as u64;

    LevelStatic {
        transitions,
        init_ingress,
        drain_elems: fp_out * out_mult * d_out,
        coverage_temporal,
        reduction_latency,
        multicast_latency,
        leaf_delay,
        is_leaf,
        is_top,
        counts,
        macs_dense,
        macs_effective,
        l1_per_pe,
        staging,
        fanout,
        out_egress: out_commit * cov_out,
        out_resident: inner
            .map(|r| r.out_resident)
            .unwrap_or(fp_out * out_mult * d_out),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use maestro_dnn::{Layer, LayerDims, Operator};
    use maestro_ir::{resolve, Style};

    fn analyze_layer(layer: &Layer, style: Style, acc: &Accelerator) -> LevelResult {
        let r = resolve(&style.dataflow(), layer, acc.num_pes).unwrap();
        let coupling = layer.coupling();
        let ctxs: Vec<LevelCtx> = r
            .levels
            .iter()
            .map(|l| LevelCtx::build(&r, l, &coupling))
            .collect();
        let mut result: Option<LevelResult> = None;
        for (i, ctx) in ctxs.iter().enumerate().rev() {
            result = Some(analyze_level(
                ctx,
                result.as_ref(),
                acc,
                &coupling,
                layer.density,
                i == 0,
            ));
        }
        result.expect("at least one level")
    }

    fn small_conv() -> Layer {
        Layer::new("c", Operator::conv2d(), LayerDims::square(1, 16, 16, 18, 3))
    }

    #[test]
    fn mac_counts_match_layer_for_all_styles() {
        let layer = small_conv();
        let acc = Accelerator::builder(64).build();
        let exact = layer.total_macs() as f64;
        for style in Style::ALL {
            let r = analyze_layer(&layer, style, &acc);
            let ratio = r.macs_dense / exact;
            assert!(
                (0.99..1.4).contains(&ratio),
                "{style}: {} vs {exact}",
                r.macs_dense
            );
        }
    }

    #[test]
    fn runtime_respects_compute_roofline() {
        let layer = small_conv();
        let acc = Accelerator::builder(64).build();
        for style in Style::ALL {
            let r = analyze_layer(&layer, style, &acc);
            let roofline = layer.total_macs() as f64 / acc.peak_macs_per_cycle() as f64;
            assert!(
                r.runtime_first >= roofline * 0.9,
                "{style}: runtime {} below roofline {roofline}",
                r.runtime_first
            );
        }
    }

    #[test]
    fn l2_reads_cover_each_tensor_at_least_once() {
        let layer = small_conv();
        let acc = Accelerator::builder(64).build();
        for style in Style::ALL {
            let r = analyze_layer(&layer, style, &acc);
            let inputs = layer.tensor_elements(TensorKind::Input) as f64;
            let weights = layer.tensor_elements(TensorKind::Weight) as f64;
            let outputs = layer.tensor_elements(TensorKind::Output) as f64;
            assert!(
                r.counts.l2_read[TensorKind::Input] >= inputs * 0.9,
                "{style}: input reads {} < {inputs}",
                r.counts.l2_read[TensorKind::Input]
            );
            assert!(
                r.counts.l2_read[TensorKind::Weight] >= weights * 0.9,
                "{style}: weight reads {} < {weights}",
                r.counts.l2_read[TensorKind::Weight]
            );
            assert!(
                r.counts.l2_write[TensorKind::Output] >= outputs * 0.9,
                "{style}: output writes {} < {outputs}",
                r.counts.l2_write[TensorKind::Output]
            );
        }
    }

    #[test]
    fn weight_stationary_reads_weights_close_to_once() {
        // KC-P holds weights stationary across the Y/X sweep: weight L2
        // reads should be near the tensor size (x C-loop revisits = 1 here).
        let layer = small_conv();
        let acc = Accelerator::builder(64).build();
        let r = analyze_layer(&layer, Style::KCP, &acc);
        let weights = layer.tensor_elements(TensorKind::Weight) as f64;
        let reads = r.counts.l2_read[TensorKind::Weight];
        assert!(
            reads <= weights * 1.5,
            "KC-P weight reads {reads} should be ~{weights}"
        );
    }

    #[test]
    fn no_local_reuse_dataflow_reads_inputs_many_times() {
        // C-P refetches activations for every output channel.
        let layer = small_conv();
        let acc = Accelerator::builder(64).build();
        let cp = analyze_layer(&layer, Style::CP, &acc);
        let inputs = layer.tensor_elements(TensorKind::Input) as f64;
        assert!(
            cp.counts.l2_read[TensorKind::Input] > inputs * 4.0,
            "C-P input reads {} should be many times {inputs}",
            cp.counts.l2_read[TensorKind::Input]
        );
    }

    #[test]
    fn psum_spills_appear_when_channels_exceed_cluster() {
        // KC-P with C=128 > 64: the C loop is outer reduction => spills.
        let layer = Layer::new(
            "deep",
            Operator::conv2d(),
            LayerDims::square(1, 16, 128, 10, 3),
        );
        let acc = Accelerator::builder(256).build();
        let r = analyze_layer(&layer, Style::KCP, &acc);
        let outputs = layer.tensor_elements(TensorKind::Output) as f64;
        assert!(
            r.counts.l2_write[TensorKind::Output] > outputs * 1.5,
            "expected psum spill traffic, got {}",
            r.counts.l2_write[TensorKind::Output]
        );
        assert!(r.counts.l2_read[TensorKind::Output] > 0.0);
    }

    #[test]
    fn removing_multicast_inflates_l2_reads() {
        let layer = small_conv();
        let full = Accelerator::builder(64).build();
        let none = Accelerator::builder(64)
            .support(maestro_hw::ReuseSupport::none())
            .build();
        // X-P multicasts weights to all columns.
        let a = analyze_layer(&layer, Style::XP, &full);
        let b = analyze_layer(&layer, Style::XP, &none);
        assert!(
            b.counts.l2_read[TensorKind::Weight] > a.counts.l2_read[TensorKind::Weight] * 4.0,
            "no-multicast should massively inflate weight reads: {} vs {}",
            b.counts.l2_read[TensorKind::Weight],
            a.counts.l2_read[TensorKind::Weight]
        );
    }

    #[test]
    fn sparsity_scales_compute_and_traffic() {
        let mut layer = small_conv();
        let acc = Accelerator::builder(64).build();
        let dense = analyze_layer(&layer, Style::KCP, &acc);
        layer.density = maestro_dnn::Density {
            input: 0.5,
            weight: 0.5,
            output: 1.0,
        };
        let sparse = analyze_layer(&layer, Style::KCP, &acc);
        assert!((sparse.macs_effective / dense.macs_effective - 0.25).abs() < 0.01);
        assert!(
            sparse.counts.l2_read[TensorKind::Input]
                < dense.counts.l2_read[TensorKind::Input] * 0.6
        );
    }

    #[test]
    fn buffer_requirements_are_positive_and_bounded() {
        let layer = small_conv();
        let acc = Accelerator::builder(64).build();
        for style in Style::ALL {
            let r = analyze_layer(&layer, style, &acc);
            assert!(r.l1_per_pe > 0, "{style}");
            assert!(r.staging > 0, "{style}");
            assert!(r.peak_bw > 0.0, "{style}");
            // L1 must not exceed the whole problem.
            let total: u64 = TensorKind::ALL
                .iter()
                .map(|&k| layer.tensor_elements(k))
                .sum();
            assert!(r.l1_per_pe <= 2 * total, "{style}: {}", r.l1_per_pe);
        }
    }
}

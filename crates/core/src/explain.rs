//! Human-readable reuse explanations of a dataflow (the prose of the
//! paper's Figure 5 and §3.3, generated automatically).
//!
//! For each cluster level, the explanation lists which tensors are
//! spatially multicast or reduced across the level's units, which are
//! temporally stationary across the innermost loop, and which enjoy
//! partial (halo) reuse — the structured reasoning the paper argues the
//! data-centric representation enables.

use crate::engine::depends;
use crate::level::{LevelCtx, OutputSpatial};
use maestro_dnn::{Coupling, Layer, TensorKind};
use maestro_hw::Accelerator;
use maestro_ir::{resolve, Dataflow, ResolveError};
use serde::{Deserialize, Serialize};
use std::fmt;

/// One reuse observation at one cluster level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Observation {
    /// The tensor is identical across the level's units.
    SpatialMulticast(TensorKind),
    /// Adjacent units' footprints overlap (halo) without being identical.
    SpatialHalo(TensorKind),
    /// Units contribute partial sums to shared outputs.
    SpatialReduction,
    /// The tensor is unchanged across the innermost temporal loop
    /// (stationary / temporally multicast).
    TemporalStationary(TensorKind),
    /// Outputs accumulate in place across the innermost temporal loop.
    TemporalReduction,
    /// Consecutive steps' footprints overlap partially (window halo).
    TemporalHalo(TensorKind),
}

impl fmt::Display for Observation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Observation::SpatialMulticast(k) => write!(f, "spatial multicast of {k}s"),
            Observation::SpatialHalo(k) => write!(f, "spatial halo sharing of {k}s"),
            Observation::SpatialReduction => write!(f, "spatial reduction of Outputs"),
            Observation::TemporalStationary(k) => {
                write!(f, "temporal multicast of {k}s ({k}-stationary)")
            }
            Observation::TemporalReduction => {
                write!(f, "temporal reduction of Outputs (output-stationary)")
            }
            Observation::TemporalHalo(k) => write!(f, "partial temporal reuse of {k}s (halo)"),
        }
    }
}

/// The explanation of one cluster level.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LevelExplanation {
    /// Level index (0 = outermost).
    pub level: usize,
    /// Sub-units of the level.
    pub units: u64,
    /// Observations, in presentation order.
    pub observations: Vec<Observation>,
}

/// A full dataflow explanation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Explanation {
    /// Dataflow name.
    pub dataflow: String,
    /// Per-level findings.
    pub levels: Vec<LevelExplanation>,
}

impl Explanation {
    /// `true` if any level exhibits the observation.
    pub fn has(&self, obs: Observation) -> bool {
        self.levels.iter().any(|l| l.observations.contains(&obs))
    }
}

impl fmt::Display for Explanation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}:", self.dataflow)?;
        for l in &self.levels {
            writeln!(f, "  level {} ({} units):", l.level, l.units)?;
            for o in &l.observations {
                writeln!(f, "    - {o}")?;
            }
        }
        Ok(())
    }
}

/// Explain the reuse behavior of `dataflow` on `layer` over `acc`.
///
/// # Errors
///
/// Fails when the dataflow cannot be resolved for this layer/PE count.
pub fn explain(
    layer: &Layer,
    dataflow: &Dataflow,
    acc: &Accelerator,
) -> Result<Explanation, ResolveError> {
    let coupling = layer.coupling();
    let resolved = resolve(dataflow, layer, acc.num_pes)?;
    let mut levels = Vec::new();
    for (li, level) in resolved.levels.iter().enumerate() {
        let ctx = LevelCtx::build(&resolved, level, &coupling);
        levels.push(LevelExplanation {
            level: li,
            units: ctx.num_units,
            observations: observe(&ctx, &coupling),
        });
    }
    Ok(Explanation {
        dataflow: dataflow.name().to_string(),
        levels,
    })
}

fn observe(ctx: &LevelCtx, coupling: &Coupling) -> Vec<Observation> {
    let mut out = Vec::new();
    // Spatial reuse.
    if ctx.active_units > 1 {
        for k in [TensorKind::Input, TensorKind::Weight] {
            if !ctx.varies_spatially(coupling, k) {
                out.push(Observation::SpatialMulticast(k));
            } else if ctx.spatial_sharing_ratio(coupling, k) < 0.999 {
                out.push(Observation::SpatialHalo(k));
            }
        }
        if ctx.output_spatial == OutputSpatial::Reduced {
            out.push(Observation::SpatialReduction);
        }
    }
    // Temporal reuse across the innermost loop.
    if let Some(innermost) = ctx.loops.last() {
        let changed: Vec<_> = innermost.dims.iter().map(|(d, _)| *d).collect();
        let stationary = |k: TensorKind| changed.iter().all(|&d| !depends(coupling, k, d));
        for k in [TensorKind::Input, TensorKind::Weight] {
            if stationary(k) {
                out.push(Observation::TemporalStationary(k));
            } else {
                // Partial overlap across consecutive steps?
                let partial = changed.iter().any(|&d| {
                    let adv = innermost
                        .dims
                        .iter()
                        .find(|(ld, _)| *ld == d)
                        .map(|(_, a)| *a)
                        .unwrap_or(1);
                    let f = ctx.views.fp_factor(coupling, k, d);
                    let ov = ctx.views.overlap_factor(coupling, k, d, adv);
                    ov > 0 && ov < f
                });
                if partial {
                    out.push(Observation::TemporalHalo(k));
                }
            }
        }
        if stationary(TensorKind::Output) {
            out.push(Observation::TemporalReduction);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use maestro_dnn::{LayerDims, Operator};
    use maestro_ir::styles;

    fn conv1d() -> Layer {
        Layer::new(
            "1d",
            Operator::conv2d(),
            LayerDims {
                n: 1,
                k: 1,
                c: 1,
                y: 1,
                x: 8,
                r: 1,
                s: 3,
                stride_y: 1,
                stride_x: 1,
            },
        )
    }

    /// The Figure 5 playground claims, checked per dataflow.
    #[test]
    fn figure5_claims() {
        let layer = conv1d();
        let ex = |id: char, pes: u64| {
            explain(
                &layer,
                &styles::playground(id).expect("playground id"),
                &Accelerator::builder(pes).build(),
            )
            .expect("resolves")
        };
        // (A) output-stationary: spatial multicast of weights + temporal
        // reduction of outputs.
        let a = ex('A', 3);
        assert!(
            a.has(Observation::SpatialMulticast(TensorKind::Weight)),
            "{a}"
        );
        assert!(a.has(Observation::TemporalReduction), "{a}");
        // (B) weight-stationary: weights survive the X' sweep.
        let b = ex('B', 3);
        assert!(
            b.has(Observation::TemporalStationary(TensorKind::Weight)),
            "{b}"
        );
        // (C) collaborative output-stationary: spatial reduction.
        let c = ex('C', 3);
        assert!(c.has(Observation::SpatialReduction), "{c}");
        // (D) collaborative weight-stationary: spatial reduction + weights
        // stationary (S never advances temporally).
        let d = ex('D', 3);
        assert!(d.has(Observation::SpatialReduction), "{d}");
        assert!(
            d.has(Observation::TemporalStationary(TensorKind::Weight)),
            "{d}"
        );
        // (E) tiled collaborative WS: partial temporal reuse of inputs.
        let e = ex('E', 3);
        assert!(e.has(Observation::TemporalHalo(TensorKind::Input)), "{e}");
        assert!(e.has(Observation::SpatialReduction), "{e}");
        // (F) clustered: weights stationary, spatial reduction within
        // clusters.
        let f = ex('F', 6);
        assert!(f.has(Observation::SpatialReduction), "{f}");
    }

    #[test]
    fn row_stationary_explanation() {
        let layer = Layer::new("fig1", Operator::conv2d(), LayerDims::square(2, 4, 6, 8, 3));
        let acc = Accelerator::builder(6).build();
        let e = explain(&layer, &styles::figure6_row_stationary(), &acc).unwrap();
        assert_eq!(e.levels.len(), 2);
        // The inner (cluster) level spatially reduces outputs — the
        // row-stationary diagonal accumulation.
        assert!(e.levels[1]
            .observations
            .contains(&Observation::SpatialReduction));
        // Weights are stationary across the X sweep.
        assert!(
            e.has(Observation::TemporalStationary(TensorKind::Weight)),
            "{e}"
        );
        let text = e.to_string();
        assert!(text.contains("spatial reduction"), "{text}");
    }

    #[test]
    fn observation_display() {
        assert_eq!(
            Observation::SpatialMulticast(TensorKind::Input).to_string(),
            "spatial multicast of Inputs"
        );
        assert_eq!(
            Observation::TemporalReduction.to_string(),
            "temporal reduction of Outputs (output-stationary)"
        );
    }
}

//! Per-cluster-level context: dimension views, the temporal loop odometer,
//! and spatial reuse classification (the Cluster + Reuse Analysis engines).

use crate::footprint::{num_trips, to_view_coords, CouplingExt, DimView, LevelViews, Strides};
use maestro_dnn::{Coupling, Dim, TensorKind};
use maestro_ir::{MapKind, Resolved, ResolvedLevel};
use serde::{Deserialize, Serialize};

/// One temporal loop of a level's odometer. Spatial maps whose chunks
/// exceed the unit count *fold* into a pseudo-temporal loop that advances
/// every spatially mapped dimension by `units × step` at once.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LoopNode {
    /// `(dim, advance-per-trip in view coordinates)` — one entry for
    /// temporal loops, all spatial dims for a fold loop.
    pub dims: Vec<(Dim, u64)>,
    /// Trip count (> 1 by construction).
    pub trips: u64,
    /// `true` when this is a spatial fold.
    pub spatial_fold: bool,
    /// Position in directive order (for outer/inner comparisons).
    pub pos: usize,
}

/// How the output tensor behaves across the units of a level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum OutputSpatial {
    /// Each unit produces distinct outputs.
    Varies,
    /// All units contribute partial sums to the same outputs — spatial
    /// reduction (paper Table 1's "Reduction" rows).
    Reduced,
    /// Only one unit is active (no spatial map at this level).
    NotParallel,
}

/// Fully analyzed context of one cluster level.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LevelCtx {
    /// Canonical per-dimension views.
    pub views: LevelViews,
    /// Temporal odometer, outermost first.
    pub loops: Vec<LoopNode>,
    /// Sub-units available at this level.
    pub num_units: u64,
    /// Units active in a steady step.
    pub active_units: u64,
    /// Average fraction of `num_units` doing useful work.
    pub utilization: f64,
    /// Total time steps of one pass (product of loop trips).
    pub total_steps: u64,
    /// Output behavior across units.
    pub output_spatial: OutputSpatial,
}

impl LevelCtx {
    /// Build the context for `level` of a resolved dataflow.
    pub fn build(resolved: &Resolved, level: &ResolvedLevel, coupling: &Coupling) -> Self {
        let strides = Strides {
            y: resolved.stride_y,
            x: resolved.stride_x,
        };
        // First pass: the R/S chunk sizes, needed to derive Y/X views.
        let mut filter_chunk = [1u64; 7];
        for m in &level.maps {
            if m.dim.is_filter_window() {
                filter_chunk[m.dim.index()] = m.size.min(level.dims.get(m.dim));
            }
        }
        // Build views in canonical dim order.
        let mut views: [DimView; 7] = maestro_dnn::ALL_DIMS.map(|d| DimView {
            dim: d,
            spatial: false,
            pos: 0,
            chunk: 1,
            step: 1,
            total: 1,
            trips: 1,
        });
        for (pos, m) in level.maps.iter().enumerate() {
            let d = m.dim;
            let filter = match d.window_partner() {
                Some(p) if d.is_input_spatial() => level.dims.get(p),
                _ => 1,
            };
            let (chunk, step, total) = to_view_coords(
                coupling,
                d,
                m.size,
                m.offset,
                level.dims.get(d),
                filter,
                strides.of(d),
            );
            views[d.index()] = DimView {
                dim: d,
                spatial: m.kind == MapKind::Spatial,
                pos,
                chunk,
                step,
                total,
                trips: num_trips(chunk, step, total),
            };
        }
        let views = LevelViews::new(views, strides);

        // Spatial folding.
        let num_units = level.num_units;
        let spatial: Vec<&DimView> = views.iter().filter(|v| v.spatial).collect();
        let max_chunks = spatial.iter().map(|v| v.trips).max().unwrap_or(0);
        let (folds, active_units, utilization, first_spatial_pos) =
            match spatial.iter().map(|v| v.pos).min() {
                None => (1, 1, 1.0 / num_units as f64, usize::MAX),
                Some(pos) => {
                    let folds = max_chunks.div_ceil(num_units);
                    let active = max_chunks.min(num_units);
                    let util = max_chunks as f64 / (folds * num_units) as f64;
                    (folds, active, util, pos)
                }
            };

        // Odometer: temporal loops in directive order, the spatial fold (if
        // any) at the first spatial map's position.
        let mut loops: Vec<LoopNode> = Vec::new();
        let mut ordered: Vec<&DimView> = views.iter().collect();
        ordered.sort_by_key(|v| v.pos);
        for v in ordered {
            if v.spatial {
                if v.pos == first_spatial_pos && folds > 1 {
                    let dims = views
                        .iter()
                        .filter(|s| s.spatial)
                        .map(|s| (s.dim, s.step * num_units))
                        .collect();
                    loops.push(LoopNode {
                        dims,
                        trips: folds,
                        spatial_fold: true,
                        pos: v.pos,
                    });
                }
            } else if v.trips > 1 {
                loops.push(LoopNode {
                    dims: vec![(v.dim, v.step)],
                    trips: v.trips,
                    spatial_fold: false,
                    pos: v.pos,
                });
            }
        }
        let total_steps = loops.iter().map(|l| l.trips).product();

        let output_spatial = classify_output_spatial(&views, coupling, active_units);

        LevelCtx {
            views,
            loops,
            num_units,
            active_units,
            utilization,
            total_steps,
            output_spatial,
        }
    }

    /// MACs one unit performs in one steady time step (dense).
    pub fn macs_per_unit_step(&self) -> u64 {
        let v = |d: Dim| self.views.view(d).chunk;
        v(Dim::N) * v(Dim::K) * v(Dim::C) * v(Dim::R) * v(Dim::Y) * v(Dim::S) * v(Dim::X)
    }

    /// `true` when tensor `kind` differs across units in a step
    /// (spatially distributed rather than multicast).
    pub fn varies_spatially(&self, coupling: &Coupling, kind: TensorKind) -> bool {
        match kind {
            TensorKind::Output => self.output_spatial == OutputSpatial::Varies,
            _ => self.views.iter().any(|v| {
                v.spatial
                    && (coupling.is_coupled(kind, v.dim)
                        || (kind == TensorKind::Input
                            && v.dim.is_filter_window()
                            && coupling.has_window_on_partner(v.dim)))
            }),
        }
    }

    /// Fraction of per-unit operand data that is *distinct* across the
    /// active units, `union / (units × per-unit)`, accounting for halo
    /// overlap between neighbours (≤ 1; 1 when chunks are disjoint).
    pub fn spatial_sharing_ratio(&self, coupling: &Coupling, kind: TensorKind) -> f64 {
        debug_assert!(kind.is_operand());
        let u = self.active_units;
        if u <= 1 {
            return 1.0;
        }
        let mut ratio = 1.0f64;
        for d in maestro_dnn::ALL_DIMS {
            let v = self.views.view(d);
            if !v.spatial {
                continue;
            }
            let (f, delta) =
                if kind == TensorKind::Input && d.is_input_spatial() && coupling.has_window_on(d) {
                    // Input windows shift by stride×step per unit; R/S spatial
                    // shifts are handled on their own axis below.
                    (
                        self.views.fp_factor(coupling, kind, d),
                        self.views.strides.of(d) * v.step,
                    )
                } else if kind == TensorKind::Input
                    && d.is_filter_window()
                    && coupling.has_window_on_partner(d)
                {
                    let Some(axis) = d.window_partner() else {
                        continue;
                    };
                    (self.views.fp_factor(coupling, kind, axis), v.step)
                } else if coupling.is_coupled(kind, d) {
                    (v.chunk, v.step)
                } else {
                    continue;
                };
            if delta >= f {
                continue; // disjoint chunks: no sharing on this axis
            }
            let union = f + (u - 1) * delta;
            ratio *= union as f64 / (u * f) as f64;
        }
        ratio
    }
}

/// Classify output behavior across units: categorical output dims
/// (N/K/C/no-window Y/X) vary when spatially mapped; window axes vary when
/// the net per-unit shift `stride·ΔY − ΔR` is nonzero (row-stationary's
/// co-mapped `Y`+`R` cancels to zero ⇒ spatial reduction).
fn classify_output_spatial(
    views: &LevelViews,
    coupling: &Coupling,
    active_units: u64,
) -> OutputSpatial {
    if active_units <= 1 {
        return OutputSpatial::NotParallel;
    }
    let mut varies = false;
    for d in maestro_dnn::ALL_DIMS {
        let v = views.view(d);
        if !v.spatial || !coupling.is_coupled(TensorKind::Output, d) {
            continue;
        }
        if d.is_input_spatial() && coupling.has_window_on(d) {
            let Some(partner) = d.window_partner() else {
                continue;
            };
            let pv = views.view(partner);
            let shift = v.step as i64 - if pv.spatial { pv.step as i64 } else { 0 };
            if shift != 0 {
                varies = true;
            }
        } else if d.is_filter_window() && coupling.has_window_on_partner(d) {
            // Handled on the partner axis: an R/S-only spatial map is pure
            // reduction (the complete-output window is anchored by Y/X).
        } else {
            varies = true;
        }
    }
    if varies {
        OutputSpatial::Varies
    } else {
        OutputSpatial::Reduced
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use maestro_dnn::{Layer, LayerDims, Operator};
    use maestro_ir::{resolve, Style};

    fn conv_layer() -> Layer {
        Layer::new(
            "c",
            Operator::conv2d(),
            LayerDims::square(1, 64, 64, 226, 3),
        )
    }

    fn build(style: Style, pes: u64) -> Vec<LevelCtx> {
        let layer = conv_layer();
        let r = resolve(&style.dataflow(), &layer, pes).unwrap();
        let coupling = layer.coupling();
        r.levels
            .iter()
            .map(|l| LevelCtx::build(&r, l, &coupling))
            .collect()
    }

    #[test]
    fn kcp_structure() {
        let ctx = build(Style::KCP, 256);
        assert_eq!(ctx.len(), 2);
        let top = &ctx[0];
        // K spatial: 64 chunks over 4 clusters => 16 folds.
        assert_eq!(top.num_units, 4);
        assert_eq!(top.active_units, 4);
        let fold = top.loops.iter().find(|l| l.spatial_fold).expect("K fold");
        assert_eq!(fold.trips, 16);
        // Y and X advance one output position at a time: 224 trips each.
        let y = top.views.view(Dim::Y);
        assert_eq!((y.chunk, y.step, y.total, y.trips), (1, 1, 224, 224));
        // C=64 fits one chunk: not a loop.
        assert_eq!(top.views.view(Dim::C).trips, 1);
        assert_eq!(top.total_steps, 16 * 224 * 224);
        // Outputs vary across clusters (distinct K).
        assert_eq!(top.output_spatial, OutputSpatial::Varies);

        let leaf = &ctx[1];
        assert_eq!(leaf.num_units, 64);
        assert_eq!(
            leaf.macs_per_unit_step(),
            9,
            "3x3 window, one pixel, one channel"
        );
        // C spatial within the cluster: outputs spatially reduced.
        assert_eq!(leaf.output_spatial, OutputSpatial::Reduced);
        assert_eq!(leaf.total_steps, 1);
    }

    #[test]
    fn yrp_inner_is_row_stationary_reduction() {
        let ctx = build(Style::YRP, 255);
        let leaf = &ctx[1];
        assert_eq!(leaf.num_units, 3);
        // Y and R co-spatial with equal steps: reduction, not variation.
        assert_eq!(leaf.output_spatial, OutputSpatial::Reduced);
        assert_eq!(
            leaf.macs_per_unit_step(),
            2 * 2 * 3,
            "K2*C2? no: K2,C2,S3 => 12"
        );
    }

    #[test]
    fn mac_totals_are_preserved() {
        let layer = conv_layer();
        let exact = layer.total_macs() as f64;
        for style in Style::ALL {
            let ctx = build(style, 256);
            // Π over levels of (steps × units × utilization) × leaf MACs.
            let mut total = ctx.last().expect("at least one level").macs_per_unit_step() as f64;
            for c in &ctx {
                total *= c.total_steps as f64 * c.num_units as f64 * c.utilization;
            }
            let ratio = total / exact;
            assert!(
                (0.99..1.35).contains(&ratio),
                "{style}: model {total} vs exact {exact} (ratio {ratio})"
            );
        }
    }

    #[test]
    fn input_varies_under_channel_partitioning() {
        let ctx = build(Style::CP, 256);
        let coupling = Coupling::conv2d();
        let top = &ctx[0];
        assert!(
            top.varies_spatially(&coupling, TensorKind::Input),
            "C spatial"
        );
        assert!(top.varies_spatially(&coupling, TensorKind::Weight));
        assert_eq!(
            top.output_spatial,
            OutputSpatial::Reduced,
            "C-P reduces over C"
        );
    }

    #[test]
    fn xp_halo_sharing() {
        let ctx = build(Style::XP, 256);
        let top = &ctx[0];
        let coupling = Coupling::conv2d();
        assert!(top.varies_spatially(&coupling, TensorKind::Input));
        // Adjacent units' input windows overlap by S-1 = 2 of 3 columns.
        let ratio = top.spatial_sharing_ratio(&coupling, TensorKind::Input);
        assert!(ratio < 0.5, "halo sharing should be strong: {ratio}");
        // Weights are multicast (not coupled to X).
        assert!(!top.varies_spatially(&coupling, TensorKind::Weight));
        // Each unit owns distinct output columns.
        assert_eq!(top.output_spatial, OutputSpatial::Varies);
    }

    #[test]
    fn no_spatial_map_means_one_active_unit() {
        let layer = conv_layer();
        let df = maestro_ir::Dataflow::builder("seq")
            .temporal(1, 1, Dim::K)
            .build();
        let r = resolve(&df, &layer, 16).unwrap();
        let ctx = LevelCtx::build(&r, &r.levels[0], &layer.coupling());
        assert_eq!(ctx.active_units, 1);
        assert_eq!(ctx.output_spatial, OutputSpatial::NotParallel);
        assert!(ctx.utilization < 0.1);
    }
}

//! Memoization in front of [`analyze`](crate::analyze).
//!
//! Design-space exploration re-analyzes the same layer *shape* many times:
//! networks repeat convolution shapes (VGG-16's conv3_2/conv3_3 are
//! identical, ResNet-50 repeats its bottleneck blocks), and a whole-model
//! sweep evaluates every mapping on every one of them at every hardware
//! point. The cost model is a pure function of (layer shape, dataflow,
//! accelerator), so those repeats can be served from a table.
//!
//! [`ShapeKey`] is the hashable identity of a layer as the cost model sees
//! it — dimensions, operator, and tensor densities, but *not* the name.
//! [`AnalysisCache`] pairs a key with a caller-supplied `tag` encoding
//! whatever dataflow/accelerator context the caller varies, and memoizes
//! both successful reports and analysis errors.

use crate::analysis::{analyze, AnalysisError};
use crate::report::LayerReport;
use maestro_dnn::{Layer, LayerDims, Operator};
use maestro_hw::Accelerator;
use maestro_ir::Dataflow;
use std::collections::HashMap;

/// The identity of a layer under the cost model: everything `analyze`
/// reads from a [`Layer`] except its name. Two layers with equal keys
/// produce equal reports for the same dataflow and accelerator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ShapeKey {
    dims: LayerDims,
    op: Operator,
    /// Tensor densities as raw bits (f64 has no `Hash`; bit-equality is
    /// exactly the equality the pure cost model needs).
    density_bits: [u64; 3],
}

impl ShapeKey {
    /// The key of `layer`, or `None` when the layer carries a custom
    /// coupling override (those are rare and not worth hashing — callers
    /// fall back to direct analysis).
    pub fn of(layer: &Layer) -> Option<ShapeKey> {
        if layer.coupling_override.is_some() {
            return None;
        }
        Some(ShapeKey {
            dims: layer.dims,
            op: layer.op,
            density_bits: [
                layer.density.input.to_bits(),
                layer.density.weight.to_bits(),
                layer.density.output.to_bits(),
            ],
        })
    }
}

/// A memo table in front of [`analyze`].
///
/// The cache is a plain single-threaded map: parallel explorers keep one
/// per worker (keys never cross shard boundaries there), which avoids any
/// locking and keeps results deterministic.
///
/// On drop, accumulated hit/miss/insert totals are flushed to the global
/// metrics registry (`maestro.cache.{hits,misses,inserts}`): one batched
/// atomic add per counter per cache lifetime, so the lookup hot path never
/// touches shared state.
#[derive(Debug, Default)]
pub struct AnalysisCache {
    map: HashMap<(ShapeKey, u64), Result<LayerReport, AnalysisError>>,
    hits: u64,
    misses: u64,
    inserts: u64,
}

/// `OnceLock`-cached handles for the cache counters: the registry lock is
/// taken once per process, not once per cache drop.
fn cache_counters() -> &'static [maestro_obs::Counter; 3] {
    static C: std::sync::OnceLock<[maestro_obs::Counter; 3]> = std::sync::OnceLock::new();
    C.get_or_init(|| {
        let r = maestro_obs::registry();
        [
            r.counter("maestro.cache.hits"),
            r.counter("maestro.cache.misses"),
            r.counter("maestro.cache.inserts"),
        ]
    })
}

impl Drop for AnalysisCache {
    fn drop(&mut self) {
        if self.hits == 0 && self.misses == 0 && self.inserts == 0 {
            return;
        }
        let [hits, misses, inserts] = cache_counters();
        hits.add(self.hits);
        misses.add(self.misses);
        inserts.add(self.inserts);
    }
}

impl AnalysisCache {
    /// An empty cache.
    pub fn new() -> Self {
        AnalysisCache::default()
    }

    /// Lookups served from the table.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookups that ran the cost model (including uncacheable layers).
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Entries added to the table (misses on cacheable layers).
    pub fn inserts(&self) -> u64 {
        self.inserts
    }

    /// [`analyze`] through the cache. `tag` must encode every varying
    /// input other than the layer shape — typically an index over
    /// (dataflow, accelerator configuration) pairs; reusing a tag across
    /// different dataflows or accelerators returns stale reports.
    ///
    /// # Errors
    ///
    /// Propagates (and memoizes) [`AnalysisError`] from the cost model.
    pub fn analyze(
        &mut self,
        layer: &Layer,
        dataflow: &Dataflow,
        acc: &Accelerator,
        tag: u64,
    ) -> Result<LayerReport, AnalysisError> {
        let Some(key) = ShapeKey::of(layer) else {
            self.misses += 1;
            return analyze(layer, dataflow, acc);
        };
        if let Some(cached) = self.map.get(&(key, tag)) {
            self.hits += 1;
            return cached.clone();
        }
        self.misses += 1;
        let result = analyze(layer, dataflow, acc);
        self.map.insert((key, tag), result.clone());
        self.inserts += 1;
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use maestro_dnn::{Density, Layer, LayerDims, Operator};
    use maestro_ir::Style;

    fn layer(name: &str) -> Layer {
        Layer::new(
            name,
            Operator::conv2d(),
            LayerDims::square(1, 32, 32, 34, 3),
        )
    }

    #[test]
    fn key_ignores_name_but_not_shape() {
        let a = ShapeKey::of(&layer("a")).unwrap();
        let b = ShapeKey::of(&layer("b")).unwrap();
        assert_eq!(a, b);
        let bigger = Layer::new("c", Operator::conv2d(), LayerDims::square(1, 64, 32, 34, 3));
        assert_ne!(a, ShapeKey::of(&bigger).unwrap());
    }

    #[test]
    fn key_distinguishes_density() {
        let dense = layer("d");
        let mut sparse = layer("d");
        sparse.density = Density {
            input: 0.5,
            weight: 1.0,
            output: 1.0,
        };
        assert_ne!(
            ShapeKey::of(&dense).unwrap(),
            ShapeKey::of(&sparse).unwrap()
        );
    }

    #[test]
    fn cache_hits_match_direct_analysis() {
        let acc = Accelerator::builder(64).build();
        let l = layer("x");
        let df = Style::KCP.dataflow();
        let direct = analyze(&l, &df, &acc).expect("analyzable");
        let mut cache = AnalysisCache::new();
        let first = cache.analyze(&l, &df, &acc, 0).expect("analyzable");
        let second = cache
            .analyze(&layer("renamed"), &df, &acc, 0)
            .expect("analyzable");
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.hits(), 1);
        assert_eq!(first, direct);
        assert_eq!(second, direct);
    }

    #[test]
    fn tags_separate_contexts() {
        let acc = Accelerator::builder(64).build();
        let l = layer("x");
        let df = Style::KCP.dataflow();
        let mut cache = AnalysisCache::new();
        let _ = cache.analyze(&l, &df, &acc, 0);
        let _ = cache.analyze(&l, &df, &acc, 1);
        assert_eq!(cache.misses(), 2);
        assert_eq!(cache.hits(), 0);
    }

    #[test]
    fn coupling_override_bypasses_cache() {
        let mut l = layer("x");
        l.coupling_override = Some(l.op.coupling());
        assert!(ShapeKey::of(&l).is_none());
    }
}

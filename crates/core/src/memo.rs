//! Memoization in front of [`analyze`](crate::analyze).
//!
//! Design-space exploration re-analyzes the same layer *shape* many times:
//! networks repeat convolution shapes (VGG-16's conv3_2/conv3_3 are
//! identical, ResNet-50 repeats its bottleneck blocks), and a whole-model
//! sweep evaluates every mapping on every one of them at every hardware
//! point. The cost model is a pure function of (layer shape, dataflow,
//! accelerator), so those repeats can be served from a table.
//!
//! [`ShapeKey`] is the hashable identity of a layer as the cost model sees
//! it — dimensions, operator, and tensor densities, but *not* the name.
//! [`AnalysisCache`] derives the rest of the key *internally* by
//! fingerprinting the (dataflow, accelerator) pair, so no caller mistake
//! can alias two different contexts onto one entry (the old caller-supplied
//! `tag: u64` contract silently returned stale reports when a tag was
//! reused across dataflows or accelerators). Both successful reports and
//! analysis errors are memoized, and both tiers are LRU-bounded so long
//! sweeps cannot grow memory without limit.
//!
//! The cache is two-tier:
//!
//! * a **report tier** keyed by (shape, full-context fingerprint) holding
//!   finished [`LayerReport`]s;
//! * a **stage tier** keyed by (shape, NoC-independent fingerprint)
//!   holding [`StagedAnalysis`] builds, shared across every NoC
//!   configuration of the same accelerator — this is what makes a sweep
//!   over NoC bandwidths run the expensive stages once
//!   ([`AnalysisCache::analyze_staged`]).

use crate::analysis::{analyze, analyze_cancellable, AnalysisError};
use crate::lru::Lru;
use crate::report::LayerReport;
use crate::stages::StagedAnalysis;
use maestro_dnn::{Layer, LayerDims, Operator};
use maestro_hw::Accelerator;
use maestro_ir::Dataflow;

/// Default per-tier LRU capacity: comfortably above any workload the repo
/// sweeps today (a whole-model sweep touches ~10³ distinct entries per
/// worker) while bounding a pathological sweep to a few tens of MB.
pub const DEFAULT_CACHE_CAP: usize = 4096;

/// The identity of a layer under the cost model: everything `analyze`
/// reads from a [`Layer`] except its name. Two layers with equal keys
/// produce equal reports for the same dataflow and accelerator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ShapeKey {
    dims: LayerDims,
    op: Operator,
    /// Tensor densities as raw bits (f64 has no `Hash`; bit-equality is
    /// exactly the equality the pure cost model needs).
    density_bits: [u64; 3],
}

impl ShapeKey {
    /// The key of `layer`, or `None` when the layer carries a custom
    /// coupling override (those are rare and not worth hashing — callers
    /// fall back to direct analysis).
    pub fn of(layer: &Layer) -> Option<ShapeKey> {
        if layer.coupling_override.is_some() {
            return None;
        }
        Some(ShapeKey {
            dims: layer.dims,
            op: layer.op,
            density_bits: [
                layer.density.input.to_bits(),
                layer.density.weight.to_bits(),
                layer.density.output.to_bits(),
            ],
        })
    }
}

/// Incremental FNV-1a over bytes, exposed as a [`std::hash::Hasher`] so
/// structured keys (`Dataflow`, `ReuseSupport`) hash field-by-field
/// through their `Hash` impls — no `Display`/`Debug` formatting in the
/// fingerprint path, which sweeps hit hundreds of times per work unit.
pub(crate) struct Fnv(u64);

impl Fnv {
    pub(crate) fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn bytes(&mut self, bytes: &[u8]) {
        // Word-at-a-time FNV-1a: one xor-multiply per 8 input bytes
        // instead of per byte. The fingerprint values never leave the
        // process (checkpoint fingerprints are derived separately), so
        // only dispersion matters, not any canonical FNV test vector.
        let mut h = self.0;
        let mut chunks = bytes.chunks_exact(8);
        for c in chunks.by_ref() {
            let w = u64::from_le_bytes([c[0], c[1], c[2], c[3], c[4], c[5], c[6], c[7]]);
            h ^= w;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            // Length-tagged tail so `"ab" + [0]` and `"ab"` stay distinct.
            let mut w = rest.len() as u64;
            for &b in rest {
                w = (w << 8) | u64::from(b);
            }
            h ^= w;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        self.0 = h;
    }

    fn u64(&mut self, v: u64) {
        // One full little-endian word: identical to `bytes(&v.to_le_bytes())`.
        self.word(v);
    }

    /// Absorb one 64-bit word (one xor-multiply round).
    #[inline]
    fn word(&mut self, w: u64) {
        self.0 = (self.0 ^ w).wrapping_mul(0x0000_0100_0000_01b3);
    }
}

impl std::hash::Hasher for Fnv {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        self.bytes(bytes);
    }

    // Fixed-width field writes from derived `Hash` impls absorb as one
    // word each, skipping the byte-slice machinery.

    fn write_u8(&mut self, v: u8) {
        self.word(u64::from(v));
    }

    fn write_u16(&mut self, v: u16) {
        self.word(u64::from(v));
    }

    fn write_u32(&mut self, v: u32) {
        self.word(u64::from(v));
    }

    fn write_u64(&mut self, v: u64) {
        self.word(v);
    }

    fn write_usize(&mut self, v: usize) {
        self.word(v as u64);
    }
}

/// Fingerprints of everything the cost model reads besides the layer
/// shape: `(static, full)` where `static` covers the NoC-independent
/// inputs (dataflow structure, PE count, vector width, reuse support, L2
/// capacity, precision, off-chip bandwidth) and `full` additionally covers
/// the NoC pipe. `static` is the stage-tier key; `full` the report-tier
/// key. Derived internally so no caller can alias two contexts.
fn context_fingerprints(dataflow: &Dataflow, acc: &Accelerator) -> (u64, u64) {
    use std::hash::Hash;
    let mut h = Fnv::new();
    // Structural hash: equal fingerprint inputs ⇔ equal (name, directive
    // list), the same equivalence the canonical text used to encode, at a
    // fraction of the formatting cost.
    dataflow.hash(&mut h);
    h.u64(acc.num_pes);
    h.u64(acc.vector_width);
    h.u64(acc.precision_bytes);
    h.u64(acc.l2_bytes);
    h.u64(acc.offchip_bandwidth);
    acc.support.hash(&mut h);
    let stat = h.0;
    h.u64(acc.noc.bandwidth);
    h.u64(acc.noc.avg_latency);
    (stat, h.0)
}

/// A cache context prepared once per (layer, dataflow, static accelerator
/// configuration) and reused across a sweep's NoC axis: the shape key and
/// the NoC-independent fingerprint state are computed up front, so each
/// per-NoC call hashes only the two NoC words
/// ([`AnalysisCache::analyze_staged_prepared`]).
///
/// The layer and dataflow are captured by reference, so a prepared
/// context can never be replayed against different model inputs — the
/// no-aliasing guarantee of the internal fingerprint survives the
/// amortization. The static accelerator fields are captured by value and
/// re-checked on every use; a mismatch silently falls back to the
/// unprepared (full-fingerprint) path rather than aliasing an entry.
#[derive(Debug, Clone, Copy)]
pub struct PreparedContext<'a> {
    layer: &'a Layer,
    dataflow: &'a Dataflow,
    key: Option<ShapeKey>,
    /// FNV state after absorbing the NoC-independent context.
    stat: u64,
    num_pes: u64,
    vector_width: u64,
    precision_bytes: u64,
    l2_bytes: u64,
    offchip_bandwidth: u64,
    support: maestro_hw::ReuseSupport,
}

impl PreparedContext<'_> {
    /// Whether `acc` matches the static configuration this context was
    /// prepared with (its NoC pipe is free to differ).
    fn statics_match(&self, acc: &Accelerator) -> bool {
        self.num_pes == acc.num_pes
            && self.vector_width == acc.vector_width
            && self.precision_bytes == acc.precision_bytes
            && self.l2_bytes == acc.l2_bytes
            && self.offchip_bandwidth == acc.offchip_bandwidth
            && self.support == acc.support
    }
}

/// A memo table in front of [`analyze`].
///
/// The cache is a plain single-threaded map: parallel explorers keep one
/// per worker (keys never cross shard boundaries there), which avoids any
/// locking and keeps results deterministic.
///
/// On drop, accumulated counters are flushed to the global metrics
/// registry (`maestro.cache.{hits,misses,inserts,evictions,stage_hits,
/// stage_misses}`): one batched atomic add per counter per cache lifetime,
/// so the lookup hot path never touches shared state.
#[derive(Debug)]
pub struct AnalysisCache {
    reports: Lru<(ShapeKey, u64), Result<LayerReport, AnalysisError>>,
    stages: Lru<(ShapeKey, u64), Result<StagedAnalysis, AnalysisError>>,
    hits: u64,
    misses: u64,
    inserts: u64,
    evictions: u64,
    stage_hits: u64,
    stage_misses: u64,
}

impl Default for AnalysisCache {
    fn default() -> Self {
        AnalysisCache::with_capacity(DEFAULT_CACHE_CAP)
    }
}

/// `OnceLock`-cached handles for the cache counters: the registry lock is
/// taken once per process, not once per cache drop.
fn cache_counters() -> &'static [maestro_obs::Counter; 6] {
    static C: std::sync::OnceLock<[maestro_obs::Counter; 6]> = std::sync::OnceLock::new();
    C.get_or_init(|| {
        let r = maestro_obs::registry();
        [
            r.counter("maestro.cache.hits"),
            r.counter("maestro.cache.misses"),
            r.counter("maestro.cache.inserts"),
            r.counter("maestro.cache.evictions"),
            r.counter("maestro.cache.stage_hits"),
            r.counter("maestro.cache.stage_misses"),
        ]
    })
}

impl Drop for AnalysisCache {
    fn drop(&mut self) {
        if self.hits == 0 && self.misses == 0 && self.inserts == 0 {
            return;
        }
        let [hits, misses, inserts, evictions, stage_hits, stage_misses] = cache_counters();
        hits.add(self.hits);
        misses.add(self.misses);
        inserts.add(self.inserts);
        evictions.add(self.evictions);
        stage_hits.add(self.stage_hits);
        stage_misses.add(self.stage_misses);
    }
}

impl AnalysisCache {
    /// An empty cache with the default per-tier capacity
    /// ([`DEFAULT_CACHE_CAP`]).
    pub fn new() -> Self {
        AnalysisCache::default()
    }

    /// An empty cache holding at most `cap` entries per tier (`0` =
    /// unbounded).
    pub fn with_capacity(cap: usize) -> Self {
        AnalysisCache {
            reports: Lru::new(cap),
            stages: Lru::new(cap),
            hits: 0,
            misses: 0,
            inserts: 0,
            evictions: 0,
            stage_hits: 0,
            stage_misses: 0,
        }
    }

    /// Report-tier lookups served from the table.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Report-tier lookups that ran the cost model (including uncacheable
    /// layers).
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Entries added to the report tier (misses on cacheable layers).
    pub fn inserts(&self) -> u64 {
        self.inserts
    }

    /// Entries displaced from either tier by the LRU bound.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Stage-tier lookups served from the table (staged path only).
    pub fn stage_hits(&self) -> u64 {
        self.stage_hits
    }

    /// Stage-tier lookups that ran the expensive static stages.
    pub fn stage_misses(&self) -> u64 {
        self.stage_misses
    }

    /// Prepare a reusable context for `layer` under `dataflow` on `acc`'s
    /// static configuration (see [`PreparedContext`]). `acc`'s NoC fields
    /// are ignored — any accelerator of the sweep's static shape works.
    pub fn prepare<'a>(
        layer: &'a Layer,
        dataflow: &'a Dataflow,
        acc: &Accelerator,
    ) -> PreparedContext<'a> {
        let (stat, _) = context_fingerprints(dataflow, acc);
        PreparedContext {
            layer,
            dataflow,
            key: ShapeKey::of(layer),
            stat,
            num_pes: acc.num_pes,
            vector_width: acc.vector_width,
            precision_bytes: acc.precision_bytes,
            l2_bytes: acc.l2_bytes,
            offchip_bandwidth: acc.offchip_bandwidth,
            support: acc.support,
        }
    }

    /// [`analyze`] through the cache. The cache key is derived internally
    /// from the layer shape and a fingerprint of (dataflow, accelerator):
    /// two different contexts can never alias one entry.
    ///
    /// # Errors
    ///
    /// Propagates (and memoizes) [`AnalysisError`] from the cost model.
    pub fn analyze(
        &mut self,
        layer: &Layer,
        dataflow: &Dataflow,
        acc: &Accelerator,
    ) -> Result<LayerReport, AnalysisError> {
        let Some(key) = ShapeKey::of(layer) else {
            self.misses += 1;
            return analyze(layer, dataflow, acc);
        };
        let (_, full) = context_fingerprints(dataflow, acc);
        if let Some(cached) = self.reports.get(&(key, full)) {
            self.hits += 1;
            return cached.clone();
        }
        self.misses += 1;
        let result = analyze(layer, dataflow, acc);
        self.evictions += self.reports.insert((key, full), result.clone());
        self.inserts += 1;
        result
    }

    /// [`analyze`] through the cache via the staged pipeline: on a report
    /// miss, the NoC-independent stages are fetched from (or built into)
    /// the stage tier, then priced for this accelerator's NoC. Results are
    /// bit-identical to [`AnalysisCache::analyze`] — both paths run
    /// [`StagedAnalysis::build`] + [`StagedAnalysis::finish`] — but a sweep
    /// that varies only the NoC pipe re-runs just the cheap pricing stage.
    ///
    /// # Errors
    ///
    /// Propagates (and memoizes) [`AnalysisError`] from the cost model.
    pub fn analyze_staged(
        &mut self,
        layer: &Layer,
        dataflow: &Dataflow,
        acc: &Accelerator,
    ) -> Result<LayerReport, AnalysisError> {
        let Some(key) = ShapeKey::of(layer) else {
            self.misses += 1;
            return analyze(layer, dataflow, acc);
        };
        let (stat, full) = context_fingerprints(dataflow, acc);
        self.staged_lookup(key, stat, full, layer, dataflow, acc)
    }

    /// [`AnalysisCache::analyze_staged`] against a [`PreparedContext`]:
    /// the shape key and the NoC-independent fingerprint come from the
    /// preparation, so a sweep over NoC configurations hashes only the
    /// two NoC words per call. Falls back to the unprepared path when
    /// `acc` does not match the prepared static configuration, so the
    /// result (and every counter) is always exactly what
    /// [`AnalysisCache::analyze_staged`] would produce.
    ///
    /// # Errors
    ///
    /// Propagates (and memoizes) [`AnalysisError`] from the cost model.
    pub fn analyze_staged_prepared(
        &mut self,
        prepared: &PreparedContext<'_>,
        acc: &Accelerator,
    ) -> Result<LayerReport, AnalysisError> {
        if !prepared.statics_match(acc) {
            return self.analyze_staged(prepared.layer, prepared.dataflow, acc);
        }
        let Some(key) = prepared.key else {
            self.misses += 1;
            return analyze(prepared.layer, prepared.dataflow, acc);
        };
        let mut h = Fnv(prepared.stat);
        h.u64(acc.noc.bandwidth);
        h.u64(acc.noc.avg_latency);
        self.staged_lookup(
            key,
            prepared.stat,
            h.0,
            prepared.layer,
            prepared.dataflow,
            acc,
        )
    }

    /// [`AnalysisCache::analyze_staged`] polling a cooperative
    /// [`CancelToken`](maestro_obs::CancelToken) at the stage boundaries,
    /// so a request whose deadline expires mid-computation stops at the
    /// next cancellation point instead of pinning its worker to the end.
    /// Cache hits are returned regardless of the token — they are cheaper
    /// than the poll is useful — and [`AnalysisError::Cancelled`] is
    /// **never** memoized: a deadline belongs to the request, not to the
    /// (shape, context) entry.
    ///
    /// # Errors
    ///
    /// As [`AnalysisCache::analyze_staged`], plus
    /// [`AnalysisError::Cancelled`] when `token` trips before completion.
    pub fn analyze_staged_cancellable(
        &mut self,
        layer: &Layer,
        dataflow: &Dataflow,
        acc: &Accelerator,
        token: &maestro_obs::CancelToken,
    ) -> Result<LayerReport, AnalysisError> {
        let Some(key) = ShapeKey::of(layer) else {
            self.misses += 1;
            return analyze_cancellable(layer, dataflow, acc, token);
        };
        let (stat, full) = context_fingerprints(dataflow, acc);
        self.staged_lookup_cancellable(key, stat, full, layer, dataflow, acc, Some(token))
    }

    /// Shared staged-path body behind both fingerprint entry points.
    fn staged_lookup(
        &mut self,
        key: ShapeKey,
        stat: u64,
        full: u64,
        layer: &Layer,
        dataflow: &Dataflow,
        acc: &Accelerator,
    ) -> Result<LayerReport, AnalysisError> {
        self.staged_lookup_cancellable(key, stat, full, layer, dataflow, acc, None)
    }

    /// The staged-path body. With a token, cancellation is polled before
    /// the expensive stage build and again at the build/price boundary;
    /// a completed stage build is kept (it is valid whatever the token
    /// says) but a `Cancelled` outcome never reaches the report tier.
    #[allow(clippy::too_many_arguments)]
    fn staged_lookup_cancellable(
        &mut self,
        key: ShapeKey,
        stat: u64,
        full: u64,
        layer: &Layer,
        dataflow: &Dataflow,
        acc: &Accelerator,
        token: Option<&maestro_obs::CancelToken>,
    ) -> Result<LayerReport, AnalysisError> {
        if let Some(cached) = self.reports.get(&(key, full)) {
            self.hits += 1;
            return cached.clone();
        }
        self.misses += 1;
        let result = match self.stages.get(&(key, stat)) {
            Some(Ok(staged)) => {
                self.stage_hits += 1;
                staged.finish(acc.noc.bandwidth, acc.noc.avg_latency)
            }
            Some(Err(e)) => {
                self.stage_hits += 1;
                Err(e.clone())
            }
            None => {
                self.stage_misses += 1;
                if token.is_some_and(maestro_obs::CancelToken::is_cancelled) {
                    // Nothing built yet, nothing to memoize: a later
                    // request with budget left must still be able to
                    // build and cache this context.
                    return Err(AnalysisError::Cancelled);
                }
                let built = StagedAnalysis::build(layer, dataflow, acc);
                let out = match &built {
                    Ok(staged) => {
                        if token.is_some_and(maestro_obs::CancelToken::is_cancelled) {
                            Err(AnalysisError::Cancelled)
                        } else {
                            staged.finish(acc.noc.bandwidth, acc.noc.avg_latency)
                        }
                    }
                    Err(e) => Err(e.clone()),
                };
                self.evictions += self.stages.insert((key, stat), built);
                out
            }
        };
        if matches!(result, Err(AnalysisError::Cancelled)) {
            return result;
        }
        self.evictions += self.reports.insert((key, full), result.clone());
        self.inserts += 1;
        result
    }

    /// Report-tier-only probe: the cached success for this exact
    /// (shape, full context), if present. Touches nothing — no counters,
    /// no LRU promotion, no stage tier — because a brownout peek answers
    /// "can we serve this for free right now?" and must not make the
    /// cache think the entry was served when the caller may still 503.
    pub fn peek_report(&self, key: ShapeKey, full: u64) -> Option<LayerReport> {
        match self.reports.peek(&(key, full)) {
            Some(Ok(report)) => Some(report.clone()),
            _ => None,
        }
    }
}

/// A thread-safe, sharded front for [`AnalysisCache`]: requests from any
/// number of threads share one memo table, which is what a long-lived
/// serving daemon needs (today's per-sweep caches die with their sweep,
/// so every request re-paid the cost model for shapes the process had
/// already analyzed).
///
/// Entries are sharded by the **NoC-independent** fingerprint, so every
/// NoC configuration of one (shape, dataflow, static accelerator) context
/// lands in the same shard and keeps sharing its stage-tier build —
/// exactly the reuse [`AnalysisCache::analyze_staged`] exists for. Each
/// shard is a plain `Mutex<AnalysisCache>`: lookups take one uncontended
/// lock (the shard count spreads hot shapes), and every acquisition that
/// had to wait is counted in `maestro.cache.lock_waits`, so contention is
/// observable instead of silent.
///
/// The single-threaded DSE path is untouched: sweeps keep their private
/// per-worker [`AnalysisCache`] with zero locking.
#[derive(Debug)]
pub struct SharedAnalysisCache {
    shards: Box<[std::sync::Mutex<AnalysisCache>]>,
}

/// `OnceLock`-cached handle for the shard-lock contention counter.
fn lock_waits_counter() -> &'static maestro_obs::Counter {
    static C: std::sync::OnceLock<maestro_obs::Counter> = std::sync::OnceLock::new();
    C.get_or_init(|| maestro_obs::registry().counter("maestro.cache.lock_waits"))
}

impl SharedAnalysisCache {
    /// A cache with `shards` shards of `cap_per_shard` entries per tier
    /// each (`shards` is clamped to at least 1; `0` capacity = unbounded).
    pub fn new(shards: usize, cap_per_shard: usize) -> Self {
        SharedAnalysisCache {
            shards: (0..shards.max(1))
                .map(|_| std::sync::Mutex::new(AnalysisCache::with_capacity(cap_per_shard)))
                .collect(),
        }
    }

    /// Which shard owns the context with NoC-independent fingerprint
    /// `stat` for `key`.
    fn shard(&self, key: &ShapeKey, stat: u64) -> &std::sync::Mutex<AnalysisCache> {
        use std::hash::{Hash, Hasher};
        let mut h = Fnv::new();
        key.hash(&mut h);
        h.u64(stat);
        let idx = (h.finish() % self.shards.len() as u64) as usize;
        &self.shards[idx]
    }

    /// Lock a shard, counting acquisitions that had to wait. A poisoned
    /// shard (a panicking analysis under `catch_unwind`) is recovered:
    /// the cache holds only finished `Result`s, so its state is sound.
    fn lock<'a>(
        &self,
        shard: &'a std::sync::Mutex<AnalysisCache>,
    ) -> std::sync::MutexGuard<'a, AnalysisCache> {
        if let Ok(guard) = shard.try_lock() {
            return guard;
        }
        lock_waits_counter().inc();
        shard.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// [`AnalysisCache::analyze_staged`] against the shared table. The
    /// staged path is the right default for a server: repeated shapes hit
    /// the report tier, and NoC-only variations of known contexts re-run
    /// just the cheap pricing stage.
    ///
    /// # Errors
    ///
    /// Propagates (and memoizes) [`AnalysisError`] from the cost model.
    pub fn analyze_staged(
        &self,
        layer: &Layer,
        dataflow: &Dataflow,
        acc: &Accelerator,
    ) -> Result<LayerReport, AnalysisError> {
        let Some(key) = ShapeKey::of(layer) else {
            // Uncacheable (custom coupling): run directly, no lock taken.
            return analyze(layer, dataflow, acc);
        };
        let (stat, full) = context_fingerprints(dataflow, acc);
        let shard = self.shard(&key, stat);
        let mut cache = self.lock(shard);
        cache.staged_lookup(key, stat, full, layer, dataflow, acc)
    }

    /// [`AnalysisCache::analyze_staged_cancellable`] against the shared
    /// table: the serving daemon's per-request deadline hook. `Cancelled`
    /// is never memoized, so one timed-out request cannot poison the
    /// cache for the requests that follow it.
    ///
    /// # Errors
    ///
    /// As [`SharedAnalysisCache::analyze_staged`], plus
    /// [`AnalysisError::Cancelled`] when `token` trips before completion.
    pub fn analyze_staged_cancellable(
        &self,
        layer: &Layer,
        dataflow: &Dataflow,
        acc: &Accelerator,
        token: &maestro_obs::CancelToken,
    ) -> Result<LayerReport, AnalysisError> {
        let Some(key) = ShapeKey::of(layer) else {
            // Uncacheable (custom coupling): run directly, no lock taken.
            return analyze_cancellable(layer, dataflow, acc, token);
        };
        let (stat, full) = context_fingerprints(dataflow, acc);
        let shard = self.shard(&key, stat);
        let mut cache = self.lock(shard);
        cache.staged_lookup_cancellable(key, stat, full, layer, dataflow, acc, Some(token))
    }

    /// [`AnalysisCache::peek_report`] against the shared table: the
    /// brownout path's "serve from cache or shed" probe. Uncacheable
    /// layers (no [`ShapeKey`]) always miss — there is nothing to serve
    /// for free.
    pub fn peek_report(
        &self,
        layer: &Layer,
        dataflow: &Dataflow,
        acc: &Accelerator,
    ) -> Option<LayerReport> {
        let key = ShapeKey::of(layer)?;
        let (stat, full) = context_fingerprints(dataflow, acc);
        let shard = self.shard(&key, stat);
        let cache = self.lock(shard);
        cache.peek_report(key, full)
    }

    /// Aggregate `(hits, misses)` across all shards (tests/diagnostics;
    /// takes every shard lock in turn).
    pub fn hit_miss(&self) -> (u64, u64) {
        self.shards.iter().fold((0, 0), |(h, m), s| {
            let c = self.lock(s);
            (h + c.hits(), m + c.misses())
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use maestro_dnn::{Density, Layer, LayerDims, Operator};
    use maestro_hw::NocConfig;
    use maestro_ir::Style;

    fn layer(name: &str) -> Layer {
        Layer::new(
            name,
            Operator::conv2d(),
            LayerDims::square(1, 32, 32, 34, 3),
        )
    }

    #[test]
    fn key_ignores_name_but_not_shape() {
        let a = ShapeKey::of(&layer("a")).unwrap();
        let b = ShapeKey::of(&layer("b")).unwrap();
        assert_eq!(a, b);
        let bigger = Layer::new("c", Operator::conv2d(), LayerDims::square(1, 64, 32, 34, 3));
        assert_ne!(a, ShapeKey::of(&bigger).unwrap());
    }

    #[test]
    fn key_distinguishes_density() {
        let dense = layer("d");
        let mut sparse = layer("d");
        sparse.density = Density {
            input: 0.5,
            weight: 1.0,
            output: 1.0,
        };
        assert_ne!(
            ShapeKey::of(&dense).unwrap(),
            ShapeKey::of(&sparse).unwrap()
        );
    }

    /// Pins the deadline bugfix: a tripped token yields `Cancelled`, and
    /// that outcome is never memoized — the next request with budget gets
    /// the real report and subsequent calls hit the report tier.
    #[test]
    fn cancelled_results_are_not_memoized() {
        let acc = Accelerator::builder(64).build();
        let l = layer("x");
        let df = Style::KCP.dataflow();
        let mut cache = AnalysisCache::new();

        let tripped = maestro_obs::CancelToken::detached();
        tripped.cancel();
        assert!(matches!(
            cache.analyze_staged_cancellable(&l, &df, &acc, &tripped),
            Err(AnalysisError::Cancelled)
        ));

        let fresh = maestro_obs::CancelToken::detached();
        let report = cache
            .analyze_staged_cancellable(&l, &df, &acc, &fresh)
            .expect("cancelled outcome must not poison the cache");
        assert_eq!(report, analyze(&l, &df, &acc).expect("analyzable"));

        let hits_before = cache.hits();
        cache
            .analyze_staged_cancellable(&l, &df, &acc, &fresh)
            .expect("analyzable");
        assert_eq!(cache.hits(), hits_before + 1, "report tier now serves it");
    }

    #[test]
    fn shared_cache_cancellable_matches_plain() {
        let acc = Accelerator::builder(64).build();
        let l = layer("x");
        let df = Style::KCP.dataflow();
        let shared = SharedAnalysisCache::new(4, 0);

        let tripped = maestro_obs::CancelToken::detached();
        tripped.cancel();
        assert!(matches!(
            shared.analyze_staged_cancellable(&l, &df, &acc, &tripped),
            Err(AnalysisError::Cancelled)
        ));

        let fresh = maestro_obs::CancelToken::detached();
        let via_token = shared
            .analyze_staged_cancellable(&l, &df, &acc, &fresh)
            .expect("analyzable");
        let plain = shared.analyze_staged(&l, &df, &acc).expect("analyzable");
        assert_eq!(via_token, plain);
    }

    #[test]
    fn cache_hits_match_direct_analysis() {
        let acc = Accelerator::builder(64).build();
        let l = layer("x");
        let df = Style::KCP.dataflow();
        let direct = analyze(&l, &df, &acc).expect("analyzable");
        let mut cache = AnalysisCache::new();
        let first = cache.analyze(&l, &df, &acc).expect("analyzable");
        let second = cache
            .analyze(&layer("renamed"), &df, &acc)
            .expect("analyzable");
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.hits(), 1);
        assert_eq!(first, direct);
        assert_eq!(second, direct);
    }

    /// Regression for the stale-report footgun: under the old API a caller
    /// reusing `tag = 0` for two different dataflows (or accelerators) got
    /// the first context's report back for the second. The fingerprint is
    /// derived internally now, so the same call sequence must produce two
    /// distinct, correct entries.
    #[test]
    fn contexts_separate_automatically() {
        let acc = Accelerator::builder(64).build();
        let l = layer("x");
        let kcp = Style::KCP.dataflow();
        let ycp = Style::YXP.dataflow();
        let mut cache = AnalysisCache::new();
        let a = cache.analyze(&l, &kcp, &acc).expect("analyzable");
        let b = cache.analyze(&l, &ycp, &acc).expect("analyzable");
        assert_eq!(cache.misses(), 2);
        assert_eq!(cache.hits(), 0);
        assert_eq!(a, analyze(&l, &kcp, &acc).unwrap());
        assert_eq!(b, analyze(&l, &ycp, &acc).unwrap());
        // Same dataflow, different accelerator: also distinct.
        let wider = Accelerator::builder(64).noc(NocConfig::new(256, 1)).build();
        let c = cache.analyze(&l, &kcp, &wider).expect("analyzable");
        assert_eq!(cache.misses(), 3);
        assert_eq!(c, analyze(&l, &kcp, &wider).unwrap());
        // And every context replays from the table.
        let _ = cache.analyze(&l, &kcp, &acc);
        let _ = cache.analyze(&l, &ycp, &acc);
        let _ = cache.analyze(&l, &kcp, &wider);
        assert_eq!(cache.hits(), 3);
    }

    #[test]
    fn staged_path_matches_full_path() {
        let l = layer("x");
        for style in [Style::KCP, Style::YXP, Style::YRP] {
            let df = style.dataflow();
            for bw in [1u64, 32, 256] {
                let acc = Accelerator::builder(64).noc(NocConfig::new(bw, 2)).build();
                let mut full = AnalysisCache::new();
                let mut staged = AnalysisCache::new();
                let a = full.analyze(&l, &df, &acc);
                let b = staged.analyze_staged(&l, &df, &acc);
                assert_eq!(a, b, "{style} bw={bw}");
            }
        }
    }

    #[test]
    fn staged_shares_static_stages_across_noc_points() {
        let l = layer("x");
        let df = Style::KCP.dataflow();
        let mut cache = AnalysisCache::new();
        for bw in [1u64, 2, 4, 8, 16, 32] {
            let acc = Accelerator::builder(64).noc(NocConfig::new(bw, 2)).build();
            cache.analyze_staged(&l, &df, &acc).expect("analyzable");
        }
        // Six report-tier misses, but the expensive stages ran once.
        assert_eq!(cache.misses(), 6);
        assert_eq!(cache.stage_misses(), 1);
        assert_eq!(cache.stage_hits(), 5);
    }

    #[test]
    fn lru_bound_evicts_and_counts() {
        let l = layer("x");
        let df = Style::KCP.dataflow();
        let mut cache = AnalysisCache::with_capacity(2);
        for bw in [1u64, 2, 3] {
            let acc = Accelerator::builder(64).noc(NocConfig::new(bw, 2)).build();
            cache.analyze(&l, &df, &acc).expect("analyzable");
        }
        assert_eq!(cache.evictions(), 1);
        // bw=1 was evicted: re-analyzing it is a miss, evicting bw=2.
        let acc1 = Accelerator::builder(64).noc(NocConfig::new(1, 2)).build();
        let direct = analyze(&l, &df, &acc1).unwrap();
        assert_eq!(cache.analyze(&l, &df, &acc1).unwrap(), direct);
        assert_eq!(cache.misses(), 4);
        assert_eq!(cache.evictions(), 2);
        assert_eq!(cache.hits(), 0);
    }

    #[test]
    fn coupling_override_bypasses_cache() {
        let mut l = layer("x");
        l.coupling_override = Some(l.op.coupling());
        assert!(ShapeKey::of(&l).is_none());
    }

    #[test]
    fn shared_cache_matches_direct_analysis_and_counts_hits() {
        let shared = SharedAnalysisCache::new(4, 64);
        let l = layer("x");
        let df = Style::KCP.dataflow();
        let acc = Accelerator::builder(64).build();
        let direct = analyze(&l, &df, &acc).expect("analyzable");
        assert_eq!(shared.analyze_staged(&l, &df, &acc).unwrap(), direct);
        assert_eq!(shared.analyze_staged(&l, &df, &acc).unwrap(), direct);
        let (hits, misses) = shared.hit_miss();
        assert_eq!((hits, misses), (1, 1));
    }

    #[test]
    fn shared_cache_serves_concurrent_threads() {
        let shared = SharedAnalysisCache::new(2, 64);
        let df = Style::KCP.dataflow();
        let direct = {
            let acc = Accelerator::builder(64).noc(NocConfig::new(8, 2)).build();
            analyze(&layer("t"), &df, &acc).expect("analyzable")
        };
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for bw in [1u64, 2, 4, 8, 16] {
                        let acc = Accelerator::builder(64).noc(NocConfig::new(bw, 2)).build();
                        let r = shared.analyze_staged(&layer("t"), &df, &acc).unwrap();
                        if bw == 8 {
                            assert_eq!(r, direct);
                        }
                    }
                });
            }
        });
        let (hits, misses) = shared.hit_miss();
        assert_eq!(hits + misses, 20, "every lookup accounted for");
        assert!(
            hits >= 15,
            "at most one miss per NoC point: {hits}/{misses}"
        );
    }
}

//! A small, dependency-free LRU map used to bound the analysis caches.
//!
//! Entries live in a slab (`Vec` of nodes) threaded onto an intrusive
//! doubly-linked list by index; a `HashMap` gives O(1) key → slot lookup.
//! `get` promotes to most-recently-used; `insert` evicts the
//! least-recently-used entry once the configured capacity is reached.
//! Capacity `0` means unbounded (no eviction), matching the historical
//! behaviour of [`AnalysisCache`](crate::AnalysisCache).

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hash, Hasher};

/// FNV-1a [`Hasher`] for the index map. The keys are small fixed-size
/// tuples of integers (shape keys and fingerprints), where FNV beats the
/// default SipHash handily; HashDoS resistance is irrelevant because the
/// keys are internally derived fingerprints, not attacker-controlled
/// input.
#[derive(Default)]
pub struct FnvHasher(u64);

impl FnvHasher {
    /// Absorb one 64-bit word (one xor-multiply round).
    #[inline]
    fn word(&mut self, w: u64) {
        let h = if self.0 == 0 {
            0xcbf2_9ce4_8422_2325
        } else {
            self.0
        };
        self.0 = (h ^ w).wrapping_mul(0x0000_0100_0000_01b3);
    }
}

impl Hasher for FnvHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        // Word-at-a-time FNV-1a (one xor-multiply per 8 bytes): the keys
        // are ~100-byte fingerprint tuples, so per-byte multiplies would
        // dominate every cache lookup. In-memory only — no canonical FNV
        // vectors to honor, a length-tagged tail keeps short inputs
        // distinct.
        let mut h = if self.0 == 0 {
            0xcbf2_9ce4_8422_2325
        } else {
            self.0
        };
        let mut chunks = bytes.chunks_exact(8);
        for c in chunks.by_ref() {
            let w = u64::from_le_bytes([c[0], c[1], c[2], c[3], c[4], c[5], c[6], c[7]]);
            h ^= w;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut w = rest.len() as u64;
            for &b in rest {
                w = (w << 8) | u64::from(b);
            }
            h ^= w;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        self.0 = h;
    }

    // Derived `Hash` impls feed keys to the hasher field by field through
    // these fixed-width calls; absorbing each as one word skips the
    // byte-slice machinery on the hot lookup path.

    fn write_u8(&mut self, v: u8) {
        self.word(u64::from(v));
    }

    fn write_u16(&mut self, v: u16) {
        self.word(u64::from(v));
    }

    fn write_u32(&mut self, v: u32) {
        self.word(u64::from(v));
    }

    fn write_u64(&mut self, v: u64) {
        self.word(v);
    }

    fn write_usize(&mut self, v: usize) {
        self.word(v as u64);
    }
}

type FnvBuild = BuildHasherDefault<FnvHasher>;

/// Sentinel index for "no node".
const NIL: usize = usize::MAX;

#[derive(Debug)]
struct Node<K, V> {
    key: K,
    val: V,
    prev: usize,
    next: usize,
}

/// A bounded least-recently-used map.
#[derive(Debug)]
pub struct Lru<K, V> {
    cap: usize,
    map: HashMap<K, usize, FnvBuild>,
    nodes: Vec<Node<K, V>>,
    /// Most-recently-used node.
    head: usize,
    /// Least-recently-used node (eviction candidate).
    tail: usize,
    /// Recycled slab slots.
    free: Vec<usize>,
}

impl<K: Hash + Eq + Clone, V> Lru<K, V> {
    /// An LRU map holding at most `cap` entries (`0` = unbounded).
    pub fn new(cap: usize) -> Self {
        Lru {
            cap,
            map: HashMap::default(),
            nodes: Vec::new(),
            head: NIL,
            tail: NIL,
            free: Vec::new(),
        }
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the map holds no entries.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// The configured capacity (`0` = unbounded).
    pub fn cap(&self) -> usize {
        self.cap
    }

    /// Detach node `i` from the recency list.
    fn unlink(&mut self, i: usize) {
        let (prev, next) = (self.nodes[i].prev, self.nodes[i].next);
        if prev == NIL {
            self.head = next;
        } else {
            self.nodes[prev].next = next;
        }
        if next == NIL {
            self.tail = prev;
        } else {
            self.nodes[next].prev = prev;
        }
    }

    /// Attach node `i` at the most-recently-used end.
    fn push_front(&mut self, i: usize) {
        self.nodes[i].prev = NIL;
        self.nodes[i].next = self.head;
        if self.head != NIL {
            self.nodes[self.head].prev = i;
        }
        self.head = i;
        if self.tail == NIL {
            self.tail = i;
        }
    }

    /// Look up `key` without promoting it: a read that must not perturb
    /// the recency order (e.g. a brownout probe asking "is this cached?"
    /// on behalf of a request that will not pay for a recompute).
    pub fn peek(&self, key: &K) -> Option<&V> {
        let i = *self.map.get(key)?;
        Some(&self.nodes[i].val)
    }

    /// Look up `key`, promoting it to most-recently-used on a hit.
    pub fn get(&mut self, key: &K) -> Option<&V> {
        let i = *self.map.get(key)?;
        if i != self.head {
            self.unlink(i);
            self.push_front(i);
        }
        Some(&self.nodes[i].val)
    }

    /// Insert or replace `key`. Returns the number of entries evicted to
    /// make room (0 or 1), so callers can keep an exact eviction counter.
    pub fn insert(&mut self, key: K, val: V) -> u64 {
        if let Some(&i) = self.map.get(&key) {
            self.nodes[i].val = val;
            if i != self.head {
                self.unlink(i);
                self.push_front(i);
            }
            return 0;
        }
        let mut evicted = 0u64;
        if self.cap > 0 && self.map.len() >= self.cap && self.tail != NIL {
            let victim = self.tail;
            self.unlink(victim);
            self.map.remove(&self.nodes[victim].key);
            self.free.push(victim);
            evicted = 1;
        }
        let slot = match self.free.pop() {
            Some(i) => {
                self.nodes[i] = Node {
                    key: key.clone(),
                    val,
                    prev: NIL,
                    next: NIL,
                };
                i
            }
            None => {
                self.nodes.push(Node {
                    key: key.clone(),
                    val,
                    prev: NIL,
                    next: NIL,
                });
                self.nodes.len() - 1
            }
        };
        self.push_front(slot);
        self.map.insert(key, slot);
        evicted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unbounded_never_evicts() {
        let mut l = Lru::new(0);
        for i in 0..1000u32 {
            assert_eq!(l.insert(i, i * 2), 0);
        }
        assert_eq!(l.len(), 1000);
        assert_eq!(l.get(&0), Some(&0));
        assert_eq!(l.get(&999), Some(&1998));
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut l = Lru::new(2);
        assert_eq!(l.insert('a', 1), 0);
        assert_eq!(l.insert('b', 2), 0);
        // Touch 'a' so 'b' becomes the LRU entry.
        assert_eq!(l.get(&'a'), Some(&1));
        assert_eq!(l.insert('c', 3), 1);
        assert_eq!(l.get(&'b'), None);
        assert_eq!(l.get(&'a'), Some(&1));
        assert_eq!(l.get(&'c'), Some(&3));
        assert_eq!(l.len(), 2);
    }

    #[test]
    fn replace_does_not_evict() {
        let mut l = Lru::new(2);
        l.insert('a', 1);
        l.insert('b', 2);
        assert_eq!(l.insert('a', 10), 0);
        assert_eq!(l.len(), 2);
        assert_eq!(l.get(&'a'), Some(&10));
        assert_eq!(l.get(&'b'), Some(&2));
    }

    #[test]
    fn eviction_order_follows_recency_chain() {
        let mut l = Lru::new(3);
        for (k, v) in [('a', 1), ('b', 2), ('c', 3)] {
            l.insert(k, v);
        }
        // MRU: c, b, a. Promote 'a', insert two: evicts 'b' then 'c'.
        l.get(&'a');
        assert_eq!(l.insert('d', 4), 1);
        assert_eq!(l.get(&'b'), None);
        assert_eq!(l.insert('e', 5), 1);
        assert_eq!(l.get(&'c'), None);
        assert_eq!(l.get(&'a'), Some(&1));
        assert_eq!(l.get(&'d'), Some(&4));
        assert_eq!(l.get(&'e'), Some(&5));
    }

    #[test]
    fn slots_are_recycled_after_eviction() {
        let mut l = Lru::new(4);
        for i in 0..64u32 {
            l.insert(i, i);
        }
        assert_eq!(l.len(), 4);
        // Slab never grows past cap + nothing: 4 live slots reused forever.
        assert!(l.nodes.len() <= 5);
    }
}

//! Golden activity-count pins for conformance-harness reproducers.
//!
//! These cases were minimized by `maestro conform` while hunting
//! divergences between the closed-form model and the step simulator. The
//! values below are the *post-fix* model outputs, verified against the
//! simulator in `maestro-sim/tests/conform_repros.rs`; they are pinned
//! here exactly so regressions in the engine's edge-padding, coverage,
//! and transition-overlap math are caught without running the simulator.

use maestro_core::analyze;
use maestro_dnn::{Layer, LayerDims, Operator, TensorKind};
use maestro_hw::Accelerator;
use maestro_ir::Style;

#[allow(clippy::too_many_arguments)]
fn dims(n: u64, k: u64, c: u64, y: u64, x: u64, r: u64, s: u64, sy: u64, sx: u64) -> LayerDims {
    LayerDims {
        n,
        k,
        c,
        y,
        x,
        r,
        s,
        stride_y: sy,
        stride_x: sx,
    }
}

/// Strided edge chunks must not double-count overlap with their
/// predecessor: Y=3/X=4 under stride 3 has exactly 3×2 outputs and every
/// MAC touches a distinct input element.
#[test]
fn strided_edge_chunks_exact_macs() {
    let layer = Layer::new("g", Operator::conv2d(), dims(1, 1, 1, 3, 4, 1, 1, 1, 3));
    let acc = Accelerator::builder(8).noc_bandwidth(1).build();
    let r = analyze(&layer, &Style::YXP.dataflow(), &acc).unwrap();
    assert_eq!(r.counts.macs, layer.total_macs() as f64);
    assert_eq!(r.counts.macs, 6.0);
    assert_eq!(r.runtime, 16.0);
    // Each of the 6 outputs reads a distinct input element once.
    assert_eq!(r.counts.l2_read[TensorKind::Input], 6.0);
    assert_eq!(r.counts.l2_write[TensorKind::Output], 6.0);
}

/// Edge-padded K grid (9 over chunk-8 folds): weight traffic must cover
/// exactly the 9 real filters, not the 16 padded grid slots.
#[test]
fn edge_coverage_scales_traffic() {
    let layer = Layer::new("g", Operator::conv2d(), dims(1, 9, 1, 4, 4, 1, 1, 1, 1));
    let acc = Accelerator::builder(64).noc_bandwidth(1).build();
    let r = analyze(&layer, &Style::KCP.dataflow(), &acc).unwrap();
    assert_eq!(r.counts.macs, layer.total_macs() as f64);
    // 9 real filters, not the 16 slots of the padded 2x8 grid.
    assert_eq!(r.counts.l2_read[TensorKind::Weight], 9.0);
    assert_eq!(r.counts.l2_write[TensorKind::Output], 144.0);
}

/// Sliding-window resets keep their overlap: one PE sweeping a 4×4 window
/// over a 10×5 input refetches only the uncovered border on each row
/// advance.
#[test]
fn reset_window_overlap_input_traffic() {
    let layer = Layer::new("g", Operator::conv2d(), dims(1, 1, 1, 10, 5, 4, 4, 1, 1));
    let acc = Accelerator::builder(1).noc_bandwidth(1).build();
    let r = analyze(&layer, &Style::CP.dataflow(), &acc).unwrap();
    assert_eq!(r.counts.macs, 224.0); // 7x2 outputs x 16-tap window
                                      // First window 16, +4 per column slide, +7 per row advance (the reset
                                      // wraps the window back with a 3x3 overlap): 20 + 6x11 = 86 exactly.
    assert_eq!(r.counts.l2_read[TensorKind::Input], 86.0);
    assert_eq!(r.counts.l2_read[TensorKind::Weight], 16.0);
    assert_eq!(r.counts.l2_write[TensorKind::Output], 14.0);
}

/// Inner spatial folds stream their output egress across the L2 boundary
/// every pass; outer reduction revisits refetch the partials.
#[test]
fn inner_fold_output_commit_stream() {
    let layer = Layer::new("g", Operator::conv2d(), dims(1, 1, 3, 4, 7, 1, 1, 1, 1));
    let acc = Accelerator::builder(12).noc_bandwidth(1).build();
    // YX-P[p3,x8]: Y spatial at the top, X folded across a 3-PE cluster.
    let sz = maestro_ir::SizeExpr::size;
    let df = maestro_ir::Dataflow::builder("YX-P[p3,x8]")
        .temporal(1, 1, maestro_dnn::Dim::K)
        .spatial(sz(maestro_dnn::Dim::R), 1, maestro_dnn::Dim::Y)
        .temporal(
            maestro_ir::SizeExpr::lit(8)
                .add(sz(maestro_dnn::Dim::S))
                .sub(maestro_ir::SizeExpr::lit(1)),
            8,
            maestro_dnn::Dim::X,
        )
        .temporal(1, 1, maestro_dnn::Dim::C)
        .temporal(
            sz(maestro_dnn::Dim::R),
            sz(maestro_dnn::Dim::R),
            maestro_dnn::Dim::R,
        )
        .temporal(
            sz(maestro_dnn::Dim::S),
            sz(maestro_dnn::Dim::S),
            maestro_dnn::Dim::S,
        )
        .cluster(maestro_ir::SizeExpr::lit(3))
        .spatial(sz(maestro_dnn::Dim::S), 1, maestro_dnn::Dim::X)
        .build();
    let r = analyze(&layer, &df, &acc).unwrap();
    assert_eq!(r.counts.macs, 84.0); // 28 outputs x C=3 reduction
                                     // 3 egress events per pass x 12-way replication x 3 C-passes, with
                                     // the 2 mid-pass events refetched on each of the 2 revisits.
    assert_eq!(r.counts.l2_write[TensorKind::Output], 108.0);
    assert_eq!(r.counts.l2_read[TensorKind::Output], 48.0);
}

/// Uncoupled dims degenerate instead of multiplying the schedule: a
/// depthwise layer under a K-spatial dataflow does the same MACs as the
/// layer itself.
#[test]
fn uncoupled_dims_do_not_replicate() {
    let layer = Layer::new(
        "g",
        Operator::DepthwiseConv2d,
        dims(1, 4, 8, 6, 6, 3, 3, 1, 1),
    );
    let acc = Accelerator::builder(64).noc_bandwidth(1).build();
    let r = analyze(&layer, &Style::KCP.dataflow(), &acc).unwrap();
    assert_eq!(r.counts.macs, layer.total_macs() as f64);
}

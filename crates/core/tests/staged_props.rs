//! Staged-vs-fused equivalence suite for the analysis pipeline.
//!
//! The staged evaluator ([`StagedAnalysis`]) splits `analyze()` into
//! NoC-independent stages plus a cheap per-bandwidth performance stage, so
//! a DSE sweep can share the expensive stages across its whole bandwidth
//! axis. The contract is **bit-identity**: `build(...).finish(bw, lat)`
//! must equal the fused `analyze()` under an accelerator with that NoC —
//! not approximately, but field-for-field on the full [`LayerReport`]
//! (`assert_eq!`, no tolerances).
//!
//! Two layers of evidence:
//! - deterministic goldens over the model zoo × all five Table-3 styles ×
//!   a NoC grid, and
//! - a property test: build the stages at one *random* bandwidth/latency,
//!   then re-price at another random one — a single-axis grid delta — and
//!   compare with a from-scratch fused analysis at the target NoC.

use maestro_core::{analyze, StagedAnalysis};
use maestro_dnn::{zoo, Layer, LayerDims, Operator};
use maestro_hw::{Accelerator, NocConfig};
use maestro_ir::Style;
use proptest::prelude::*;

fn acc(pes: u64, bw: u64, lat: u64) -> Accelerator {
    Accelerator::builder(pes)
        .noc(NocConfig::new(bw, lat))
        .build()
}

/// Every zoo model's first/mid/last layers × all five styles × a small NoC
/// grid: the staged pipeline built once per (layer, style, PE count) and
/// re-priced per NoC must reproduce the fused report exactly.
#[test]
fn staged_matches_fused_across_zoo_and_styles() {
    let models = [
        zoo::vgg16(1),
        zoo::alexnet(1),
        zoo::resnet50(1),
        zoo::mobilenet_v2(1),
    ];
    let mut compared = 0u64;
    for model in &models {
        let n = model.len();
        // First, middle, last: depthwise/pointwise/strided variety without
        // running every layer of every model on every commit.
        let picks = [0, n / 2, n - 1];
        for &i in &picks {
            let layer = match model.iter().nth(i) {
                Some(l) => l,
                None => continue,
            };
            for style in Style::ALL {
                let df = style.dataflow();
                let built = StagedAnalysis::build(layer, &df, &acc(64, 32, 2));
                for (bw, lat) in [(1, 0), (8, 2), (32, 2), (256, 8)] {
                    let a = acc(64, bw, lat);
                    let fused = analyze(layer, &df, &a);
                    let staged = match &built {
                        Ok(s) => s.finish(bw, lat),
                        Err(e) => Err(e.clone()),
                    };
                    assert_eq!(
                        fused, staged,
                        "{}/{} {style} bw={bw} lat={lat}",
                        model.name, layer.name
                    );
                    compared += 1;
                }
            }
        }
    }
    assert!(compared >= 200, "suite shrank: only {compared} comparisons");
}

/// PE-count deltas share nothing NoC-related: rebuilding the stages per PE
/// count and finishing at a fixed NoC still matches fused analysis.
#[test]
fn staged_matches_fused_across_pe_counts() {
    let model = zoo::alexnet(1);
    for layer in model.iter() {
        for pes in [16, 64, 256, 1024] {
            for style in Style::ALL {
                let a = acc(pes, 16, 2);
                let df = style.dataflow();
                let fused = analyze(layer, &df, &a);
                let staged = StagedAnalysis::build(layer, &df, &a)
                    .and_then(|s| s.finish(a.noc.bandwidth, a.noc.avg_latency));
                assert_eq!(fused, staged, "{} {style} pes={pes}", layer.name);
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Random conv shapes, random style, and a random single-axis NoC
    /// delta: stages built under `(bw_a, lat_a)` then re-priced at
    /// `(bw_b, lat_b)` are bit-identical to a fused analysis at
    /// `(bw_b, lat_b)`. This is exactly the explorer's delta-evaluation
    /// step (the build context's own NoC must be irrelevant to `finish`).
    #[test]
    fn random_noc_delta_matches_from_scratch(
        shape in (1u64..40, 1u64..24, 1u64..20, 1u64..20, 1u64..4, 1u64..3),
        hw in (0usize..5, 0usize..5),
        noc in (1u64..300, 0u64..10, 1u64..300, 0u64..10),
    ) {
        let (k, c, y, x, r, stride) = shape;
        let (style_idx, pes_idx) = hw;
        let (bw_a, lat_a, bw_b, lat_b) = noc;
        let r = r.min(y).min(x);
        let layer = Layer::new(
            "p",
            Operator::conv2d(),
            LayerDims { n: 1, k, c, y, x, r, s: r, stride_y: stride, stride_x: stride },
        );
        let style = Style::ALL[style_idx];
        let pes = [8u64, 32, 64, 200, 512][pes_idx];
        let df = style.dataflow();

        let built = StagedAnalysis::build(&layer, &df, &acc(pes, bw_a, lat_a));
        let staged = match &built {
            Ok(s) => s.finish(bw_b, lat_b),
            Err(e) => Err(e.clone()),
        };
        let fused = analyze(&layer, &df, &acc(pes, bw_b, lat_b));
        prop_assert_eq!(
            fused, staged,
            "{} pes={} ({},{}) -> ({},{})",
            style, pes, bw_a, lat_a, bw_b, lat_b
        );
    }
}

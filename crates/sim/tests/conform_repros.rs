//! Pinned reproducers from the differential conformance harness.
//!
//! Each test is a case that `maestro conform` found diverging between
//! `analyze()` and `simulate()`, minimized by the built-in shrinker, and
//! fixed in the model (or the simulator). They are kept here verbatim so
//! the divergence classes cannot silently reopen. The tolerances mirror
//! the harness defaults ([`Tolerances::default`]).

use maestro_dnn::{Layer, LayerDims, Operator};
use maestro_hw::Accelerator;
use maestro_ir::Style;
use maestro_sim::{validate_layer, SimOptions, Tolerances, ValidationPoint};

#[allow(clippy::too_many_arguments)]
fn dims(n: u64, k: u64, c: u64, y: u64, x: u64, r: u64, s: u64, sy: u64, sx: u64) -> LayerDims {
    LayerDims {
        n,
        k,
        c,
        y,
        x,
        r,
        s,
        stride_y: sy,
        stride_x: sx,
    }
}

/// Run both engines and assert every harness metric is within the default
/// tolerances, with MAC accounting exact.
fn assert_conforms(layer: &Layer, df: &maestro_ir::Dataflow, acc: &Accelerator) -> ValidationPoint {
    let p = validate_layer(layer, df, acc, SimOptions::default()).expect("both engines run");
    let tol = Tolerances::default();
    assert_eq!(p.sim_macs, p.exact_macs, "sim MACs must be exact");
    assert!(
        p.runtime_error_pct() <= tol.runtime_pct,
        "runtime: model {} vs sim {} ({:.1}%)",
        p.model_runtime,
        p.sim_runtime,
        p.runtime_error_pct()
    );
    assert!(
        p.l1_error_pct() <= tol.l1_pct,
        "L1 fill: model {} vs sim {} ({:.1}%)",
        p.model_l1_fill,
        p.sim_l1_fill,
        p.l1_error_pct()
    );
    assert!(
        p.l2_error_pct() <= tol.l2_pct,
        "L2 traffic: model {} vs sim {} ({:.1}%)",
        p.model_l2,
        p.sim_l2,
        p.l2_error_pct()
    );
    assert!(
        (p.model_utilization - p.sim_utilization).abs() <= tol.utilization_abs,
        "utilization: model {} vs sim {}",
        p.model_utilization,
        p.sim_utilization
    );
    p
}

/// Uncoupled dims used to multiply the schedule: a map over a dimension no
/// tensor of the layer indexes (K for depthwise) replicated identical work
/// across trips and spatial units. Fixed in `resolve()` (clamp uncoupled
/// extents to one trip) and `total_macs()`.
#[test]
fn conform_repro_uncoupled_dim_replication() {
    let layer = Layer::new(
        "repro",
        Operator::DepthwiseConv2d,
        dims(1, 4, 8, 6, 6, 3, 3, 1, 1),
    );
    let acc = Accelerator::builder(64).noc_bandwidth(1).build();
    assert_conforms(&layer, &Style::KCP.dataflow(), &acc);
}

/// Strided edge chunks overlapped their predecessors: `to_view_coords`
/// floored the output-space step, double-counting the last partial chunk.
/// Fixed with a ceiling division (seed 1, case 138).
#[test]
fn conform_repro_seed1_case138_strided_edge_chunk() {
    let layer = Layer::new("repro", Operator::conv2d(), dims(1, 1, 1, 3, 4, 1, 1, 1, 3));
    let acc = Accelerator::builder(8).noc_bandwidth(1).build();
    assert_conforms(&layer, &Style::YXP.dataflow(), &acc);
}

/// A gapped window (stride larger than the filter chunk) never touches the
/// input rows between output anchors; the footprint previously charged
/// them as moved data on both sides.
#[test]
fn conform_repro_gapped_window_footprint() {
    let layer = Layer::new("repro", Operator::conv2d(), dims(1, 1, 1, 1, 9, 1, 1, 1, 3));
    let acc = Accelerator::builder(4).noc_bandwidth(1).build();
    assert_conforms(&layer, &Style::XP.dataflow(), &acc);
}

/// Edge-padded chunk grids (K=9 over chunk-8 folds) scaled MACs by the
/// coverage ratio but not the traffic accumulators, over-reporting weight
/// and output L2 traffic by the padding fraction.
#[test]
fn conform_repro_edge_coverage_traffic() {
    let layer = Layer::new("repro", Operator::conv2d(), dims(1, 9, 1, 4, 4, 1, 1, 1, 1));
    let acc = Accelerator::builder(64).noc_bandwidth(1).build();
    assert_conforms(&layer, &Style::KCP.dataflow(), &acc);
}

/// The model charged the initial operand fill at every level of the
/// hierarchy (store-and-forward), while the simulator charges the single
/// stream once; the final output drain was missing entirely. On a trivial
/// one-step schedule both engines must now agree exactly.
#[test]
fn conform_repro_init_fill_single_charge() {
    let layer = Layer::new("repro", Operator::conv2d(), dims(1, 1, 1, 1, 1, 1, 1, 1, 1));
    let acc = Accelerator::builder(1).noc_bandwidth(1).build();
    let p = assert_conforms(&layer, &Style::CP.dataflow(), &acc);
    assert_eq!(p.model_runtime, p.sim_runtime);
}

/// L1 fills replicated by the *peak* active-unit count; with spatial edge
/// folds the last wrap runs fewer units, which the average occupancy
/// (`num_units × utilization`) captures (seed 1, case 389).
#[test]
fn conform_repro_seed1_case389_fill_occupancy() {
    let layer = Layer::new(
        "repro",
        Operator::DepthwiseConv2d,
        dims(1, 1, 2, 9, 1, 1, 1, 1, 1),
    );
    let acc = Accelerator::builder(64).noc_bandwidth(1).build();
    assert_conforms(&layer, &Style::YXP.dataflow(), &acc);
}

/// An inner level that folds outputs through its units mid-pass cannot
/// hold them resident: every pass streams its full egress across the L2
/// boundary. The model previously assumed top-level residency and only
/// charged the final commit (seed 1, case 341).
#[test]
fn conform_repro_seed1_case341_inner_fold_commit_stream() {
    let layer = Layer::new("repro", Operator::conv2d(), dims(1, 1, 3, 4, 7, 1, 1, 1, 1));
    let acc = Accelerator::builder(12).noc_bandwidth(1).build();
    assert_conforms(&layer, &maestro_dse::variants::yxp_variant(3, 8), &acc);
}

/// Partial sums committed upstream by an inner fold are refetched on every
/// outer reduction revisit, replicated across this level's units (seed 1,
/// case 60).
#[test]
fn conform_repro_seed1_case60_reduction_refetch() {
    let layer = Layer::new("repro", Operator::conv2d(), dims(1, 1, 3, 1, 3, 1, 1, 1, 1));
    let acc = Accelerator::builder(2).noc_bandwidth(1).build();
    assert_conforms(&layer, &maestro_dse::variants::yxp_variant(2, 8), &acc);
}

/// An inner-loop reset is a *negative* advance: a short sliding window
/// wraps back next to its origin and keeps most of its footprint
/// resident. `new_data` previously zeroed the overlap on any reset,
/// refetching the full input window on every row advance (seed 2,
/// case 200).
#[test]
fn conform_repro_seed2_case200_reset_window_overlap() {
    let layer = Layer::new(
        "repro",
        Operator::conv2d(),
        dims(1, 1, 1, 10, 5, 4, 4, 1, 1),
    );
    let acc = Accelerator::builder(1).noc_bandwidth(1).build();
    assert_conforms(&layer, &Style::CP.dataflow(), &acc);
}

/// Satellite: per-style tolerance table over small representative layers.
/// For every (style, layer) pair the simulator MAC count must equal the
/// closed-form exact count, and the model's runtime must stay within a
/// Figure-9-style validation bound of the simulator.
#[test]
fn per_style_tolerance_table() {
    let layers = [
        Layer::new(
            "conv",
            Operator::conv2d(),
            dims(1, 8, 4, 10, 10, 3, 3, 1, 1),
        ),
        Layer::new(
            "strided",
            Operator::conv2d(),
            dims(1, 4, 2, 9, 9, 3, 3, 2, 2),
        ),
        Layer::new(
            "depthwise",
            Operator::DepthwiseConv2d,
            dims(1, 1, 8, 8, 8, 3, 3, 1, 1),
        ),
        Layer::new(
            "fc",
            Operator::FullyConnected,
            dims(2, 12, 16, 1, 1, 1, 1, 1, 1),
        ),
    ];
    let acc = Accelerator::builder(256).noc_bandwidth(4).build();
    let tol = Tolerances::default();
    for style in Style::ALL {
        for layer in &layers {
            let p = validate_layer(layer, &style.dataflow(), &acc, SimOptions::default())
                .expect("both engines run");
            assert_eq!(
                p.sim_macs, p.exact_macs,
                "{style}/{}: sim MACs {} vs exact {}",
                layer.name, p.sim_macs, p.exact_macs
            );
            assert!(
                p.runtime_error_pct() <= tol.runtime_pct,
                "{style}/{}: model {} vs sim {} ({:.1}%)",
                layer.name,
                p.model_runtime,
                p.sim_runtime,
                p.runtime_error_pct()
            );
        }
    }
}

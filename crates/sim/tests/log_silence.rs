//! Regression: the simulator routes its diagnostics through the
//! `maestro-obs` leveled logger, so at the default level (`MAESTRO_LOG`
//! unset → off) a simulation run emits nothing at all — and at `debug`
//! the same run does.

use maestro_dnn::{Layer, LayerDims, Operator};
use maestro_hw::Accelerator;
use maestro_ir::Style;
use maestro_sim::{simulate, SimOptions};
use std::sync::{Arc, Mutex};

#[test]
fn simulator_is_silent_at_default_level_and_chatty_at_debug() {
    // Capture instead of stderr so the assertion sees every record.
    let lines: Arc<Mutex<Vec<String>>> = Arc::default();
    let sink_lines = Arc::clone(&lines);
    maestro_obs::log::set_capture(Some(Box::new(move |_lvl, s| {
        if let Ok(mut v) = sink_lines.lock() {
            v.push(s.to_string());
        }
    })));
    maestro_obs::log::set_level(maestro_obs::Level::Off);

    let layer = Layer::new("c", Operator::conv2d(), LayerDims::square(1, 8, 8, 10, 3));
    let acc = Accelerator::builder(64).build();
    simulate(&layer, &Style::KCP.dataflow(), &acc, SimOptions::default()).expect("simulatable");
    assert!(
        lines.lock().expect("sink lock").is_empty(),
        "simulator logged at the default (off) level: {:?}",
        lines.lock().expect("sink lock")
    );

    maestro_obs::log::set_level(maestro_obs::Level::Debug);
    simulate(&layer, &Style::KCP.dataflow(), &acc, SimOptions::default()).expect("simulatable");
    assert!(
        !lines.lock().expect("sink lock").is_empty(),
        "simulator emitted nothing at debug level"
    );

    maestro_obs::log::set_level(maestro_obs::Level::Off);
    maestro_obs::log::set_capture(None);
}

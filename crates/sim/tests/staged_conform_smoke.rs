//! Conformance smoke test through the staged analysis pipeline.
//!
//! The fused `analyze()` the differential harness calls is implemented as
//! `StagedAnalysis::build(..).finish(..)`, so every conform run already
//! exercises the staged path. This smoke pins that down from both ends:
//! a seeded harness run must stay clean, and for the same seeded case
//! stream the explicitly-staged evaluation must agree bit-for-bit with
//! the report the harness compared against the simulator.

use maestro_core::{analyze, StagedAnalysis};
use maestro_sim::conform::gen_case;
use maestro_sim::{run_conform, ConformConfig};
use proptest::TestRng;

/// A seeded conform run (model vs. step simulator) stays divergence-free
/// with the staged pipeline serving the model side.
#[test]
fn conform_smoke_is_clean_through_staged_pipeline() {
    let cfg = ConformConfig {
        seed: 2026,
        cases: 40,
        ..ConformConfig::default()
    };
    let report = run_conform(&cfg);
    assert!(report.is_clean(), "divergences: {report:?}");
    assert!(report.compared > 0, "smoke compared nothing: {report:?}");
}

/// For the harness's own generated cases, explicit staged evaluation
/// (build once, finish under the case's NoC) is bit-identical to the
/// fused call the harness makes.
#[test]
fn staged_evaluation_matches_fused_on_conform_cases() {
    let mut rng = TestRng::from_seed(2026);
    let mut agreed = 0u32;
    for _ in 0..60 {
        let case = gen_case(&mut rng);
        let fused = analyze(&case.layer, &case.dataflow, &case.acc);
        let staged = match StagedAnalysis::build(&case.layer, &case.dataflow, &case.acc) {
            Ok(s) => s.finish(case.acc.noc.bandwidth, case.acc.noc.avg_latency),
            Err(e) => Err(e),
        };
        assert_eq!(fused, staged, "case diverged: {case}");
        if fused.is_ok() {
            agreed += 1;
        }
    }
    assert!(agreed > 10, "too few analyzable cases ({agreed})");
}

//! Model-vs-simulator validation (the role of paper Figure 9).

use crate::engine::{simulate, SimError, SimOptions};
use maestro_core::analyze;
use maestro_dnn::{Layer, Model};
use maestro_hw::Accelerator;
use maestro_ir::Dataflow;
use serde::{Deserialize, Serialize};
use std::fmt;

/// One layer's model-vs-simulator comparison.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ValidationPoint {
    /// Layer name.
    pub layer: String,
    /// Analytical model runtime (cycles).
    pub model_runtime: f64,
    /// Simulated runtime (cycles).
    pub sim_runtime: f64,
    /// Analytical total L2 traffic (elements).
    pub model_l2: f64,
    /// Simulated total L2 traffic (elements).
    pub sim_l2: f64,
    /// Simulated MAC count (exact).
    pub sim_macs: u64,
    /// Layer's true MAC count.
    pub exact_macs: u64,
    /// Analytical L1 fill traffic (elements).
    pub model_l1_fill: f64,
    /// Simulated L1 fill traffic (elements).
    pub sim_l1_fill: f64,
    /// Analytical PE utilization.
    pub model_utilization: f64,
    /// Simulated PE utilization.
    pub sim_utilization: f64,
}

/// Relative error in percent with a divergence-preserving zero case: when
/// the reference (`sim`) side is zero, a non-zero model value is infinite
/// error, not zero — a zero denominator must never mask disagreement.
pub(crate) fn error_pct(model: f64, sim: f64) -> f64 {
    if sim > 0.0 {
        100.0 * (model - sim).abs() / sim
    } else if model == 0.0 {
        0.0
    } else {
        f64::INFINITY
    }
}

impl ValidationPoint {
    /// Absolute runtime error of the model vs the simulator, in percent.
    pub fn runtime_error_pct(&self) -> f64 {
        error_pct(self.model_runtime, self.sim_runtime)
    }

    /// Absolute L1-fill error of the model vs the simulator, percent.
    pub fn l1_error_pct(&self) -> f64 {
        error_pct(self.model_l1_fill, self.sim_l1_fill)
    }

    /// Absolute L2-traffic error of the model vs the simulator, percent.
    pub fn l2_error_pct(&self) -> f64 {
        error_pct(self.model_l2, self.sim_l2)
    }
}

impl fmt::Display for ValidationPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<12} model {:>12.0} sim {:>12.0} err {:>6.2}% (L2 err {:>6.2}%)",
            self.layer,
            self.model_runtime,
            self.sim_runtime,
            self.runtime_error_pct(),
            self.l2_error_pct()
        )
    }
}

/// Validation failure.
#[derive(Debug, Clone, PartialEq)]
pub enum ValidateError {
    /// The simulator failed.
    Sim(SimError),
    /// The analytical model failed.
    Model(maestro_core::AnalysisError),
}

impl fmt::Display for ValidateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidateError::Sim(e) => write!(f, "simulator: {e}"),
            ValidateError::Model(e) => write!(f, "model: {e}"),
        }
    }
}

impl std::error::Error for ValidateError {}

/// Compare model and simulator on one layer.
///
/// # Errors
///
/// Propagates failures of either side.
pub fn validate_layer(
    layer: &Layer,
    dataflow: &Dataflow,
    acc: &Accelerator,
    opts: SimOptions,
) -> Result<ValidationPoint, ValidateError> {
    let model = analyze(layer, dataflow, acc).map_err(ValidateError::Model)?;
    let sim = simulate(layer, dataflow, acc, opts).map_err(ValidateError::Sim)?;
    Ok(ValidationPoint {
        layer: layer.name.clone(),
        model_runtime: model.runtime,
        sim_runtime: sim.cycles,
        model_l2: model.counts.l2_read.total() + model.counts.l2_write.total(),
        sim_l2: sim.counts.l2_read.total() + sim.counts.l2_write.total(),
        sim_macs: sim.macs,
        exact_macs: layer.total_macs(),
        model_l1_fill: model.counts.l1_write.total(),
        sim_l1_fill: sim.counts.l1_write.total(),
        model_utilization: model.utilization,
        sim_utilization: sim.utilization,
    })
}

/// Validate every layer of a network, skipping layers whose schedules
/// exceed the step budget. Layers are simulated on parallel OS threads
/// (the simulator is the expensive side). Returns the per-layer points in
/// network order and the mean absolute runtime error.
pub fn validate_network(
    model: &Model,
    dataflow: &Dataflow,
    acc: &Accelerator,
    opts: SimOptions,
) -> (Vec<ValidationPoint>, f64) {
    let threads = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
        .min(model.len().max(1));
    let results: Vec<Option<ValidationPoint>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let layers: Vec<&Layer> = model.iter().skip(t).step_by(threads).collect();
                scope.spawn(move || {
                    layers
                        .into_iter()
                        .map(|layer| validate_layer(layer, dataflow, acc, opts).ok())
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        let per_thread: Vec<Vec<Option<ValidationPoint>>> = handles
            .into_iter()
            .map(|h| h.join().expect("validation worker"))
            .collect();
        // Re-interleave into network order.
        let mut out: Vec<Option<ValidationPoint>> = vec![None; model.len()];
        for (t, chunk) in per_thread.into_iter().enumerate() {
            for (i, p) in chunk.into_iter().enumerate() {
                out[t + i * threads] = p;
            }
        }
        out
    });
    let points: Vec<ValidationPoint> = results.into_iter().flatten().collect();
    let mean = if points.is_empty() {
        0.0
    } else {
        points
            .iter()
            .map(ValidationPoint::runtime_error_pct)
            .sum::<f64>()
            / points.len() as f64
    };
    (points, mean)
}

#[cfg(test)]
mod tests {
    use super::*;
    use maestro_dnn::{LayerDims, Operator};
    use maestro_ir::Style;

    /// Regression: a zero simulator-side denominator used to report 0%
    /// error even when the model side was non-zero, silently masking total
    /// divergence. It must read as infinite error (and 0% only when both
    /// sides are zero).
    #[test]
    fn zero_sim_denominator_reports_infinite_error() {
        let mut p = ValidationPoint {
            layer: "z".into(),
            model_runtime: 100.0,
            sim_runtime: 0.0,
            model_l2: 5.0,
            sim_l2: 0.0,
            sim_macs: 0,
            exact_macs: 0,
            model_l1_fill: 1.0,
            sim_l1_fill: 0.0,
            model_utilization: 0.0,
            sim_utilization: 0.0,
        };
        assert_eq!(p.runtime_error_pct(), f64::INFINITY);
        assert_eq!(p.l1_error_pct(), f64::INFINITY);
        assert_eq!(p.l2_error_pct(), f64::INFINITY);
        // Both sides zero: genuinely no disagreement.
        p.model_runtime = 0.0;
        p.model_l1_fill = 0.0;
        p.model_l2 = 0.0;
        assert_eq!(p.runtime_error_pct(), 0.0);
        assert_eq!(p.l1_error_pct(), 0.0);
        assert_eq!(p.l2_error_pct(), 0.0);
    }

    #[test]
    fn model_tracks_simulator_on_small_conv() {
        let layer = Layer::new("c", Operator::conv2d(), LayerDims::square(1, 16, 16, 18, 3));
        let acc = Accelerator::builder(64).build();
        for style in Style::ALL {
            let p = validate_layer(&layer, &style.dataflow(), &acc, SimOptions::default())
                .unwrap_or_else(|e| panic!("{style}: {e}"));
            assert_eq!(p.sim_macs, p.exact_macs, "{style}");
            assert!(
                p.l1_error_pct() < 40.0,
                "{style}: L1 {:.1}%",
                p.l1_error_pct()
            );
            assert!(
                (p.model_utilization - p.sim_utilization).abs() < 0.25,
                "{style}: util {} vs {}",
                p.model_utilization,
                p.sim_utilization
            );
            assert!(
                p.runtime_error_pct() < 35.0,
                "{style}: model {} vs sim {} ({:.1}%)",
                p.model_runtime,
                p.sim_runtime,
                p.runtime_error_pct()
            );
        }
    }
}

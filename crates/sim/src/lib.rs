//! A step-driven reference simulator for dataflow accelerators.
//!
//! The paper validates MAESTRO against RTL simulations of MAERI and
//! Eyeriss (Figure 9). Without those testbeds, this crate provides the
//! closest open substitute: an execution-driven simulator that walks every
//! time step of the flattened schedule, maintaining exact per-PE resident
//! data intervals and the real odometer state. The analytical model and
//! the simulator share the *dataflow semantics* (the IR defines what data
//! lives where); they differ in how cost is derived — closed-form
//! transition classes versus exhaustive enumeration with exact edge
//! chunks — which is precisely the error the paper's RTL validation
//! measures.
//!
//! # Example
//!
//! ```
//! use maestro_dnn::{Layer, LayerDims, Operator};
//! use maestro_hw::Accelerator;
//! use maestro_ir::Style;
//! use maestro_sim::{simulate, SimOptions};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let layer = Layer::new("c", Operator::conv2d(), LayerDims::square(1, 8, 8, 10, 3));
//! let acc = Accelerator::builder(64).build();
//! let report = simulate(&layer, &Style::KCP.dataflow(), &acc, SimOptions::default())?;
//! assert_eq!(report.macs, layer.total_macs());
//! # Ok(())
//! # }
//! ```

#![cfg_attr(
    not(test),
    deny(clippy::print_stderr, clippy::print_stdout, clippy::exit)
)]

pub mod conform;
pub mod engine;
pub mod flat;
pub mod mapping;
pub mod trace;
pub mod validate;

pub use conform::{
    check_case, run_conform, run_conform_cancellable, shrink, Case, CaseOutcome, ConformConfig,
    ConformReport, Divergence, DivergentCase, Metric, SkipReason, Tolerances,
};
pub use engine::{simulate, SimError, SimOptions, SimReport};
pub use mapping::{mapping_at_step, PeMapping};
pub use trace::{trace, StepTrace, Trace};
pub use validate::{validate_layer, validate_network, ValidateError, ValidationPoint};

//! Flattened multi-level odometer machinery.
//!
//! The simulator walks the *entire* nested schedule as one flat loop nest:
//! outer cluster levels' loops first, inner levels' loops after them (inner
//! loops change fastest), exactly matching the hierarchical semantics. Per
//! time step it derives, for a representative PE, the absolute data-space
//! interval each dimension occupies — with exact edge-chunk truncation
//! propagated through the levels — and closed-form sums/unions across the
//! active PEs.

use maestro_core::footprint::CouplingExt;
use maestro_core::level::LevelCtx;
use maestro_dnn::{Coupling, Dim, TensorKind};

/// One flattened loop: a temporal loop or spatial fold of some level.
#[derive(Debug, Clone)]
pub struct FlatLoop {
    /// The cluster level this loop belongs to.
    pub level: usize,
    /// Dimensions advanced per trip (view coordinates).
    pub dims: Vec<(Dim, u64)>,
    /// Trip count.
    pub trips: u64,
    /// `true` for spatial folds.
    pub spatial_fold: bool,
    /// `true` when the loop advances a pure-reduction dimension set
    /// (its own dims leave the output footprint unchanged).
    pub is_reduction: bool,
}

/// A half-open interval `[start, start+len)` in some dimension's
/// coordinates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, serde::Serialize, serde::Deserialize)]
pub struct Interval {
    /// Start position.
    pub start: u64,
    /// Length (0 = empty).
    pub len: u64,
}

impl Interval {
    /// Size of the intersection with `other`.
    pub fn overlap(&self, other: &Interval) -> u64 {
        let lo = self.start.max(other.start);
        let hi = (self.start + self.len).min(other.start + other.len);
        hi.saturating_sub(lo)
    }
}

/// The flattened schedule of a resolved dataflow.
#[derive(Debug, Clone)]
pub struct FlatSchedule {
    /// Per-level contexts (outermost first).
    pub levels: Vec<LevelCtx>,
    /// Flattened loops, outermost first.
    pub loops: Vec<FlatLoop>,
    /// Current odometer counters (parallel to `loops`).
    pub counters: Vec<u64>,
    /// Total steps.
    pub total_steps: u64,
}

impl FlatSchedule {
    /// Build the flat schedule from per-level contexts.
    pub fn new(levels: Vec<LevelCtx>, coupling: &Coupling) -> Self {
        let mut loops = Vec::new();
        for (li, ctx) in levels.iter().enumerate() {
            for node in &ctx.loops {
                // A loop is pure reduction if advancing its own dims leaves
                // the output footprint unchanged: every dim is either a
                // filter-window dim or not output-coupled.
                let is_reduction = node.dims.iter().all(|(d, _)| {
                    (d.is_filter_window() && coupling.has_window_on_partner(*d))
                        || !coupling.is_coupled(TensorKind::Output, *d)
                }) && node
                    .dims
                    .iter()
                    .any(|(d, _)| coupling.reduction.contains(*d) || d.is_filter_window());
                loops.push(FlatLoop {
                    level: li,
                    dims: node.dims.clone(),
                    trips: node.trips,
                    spatial_fold: node.spatial_fold,
                    is_reduction,
                });
            }
        }
        let total_steps = loops.iter().map(|l| l.trips).product();
        let counters = vec![0; loops.len()];
        FlatSchedule {
            levels,
            loops,
            counters,
            total_steps,
        }
    }

    /// Advance the odometer by one step; returns the index of the loop
    /// that advanced, or `None` when the schedule is exhausted.
    pub fn advance(&mut self) -> Option<usize> {
        for j in (0..self.loops.len()).rev() {
            if self.counters[j] + 1 < self.loops[j].trips {
                self.counters[j] += 1;
                for c in &mut self.counters[j + 1..] {
                    *c = 0;
                }
                return Some(j);
            }
        }
        None
    }

    /// Reset the odometer.
    pub fn reset(&mut self) {
        self.counters.fill(0);
    }

    /// Current per-level chunk position (in trips) of dimension `d` at
    /// `level`: the counter of its temporal loop or spatial fold, plus the
    /// in-fold unit offset `unit`.
    fn dim_position(&self, level: usize, d: Dim, unit: u64) -> u64 {
        let ctx = &self.levels[level];
        let v = ctx.views.view(d);
        if v.spatial {
            let fold = self
                .loops
                .iter()
                .zip(&self.counters)
                .find(|(l, _)| l.level == level && l.spatial_fold)
                .map(|(_, &c)| c)
                .unwrap_or(0);
            // Co-mapped spatial dims clamp to their last chunk when they
            // have fewer chunks than the driving dim (e.g. row-stationary
            // clusters: one output row shared, filter rows distinct).
            (fold * ctx.num_units + unit).min(v.trips.saturating_sub(1))
        } else {
            self.loops
                .iter()
                .zip(&self.counters)
                .find(|(l, _)| {
                    l.level == level && !l.spatial_fold && l.dims.iter().any(|(ld, _)| *ld == d)
                })
                .map(|(_, &c)| c)
                .unwrap_or(0)
        }
    }

    /// The absolute interval dimension `d` occupies (view coordinates) for
    /// the PE at per-level unit coordinates `units` (one entry per level;
    /// use zeros for the representative PE). Edge truncation at any level
    /// propagates inward exactly.
    pub fn dim_interval(&self, d: Dim, units: &[u64]) -> Interval {
        let mut abs = 0u64;
        let mut avail = self.levels[0].views.view(d).total;
        for (li, ctx) in self.levels.iter().enumerate() {
            let v = ctx.views.view(d);
            let unit = if v.spatial {
                units.get(li).copied().unwrap_or(0)
            } else {
                0
            };
            let pos = self.dim_position(li, d, unit);
            let start = (pos * v.step).min(avail.saturating_sub(1));
            let len = v.chunk.min(avail - start);
            abs += start;
            avail = len;
        }
        Interval {
            start: abs,
            len: avail,
        }
    }

    /// Exact sum over the active units of a spatial dimension's chunk
    /// lengths at `level` (accounts for edge folds and boundary clamps).
    pub fn spatial_len_sum(&self, level: usize, d: Dim, avail: u64) -> u64 {
        let ctx = &self.levels[level];
        let v = ctx.views.view(d);
        debug_assert!(v.spatial);
        let fold = self.dim_position(level, d, 0);
        let mut sum = 0u64;
        for u in 0..ctx.num_units {
            let pos = fold + u;
            if pos >= v.trips {
                break;
            }
            let start = (pos * v.step).min(avail.saturating_sub(1));
            sum += v.chunk.min(avail - start);
        }
        sum
    }

    /// Number of active units at `level` in the current step (edge folds
    /// may use fewer than `num_units`).
    pub fn active_units(&self, level: usize) -> u64 {
        let ctx = &self.levels[level];
        let spatial: Vec<_> = ctx.views.iter().filter(|v| v.spatial).collect();
        if spatial.is_empty() {
            return 1;
        }
        let max_trips = spatial.iter().map(|v| v.trips).max().expect("non-empty");
        let fold = self
            .loops
            .iter()
            .zip(&self.counters)
            .find(|(l, _)| l.level == level && l.spatial_fold)
            .map(|(_, &c)| c)
            .unwrap_or(0);
        (max_trips - fold * ctx.num_units).min(ctx.num_units)
    }
}

/// Tensor-coordinate interval along an axis for a PE: combines view
/// intervals into the tensor's own coordinates (input axes combine the
/// output window and the filter chunk positions).
pub fn tensor_axis_interval(
    sched: &FlatSchedule,
    coupling: &Coupling,
    kind: TensorKind,
    d: Dim,
    strides: (u64, u64),
    units: &[u64],
) -> Option<Interval> {
    let stride = |dd: Dim| match dd {
        Dim::Y => strides.0,
        Dim::X => strides.1,
        _ => 1,
    };
    match kind {
        TensorKind::Input if d.is_input_spatial() && coupling.has_window_on(d) => {
            let out = sched.dim_interval(d, units);
            let p = d.window_partner().expect("Y/X have partners");
            let f = sched.dim_interval(p, units);
            let s = stride(d);
            // With a gapped window (stride > filter chunk) the rows between
            // consecutive output anchors are never resident; count only the
            // touched rows so fills match what actually moves.
            Some(Interval {
                start: s * out.start + f.start,
                len: s.min(f.len) * (out.len.saturating_sub(1)) + f.len,
            })
        }
        TensorKind::Input if d.is_filter_window() && coupling.has_window_on_partner(d) => {
            None // folded into the partner axis
        }
        TensorKind::Output if d.is_filter_window() && coupling.has_window_on_partner(d) => {
            None // anchored: outputs don't track R/S
        }
        _ if coupling.is_coupled(kind, d) => Some(sched.dim_interval(d, units)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use maestro_core::level::LevelCtx;
    use maestro_dnn::{Layer, LayerDims, Operator};
    use maestro_ir::{resolve, Style};

    fn schedule(style: Style, pes: u64) -> (FlatSchedule, Coupling) {
        let layer = Layer::new("c", Operator::conv2d(), LayerDims::square(1, 8, 8, 10, 3));
        let coupling = layer.coupling();
        let r = resolve(&style.dataflow(), &layer, pes).unwrap();
        let levels: Vec<LevelCtx> = r
            .levels
            .iter()
            .map(|l| LevelCtx::build(&r, l, &coupling))
            .collect();
        (FlatSchedule::new(levels, &coupling), coupling)
    }

    #[test]
    fn odometer_covers_all_steps() {
        let (mut s, _) = schedule(Style::KCP, 64);
        let mut steps = 1u64;
        while s.advance().is_some() {
            steps += 1;
        }
        assert_eq!(steps, s.total_steps);
    }

    #[test]
    fn intervals_stay_in_bounds() {
        let (mut s, _) = schedule(Style::XP, 16);
        loop {
            for d in maestro_dnn::ALL_DIMS {
                let iv = s.dim_interval(d, &[0, 0]);
                let total = s.levels[0].views.view(d).total;
                assert!(iv.start + iv.len <= total, "{d}: {iv:?} vs {total}");
                assert!(iv.len >= 1);
            }
            if s.advance().is_none() {
                break;
            }
        }
    }

    #[test]
    fn interval_overlap() {
        let a = Interval { start: 2, len: 5 };
        let b = Interval { start: 5, len: 5 };
        assert_eq!(a.overlap(&b), 2);
        assert_eq!(b.overlap(&a), 2);
        let c = Interval { start: 9, len: 2 };
        assert_eq!(a.overlap(&c), 0);
    }

    #[test]
    fn reduction_loop_classification() {
        let (s, _) = schedule(Style::KCP, 64);
        // KC-P on C=8 with chunk 8: no C loop; R/S fully mapped: no
        // reduction loops at all here.
        assert!(s.loops.iter().all(|l| !l.is_reduction));
        // Deep layer: C loop appears and is a reduction loop.
        let layer = Layer::new("d", Operator::conv2d(), LayerDims::square(1, 8, 128, 10, 3));
        let coupling = layer.coupling();
        let r = resolve(&Style::KCP.dataflow(), &layer, 64).unwrap();
        let levels: Vec<LevelCtx> = r
            .levels
            .iter()
            .map(|l| LevelCtx::build(&r, l, &coupling))
            .collect();
        let s = FlatSchedule::new(levels, &coupling);
        assert!(s.loops.iter().any(|l| l.is_reduction));
    }

    #[test]
    fn input_axis_combines_window_and_filter() {
        let (s, coupling) = schedule(Style::KCP, 64);
        let iv = tensor_axis_interval(&s, &coupling, TensorKind::Input, Dim::Y, (1, 1), &[0, 0])
            .expect("input has a Y axis");
        // At step 0: output row 0 with full 3-row filter chunk => rows 0..3.
        assert_eq!(iv.start, 0);
        assert_eq!(iv.len, 3);
        // Output axis is anchored (R returns None).
        assert!(
            tensor_axis_interval(&s, &coupling, TensorKind::Output, Dim::R, (1, 1), &[0, 0])
                .is_none()
        );
    }
}

//! The step-driven reference simulator.
//!
//! Where the analytical model (`maestro-core`) evaluates closed-form
//! transition classes, the simulator *walks every time step* of the
//! flattened schedule: per step it diffs the representative PE's resident
//! data intervals against the previous step (exact edge-chunk handling),
//! tracks partial-sum liveness with the actual odometer counters, counts
//! MACs exactly over the unit grid, and accumulates double-buffered timing
//! from the actual per-step traffic. It shares the *mapping semantics*
//! (which data lives where) with the model — that is the IR's definition —
//! but derives cost from enumeration rather than algebra, which is what
//! makes it a meaningful validation target (paper Figure 9's role).

use crate::flat::{tensor_axis_interval, FlatSchedule, Interval};
use maestro_core::counts::ActivityCounts;
use maestro_core::level::{LevelCtx, OutputSpatial};
use maestro_dnn::{Coupling, Layer, TensorKind, ALL_DIMS};
use maestro_hw::Accelerator;
use maestro_ir::{resolve, Dataflow, ResolveError};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// Simulator failure modes.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// The dataflow cannot be bound to the layer.
    Resolve(ResolveError),
    /// The schedule exceeds the configured step budget.
    TooManySteps {
        /// Steps the schedule would need.
        needed: u64,
        /// The configured limit.
        limit: u64,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Resolve(e) => write!(f, "cannot resolve dataflow: {e}"),
            SimError::TooManySteps { needed, limit } => {
                write!(
                    f,
                    "schedule needs {needed} steps, over the limit of {limit}"
                )
            }
        }
    }
}

impl std::error::Error for SimError {}

impl From<ResolveError> for SimError {
    fn from(e: ResolveError) -> Self {
        SimError::Resolve(e)
    }
}

/// Simulation results for one layer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimReport {
    /// Simulated runtime in cycles.
    pub cycles: f64,
    /// Activity counts observed.
    pub counts: ActivityCounts,
    /// Exact dense MAC count executed (should equal the layer's).
    pub macs: u64,
    /// Time steps walked.
    pub steps: u64,
    /// Average PE utilization (active PE-steps / (PEs × steps)).
    pub utilization: f64,
}

/// Simulation options.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SimOptions {
    /// Abort schedules longer than this many steps.
    pub max_steps: u64,
}

impl Default for SimOptions {
    fn default() -> Self {
        SimOptions {
            max_steps: 50_000_000,
        }
    }
}

/// Simulate `layer` under `dataflow` on `acc`.
///
/// # Errors
///
/// Fails when the dataflow cannot be resolved or the schedule exceeds
/// [`SimOptions::max_steps`].
pub fn simulate(
    layer: &Layer,
    dataflow: &Dataflow,
    acc: &Accelerator,
    opts: SimOptions,
) -> Result<SimReport, SimError> {
    let _span = maestro_obs::span::span("maestro.sim.simulate");
    let coupling = layer.coupling();
    let resolved = resolve(dataflow, layer, acc.num_pes)?;
    let levels: Vec<LevelCtx> = resolved
        .levels
        .iter()
        .map(|l| LevelCtx::build(&resolved, l, &coupling))
        .collect();
    let mut sched = FlatSchedule::new(levels, &coupling);
    maestro_obs::debug!(
        "simulating {}/{}: {} steps on {} PEs",
        layer.name,
        dataflow.name(),
        sched.total_steps,
        acc.num_pes
    );
    if sched.total_steps > opts.max_steps {
        maestro_obs::warn!(
            "simulation of {}/{} aborted: schedule needs {} steps, over the limit of {}",
            layer.name,
            dataflow.name(),
            sched.total_steps,
            opts.max_steps
        );
        return Err(SimError::TooManySteps {
            needed: sched.total_steps,
            limit: opts.max_steps,
        });
    }
    let strides = (layer.dims.stride_y, layer.dims.stride_x);
    let density = layer.density;
    let support = acc.support;
    let num_levels = sched.levels.len();

    // Per-level static spatial facts (shared semantics with the model).
    let op_mult: Vec<[f64; 2]> = sched
        .levels
        .iter()
        .map(|ctx| {
            let m = |k: TensorKind| -> f64 {
                if ctx.varies_spatially(&coupling, k) {
                    match support.multicast {
                        maestro_hw::SpatialMulticast::None => ctx.active_units as f64,
                        _ => ctx.active_units as f64 * ctx.spatial_sharing_ratio(&coupling, k),
                    }
                } else {
                    support.multicast.upstream_reads(ctx.active_units) as f64
                }
            };
            [m(TensorKind::Input), m(TensorKind::Weight)]
        })
        .collect();
    let out_mult: f64 = sched
        .levels
        .iter()
        .map(|ctx| match ctx.output_spatial {
            OutputSpatial::Varies => ctx.active_units as f64,
            OutputSpatial::Reduced => support.reduction.upstream_writes(ctx.active_units) as f64,
            OutputSpatial::NotParallel => 1.0,
        })
        .product();
    let in_mult: f64 = op_mult.iter().map(|m| m[0]).product();
    let w_mult: f64 = op_mult.iter().map(|m| m[1]).product();
    let red_latency: f64 = sched
        .levels
        .iter()
        .map(|ctx| {
            if ctx.output_spatial == OutputSpatial::Reduced {
                support.reduction.extra_latency(ctx.active_units) as f64
            } else {
                0.0
            }
        })
        .sum();
    // Without spatial-reduction hardware, arriving psums read-modify-write
    // the L2 (one extra read per write).
    let rmw_reduction = support.reduction == maestro_hw::SpatialReduction::None
        && sched
            .levels
            .iter()
            .any(|ctx| ctx.output_spatial == OutputSpatial::Reduced);
    let mcast_latency: f64 = sched
        .levels
        .iter()
        .map(|ctx| support.multicast.extra_latency(ctx.active_units) as f64)
        .sum();

    // Representative-PE resident intervals per tensor/axis.
    let axes = |s: &FlatSchedule| -> [Vec<Option<Interval>>; 3] {
        TensorKind::ALL.map(|k| {
            ALL_DIMS
                .iter()
                .map(|&d| tensor_axis_interval(s, &coupling, k, d, strides, &[]))
                .collect()
        })
    };
    let fp_of =
        |iv: &[Option<Interval>]| -> f64 { iv.iter().flatten().map(|i| i.len as f64).product() };
    let overlap_of = |a: &[Option<Interval>], b: &[Option<Interval>]| -> f64 {
        a.iter()
            .zip(b)
            .map(|(x, y)| match (x, y) {
                (Some(x), Some(y)) => x.overlap(y) as f64,
                _ => 1.0,
            })
            .product()
    };

    let mut counts = ActivityCounts::new();
    let mut cycles = 0.0f64;
    let mut macs_total = 0u64;
    let mut active_pe_steps = 0.0f64;
    let mut steps = 0u64;
    let mut macs_memo: HashMap<Vec<u64>, u64> = HashMap::new();

    let mut prev = axes(&sched);
    let mut first = true;
    loop {
        steps += 1;
        let cur = axes(&sched);
        let active: f64 = (0..num_levels)
            .map(|l| sched.active_units(l) as f64)
            .product();

        // Exact MAC count across the unit grid (memoized recursion).
        let step_macs = exact_macs(&sched, &coupling, &mut macs_memo);
        macs_total += step_macs;
        active_pe_steps += active;
        let macs_eff = step_macs as f64 * density.mac_fraction();
        counts.macs += macs_eff;
        counts.l1_read[TensorKind::Input] += macs_eff;
        counts.l1_read[TensorKind::Weight] += macs_eff;
        counts.l1_read[TensorKind::Output] += macs_eff;
        counts.l1_write[TensorKind::Output] += macs_eff;

        // Representative-PE new data (exact interval diffs).
        let new_of = |k: TensorKind| -> f64 {
            let ki = k as usize;
            if first {
                fp_of(&cur[ki])
            } else {
                (fp_of(&cur[ki]) - overlap_of(&prev[ki], &cur[ki])).max(0.0)
            }
        };
        let new_in = new_of(TensorKind::Input) * density.input;
        let new_w = new_of(TensorKind::Weight) * density.weight;
        counts.l1_write[TensorKind::Input] += new_in * active;
        counts.l1_write[TensorKind::Weight] += new_w * active;
        let l2_in = new_in * in_mult;
        let l2_w = new_w * w_mult;
        counts.l2_read[TensorKind::Input] += l2_in;
        counts.l2_read[TensorKind::Weight] += l2_w;
        counts.noc[TensorKind::Input] += new_in * active;
        counts.noc[TensorKind::Weight] += new_w * active;

        // Outputs: leaving = spilled or committed; entering partials are
        // refetched when this region was visited before.
        let oi = TensorKind::Output as usize;
        let mut egress = 0.0f64;
        let mut refetch = 0.0f64;
        if !first {
            let leaving =
                (fp_of(&prev[oi]) - overlap_of(&prev[oi], &cur[oi])).max(0.0) * density.output;
            let entering =
                (fp_of(&cur[oi]) - overlap_of(&prev[oi], &cur[oi])).max(0.0) * density.output;
            if leaving > 0.0 || entering > 0.0 {
                let j = advancing_loop(&sched);
                let visited_before = sched.loops[..j]
                    .iter()
                    .zip(&sched.counters[..j])
                    .any(|(l, &c)| l.is_reduction && c > 0);
                // Whether these are spills (they will return) or final
                // commits, they travel upstream and hit the L2 once.
                let moved = leaving * out_mult;
                egress = moved;
                counts.l1_read[TensorKind::Output] += leaving * active;
                counts.noc[TensorKind::Output] += moved;
                counts.l2_write[TensorKind::Output] += moved;
                if rmw_reduction {
                    counts.l2_read[TensorKind::Output] += moved;
                }
                if visited_before {
                    refetch = entering * out_mult;
                    counts.l2_read[TensorKind::Output] += refetch;
                    counts.noc[TensorKind::Output] += refetch;
                }
            }
        }

        // Timing: double-buffered outstanding delay. Per-PE work comes
        // from the step's *actual* MAC count (edge steps are cheaper),
        // with a one-cycle bubble floor.
        let compute = {
            let per_pe = macs_eff / active.max(1.0);
            (per_pe / acc.vector_width as f64).ceil().max(1.0)
        };
        let transfer = |e: f64| -> f64 {
            if e <= 0.0 {
                0.0
            } else {
                (e / acc.noc.bandwidth as f64).ceil() + acc.noc.avg_latency as f64
            }
        };
        let ingress_delay = transfer(l2_in + l2_w + refetch);
        let egress_delay = transfer(egress);
        cycles += if first {
            // Multicast/reduction networks are pipelined: their depth is a
            // fill cost charged once, on the first step.
            ingress_delay + compute + egress_delay + red_latency + mcast_latency
        } else {
            compute.max(ingress_delay).max(egress_delay)
        };

        first = false;
        prev = cur;
        if sched.advance().is_none() {
            break;
        }
    }

    // Final drain of resident outputs.
    let oi = TensorKind::Output as usize;
    let resident = fp_of(&prev[oi]) * density.output;
    counts.l1_read[TensorKind::Output] += resident * active_last(&sched);
    counts.l2_write[TensorKind::Output] += resident * out_mult;
    if rmw_reduction {
        counts.l2_read[TensorKind::Output] += resident * out_mult;
    }
    counts.noc[TensorKind::Output] += resident * out_mult;
    cycles += ((resident * out_mult) / acc.noc.bandwidth as f64).ceil();

    // Off-chip traffic and delay, by the same rule as the model (the
    // estimator is shared; inputs here are the simulator's exact counts).
    let tensor_elems = [
        layer.tensor_elements(TensorKind::Input),
        layer.tensor_elements(TensorKind::Weight),
        layer.tensor_elements(TensorKind::Output),
    ];
    let (dram_read, dram_write) =
        maestro_core::report::offchip_traffic(&counts, tensor_elems, acc.l2_elements());
    counts.dram_read = dram_read;
    counts.dram_write = dram_write;
    let dram_delay = (dram_read.total() + dram_write.total()) / acc.offchip_bandwidth.max(1) as f64;
    let cycles = cycles.max(dram_delay);

    let total_pes = acc.num_pes as f64;
    Ok(SimReport {
        cycles,
        counts,
        macs: macs_total,
        steps,
        utilization: active_pe_steps / (total_pes * steps as f64),
    })
}

fn active_last(sched: &FlatSchedule) -> f64 {
    (0..sched.levels.len())
        .map(|l| sched.active_units(l) as f64)
        .product()
}

/// The loop that advanced to reach the current step: the outermost loop
/// whose inner neighbours are all at counter zero (the odometer reset
/// them), i.e. the last loop with a nonzero "just advanced" position. We
/// recover it as the innermost loop with a nonzero counter among those
/// whose inner loops are all zero — equivalently the largest `j` such that
/// all counters after `j` are zero.
fn advancing_loop(sched: &FlatSchedule) -> usize {
    let mut j = sched.loops.len();
    while j > 0 && sched.counters[j - 1] == 0 {
        j -= 1;
    }
    j.saturating_sub(1).min(sched.loops.len().saturating_sub(1))
}

/// Exact MACs executed across the whole unit grid in the schedule's
/// current step (public wrapper for tracing; `memo` caches inner-level
/// sub-grid sums across calls).
pub fn exact_step_macs(
    sched: &FlatSchedule,
    coupling: &Coupling,
    memo: &mut HashMap<Vec<u64>, u64>,
) -> u64 {
    exact_macs(sched, coupling, memo)
}

/// Exact MACs across the whole unit grid in the current step, memoized by
/// the per-level availability signature.
fn exact_macs(sched: &FlatSchedule, coupling: &Coupling, memo: &mut HashMap<Vec<u64>, u64>) -> u64 {
    fn rec(
        sched: &FlatSchedule,
        coupling: &Coupling,
        level: usize,
        avail: [u64; 7],
        memo: &mut HashMap<Vec<u64>, u64>,
    ) -> u64 {
        if level == sched.levels.len() {
            // Leaf: the PE executes the product of its chunk extents.
            let _ = coupling;
            return avail.iter().product();
        }
        // Memoize inner levels only: the top level's key is unique per
        // step, so caching it would only grow the table.
        let key: Option<Vec<u64>> = (level >= 1).then(|| {
            std::iter::once(level as u64)
                .chain(avail.iter().copied())
                .chain(
                    sched
                        .loops
                        .iter()
                        .zip(&sched.counters)
                        .filter(|(l, _)| l.level >= level)
                        .map(|(_, &c)| c),
                )
                .collect()
        });
        if let Some(k) = &key {
            if let Some(&v) = memo.get(k) {
                return v;
            }
        }
        let ctx = &sched.levels[level];
        let mut total = 0u64;
        let units = if ctx.views.iter().any(|v| v.spatial) {
            ctx.num_units
        } else {
            1
        };
        // A unit idles when it is beyond the *driving* spatial dim (the
        // one with the most chunks available in the current, possibly
        // edge-truncated extents); shorter co-mapped dims clamp.
        use maestro_core::footprint::num_trips;
        let avail_trips = |d: maestro_dnn::Dim| {
            let v = ctx.views.view(d);
            num_trips(v.chunk, v.step, avail[d.index()])
        };
        let driving_trips = ctx
            .views
            .iter()
            .filter(|v| v.spatial)
            .map(|v| avail_trips(v.dim))
            .max()
            .unwrap_or(1);
        let fold = sched
            .loops
            .iter()
            .zip(&sched.counters)
            .find(|(l, _)| l.level == level && l.spatial_fold)
            .map(|(_, &c)| c)
            .unwrap_or(0);
        'units: for u in 0..units {
            if fold * ctx.num_units + u >= driving_trips && ctx.views.iter().any(|v| v.spatial) {
                continue 'units;
            }
            let mut lens = [0u64; 7];
            for d in ALL_DIMS {
                let v = ctx.views.view(d);
                let a = avail[d.index()];
                let pos = if v.spatial {
                    (fold * ctx.num_units + u).min(avail_trips(d).saturating_sub(1))
                } else {
                    sched
                        .loops
                        .iter()
                        .zip(&sched.counters)
                        .find(|(l, _)| {
                            l.level == level
                                && !l.spatial_fold
                                && l.dims.iter().any(|(ld, _)| *ld == d)
                        })
                        .map(|(_, &c)| c)
                        .unwrap_or(0)
                };
                let start = (pos * v.step).min(a.saturating_sub(1));
                lens[d.index()] = v.chunk.min(a - start);
            }
            total += rec(sched, coupling, level + 1, lens, memo);
        }
        if let Some(k) = key {
            memo.insert(k, total);
        }
        total
    }
    let top: [u64; 7] = {
        let mut a = [0u64; 7];
        for d in ALL_DIMS {
            a[d.index()] = sched.levels[0].views.view(d).total;
        }
        a
    };
    rec(sched, coupling, 0, top, memo)
}

#[cfg(test)]
mod tests {
    use super::*;
    use maestro_dnn::{LayerDims, Operator};
    use maestro_ir::Style;

    fn small_conv() -> Layer {
        Layer::new("c", Operator::conv2d(), LayerDims::square(1, 8, 8, 10, 3))
    }

    #[test]
    fn exact_mac_conservation_across_styles() {
        let layer = small_conv();
        let acc = Accelerator::builder(64).build();
        let exact = layer.total_macs();
        for style in Style::ALL {
            let r = simulate(&layer, &style.dataflow(), &acc, SimOptions::default())
                .unwrap_or_else(|e| panic!("{style}: {e}"));
            assert_eq!(r.macs, exact, "{style} must execute every MAC exactly once");
        }
    }

    #[test]
    fn mac_conservation_with_strides_and_odd_sizes() {
        let dims = LayerDims {
            n: 2,
            k: 5,
            c: 7,
            y: 13,
            x: 11,
            r: 3,
            s: 2,
            stride_y: 2,
            stride_x: 1,
        };
        let layer = Layer::new("odd", Operator::conv2d(), dims);
        let acc = Accelerator::builder(64).build();
        for style in [Style::XP, Style::KCP, Style::CP] {
            let r = simulate(&layer, &style.dataflow(), &acc, SimOptions::default())
                .unwrap_or_else(|e| panic!("{style}: {e}"));
            assert_eq!(r.macs, layer.total_macs(), "{style}");
        }
    }

    #[test]
    fn runtime_at_least_roofline() {
        let layer = small_conv();
        let acc = Accelerator::builder(64).build();
        for style in Style::ALL {
            let r = simulate(&layer, &style.dataflow(), &acc, SimOptions::default()).unwrap();
            let roofline = layer.total_macs() as f64 / acc.peak_macs_per_cycle() as f64;
            assert!(r.cycles >= roofline * 0.9, "{style}: {}", r.cycles);
        }
    }

    #[test]
    fn l2_reads_cover_tensors() {
        let layer = small_conv();
        let acc = Accelerator::builder(64).build();
        for style in Style::ALL {
            let r = simulate(&layer, &style.dataflow(), &acc, SimOptions::default()).unwrap();
            assert!(
                r.counts.l2_read[TensorKind::Weight]
                    >= layer.tensor_elements(TensorKind::Weight) as f64 * 0.9,
                "{style}: {}",
                r.counts.l2_read[TensorKind::Weight]
            );
            assert!(
                r.counts.l2_write[TensorKind::Output]
                    >= layer.tensor_elements(TensorKind::Output) as f64 * 0.9,
                "{style}"
            );
        }
    }

    #[test]
    fn step_budget_is_enforced() {
        let layer = small_conv();
        let acc = Accelerator::builder(64).build();
        let err = simulate(
            &layer,
            &Style::CP.dataflow(),
            &acc,
            SimOptions { max_steps: 10 },
        )
        .unwrap_err();
        assert!(matches!(err, SimError::TooManySteps { .. }));
    }

    #[test]
    fn utilization_in_unit_range() {
        let layer = small_conv();
        let acc = Accelerator::builder(64).build();
        for style in Style::ALL {
            let r = simulate(&layer, &style.dataflow(), &acc, SimOptions::default()).unwrap();
            assert!((0.0..=1.0).contains(&r.utilization), "{style}");
        }
    }
}

//! Step-by-step execution traces for debugging and teaching.
//!
//! A trace records, for every time step of the flattened schedule, which
//! loop advanced, the representative PE's tensor footprints, the new data
//! fetched, the MACs executed and the active PE count — the raw material
//! behind figures like the paper's Figure 3 timeline.

use crate::engine::SimError;
use crate::flat::{tensor_axis_interval, FlatSchedule, Interval};
use maestro_core::level::LevelCtx;
use maestro_dnn::{Layer, TensorKind, ALL_DIMS};
use maestro_ir::{resolve, Dataflow};
use serde::{Deserialize, Serialize};

/// One time step of a trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StepTrace {
    /// Step index (0-based).
    pub step: u64,
    /// Index of the flattened loop that advanced to reach this step
    /// (`None` for the initial step).
    pub advanced: Option<usize>,
    /// Representative-PE footprint per tensor (elements).
    pub footprint: [u64; 3],
    /// New elements fetched per tensor at the representative PE.
    pub new_data: [u64; 3],
    /// MACs executed across the whole array this step.
    pub macs: u64,
    /// Active PEs this step.
    pub active_pes: u64,
}

/// A complete (truncated) trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    /// Dataflow name.
    pub dataflow: String,
    /// Total steps in the schedule (the trace may cover fewer).
    pub total_steps: u64,
    /// Recorded steps.
    pub steps: Vec<StepTrace>,
}

/// Trace the first `max_steps` steps of `layer` under `dataflow`.
///
/// # Errors
///
/// Fails when the dataflow cannot be resolved.
pub fn trace(
    layer: &Layer,
    dataflow: &Dataflow,
    num_pes: u64,
    max_steps: u64,
) -> Result<Trace, SimError> {
    let coupling = layer.coupling();
    let resolved = resolve(dataflow, layer, num_pes)?;
    let levels: Vec<LevelCtx> = resolved
        .levels
        .iter()
        .map(|l| LevelCtx::build(&resolved, l, &coupling))
        .collect();
    let mut sched = FlatSchedule::new(levels, &coupling);
    let strides = (layer.dims.stride_y, layer.dims.stride_x);
    let num_levels = sched.levels.len();

    let axes = |s: &FlatSchedule| -> [Vec<Option<Interval>>; 3] {
        TensorKind::ALL.map(|k| {
            ALL_DIMS
                .iter()
                .map(|&d| tensor_axis_interval(s, &coupling, k, d, strides, &[]))
                .collect()
        })
    };
    let fp = |iv: &[Option<Interval>]| -> u64 { iv.iter().flatten().map(|i| i.len).product() };
    let overlap = |a: &[Option<Interval>], b: &[Option<Interval>]| -> u64 {
        a.iter()
            .zip(b)
            .map(|(x, y)| match (x, y) {
                (Some(x), Some(y)) => x.overlap(y),
                _ => 1,
            })
            .product()
    };

    let mut steps = Vec::new();
    let mut prev = axes(&sched);
    let mut advanced: Option<usize> = None;
    let mut step = 0u64;
    let mut memo = std::collections::HashMap::new();
    loop {
        let cur = axes(&sched);
        let active: u64 = (0..num_levels).map(|l| sched.active_units(l)).product();
        let macs = crate::engine::exact_step_macs(&sched, &coupling, &mut memo);
        let footprint = [fp(&cur[0]), fp(&cur[1]), fp(&cur[2])];
        let new_data = std::array::from_fn(|i| {
            if step == 0 {
                footprint[i]
            } else {
                footprint[i].saturating_sub(overlap(&prev[i], &cur[i]))
            }
        });
        steps.push(StepTrace {
            step,
            advanced,
            footprint,
            new_data,
            macs,
            active_pes: active,
        });
        prev = cur;
        step += 1;
        if step >= max_steps {
            break;
        }
        match sched.advance() {
            Some(j) => advanced = Some(j),
            None => break,
        }
    }
    Ok(Trace {
        dataflow: dataflow.name().to_string(),
        total_steps: sched.total_steps,
        steps,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use maestro_dnn::{LayerDims, Operator};
    use maestro_ir::Style;

    fn layer() -> Layer {
        Layer::new("c", Operator::conv2d(), LayerDims::square(1, 4, 4, 6, 3))
    }

    #[test]
    fn trace_records_steps_in_order() {
        let t = trace(&layer(), &Style::XP.dataflow(), 8, 16).unwrap();
        assert!(!t.steps.is_empty());
        assert!(t.steps.len() as u64 <= 16);
        for (i, s) in t.steps.iter().enumerate() {
            assert_eq!(s.step, i as u64);
            assert!(s.macs > 0);
            assert!(s.active_pes >= 1);
        }
        assert_eq!(t.steps[0].advanced, None, "initial step has no advance");
        assert!(t.steps[1].advanced.is_some());
    }

    #[test]
    fn first_step_fetches_full_footprints() {
        let t = trace(&layer(), &Style::KCP.dataflow(), 64, 4).unwrap();
        let s0 = &t.steps[0];
        assert_eq!(s0.new_data, s0.footprint);
    }

    #[test]
    fn weight_stationary_steps_fetch_no_new_weights() {
        // X-P holds weights while Y advances.
        let t = trace(&layer(), &Style::XP.dataflow(), 8, 4).unwrap();
        let w = TensorKind::Weight as usize;
        assert_eq!(
            t.steps[1].new_data[w], 0,
            "weights are stationary across the Y sweep: {:?}",
            t.steps[1]
        );
    }

    #[test]
    fn trace_covers_whole_schedule_when_short() {
        let t = trace(&layer(), &Style::KCP.dataflow(), 64, u64::MAX).unwrap();
        assert_eq!(t.steps.len() as u64, t.total_steps);
    }
}
